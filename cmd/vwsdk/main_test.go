package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunSingleLayer drives the optimizer end to end on the paper's running
// example (ResNet-18 conv4 on 512x512) and checks the Table I cell.
func TestRunSingleLayer(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-ifm", "14x14", "-kernel", "3x3", "-ic", "256", "-oc", "256",
		"-array", "512x512"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"4x3x42x256", "504", "im2col"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestRunNetworkCSV exercises the predefined-network path with CSV output
// and an explicit worker count.
func TestRunNetworkCSV(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-network", "ResNet-18", "-array", "512x512", "-csv", "-workers", "2"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "total") {
		t.Errorf("CSV missing total row:\n%s", got)
	}
	// Paper Table I: ResNet-18 VW-SDK total is 4294 cycles.
	if !strings.Contains(got, "4294") {
		t.Errorf("CSV missing ResNet-18 VW total 4294:\n%s", got)
	}
}

// TestRunMultiArray exercises the chip-scheduling branch.
func TestRunMultiArray(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-ifm", "14x14", "-kernel", "3x3", "-ic", "64", "-oc", "64",
		"-array", "256x256", "-arrays", "4"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "chip with 4 arrays") {
		t.Errorf("missing chip summary:\n%s", out.String())
	}
}

// TestRunExplain checks the derivation path stays single-layer only.
func TestRunExplain(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-explain", "-ifm", "14x14", "-kernel", "3x3",
		"-ic", "256", "-oc", "256"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "im2col") {
		t.Errorf("explain output unexpectedly empty:\n%s", out.String())
	}
	if err := run([]string{"-explain", "-network", "VGG-13"}, &out); err == nil {
		t.Error("explain on a whole network should error")
	}
}

// TestRunNetworkFromJSON compiles the documented example spec file through
// the -network file.json path.
func TestRunNetworkFromJSON(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-network", "../../examples/networks/tinynet.json",
		"-array", "256x256"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"TinyNet", "conv1", "conv4", "total"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}

	// A spec path without the .json suffix still resolves as a file.
	dir := t.TempDir()
	path := filepath.Join(dir, "netspec")
	data, err := os.ReadFile("../../examples/networks/tinynet.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"-network", path, "-array", "256x256"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "TinyNet") {
		t.Errorf("suffixless spec file not resolved:\n%s", out.String())
	}
}

// TestRunStats checks -stats reports the engine counters — with and without
// -csv, which returns early from the table path.
func TestRunStats(t *testing.T) {
	for _, extra := range [][]string{nil, {"-csv"}} {
		var out strings.Builder
		args := append([]string{"-network", "ResNet-18", "-array", "512x512", "-stats"}, extra...)
		if err := run(args, &out); err != nil {
			t.Fatal(err)
		}
		got := out.String()
		if !strings.Contains(got, "engine:") || !strings.Contains(got, "cache hits") ||
			!strings.Contains(got, "in-flight dedupes") || !strings.Contains(got, "evictions") {
			t.Errorf("args %v: missing stats line:\n%s", args, got)
		}
		if !strings.Contains(got, "candidates costed") ||
			!strings.Contains(got, "pruned by breakpoint enumeration") ||
			strings.Contains(got, "search: 0 candidates costed, 0 pruned") {
			t.Errorf("args %v: missing or empty candidate counters:\n%s", args, got)
		}
	}
}

// TestRunProfileFlags smoke-tests that -cpuprofile and -memprofile write
// non-empty pprof files.
func TestRunProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out strings.Builder
	if err := run([]string{"-ifm", "28x28", "-kernel", "3x3", "-ic", "64", "-oc", "64",
		"-cpuprofile", cpu, "-memprofile", mem}, &out); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
	if err := run([]string{"-cpuprofile", filepath.Join(dir, "no", "such", "dir", "x")}, &out); err == nil {
		t.Error("unwritable -cpuprofile path accepted")
	}
}

// TestRunBadFlags covers flag-parsing failures.
func TestRunBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-array", "0x512"},
		{"-array", "one"},
		{"-network", "LeNet-5"},
		{"-network", "no-such-file.json"},
		{"-ifm", "2x2", "-kernel", "3x3"},
		{"-nonsense"},
	} {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestRunVersion checks -version prints the tool name and exits cleanly
// without running anything else.
func TestRunVersion(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-version"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "vwsdk ") {
		t.Errorf("version output %q", out.String())
	}
}

// TestRunTimeoutExpired pins the -timeout flag: an already-expired deadline
// aborts the compilation with a context error instead of printing a table.
func TestRunTimeoutExpired(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-network", "VGG-13", "-array", "512x512", "-timeout", "1ns"}, &out)
	if err == nil || !strings.Contains(err.Error(), "context deadline exceeded") {
		t.Fatalf("err = %v, want a deadline error", err)
	}
}
