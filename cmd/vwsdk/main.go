// Command vwsdk is the mapping optimizer CLI: given a convolutional layer
// (or a whole predefined network) and a PIM array size, it reports the
// minimum-cycle mapping found by the paper's VW-SDK algorithm next to the
// im2col, SMD and SDK baselines — the same interface as the paper's released
// script.
//
// Examples:
//
//	vwsdk -ifm 14x14 -kernel 3x3 -ic 256 -oc 256 -array 512x512
//	vwsdk -network ResNet-18 -array 512x512
//	vwsdk -network VGG-13 -array 256x256 -csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/chip"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/textplot"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vwsdk:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("vwsdk", flag.ContinueOnError)
	var (
		network = fs.String("network", "", "predefined network (VGG-13, ResNet-18, VGG-16, AlexNet); overrides the layer flags")
		arraySp = fs.String("array", "512x512", "PIM array size RowsxCols")
		nArrays = fs.Int("arrays", 1, "number of crossbars on the chip (multi-array makespan)")
		explain = fs.Bool("explain", false, "print the equation-by-equation derivation (single layer only)")
		workers = fs.Int("workers", 0, "search worker-pool size (0 = GOMAXPROCS)")
		csv     = fs.Bool("csv", false, "emit CSV instead of an aligned table")
		lf      cliutil.LayerFlags
	)
	fs.StringVar(&lf.IFM, "ifm", "14x14", "input feature map size WxH")
	fs.StringVar(&lf.Kernel, "kernel", "3x3", "kernel size WxH")
	fs.IntVar(&lf.IC, "ic", 256, "input channels")
	fs.IntVar(&lf.OC, "oc", 256, "output channels")
	fs.IntVar(&lf.Stride, "stride", 1, "convolution stride")
	fs.IntVar(&lf.Pad, "pad", 0, "zero padding")
	if err := fs.Parse(args); err != nil {
		return err
	}
	a, err := cliutil.ParseArray(*arraySp)
	if err != nil {
		return err
	}
	// All searches run through one engine: per-layer candidate sweeps fan
	// across the worker pool, and the multi-array section below reuses the
	// cached per-layer results instead of re-searching.
	eng := engine.New(engine.WithWorkers(*workers))

	var layers []core.Layer
	title := ""
	if *network != "" {
		n, err := model.ByName(*network)
		if err != nil {
			return err
		}
		layers = n.CoreLayers()
		title = fmt.Sprintf("%s on a %s PIM array", n.Name, a)
	} else {
		l, err := lf.Layer("layer")
		if err != nil {
			return err
		}
		layers = []core.Layer{l}
		title = fmt.Sprintf("%s on a %s PIM array", l, a)
	}
	if *explain {
		if len(layers) != 1 {
			return fmt.Errorf("-explain works on a single layer, not a network")
		}
		res, err := eng.SearchVWSDK(layers[0], a)
		if err != nil {
			return err
		}
		fmt.Fprint(out, core.ExplainSearch(res))
		return nil
	}

	table := &textplot.Table{
		Title: title,
		Header: []string{"layer", "kernel", "im2col", "SMD", "SDK",
			"VW-SDK window", "VW-SDK cycles", "speedup vs im2col", "util %"},
	}
	var tIm, tSMD, tSDK, tVW int64
	for _, l := range layers {
		im, err := core.Im2col(l, a)
		if err != nil {
			return err
		}
		smd, err := eng.SearchSMD(l, a)
		if err != nil {
			return err
		}
		sdk, err := eng.SearchSDK(l, a)
		if err != nil {
			return err
		}
		vw, err := eng.SearchVWSDK(l, a)
		if err != nil {
			return err
		}
		tIm += im.Cycles
		tSMD += smd.Best.Cycles
		tSDK += sdk.Best.Cycles
		tVW += vw.Best.Cycles
		table.AddRow(l.Name,
			fmt.Sprintf("%dx%dx%dx%d", l.KW, l.KH, l.IC, l.OC),
			im.Cycles, smd.Best.Cycles, sdk.Best.Cycles,
			vw.Best.TileString(), vw.Best.Cycles,
			fmt.Sprintf("%.2f", vw.SpeedupVsIm2col()),
			fmt.Sprintf("%.1f", vw.Best.Utilization()))
	}
	if len(layers) > 1 {
		table.AddRow("total", "", tIm, tSMD, tSDK, "", tVW,
			fmt.Sprintf("%.2f", float64(tIm)/float64(tVW)), "")
	}
	if *csv {
		fmt.Fprint(out, table.CSV())
		return nil
	}
	fmt.Fprint(out, table.String())
	if *nArrays > 1 {
		var vwMaps []core.Mapping
		for _, l := range layers {
			r, err := eng.SearchVWSDK(l, a)
			if err != nil {
				return err
			}
			vwMaps = append(vwMaps, r.Best)
		}
		one, err := chip.ScheduleNetwork(vwMaps, 1)
		if err != nil {
			return err
		}
		many, err := chip.ScheduleNetwork(vwMaps, *nArrays)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\nchip with %d arrays: VW-SDK makespan %d cycles (%.2fx over one array, %d tile programmings)\n",
			*nArrays, many.Makespan,
			float64(one.Makespan)/float64(many.Makespan), many.Programs)
	}
	return nil
}
