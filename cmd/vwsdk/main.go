// Command vwsdk is the mapping optimizer CLI: given a convolutional layer
// (or a whole network) and a PIM array size, it compiles the network and
// reports the minimum-cycle mapping found by the paper's VW-SDK algorithm
// next to the im2col, SMD and SDK baselines — the same interface as the
// paper's released script.
//
// -network accepts either a predefined model-zoo name or a path to a JSON
// network spec file (see the repository README for the format), so arbitrary
// user CNNs can be compiled.
//
// Examples:
//
//	vwsdk -ifm 14x14 -kernel 3x3 -ic 256 -oc 256 -array 512x512
//	vwsdk -network ResNet-18 -array 512x512
//	vwsdk -network mynet.json -array 512x512 -arrays 16
//	vwsdk -network VGG-13 -array 256x256 -csv
//	vwsdk -network ResNet-18 -array 512x512 -trace trace.json  # open in chrome://tracing
//	vwsdk -optimize space.json  # hardware co-design: print the cycles/energy/area Pareto frontier
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/optimize"
	"repro/internal/textplot"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vwsdk:", err)
		os.Exit(1)
	}
}

// resolveNetwork turns the -network flag into a Network: a path to a JSON
// spec when the argument names an existing file or ends in .json (any
// case), a model-zoo entry otherwise.
func resolveNetwork(spec string) (model.Network, error) {
	if st, err := os.Stat(spec); (err == nil && !st.IsDir()) ||
		strings.HasSuffix(strings.ToLower(spec), ".json") {
		return model.FromJSONFile(spec)
	}
	return model.ByName(spec)
}

func run(args []string, out io.Writer) (retErr error) {
	fs := flag.NewFlagSet("vwsdk", flag.ContinueOnError)
	var (
		network = fs.String("network", "", "predefined network (VGG-13, ResNet-18, VGG-16, AlexNet, MobileNet-V2, ResNeXt-50) or a JSON spec file; overrides the layer flags")
		optSp   = fs.String("optimize", "", "design-space spec file: search the hardware space and print the Pareto frontier (overrides -network)")
		arraySp = fs.String("array", "512x512", "PIM array size RowsxCols")
		nArrays = fs.Int("arrays", 1, "number of crossbars on the chip (multi-array makespan)")
		explain = fs.Bool("explain", false, "print the equation-by-equation derivation (single layer only)")
		workers = fs.Int("workers", 0, "search worker-pool size (0 = GOMAXPROCS)")
		csv     = fs.Bool("csv", false, "emit CSV instead of an aligned table")
		stats   = fs.Bool("stats", false, "print engine statistics (cache hits/misses, candidates costed/pruned)")
		timeout = fs.Duration("timeout", 0, "abort the whole run after this long (0 = no deadline)")
		version = fs.Bool("version", false, "print the version and exit")
		prof    cliutil.ProfileFlags
		tf      cliutil.TraceFlags
		lf      cliutil.LayerFlags
	)
	prof.Register(fs)
	tf.Register(fs)
	fs.StringVar(&lf.IFM, "ifm", "14x14", "input feature map size WxH")
	fs.StringVar(&lf.Kernel, "kernel", "3x3", "kernel size WxH")
	fs.IntVar(&lf.IC, "ic", 256, "input channels")
	fs.IntVar(&lf.OC, "oc", 256, "output channels")
	fs.IntVar(&lf.Stride, "stride", 1, "convolution stride")
	fs.IntVar(&lf.Pad, "pad", 0, "zero padding")
	fs.IntVar(&lf.Groups, "groups", 1, "convolution groups (ic for depthwise)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintf(out, "vwsdk %s\n", cliutil.Version())
		return nil
	}
	a, err := cliutil.ParseArray(*arraySp)
	if err != nil {
		return err
	}
	// The one context every compilation below runs under: the -timeout
	// deadline aborts the searches at their next cancellation checkpoint,
	// and -trace attaches the span recording every compile threads through.
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	ctx = tf.Context(ctx, "vwsdk")
	defer func() {
		if terr := tf.Write(); terr != nil && retErr == nil {
			retErr = terr
		}
	}()
	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && retErr == nil {
			retErr = perr
		}
	}()
	// Everything below runs through one compile pipeline on one engine:
	// per-layer candidate sweeps fan across the worker pool, and each of the
	// four scheme compilations (plus the multi-array one) reuses the cached
	// per-layer searches.
	eng := engine.New(engine.WithWorkers(*workers))
	comp := compile.New(eng)

	if *optSp != "" {
		if err := runOptimize(ctx, out, comp, *optSp, *csv); err != nil {
			return err
		}
		printEngineStats(out, eng, *stats)
		return nil
	}

	var net model.Network
	if *network != "" {
		if net, err = resolveNetwork(*network); err != nil {
			return err
		}
	} else {
		l, err := lf.Layer("layer")
		if err != nil {
			return err
		}
		net = model.Single(l)
	}
	title := fmt.Sprintf("%s on a %s PIM array", net.Name, a)
	if len(net.Layers) == 1 {
		title = fmt.Sprintf("%s on a %s PIM array", net.Layers[0].Layer, a)
	}

	if *explain {
		if len(net.Layers) != 1 {
			return fmt.Errorf("-explain works on a single layer, not a network")
		}
		res, err := eng.SearchVWSDK(ctx, net.Layers[0].Layer, a)
		if err != nil {
			return err
		}
		fmt.Fprint(out, core.ExplainSearch(res))
		return nil
	}

	// Compile the network under every scheme the paper compares.
	smd, err := comp.Compile(ctx, compile.NewRequest(net, a, compile.Options{Scheme: compile.SMD}))
	if err != nil {
		return err
	}
	sdk, err := comp.Compile(ctx, compile.NewRequest(net, a, compile.Options{Scheme: compile.SDK}))
	if err != nil {
		return err
	}
	vw, err := comp.Compile(ctx, compile.NewRequest(net, a, compile.Options{}))
	if err != nil {
		return err
	}

	table := &textplot.Table{
		Title: title,
		Header: []string{"layer", "kernel", "im2col", "SMD", "SDK",
			"VW-SDK window", "VW-SDK cycles", "speedup vs im2col", "util %"},
	}
	for i := range net.Layers {
		l := net.Layers[i].Layer
		vwRes := vw.Layers[i].Search
		table.AddRow(l.Name,
			fmt.Sprintf("%dx%dx%dx%d", l.KW, l.KH, l.IC, l.OC),
			vwRes.Im2col.Cycles, smd.Layers[i].Search.Best.Cycles,
			sdk.Layers[i].Search.Best.Cycles,
			vwRes.Best.TileString(), vwRes.Best.Cycles,
			fmt.Sprintf("%.2f", vwRes.SpeedupVsIm2col()),
			fmt.Sprintf("%.1f", vwRes.Best.Utilization()))
	}
	if len(net.Layers) > 1 {
		table.AddRow("total", "", vw.Totals.Im2colCycles, smd.Totals.Cycles,
			sdk.Totals.Cycles, "", vw.Totals.Cycles,
			fmt.Sprintf("%.2f", vw.Totals.Speedup), "")
	}
	printStats := func() { printEngineStats(out, eng, *stats) }
	if *csv {
		fmt.Fprint(out, table.CSV())
		printStats()
		return nil
	}
	fmt.Fprint(out, table.String())
	if *nArrays > 1 {
		many, err := comp.Compile(ctx, compile.NewRequest(net, a, compile.Options{Arrays: *nArrays}))
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\nchip with %d arrays: VW-SDK makespan %d cycles (%.2fx over one array, %d tile programmings)\n",
			*nArrays, many.Totals.Makespan,
			float64(vw.Totals.Makespan)/float64(many.Totals.Makespan), many.Totals.Programs)
	}
	printStats()
	return nil
}

// printEngineStats prints the -stats block shared by the compile and
// optimize modes.
func printEngineStats(out io.Writer, eng *engine.Engine, enabled bool) {
	if !enabled {
		return
	}
	st := eng.Stats()
	fmt.Fprintf(out, "\nengine: %d searches, %d cache hits (%d in-flight dedupes), %d misses, %d cached results, %d evictions\n",
		st.Searches, st.CacheHits, st.FlightDedupes, st.CacheMisses, st.CachedResults, st.Evictions)
	fmt.Fprintf(out, "search: %d candidates costed, %d pruned by breakpoint enumeration\n",
		st.CandidatesCosted, st.CandidatesPruned)
}

// runOptimize is the -optimize mode: load the design-space spec, search it
// through the shared compiler and print the Pareto frontier, best cycles
// first.
func runOptimize(ctx context.Context, out io.Writer, comp *compile.Compiler, path string, csv bool) error {
	space, err := optimize.FromJSONFile(path)
	if err != nil {
		return err
	}
	f, err := optimize.New(comp).Run(ctx, space, nil)
	if err != nil {
		return err
	}
	name := space.Name
	if name == "" {
		name = space.Network.Name
	}
	table := &textplot.Table{
		Title:  fmt.Sprintf("Pareto frontier for %s (%d design points, %d layer groups)", name, f.Evaluated, f.Groups),
		Header: []string{"id", "arrays", "chips/group", "gated", "cycles", "energy (J)", "area (cells)"},
	}
	for _, p := range f.Points {
		specs := make([]string, len(p.Arrays))
		for i, a := range p.Arrays {
			specs[i] = a.String()
		}
		table.AddRow(p.ID, strings.Join(specs, "+"), p.Chips, p.Gated,
			p.Metrics.Cycles, fmt.Sprintf("%.3e", p.Metrics.EnergyJ), p.Metrics.AreaCells)
	}
	if csv {
		fmt.Fprint(out, table.CSV())
	} else {
		fmt.Fprint(out, table.String())
	}
	fmt.Fprintf(out, "\n%d of %d design points dominated (%d rejected on arrival, %d evicted); frontier keeps %d\n",
		f.Dominated, f.Evaluated, f.Rejected, f.Evicted, len(f.Points))
	return nil
}
