package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
)

// TestRunWritesReport smoke-runs the benchmark in CI mode on a filtered
// workload and validates the written JSON document.
func TestRunWritesReport(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_search.json")
	var stdout, progress bytes.Buffer
	err := run([]string{"-benchtime", "1x", "-filter", "conv4@512x512", "-o", out}, &stdout, &progress)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep bench.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, data)
	}
	if rep.Schema != bench.Schema || rep.Benchtime != "1x" {
		t.Errorf("report header = %q/%q", rep.Schema, rep.Benchtime)
	}
	// conv4@512x512 matches one VGG-13 and one ResNet-18 workload.
	if len(rep.Workloads) != 2 {
		t.Fatalf("got %d workloads, want 2:\n%s", len(rep.Workloads), data)
	}
	for _, w := range rep.Workloads {
		if w.CandidatesCosted <= 0 || w.CandidatesCosted > w.CandidatesFeasible ||
			int64(w.CandidatesFeasible) > w.CandidatesExhaustive {
			t.Errorf("%s: inconsistent candidates %d/%d/%d", w.Workload,
				w.CandidatesCosted, w.CandidatesFeasible, w.CandidatesExhaustive)
		}
	}
	if !strings.Contains(progress.String(), "wrote "+out) {
		t.Errorf("progress output missing summary:\n%s", progress.String())
	}
}

// TestRunCheckReduction exercises the CI regression gate in both directions:
// VGG-13's first layers prune far beyond 10x, while a small-layer-only run
// sits at parity and must fail.
func TestRunCheckReduction(t *testing.T) {
	dir := t.TempDir()
	var out, progress bytes.Buffer
	err := run([]string{"-benchtime", "1x", "-filter", "VGG-13/conv1@256x256", "-quiet",
		"-check-reduction", "10", "-o", filepath.Join(dir, "a.json")}, &out, &progress)
	if err != nil {
		t.Errorf("conv1 should prune >= 10x: %v", err)
	}
	err = run([]string{"-benchtime", "1x", "-filter", "ResNet-18/conv5@512x512", "-quiet",
		"-check-reduction", "10", "-o", filepath.Join(dir, "b.json")}, &out, &progress)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Errorf("parity workload passed the -check-reduction gate: %v", err)
	}
}

// TestRunProfileFlags smoke-tests that the shared -cpuprofile/-memprofile
// flags produce non-empty pprof files.
func TestRunProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out, progress bytes.Buffer
	err := run([]string{"-benchtime", "1x", "-filter", "conv5@256x256", "-quiet",
		"-o", filepath.Join(dir, "r.json"), "-cpuprofile", cpu, "-memprofile", mem}, &out, &progress)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

// TestRunStdout covers -o - (JSON to stdout) and -version.
func TestRunStdout(t *testing.T) {
	var out, progress bytes.Buffer
	if err := run([]string{"-version"}, &out, &progress); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "vwsdkbench ") {
		t.Errorf("version output = %q", out.String())
	}
	out.Reset()
	if err := run([]string{"-benchtime", "1x", "-filter", "ResNet-18/conv5@256x256", "-quiet", "-o", "-"}, &out, &progress); err != nil {
		t.Fatal(err)
	}
	var rep bench.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("stdout JSON invalid: %v", err)
	}
	if err := run([]string{"-benchtime", "bogus"}, &out, &progress); err == nil {
		t.Error("bad -benchtime accepted")
	}
}

// TestRunServe smoke-runs the -serve benchmark in CI mode, validates the
// written report, and exercises the -check-against gate in both directions:
// a fresh run checked against itself passes, while a doctored snapshot with
// lower allocation numbers must fail.
func TestRunServe(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_serve.json")
	var stdout, progress bytes.Buffer
	if err := run([]string{"-serve", "-benchtime", "1x", "-o", out}, &stdout, &progress); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep bench.ServeReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, data)
	}
	if rep.Schema != bench.ServeSchema || len(rep.Endpoints) != 3 {
		t.Fatalf("report header/shape: schema=%q endpoints=%d", rep.Schema, len(rep.Endpoints))
	}
	if rep.WarmPlanPathAllocs != 0 && !bench.RaceEnabled {
		t.Errorf("warm plan path allocs = %v, want 0", rep.WarmPlanPathAllocs)
	}
	if !strings.Contains(progress.String(), "wrote "+out) {
		t.Errorf("progress output missing summary:\n%s", progress.String())
	}

	// Gate against the run's own output: must pass. Under -race the warm
	// plan path picks up nondeterministic instrumentation allocations, so
	// run-vs-run comparisons are only meaningful in regular builds.
	if !bench.RaceEnabled {
		if err := run([]string{"-serve", "-benchtime", "1x", "-quiet", "-o", filepath.Join(dir, "b.json"),
			"-check-against", out}, &stdout, &progress); err != nil {
			t.Errorf("self-check failed: %v", err)
		}
	}

	// Doctor the snapshot so every fresh run looks like a regression.
	doctored := rep
	doctored.Endpoints = append([]bench.ServeEndpointResult(nil), rep.Endpoints...)
	for i := range doctored.Endpoints {
		if doctored.Endpoints[i].Name == "compile-warm" {
			doctored.Endpoints[i].AllocsPerRequest = -100
		}
	}
	bad, _ := json.Marshal(doctored)
	badPath := filepath.Join(dir, "doctored.json")
	if err := os.WriteFile(badPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-serve", "-benchtime", "1x", "-quiet", "-o", filepath.Join(dir, "c.json"),
		"-check-against", badPath}, &stdout, &progress)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Errorf("doctored snapshot passed the gate: %v", err)
	}
}

// TestRunFleet smoke-runs the -fleet benchmark, validates the written
// report, and exercises the -check-against gate in both directions: a fresh
// run checked against itself passes, while a doctored snapshot claiming a
// higher hit rate must fail.
func TestRunFleet(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_fleet.json")
	var stdout, progress bytes.Buffer
	if err := run([]string{"-fleet", "-benchtime", "1x", "-o", out}, &stdout, &progress); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep bench.FleetReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, data)
	}
	if rep.Schema != bench.FleetSchema || rep.Nodes != 3 {
		t.Fatalf("report header/shape: schema=%q nodes=%d", rep.Schema, rep.Nodes)
	}
	if rep.FleetHitRate <= rep.BaselineHitRate {
		t.Errorf("fleet hit rate %.3f not above baseline %.3f", rep.FleetHitRate, rep.BaselineHitRate)
	}
	if !strings.Contains(progress.String(), "wrote "+out) {
		t.Errorf("progress output missing summary:\n%s", progress.String())
	}

	// Gate against the run's own output: must pass.
	if err := run([]string{"-fleet", "-benchtime", "1x", "-quiet", "-o", filepath.Join(dir, "b.json"),
		"-check-against", out}, &stdout, &progress); err != nil {
		t.Errorf("self-check failed: %v", err)
	}

	// Doctor the snapshot so every fresh run looks like a regression: no
	// real run can compile fewer keys than the sequence touches.
	doctored := rep
	doctored.FleetCompiles = 1
	bad, _ := json.Marshal(doctored)
	badPath := filepath.Join(dir, "doctored.json")
	if err := os.WriteFile(badPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-fleet", "-benchtime", "1x", "-quiet", "-o", filepath.Join(dir, "c.json"),
		"-check-against", badPath}, &stdout, &progress)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Errorf("doctored snapshot passed the gate: %v", err)
	}
}

// TestRunOptimize smoke-runs the -optimize benchmark in CI mode, validates
// the written report, and exercises the -check-against gate in both
// directions: a fresh run checked against itself passes, while a doctored
// snapshot claiming fewer distinct searches must fail.
func TestRunOptimize(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_optimize.json")
	var stdout, progress bytes.Buffer
	if err := run([]string{"-optimize", "-benchtime", "1x", "-o", out}, &stdout, &progress); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep bench.OptimizeReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, data)
	}
	if rep.Schema != bench.OptimizeSchema || rep.PointsEvaluated != 64 {
		t.Fatalf("report header/shape: schema=%q evaluated=%d", rep.Schema, rep.PointsEvaluated)
	}
	if rep.FrontierSize < 1 || rep.Dominated < 1 {
		t.Errorf("degenerate frontier: %+v", rep)
	}
	if !strings.Contains(progress.String(), "wrote "+out) {
		t.Errorf("progress output missing summary:\n%s", progress.String())
	}

	// Gate against the run's own output: must pass.
	if err := run([]string{"-optimize", "-benchtime", "1x", "-quiet", "-o", filepath.Join(dir, "b.json"),
		"-check-against", out}, &stdout, &progress); err != nil {
		t.Errorf("self-check failed: %v", err)
	}

	// Doctor the snapshot so every fresh run looks like a memoization
	// regression: no real run can search fewer distinct cells than exist.
	doctored := rep
	doctored.DistinctSearches = 1
	bad, _ := json.Marshal(doctored)
	badPath := filepath.Join(dir, "doctored.json")
	if err := os.WriteFile(badPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-optimize", "-benchtime", "1x", "-quiet", "-o", filepath.Join(dir, "c.json"),
		"-check-against", badPath}, &stdout, &progress)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Errorf("doctored snapshot passed the gate: %v", err)
	}
}

// TestRunServeFlagConflicts pins the flag combinations that make no sense.
func TestRunServeFlagConflicts(t *testing.T) {
	var out, progress bytes.Buffer
	if err := run([]string{"-serve", "-check-reduction", "10"}, &out, &progress); err == nil {
		t.Error("-serve -check-reduction accepted")
	}
	if err := run([]string{"-serve", "-filter", "VGG"}, &out, &progress); err == nil {
		t.Error("-serve -filter accepted")
	}
	if err := run([]string{"-check-against", "x.json", "-benchtime", "1x"}, &out, &progress); err == nil {
		t.Error("-check-against without -serve accepted")
	}
	if err := run([]string{"-serve", "-fleet"}, &out, &progress); err == nil {
		t.Error("-serve -fleet accepted")
	}
	if err := run([]string{"-fleet", "-filter", "VGG"}, &out, &progress); err == nil {
		t.Error("-fleet -filter accepted")
	}
	if err := run([]string{"-optimize", "-fleet"}, &out, &progress); err == nil {
		t.Error("-optimize -fleet accepted")
	}
	if err := run([]string{"-optimize", "-check-reduction", "10"}, &out, &progress); err == nil {
		t.Error("-optimize -check-reduction accepted")
	}
}

// TestRunTimeoutExpired pins the -timeout flag: an already-expired deadline
// aborts the harness with a context error instead of running the grid.
func TestRunTimeoutExpired(t *testing.T) {
	var out, progress strings.Builder
	err := run([]string{"-benchtime", "1x", "-timeout", "1ns", "-o", "-"}, &out, &progress)
	if err == nil || !strings.Contains(err.Error(), "context deadline exceeded") {
		t.Fatalf("err = %v, want a deadline error", err)
	}
}
