// Command vwsdkbench runs the standardized search benchmark workloads
// (internal/bench) — the paper's Table-I zoo on 256/512/1024 arrays plus
// large-IFM stress layers — and writes BENCH_search.json: per workload, the
// pruned search's ns/op and allocations, the candidates it costed versus the
// exhaustive sweep's enumeration, and a cold-compile pipeline comparison.
// CI runs it with -benchtime 1x, uploads the JSON as an artifact, and fails
// the job via -check-reduction when the pruning regresses toward parity.
//
// Examples:
//
//	vwsdkbench                            # 10ms per timed loop, writes BENCH_search.json
//	vwsdkbench -benchtime 1x -o out.json  # one iteration per loop (CI smoke)
//	vwsdkbench -filter VGG-13 -benchtime 100ms
//	vwsdkbench -check-reduction 10        # exit 1 unless some Table-I layer prunes ≥10x
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/cliutil"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "vwsdkbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out, progress io.Writer) (retErr error) {
	fs := flag.NewFlagSet("vwsdkbench", flag.ContinueOnError)
	var (
		outPath   = fs.String("o", "BENCH_search.json", "output file; - writes the JSON to stdout")
		benchtime = fs.String("benchtime", "10ms", "minimum time per timed loop, or Nx for exactly N iterations (only 1x is supported)")
		filter    = fs.String("filter", "", "run only workloads whose name contains this substring")
		check     = fs.Float64("check-reduction", 0, "exit non-zero unless the best Table-I candidate reduction is at least this factor")
		quiet     = fs.Bool("quiet", false, "suppress per-workload progress output")
		timeout   = fs.Duration("timeout", 0, "abort the harness after this long (0 = no deadline)")
		version   = fs.Bool("version", false, "print the version and exit")
		prof      cliutil.ProfileFlags
	)
	prof.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintf(out, "vwsdkbench %s\n", cliutil.Version())
		return nil
	}
	opts := bench.Options{}
	if !*quiet {
		opts.Progress = progress
	}
	if *benchtime == "1x" {
		opts.Once = true
	} else {
		d, err := time.ParseDuration(*benchtime)
		if err != nil {
			return fmt.Errorf("-benchtime: %w (want a duration like 100ms, or 1x)", err)
		}
		opts.Benchtime = d
	}
	opts.Filter = *filter

	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && retErr == nil {
			retErr = perr
		}
	}()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	rep, err := bench.Run(ctx, opts)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *outPath == "-" {
		if _, err := out.Write(data); err != nil {
			return err
		}
	} else {
		if err := os.WriteFile(*outPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(progress, "wrote %s: %d workloads, best Table-I reduction %.1fx\n",
			*outPath, len(rep.Workloads), rep.MaxTable1Reduction)
	}
	if *check > 0 && rep.MaxTable1Reduction < *check {
		return fmt.Errorf("pruned-vs-exhaustive candidate reduction regressed: best Table-I factor %.1fx < required %.1fx",
			rep.MaxTable1Reduction, *check)
	}
	return nil
}
