// Command vwsdkbench runs the standardized search benchmark workloads
// (internal/bench) — the paper's Table-I zoo on 256/512/1024 arrays plus
// large-IFM stress layers — and writes BENCH_search.json: per workload, the
// pruned search's ns/op and allocations, the candidates it costed versus the
// exhaustive sweep's enumeration, and a cold-compile pipeline comparison.
// CI runs it with -benchtime 1x, uploads the JSON as an artifact, and fails
// the job via -check-reduction when the pruning regresses toward parity.
//
// With -serve it instead benchmarks the vwsdkd HTTP surface in-process —
// cold/warm /v1/compile and the streaming /v1/sweep — and writes
// BENCH_serve.json (p50/p99 latency and allocs/request per endpoint, plus
// the warm plan path's allocation count, which must be 0). The matching CI
// gate is -check-against, which compares a fresh run to the committed
// snapshot.
//
// With -optimize it benchmarks the Pareto-frontier hardware co-design search
// (internal/optimize) on a fixed 64-point design space and writes
// BENCH_optimize.json: the frontier shape, the engine-memoization counters
// (distinct searches must stay at one per shared (layer, array) cell), and
// cold/warm wall-clock figures. -check-against pins the deterministic
// frontier shape exactly and fails on any memoization regression.
//
// With -fleet it benchmarks the fleet tier: a zipfian compile mix driven
// round-robin over an in-process 3-node consistent-hash fleet (persistent
// stores, peer proxying, no sockets) versus the same mix over a single node
// with the same plan-cache capacity, and writes BENCH_fleet.json (fleet vs
// baseline hit rate, fleet-wide compile count, proxied/compute/hit latency
// classes). -check-against gates hit-rate, compile-count and proxied-latency
// regressions; the workload is deterministic, so the cache figures reproduce
// across machines.
//
// Examples:
//
//	vwsdkbench                            # 10ms per timed loop, writes BENCH_search.json
//	vwsdkbench -benchtime 1x -o out.json  # one iteration per loop (CI smoke)
//	vwsdkbench -filter VGG-13 -benchtime 100ms
//	vwsdkbench -check-reduction 10        # exit 1 unless some Table-I layer prunes ≥10x
//	vwsdkbench -serve                     # serve benchmark, writes BENCH_serve.json
//	vwsdkbench -serve -benchtime 1x -check-against BENCH_serve.json
//	vwsdkbench -fleet                     # fleet benchmark, writes BENCH_fleet.json
//	vwsdkbench -fleet -check-against BENCH_fleet.json
//	vwsdkbench -optimize                  # co-design search benchmark, writes BENCH_optimize.json
//	vwsdkbench -optimize -benchtime 1x -check-against BENCH_optimize.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/cliutil"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "vwsdkbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out, progress io.Writer) (retErr error) {
	fs := flag.NewFlagSet("vwsdkbench", flag.ContinueOnError)
	var (
		outPath   = fs.String("o", "", "output file (default BENCH_search.json, or BENCH_serve.json with -serve); - writes the JSON to stdout")
		benchtime = fs.String("benchtime", "10ms", "minimum time per timed loop, or Nx for exactly N iterations (only 1x is supported)")
		filter    = fs.String("filter", "", "run only workloads whose name contains this substring")
		check     = fs.Float64("check-reduction", 0, "exit non-zero unless the best Table-I candidate reduction is at least this factor")
		serve     = fs.Bool("serve", false, "benchmark the HTTP serve path (cold/warm compile, streaming sweep) instead of the search")
		fleet     = fs.Bool("fleet", false, "benchmark an in-process 3-node consistent-hash fleet under a zipfian compile mix instead of the search")
		optimizeB = fs.Bool("optimize", false, "benchmark the Pareto-frontier co-design search instead of the layer search")
		against   = fs.String("check-against", "", "with -serve, -fleet or -optimize: exit non-zero if the run regresses versus this committed snapshot")
		quiet     = fs.Bool("quiet", false, "suppress per-workload progress output")
		timeout   = fs.Duration("timeout", 0, "abort the harness after this long (0 = no deadline)")
		version   = fs.Bool("version", false, "print the version and exit")
		prof      cliutil.ProfileFlags
		tf        cliutil.TraceFlags
	)
	prof.Register(fs)
	tf.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintf(out, "vwsdkbench %s\n", cliutil.Version())
		return nil
	}
	opts := bench.Options{}
	if !*quiet {
		opts.Progress = progress
	}
	if *benchtime == "1x" {
		opts.Once = true
	} else {
		d, err := time.ParseDuration(*benchtime)
		if err != nil {
			return fmt.Errorf("-benchtime: %w (want a duration like 100ms, or 1x)", err)
		}
		opts.Benchtime = d
	}
	opts.Filter = *filter

	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && retErr == nil {
			retErr = perr
		}
	}()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	// -trace records one span per workload (with its timed loops as
	// children), so a whole benchmark run can be opened in chrome://tracing.
	ctx = tf.Context(ctx, "vwsdkbench")
	defer func() {
		if terr := tf.Write(); terr != nil && retErr == nil {
			retErr = terr
		}
	}()
	if *serve || *fleet || *optimizeB {
		var modes []string
		for flagName, on := range map[string]bool{"-serve": *serve, "-fleet": *fleet, "-optimize": *optimizeB} {
			if on {
				modes = append(modes, flagName)
			}
		}
		if len(modes) > 1 {
			return fmt.Errorf("-serve, -fleet and -optimize are mutually exclusive")
		}
		mode := modes[0]
		if *check > 0 {
			return fmt.Errorf("-check-reduction applies to the search benchmark, not %s", mode)
		}
		if *filter != "" {
			return fmt.Errorf("-filter applies to the search benchmark, not %s", mode)
		}
		switch {
		case *fleet:
			return runFleet(ctx, opts, *outPath, *against, out, progress)
		case *optimizeB:
			return runOptimize(ctx, opts, *outPath, *against, out, progress)
		}
		return runServe(ctx, opts, *outPath, *against, out, progress)
	}
	if *against != "" {
		return fmt.Errorf("-check-against requires -serve, -fleet or -optimize")
	}
	if *outPath == "" {
		*outPath = "BENCH_search.json"
	}
	rep, err := bench.Run(ctx, opts)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *outPath == "-" {
		if _, err := out.Write(data); err != nil {
			return err
		}
	} else {
		if err := os.WriteFile(*outPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(progress, "wrote %s: %d workloads, best Table-I reduction %.1fx\n",
			*outPath, len(rep.Workloads), rep.MaxTable1Reduction)
	}
	if *check > 0 && rep.MaxTable1Reduction < *check {
		return fmt.Errorf("pruned-vs-exhaustive candidate reduction regressed: best Table-I factor %.1fx < required %.1fx",
			rep.MaxTable1Reduction, *check)
	}
	return nil
}

// runServe executes the serve benchmark, writes the report, and applies the
// -check-against regression gate.
func runServe(ctx context.Context, opts bench.Options, outPath, against string, out, progress io.Writer) error {
	rep, err := bench.RunServe(ctx, opts)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "" {
		outPath = "BENCH_serve.json"
	}
	if outPath == "-" {
		if _, err := out.Write(data); err != nil {
			return err
		}
	} else {
		if err := os.WriteFile(outPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(progress, "wrote %s: %d endpoints, warm plan path allocs %g\n",
			outPath, len(rep.Endpoints), rep.WarmPlanPathAllocs)
	}
	if against != "" {
		return checkServe(rep, against)
	}
	return nil
}

// checkServe fails when the fresh serve run allocates more than the committed
// snapshot allows. Latency is machine-dependent and not gated; allocation
// counts are deterministic, so they are: the warm plan path may never exceed
// the snapshot (committed at 0), and warm-compile end-to-end allocs/request
// get 25%+16 headroom for Go-runtime and net/http drift.
func checkServe(rep *bench.ServeReport, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("-check-against: %w", err)
	}
	var base bench.ServeReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("-check-against: parse %s: %w", path, err)
	}
	if base.Schema != bench.ServeSchema {
		return fmt.Errorf("-check-against: %s has schema %q, want %q", path, base.Schema, bench.ServeSchema)
	}
	if rep.WarmPlanPathAllocs > base.WarmPlanPathAllocs {
		return fmt.Errorf("warm plan path allocations regressed: %g/request > committed %g",
			rep.WarmPlanPathAllocs, base.WarmPlanPathAllocs)
	}
	got := findEndpoint(rep, "compile-warm")
	want := findEndpoint(&base, "compile-warm")
	if got == nil || want == nil {
		return fmt.Errorf("-check-against: compile-warm endpoint missing (run=%v, committed=%v)", got != nil, want != nil)
	}
	limit := int64(float64(want.AllocsPerRequest)*1.25) + 16
	if got.AllocsPerRequest > limit {
		return fmt.Errorf("warm /v1/compile allocations regressed: %d/request > limit %d (committed %d)",
			got.AllocsPerRequest, limit, want.AllocsPerRequest)
	}
	return nil
}

// runFleet executes the fleet benchmark, writes the report, and applies the
// -check-against regression gate.
func runFleet(ctx context.Context, opts bench.Options, outPath, against string, out, progress io.Writer) error {
	rep, err := bench.RunFleet(ctx, opts)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "" {
		outPath = "BENCH_fleet.json"
	}
	if outPath == "-" {
		if _, err := out.Write(data); err != nil {
			return err
		}
	} else {
		if err := os.WriteFile(outPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(progress, "wrote %s: fleet hit rate %.3f vs baseline %.3f, %d fleet compiles (%d baseline)\n",
			outPath, rep.FleetHitRate, rep.BaselineHitRate, rep.FleetCompiles, rep.BaselineCompiles)
	}
	if against != "" {
		return checkFleet(rep, against)
	}
	return nil
}

// checkFleet fails when the fresh fleet run regresses versus the committed
// snapshot. The workload is fully deterministic (seeded zipf, round-robin
// placement, flushed write-behinds), so the cache-behavior figures — hit
// rates and fleet-wide compile count — must reproduce almost exactly on any
// machine; latency is machine-dependent, so proxied latency only gets a
// generous order-of-magnitude bound that still catches protocol regressions
// (extra hops, redundant validation, lost coalescing).
func checkFleet(rep *bench.FleetReport, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("-check-against: %w", err)
	}
	var base bench.FleetReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("-check-against: parse %s: %w", path, err)
	}
	if base.Schema != bench.FleetSchema {
		return fmt.Errorf("-check-against: %s has schema %q, want %q", path, base.Schema, bench.FleetSchema)
	}
	if rep.FleetHitRate <= rep.BaselineHitRate {
		return fmt.Errorf("fleet hit rate %.3f not above single-node baseline %.3f",
			rep.FleetHitRate, rep.BaselineHitRate)
	}
	if rep.FleetHitRate < base.FleetHitRate-0.02 {
		return fmt.Errorf("fleet hit rate regressed: %.3f < committed %.3f (tolerance 0.02)",
			rep.FleetHitRate, base.FleetHitRate)
	}
	if base.FleetCompiles > 0 && rep.FleetCompiles > base.FleetCompiles {
		return fmt.Errorf("fleet-wide compiles regressed: %d > committed %d (a key is being recompiled)",
			rep.FleetCompiles, base.FleetCompiles)
	}
	limit := 10 * base.ProxiedP50Ns
	if floor := int64(5 * time.Millisecond); limit < floor {
		limit = floor
	}
	if rep.ProxiedP50Ns > limit {
		return fmt.Errorf("proxied p50 regressed: %dns > limit %dns (committed %dns)",
			rep.ProxiedP50Ns, limit, base.ProxiedP50Ns)
	}
	return nil
}

// runOptimize executes the co-design search benchmark, writes the report, and
// applies the -check-against regression gate.
func runOptimize(ctx context.Context, opts bench.Options, outPath, against string, out, progress io.Writer) error {
	rep, err := bench.RunOptimize(ctx, opts)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "" {
		outPath = "BENCH_optimize.json"
	}
	if outPath == "-" {
		if _, err := out.Write(data); err != nil {
			return err
		}
	} else {
		if err := os.WriteFile(outPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(progress, "wrote %s: %d design points, frontier %d (%d dominated), %d distinct searches of %d served\n",
			outPath, rep.PointsEvaluated, rep.FrontierSize, rep.Dominated,
			rep.DistinctSearches, rep.SearchesServed)
	}
	if against != "" {
		return checkOptimize(rep, against)
	}
	return nil
}

// checkOptimize fails when the fresh optimize run diverges from the committed
// snapshot. The workload is fully deterministic — a fixed space enumerated
// and evaluated sequentially — so the frontier shape must reproduce exactly
// on any machine, and the distinct-search count may never exceed the
// snapshot's: one extra algorithm run means a shared (layer, array) cell was
// searched twice, i.e. the memoization reuse the optimizer is built on broke.
// Wall-clock figures are machine-dependent and not gated.
func checkOptimize(rep *bench.OptimizeReport, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("-check-against: %w", err)
	}
	var base bench.OptimizeReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("-check-against: parse %s: %w", path, err)
	}
	if base.Schema != bench.OptimizeSchema {
		return fmt.Errorf("-check-against: %s has schema %q, want %q", path, base.Schema, bench.OptimizeSchema)
	}
	if rep.PointsEvaluated != base.PointsEvaluated || rep.FrontierSize != base.FrontierSize ||
		rep.Dominated != base.Dominated {
		return fmt.Errorf("frontier shape regressed: evaluated/frontier/dominated %d/%d/%d != committed %d/%d/%d",
			rep.PointsEvaluated, rep.FrontierSize, rep.Dominated,
			base.PointsEvaluated, base.FrontierSize, base.Dominated)
	}
	if rep.DistinctSearches > base.DistinctSearches {
		return fmt.Errorf("search memoization regressed: %d distinct searches > committed %d (a shared cell ran twice)",
			rep.DistinctSearches, base.DistinctSearches)
	}
	return nil
}

func findEndpoint(rep *bench.ServeReport, name string) *bench.ServeEndpointResult {
	for i := range rep.Endpoints {
		if rep.Endpoints[i].Name == name {
			return &rep.Endpoints[i]
		}
	}
	return nil
}
