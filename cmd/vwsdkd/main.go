// Command vwsdkd serves the compile pipeline over HTTP: a long-lived
// daemon that keeps one search engine's cache warm across requests and
// coalesces identical concurrent compilations (see internal/server for the
// API). It shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests before exiting.
//
// With -store the plan cache persists: every locally computed plan is
// written behind to a content-addressed on-disk store and a restarted
// daemon answers previously compiled requests from disk without
// re-searching. With -peers a static fleet of vwsdkd instances shares the
// key space by consistent hashing — a miss on a key another node owns is
// proxied to that node (one hop, falling back to local compute when the
// owner is down), so the fleet compiles each key once, anywhere. -warm bulk
// pre-compiles a manifest of requests (resumable via the store) before
// serving; -warm-only exits after warming, for offline store priming.
//
// Examples:
//
//	vwsdkd -addr :8080
//	vwsdkd -addr 127.0.0.1:0 -workers 4 -plan-cache 256 -timeout 30s -quiet
//	vwsdkd -addr :8080 -pprof 127.0.0.1:6060   # opt-in profiling listener
//	vwsdkd -addr :8080 -store /var/lib/vwsdk/plans
//	vwsdkd -addr :8081 -store s1 -peers 127.0.0.1:8081,127.0.0.1:8082
//	vwsdkd -store plans -warm examples/manifests/zoo.json -warm-only
//
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/metrics            # Prometheus text exposition
//	curl -s -X POST localhost:8080/v1/compile \
//	  -d '{"network": "VGG-13", "array": "512x512"}'
//	curl -s -X POST 'localhost:8080/v1/compile?trace=1' \
//	  -d '{"network": "VGG-13", "array": "512x512"}'   # attaches the span tree
//	curl -s -X POST localhost:8080/v1/jobs \
//	  -d '{"sweep": {"networks": ["VGG-13"], "arrays": ["256x256", "512x512"]}}'
//	curl -s localhost:8080/v1/jobs/job-1
//	curl -s -X DELETE localhost:8080/v1/jobs/job-1
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/engine"
	"repro/internal/peer"
	"repro/internal/server"
	"repro/internal/store"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "vwsdkd:", err)
		os.Exit(1)
	}
}

// shutdownTimeout bounds the graceful drain after a termination signal.
const shutdownTimeout = 10 * time.Second

// run serves until ctx is cancelled (signal or test), then drains. The
// "listening on" line goes to out first, so callers binding port 0 can
// discover the address.
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("vwsdkd", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		workers   = fs.Int("workers", 0, "search worker-pool size (0 = GOMAXPROCS)")
		cacheSize = fs.Int("cache", -1, "engine result-cache capacity in entries (0 disables, <0 default 4096)")
		planCache = fs.Int("plan-cache", 0, "plan-cache capacity in plans (0 default 128, <0 disables)")
		inflight  = fs.Int("max-inflight", 0, "max concurrently running compilations (0 = GOMAXPROCS)")
		maxQueue  = fs.Int("max-queue", 0, "max compilations waiting for a slot (0 default 64, <0 rejects immediately)")
		maxBody   = fs.Int64("max-body", 0, "request body limit in bytes (0 default 1 MiB)")
		timeout   = fs.Duration("timeout", 0, "per-request deadline; exceeding it returns a structured 504 (0 = none)")
		jobTTL    = fs.Duration("job-ttl", 0, "how long finished jobs stay queryable (0 default 10m, <0 collect immediately)")
		maxJobs   = fs.Int("max-jobs", 0, "max queued or running jobs (0 default 64)")
		pprofAddr = fs.String("pprof", "", "serve net/http/pprof on this extra address (empty = off; never on the API listener)")
		storeDir  = fs.String("store", "", "persistent plan store directory (empty = no persistence)")
		peers     = fs.String("peers", "", "comma-separated fleet addresses (host:port) sharing the key space by consistent hashing; must include this node")
		peerSelf  = fs.String("peer-self", "", "this node's address in -peers (default: inferred from the listen port, loopback forms collapse)")
		peerTO    = fs.Duration("peer-timeout", 0, "per-hop deadline when proxying to a peer (0 = 10s default)")
		warmPath  = fs.String("warm", "", "bulk pre-compile this manifest of /v1/compile requests at startup (resumable via -store)")
		warmOnly  = fs.Bool("warm-only", false, "with -warm: exit after warming instead of serving (offline store priming)")
		quiet     = fs.Bool("quiet", false, "disable the per-request access log")
		version   = fs.Bool("version", false, "print the version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintf(out, "vwsdkd %s\n", cliutil.Version())
		return nil
	}
	if *warmOnly && *warmPath == "" {
		return errors.New("-warm-only requires -warm")
	}

	var logger *log.Logger
	if !*quiet {
		logger = log.New(out, "vwsdkd: ", log.LstdFlags)
	}
	cfg := server.Config{
		Engine:         engine.New(engine.WithWorkers(*workers), engine.WithCacheSize(*cacheSize)),
		PlanCacheSize:  *planCache,
		MaxConcurrent:  *inflight,
		MaxQueue:       *maxQueue,
		MaxBodyBytes:   *maxBody,
		RequestTimeout: *timeout,
		JobTTL:         *jobTTL,
		MaxJobs:        *maxJobs,
		Logger:         logger,
	}
	var planStore *store.Store
	if *storeDir != "" {
		var err error
		planStore, err = store.Open(*storeDir)
		if err != nil {
			return err
		}
		cfg.Store = planStore
		fmt.Fprintf(out, "vwsdkd: plan store at %s (%d entries)\n", planStore.Dir(), planStore.Len())
	}
	// Flush pending write-behinds on every exit path, so a drained daemon —
	// or a finished -warm-only run — leaves a complete store on disk.
	defer func() {
		if planStore != nil {
			planStore.Flush()
		}
	}()

	// The fleet tier needs the bound port to find this node in -peers, so
	// the listener comes up before the ring when serving; -warm-only skips
	// the listener entirely and identifies itself by -peer-self alone.
	var ln net.Listener
	if !*warmOnly {
		var err error
		ln, err = net.Listen("tcp", *addr)
		if err != nil {
			return err
		}
		defer ln.Close()
		fmt.Fprintf(out, "vwsdkd: listening on %s\n", ln.Addr())
	}

	if *peers != "" {
		self := *peerSelf
		if self == "" && ln != nil {
			self = ln.Addr().String()
		}
		ring, err := peer.NewRing(self, strings.Split(*peers, ","))
		if err != nil {
			return err
		}
		if ring.Self() == "" && !*warmOnly {
			return fmt.Errorf("-peers %q does not include this node (listening on %s); add it or set -peer-self", *peers, ln.Addr())
		}
		cfg.Peers = peer.NewClient(ring, nil, *peerTO)
		fmt.Fprintf(out, "vwsdkd: fleet of %d peers, self %s\n", len(ring.Nodes()), ring.Self())
	}

	srv := server.New(cfg)

	if *warmPath != "" {
		data, err := os.ReadFile(*warmPath)
		if err != nil {
			return fmt.Errorf("warm: %w", err)
		}
		_, reqs, err := server.ParseManifest(data)
		if err != nil {
			return err
		}
		start := time.Now()
		stats, err := srv.Warm(ctx, reqs, 0)
		fmt.Fprintf(out, "vwsdkd: warm %s: %d keys (%d compiled, %d already warm, %d failed) in %s\n",
			*warmPath, stats.Total, stats.Compiled, stats.Hits, stats.Failed, time.Since(start).Round(time.Millisecond))
		if err != nil {
			return fmt.Errorf("warm: %w", err)
		}
		if *warmOnly {
			return nil
		}
	}

	// The profiling endpoint is opt-in and binds its own listener so the
	// API port never exposes pprof, even behind a forgiving reverse proxy.
	var pprofServer *http.Server
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			ln.Close()
			return fmt.Errorf("pprof listen: %w", err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofServer = &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
		fmt.Fprintf(out, "vwsdkd: pprof listening on %s\n", pln.Addr())
		go pprofServer.Serve(pln)
		defer pprofServer.Close()
	}

	// No blanket ReadTimeout/WriteTimeout: sweep streams are legitimately
	// long-lived. Header and idle timeouts are what keep slow or abandoned
	// connections from pinning goroutines and file descriptors.
	hs := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintf(out, "vwsdkd: shutting down (draining for up to %s)\n", shutdownTimeout)
	sctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
