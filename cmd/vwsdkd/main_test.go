package main

import (
	"context"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe io.Writer: run's listening line and the
// access logger write concurrently.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenLine = regexp.MustCompile(`listening on (\S+)`)

// TestRunServesAndShutsDown boots the daemon on an ephemeral port, hits
// /healthz and /v1/compile, then cancels the context and checks the
// graceful-shutdown path returns cleanly.
func TestRunServesAndShutsDown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-quiet"}, &out)
	}()

	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if m := listenLine.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
			break
		}
		select {
		case err := <-done:
			t.Fatalf("daemon exited early: %v\n%s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("no listening line:\n%s", out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}

	spec := `{"network": {"name": "t", "layers": [
	  {"name": "c", "iw": 8, "ih": 8, "kw": 3, "kh": 3, "ic": 4, "oc": 4}]},
	  "array": "64x64"}`
	resp, err = http.Post("http://"+addr+"/v1/compile", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"Totals"`) {
		t.Fatalf("compile: %d %s", resp.StatusCode, body)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(shutdownTimeout + 5*time.Second):
		t.Fatal("daemon did not shut down")
	}
	if !strings.Contains(out.String(), "shutting down") {
		t.Errorf("missing drain notice:\n%s", out.String())
	}
}

var pprofLine = regexp.MustCompile(`pprof listening on (\S+)`)

// TestRunPprofEndpoint boots the daemon with the opt-in -pprof listener and
// checks the profile index is served there — and that the API listener does
// not expose it.
func TestRunPprofEndpoint(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-pprof", "127.0.0.1:0", "-quiet"}, &out)
	}()

	var apiAddr, profAddr string
	deadline := time.Now().Add(10 * time.Second)
	for profAddr == "" || apiAddr == "" {
		s := out.String()
		if m := pprofLine.FindStringSubmatch(s); m != nil {
			profAddr = m[1]
		}
		if m := listenLine.FindStringSubmatch(s); m != nil {
			apiAddr = m[1]
		}
		select {
		case err := <-done:
			t.Fatalf("daemon exited early: %v\n%s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("no listening lines:\n%s", out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if apiAddr == profAddr {
		t.Fatalf("pprof bound to the API address %s", apiAddr)
	}

	resp, err := http.Get("http://" + profAddr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index: %d %s", resp.StatusCode, body)
	}

	// The API listener must not serve the profiler.
	resp, err = http.Get("http://" + apiAddr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("API listener serves /debug/pprof/")
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(shutdownTimeout + 5*time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// TestRunVersion checks -version prints the tool name and exits without
// binding a socket.
func TestRunVersion(t *testing.T) {
	var out syncBuffer
	if err := run(context.Background(), []string{"-version"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "vwsdkd ") {
		t.Errorf("version output %q", out.String())
	}
}

// TestRunBadFlags covers flag and listen errors.
func TestRunBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-nonsense"},
		{"-addr", "not-an-address"},
		{"-addr", "127.0.0.1:0", "-pprof", "not-an-address"},
	} {
		var out syncBuffer
		if err := run(context.Background(), args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
