// Command experiments regenerates every table and figure of the paper's
// evaluation (Table I, Figs. 4, 5, 7, 8, 9) plus the documented extensions
// (ablation, energy, functional verification), printing them and optionally
// writing one .txt and one .csv file per artifact. Searches run through the
// concurrent engine; repeated (layer, array) pairs across experiments are
// costed once.
//
// Examples:
//
//	experiments -out results
//	experiments -only table1,fig8a -workers 4
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/compile"
	"repro/internal/engine"
	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	outDir := fs.String("out", "", "directory for per-experiment .txt/.csv files (skipped when empty)")
	quiet := fs.Bool("quiet", false, "print only one summary line per experiment")
	only := fs.String("only", "", fmt.Sprintf("comma-separated experiment ids to run (default all; have %v)",
		strings.Join(experiments.IDs(), ",")))
	workers := fs.Int("workers", 0, "search worker-pool size (0 = GOMAXPROCS)")
	version := fs.Bool("version", false, "print the version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintf(out, "experiments %s\n", cliutil.Version())
		return nil
	}

	var ids []string
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}
	// All generators share one compile pipeline on one engine, so repeated
	// (layer, array) searches across experiments are costed once.
	comp := compile.New(engine.New(engine.WithWorkers(*workers)))
	results, err := experiments.Run(comp, ids...)
	if err != nil {
		return err
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}
	for _, r := range results {
		if *quiet {
			fmt.Fprintf(out, "%-10s %s (%d rows)\n", r.ID, r.Paper, len(r.Table.Rows))
		} else {
			fmt.Fprintln(out, r.String())
			fmt.Fprintln(out)
		}
		if *outDir != "" {
			txt := filepath.Join(*outDir, r.ID+".txt")
			if err := os.WriteFile(txt, []byte(r.String()), 0o644); err != nil {
				return err
			}
			csv := filepath.Join(*outDir, r.ID+".csv")
			if err := os.WriteFile(csv, []byte(r.Table.CSV()), 0o644); err != nil {
				return err
			}
		}
	}
	if *outDir != "" {
		fmt.Fprintf(out, "wrote %d experiments to %s\n", len(results), *outDir)
	}
	return nil
}
