package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunOnly regenerates a cheap subset quietly and checks one line per
// experiment comes out.
func TestRunOnly(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-only", "fig4,fig5a", "-quiet", "-workers", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, id := range []string{"fig4", "fig5a"} {
		if !strings.Contains(got, id) {
			t.Errorf("output missing %s:\n%s", id, got)
		}
	}
	if n := strings.Count(got, "\n"); n != 2 {
		t.Errorf("quiet mode printed %d lines, want 2:\n%s", n, got)
	}
}

// TestRunWritesArtifacts checks the -out directory gets one .txt and one
// .csv per experiment.
func TestRunWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run([]string{"-only", "fig4", "-quiet", "-out", dir}, &out); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"fig4.txt", "fig4.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing artifact %s: %v", f, err)
		}
	}
	if !strings.Contains(out.String(), "wrote 1 experiments") {
		t.Errorf("missing write summary:\n%s", out.String())
	}
}

// TestRunBadFlags covers unknown experiments and flag errors.
func TestRunBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-only", "fig999"},
		{"-nonsense"},
	} {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestRunVersion checks -version prints the tool name and exits cleanly
// without running anything else.
func TestRunVersion(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-version"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "experiments ") {
		t.Errorf("version output %q", out.String())
	}
}
