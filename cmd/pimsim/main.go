// Command pimsim runs a convolutional layer on the functional PIM crossbar
// simulator under a chosen mapping scheme, verifies the output against the
// reference convolution, and reports cycle, conversion, utilization and
// energy statistics.
//
// Examples:
//
//	pimsim -ifm 14x14 -kernel 3x3 -ic 64 -oc 64 -array 512x512 -scheme vw
//	pimsim -ifm 9x9 -kernel 3x3 -ic 5 -oc 7 -array 64x48 -scheme sdk -quant 8
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cliutil"
	"repro/internal/compile"
	"repro/internal/conv"
	"repro/internal/core"
	"repro/internal/mapping"
	"repro/internal/pimarray"
	"repro/internal/tensor"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pimsim:", err)
		os.Exit(1)
	}
}

// compileScheme maps the -scheme flag onto the compile pipeline's search
// selector.
func compileScheme(scheme string) (compile.Scheme, error) {
	switch scheme {
	case "im2col":
		return compile.Im2col, nil
	case "smd":
		return compile.SMD, nil
	case "sdk":
		return compile.SDK, nil
	case "vw":
		return compile.VWSDK, nil
	default:
		return 0, fmt.Errorf("unknown scheme %q (im2col, smd, sdk, vw)", scheme)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pimsim", flag.ContinueOnError)
	var (
		arraySp = fs.String("array", "512x512", "PIM array size RowsxCols")
		scheme  = fs.String("scheme", "vw", "mapping scheme: im2col, smd, sdk or vw")
		seed    = fs.Uint64("seed", 1, "seed for the deterministic input/weight fill")
		quant   = fs.Int("quant", 0, "weight quantization bits (0 = ideal cells)")
		noise   = fs.Float64("noise", 0, "ADC read-noise sigma (0 = ideal readout)")
		version = fs.Bool("version", false, "print the version and exit")
		tf      cliutil.TraceFlags
		lf      cliutil.LayerFlags
	)
	tf.Register(fs)
	fs.StringVar(&lf.IFM, "ifm", "14x14", "input feature map size WxH")
	fs.StringVar(&lf.Kernel, "kernel", "3x3", "kernel size WxH")
	fs.IntVar(&lf.IC, "ic", 64, "input channels")
	fs.IntVar(&lf.OC, "oc", 64, "output channels")
	fs.IntVar(&lf.Stride, "stride", 1, "convolution stride")
	fs.IntVar(&lf.Pad, "pad", 0, "zero padding")
	fs.IntVar(&lf.Groups, "groups", 1, "convolution groups (ic for depthwise)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintf(out, "pimsim %s\n", cliutil.Version())
		return nil
	}
	a, err := cliutil.ParseArray(*arraySp)
	if err != nil {
		return err
	}
	l, err := lf.Layer("layer")
	if err != nil {
		return err
	}
	sc, err := compileScheme(*scheme)
	if err != nil {
		return err
	}
	// Compile the layer: one call yields the chosen mapping, its energy
	// report and the physical plan the simulator executes; -trace records
	// the compilation's span tree.
	ctx := tf.Context(context.Background(), "pimsim")
	lp, err := compile.New(core.Serial{}).CompileLayer(ctx, l, a, compile.Options{Scheme: sc})
	if err != nil {
		return err
	}
	if err := tf.Write(); err != nil {
		return err
	}
	m := lp.Search.Best

	var opts []pimarray.Option
	if *quant > 0 {
		opts = append(opts, pimarray.WithQuantization(*quant, 4))
	}
	if *noise > 0 {
		opts = append(opts, pimarray.WithReadNoise(*noise, *seed^0x5eed))
	}

	ifm := tensor.RandTensor3(*seed, l.IC, l.IH, l.IW)
	w := tensor.RandTensor4(*seed^0x9e3779b97f4a7c15, l.OC, l.ICg(), l.KH, l.KW)
	got, stats, err := mapping.Run(m, ifm, w, opts...)
	if err != nil {
		return err
	}
	want, err := conv.Reference(l, ifm, w)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "layer    %v\n", l)
	fmt.Fprintf(out, "array    %v\n", a)
	fmt.Fprintf(out, "mapping  %v\n", m)
	fmt.Fprintf(out, "tile     %s (paper notation PWxICtxOCt)\n", m.TileString())
	fmt.Fprintf(out, "cycles   %d (analytic %d)\n", stats.Cycles, m.Cycles)
	fmt.Fprintf(out, "DAC/ADC  %d / %d conversions\n", stats.DACConversions, stats.ADCConversions)
	fmt.Fprintf(out, "programs %d tiles, %d cell writes\n", stats.ProgramOps, stats.CellWrites)
	fmt.Fprintf(out, "util     %.1f%% analytic (eq. 9), %.1f%% executed\n",
		m.Utilization(), float64(stats.UsedCellCycles)*100/
			(float64(stats.Cycles)*float64(a.Rows)*float64(a.Cols)))

	rep := lp.Energy
	fmt.Fprintf(out, "latency  %v   energy %.3g uJ (%.1f%% conversions)\n",
		rep.Latency, rep.EnergyTotal*1e6, 100*rep.ConversionFraction())

	if *quant == 0 && *noise == 0 {
		if !got.Equal(want) {
			return errors.New("VERIFY FAILED: crossbar output differs from reference convolution")
		}
		fmt.Fprintln(out, "verify   PASS (bit-exact vs reference convolution)")
	} else {
		fmt.Fprintf(out, "verify   max |diff| vs reference = %g (non-idealities enabled)\n",
			got.MaxAbsDiff(want))
	}
	return nil
}
