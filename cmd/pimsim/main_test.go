package main

import (
	"strings"
	"testing"
)

// TestRunSchemes executes a small layer on the simulated crossbar under
// every scheme and requires the bit-exact verification to pass.
func TestRunSchemes(t *testing.T) {
	for _, scheme := range []string{"im2col", "smd", "sdk", "vw"} {
		var out strings.Builder
		err := run([]string{"-ifm", "9x9", "-kernel", "3x3", "-ic", "5", "-oc", "7",
			"-array", "64x48", "-scheme", scheme}, &out)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if !strings.Contains(out.String(), "verify   PASS") {
			t.Errorf("%s: no bit-exact verification:\n%s", scheme, out.String())
		}
	}
}

// TestRunNonIdeal exercises the quantization/noise path, which reports a
// max-difference instead of exact verification.
func TestRunNonIdeal(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-ifm", "8x8", "-kernel", "3x3", "-ic", "4", "-oc", "4",
		"-array", "64x64", "-quant", "8", "-noise", "0.01"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "max |diff|") {
		t.Errorf("non-ideal run missing diff report:\n%s", out.String())
	}
}

// TestRunBadFlags covers flag-parsing failures.
func TestRunBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-scheme", "magic"},
		{"-array", "0"},
		{"-ifm", "banana"},
		{"-nonsense"},
	} {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestRunVersion checks -version prints the tool name and exits cleanly
// without running anything else.
func TestRunVersion(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-version"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "pimsim ") {
		t.Errorf("version output %q", out.String())
	}
}
