package nn

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/mapping"
	"repro/internal/tensor"
)

func TestReLU(t *testing.T) {
	x := tensor.NewTensor3(1, 1, 4)
	copy(x.Data, []float64{-2, 0, 3, -0.5})
	y := ReLU(x)
	want := []float64{0, 0, 3, 0}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Errorf("ReLU[%d] = %v, want %v", i, y.Data[i], want[i])
		}
	}
	if x.Data[0] != -2 {
		t.Error("ReLU mutated its input")
	}
}

func TestMaxPool(t *testing.T) {
	x := tensor.NewTensor3(1, 4, 4)
	for i := range x.Data {
		x.Data[i] = float64(i)
	}
	y := MaxPool(x, 2)
	if y.H != 2 || y.W != 2 {
		t.Fatalf("pooled dims %dx%d", y.H, y.W)
	}
	// Max of each 2x2 block of the raster 0..15.
	want := [][]float64{{5, 7}, {13, 15}}
	for yy := 0; yy < 2; yy++ {
		for xx := 0; xx < 2; xx++ {
			if y.At(0, yy, xx) != want[yy][xx] {
				t.Errorf("pool[%d][%d] = %v, want %v", yy, xx, y.At(0, yy, xx), want[yy][xx])
			}
		}
	}
	// Remainder rows/cols are dropped.
	odd := tensor.NewTensor3(1, 5, 5)
	if p := MaxPool(odd, 2); p.H != 2 || p.W != 2 {
		t.Errorf("odd pool dims %dx%d", p.H, p.W)
	}
}

func TestAvgPool(t *testing.T) {
	x := tensor.NewTensor3(1, 2, 2)
	copy(x.Data, []float64{1, 3, 5, 7})
	y := AvgPool(x, 2)
	if y.At(0, 0, 0) != 4 {
		t.Errorf("avg = %v, want 4", y.At(0, 0, 0))
	}
}

func TestGlobalAvgPool(t *testing.T) {
	x := tensor.NewTensor3(2, 2, 2)
	copy(x.Data, []float64{1, 2, 3, 4, 10, 10, 10, 10})
	g := GlobalAvgPool(x)
	if g[0] != 2.5 || g[1] != 10 {
		t.Errorf("global avg = %v", g)
	}
}

func TestPoolPanics(t *testing.T) {
	for _, f := range []func(){
		func() { MaxPool(tensor.NewTensor3(1, 1, 1), 2) },
		func() { MaxPool(tensor.NewTensor3(1, 4, 4), 0) },
		func() { AvgPool(tensor.NewTensor3(1, 1, 1), 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestTinyCNNValidates(t *testing.T) {
	m := TinyCNN(1)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestModelValidateRejects(t *testing.T) {
	if err := (&Model{Name: "empty"}).Validate(); err == nil {
		t.Error("empty model accepted")
	}
	m := TinyCNN(1)
	m.Stages[1].Layer.IC = 99 // breaks the chain
	if err := m.Validate(); err == nil {
		t.Error("broken chain accepted")
	}
	m = TinyCNN(1)
	m.Stages[0].Weights = tensor.NewTensor4(1, 1, 1, 1)
	if err := m.Validate(); err == nil {
		t.Error("mismatched weights accepted")
	}
	m = TinyCNN(1)
	m.Stages[2].Pool = 50
	if err := m.Validate(); err == nil {
		t.Error("oversized pool accepted")
	}
}

func TestInferReferenceShapes(t *testing.T) {
	m := TinyCNN(2)
	ifm := tensor.RandTensor3(3, 3, 16, 16)
	out, err := m.Infer(ifm, Reference)
	if err != nil {
		t.Fatal(err)
	}
	// conv1: 16->14, pool -> 7; conv2: 7->5; conv3: 5->3.
	if out.C != 8 || out.H != 3 || out.W != 3 {
		t.Fatalf("output %v, want 8x3x3", out)
	}
}

// TestEndToEndCrossbarEqualsReference is the E16 integration test: the full
// tiny CNN inferred with every convolution executed on a simulated PIM
// crossbar (VW-SDK mappings) equals the pure reference inference exactly.
func TestEndToEndCrossbarEqualsReference(t *testing.T) {
	m := TinyCNN(7)
	ifm := tensor.RandTensor3(8, 3, 16, 16)
	want, err := m.Infer(ifm, Reference)
	if err != nil {
		t.Fatal(err)
	}
	array := core.Array{Rows: 96, Cols: 64}
	crossbarExec := func(l core.Layer, x *tensor.Tensor3, w *tensor.Tensor4) (*tensor.Tensor3, error) {
		res, err := core.SearchVWSDK(l, array)
		if err != nil {
			return nil, err
		}
		out, _, err := mapping.Run(res.Best, x, w)
		return out, err
	}
	got, err := m.Infer(ifm, crossbarExec)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("crossbar inference differs (max |diff| %g)", got.MaxAbsDiff(want))
	}
}

// TestEndToEndAllSchemes repeats E16 under each mapping scheme.
func TestEndToEndAllSchemes(t *testing.T) {
	if testing.Short() {
		t.Skip("full network x 4 schemes")
	}
	m := TinyCNN(9)
	ifm := tensor.RandTensor3(10, 3, 16, 16)
	want, err := m.Infer(ifm, Reference)
	if err != nil {
		t.Fatal(err)
	}
	array := core.Array{Rows: 96, Cols: 64}
	schemes := map[string]func(l core.Layer) (core.Mapping, error){
		"im2col": func(l core.Layer) (core.Mapping, error) { return core.Im2col(l, array) },
		"smd": func(l core.Layer) (core.Mapping, error) {
			r, err := core.SearchSMD(l, array)
			return r.Best, err
		},
		"sdk": func(l core.Layer) (core.Mapping, error) {
			r, err := core.SearchSDK(l, array)
			return r.Best, err
		},
		"vw": func(l core.Layer) (core.Mapping, error) {
			r, err := core.SearchVWSDK(l, array)
			return r.Best, err
		},
	}
	for name, pick := range schemes {
		t.Run(name, func(t *testing.T) {
			exec := func(l core.Layer, x *tensor.Tensor3, w *tensor.Tensor4) (*tensor.Tensor3, error) {
				mp, err := pick(l)
				if err != nil {
					return nil, err
				}
				out, _, err := mapping.Run(mp, x, w)
				return out, err
			}
			got, err := m.Infer(ifm, exec)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatalf("%s inference differs (max |diff| %g)", name, got.MaxAbsDiff(want))
			}
		})
	}
}

func TestInferPropagatesExecError(t *testing.T) {
	m := TinyCNN(1)
	failing := func(core.Layer, *tensor.Tensor3, *tensor.Tensor4) (*tensor.Tensor3, error) {
		return nil, fmt.Errorf("boom")
	}
	if _, err := m.Infer(tensor.RandTensor3(1, 3, 16, 16), failing); err == nil {
		t.Fatal("exec error swallowed")
	}
}
