// Package nn provides the minimal network-level substrate needed to run a
// complete CNN — convolutions interleaved with activations and pooling —
// end to end on either the golden convolution or the PIM crossbar
// simulator, with both paths producing identical feature maps.
//
// The paper evaluates per-layer mapping costs; this package closes the loop
// at the network level: a Model chains conv stages whose executor is
// pluggable, so the same network can run on conv.Reference and on
// mapping-executed crossbars and be compared bit-for-bit (extension E16,
// exercised by examples/cnn and the integration tests).
package nn

import (
	"fmt"
	"math"

	"repro/internal/conv"
	"repro/internal/core"
	"repro/internal/tensor"
)

// ReLU returns max(0, x) element-wise in a new tensor.
func ReLU(t *tensor.Tensor3) *tensor.Tensor3 {
	out := t.Clone()
	for i, v := range out.Data {
		if v < 0 {
			out.Data[i] = 0
		}
	}
	return out
}

// MaxPool performs k×k max pooling with stride k (the classic VGG pooling);
// trailing rows/columns that do not fill a window are dropped. It panics on
// k < 1 or inputs smaller than k (programming errors).
func MaxPool(t *tensor.Tensor3, k int) *tensor.Tensor3 {
	if k < 1 || t.H < k || t.W < k {
		panic(fmt.Sprintf("nn: MaxPool k=%d on %v", k, t))
	}
	oh, ow := t.H/k, t.W/k
	out := tensor.NewTensor3(t.C, oh, ow)
	for c := 0; c < t.C; c++ {
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				best := math.Inf(-1)
				for dy := 0; dy < k; dy++ {
					for dx := 0; dx < k; dx++ {
						if v := t.At(c, y*k+dy, x*k+dx); v > best {
							best = v
						}
					}
				}
				out.Set(c, y, x, best)
			}
		}
	}
	return out
}

// AvgPool performs k×k average pooling with stride k; trailing remainder
// rows/columns are dropped.
func AvgPool(t *tensor.Tensor3, k int) *tensor.Tensor3 {
	if k < 1 || t.H < k || t.W < k {
		panic(fmt.Sprintf("nn: AvgPool k=%d on %v", k, t))
	}
	oh, ow := t.H/k, t.W/k
	out := tensor.NewTensor3(t.C, oh, ow)
	inv := 1 / float64(k*k)
	for c := 0; c < t.C; c++ {
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				var sum float64
				for dy := 0; dy < k; dy++ {
					for dx := 0; dx < k; dx++ {
						sum += t.At(c, y*k+dy, x*k+dx)
					}
				}
				out.Set(c, y, x, sum*inv)
			}
		}
	}
	return out
}

// GlobalAvgPool averages each channel to a single value.
func GlobalAvgPool(t *tensor.Tensor3) []float64 {
	out := make([]float64, t.C)
	inv := 1 / float64(t.H*t.W)
	for c := 0; c < t.C; c++ {
		var sum float64
		for y := 0; y < t.H; y++ {
			for x := 0; x < t.W; x++ {
				sum += t.At(c, y, x)
			}
		}
		out[c] = sum * inv
	}
	return out
}

// Stage is one conv block of a Model: a convolution followed by optional
// ReLU and optional max pooling.
type Stage struct {
	// Layer is the convolution geometry; its IW/IH/IC must match the
	// incoming feature map.
	Layer core.Layer

	// Weights is the OIHW kernel tensor for the stage.
	Weights *tensor.Tensor4

	// ReLU applies a rectifier after the convolution.
	ReLU bool

	// Pool applies Pool×Pool max pooling after the activation; 0 or 1
	// disables pooling.
	Pool int
}

// Model is a feed-forward CNN: a chain of conv stages.
type Model struct {
	Name   string
	Stages []Stage
}

// ConvExec executes one convolution; implementations are conv.Reference (a
// golden run) or a crossbar-backed executor (see examples/cnn and the
// mapping package).
type ConvExec func(l core.Layer, ifm *tensor.Tensor3, w *tensor.Tensor4) (*tensor.Tensor3, error)

// Reference is the golden ConvExec.
func Reference(l core.Layer, ifm *tensor.Tensor3, w *tensor.Tensor4) (*tensor.Tensor3, error) {
	return conv.Reference(l, ifm, w)
}

// Validate checks that the stage geometries chain: each stage's IFM dims
// must equal the previous stage's output dims (after pooling).
func (m *Model) Validate() error {
	if len(m.Stages) == 0 {
		return fmt.Errorf("nn: model %q has no stages", m.Name)
	}
	c, h, w := m.Stages[0].Layer.IC, m.Stages[0].Layer.IH, m.Stages[0].Layer.IW
	for i, s := range m.Stages {
		l := s.Layer.Normalized()
		if err := l.Validate(); err != nil {
			return fmt.Errorf("nn: stage %d: %w", i, err)
		}
		if l.IC != c || l.IH != h || l.IW != w {
			return fmt.Errorf("nn: stage %d expects %dx%dx%d, previous stage yields %dx%dx%d",
				i, l.IC, l.IH, l.IW, c, h, w)
		}
		if s.Weights == nil || s.Weights.O != l.OC || s.Weights.C != l.ICg() ||
			s.Weights.H != l.KH || s.Weights.W != l.KW {
			return fmt.Errorf("nn: stage %d weights do not match layer %v", i, l)
		}
		c, h, w = l.OC, l.OutH(), l.OutW()
		if s.Pool > 1 {
			if h < s.Pool || w < s.Pool {
				return fmt.Errorf("nn: stage %d pool %d exceeds %dx%d output", i, s.Pool, h, w)
			}
			h, w = h/s.Pool, w/s.Pool
		}
	}
	return nil
}

// Infer runs the model on ifm using exec for every convolution and returns
// the final feature map.
func (m *Model) Infer(ifm *tensor.Tensor3, exec ConvExec) (*tensor.Tensor3, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	x := ifm
	for i, s := range m.Stages {
		y, err := exec(s.Layer.Normalized(), x, s.Weights)
		if err != nil {
			return nil, fmt.Errorf("nn: stage %d: %w", i, err)
		}
		if s.ReLU {
			y = ReLU(y)
		}
		if s.Pool > 1 {
			y = MaxPool(y, s.Pool)
		}
		x = y
	}
	return x, nil
}

// TinyCNN builds a small, fully chained three-stage CNN with deterministic
// integer weights, sized to exercise AR/AC tiling on modest arrays:
// 16x16x3 input → conv3x3(8)+ReLU+pool2 → conv3x3(16)+ReLU → conv3x3(8).
func TinyCNN(seed uint64) *Model {
	mk := func(name string, iw, ic, oc int, relu bool, pool int, s uint64) Stage {
		return Stage{
			Layer: core.Layer{Name: name, IW: iw, IH: iw,
				KW: 3, KH: 3, IC: ic, OC: oc},
			Weights: tensor.RandTensor4(s, oc, ic, 3, 3),
			ReLU:    relu,
			Pool:    pool,
		}
	}
	return &Model{
		Name: "tiny-cnn",
		Stages: []Stage{
			mk("conv1", 16, 3, 8, true, 2, seed),
			mk("conv2", 7, 8, 16, true, 0, seed+1),
			mk("conv3", 5, 16, 8, false, 0, seed+2),
		},
	}
}
