package compile

import (
	"testing"

	"repro/internal/core"
	"repro/internal/model"
)

// TestAxesZeroValue pins the refactor's core contract: the zero Axes
// describes exactly the single zero Options, so single-point compilation
// semantics (and therefore compile.Key and the golden files) are untouched.
func TestAxesZeroValue(t *testing.T) {
	got := Axes{}.Candidates()
	if len(got) != 1 {
		t.Fatalf("zero Axes expands to %d candidates, want 1", len(got))
	}
	if got[0] != (Options{}) {
		t.Fatalf("zero Axes expands to %+v, want the zero Options", got[0])
	}
	if n := (Axes{}).Count(); n != 1 {
		t.Fatalf("zero Axes Count() = %d, want 1", n)
	}
}

func TestAxesCrossProduct(t *testing.T) {
	a := Axes{
		Schemes:         SchemeAxis{VWSDK, SDK},
		Arrays:          CountAxis{1, 4, 8},
		GatePeripherals: BoolAxis{false, true},
	}
	got := a.Candidates()
	if len(got) != a.Count() {
		t.Fatalf("len(Candidates()) = %d, Count() = %d", len(got), a.Count())
	}
	if len(got) != 12 {
		t.Fatalf("got %d candidates, want 12", len(got))
	}
	// Deterministic order: schemes outermost, then arrays, then gating.
	want := []Options{
		{Scheme: VWSDK, Arrays: 1, GatePeripherals: false},
		{Scheme: VWSDK, Arrays: 1, GatePeripherals: true},
		{Scheme: VWSDK, Arrays: 4, GatePeripherals: false},
		{Scheme: VWSDK, Arrays: 4, GatePeripherals: true},
		{Scheme: VWSDK, Arrays: 8, GatePeripherals: false},
		{Scheme: VWSDK, Arrays: 8, GatePeripherals: true},
		{Scheme: SDK, Arrays: 1, GatePeripherals: false},
		{Scheme: SDK, Arrays: 1, GatePeripherals: true},
		{Scheme: SDK, Arrays: 4, GatePeripherals: false},
		{Scheme: SDK, Arrays: 4, GatePeripherals: true},
		{Scheme: SDK, Arrays: 8, GatePeripherals: false},
		{Scheme: SDK, Arrays: 8, GatePeripherals: true},
	}
	for i, o := range want {
		if got[i] != o {
			t.Errorf("candidate %d = %+v, want %+v", i, got[i], o)
		}
	}
}

// TestAxesDistinctKeys checks that every candidate of a normalized axis set
// is a genuinely different compilation: the canonical cache keys of a fixed
// request under each candidate are pairwise distinct.
func TestAxesDistinctKeys(t *testing.T) {
	a := Axes{
		Schemes:         SchemeAxis{VWSDK, Im2col, SMD, SDK},
		Arrays:          CountAxis{1, 4},
		GatePeripherals: BoolAxis{false, true},
	}
	n := model.Single(core.Layer{IW: 32, IH: 32, KW: 3, KH: 3, IC: 3, OC: 16})
	arr := core.Array{Rows: 128, Cols: 128}
	seen := make(map[string]Options)
	for _, o := range a.Candidates() {
		key, err := Key(NewRequest(n, arr, o))
		if err != nil {
			t.Fatalf("Key(%+v): %v", o, err)
		}
		if prev, dup := seen[key]; dup {
			t.Errorf("options %+v and %+v share key %q", prev, o, key)
		}
		seen[key] = o
	}
	if len(seen) != a.Count() {
		t.Errorf("got %d distinct keys for %d candidates", len(seen), a.Count())
	}
}

func TestAxesValidate(t *testing.T) {
	if err := (Axes{}).Validate(); err != nil {
		t.Fatalf("zero Axes Validate: %v", err)
	}
	ok := Axes{
		Schemes:  SchemeAxis{VWSDK, Im2col, SMD, SDK},
		Variants: VariantAxis{core.VariantFull, core.VariantSquareTiled, core.VariantRectFullChannel},
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid Axes Validate: %v", err)
	}
	if err := (Axes{Schemes: SchemeAxis{Scheme(99)}}).Validate(); err == nil {
		t.Error("unknown scheme accepted")
	}
	if err := (Axes{Variants: VariantAxis{core.Variant(99)}}).Validate(); err == nil {
		t.Error("unknown variant accepted")
	}
}
