package compile

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestNetworkPlanJSONGolden pins the serialized form of VGG-13 compiled on
// the paper's 512×512 array against a committed golden file, and checks the
// full round trip: ToJSON → FromJSON must reproduce identical totals (and
// per-layer cycle decisions). Regenerate with go test ./internal/compile
// -run Golden -update.
func TestNetworkPlanJSONGolden(t *testing.T) {
	c := New(core.Serial{})
	p, err := c.Compile(context.Background(), NewRequest(model.VGG13(), array512, Options{}))
	if err != nil {
		t.Fatal(err)
	}
	data, err := p.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "vgg13_512_plan.golden.json")
	if *update {
		if err := os.WriteFile(golden, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, want) {
		t.Errorf("serialized plan differs from %s; run with -update after intentional changes", golden)
	}

	// Round trip from the golden bytes: identical totals and decisions.
	back, err := FromJSON(want)
	if err != nil {
		t.Fatal(err)
	}
	if back.Totals != p.Totals {
		t.Errorf("round-tripped totals differ:\ngot  %+v\nwant %+v", back.Totals, p.Totals)
	}
	if back.Network.Name != p.Network.Name || len(back.Layers) != len(p.Layers) {
		t.Fatalf("round-tripped structure differs: %s/%d layers", back.Network.Name, len(back.Layers))
	}
	for i := range p.Layers {
		if back.Layers[i].Search.Best != p.Layers[i].Search.Best {
			t.Errorf("layer %d: round-tripped mapping differs", i)
		}
		if back.Layers[i].Schedule != p.Layers[i].Schedule {
			t.Errorf("layer %d: round-tripped schedule differs", i)
		}
		if back.Layers[i].Energy != p.Layers[i].Energy {
			t.Errorf("layer %d: round-tripped energy report differs", i)
		}
	}
}

// TestFromJSONRejectsCorruptTotals pins that deserialization re-validates
// the totals against the per-layer entries.
func TestFromJSONRejectsCorruptTotals(t *testing.T) {
	c := New(core.Serial{})
	p, err := c.Compile(context.Background(), NewRequest(model.Single(core.Layer{
		Name: "c", IW: 14, IH: 14, KW: 3, KH: 3, IC: 64, OC: 64}), array512, Options{}))
	if err != nil {
		t.Fatal(err)
	}
	p.Totals.Cycles++ // corrupt
	data, err := p.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromJSON(data); err == nil {
		t.Error("corrupt totals accepted")
	}
	if _, err := FromJSON([]byte("{")); err == nil {
		t.Error("malformed JSON accepted")
	}
}
