package compile

import (
	"encoding/json"
	"fmt"
)

// ToJSON serializes the plan, indented, for caching and tooling. Physical
// mapping plans (Options.Plans) are execution artifacts and are not
// serialized; rebuild them with mapping.NewPlan from the per-layer mappings.
func (p *NetworkPlan) ToJSON() ([]byte, error) {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("compile: marshal plan: %w", err)
	}
	return append(data, '\n'), nil
}

// FromJSON deserializes a plan produced by ToJSON and validates that its
// totals are consistent with its per-layer entries.
func FromJSON(data []byte) (*NetworkPlan, error) {
	var p NetworkPlan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("compile: unmarshal plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}
