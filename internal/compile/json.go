package compile

import (
	"encoding/json"
	"fmt"
	"io"
)

// ToJSON serializes the plan, indented, for the CLI, golden files and
// tooling. Physical mapping plans (Options.Plans) are execution artifacts
// and are not serialized; rebuild them with mapping.NewPlan from the
// per-layer mappings.
func (p *NetworkPlan) ToJSON() ([]byte, error) {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("compile: marshal plan: %w", err)
	}
	return append(data, '\n'), nil
}

// Encode writes the plan to w as a single compact JSON document with a
// trailing newline — the serving serialization: vwsdkd caches and serves
// these bytes, so the wire format skips ToJSON's indentation (roughly a
// third of the indented size for zoo networks). FromJSON reads both forms.
func (p *NetworkPlan) Encode(w io.Writer) error {
	if err := json.NewEncoder(w).Encode(p); err != nil {
		return fmt.Errorf("compile: encode plan: %w", err)
	}
	return nil
}

// FromJSON deserializes a plan produced by ToJSON and validates that its
// totals are consistent with its per-layer entries.
func FromJSON(data []byte) (*NetworkPlan, error) {
	var p NetworkPlan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("compile: unmarshal plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}
