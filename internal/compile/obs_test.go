package compile

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/obs"
)

// TestCompileRecordsSpanTree pins the compile pipeline's span shape — the
// provenance contract the server freezes onto plan-cache entries: one
// "compile" root carrying the network attributes, one "layer" span per
// network layer, and search/schedule/energy/plan children inside each.
func TestCompileRecordsSpanTree(t *testing.T) {
	tr := obs.New("test")
	ctx := obs.NewContext(context.Background(), tr)
	net := model.Single(core.Layer{Name: "l0", IW: 14, IH: 14, KW: 3, KH: 3, IC: 16, OC: 16}.Normalized())
	if _, err := New(core.Serial{}).Compile(ctx, NewRequest(net, core.Array{Rows: 128, Cols: 128}, Options{Plans: true})); err != nil {
		t.Fatal(err)
	}

	comp := obs.Find(tr.Tree(), "compile")
	if comp == nil {
		t.Fatal("no compile span recorded")
	}
	if comp.Attrs["network"] != net.Name || comp.Attrs["layers"] != int64(1) {
		t.Errorf("compile attrs = %v", comp.Attrs)
	}
	layer := obs.Find(comp.Children, "layer")
	if layer == nil {
		t.Fatalf("no layer span under compile: %+v", comp)
	}
	if layer.Attrs["name"] != "l0" {
		t.Errorf("layer attrs = %v", layer.Attrs)
	}
	for _, phase := range []string{"search", "schedule", "energy", "plan"} {
		if obs.Find(layer.Children, phase) == nil {
			t.Errorf("layer span missing %q child (have %+v)", phase, layer.Children)
		}
	}
	// The per-phase durations the server's histograms consume must be
	// reachable through DurationByName.
	by := tr.DurationByName()
	for _, phase := range []string{"search", "schedule", "energy", "plan"} {
		if _, ok := by[phase]; !ok {
			t.Errorf("DurationByName missing %q: %v", phase, by)
		}
	}
}

// TestCompileDisabledTraceNoSpans checks an untraced context records
// nothing anywhere — the disabled no-op fast path.
func TestCompileDisabledTraceNoSpans(t *testing.T) {
	net := model.Single(core.Layer{Name: "l0", IW: 14, IH: 14, KW: 3, KH: 3, IC: 16, OC: 16}.Normalized())
	if _, err := New(core.Serial{}).Compile(context.Background(), NewRequest(net, core.Array{Rows: 128, Cols: 128}, Options{})); err != nil {
		t.Fatal(err)
	}
}
