package compile

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/engine"
	"repro/internal/model"
)

var array512 = core.Array{Rows: 512, Cols: 512}

// bg is the context every non-cancellation test compiles under.
var bg = context.Background()

// TestCompileMatchesHandWiredPath is the acceptance differential test: a
// Compile of VGG-13 (and ResNet-18) on the paper's array must be
// bit-identical to the pre-pipeline path — core.SearchNetwork for the
// per-layer results and cycle totals, chip.ScheduleNetwork for the makespan
// and programmings, and energy.EstimateLayers for the energy report.
func TestCompileMatchesHandWiredPath(t *testing.T) {
	c := New(engine.New())
	for _, n := range []model.Network{model.VGG13(), model.ResNet18()} {
		for _, nArrays := range []int{1, 8} {
			p, err := c.Compile(bg, NewRequest(n, array512, Options{Arrays: nArrays}))
			if err != nil {
				t.Fatalf("%s: %v", n.Name, err)
			}

			want, err := core.SearchNetwork(n.CoreLayers(), array512)
			if err != nil {
				t.Fatal(err)
			}
			if p.Totals.Cycles != want.TotalCycles || p.Totals.Im2colCycles != want.TotalIm2col {
				t.Errorf("%s: totals %d/%d, want %d/%d", n.Name,
					p.Totals.Cycles, p.Totals.Im2colCycles, want.TotalCycles, want.TotalIm2col)
			}
			if p.Totals.Speedup != want.Speedup() {
				t.Errorf("%s: speedup %v, want %v", n.Name, p.Totals.Speedup, want.Speedup())
			}
			best := make([]core.Mapping, len(want.Results))
			for i, res := range want.Results {
				if !reflect.DeepEqual(p.Layers[i].Search, res) {
					t.Errorf("%s/%s: search result differs from serial", n.Name, n.Layers[i].Name)
				}
				best[i] = res.Best
			}

			sched, err := chip.ScheduleNetwork(best, nArrays)
			if err != nil {
				t.Fatal(err)
			}
			if p.Totals.Makespan != sched.Makespan || p.Totals.Programs != sched.Programs {
				t.Errorf("%s on %d arrays: makespan/programs %d/%d, want %d/%d", n.Name,
					nArrays, p.Totals.Makespan, p.Totals.Programs, sched.Makespan, sched.Programs)
			}

			rep, err := energy.Default().EstimateLayers(best)
			if err != nil {
				t.Fatal(err)
			}
			if p.Totals.Energy != rep {
				t.Errorf("%s: energy totals differ\ncompile %+v\nserial  %+v",
					n.Name, p.Totals.Energy, rep)
			}
		}
	}
}

// TestCompileGroupedNetworks: the grouped zoo networks compile end-to-end
// with the group structure preserved into every layer plan, and the
// grouped-layer totals remain consistent with the serial search path.
func TestCompileGroupedNetworks(t *testing.T) {
	c := New(engine.New())
	for _, n := range []model.Network{model.MobileNetV2(), model.ResNeXt50()} {
		p, err := c.Compile(bg, NewRequest(n, array512, Options{}))
		if err != nil {
			t.Fatalf("%s: %v", n.Name, err)
		}
		groupedLayers := 0
		for i, lp := range p.Layers {
			want := n.Layers[i].Layer.Normalized()
			got := lp.Search.Best.Layer
			if got.NumGroups() != want.NumGroups() {
				t.Errorf("%s/%s: plan carries %d groups, want %d",
					n.Name, want.Name, got.NumGroups(), want.NumGroups())
			}
			if want.NumGroups() > 1 {
				groupedLayers++
				if tiles := lp.Search.Best.Tiles(); tiles != lp.Search.Best.AR*lp.Search.Best.AC*want.NumGroups() {
					t.Errorf("%s/%s: Tiles = %d, want AR*AC*G", n.Name, want.Name, tiles)
				}
			}
		}
		if groupedLayers == 0 {
			t.Fatalf("%s: no grouped layers reached the compile pipeline", n.Name)
		}
		want, err := core.SearchNetwork(n.CoreLayers(), array512)
		if err != nil {
			t.Fatal(err)
		}
		if p.Totals.Cycles != want.TotalCycles {
			t.Errorf("%s: total cycles %d, want %d", n.Name, p.Totals.Cycles, want.TotalCycles)
		}
	}
}

// TestCompileSchemes pins each Scheme onto the search it selects.
func TestCompileSchemes(t *testing.T) {
	c := New(core.Serial{})
	l := core.Layer{Name: "conv4", IW: 14, IH: 14, KW: 3, KH: 3, IC: 256, OC: 256}
	cases := []struct {
		scheme Scheme
		want   func() (core.Result, error)
	}{
		{VWSDK, func() (core.Result, error) { return core.SearchVWSDK(l, array512) }},
		{SDK, func() (core.Result, error) { return core.SearchSDK(l, array512) }},
		{SMD, func() (core.Result, error) { return core.SearchSMD(l, array512) }},
		{Im2col, func() (core.Result, error) {
			m, err := core.Im2col(l, array512)
			return core.Result{Best: m, Im2col: m}, err
		}},
	}
	for _, tc := range cases {
		want, err := tc.want()
		if err != nil {
			t.Fatal(err)
		}
		lp, err := c.CompileLayer(bg, l, array512, Options{Scheme: tc.scheme})
		if err != nil {
			t.Fatalf("%v: %v", tc.scheme, err)
		}
		if !reflect.DeepEqual(lp.Search, want) {
			t.Errorf("%v: search differs\ncompile %+v\nserial  %+v", tc.scheme, lp.Search, want)
		}
	}
	if _, err := c.CompileLayer(bg, l, array512, Options{Scheme: Scheme(42)}); err == nil ||
		!strings.Contains(err.Error(), "unknown scheme") {
		t.Errorf("unknown scheme accepted: %v", err)
	}
}

// TestCompileVariants pins the VW-SDK ablation selection.
func TestCompileVariants(t *testing.T) {
	c := New(core.Serial{})
	l := core.Layer{Name: "conv5", IW: 56, IH: 56, KW: 3, KH: 3, IC: 128, OC: 256}
	for _, v := range []core.Variant{core.VariantFull, core.VariantSquareTiled, core.VariantRectFullChannel} {
		want, err := core.SearchVariant(l, array512, v)
		if err != nil {
			t.Fatal(err)
		}
		lp, err := c.CompileLayer(bg, l, array512, Options{Variant: v})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(lp.Search, want) {
			t.Errorf("variant %v: search differs from serial", v)
		}
	}
}

// TestCompileScheduleEnergyInteraction covers the chip-schedule × energy
// coupling on both schedule regimes: the plan's total energy must equal the
// component-wise sum of its per-layer reports, and each layer's makespan
// must match chip.ScheduleLayer for chips with more arrays than tiles
// (replication) and fewer arrays than tiles (sequential rounds).
func TestCompileScheduleEnergyInteraction(t *testing.T) {
	c := New(core.Serial{})
	// conv5 on 512x512 maps to a single tile (AR=AC=1); conv1's im2col rows
	// exceed one array, giving multiple tiles. A 4-array chip is then above
	// conv5's tile count (replication path) and below VGG-13 conv8's
	// (sequential-rounds path).
	n := model.VGG13()
	const nArrays = 4
	p, err := c.Compile(bg, NewRequest(n, array512, Options{Arrays: nArrays}))
	if err != nil {
		t.Fatal(err)
	}
	var sum energy.Report
	var makespan int64
	sawReplicated, sawRounds := false, false
	for i, lp := range p.Layers {
		sum.Add(lp.Energy)
		makespan += lp.Schedule.Makespan
		want, err := chip.ScheduleLayer(lp.Search.Best, nArrays)
		if err != nil {
			t.Fatal(err)
		}
		if lp.Schedule != want {
			t.Errorf("%s: schedule %+v, want %+v", n.Layers[i].Name, lp.Schedule, want)
		}
		wantRep, err := energy.Default().Estimate(lp.Search.Best)
		if err != nil {
			t.Fatal(err)
		}
		if lp.Energy != wantRep {
			t.Errorf("%s: energy report differs from direct estimate", n.Layers[i].Name)
		}
		switch {
		case nArrays >= lp.Schedule.Tiles:
			sawReplicated = true
			if lp.Schedule.Rounds != 1 || lp.Schedule.Replicas != nArrays/lp.Schedule.Tiles {
				t.Errorf("%s: replication schedule %+v", n.Layers[i].Name, lp.Schedule)
			}
		default:
			sawRounds = true
			if lp.Schedule.Replicas != 1 || lp.Schedule.Rounds < 2 {
				t.Errorf("%s: rounds schedule %+v", n.Layers[i].Name, lp.Schedule)
			}
		}
	}
	if !sawReplicated || !sawRounds {
		t.Fatalf("test network did not cover both schedule regimes on %d arrays "+
			"(replicated=%v rounds=%v)", nArrays, sawReplicated, sawRounds)
	}
	if p.Totals.Energy != sum {
		t.Errorf("total energy %+v != sum of layer reports %+v", p.Totals.Energy, sum)
	}
	if p.Totals.Makespan != makespan {
		t.Errorf("total makespan %d != sum of layer makespans %d", p.Totals.Makespan, makespan)
	}
}

// TestCompileOptionDefaults checks zero-value normalization: one array, the
// default energy model, VW-SDK, and gated peripherals layered on top.
func TestCompileOptionDefaults(t *testing.T) {
	c := New(core.Serial{})
	l := core.Layer{Name: "c", IW: 14, IH: 14, KW: 3, KH: 3, IC: 64, OC: 64}
	p, err := c.Compile(bg, NewRequest(model.Single(l), array512, Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if p.Options.Arrays != 1 || p.Options.Energy == nil {
		t.Errorf("defaults not applied: %+v", p.Options)
	}
	if p.Options.Energy.GatePeripherals {
		t.Error("default options gated the peripherals")
	}
	if p.Layers[0].Search.Best.Scheme != core.SchemeVWSDK {
		t.Errorf("zero options compiled %v, want VW-SDK", p.Layers[0].Search.Best.Scheme)
	}
	if p.Layers[0].Plan != nil {
		t.Error("plan built without Options.Plans")
	}

	gated, err := c.Compile(bg, NewRequest(model.Single(l), array512, Options{GatePeripherals: true}))
	if err != nil {
		t.Fatal(err)
	}
	if !gated.Options.Energy.GatePeripherals {
		t.Error("GatePeripherals not applied to the energy model")
	}
	if gated.Totals.Energy.EnergyTotal >= p.Totals.Energy.EnergyTotal {
		t.Errorf("gated energy %g not below full-array %g",
			gated.Totals.Energy.EnergyTotal, p.Totals.Energy.EnergyTotal)
	}

	planned, err := c.Compile(bg, NewRequest(model.Single(l), array512, Options{Plans: true}))
	if err != nil {
		t.Fatal(err)
	}
	if planned.Layers[0].Plan == nil {
		t.Error("Options.Plans did not build the physical plan")
	}
}

// TestCompileErrors covers the failure paths: invalid networks, arrays,
// energy models and infeasible layers, with the failing layer named.
func TestCompileErrors(t *testing.T) {
	c := New(core.Serial{})
	if _, err := c.Compile(bg, NewRequest(model.Network{Name: "empty"}, array512, Options{})); err == nil {
		t.Error("empty network accepted")
	}
	if _, err := c.Compile(bg, NewRequest(model.VGG13(), core.Array{}, Options{})); err == nil {
		t.Error("invalid array accepted")
	}
	bad := energy.Model{}
	if _, err := c.Compile(bg, NewRequest(model.VGG13(), array512, Options{Energy: &bad})); err == nil {
		t.Error("invalid energy model accepted")
	}
	// A kernel larger than the IFM fails layer validation inside the search;
	// the compile error must name the failing layer. model.Single would
	// reject it up front, so build the network by hand.
	huge := core.Layer{Name: "huge", IW: 8, IH: 8, KW: 16, KH: 16, IC: 1, OC: 1}
	net := model.Network{Name: "bad", Layers: []model.ConvLayer{{Layer: huge, Count: 1}}}
	if _, err := c.Compile(bg, NewRequest(net, core.Array{Rows: 8, Cols: 8}, Options{})); err == nil ||
		!strings.Contains(err.Error(), "huge") {
		t.Errorf("invalid layer error should name the layer, got %v", err)
	}
}

// TestCompilerSharedAcrossOptions checks that one engine-backed compiler
// reuses searches across compilations (the second compile of the same
// network is served from cache).
func TestCompilerSharedAcrossOptions(t *testing.T) {
	eng := engine.New()
	c := New(eng)
	n := model.ResNet18()
	if _, err := c.Compile(bg, NewRequest(n, array512, Options{})); err != nil {
		t.Fatal(err)
	}
	before := eng.Stats()
	if _, err := c.Compile(bg, NewRequest(n, array512, Options{Arrays: 16, GatePeripherals: true})); err != nil {
		t.Fatal(err)
	}
	after := eng.Stats()
	if after.CacheMisses != before.CacheMisses {
		t.Errorf("recompile re-searched: misses %d -> %d", before.CacheMisses, after.CacheMisses)
	}
	if after.CacheHits <= before.CacheHits {
		t.Errorf("recompile did not hit the cache: hits %d -> %d", before.CacheHits, after.CacheHits)
	}
}

// TestNewNilSearcher pins that New(nil) builds a working engine-backed
// compiler.
func TestNewNilSearcher(t *testing.T) {
	c := New(nil)
	if c.Searcher() == nil {
		t.Fatal("nil searcher not defaulted")
	}
	if _, err := c.CompileLayer(bg, core.Layer{Name: "c", IW: 8, IH: 8, KW: 3, KH: 3, IC: 2, OC: 2},
		core.Array{Rows: 64, Cols: 64}, Options{}); err != nil {
		t.Fatal(err)
	}
}
