package compile

import (
	"encoding/json"
	"os"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/model"
)

// goldenKeyRequests enumerates the request shapes whose keys are pinned in
// testdata/golden_keys.json. The fixture is the on-disk contract of the
// persistent plan store and the peer ring: a key-format change silently
// invalidates every stored plan and reshuffles fleet ownership, so it must
// be a deliberate, reviewed act (regenerate with `go test -run GoldenKeys
// -update ./internal/compile/` and bump the vwsdk-key version).
func goldenKeyRequests() map[string]Request {
	customEnergy := energy.Model{
		TCycle:          50 * time.Nanosecond,
		EnergyDAC:       0.2e-12,
		EnergyADC:       4e-12,
		EnergyCellMAC:   0.25e-15,
		EnergyCellWrite: 12e-12,
	}
	return map[string]Request{
		"vgg13-512-defaults": NewRequest(model.VGG13(), array512, Options{}),
		"vgg13-512-explicit-defaults": NewRequest(model.VGG13(), array512,
			Options{Scheme: VWSDK, Variant: core.VariantFull, Arrays: 1}),
		"vgg13-256-defaults": NewRequest(model.VGG13(), core.Array{Rows: 256, Cols: 256}, Options{}),
		"vgg13-512-sdk":      NewRequest(model.VGG13(), array512, Options{Scheme: SDK}),
		"vgg13-512-im2col":   NewRequest(model.VGG13(), array512, Options{Scheme: Im2col}),
		"vgg13-512-square-tiled": NewRequest(model.VGG13(), array512,
			Options{Variant: core.VariantSquareTiled}),
		"vgg13-512-arrays8": NewRequest(model.VGG13(), array512, Options{Arrays: 8}),
		"vgg13-512-gated":   NewRequest(model.VGG13(), array512, Options{GatePeripherals: true}),
		"vgg13-512-plans":   NewRequest(model.VGG13(), array512, Options{Plans: true}),
		"vgg13-512-custom-energy": NewRequest(model.VGG13(), array512,
			Options{Energy: &customEnergy}),
		"resnet18-512-defaults":    NewRequest(model.ResNet18(), array512, Options{}),
		"mobilenetv2-512-defaults": NewRequest(model.MobileNetV2(), array512, Options{}),
		"single-grouped-256": NewRequest(
			model.Single(core.Layer{Name: "g", IW: 14, IH: 14, KW: 3, KH: 3, IC: 64, OC: 64, Groups: 4}),
			core.Array{Rows: 256, Cols: 256}, Options{}),
		"single-strided-padded-512": NewRequest(
			model.Single(core.Layer{Name: "s", IW: 224, IH: 224, KW: 7, KH: 7, IC: 3, OC: 64,
				StrideW: 2, StrideH: 2, PadW: 3, PadH: 3}),
			array512, Options{}),
	}
}

const goldenKeysPath = "testdata/golden_keys.json"

// TestGoldenKeys pins the exact compile.Key strings for a spread of request
// shapes. Keys are content addresses for the on-disk plan store and the
// consistent-hash ring: any drift here breaks restart warm-up and fleet
// ownership for deployed stores, which is why the full strings — not just
// collision properties — are committed.
func TestGoldenKeys(t *testing.T) {
	got := make(map[string]string)
	for name, req := range goldenKeyRequests() {
		key, err := Key(req)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got[name] = key
	}

	if *update {
		names := make([]string, 0, len(got))
		for name := range got {
			names = append(names, name)
		}
		sort.Strings(names)
		// Marshal via an ordered slice-free map: encoding/json sorts map keys,
		// so the fixture diff stays stable across regenerations.
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenKeysPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d keys (%v)", goldenKeysPath, len(names), names)
		return
	}

	data, err := os.ReadFile(goldenKeysPath)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	want := make(map[string]string)
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parse %s: %v", goldenKeysPath, err)
	}
	for name, key := range got {
		w, ok := want[name]
		if !ok {
			t.Errorf("%s: missing from fixture (regenerate with -update)", name)
			continue
		}
		if key != w {
			t.Errorf("%s: key drifted from the committed fixture —\n  got  %s\n  want %s\n"+
				"this invalidates every persisted plan store and reshuffles fleet ownership; "+
				"if intentional, bump the vwsdk-key version and regenerate with -update", name, key, w)
		}
	}
	for name := range want {
		if _, ok := got[name]; !ok {
			t.Errorf("fixture entry %s no longer generated (regenerate with -update)", name)
		}
	}
}
