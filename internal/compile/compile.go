// Package compile is the whole-network compilation pipeline: it takes a CNN
// (model.Network), a PIM crossbar geometry (core.Array), a chip size and an
// energy model, and produces a NetworkPlan — the single artifact that
// represents "this network, compiled for this chip".
//
// A NetworkPlan holds, per layer, the chosen mapping (a core.Result from the
// selected search), its placement on the multi-array chip
// (chip.LayerSchedule), its latency/energy estimate (energy.Report) and,
// optionally, the physical weight-placement plan (mapping.Plan); network
// totals (cycles, speedup vs im2col, makespan, energy, utilization) are
// computed once, in one place, in layer order, so they are bit-identical to
// the hand-wired SearchNetwork + chip.ScheduleNetwork +
// energy.EstimateLayers path the experiments, CLIs and examples previously
// stitched together themselves.
//
// The stages run as a pipeline: layer searches fan out through the
// compiler's Searcher (normally the concurrent, memoizing engine), and
// scheduling, energy estimation and physical planning stream per layer as
// each search completes — layer i's schedule is built while layer j is still
// searching. Options selects the mapping scheme, the VW-SDK ablation
// variant, the chip size and the peripheral model, so one Compile call
// covers every ablation the repository evaluates.
//
// A compilation is described by the canonical Request{Network, Array,
// Options} — the one type shared by the vwsdk facade, the CLI flags and
// vwsdkd's HTTP bodies — and runs under a context.Context: Compile threads
// the context into every layer search, whose loops run cooperative
// cancellation checkpoints, so cancelling the context actually stops the
// work mid-search instead of letting it run to completion.
package compile

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/engine"
	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/obs"
)

// Scheme selects the mapping search a compilation runs. The zero value is
// the paper's VW-SDK search, so a zero Options compiles the full algorithm;
// the core package's Scheme enum instead starts at im2col, matching the
// paper's figure order, which would make the zero Options a baseline.
type Scheme int

// The four mapping searches a Compiler can run.
const (
	// VWSDK runs Algorithm 1 (or the Options.Variant ablation of it).
	VWSDK Scheme = iota
	// Im2col costs the im2col baseline (no search).
	Im2col
	// SMD searches sub-matrix duplication factors.
	SMD
	// SDK searches square windows with entire channels.
	SDK
)

// String returns the paper's name for the scheme.
func (s Scheme) String() string {
	switch s {
	case VWSDK:
		return core.SchemeVWSDK.String()
	case Im2col:
		return core.SchemeIm2col.String()
	case SMD:
		return core.SchemeSMD.String()
	case SDK:
		return core.SchemeSDK.String()
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Options configures one compilation. The zero value compiles the full
// VW-SDK search for a single-array chip under the default energy model.
type Options struct {
	// Scheme selects the mapping search: VWSDK (the default), Im2col, SMD
	// or SDK.
	Scheme Scheme

	// Variant selects a VW-SDK ablation (VariantFull, VariantSquareTiled,
	// VariantRectFullChannel); only consulted when Scheme is VWSDK.
	Variant core.Variant

	// Arrays is the number of crossbars on the chip; values below 1 mean a
	// single array.
	Arrays int

	// Energy holds the technology constants; nil selects energy.Default().
	Energy *energy.Model

	// GatePeripherals counts conversions on the programmed tile footprint
	// instead of the whole array (energy.Model.GatePeripherals), applied on
	// top of whichever model Energy selects.
	GatePeripherals bool

	// Plans additionally builds the physical weight-placement plan
	// (mapping.NewPlan) for every layer. Plans are execution artifacts, not
	// part of the serialized NetworkPlan.
	Plans bool
}

// normalized fills in the option defaults.
func (o Options) normalized() Options {
	if o.Arrays < 1 {
		o.Arrays = 1
	}
	if o.Energy == nil {
		m := energy.Default()
		o.Energy = &m
	}
	if o.GatePeripherals {
		m := *o.Energy
		m.GatePeripherals = true
		o.Energy = &m
	}
	return o
}

// Request is the canonical description of one compilation: which network,
// on which crossbar geometry, under which options. It is the single request
// type shared by every entry point — Compiler.Compile consumes it, Key
// derives the canonical cache key from it, the vwsdk facade re-exports it,
// cmd/vwsdk builds one from its flags and internal/server resolves HTTP
// bodies into it — replacing the three loose (network, array, options)
// parameter triples those layers used to pass around.
type Request struct {
	// Network is the CNN to compile.
	Network model.Network

	// Array is the PIM crossbar geometry.
	Array core.Array

	// Options configures the compilation; the zero value compiles the full
	// VW-SDK search for a single-array chip.
	Options Options
}

// NewRequest assembles a Request from its parts.
func NewRequest(n model.Network, a core.Array, opts Options) Request {
	return Request{Network: n, Array: a, Options: opts}
}

// Validate checks the request the way Compile would: network, array and
// energy model must all be individually valid.
func (r Request) Validate() error {
	if err := r.Network.Validate(); err != nil {
		return err
	}
	if err := r.Array.Validate(); err != nil {
		return err
	}
	return r.Options.normalized().Energy.Validate()
}

// LayerPlan is one layer of a compiled network.
type LayerPlan struct {
	// Layer is the compiled layer with its occurrence count.
	Layer model.ConvLayer

	// Search is the chosen mapping and its im2col baseline.
	Search core.Result

	// Schedule places the chosen mapping on the chip.
	Schedule chip.LayerSchedule

	// Energy is the per-inference latency/energy estimate of the chosen
	// mapping.
	Energy energy.Report

	// Plan is the physical weight-placement plan; nil unless Options.Plans
	// was set. Plans are rebuilt, not serialized (see FromJSON).
	Plan *mapping.Plan `json:"-"`
}

// Totals are the whole-network numbers, aggregated over one entry per
// distinct layer shape (the paper's Table I convention, matching
// core.NetworkResult).
type Totals struct {
	// Cycles and Im2colCycles sum the chosen and baseline mappings' cycles.
	Cycles       int64
	Im2colCycles int64

	// Speedup is Im2colCycles / Cycles.
	Speedup float64

	// Makespan is the layer-sequential chip latency in computing cycles;
	// Programs counts tile programmings across the chip.
	Makespan int64
	Programs int

	// Utilization is the cycle-weighted mean array utilization (eq. 9) of
	// the chosen mappings, in percent.
	Utilization float64

	// Energy is the component-wise sum of the per-layer reports.
	Energy energy.Report
}

// NetworkPlan is a compiled network: per-layer decisions plus totals. Build
// one with Compiler.Compile; serialize it with ToJSON / FromJSON.
//
// The embedded Request records what was compiled (network, array, options
// with defaults applied); its fields are promoted, so the serialized form —
// Network, Array, Options, Layers, Totals — is unchanged from when the plan
// carried the three fields directly.
type NetworkPlan struct {
	// Request is the compilation request this plan answers.
	Request

	// Layers holds one plan per network layer, in network order.
	Layers []LayerPlan

	// Totals are the whole-network aggregates.
	Totals Totals
}

// Compiler compiles networks through a core.Searcher. Build one with New;
// a single Compiler may be shared by any number of goroutines and reuses
// its searcher's cache across Compile calls.
type Compiler struct {
	s core.Searcher
}

// New returns a Compiler running its searches through s; a nil s selects a
// fresh concurrent engine (engine.New).
func New(s core.Searcher) *Compiler {
	if s == nil {
		s = engine.New()
	}
	return &Compiler{s: s}
}

// Searcher returns the searcher the compiler runs on.
func (c *Compiler) Searcher() core.Searcher { return c.s }

// search runs the option-selected mapping search for one layer.
func (c *Compiler) search(ctx context.Context, l core.Layer, a core.Array, opts Options) (core.Result, error) {
	switch opts.Scheme {
	case Im2col:
		if err := ctx.Err(); err != nil {
			return core.Result{}, err
		}
		m, err := core.Im2col(l, a)
		if err != nil {
			return core.Result{}, err
		}
		return core.Result{Best: m, Im2col: m}, nil
	case SMD:
		return c.s.SearchSMD(ctx, l, a)
	case SDK:
		return c.s.SearchSDK(ctx, l, a)
	case VWSDK:
		return c.s.SearchVariant(ctx, l, a, opts.Variant)
	default:
		return core.Result{}, fmt.Errorf("compile: unknown scheme %v", opts.Scheme)
	}
}

// compileLayer runs the full per-layer pipeline: search, then schedule,
// energy and (optionally) the physical plan as soon as the search returns.
func (c *Compiler) compileLayer(ctx context.Context, cl model.ConvLayer, a core.Array, opts Options) (LayerPlan, error) {
	ctx, lsp := obs.Start(ctx, "layer")
	defer lsp.End()
	lsp.SetStr("name", cl.Name)
	lp := LayerPlan{Layer: cl}
	sctx, sp := obs.Start(ctx, "search")
	res, err := c.search(sctx, cl.Layer, a, opts)
	sp.End()
	if err != nil {
		return LayerPlan{}, err
	}
	lp.Search = res
	_, sp = obs.Start(ctx, "schedule")
	lp.Schedule, err = chip.ScheduleLayer(res.Best, opts.Arrays)
	sp.End()
	if err != nil {
		return LayerPlan{}, err
	}
	_, sp = obs.Start(ctx, "energy")
	lp.Energy, err = opts.Energy.Estimate(res.Best)
	sp.End()
	if err != nil {
		return LayerPlan{}, err
	}
	if opts.Plans {
		pctx, sp := obs.Start(ctx, "plan")
		lp.Plan, err = mapping.NewPlanContext(pctx, res.Best)
		sp.End()
		if err != nil {
			return LayerPlan{}, err
		}
	}
	return lp, nil
}

// Compile compiles req.Network for req.Array under req.Options. Layer
// pipelines run concurrently (searches fan out through the compiler's
// searcher; scheduling, energy and planning stream per layer as searches
// complete); results are returned in layer order and the first error in
// layer order wins.
//
// Cancelling ctx aborts the compilation: every in-flight layer search stops
// at its next cancellation checkpoint and Compile returns an error wrapping
// ctx.Err(). No partial plan is returned.
func (c *Compiler) Compile(ctx context.Context, req Request) (*NetworkPlan, error) {
	n, a := req.Network, req.Array
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	req.Options = req.Options.normalized()
	if err := req.Options.Energy.Validate(); err != nil {
		return nil, err
	}
	ctx, sp := obs.Start(ctx, "compile")
	defer sp.End()
	sp.SetStr("network", n.Name).SetInt("layers", int64(len(n.Layers)))
	p := &NetworkPlan{Request: req, Layers: make([]LayerPlan, len(n.Layers))}
	errs := make([]error, len(n.Layers))
	var wg sync.WaitGroup
	for i, cl := range n.Layers {
		wg.Add(1)
		go func(i int, cl model.ConvLayer) {
			defer wg.Done()
			p.Layers[i], errs[i] = c.compileLayer(ctx, cl, a, req.Options)
		}(i, cl)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("compile: %s/%s: %w", n.Name, n.Layers[i].Name, err)
		}
	}
	p.Totals = totals(p.Layers)
	return p, nil
}

// CompileLayer compiles a single layer (wrapped as a one-layer network) and
// returns its LayerPlan.
func (c *Compiler) CompileLayer(ctx context.Context, l core.Layer, a core.Array, opts Options) (LayerPlan, error) {
	p, err := c.Compile(ctx, NewRequest(model.Single(l), a, opts))
	if err != nil {
		return LayerPlan{}, err
	}
	return p.Layers[0], nil
}

// totals aggregates the per-layer plans in layer order — the one place
// whole-network numbers are computed.
func totals(layers []LayerPlan) Totals {
	var t Totals
	var utilCycles float64
	for _, lp := range layers {
		t.Cycles += lp.Search.Best.Cycles
		t.Im2colCycles += lp.Search.Im2col.Cycles
		t.Makespan += lp.Schedule.Makespan
		t.Programs += lp.Schedule.Programs
		t.Energy.Add(lp.Energy)
		utilCycles += lp.Search.Best.Utilization() * float64(lp.Search.Best.Cycles)
	}
	if t.Cycles > 0 {
		t.Speedup = float64(t.Im2colCycles) / float64(t.Cycles)
		t.Utilization = utilCycles / float64(t.Cycles)
	}
	return t
}

// Validate cross-checks the plan's totals against its per-layer entries:
// total energy must equal the component-wise sum of the layer reports, the
// makespan must equal the sum of the layer schedules, and the cycle totals
// must match the searches. Deserialized plans (FromJSON) are validated with
// this.
func (p *NetworkPlan) Validate() error {
	if len(p.Layers) != len(p.Network.Layers) {
		return fmt.Errorf("compile: plan has %d layer plans for %d network layers",
			len(p.Layers), len(p.Network.Layers))
	}
	want := totals(p.Layers)
	if want != p.Totals {
		return fmt.Errorf("compile: totals %+v inconsistent with layers (recomputed %+v)",
			p.Totals, want)
	}
	return nil
}
