package compile

// PlanStore is the contract a persistent plan store offers the serving
// layer. It lives in this package because the two invariants a store build
// on are owned here: Key is the content address (two requests with the same
// key compile to equivalent plans, so an entry can never be stale — only
// corrupt) and Encode/FromJSON is the storable representation (FromJSON
// re-validates totals, so a loaded entry is checked exactly like the golden
// round-trip before it is ever served).
//
// Implementations must be safe for concurrent use: the server calls GetPlan
// from concurrent cache-miss fills and PutPlan behind every locally computed
// plan.
type PlanStore interface {
	// GetPlan returns the stored serialized plan for key and its decoded,
	// validated form, or ok=false when the key is absent or the entry failed
	// validation (in which case the implementation must quarantine it so a
	// corrupt entry is recomputed, never served, and never retried).
	GetPlan(key string) (data []byte, plan *NetworkPlan, ok bool)

	// PutPlan persists the serialized plan for key. Implementations may write
	// asynchronously (write-behind); data is immutable and may be retained.
	PutPlan(key string, data []byte)

	// StoreStats reports the cumulative counters.
	StoreStats() StoreStats
}

// StoreStats are a PlanStore's cumulative counters, surfaced by vwsdkd on
// /stats and /metrics (vwsdk_store_*_total).
type StoreStats struct {
	// Hits counts loads that validated and were served; Misses counts
	// lookups of absent keys.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`

	// Writes counts entries actually written (deduplicated rewrites of an
	// existing entry are not counted).
	Writes uint64 `json:"writes"`

	// Corrupt counts entries that failed validation on load — truncated,
	// syntactically broken, totals-inconsistent, or keyed under the wrong
	// content address — and were quarantined.
	Corrupt uint64 `json:"corrupt"`
}
