package compile

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
)

// TestCompileCancelled pins the pipeline's cancellation contract: a
// cancelled context aborts the compilation with an error wrapping
// context.Canceled (no partial plan), for both the serial searcher and the
// engine, and the compiler stays usable afterwards.
func TestCompileCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := NewRequest(model.VGG13(), array512, Options{})
	for _, c := range []*Compiler{New(core.Serial{}), New(engine.New())} {
		p, err := c.Compile(ctx, req)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if p != nil {
			t.Fatal("cancelled compile returned a partial plan")
		}
		if _, err := c.Compile(context.Background(), req); err != nil {
			t.Fatalf("compiler unusable after cancel: %v", err)
		}
	}
}

// TestCompileCancelledAllSchemes covers the scheme dispatch: every scheme —
// including Im2col, which runs no search loop — observes the cancel.
func TestCompileCancelledAllSchemes(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := New(core.Serial{})
	l := core.Layer{Name: "c", IW: 14, IH: 14, KW: 3, KH: 3, IC: 64, OC: 64}
	for _, s := range []Scheme{VWSDK, Im2col, SMD, SDK} {
		if _, err := c.CompileLayer(ctx, l, array512, Options{Scheme: s}); !errors.Is(err, context.Canceled) {
			t.Errorf("%v: err = %v, want context.Canceled", s, err)
		}
	}
}

// TestRequestValidate pins Request.Validate against what Compile accepts.
func TestRequestValidate(t *testing.T) {
	good := NewRequest(model.VGG13(), array512, Options{})
	if err := good.Validate(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	if err := (Request{Network: model.Network{Name: "empty"}, Array: array512}).Validate(); err == nil {
		t.Error("empty network accepted")
	}
	if err := (Request{Network: model.VGG13()}).Validate(); err == nil {
		t.Error("zero array accepted")
	}
}
