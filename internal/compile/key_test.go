package compile

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/model"
)

// TestKeyCanonicalizes pins the cache-key equivalences a serving layer
// relies on: default-equivalent options collide, spec shorthands collapse,
// and every dimension that changes the plan separates keys.
func TestKeyCanonicalizes(t *testing.T) {
	n := model.VGG13()
	base, err := Key(NewRequest(n, array512, Options{}))
	if err != nil {
		t.Fatal(err)
	}

	// Explicitly spelling out the defaults must not change the key.
	m := energy.Default()
	same, err := Key(NewRequest(n, array512, Options{Scheme: VWSDK, Variant: core.VariantFull, Arrays: 1, Energy: &m}))
	if err != nil {
		t.Fatal(err)
	}
	if same != base {
		t.Errorf("defaulted options key differs:\n%s\n%s", same, base)
	}

	// The canonical spec round trip (which drops stride/pad shorthands and
	// re-derives defaults) must collide with the original network.
	data, err := model.ToJSON(n)
	if err != nil {
		t.Fatal(err)
	}
	back, err := model.FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	roundTripped, err := Key(NewRequest(back, array512, Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if roundTripped != base {
		t.Errorf("round-tripped network key differs")
	}

	// Every option dimension must separate keys.
	for name, opts := range map[string]Options{
		"scheme":  {Scheme: SDK},
		"variant": {Variant: core.VariantSquareTiled},
		"arrays":  {Arrays: 8},
		"gated":   {GatePeripherals: true},
		"plans":   {Plans: true},
	} {
		k, err := Key(NewRequest(n, array512, opts))
		if err != nil {
			t.Fatal(err)
		}
		if k == base {
			t.Errorf("%s: key did not change", name)
		}
	}
	other, err := Key(NewRequest(model.ResNet18(), array512, Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if other == base {
		t.Error("different networks share a key")
	}

	// Groups is part of the layer identity: the same geometry grouped and
	// dense must not collide, while a dense layer written with Groups 0
	// vs 1 must (the canonical spec omits "groups" for both).
	grouped := model.Single(core.Layer{Name: "c", IW: 14, IH: 14, KW: 3, KH: 3, IC: 64, OC: 64, Groups: 4})
	dense := model.Single(core.Layer{Name: "c", IW: 14, IH: 14, KW: 3, KH: 3, IC: 64, OC: 64})
	gk, err := Key(NewRequest(grouped, array512, Options{}))
	if err != nil {
		t.Fatal(err)
	}
	dk, err := Key(NewRequest(dense, array512, Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if gk == dk {
		t.Error("grouped and dense layers share a key")
	}
	denseOne := dense
	denseOne.Layers[0].Layer.Groups = 1
	dk1, err := Key(NewRequest(denseOne, array512, Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if dk1 != dk {
		t.Error("Groups 0 and Groups 1 dense layers mint different keys")
	}
	smaller, err := Key(NewRequest(n, core.Array{Rows: 256, Cols: 256}, Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if smaller == base {
		t.Error("different arrays share a key")
	}
}

// TestKeyAllocs pins the serve-path cost of Key: with the pooled AppendKey
// buffer warm, the only allocation per call is the returned string.
func TestKeyAllocs(t *testing.T) {
	req := NewRequest(model.VGG13(), array512, Options{})
	if _, err := Key(req); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := Key(req); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Errorf("Key allocates %.1f times per call, want ≤ 1", allocs)
	}
}

// TestAppendKeyZeroAlloc pins that AppendKey itself is allocation-free once
// the destination buffer has capacity — the property the server's warm-hit
// fast path relies on.
func TestAppendKeyZeroAlloc(t *testing.T) {
	req := NewRequest(model.VGG13(), array512, Options{})
	buf, err := AppendKey(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := AppendKey(buf[:0], req); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("AppendKey allocates %.1f times per call, want 0", allocs)
	}
}

// TestKeyRejectsInvalid pins that Key fails on the same inputs Compile
// rejects instead of minting keys for uncompilable requests.
func TestKeyRejectsInvalid(t *testing.T) {
	if _, err := Key(NewRequest(model.Network{Name: "empty"}, array512, Options{})); err == nil {
		t.Error("empty network accepted")
	}
	if _, err := Key(NewRequest(model.VGG13(), core.Array{}, Options{})); err == nil ||
		!strings.Contains(err.Error(), "array") {
		t.Errorf("zero array accepted or unclear error: %v", err)
	}
}
