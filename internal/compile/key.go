package compile

import (
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/model"
)

// Key returns the canonical cache key of one compilation request: two
// requests with the same key would produce equivalent plans, so long-lived
// services can memoize Compile on it. The network is folded through its
// canonical spec serialization (model.ToJSON) — layer shorthands, omitted
// strides and occurrence-count defaults collapse — and the options are keyed
// with defaults applied, so a zero Options and an explicitly defaulted one
// collide. Key fails only on inputs Compile itself would reject.
func Key(req Request) (string, error) {
	spec, err := model.ToJSON(req.Network)
	if err != nil {
		return "", err
	}
	if err := req.Array.Validate(); err != nil {
		return "", err
	}
	opts := req.Options.normalized()
	// GatePeripherals is already folded into the energy model by
	// normalized(), but keying the flag too keeps the key stable if that
	// folding ever changes.
	k := struct {
		Network         json.RawMessage `json:"network"`
		Array           core.Array      `json:"array"`
		Scheme          Scheme          `json:"scheme"`
		Variant         core.Variant    `json:"variant"`
		Arrays          int             `json:"arrays"`
		Energy          energy.Model    `json:"energy"`
		GatePeripherals bool            `json:"gate_peripherals"`
		Plans           bool            `json:"plans"`
	}{spec, req.Array, opts.Scheme, opts.Variant, opts.Arrays, *opts.Energy, opts.GatePeripherals, opts.Plans}
	data, err := json.Marshal(k)
	if err != nil {
		return "", fmt.Errorf("compile: marshal cache key: %w", err)
	}
	return string(data), nil
}
