package compile

import (
	"strconv"
	"sync"

	"repro/internal/energy"
)

// Key returns the canonical cache key of one compilation request: two
// requests with the same key would produce equivalent plans, so long-lived
// services can memoize Compile on it. Layer shorthands, omitted strides,
// occurrence-count and group defaults collapse, and the options are keyed
// with defaults applied, so a zero Options and an explicitly defaulted one
// collide. Key fails only on inputs Compile itself would reject.
//
// Key is on the serve hot path (vwsdkd computes one per request), so it
// builds the key with AppendKey into a pooled buffer instead of a
// json.Marshal round trip; its only steady-state allocation is the returned
// string (pinned ≤ 1 by TestKeyAllocs).
func Key(req Request) (string, error) {
	bp := keyBufPool.Get().(*[]byte)
	buf, err := AppendKey((*bp)[:0], req)
	if err != nil {
		keyBufPool.Put(bp)
		return "", err
	}
	*bp = buf // keep the grown capacity for the next request
	k := string(buf)
	keyBufPool.Put(bp)
	return k, nil
}

// keyBufPool recycles AppendKey scratch buffers across Key calls; entries
// retain whatever capacity past requests grew them to.
var keyBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 1024)
	return &b
}}

// defaultEnergy is the shared default model AppendKey keys nil
// Options.Energy against, avoiding Options.normalized()'s per-call copy.
var defaultEnergy = energy.Default()

// AppendKey appends the canonical cache key of req to dst and returns the
// extended buffer, allocating only if dst lacks capacity. The encoding is
// injective over the canonicalized request (names are length-prefixed, every
// field is delimited) and collapses the same equivalence classes the spec
// serialization does: normalized strides, Groups 0/1, Count 0/1 and
// defaulted options all collide. It validates the network and array exactly
// like Compile, so no key is minted for an uncompilable request.
func AppendKey(dst []byte, req Request) ([]byte, error) {
	if err := req.Network.Validate(); err != nil {
		return nil, err
	}
	if err := req.Array.Validate(); err != nil {
		return nil, err
	}
	dst = append(dst, "vwsdk-key/v2|"...)
	dst = appendKeyString(dst, req.Network.Name)
	for _, cl := range req.Network.Layers {
		l := cl.Layer.Normalized()
		dst = append(dst, '|')
		dst = appendKeyString(dst, l.Name)
		count := cl.Count
		if count == 0 {
			count = 1
		}
		for _, v := range [...]int{
			l.IW, l.IH, l.KW, l.KH, l.IC, l.OC,
			l.StrideW, l.StrideH, l.PadW, l.PadH,
			l.NumGroups(), count,
		} {
			dst = append(dst, ',')
			dst = strconv.AppendInt(dst, int64(v), 10)
		}
	}
	dst = append(dst, "|a="...)
	dst = strconv.AppendInt(dst, int64(req.Array.Rows), 10)
	dst = append(dst, 'x')
	dst = strconv.AppendInt(dst, int64(req.Array.Cols), 10)

	// Options with defaults applied, without Options.normalized()'s
	// energy-model copies. GatePeripherals is keyed as the folded bit (the
	// form Compile consumes), so the flag set on Options and the same flag
	// pre-set on the model collide.
	opts := req.Options
	arrays := opts.Arrays
	if arrays < 1 {
		arrays = 1
	}
	en := opts.Energy
	if en == nil {
		en = &defaultEnergy
	}
	gate := en.GatePeripherals || opts.GatePeripherals
	dst = append(dst, "|o="...)
	dst = strconv.AppendInt(dst, int64(opts.Scheme), 10)
	dst = append(dst, ',')
	dst = strconv.AppendInt(dst, int64(opts.Variant), 10)
	dst = append(dst, ',')
	dst = strconv.AppendInt(dst, int64(arrays), 10)
	dst = append(dst, ',')
	dst = appendKeyBool(dst, gate)
	dst = append(dst, ',')
	dst = appendKeyBool(dst, opts.Plans)
	dst = append(dst, "|e="...)
	dst = strconv.AppendInt(dst, int64(en.TCycle), 10)
	for _, v := range [...]float64{en.EnergyDAC, en.EnergyADC, en.EnergyCellMAC, en.EnergyCellWrite} {
		dst = append(dst, ',')
		dst = strconv.AppendFloat(dst, v, 'g', -1, 64)
	}
	return dst, nil
}

// appendKeyString appends a length-prefixed string, keeping the key
// injective for names containing the delimiter characters.
func appendKeyString(dst []byte, s string) []byte {
	dst = strconv.AppendInt(dst, int64(len(s)), 10)
	dst = append(dst, ':')
	return append(dst, s...)
}

func appendKeyBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, '1')
	}
	return append(dst, '0')
}
