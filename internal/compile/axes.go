package compile

import (
	"fmt"

	"repro/internal/core"
)

// This file turns Options into a searchable design space. Each Options knob
// gets an axis type — a candidate list whose Candidates() expansion yields
// the values a search should try — and Axes composes them into a cross
// product of complete Options. Options itself is untouched: an axis is a
// *description of a set of Options*, so the zero-value semantics, Key
// encoding and golden files of single-point compilation are unaffected by
// construction. An empty axis means "don't search this knob": it expands to
// exactly the knob's zero value, so Axes{}.Candidates() is the one zero
// Options — the same compilation a bare Compile call runs.
//
// The optimize package enumerates hardware design points through these axes;
// anything else that wants to sweep a knob (benches, experiments) can reuse
// them instead of hand-rolling nested loops.

// SchemeAxis enumerates mapping schemes. Empty means the zero Scheme (VWSDK).
type SchemeAxis []Scheme

// Candidates returns the schemes to try, defaulting to the zero value.
func (a SchemeAxis) Candidates() []Scheme {
	if len(a) == 0 {
		return []Scheme{VWSDK}
	}
	return a
}

// VariantAxis enumerates VW-SDK ablation variants. Empty means the zero
// Variant (the full algorithm).
type VariantAxis []core.Variant

// Candidates returns the variants to try, defaulting to the zero value.
func (a VariantAxis) Candidates() []core.Variant {
	if len(a) == 0 {
		return []core.Variant{core.VariantFull}
	}
	return a
}

// CountAxis enumerates integer-valued knobs (chip array counts). Empty means
// the zero value, which Options normalization reads as a single array.
type CountAxis []int

// Candidates returns the counts to try, defaulting to the zero value.
func (a CountAxis) Candidates() []int {
	if len(a) == 0 {
		return []int{0}
	}
	return a
}

// BoolAxis enumerates boolean knobs (peripheral gating). Empty means false.
type BoolAxis []bool

// Candidates returns the values to try, defaulting to the zero value.
func (a BoolAxis) Candidates() []bool {
	if len(a) == 0 {
		return []bool{false}
	}
	return a
}

// Axes is the searchable form of Options: one axis per enumerable knob. The
// zero Axes describes the single zero Options. Knobs without an axis (the
// energy model, physical plans) are not part of any hardware search and stay
// at their Options defaults.
type Axes struct {
	// Schemes enumerates Options.Scheme.
	Schemes SchemeAxis

	// Variants enumerates Options.Variant (consulted only when the scheme
	// is VWSDK, exactly as in Options).
	Variants VariantAxis

	// Arrays enumerates Options.Arrays, the number of crossbars per chip.
	Arrays CountAxis

	// GatePeripherals enumerates Options.GatePeripherals.
	GatePeripherals BoolAxis
}

// Count returns len(Candidates()) without materializing the cross product.
func (a Axes) Count() int {
	return len(a.Schemes.Candidates()) * len(a.Variants.Candidates()) *
		len(a.Arrays.Candidates()) * len(a.GatePeripherals.Candidates())
}

// Candidates expands the axes into the full cross product of Options, in a
// deterministic order: schemes outermost, then variants, arrays and gating.
// Every empty axis contributes its knob's zero value, so the zero Axes
// yields exactly []Options{{}}.
func (a Axes) Candidates() []Options {
	schemes := a.Schemes.Candidates()
	variants := a.Variants.Candidates()
	arrays := a.Arrays.Candidates()
	gates := a.GatePeripherals.Candidates()
	out := make([]Options, 0, len(schemes)*len(variants)*len(arrays)*len(gates))
	for _, s := range schemes {
		for _, v := range variants {
			for _, n := range arrays {
				for _, g := range gates {
					out = append(out, Options{Scheme: s, Variant: v, Arrays: n, GatePeripherals: g})
				}
			}
		}
	}
	return out
}

// Validate rejects axis values a Compile call would reject, so enumeration
// errors surface before any search runs.
func (a Axes) Validate() error {
	for _, s := range a.Schemes {
		switch s {
		case VWSDK, Im2col, SMD, SDK:
		default:
			return fmt.Errorf("compile: axes: unknown scheme %v", s)
		}
	}
	for _, v := range a.Variants {
		switch v {
		case core.VariantFull, core.VariantSquareTiled, core.VariantRectFullChannel:
		default:
			return fmt.Errorf("compile: axes: unknown variant %v", v)
		}
	}
	return nil
}
