package core

import (
	"testing"
	"testing/quick"
)

// TestSearchVWSDKTableIResNet18 pins every VW-SDK cell of the paper's
// Table I for ResNet-18 with a 512x512 array.
func TestSearchVWSDKTableIResNet18(t *testing.T) {
	want := []struct {
		tile   string
		cycles int64
	}{
		{"10x8x3x64", 1431},
		{"4x4x32x64", 1458},
		{"4x4x32x128", 676},
		{"4x3x42x256", 504},
		{"3x3x512x512", 225}, // degenerates to im2col
	}
	var total int64
	for i, l := range resnet18Shapes() {
		res, err := SearchVWSDK(l, array512)
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		if got := res.Best.TileString(); got != want[i].tile {
			t.Errorf("%s: tile = %s, want %s", l.Name, got, want[i].tile)
		}
		if res.Best.Cycles != want[i].cycles {
			t.Errorf("%s: cycles = %d, want %d", l.Name, res.Best.Cycles, want[i].cycles)
		}
		total += res.Best.Cycles
	}
	if total != 4294 {
		t.Errorf("ResNet-18 VW-SDK total = %d, want 4294 (paper Table I)", total)
	}
}

// TestSearchVWSDKTableIVGG13 pins every VW-SDK cell of the paper's Table I
// for VGG-13. Note: the paper prints layer 2 as "4x4x64x64", but ICt = 64
// cannot satisfy eq. 4 (4·4·64 = 1024 > 512 rows); floor(512/16) = 32 is the
// value eq. 4 yields and is what we assert (documented in EXPERIMENTS.md).
func TestSearchVWSDKTableIVGG13(t *testing.T) {
	want := []struct {
		tile   string
		cycles int64
	}{
		{"10x3x3x64", 6216},
		{"4x4x32x64", 24642},
		{"4x4x32x128", 6050},
		{"4x4x32x128", 12100},
		{"4x3x42x256", 5832},
		{"4x3x42x256", 10206},
		{"3x3x256x512", 3380},
		{"3x3x512x512", 6084},
		{"3x3x512x512", 1296},
		{"3x3x512x512", 1296},
	}
	var total int64
	for i, l := range vgg13Shapes() {
		res, err := SearchVWSDK(l, array512)
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		if got := res.Best.TileString(); got != want[i].tile {
			t.Errorf("%s: tile = %s, want %s", l.Name, got, want[i].tile)
		}
		if res.Best.Cycles != want[i].cycles {
			t.Errorf("%s: cycles = %d, want %d", l.Name, res.Best.Cycles, want[i].cycles)
		}
		total += res.Best.Cycles
	}
	if total != 77102 {
		t.Errorf("VGG-13 VW-SDK total = %d, want 77102 (paper Table I)", total)
	}
}

// TestSearchSDKTableI pins the SDK baseline columns of Table I.
func TestSearchSDKTableI(t *testing.T) {
	t.Run("resnet18", func(t *testing.T) {
		wantPW := []Window{{8, 8}, {4, 4}, {3, 3}, {3, 3}, {3, 3}}
		wantCycles := []int64{2809, 1458, 2028, 720, 225}
		var total int64
		for i, l := range resnet18Shapes() {
			res, err := SearchSDK(l, array512)
			if err != nil {
				t.Fatalf("%s: %v", l.Name, err)
			}
			if res.Best.PW != wantPW[i] {
				t.Errorf("%s: PW = %v, want %v", l.Name, res.Best.PW, wantPW[i])
			}
			if res.Best.Cycles != wantCycles[i] {
				t.Errorf("%s: cycles = %d, want %d", l.Name, res.Best.Cycles, wantCycles[i])
			}
			total += res.Best.Cycles
		}
		if total != 7240 {
			t.Errorf("ResNet-18 SDK total = %d, want 7240 (paper Table I)", total)
		}
	})
	t.Run("vgg13", func(t *testing.T) {
		wantPW := []Window{
			{4, 4}, {4, 4}, {4, 4}, {3, 3}, {3, 3},
			{3, 3}, {3, 3}, {3, 3}, {3, 3}, {3, 3},
		}
		wantCycles := []int64{
			12321, 24642, 6050, 36300, 8748,
			14580, 3380, 6084, 1296, 1296,
		}
		var total int64
		for i, l := range vgg13Shapes() {
			res, err := SearchSDK(l, array512)
			if err != nil {
				t.Fatalf("%s: %v", l.Name, err)
			}
			if res.Best.PW != wantPW[i] {
				t.Errorf("%s: PW = %v, want %v", l.Name, res.Best.PW, wantPW[i])
			}
			if res.Best.Cycles != wantCycles[i] {
				t.Errorf("%s: cycles = %d, want %d", l.Name, res.Best.Cycles, wantCycles[i])
			}
			total += res.Best.Cycles
		}
		if total != 114697 {
			t.Errorf("VGG-13 SDK total = %d, want 114697 (paper Table I)", total)
		}
	})
}

// TestPaperSpeedups pins the headline speedups quoted in the paper's
// abstract and Section V-B.
func TestPaperSpeedups(t *testing.T) {
	sum := func(layers []Layer, f func(Layer) int64) int64 {
		var s int64
		for _, l := range layers {
			s += f(l)
		}
		return s
	}
	vwCycles := func(l Layer) int64 {
		r, err := SearchVWSDK(l, array512)
		if err != nil {
			t.Fatal(err)
		}
		return r.Best.Cycles
	}
	sdkCycles := func(l Layer) int64 {
		r, err := SearchSDK(l, array512)
		if err != nil {
			t.Fatal(err)
		}
		return r.Best.Cycles
	}
	imCycles := func(l Layer) int64 {
		m, err := Im2col(l, array512)
		if err != nil {
			t.Fatal(err)
		}
		return m.Cycles
	}
	check := func(name string, got, lo, hi float64) {
		if got < lo || got > hi {
			t.Errorf("%s speedup = %.3f, want in [%.2f, %.2f]", name, got, lo, hi)
		}
	}
	rn := resnet18Shapes()
	vg := vgg13Shapes()
	check("resnet18 VW vs im2col (paper 4.67x)",
		float64(sum(rn, imCycles))/float64(sum(rn, vwCycles)), 4.66, 4.68)
	check("resnet18 VW vs SDK (paper 1.69x)",
		float64(sum(rn, sdkCycles))/float64(sum(rn, vwCycles)), 1.68, 1.70)
	check("vgg13 VW vs im2col (paper 3.16x)",
		float64(sum(vg, imCycles))/float64(sum(vg, vwCycles)), 3.15, 3.17)
	check("vgg13 VW vs SDK (paper 1.49x)",
		float64(sum(vg, sdkCycles))/float64(sum(vg, vwCycles)), 1.48, 1.50)
}

// Property (Algorithm 1 invariant): VW-SDK never exceeds im2col cycles, and
// the reported best is reproducible from its own window parameters.
func TestSearchVWSDKProperties(t *testing.T) {
	f := func(iw, ih, k, ic, oc, rows, cols uint8) bool {
		l := Layer{
			IW: int(iw%30) + 5, IH: int(ih%30) + 5,
			KW: int(k%3) + 1, KH: int(k%3) + 1,
			IC: int(ic%100) + 1, OC: int(oc%100) + 1,
		}
		a := Array{Rows: int(rows%8)*32 + 32, Cols: int(cols%8)*32 + 32}
		res, err := SearchVWSDK(l, a)
		if err != nil {
			return false
		}
		if res.Best.Cycles > res.Im2col.Cycles {
			return false
		}
		if res.Best.Scheme == SchemeVWSDK {
			again, err := VW(l, a, res.Best.PW)
			if err != nil || again.Cycles != res.Best.Cycles {
				return false
			}
		}
		return res.SpeedupVsIm2col() >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: SearchVWSDK finds the true minimum over all feasible windows
// (it is exhaustive by construction; this guards the scan bounds).
func TestSearchVWSDKIsExhaustive(t *testing.T) {
	f := func(iw, ih, ic, oc uint8) bool {
		l := Layer{
			IW: int(iw%16) + 4, IH: int(ih%16) + 4,
			KW: 3, KH: 3, IC: int(ic%64) + 1, OC: int(oc%64) + 1,
		}
		a := Array{Rows: 128, Cols: 128}
		res, err := SearchVWSDK(l, a)
		if err != nil {
			return false
		}
		best := res.Im2col.Cycles
		for h := l.KH; h <= l.IH; h++ {
			for w := l.KW; w <= l.IW; w++ {
				if w == l.KW && h == l.KH {
					continue
				}
				m, err := VW(l, a, Window{w, h})
				if err != nil {
					continue
				}
				if m.Cycles < best {
					best = m.Cycles
				}
			}
		}
		return res.Best.Cycles == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSearchSDKDegenerate verifies that when no duplication is feasible the
// SDK result equals im2col but is labelled SDK, as the paper's Fig. 8
// presents it.
func TestSearchSDKDegenerate(t *testing.T) {
	l := Layer{IW: 28, IH: 28, KW: 3, KH: 3, IC: 128, OC: 128}
	res, err := SearchSDK(l, array512)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Scheme != SchemeSDK {
		t.Errorf("scheme = %v, want SDK", res.Best.Scheme)
	}
	if res.Best.PW != l.Kernel() {
		t.Errorf("PW = %v, want kernel %v", res.Best.PW, l.Kernel())
	}
	if res.Best.Cycles != res.Im2col.Cycles {
		t.Errorf("cycles = %d, want im2col %d", res.Best.Cycles, res.Im2col.Cycles)
	}
}

func TestSearchSMD(t *testing.T) {
	// 3x3x4x8 layer on 128x128: dup = min(128/36, 128/8) = 3.
	l := Layer{IW: 10, IH: 10, KW: 3, KH: 3, IC: 4, OC: 8}
	res, err := SearchSMD(l, Array{128, 128})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Dup != 3 {
		t.Fatalf("dup = %d, want 3", res.Best.Dup)
	}
	if res.Best.Cycles != 22 {
		t.Fatalf("cycles = %d, want 22", res.Best.Cycles)
	}
	// Layer too large to duplicate degenerates to im2col tiling.
	big := Layer{IW: 14, IH: 14, KW: 3, KH: 3, IC: 512, OC: 512}
	res, err = SearchSMD(big, array512)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Dup != 1 || res.Best.Cycles != res.Im2col.Cycles {
		t.Fatalf("big layer: dup=%d cycles=%d, want im2col degenerate", res.Best.Dup, res.Best.Cycles)
	}
}

// Property: both SMD and VW-SDK never lose to im2col. (VW-SDK does NOT
// always dominate SMD: for very small IC with large OC, block-diagonal
// duplication can process more windows per cycle than any parallel window —
// e.g. 3x3x2x30 on 256x256; see EXPERIMENTS.md. The paper never claims
// otherwise; it normalizes to im2col.)
func TestSchemeOrderingProperty(t *testing.T) {
	f := func(iw, ic, oc uint8) bool {
		l := Layer{
			IW: int(iw%20) + 5, IH: int(iw%20) + 5,
			KW: 3, KH: 3, IC: int(ic%32) + 1, OC: int(oc%32) + 1,
		}
		a := Array{Rows: 256, Cols: 256}
		smd, err1 := SearchSMD(l, a)
		vw, err2 := SearchVWSDK(l, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return vw.Best.Cycles <= vw.Im2col.Cycles &&
			smd.Best.Cycles <= smd.Im2col.Cycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSMDCanBeatVWSDK documents the counterexample above: duplication wins
// when the kernel-channel footprint is small relative to the array.
func TestSMDCanBeatVWSDK(t *testing.T) {
	l := Layer{IW: 13, IH: 13, KW: 3, KH: 3, IC: 2, OC: 30}
	a := Array{Rows: 256, Cols: 256}
	smd, err := SearchSMD(l, a)
	if err != nil {
		t.Fatal(err)
	}
	vw, err := SearchVWSDK(l, a)
	if err != nil {
		t.Fatal(err)
	}
	if smd.Best.Cycles >= vw.Best.Cycles {
		t.Skipf("counterexample no longer holds: smd=%d vw=%d", smd.Best.Cycles, vw.Best.Cycles)
	}
}

func TestSearchVariants(t *testing.T) {
	// ResNet-18 conv4: the full search picks 4x3 (504 cycles), while the
	// best square window is 4x4 (576 cycles) — rectangles strictly win.
	l := Layer{IW: 14, IH: 14, KW: 3, KH: 3, IC: 256, OC: 256}

	full, err := SearchVariant(l, array512, VariantFull)
	if err != nil {
		t.Fatal(err)
	}
	sq, err := SearchVariant(l, array512, VariantSquareTiled)
	if err != nil {
		t.Fatal(err)
	}
	rect, err := SearchVariant(l, array512, VariantRectFullChannel)
	if err != nil {
		t.Fatal(err)
	}
	if full.Best.Cycles > sq.Best.Cycles || full.Best.Cycles > rect.Best.Cycles {
		t.Errorf("full search (%d) worse than ablations (%d square, %d rect)",
			full.Best.Cycles, sq.Best.Cycles, rect.Best.Cycles)
	}
	if full.Best.Cycles != 504 {
		t.Errorf("full search cycles = %d, want 504", full.Best.Cycles)
	}
	if sq.Best.Cycles != 576 {
		t.Errorf("square+tiled cycles = %d, want 576", sq.Best.Cycles)
	}
	if full.Best.Cycles >= sq.Best.Cycles {
		t.Errorf("expected rectangular window to strictly beat squares: full=%d square=%d",
			full.Best.Cycles, sq.Best.Cycles)
	}
	if _, err := SearchVariant(l, array512, Variant(42)); err == nil {
		t.Error("unknown variant accepted")
	}
	for v, want := range map[Variant]string{
		VariantFull:            "full",
		VariantSquareTiled:     "square+tiled",
		VariantRectFullChannel: "rect+full-channels",
		Variant(7):             "Variant(7)",
	} {
		if got := v.String(); got != want {
			t.Errorf("Variant.String = %q, want %q", got, want)
		}
	}
}

// Property: variant searches never beat the full search (they are
// restrictions of its candidate set).
func TestVariantsAreRestrictions(t *testing.T) {
	f := func(iw, ic, oc, rows uint8) bool {
		l := Layer{
			IW: int(iw%24) + 5, IH: int(iw%24) + 5,
			KW: 3, KH: 3, IC: int(ic%64) + 1, OC: int(oc%64) + 1,
		}
		a := Array{Rows: int(rows%4)*128 + 128, Cols: 256}
		full, err := SearchVariant(l, a, VariantFull)
		if err != nil {
			return false
		}
		sq, err := SearchVariant(l, a, VariantSquareTiled)
		if err != nil {
			return false
		}
		return full.Best.Cycles <= sq.Best.Cycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSearchInvalidInputs(t *testing.T) {
	bad := Layer{IW: 0, IH: 8, KW: 3, KH: 3, IC: 1, OC: 1}
	if _, err := SearchVWSDK(bad, array512); err == nil {
		t.Error("SearchVWSDK accepted invalid layer")
	}
	if _, err := SearchSDK(bad, array512); err == nil {
		t.Error("SearchSDK accepted invalid layer")
	}
	if _, err := SearchSMD(bad, array512); err == nil {
		t.Error("SearchSMD accepted invalid layer")
	}
	ok := Layer{IW: 8, IH: 8, KW: 3, KH: 3, IC: 1, OC: 1}
	if _, err := SearchVWSDK(ok, Array{0, 0}); err == nil {
		t.Error("SearchVWSDK accepted invalid array")
	}
}

// TestSquareTiledInfeasibleSkip guards the SquareTiled sweep's infeasible
// handling: like SearchVWSDK it must skip infeasible candidates rather than
// abort the sweep, and it must agree with a brute-force sweep over every
// square window (which would expose a missed later-feasible window if the
// geometry ever admitted one). The first layer drives the sweep through an
// infeasible region (9x9 windows overflow 64 rows at IC 4) with in-bounds
// candidates still remaining.
func TestSquareTiledInfeasibleSkip(t *testing.T) {
	layers := []Layer{
		{Name: "mid-infeasible", IW: 12, IH: 12, KW: 3, KH: 3, IC: 4, OC: 8},
		{Name: "strided", IW: 23, IH: 23, KW: 3, KH: 3, IC: 8, OC: 8, StrideW: 2, StrideH: 2},
		{Name: "col-bound", IW: 16, IH: 16, KW: 3, KH: 3, IC: 1, OC: 60},
	}
	a := Array{Rows: 64, Cols: 64}
	for _, l := range layers {
		res, err := SearchVariant(l, a, VariantSquareTiled)
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		n := l.Normalized()
		best, err := Im2col(n, a)
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		evaluated := 0
		for d := 1; ; d++ {
			pw := Window{W: n.KW + d*n.StrideW, H: n.KH + d*n.StrideH}
			if pw.W > n.PaddedW() || pw.H > n.PaddedH() {
				break
			}
			m, err := VW(n, a, pw)
			if err != nil {
				continue // brute force never early-exits
			}
			evaluated++
			if m.Cycles < best.Cycles {
				best = m
			}
		}
		if res.Best.Cycles != best.Cycles || res.Best.PW != best.PW {
			t.Errorf("%s: search found %v (%d cycles), brute force %v (%d cycles)",
				l.Name, res.Best.PW, res.Best.Cycles, best.PW, best.Cycles)
		}
		if res.Evaluated != evaluated {
			t.Errorf("%s: Evaluated = %d, brute force costed %d", l.Name, res.Evaluated, evaluated)
		}
	}
}

// TestEvaluatedCountsCandidatesCosted pins the meaning of Result.Evaluated
// and Result.Swept across all three searches: Evaluated is the number of
// cost classes the search actually costed (one representative per
// constant-cycle run for the pruned default), Swept is the feasible
// candidate count of the exhaustive sweep — the legacy Evaluated.
func TestEvaluatedCountsCandidatesCosted(t *testing.T) {
	// SMD costs exactly one mapping whatever duplication it picks.
	small := Layer{IW: 10, IH: 10, KW: 3, KH: 3, IC: 4, OC: 8}
	res, err := SearchSMD(small, Array{128, 128})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Dup != 3 {
		t.Fatalf("dup = %d, want 3", res.Best.Dup)
	}
	if res.Evaluated != 1 || res.Swept != 1 {
		t.Errorf("SMD Evaluated = %d, Swept = %d, want 1 (one mapping costed)",
			res.Evaluated, res.Swept)
	}

	// VW-SDK sweeps every feasible non-kernel window; the pruned default
	// costs at most one representative per cost class.
	l := Layer{IW: 14, IH: 14, KW: 3, KH: 3, IC: 256, OC: 256}
	vw, err := SearchVWSDK(l, array512)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for h := l.KH; h <= l.IH; h++ {
		for w := l.KW; w <= l.IW; w++ {
			if w == l.KW && h == l.KH {
				continue
			}
			if _, err := VW(l, array512, Window{W: w, H: h}); err == nil {
				count++
			}
		}
	}
	if vw.Swept != count {
		t.Errorf("VW-SDK Swept = %d, want %d feasible windows", vw.Swept, count)
	}
	if vw.Evaluated <= 0 || vw.Evaluated > count {
		t.Errorf("VW-SDK Evaluated = %d cost classes, want in (0, %d]", vw.Evaluated, count)
	}
	exh, err := SearchVWSDKExhaustive(l, array512)
	if err != nil {
		t.Fatal(err)
	}
	if exh.Evaluated != count || exh.Swept != count {
		t.Errorf("exhaustive Evaluated = %d, Swept = %d, want %d feasible windows",
			exh.Evaluated, exh.Swept, count)
	}

	// SDK costs every square candidate inside the IFM bounds (its
	// feasibility rule filters after costing).
	sdk, err := SearchSDK(l, array512)
	if err != nil {
		t.Fatal(err)
	}
	squares := 0
	for d := 1; 3+d <= 14; d++ {
		squares++
	}
	if sdk.Evaluated != squares || sdk.Swept != squares {
		t.Errorf("SDK Evaluated = %d, Swept = %d, want %d costed candidates",
			sdk.Evaluated, sdk.Swept, squares)
	}
}
