// Package core implements the paper's primary contribution: analytic cost
// models and mapping-search algorithms for convolutional weight mapping on
// processing-in-memory (PIM) crossbar arrays.
//
// The package models four mapping schemes:
//
//   - im2col: each K×K×IC kernel unrolled into one column (Fig. 2a).
//   - SMD: sub-matrix duplication, block-diagonal kernel copies (Fig. 2b).
//   - SDK: shifted and duplicated kernels sharing a square parallel window
//     with entire channels (Fig. 2c).
//   - VW-SDK: the paper's variable-window SDK with rectangular parallel
//     windows and tiled channels (Fig. 2d).
//
// Cost is expressed in computing cycles (paper eqs. 1–8):
//
//	cycles = N_PW × AR × AC
//
// where N_PW is the number of parallel-window positions over the input
// feature map, AR ("array row cycles") is the number of row-dimension tiles
// and AC ("array column cycles") the number of column-dimension tiles needed
// because the array is smaller than the layer.
//
// SearchVWSDK implements Algorithm 1 of the paper; SearchSDK and SearchSMD
// implement the baselines the paper compares against. Utilization follows
// eq. 9 and counts weight-holding cells per cycle.
package core
