package core

import (
	"errors"
	"testing"
	"testing/quick"
)

var array512 = Array{Rows: 512, Cols: 512}

// resnet18Shapes are the five distinct conv shapes of ResNet-18 exactly as
// the paper's Table I lists them (each counted once).
func resnet18Shapes() []Layer {
	return []Layer{
		{Name: "conv1", IW: 112, IH: 112, KW: 7, KH: 7, IC: 3, OC: 64},
		{Name: "conv2", IW: 56, IH: 56, KW: 3, KH: 3, IC: 64, OC: 64},
		{Name: "conv3", IW: 28, IH: 28, KW: 3, KH: 3, IC: 128, OC: 128},
		{Name: "conv4", IW: 14, IH: 14, KW: 3, KH: 3, IC: 256, OC: 256},
		{Name: "conv5", IW: 7, IH: 7, KW: 3, KH: 3, IC: 512, OC: 512},
	}
}

// vgg13Shapes are the ten conv layers of VGG-13 as Table I lists them.
func vgg13Shapes() []Layer {
	return []Layer{
		{Name: "conv1", IW: 224, IH: 224, KW: 3, KH: 3, IC: 3, OC: 64},
		{Name: "conv2", IW: 224, IH: 224, KW: 3, KH: 3, IC: 64, OC: 64},
		{Name: "conv3", IW: 112, IH: 112, KW: 3, KH: 3, IC: 64, OC: 128},
		{Name: "conv4", IW: 112, IH: 112, KW: 3, KH: 3, IC: 128, OC: 128},
		{Name: "conv5", IW: 56, IH: 56, KW: 3, KH: 3, IC: 128, OC: 256},
		{Name: "conv6", IW: 56, IH: 56, KW: 3, KH: 3, IC: 256, OC: 256},
		{Name: "conv7", IW: 28, IH: 28, KW: 3, KH: 3, IC: 256, OC: 512},
		{Name: "conv8", IW: 28, IH: 28, KW: 3, KH: 3, IC: 512, OC: 512},
		{Name: "conv9", IW: 14, IH: 14, KW: 3, KH: 3, IC: 512, OC: 512},
		{Name: "conv10", IW: 14, IH: 14, KW: 3, KH: 3, IC: 512, OC: 512},
	}
}

func TestIm2colResNet18(t *testing.T) {
	// Hand-derived from eq. 1 with a 512x512 array (DESIGN.md §2).
	want := []int64{11236, 5832, 2028, 720, 225}
	var total int64
	for i, l := range resnet18Shapes() {
		m, err := Im2col(l, array512)
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		if m.Cycles != want[i] {
			t.Errorf("%s: im2col cycles = %d, want %d", l.Name, m.Cycles, want[i])
		}
		total += m.Cycles
	}
	if total != 20041 {
		t.Errorf("ResNet-18 im2col total = %d, want 20041", total)
	}
}

func TestIm2colVGG13(t *testing.T) {
	want := []int64{49284, 98568, 24200, 36300, 8748, 14580, 3380, 6084, 1296, 1296}
	var total int64
	for i, l := range vgg13Shapes() {
		m, err := Im2col(l, array512)
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		if m.Cycles != want[i] {
			t.Errorf("%s: im2col cycles = %d, want %d", l.Name, m.Cycles, want[i])
		}
		total += m.Cycles
	}
	if total != 243736 {
		t.Errorf("VGG-13 im2col total = %d, want 243736", total)
	}
}

func TestVWCostHandDerived(t *testing.T) {
	tests := []struct {
		name   string
		l      Layer
		pw     Window
		ict    int
		oct    int
		npw    int
		ar, ac int
		cycles int64
	}{
		{
			name: "resnet conv1 10x8",
			l:    Layer{IW: 112, IH: 112, KW: 7, KH: 7, IC: 3, OC: 64},
			pw:   Window{10, 8}, ict: 3, oct: 64,
			npw: 27 * 53, ar: 1, ac: 1, cycles: 1431,
		},
		{
			name: "resnet conv2 4x4",
			l:    Layer{IW: 56, IH: 56, KW: 3, KH: 3, IC: 64, OC: 64},
			pw:   Window{4, 4}, ict: 32, oct: 64,
			npw: 729, ar: 2, ac: 1, cycles: 1458,
		},
		{
			name: "resnet conv4 4x3",
			l:    Layer{IW: 14, IH: 14, KW: 3, KH: 3, IC: 256, OC: 256},
			pw:   Window{4, 3}, ict: 42, oct: 256,
			npw: 72, ar: 7, ac: 1, cycles: 504,
		},
		{
			name: "vgg conv1 10x3",
			l:    Layer{IW: 224, IH: 224, KW: 3, KH: 3, IC: 3, OC: 64},
			pw:   Window{10, 3}, ict: 3, oct: 64,
			npw: 28 * 222, ar: 1, ac: 1, cycles: 6216,
		},
		{
			name: "vgg conv5 4x3",
			l:    Layer{IW: 56, IH: 56, KW: 3, KH: 3, IC: 128, OC: 256},
			pw:   Window{4, 3}, ict: 42, oct: 256,
			npw: 27 * 54, ar: 4, ac: 1, cycles: 5832,
		},
		{
			name: "vgg conv6 4x3",
			l:    Layer{IW: 56, IH: 56, KW: 3, KH: 3, IC: 256, OC: 256},
			pw:   Window{4, 3}, ict: 42, oct: 256,
			npw: 1458, ar: 7, ac: 1, cycles: 10206,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m, err := VW(tt.l, array512, tt.pw)
			if err != nil {
				t.Fatal(err)
			}
			if m.ICt != tt.ict || m.OCt != tt.oct {
				t.Errorf("ICt,OCt = %d,%d, want %d,%d", m.ICt, m.OCt, tt.ict, tt.oct)
			}
			if m.NPW != tt.npw {
				t.Errorf("NPW = %d, want %d", m.NPW, tt.npw)
			}
			if m.AR != tt.ar || m.AC != tt.ac {
				t.Errorf("AR,AC = %d,%d, want %d,%d", m.AR, m.AC, tt.ar, tt.ac)
			}
			if m.Cycles != tt.cycles {
				t.Errorf("cycles = %d, want %d", m.Cycles, tt.cycles)
			}
		})
	}
}

func TestSDKCostHandDerived(t *testing.T) {
	tests := []struct {
		name   string
		l      Layer
		pw     Window
		ar, ac int
		cycles int64
	}{
		{
			name: "resnet conv1 8x8",
			l:    Layer{IW: 112, IH: 112, KW: 7, KH: 7, IC: 3, OC: 64},
			pw:   Window{8, 8}, ar: 1, ac: 1, cycles: 2809,
		},
		{
			name: "vgg conv2 4x4 AR2",
			l:    Layer{IW: 224, IH: 224, KW: 3, KH: 3, IC: 64, OC: 64},
			pw:   Window{4, 4}, ar: 2, ac: 1, cycles: 24642,
		},
		{
			name: "vgg conv1 5x5 would need AC2",
			l:    Layer{IW: 224, IH: 224, KW: 3, KH: 3, IC: 3, OC: 64},
			pw:   Window{5, 5}, ar: 1, ac: 2, cycles: 10952,
		},
		{
			name: "resnet conv3 4x4 AR4",
			l:    Layer{IW: 28, IH: 28, KW: 3, KH: 3, IC: 128, OC: 128},
			pw:   Window{4, 4}, ar: 4, ac: 1, cycles: 676,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m, err := SDK(tt.l, array512, tt.pw)
			if err != nil {
				t.Fatal(err)
			}
			if m.AR != tt.ar || m.AC != tt.ac {
				t.Errorf("AR,AC = %d,%d, want %d,%d", m.AR, m.AC, tt.ar, tt.ac)
			}
			if m.Cycles != tt.cycles {
				t.Errorf("cycles = %d, want %d", m.Cycles, tt.cycles)
			}
		})
	}
}

func TestSMDCost(t *testing.T) {
	// Small layer where duplication fits: 3x3x4 kernel (36 rows), OC 8.
	// On a 128x128 array: dup_max = min(128/36, 128/8) = 3.
	l := Layer{IW: 10, IH: 10, KW: 3, KH: 3, IC: 4, OC: 8}
	a := Array{Rows: 128, Cols: 128}
	m, err := SMD(l, a, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.AR != 1 || m.AC != 1 {
		t.Fatalf("AR,AC = %d,%d, want 1,1", m.AR, m.AC)
	}
	// windows = 64; ceil(64/3) = 22.
	if m.NPW != 22 || m.Cycles != 22 {
		t.Fatalf("NPW = %d cycles = %d, want 22", m.NPW, m.Cycles)
	}
	if _, err := SMD(l, a, 4); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("SMD dup=4 error = %v, want ErrInfeasible", err)
	}
	if _, err := SMD(l, a, 0); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("SMD dup=0 error = %v, want ErrInfeasible", err)
	}
	one, err := SMD(l, a, 1)
	if err != nil {
		t.Fatal(err)
	}
	im, _ := Im2col(l, a)
	if one.Cycles != im.Cycles {
		t.Fatalf("SMD dup=1 cycles = %d, want im2col %d", one.Cycles, im.Cycles)
	}
}

func TestVWInfeasible(t *testing.T) {
	l := Layer{IW: 32, IH: 32, KW: 3, KH: 3, IC: 4, OC: 4}
	// Window area 30*30=900 > 512 rows: not even one channel fits.
	if _, err := VW(l, Array{512, 512}, Window{30, 30}); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("error = %v, want ErrInfeasible", err)
	}
	// 20 windows > 8 columns.
	if _, err := VW(l, Array{512, 8}, Window{12, 4}); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("error = %v, want ErrInfeasible", err)
	}
}

func TestWindowValidation(t *testing.T) {
	l := Layer{IW: 8, IH: 8, KW: 3, KH: 3, IC: 2, OC: 2}
	if _, err := VW(l, array512, Window{2, 3}); err == nil {
		t.Fatal("window smaller than kernel accepted")
	}
	if _, err := VW(l, array512, Window{9, 3}); err == nil {
		t.Fatal("window larger than IFM accepted")
	}
	if _, err := SDK(l, array512, Window{2, 2}); err == nil {
		t.Fatal("SDK window smaller than kernel accepted")
	}
}

// TestNPWMatchesPaperFormula checks that the per-axis ceil(out/nw) form used
// in the implementation equals the paper's eq. 3,
// (ceil((I-PW)/(PW-K+1))+1) per axis, for stride-1 layers.
func TestNPWMatchesPaperFormula(t *testing.T) {
	f := func(iw, ih, pw, ph uint8) bool {
		l := Layer{
			IW: int(iw%120) + 7, IH: int(ih%120) + 7,
			KW: 3, KH: 3, IC: 4, OC: 4,
		}
		w := Window{W: 3 + int(pw)%8, H: 3 + int(ph)%8}
		if w.W > l.IW || w.H > l.IH {
			return true
		}
		m, err := VW(l, Array{4096, 4096}, w)
		if err != nil {
			return true
		}
		paper := (ceilDiv(l.IW-w.W, w.W-l.KW+1) + 1) *
			(ceilDiv(l.IH-w.H, w.H-l.KH+1) + 1)
		return m.NPW == paper
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestNPWMatchesEnumeration checks eq. 3 against explicitly enumerating
// clamped parallel-window origins over the IFM.
func TestNPWMatchesEnumeration(t *testing.T) {
	count := func(out, nw int) int {
		// Window origins advance by nw outputs; the final window is
		// clamped so it still fits. Count distinct origins.
		n := 0
		for o := 0; ; o += nw {
			n++
			if o+nw >= out {
				break
			}
		}
		return n
	}
	f := func(iw, ih, pw, ph uint8) bool {
		l := Layer{
			IW: int(iw%80) + 7, IH: int(ih%80) + 7,
			KW: 3, KH: 3, IC: 2, OC: 2,
		}
		w := Window{W: 3 + int(pw)%6, H: 3 + int(ph)%6}
		if w.W > l.IW || w.H > l.IH {
			return true
		}
		m, err := VW(l, Array{4096, 4096}, w)
		if err != nil {
			return true
		}
		want := count(l.OutW(), m.NwW) * count(l.OutH(), m.NwH)
		return m.NPW == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: tiled channels always fit the array (eqs. 4 and 6).
func TestTilingFitsArray(t *testing.T) {
	f := func(iw, k, ic, oc, rows, cols, pw, ph uint8) bool {
		l := Layer{
			IW: int(iw%40) + 8, IH: int(iw%40) + 8,
			KW: int(k%3) + 1, KH: int(k%3) + 1,
			IC: int(ic) + 1, OC: int(oc) + 1,
		}
		a := Array{Rows: int(rows)*4 + 16, Cols: int(cols)*4 + 16}
		w := Window{W: l.KW + int(pw)%6, H: l.KH + int(ph)%6}
		if w.W > l.IW || w.H > l.IH {
			return true
		}
		m, err := VW(l, a, w)
		if err != nil {
			return true
		}
		return m.ICt*w.Area() <= a.Rows && m.OCt*m.Nw() <= a.Cols &&
			m.ICt >= 1 && m.OCt >= 1 && m.ICt <= l.IC && m.OCt <= l.OC &&
			m.AR == ceilDiv(l.IC, m.ICt) && m.AC == ceilDiv(l.OC, m.OCt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestSchemeString(t *testing.T) {
	for s, want := range map[Scheme]string{
		SchemeIm2col: "im2col",
		SchemeSMD:    "SMD",
		SchemeSDK:    "SDK",
		SchemeVWSDK:  "VW-SDK",
		Scheme(9):    "Scheme(9)",
	} {
		if got := s.String(); got != want {
			t.Errorf("Scheme(%d).String = %q, want %q", int(s), got, want)
		}
	}
}

func TestTileString(t *testing.T) {
	l := Layer{IW: 56, IH: 56, KW: 3, KH: 3, IC: 128, OC: 256}
	m, err := VW(l, array512, Window{4, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.TileString(); got != "4x3x42x256" {
		t.Fatalf("TileString = %q, want 4x3x42x256", got)
	}
}

func TestSpeedup(t *testing.T) {
	l := Layer{IW: 14, IH: 14, KW: 3, KH: 3, IC: 256, OC: 256}
	im, _ := Im2col(l, array512)
	vw, err := VW(l, array512, Window{4, 3})
	if err != nil {
		t.Fatal(err)
	}
	// 720 / 504 ≈ 1.4286
	if s := vw.Speedup(im); s < 1.42 || s > 1.44 {
		t.Fatalf("speedup = %v, want ≈1.43", s)
	}
	if (Mapping{}).Speedup(im) != 0 {
		t.Fatal("zero-cycle mapping should report 0 speedup")
	}
}
