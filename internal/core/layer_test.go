package core

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestLayerNormalized(t *testing.T) {
	l := Layer{IW: 8, IH: 8, KW: 3, KH: 3, IC: 1, OC: 1}
	n := l.Normalized()
	if n.StrideW != 1 || n.StrideH != 1 {
		t.Fatalf("Normalized strides = %d,%d, want 1,1", n.StrideW, n.StrideH)
	}
	l.StrideW, l.StrideH = 2, 3
	n = l.Normalized()
	if n.StrideW != 2 || n.StrideH != 3 {
		t.Fatalf("Normalized clobbered strides: %d,%d", n.StrideW, n.StrideH)
	}
}

func TestLayerValidate(t *testing.T) {
	valid := Layer{Name: "ok", IW: 8, IH: 8, KW: 3, KH: 3, IC: 4, OC: 4}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid layer rejected: %v", err)
	}
	tests := []struct {
		name string
		mut  func(*Layer)
	}{
		{"zero IW", func(l *Layer) { l.IW = 0 }},
		{"negative IH", func(l *Layer) { l.IH = -1 }},
		{"zero kernel", func(l *Layer) { l.KW = 0 }},
		{"zero IC", func(l *Layer) { l.IC = 0 }},
		{"zero OC", func(l *Layer) { l.OC = 0 }},
		{"negative stride", func(l *Layer) { l.StrideW = -1 }},
		{"negative pad", func(l *Layer) { l.PadW = -1 }},
		{"kernel too big", func(l *Layer) { l.KW = 9 }},
		{"negative groups", func(l *Layer) { l.Groups = -1 }},
		{"IC not divisible by groups", func(l *Layer) { l.Groups = 3 }},
		{"OC not divisible by groups", func(l *Layer) { l.IC, l.OC, l.Groups = 6, 4, 3 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			l := valid
			tt.mut(&l)
			if err := l.Validate(); err == nil {
				t.Fatalf("Validate accepted %+v", l)
			}
		})
	}
}

func TestLayerKernelTooBigForPaddedIFM(t *testing.T) {
	// 5x5 kernel on a 4x4 IFM is invalid without padding but valid with
	// padding 1 (padded 6x6).
	l := Layer{IW: 4, IH: 4, KW: 5, KH: 5, IC: 1, OC: 1}
	if err := l.Validate(); err == nil {
		t.Fatal("kernel larger than IFM accepted")
	}
	l.PadW, l.PadH = 1, 1
	if err := l.Validate(); err != nil {
		t.Fatalf("padded layer rejected: %v", err)
	}
	if got := l.OutW(); got != 2 {
		t.Fatalf("OutW = %d, want 2", got)
	}
}

func TestLayerOutputDims(t *testing.T) {
	tests := []struct {
		name            string
		l               Layer
		outW, outH      int
		windows         int
		kernelRows      int
		paddedW, padded int
	}{
		{
			name: "vgg13 conv1",
			l:    Layer{IW: 224, IH: 224, KW: 3, KH: 3, IC: 3, OC: 64},
			outW: 222, outH: 222, windows: 49284, kernelRows: 27,
			paddedW: 224, padded: 224,
		},
		{
			name: "resnet conv1 7x7",
			l:    Layer{IW: 112, IH: 112, KW: 7, KH: 7, IC: 3, OC: 64},
			outW: 106, outH: 106, windows: 11236, kernelRows: 147,
			paddedW: 112, padded: 112,
		},
		{
			name: "strided",
			l:    Layer{IW: 16, IH: 16, KW: 3, KH: 3, IC: 2, OC: 2, StrideW: 2, StrideH: 2},
			outW: 7, outH: 7, windows: 49, kernelRows: 18,
			paddedW: 16, padded: 16,
		},
		{
			name: "padded same conv",
			l:    Layer{IW: 14, IH: 14, KW: 3, KH: 3, IC: 8, OC: 8, PadW: 1, PadH: 1},
			outW: 14, outH: 14, windows: 196, kernelRows: 72,
			paddedW: 16, padded: 16,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.l.OutW(); got != tt.outW {
				t.Errorf("OutW = %d, want %d", got, tt.outW)
			}
			if got := tt.l.OutH(); got != tt.outH {
				t.Errorf("OutH = %d, want %d", got, tt.outH)
			}
			if got := tt.l.Windows(); got != tt.windows {
				t.Errorf("Windows = %d, want %d", got, tt.windows)
			}
			if got := tt.l.KernelRows(); got != tt.kernelRows {
				t.Errorf("KernelRows = %d, want %d", got, tt.kernelRows)
			}
			if got := tt.l.PaddedW(); got != tt.paddedW {
				t.Errorf("PaddedW = %d, want %d", got, tt.paddedW)
			}
		})
	}
}

func TestLayerGrouped(t *testing.T) {
	// Dense layers (Groups 0 or 1) report one group covering all channels.
	dense := Layer{IW: 8, IH: 8, KW: 3, KH: 3, IC: 12, OC: 8}
	for _, g := range []int{0, 1} {
		dense.Groups = g
		if dense.NumGroups() != 1 || dense.ICg() != 12 || dense.OCg() != 8 {
			t.Fatalf("dense Groups=%d: NumGroups=%d ICg=%d OCg=%d", g,
				dense.NumGroups(), dense.ICg(), dense.OCg())
		}
	}
	if dense.KernelRows() != 3*3*12 {
		t.Fatalf("dense KernelRows = %d, want 108", dense.KernelRows())
	}

	// Grouped: per-group channel slices and per-kernel rows.
	g4 := Layer{IW: 8, IH: 8, KW: 3, KH: 3, IC: 12, OC: 8, Groups: 4}
	if err := g4.Validate(); err != nil {
		t.Fatalf("grouped layer rejected: %v", err)
	}
	if g4.NumGroups() != 4 || g4.ICg() != 3 || g4.OCg() != 2 {
		t.Fatalf("g4: NumGroups=%d ICg=%d OCg=%d", g4.NumGroups(), g4.ICg(), g4.OCg())
	}
	if g4.KernelRows() != 3*3*3 {
		t.Fatalf("g4 KernelRows = %d, want 27", g4.KernelRows())
	}
	// MACs count only within-group connections: Windows * KW*KH*ICg * OC.
	if got, want := g4.MACs(), int64(g4.Windows())*int64(3*3*3)*int64(g4.OC); got != want {
		t.Fatalf("g4 MACs = %d, want %d", got, want)
	}
	if s := g4.String(); !strings.Contains(s, "g4") {
		t.Errorf("grouped Layer.String = %q, want g4 marker", s)
	}

	// Depthwise edge case: G == IC, one input channel per group.
	dw := Layer{IW: 8, IH: 8, KW: 3, KH: 3, IC: 7, OC: 7, Groups: 7}
	if err := dw.Validate(); err != nil {
		t.Fatalf("depthwise layer rejected: %v", err)
	}
	if dw.ICg() != 1 || dw.OCg() != 1 || dw.KernelRows() != 9 {
		t.Fatalf("depthwise: ICg=%d OCg=%d KernelRows=%d", dw.ICg(), dw.OCg(), dw.KernelRows())
	}
}

func TestLayerMACs(t *testing.T) {
	l := Layer{IW: 6, IH: 5, KW: 3, KH: 3, IC: 2, OC: 4}
	// windows = 4*3 = 12; kernelRows = 18; MACs = 12*18*4 = 864.
	if got := l.MACs(); got != 864 {
		t.Fatalf("MACs = %d, want 864", got)
	}
}

func TestArrayValidate(t *testing.T) {
	if err := (Array{Rows: 512, Cols: 512}).Validate(); err != nil {
		t.Fatalf("valid array rejected: %v", err)
	}
	for _, a := range []Array{{0, 512}, {512, 0}, {-1, -1}} {
		if err := a.Validate(); err == nil {
			t.Fatalf("invalid array %v accepted", a)
		}
	}
	if got := (Array{Rows: 512, Cols: 256}).Cells(); got != 131072 {
		t.Fatalf("Cells = %d, want 131072", got)
	}
}

func TestStringFormats(t *testing.T) {
	l := Layer{Name: "conv5", IW: 56, IH: 56, KW: 3, KH: 3, IC: 128, OC: 256}
	if s := l.String(); !strings.Contains(s, "3x3x128x256") || !strings.Contains(s, "56x56") {
		t.Errorf("Layer.String = %q", s)
	}
	if s := (Array{512, 256}).String(); s != "512x256" {
		t.Errorf("Array.String = %q", s)
	}
	if s := (Window{4, 3}).String(); s != "4x3" {
		t.Errorf("Window.String = %q", s)
	}
	if (Window{4, 3}).Area() != 12 {
		t.Error("Window.Area wrong")
	}
}

func TestWindowsInside(t *testing.T) {
	tests := []struct {
		pw, k, stride, want int
	}{
		{3, 3, 1, 1},
		{4, 3, 1, 2},
		{10, 7, 1, 4},
		{2, 3, 1, 0},
		{7, 3, 2, 3},
		{8, 3, 2, 3},
		{9, 3, 2, 4},
	}
	for _, tt := range tests {
		if got := windowsInside(tt.pw, tt.k, tt.stride); got != tt.want {
			t.Errorf("windowsInside(%d,%d,%d) = %d, want %d",
				tt.pw, tt.k, tt.stride, got, tt.want)
		}
	}
}

func TestCeilDiv(t *testing.T) {
	if ceilDiv(7, 3) != 3 || ceilDiv(6, 3) != 2 || ceilDiv(1, 512) != 1 {
		t.Fatal("ceilDiv wrong")
	}
	if ceilDiv64(int64(1<<40)+1, 1<<40) != 2 {
		t.Fatal("ceilDiv64 wrong")
	}
}

// Property: output dims and window counts are always positive for valid
// layers, and Windows == OutW*OutH.
func TestLayerGeometryProperties(t *testing.T) {
	f := func(iw, ih, k, ic, oc uint8) bool {
		l := Layer{
			IW: int(iw%60) + 3, IH: int(ih%60) + 3,
			KW: int(k%3) + 1, KH: int(k%3) + 1,
			IC: int(ic%16) + 1, OC: int(oc%16) + 1,
		}
		if l.Validate() != nil {
			return true
		}
		return l.OutW() > 0 && l.OutH() > 0 &&
			l.Windows() == l.OutW()*l.OutH() &&
			l.KernelRows() == l.KW*l.KH*l.IC
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
