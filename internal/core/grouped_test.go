package core

import (
	"math"
	"strings"
	"testing"
)

// denseSlice reduces a grouped layer to its per-group slice: same geometry,
// IC/OC shrunk to one group's channels, dense. A grouped convolution is G
// independent copies of this slice, which is the invariant these tests pin.
func denseSlice(l Layer) Layer {
	l.IC, l.OC, l.Groups = l.ICg(), l.OCg(), 0
	return l
}

var groupedInvariantShapes = []Layer{
	{Name: "mbv2-dw96", IW: 112, IH: 112, KW: 3, KH: 3, IC: 96, OC: 96, PadW: 1, PadH: 1, Groups: 96},
	{Name: "mbv2-dw144-s2", IW: 56, IH: 56, KW: 3, KH: 3, IC: 144, OC: 144, StrideW: 2, StrideH: 2, PadW: 1, PadH: 1, Groups: 144},
	{Name: "resnext-g32", IW: 56, IH: 56, KW: 3, KH: 3, IC: 128, OC: 128, PadW: 1, PadH: 1, Groups: 32},
	{Name: "grouped-rect", IW: 40, IH: 12, KW: 5, KH: 3, IC: 16, OC: 32, Groups: 4},
	{Name: "grouped-pw", IW: 14, IH: 14, KW: 1, KH: 1, IC: 64, OC: 96, Groups: 2},
}

// TestGroupedCostIsSliceTimesG: a grouped layer costs exactly G times its
// per-group dense slice, per scheme — same per-group tiling (ICt, OCt, AR,
// AC, PW), G times the cycles, and identical utilization (every group's
// AR×AC grid is the same by the divisibility constraint).
func TestGroupedCostIsSliceTimesG(t *testing.T) {
	arrays := []Array{{Rows: 128, Cols: 128}, {Rows: 512, Cols: 512}}
	for _, l := range groupedInvariantShapes {
		g := int64(l.NumGroups())
		s := denseSlice(l)
		for _, a := range arrays {
			gi, err1 := Im2col(l, a)
			si, err2 := Im2col(s, a)
			if err1 != nil || err2 != nil {
				t.Fatalf("%s %s im2col: %v / %v", l.Name, a, err1, err2)
			}
			if gi.Cycles != g*si.Cycles {
				t.Errorf("%s %s im2col: grouped %d cycles, slice %d x %d groups",
					l.Name, a, gi.Cycles, si.Cycles, g)
			}
			if gi.ICt != si.ICt || gi.OCt != si.OCt || gi.AR != si.AR || gi.AC != si.AC {
				t.Errorf("%s %s im2col: per-group tiling differs: grouped %+v slice %+v",
					l.Name, a, gi, si)
			}
			if gi.Tiles() != int(g)*si.Tiles() {
				t.Errorf("%s %s im2col: Tiles = %d, want %d", l.Name, a, gi.Tiles(), int(g)*si.Tiles())
			}
			if du, su := gi.Utilization(), si.Utilization(); math.Abs(du-su) > 1e-12 {
				t.Errorf("%s %s im2col: utilization %g != slice %g", l.Name, a, du, su)
			}

			for _, v := range []Variant{VariantFull, VariantSquareTiled, VariantRectFullChannel} {
				gr, err1 := SearchVariant(l, a, v)
				sr, err2 := SearchVariant(s, a, v)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("%s %s %v: grouped err=%v, slice err=%v", l.Name, a, v, err1, err2)
				}
				if err1 != nil {
					continue
				}
				gb, sb := gr.Best, sr.Best
				if gb.Cycles != g*sb.Cycles {
					t.Errorf("%s %s %v: grouped best %d cycles, slice %d x %d",
						l.Name, a, v, gb.Cycles, sb.Cycles, g)
				}
				if gb.PW != sb.PW || gb.ICt != sb.ICt || gb.OCt != sb.OCt ||
					gb.AR != sb.AR || gb.AC != sb.AC || gb.NPW != sb.NPW {
					t.Errorf("%s %s %v: per-group tiling differs:\ngrouped %+v\nslice   %+v",
						l.Name, a, v, gb, sb)
				}
				if du, su := gb.Utilization(), sb.Utilization(); math.Abs(du-su) > 1e-12 {
					t.Errorf("%s %s %v: utilization %g != slice %g", l.Name, a, v, du, su)
				}
			}
		}
	}
}

// TestGroupedExplain: grouped mappings announce the group structure and the
// ×G cycle product; dense explanations don't mention groups at all.
func TestGroupedExplain(t *testing.T) {
	a := Array{Rows: 512, Cols: 512}
	l := Layer{Name: "dw", IW: 14, IH: 14, KW: 3, KH: 3, IC: 96, OC: 96, PadW: 1, PadH: 1, Groups: 96}
	r, err := SearchVWSDK(l, a)
	if err != nil {
		t.Fatal(err)
	}
	out := r.Best.Explain()
	if !strings.Contains(out, "grouped conv: 96 groups") {
		t.Errorf("grouped Explain missing group header:\n%s", out)
	}
	if !strings.Contains(out, "x 96 =") {
		t.Errorf("grouped Explain missing xG cycles factor:\n%s", out)
	}

	d, err := SearchVWSDK(denseSlice(l), a)
	if err != nil {
		t.Fatal(err)
	}
	if dense := d.Best.Explain(); strings.Contains(dense, "group") {
		t.Errorf("dense Explain mentions groups:\n%s", dense)
	}
}

// TestGroupedSMDAndSDK: SMD never duplicates across groups (a grouped layer
// costs as plain im2col with dup 1), and SDK respects per-group caps.
func TestGroupedSMDAndSDK(t *testing.T) {
	a := Array{Rows: 512, Cols: 512}
	l := Layer{Name: "dw", IW: 14, IH: 14, KW: 3, KH: 3, IC: 32, OC: 32, PadW: 1, PadH: 1, Groups: 32}
	g := int64(l.NumGroups())
	s := denseSlice(l)

	gr, err1 := SearchSMD(l, a)
	sr, err2 := SearchSMD(s, a)
	if err1 != nil || err2 != nil {
		t.Fatalf("SMD: %v / %v", err1, err2)
	}
	if gr.Best.Cycles != g*sr.Best.Cycles || gr.Best.Dup != sr.Best.Dup {
		t.Errorf("SMD grouped %+v vs slice %+v", gr.Best, sr.Best)
	}

	gk, err1 := SearchSDK(l, a)
	sk, err2 := SearchSDK(s, a)
	if err1 != nil || err2 != nil {
		t.Fatalf("SDK: %v / %v", err1, err2)
	}
	if gk.Best.Cycles != g*sk.Best.Cycles || gk.Best.PW != sk.Best.PW {
		t.Errorf("SDK grouped %+v vs slice %+v", gk.Best, sk.Best)
	}
}
