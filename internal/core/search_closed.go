package core

import (
	"context"
	"fmt"
)

// This file implements the closed-form Algorithm 1 search that SearchVWSDK
// routes dense, unit-stride layers through. The breakpoint-pruned enumerator
// (search_pruned.go) already walks one representative per constant-cycle cost
// class, but still pays a cost-model call (SweepVW → Mapping construction)
// per class. Eq. 8's cycle count, however, is a product of at most four step
// terms, each of which the class walk already knows in closed form:
//
//	Cycles(h, w) = ⌈OutW/NwW⌉ · ⌈OutH/NwH⌉ · ⌈IC/ICt⌉ · ⌈OC/OCt⌉
//
// with ICt = min(⌊Rows/(w·h)⌋, IC) and OCt = min(⌊Cols/(NwW·NwH)⌋, OC). The
// closed-form search therefore evaluates every class start with pure integer
// arithmetic — no Mapping is built, no cost model runs — tracks the argmin
// under Algorithm 1's first-strictly-better tie-break, and materializes only
// the single winning candidate through SweepVW at the end. Cost-model
// evaluations drop from one per class (typically dozens per layer) to at
// most one per search; Result (Best, Im2col, Evaluated, Swept) is
// bit-identical to the pruned and exhaustive paths, pinned by the zoo
// differential tests and FuzzSearchEquivalence.
//
// Preconditions (DESIGN.md §8): the derivation is proven for dense layers
// (NumGroups == 1, so the ICt/OCt caps are the plain channel counts and the
// ×Groups factor is 1) with unit strides (so NwW = w−KW+1 is strictly
// increasing in w and the "winner is a class start" scan-order argument is
// exact). Grouped or strided layers fall back to the pruned enumerator,
// which validates every class against the cost model itself; routing is
// pinned by TestClosedFormRouting so a silent always-fallback cannot creep
// in.

// SearchStats reports how a VW-SDK search arrived at its Result. It is
// diagnostic metadata — never part of Result, so serialized plans and the
// VGG-13 golden file are unaffected.
type SearchStats struct {
	// Path names the search implementation that ran: PathClosedForm or
	// PathPruned.
	Path string

	// CostModelCalls counts the candidate Mapping constructions (SweepVW
	// calls) the search performed, excluding the im2col seed. The pruned
	// enumerator pays one per cost class (== Result.Evaluated); the
	// closed-form search pays at most one, to materialize the winner.
	CostModelCalls int
}

// The Path values SearchStats reports.
const (
	PathClosedForm = "closed-form"
	PathPruned     = "pruned"
)

// ClosedFormEligible reports whether SearchVWSDK resolves layer l with the
// closed-form argmin search (dense, unit-stride layers) rather than the
// breakpoint-pruned enumerator fallback. Exposed so reports and tests can
// assert the routing.
func ClosedFormEligible(l Layer) bool {
	return closedFormEligible(l.Normalized())
}

// closedFormEligible is ClosedFormEligible for an already-normalized layer:
// the closed-form derivation covers dense unit-stride convolutions (padding
// only enlarges the scanned rectangle and is fine).
func closedFormEligible(l Layer) bool {
	return l.NumGroups() == 1 && l.StrideW == 1 && l.StrideH == 1
}

// searchVWSDKAuto routes a normalized layer to the closed-form search when
// its preconditions hold and to the pruned enumerator otherwise, recording
// the choice in st (which may be nil).
func searchVWSDKAuto(ctx context.Context, l Layer, a Array, st *SearchStats) (Result, error) {
	if closedFormEligible(l) {
		if st != nil {
			st.Path = PathClosedForm
		}
		return searchVWSDKClosed(ctx, l, a, st)
	}
	if st != nil {
		st.Path = PathPruned
	}
	return searchVWSDKPruned(ctx, l, a, st)
}

// SearchVWSDKInstrumented is SearchVWSDK plus the SearchStats describing how
// the result was obtained (which path ran, how many cost-model evaluations
// it paid). The Result is identical to SearchVWSDK's.
func SearchVWSDKInstrumented(ctx context.Context, l Layer, a Array) (Result, SearchStats, error) {
	var st SearchStats
	res, err := searchVWSDKAuto(ctx, l.Normalized(), a, &st)
	return res, st, err
}

// searchVWSDKClosed is the closed-form Algorithm 1 for dense, unit-stride
// layers (closedFormEligible must hold; l must be normalized). It walks the
// same (height, width-class) structure as searchVWSDKPruned — identical loop
// bounds, early exits, per-row cancellation checkpoints and class-end
// algebra — but evaluates each class's cycle count arithmetically and defers
// the cost model to a single materializing call for the argmin.
func searchVWSDKClosed(ctx context.Context, l Layer, a Array, st *SearchStats) (Result, error) {
	base, err := Im2col(l, a)
	if err != nil {
		return Result{}, err
	}
	res := Result{Best: base, Im2col: base, Swept: sweptVWSDK(l, a)}
	W, H := l.PaddedW(), l.PaddedH()
	outW, outH := l.OutW(), l.OutH()
	// Dense: the per-group channel counts are the full channel counts and
	// the ×Groups cycle factor is 1.
	ic, oc := l.IC, l.OC
	bestCycles := base.Cycles
	bestW, bestH := 0, 0 // 0 = the im2col seed is still winning
	for h := l.KH; h <= H; h++ {
		if err := checkpoint(ctx); err != nil {
			return Result{}, err
		}
		// Monotone early-exit on the height axis, as in the pruned walk.
		if l.KW*h > a.Rows {
			break
		}
		nwH := h - l.KH + 1 // unit stride: (h-KH)/1 + 1
		if nwH > a.Cols {
			break
		}
		npwH := ceilDiv(outH, nwH)
		w := l.KW
		if h == l.KH {
			w++ // the im2col seed covers the kernel-sized window
		}
		for w <= W {
			// Monotone early-exit on the width axis.
			if w*h > a.Rows {
				break
			}
			nwW := w - l.KW + 1
			if nwW*nwH > a.Cols {
				break
			}
			// Eq. 8 for this class, in closed form — exactly SweepVW's
			// arithmetic for a dense layer, without building the Mapping.
			ict := min(a.Rows/(w*h), ic)
			oct := min(a.Cols/(nwW*nwH), oc)
			npwW := ceilDiv(outW, nwW)
			npw := npwW * npwH
			cycles := int64(npw) * int64(ceilDiv(ic, ict)) * int64(ceilDiv(oc, oct))
			res.Evaluated++
			if cycles < bestCycles {
				bestCycles, bestW, bestH = cycles, w, h
			}
			// Class end, mirroring vwClassEnd's algebra on scalars: the class
			// extends while ICt, OCt and ⌈OutW/NwW⌉ are all unchanged.
			end := a.Rows / (h * ict)
			nwWEnd := a.Cols / (nwH * oct)
			if npwW > 1 {
				nwWEnd = min(nwWEnd, (outW-1)/(npwW-1))
			}
			end = min(end, l.KW+nwWEnd-1, W)
			w = max(end, w) + 1
		}
	}
	if bestW == 0 {
		return res, nil // nothing beat the im2col seed
	}
	// Materialize the argmin — the search's only cost-model call.
	m, err := SweepVW(l, a, Window{W: bestW, H: bestH})
	if err != nil {
		// Unreachable: the loop's feasibility checks are exactly SweepVW's.
		// Kept so a future cost-model change fails loudly.
		return Result{}, err
	}
	if st != nil {
		st.CostModelCalls++
	}
	if m.Cycles != bestCycles {
		// Unreachable: the arithmetic above mirrors SweepVW term by term.
		// A divergence means the closed form no longer matches the cost
		// model — fail loudly rather than serve a silently wrong plan.
		return Result{}, fmt.Errorf("core: closed-form search diverged from cost model for %s window %dx%d: computed %d cycles, cost model %d",
			l.Name, bestW, bestH, bestCycles, m.Cycles)
	}
	res.Best = m
	return res, nil
}
