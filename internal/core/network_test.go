package core

import (
	"math"
	"strings"
	"testing"
)

func TestSearchNetworkMatchesSerial(t *testing.T) {
	layers := resnet18Shapes()
	nr, err := SearchNetwork(layers, array512)
	if err != nil {
		t.Fatal(err)
	}
	if nr.TotalCycles != 4294 || nr.TotalIm2col != 20041 {
		t.Fatalf("totals = %d/%d, want 4294/20041", nr.TotalCycles, nr.TotalIm2col)
	}
	if math.Abs(nr.Speedup()-4.667) > 0.001 {
		t.Fatalf("speedup = %v, want 4.667", nr.Speedup())
	}
	// Order preserved and identical to the serial search.
	for i, l := range layers {
		serial, err := SearchVWSDK(l, array512)
		if err != nil {
			t.Fatal(err)
		}
		if nr.Results[i].Best.Cycles != serial.Best.Cycles ||
			nr.Results[i].Best.PW != serial.Best.PW {
			t.Errorf("layer %d: concurrent %v != serial %v",
				i, nr.Results[i].Best, serial.Best)
		}
	}
}

func TestSearchNetworkErrors(t *testing.T) {
	if _, err := SearchNetwork(nil, array512); err == nil {
		t.Error("empty layer list accepted")
	}
	bad := []Layer{
		{Name: "ok", IW: 8, IH: 8, KW: 3, KH: 3, IC: 2, OC: 2},
		{Name: "bad", IW: 0, IH: 8, KW: 3, KH: 3, IC: 2, OC: 2},
	}
	if _, err := SearchNetwork(bad, array512); err == nil {
		t.Error("invalid layer accepted")
	}
	if nr := (NetworkResult{}); nr.Speedup() != 0 {
		t.Error("empty result speedup should be 0")
	}
}

func TestSearchNetworkVGG13(t *testing.T) {
	nr, err := SearchNetwork(vgg13Shapes(), array512)
	if err != nil {
		t.Fatal(err)
	}
	if nr.TotalCycles != 77102 || nr.TotalIm2col != 243736 {
		t.Fatalf("totals = %d/%d, want 77102/243736", nr.TotalCycles, nr.TotalIm2col)
	}
}

func TestExplainVWSDK(t *testing.T) {
	l := Layer{Name: "conv4", IW: 14, IH: 14, KW: 3, KH: 3, IC: 256, OC: 256}
	res, err := SearchVWSDK(l, array512)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Best.Explain()
	for _, want := range []string{
		"VW-SDK mapping",
		"ICt (eq.4)       = floor(Rows / PW area) = floor(512/12) = 42",
		"AR  (eq.5)       = ceil(IC / ICt) = ceil(256/42) = 7",
		"OCt (eq.6)       = floor(Cols / Nw) = floor(512/2) = 256",
		"cycles (eq.8)    = N_PW x AR x AC = 72 x 7 x 1 = 504",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("Explain missing %q in:\n%s", want, s)
		}
	}
	full := ExplainSearch(res)
	if !strings.Contains(full, "baseline:") || !strings.Contains(full, "speedup vs im2col: 1.43x") {
		t.Errorf("ExplainSearch malformed:\n%s", full)
	}
}

func TestExplainOtherSchemes(t *testing.T) {
	l := Layer{IW: 12, IH: 12, KW: 3, KH: 3, IC: 8, OC: 8}
	a := Array{Rows: 96, Cols: 64}
	im, err := Im2col(l, a)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(im.Explain(), "window = kernel") {
		t.Error("im2col explain malformed")
	}
	sdk, err := SDK(l, a, Window{W: 4, H: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sdk.Explain(), "entire channels") {
		t.Error("SDK explain malformed")
	}
	smd, err := SMD(l, a, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(smd.Explain(), "block-diagonal") {
		t.Error("SMD explain malformed")
	}
}
