package core

import (
	"context"
	"reflect"
	"testing"
)

// FuzzSearchEquivalence fuzzes random (layer, array) pairs through the
// breakpoint-pruned and brute-force searches of every variant: Best and
// Im2col must be identical field-for-field (cycles, PW, ICt, OCt and the
// width-inner/height-outer first-strictly-better tie-break), the pruned
// analytic Swept must equal the exhaustive feasible-candidate count, and the
// class count can never exceed it. The gr byte selects the group structure:
// 0 keeps the layer dense, 1 makes it depthwise (G == IC == OC, ICg == 1),
// and 2..7 scale IC/OC into multiples of a proper group count. Run in CI
// alongside the unit suite
// (go test -fuzz FuzzSearchEquivalence -fuzztime 10s ./internal/core).
func FuzzSearchEquivalence(f *testing.F) {
	f.Add(uint8(14), uint8(14), uint8(3), uint8(3), uint8(64), uint8(64), uint8(1), uint8(1), uint8(0), uint8(0), uint8(3), uint8(3), uint8(0))
	f.Add(uint8(224), uint8(224), uint8(3), uint8(3), uint8(3), uint8(64), uint8(1), uint8(1), uint8(0), uint8(0), uint8(7), uint8(7), uint8(0))
	f.Add(uint8(27), uint8(27), uint8(5), uint8(5), uint8(96), uint8(255), uint8(1), uint8(1), uint8(2), uint8(2), uint8(7), uint8(7), uint8(0))
	f.Add(uint8(40), uint8(12), uint8(5), uint8(3), uint8(16), uint8(32), uint8(2), uint8(3), uint8(1), uint8(0), uint8(4), uint8(2), uint8(0))
	f.Add(uint8(56), uint8(7), uint8(7), uint8(1), uint8(8), uint8(8), uint8(4), uint8(1), uint8(0), uint8(3), uint8(0), uint8(15), uint8(0))
	// Grouped seeds: a MobileNet-style depthwise 3x3, a strided depthwise,
	// a ResNeXt-style grouped 3x3 and a grouped pointwise layer.
	f.Add(uint8(14), uint8(14), uint8(3), uint8(3), uint8(95), uint8(95), uint8(1), uint8(1), uint8(1), uint8(1), uint8(3), uint8(3), uint8(1))
	f.Add(uint8(28), uint8(28), uint8(3), uint8(3), uint8(47), uint8(47), uint8(2), uint8(2), uint8(1), uint8(1), uint8(7), uint8(7), uint8(1))
	f.Add(uint8(56), uint8(56), uint8(3), uint8(3), uint8(3), uint8(3), uint8(1), uint8(1), uint8(1), uint8(1), uint8(7), uint8(7), uint8(4))
	f.Add(uint8(14), uint8(14), uint8(1), uint8(1), uint8(31), uint8(47), uint8(1), uint8(1), uint8(0), uint8(0), uint8(3), uint8(3), uint8(2))
	f.Fuzz(func(t *testing.T, iw, ih, kw, kh, ic, oc, sw, sh, pw, ph, rows, cols, gr uint8) {
		l := Layer{
			Name: "fuzz",
			IW:   int(iw%56) + 1, IH: int(ih%56) + 1,
			KW: int(kw%9) + 1, KH: int(kh%9) + 1,
			IC: int(ic) + 1, OC: int(oc) + 1,
			StrideW: int(sw % 5), StrideH: int(sh % 5),
			PadW: int(pw % 4), PadH: int(ph % 4),
		}
		switch g := int(gr % 8); g {
		case 0: // dense
		case 1: // depthwise: one channel per group
			l.OC = l.IC
			l.Groups = l.IC
		default: // proper grouping: scale the channels into multiples of g
			l.IC *= g
			l.OC *= g
			l.Groups = g
		}
		a := Array{Rows: (int(rows%16) + 1) * 32, Cols: (int(cols%16) + 1) * 32}
		if l.Validate() != nil {
			t.Skip()
		}
		for _, v := range []Variant{VariantFull, VariantSquareTiled, VariantRectFullChannel} {
			pruned, err1 := SearchVariant(l, a, v)
			exh, err2 := SearchVariantExhaustive(l, a, v)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("%v %s %v: pruned err=%v, exhaustive err=%v", l, a, v, err1, err2)
			}
			if err1 != nil {
				continue
			}
			if !reflect.DeepEqual(pruned.Best, exh.Best) {
				t.Fatalf("%v %s %v: Best differs\npruned     %+v\nexhaustive %+v",
					l, a, v, pruned.Best, exh.Best)
			}
			if !reflect.DeepEqual(pruned.Im2col, exh.Im2col) {
				t.Fatalf("%v %s %v: Im2col differs", l, a, v)
			}
			if pruned.Swept != exh.Evaluated {
				t.Fatalf("%v %s %v: pruned Swept = %d, exhaustive costed %d",
					l, a, v, pruned.Swept, exh.Evaluated)
			}
			if pruned.Evaluated > exh.Evaluated {
				t.Fatalf("%v %s %v: pruned costed %d classes > %d exhaustive candidates",
					l, a, v, pruned.Evaluated, exh.Evaluated)
			}
			// VariantFull resolves through the closed-form/pruned router;
			// additionally pin the whole Result against the pruned enumerator
			// run explicitly, so the closed form (when eligible) is fuzzed
			// against both references.
			if v == VariantFull {
				enum, err := searchVWSDKPruned(context.Background(), l.Normalized(), a, nil)
				if err != nil {
					t.Fatalf("%v %s: pruned enumerator: %v", l, a, err)
				}
				if !reflect.DeepEqual(pruned, enum) {
					t.Fatalf("%v %s: auto search differs from pruned enumerator\nauto   %+v\npruned %+v",
						l, a, pruned, enum)
				}
			}
		}
	})
}
