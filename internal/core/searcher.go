package core

import "context"

// Searcher is the set of mapping searches shared by the serial reference
// implementation (Serial) and the concurrent, memoizing engine
// (internal/engine). Experiment generators, the compile pipeline and the
// CLIs accept a Searcher so callers choose the execution strategy; both
// implementations return bit-identical results.
//
// Every method is context-first: the search loops run cooperative
// cancellation checkpoints (once per candidate row), so a cancelled or
// expired context actually stops the work instead of letting it run to
// completion. Pass context.Background() when cancellation is not needed.
type Searcher interface {
	SearchVWSDK(ctx context.Context, l Layer, a Array) (Result, error)
	SearchSDK(ctx context.Context, l Layer, a Array) (Result, error)
	SearchSMD(ctx context.Context, l Layer, a Array) (Result, error)
	SearchVariant(ctx context.Context, l Layer, a Array, v Variant) (Result, error)
	SearchNetwork(ctx context.Context, layers []Layer, a Array) (NetworkResult, error)
}

// Serial is the Searcher backed directly by this package's single-threaded
// algorithms; it holds no state and the zero value is ready to use.
type Serial struct{}

// SearchVWSDK runs Algorithm 1 serially.
func (Serial) SearchVWSDK(ctx context.Context, l Layer, a Array) (Result, error) {
	return SearchVWSDKContext(ctx, l, a)
}

// SearchSDK runs the SDK baseline search serially.
func (Serial) SearchSDK(ctx context.Context, l Layer, a Array) (Result, error) {
	return SearchSDKContext(ctx, l, a)
}

// SearchSMD runs the SMD baseline search serially.
func (Serial) SearchSMD(ctx context.Context, l Layer, a Array) (Result, error) {
	return SearchSMDContext(ctx, l, a)
}

// SearchVariant runs an ablated search serially.
func (Serial) SearchVariant(ctx context.Context, l Layer, a Array, v Variant) (Result, error) {
	return SearchVariantContext(ctx, l, a, v)
}

// SearchNetwork optimizes every layer and sums the totals.
func (Serial) SearchNetwork(ctx context.Context, layers []Layer, a Array) (NetworkResult, error) {
	return SearchNetworkContext(ctx, layers, a)
}

// Exhaustive is the Searcher backed by the brute-force sweeps
// (SearchVWSDKExhaustive / SearchVariantExhaustive): the reference the
// breakpoint-pruned default is differentially tested and benchmarked
// against. The baseline searches (SDK, SMD) have no pruned/exhaustive split
// and are shared with Serial. The zero value is ready to use.
type Exhaustive struct{}

// SearchVWSDK runs the brute-force Algorithm 1 sweep.
func (Exhaustive) SearchVWSDK(ctx context.Context, l Layer, a Array) (Result, error) {
	return searchVWSDKExhaustive(ctx, l.Normalized(), a)
}

// SearchSDK runs the SDK baseline search (no exhaustive split).
func (Exhaustive) SearchSDK(ctx context.Context, l Layer, a Array) (Result, error) {
	return SearchSDKContext(ctx, l, a)
}

// SearchSMD runs the SMD baseline search (no exhaustive split).
func (Exhaustive) SearchSMD(ctx context.Context, l Layer, a Array) (Result, error) {
	return SearchSMDContext(ctx, l, a)
}

// SearchVariant runs a brute-force ablated sweep.
func (Exhaustive) SearchVariant(ctx context.Context, l Layer, a Array, v Variant) (Result, error) {
	return searchVariantExhaustive(ctx, l.Normalized(), a, v)
}

// SearchNetwork optimizes every layer with the brute-force sweep and sums
// the totals.
func (Exhaustive) SearchNetwork(ctx context.Context, layers []Layer, a Array) (NetworkResult, error) {
	return SearchNetworkWith(ctx, layers, a, func(ctx context.Context, l Layer, a Array) (Result, error) {
		return searchVWSDKExhaustive(ctx, l.Normalized(), a)
	})
}
