package core

// Searcher is the set of mapping searches shared by the serial reference
// implementation (Serial) and the concurrent, memoizing engine
// (internal/engine). Experiment generators and the CLIs accept a Searcher so
// callers choose the execution strategy; both implementations return
// bit-identical results.
type Searcher interface {
	SearchVWSDK(l Layer, a Array) (Result, error)
	SearchSDK(l Layer, a Array) (Result, error)
	SearchSMD(l Layer, a Array) (Result, error)
	SearchVariant(l Layer, a Array, v Variant) (Result, error)
	SearchNetwork(layers []Layer, a Array) (NetworkResult, error)
}

// Serial is the Searcher backed directly by this package's single-threaded
// algorithms; it holds no state and the zero value is ready to use.
type Serial struct{}

// SearchVWSDK runs Algorithm 1 serially.
func (Serial) SearchVWSDK(l Layer, a Array) (Result, error) { return SearchVWSDK(l, a) }

// SearchSDK runs the SDK baseline search serially.
func (Serial) SearchSDK(l Layer, a Array) (Result, error) { return SearchSDK(l, a) }

// SearchSMD runs the SMD baseline search serially.
func (Serial) SearchSMD(l Layer, a Array) (Result, error) { return SearchSMD(l, a) }

// SearchVariant runs an ablated search serially.
func (Serial) SearchVariant(l Layer, a Array, v Variant) (Result, error) {
	return SearchVariant(l, a, v)
}

// SearchNetwork optimizes every layer and sums the totals.
func (Serial) SearchNetwork(layers []Layer, a Array) (NetworkResult, error) {
	return SearchNetwork(layers, a)
}

// Exhaustive is the Searcher backed by the brute-force sweeps
// (SearchVWSDKExhaustive / SearchVariantExhaustive): the reference the
// breakpoint-pruned default is differentially tested and benchmarked
// against. The baseline searches (SDK, SMD) have no pruned/exhaustive split
// and are shared with Serial. The zero value is ready to use.
type Exhaustive struct{}

// SearchVWSDK runs the brute-force Algorithm 1 sweep.
func (Exhaustive) SearchVWSDK(l Layer, a Array) (Result, error) {
	return SearchVWSDKExhaustive(l, a)
}

// SearchSDK runs the SDK baseline search (no exhaustive split).
func (Exhaustive) SearchSDK(l Layer, a Array) (Result, error) { return SearchSDK(l, a) }

// SearchSMD runs the SMD baseline search (no exhaustive split).
func (Exhaustive) SearchSMD(l Layer, a Array) (Result, error) { return SearchSMD(l, a) }

// SearchVariant runs a brute-force ablated sweep.
func (Exhaustive) SearchVariant(l Layer, a Array, v Variant) (Result, error) {
	return SearchVariantExhaustive(l, a, v)
}

// SearchNetwork optimizes every layer with the brute-force sweep and sums
// the totals.
func (Exhaustive) SearchNetwork(layers []Layer, a Array) (NetworkResult, error) {
	return SearchNetworkWith(layers, a, SearchVWSDKExhaustive)
}
