package core

import (
	"context"
	"errors"
)

// This file implements the breakpoint-pruned Algorithm 1 search that
// SearchVWSDK and SearchVariant run by default. It exploits the structure of
// eq. 8: for a fixed window height h, every term of the cycle count is a step
// function of the window width w —
//
//	ICt  = min(floor(Rows/(w·h)), ICg)       (eq. 4) → AR = ceil(ICg/ICt)
//	OCt  = min(floor(Cols/(NwW·NwH)), OCg)   (eq. 6) → AC = ceil(OCg/OCt)
//	NPWw = ceil(OutW/NwW)                    (eq. 3)
//
// (ICg = IC/Groups and OCg = OC/Groups are the per-group channel counts;
// dense layers have Groups == 1 so ICg == IC, OCg == OC. Grouping replaces
// the caps with per-group floors and multiplies Cycles by the G-independent
// constant Groups — the step-function structure in w is untouched, so the
// class walk below needs no changes; DESIGN.md §7.)
//
// with NwW = floor((w-KW)/StrideW)+1 itself a step function of w. The cycle
// count is therefore constant over maximal runs of w on which (ICt, OCt,
// NPWw) are all constant — a "cost class". Because Algorithm 1 keeps the
// *first strictly better* candidate in its width-inner/height-outer scan, the
// winning candidate is always the first w of some class: every later member
// of the class has exactly the same cycle count and cannot beat it under
// strict <. The pruned search walks only class-start representatives, in scan
// order, with the same strict-< update, and is therefore bit-identical to the
// exhaustive sweep (pinned by differential and fuzz tests).
//
// Each of the three step functions contributes O(sqrt) many breakpoints per
// row (the divisor-count structure of floor(N/x)), so a row of the padded IFM
// costs O(√Rows + √Cols + √OutW) classes instead of O(PaddedW) candidates.
// Infeasibility is monotone on both loop axes — once w·h > Rows or
// NwW·NwH > Cols, no wider w can recover, and once the kernel-width window of
// a row is infeasible no taller row can recover — so both loops early-exit
// instead of skipping candidate-by-candidate.
//
// The derivation, and the tie-break-preservation argument, are written up in
// DESIGN.md ("Breakpoint-pruned search").

// searchVWSDKPruned is the breakpoint-pruned Algorithm 1. l must be
// normalized. Result.Evaluated counts the cost classes actually costed;
// Result.Swept counts the feasible candidates the exhaustive sweep costs
// (the legacy Evaluated), computed analytically. The loop checks ctx once
// per candidate row (the cooperative cancellation checkpoint). st, which
// may be nil, accumulates one CostModelCalls per class costed.
func searchVWSDKPruned(ctx context.Context, l Layer, a Array, st *SearchStats) (Result, error) {
	base, err := Im2col(l, a)
	if err != nil {
		return Result{}, err
	}
	res := Result{Best: base, Im2col: base, Swept: sweptVWSDK(l, a)}
	W, H := l.PaddedW(), l.PaddedH()
	outW := l.OutW()
	for h := l.KH; h <= H; h++ {
		if err := checkpoint(ctx); err != nil {
			return Result{}, err
		}
		// Monotone early-exit on the height axis: the narrowest window of
		// this row is infeasible, and both causes only worsen with h.
		if l.KW*h > a.Rows {
			break
		}
		nwH := (h-l.KH)/l.StrideH + 1
		if nwH > a.Cols {
			break
		}
		w := l.KW
		if h == l.KH {
			w++ // the im2col seed covers the kernel-sized window
		}
		for w <= W {
			// Monotone early-exit on the width axis.
			if w*h > a.Rows {
				break
			}
			nwW := (w-l.KW)/l.StrideW + 1
			if nwW*nwH > a.Cols {
				break
			}
			m, err := SweepVW(l, a, Window{W: w, H: h})
			if err != nil {
				// Unreachable: the two checks above are exactly SweepVW's
				// feasibility conditions. Kept so a future cost-model change
				// fails loudly instead of silently mis-pruning.
				return Result{}, err
			}
			res.Evaluated++
			if st != nil {
				st.CostModelCalls++
			}
			if m.Cycles < res.Best.Cycles {
				res.Best = m
			}
			w = vwClassEnd(l, a, h, w, m, outW) + 1
		}
	}
	return res, nil
}

// vwClassEnd returns the largest width w' ≥ w (clamped to the padded IFM)
// for which the candidate (w', h) has the same ICt, OCt and ceil(OutW/NwW) —
// hence the same cycle count — as the costed representative m at width w.
func vwClassEnd(l Layer, a Array, h, w int, m Mapping, outW int) int {
	// ICt = min(floor(Rows/(w'·h)), ICg) stays == m.ICt while w'·h·ICt ≤ Rows
	// (m.ICt already carries the per-group cap, so this holds for any Groups).
	end := a.Rows / (h * m.ICt)
	// OCt = min(floor(Cols/(NwW'·NwH)), OCg) stays == m.OCt while
	// NwW'·NwH·OCt ≤ Cols.
	nwWEnd := a.Cols / (m.NwH * m.OCt)
	// ceil(OutW/NwW') stays == npwW while NwW' ≤ (OutW-1)/(npwW-1); for
	// npwW == 1 it can never change again (NwW ≤ OutW always).
	if npwW := ceilDiv(outW, m.NwW); npwW > 1 {
		nwWEnd = min(nwWEnd, (outW-1)/(npwW-1))
	}
	// The largest w' whose window count along the width is still nwWEnd.
	end = min(end, l.KW+nwWEnd*l.StrideW-1, l.PaddedW())
	// Defensive: the bounds above are ≥ w by construction; never stall.
	return max(end, w)
}

// sweptVWSDK counts, in O(PaddedH) time, the feasible candidates the
// exhaustive Algorithm 1 sweep costs: for each row the feasible widths form
// the contiguous range [KW, min(PaddedW, Rows/h, widest w with NwW·NwH ≤
// Cols)], minus the kernel-sized seed in the first row.
func sweptVWSDK(l Layer, a Array) int {
	n := 0
	for h := l.KH; h <= l.PaddedH(); h++ {
		if l.KW*h > a.Rows {
			break // no feasible width in this or any taller row
		}
		nwH := (h-l.KH)/l.StrideH + 1
		if nwH > a.Cols {
			break
		}
		// NwW ≤ Cols/(NwH) ⇔ w ≤ KW + floor(Cols/NwH)·StrideW − 1.
		wMax := min(a.Rows/h, l.KW+(a.Cols/nwH)*l.StrideW-1, l.PaddedW())
		n += wMax - l.KW + 1
		if h == l.KH {
			n-- // the kernel-sized seed is covered by im2col, never costed
		}
	}
	return n
}

// searchSquareTiledPruned is the VariantSquareTiled search with monotone
// early-exit: the window grows in both axes with d, so ICt = floor(Rows/area)
// and OCt = floor(Cols/Nw) are non-increasing and a candidate that is
// infeasible can never become feasible again. Every d changes Nw = (d+1)², so
// each feasible candidate is its own cost class and Evaluated equals the
// exhaustive sweep's count.
func searchSquareTiledPruned(ctx context.Context, l Layer, a Array) (Result, error) {
	base, err := Im2col(l, a)
	if err != nil {
		return Result{}, err
	}
	res := Result{Best: base, Im2col: base}
	for d := 1; ; d++ {
		if err := checkpoint(ctx); err != nil {
			return Result{}, err
		}
		pw := Window{W: l.KW + d*l.StrideW, H: l.KH + d*l.StrideH}
		if pw.W > l.PaddedW() || pw.H > l.PaddedH() {
			break
		}
		m, err := SweepVW(l, a, pw)
		if err != nil {
			if errors.Is(err, ErrInfeasible) {
				break
			}
			return Result{}, err
		}
		res.Evaluated++
		if m.Cycles < res.Best.Cycles {
			res.Best = m
		}
	}
	res.Swept = res.Evaluated
	return res, nil
}

// searchRectFullChannelPruned is the breakpoint-pruned VariantRectFullChannel
// search. The SDK costing's terms are again step functions of w for fixed h —
// AR = ceil(w·h·IC/Rows), AC = ceil(NwW·NwH·OC/Cols), NPWw = ceil(OutW/NwW) —
// and the baseline feasibility rule (AR ≤ im2col's AR and AC ≤ im2col's AC)
// is monotone on both axes, so a filtered class ends its row and a filtered
// kernel-width candidate ends the whole scan. Result.Evaluated counts the
// classes costed; Result.Swept retains the exhaustive count, which for this
// variant is every enumerated candidate (the serial loop costs before it
// filters).
func searchRectFullChannelPruned(ctx context.Context, l Layer, a Array) (Result, error) {
	base, err := Im2col(l, a)
	if err != nil {
		return Result{}, err
	}
	res := Result{Best: base, Im2col: base}
	res.Swept = int(ExhaustiveCandidates(l, VariantRectFullChannel))
	W, H := l.PaddedW(), l.PaddedH()
	outW := l.OutW()
	for h := l.KH; h <= H; h++ {
		if err := checkpoint(ctx); err != nil {
			return Result{}, err
		}
		nwH := (h-l.KH)/l.StrideH + 1
		// Monotone early-exit on the height axis: the narrowest window of
		// this row already violates the baseline rule, and AR and AC only
		// grow with h. The SDK costing is per group (ICg/OCg), so the rule
		// and the class algebra below use the per-group channel counts.
		if ceilDiv(l.KW*h*l.ICg(), a.Rows) > base.AR || ceilDiv(nwH*l.OCg(), a.Cols) > base.AC {
			break
		}
		w := l.KW
		if h == l.KH {
			w++
		}
		for w <= W {
			m, err := SDK(l, a, Window{W: w, H: h})
			if err != nil {
				return Result{}, err
			}
			res.Evaluated++
			if m.AR > base.AR || m.AC > base.AC {
				break // monotone in w: the rest of the row is filtered too
			}
			if m.Cycles < res.Best.Cycles {
				res.Best = m
			}
			// Class end: AR stays while w'·h·ICg ≤ AR·Rows; AC stays while
			// NwW'·NwH·OCg ≤ AC·Cols; ceil(OutW/NwW') as in the VW walk.
			end := m.AR * a.Rows / (h * l.ICg())
			nwWEnd := m.AC * a.Cols / (m.NwH * l.OCg())
			if npwW := ceilDiv(outW, m.NwW); npwW > 1 {
				nwWEnd = min(nwWEnd, (outW-1)/(npwW-1))
			}
			end = min(end, l.KW+nwWEnd*l.StrideW-1, W)
			w = max(end, w) + 1
		}
	}
	return res, nil
}

// ExhaustiveCandidates returns the number of candidate windows the exhaustive
// search for variant v enumerates (and hands to the cost model) for layer l:
// the full [kernel, padded IFM] rectangle minus the im2col seed for the 2-D
// sweeps, and every in-bounds square for VariantSquareTiled. This is the
// candidate count the pruned searches avoid; engine.Stats and the
// cmd/vwsdkbench report use it to quantify the pruning.
func ExhaustiveCandidates(l Layer, v Variant) int64 {
	l = l.Normalized()
	switch v {
	case VariantSquareTiled:
		return int64(min((l.PaddedW()-l.KW)/l.StrideW, (l.PaddedH()-l.KH)/l.StrideH))
	default:
		return int64(l.PaddedW()-l.KW+1)*int64(l.PaddedH()-l.KH+1) - 1
	}
}
