package core

import (
	"context"
	"errors"
	"fmt"
)

// Result is the outcome of a mapping search: the chosen mapping, the im2col
// reference the paper normalizes speedups to, and search statistics.
type Result struct {
	// Best is the minimum-cycle mapping found.
	Best Mapping

	// Im2col is the im2col baseline for the same layer and array; the
	// paper's speedups are Best vs Im2col.
	Im2col Mapping

	// Evaluated is the number of distinct cost classes actually costed by
	// the search that produced this result (excluding the im2col seed). The
	// default breakpoint-pruned searches cost one representative per
	// constant-cycle run of candidate widths, so Evaluated ≤ Swept; the
	// exhaustive sweeps cost every feasible candidate, so Evaluated == Swept.
	Evaluated int

	// Swept is the number of feasible candidate windows the exhaustive
	// sweep costs for this (layer, array, search) — the legacy meaning of
	// Evaluated. Pruned and exhaustive searches report the same Swept
	// (computed analytically by the former), which differential tests pin.
	Swept int
}

// SpeedupVsIm2col returns how many times faster Best is than im2col.
func (r Result) SpeedupVsIm2col() float64 { return r.Best.Speedup(r.Im2col) }

// checkpoint is the cooperative cancellation check the search loops run once
// per candidate row: it returns the context's error once the context is
// cancelled or past its deadline, and nil otherwise. Row granularity keeps
// the overhead to one atomic load per O(√Cols) costed classes while bounding
// the work after a cancel to a single row of candidates.
func checkpoint(ctx context.Context) error { return ctx.Err() }

// SearchVWSDK implements Algorithm 1 of the paper: it initializes the
// minimum computing cycles with the im2col mapping, then considers every
// parallel-window shape from the kernel size up to the padded IFM size —
// width in the inner loop, height in the outer loop, exactly as the paper's
// pseudocode increments PW_width first — costing candidates with eq. 8 and
// keeping the first strictly better one. Infeasible candidates (window
// larger than the rows can hold even one channel, or more windows than
// columns) are skipped.
//
// The default implementation routes by layer shape: dense, unit-stride
// layers run the closed-form argmin search (search_closed.go), which
// evaluates each constant-cycle cost class arithmetically and pays at most
// one cost-model call to materialize the winner; every other shape runs the
// breakpoint-pruned enumerator (search_pruned.go), which costs one
// representative per class. Both are bit-identical — including the
// first-strictly-better tie-break — to the brute-force sweep, which remains
// available as SearchVWSDKExhaustive for differential and fuzz testing.
//
// SearchVWSDK never cancels; SearchVWSDKContext is the same search under a
// caller context with cooperative cancellation checkpoints.
func SearchVWSDK(l Layer, a Array) (Result, error) {
	return SearchVWSDKContext(context.Background(), l, a)
}

// SearchVWSDKContext is Algorithm 1 under ctx: the search loop checks for
// cancellation once per candidate row and returns ctx.Err() as soon as it
// observes it, so an abandoned request stops burning CPU mid-search.
func SearchVWSDKContext(ctx context.Context, l Layer, a Array) (Result, error) {
	return searchVWSDKAuto(ctx, l.Normalized(), a, nil)
}

// SearchVWSDKExhaustive is the brute-force Algorithm 1 sweep: every
// candidate window of the padded IFM is handed to the cost model —
// O(PaddedW × PaddedH) candidates per layer. It returns exactly the same
// Best and Im2col as SearchVWSDK (differential and fuzz tests pin this) and
// exists as the reference the pruned search is validated against; use
// SearchVWSDK everywhere else.
func SearchVWSDKExhaustive(l Layer, a Array) (Result, error) {
	return searchVWSDKExhaustive(context.Background(), l.Normalized(), a)
}

// searchVWSDKExhaustive is the brute-force sweep under ctx; l must be
// normalized. Cancellation is checked once per candidate row.
func searchVWSDKExhaustive(ctx context.Context, l Layer, a Array) (Result, error) {
	base, err := Im2col(l, a)
	if err != nil {
		return Result{}, err
	}
	res := Result{Best: base, Im2col: base}
	for h := l.KH; h <= l.PaddedH(); h++ {
		if err := checkpoint(ctx); err != nil {
			return Result{}, err
		}
		for w := l.KW; w <= l.PaddedW(); w++ {
			if w == l.KW && h == l.KH {
				continue // the im2col seed covers the kernel-sized window
			}
			// l is normalized and validated (Im2col above) and the loop
			// bounds keep every candidate inside [kernel, padded IFM], so
			// the sweep-tuned costing applies.
			m, err := SweepVW(l, a, Window{W: w, H: h})
			if err != nil {
				if errors.Is(err, ErrInfeasible) {
					continue
				}
				return Result{}, err
			}
			res.Evaluated++
			if m.Cycles < res.Best.Cycles {
				res.Best = m
			}
		}
	}
	res.Swept = res.Evaluated
	return res, nil
}

// SearchSDK implements the existing SDK-based algorithm the paper compares
// against [Zhang TCAD'20] as the paper characterizes it: it considers only
// square parallel windows holding the entire input channels, duplicating
// kernels "in the unit of square number" (window K+d gives (d+1)² windows
// for stride 1).
//
// A candidate window is feasible only if the duplication does not increase
// the row or column cycle counts relative to im2col:
//
//	ceil(PW²·IC/Rows) ≤ ceil(K²·IC/Rows)  and  ceil(Nw·OC/Cols) ≤ ceil(OC/Cols)
//
// This is the rule (documented in DESIGN.md §2.3) under which the search
// reproduces every SDK entry of the paper's Table I — e.g. VGG-13 layers 2–3
// keep a 4×4 window at AR=2 while ResNet-18 layer 3 falls back to the kernel
// window, and 5×5 is rejected for VGG-13 layer 1 because 9·64 > 512 columns.
// When no larger window is feasible the result degenerates to im2col, which
// is how the paper explains SDK's flat speedup beyond VGG-13 layer 3.
func SearchSDK(l Layer, a Array) (Result, error) {
	return SearchSDKContext(context.Background(), l, a)
}

// SearchSDKContext is SearchSDK under a caller context, checking for
// cancellation once per candidate window.
func SearchSDKContext(ctx context.Context, l Layer, a Array) (Result, error) {
	l = l.Normalized()
	base, err := Im2col(l, a)
	if err != nil {
		return Result{}, err
	}
	res := Result{Best: base, Im2col: base}
	// Square windows require a square kernel extent to stay square in
	// window units; for rectangular kernels the baseline grows both sides
	// equally from the kernel, matching "shift and duplicate" in both axes.
	// (An earlier version also broke when max(pw.W, pw.H) exceeded
	// min(PaddedW, PaddedH); for square kernels with equal strides — where
	// pw stays square — and for square IFMs that check is implied by the
	// two bounds below, see TestSearchSDKBoundsGuard. On rectangular IFMs
	// with rectangular kernels it wrongly truncated the sweep before the
	// window reached the padded IFM, discarding valid candidates.)
	for d := 1; ; d++ {
		if err := checkpoint(ctx); err != nil {
			return Result{}, err
		}
		pw := Window{W: l.KW + d*l.StrideW, H: l.KH + d*l.StrideH}
		if pw.W > l.PaddedW() || pw.H > l.PaddedH() {
			break
		}
		m, err := SDK(l, a, pw)
		if err != nil {
			return Result{}, err
		}
		res.Evaluated++
		if m.AR > base.AR || m.AC > base.AC {
			continue // infeasible under the baseline's rule
		}
		if m.Cycles < res.Best.Cycles {
			res.Best = m
		}
	}
	res.Swept = res.Evaluated
	if res.Best.Scheme == SchemeIm2col {
		// Report the degenerate choice in SDK notation (kernel window).
		res.Best.Scheme = SchemeSDK
	}
	return res, nil
}

// SearchSMD implements the sub-matrix duplication baseline [Peng ISCAS'19]:
// it chooses the largest duplication factor whose block-diagonal kernel
// copies fit the array; with no room to duplicate it degenerates to im2col
// tiling (dup = 1).
func SearchSMD(l Layer, a Array) (Result, error) {
	return SearchSMDContext(context.Background(), l, a)
}

// SearchSMDContext is SearchSMD under a caller context. SMD costs a single
// candidate, so the context is checked once at entry.
func SearchSMDContext(ctx context.Context, l Layer, a Array) (Result, error) {
	if err := checkpoint(ctx); err != nil {
		return Result{}, err
	}
	l = l.Normalized()
	base, err := Im2col(l, a)
	if err != nil {
		return Result{}, err
	}
	res := Result{Best: base, Im2col: base}
	dup := 1
	// The duplicated block is one group's kernel matrix (KernelRows × OCg);
	// on a dense layer ICg == IC, OCg == OC and this is the classic rule.
	if kr := l.KernelRows(); kr <= a.Rows && l.OCg() <= a.Cols {
		dup = min(a.Rows/kr, a.Cols/l.OCg())
		dup = min(dup, l.Windows())
	}
	m, err := SMD(l, a, dup)
	if err != nil {
		return Result{}, err
	}
	// Exactly one SMD mapping is costed regardless of the duplication factor
	// chosen; Evaluated consistently counts candidates costed, as in the
	// other searches.
	res.Evaluated = 1
	res.Swept = 1
	if m.Cycles < res.Best.Cycles || dup > 1 {
		res.Best = m
	} else {
		res.Best.Scheme = SchemeSMD
		res.Best.Dup = 1
	}
	return res, nil
}

// Variant selects an ablation of the VW-SDK search that disables one of the
// paper's two ideas, attributing the overall gain between them (DESIGN.md §5).
type Variant int

const (
	// VariantFull is the unrestricted VW-SDK search (Algorithm 1).
	VariantFull Variant = iota
	// VariantSquareTiled allows channel tiling but only square-shaped
	// parallel windows: isolates the benefit of rectangular shapes.
	VariantSquareTiled
	// VariantRectFullChannel allows rectangular windows but maps entire
	// channels with the SDK baseline's row/column granularity and
	// feasibility rule: isolates the benefit of channel tiling.
	VariantRectFullChannel
)

// String names the ablation variant.
func (v Variant) String() string {
	switch v {
	case VariantFull:
		return "full"
	case VariantSquareTiled:
		return "square+tiled"
	case VariantRectFullChannel:
		return "rect+full-channels"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// SearchVariant runs the VW-SDK search restricted to the given ablation
// variant. VariantFull is identical to SearchVWSDK. Like SearchVWSDK, every
// variant runs its breakpoint-pruned enumerator; SearchVariantExhaustive is
// the brute-force reference.
func SearchVariant(l Layer, a Array, v Variant) (Result, error) {
	return SearchVariantContext(context.Background(), l, a, v)
}

// SearchVariantContext is SearchVariant under a caller context with the same
// per-row cancellation checkpoints as SearchVWSDKContext.
func SearchVariantContext(ctx context.Context, l Layer, a Array, v Variant) (Result, error) {
	l = l.Normalized()
	switch v {
	case VariantFull:
		return searchVWSDKAuto(ctx, l, a, nil)
	case VariantSquareTiled:
		return searchSquareTiledPruned(ctx, l, a)
	case VariantRectFullChannel:
		return searchRectFullChannelPruned(ctx, l, a)
	default:
		return Result{}, fmt.Errorf("core: unknown variant %d", int(v))
	}
}

// SearchVariantExhaustive is the brute-force counterpart of SearchVariant:
// candidate-by-candidate sweeps with no breakpoint pruning, returning the
// same Best and Im2col (differential and fuzz tests pin this). Evaluated
// keeps its legacy meaning here — every feasible candidate costed — and
// always equals Swept.
func SearchVariantExhaustive(l Layer, a Array, v Variant) (Result, error) {
	return searchVariantExhaustive(context.Background(), l.Normalized(), a, v)
}

// searchVariantExhaustive is the brute-force variant sweep under ctx; l must
// be normalized.
func searchVariantExhaustive(ctx context.Context, l Layer, a Array, v Variant) (Result, error) {
	switch v {
	case VariantFull:
		return searchVWSDKExhaustive(ctx, l, a)
	case VariantSquareTiled:
		base, err := Im2col(l, a)
		if err != nil {
			return Result{}, err
		}
		res := Result{Best: base, Im2col: base}
		for d := 1; ; d++ {
			if err := checkpoint(ctx); err != nil {
				return Result{}, err
			}
			pw := Window{W: l.KW + d*l.StrideW, H: l.KH + d*l.StrideH}
			if pw.W > l.PaddedW() || pw.H > l.PaddedH() {
				break
			}
			m, err := SweepVW(l, a, pw)
			if err != nil {
				if errors.Is(err, ErrInfeasible) {
					// Skip rather than early-exit: the brute force stays
					// deliberately free of monotonicity assumptions so it can
					// falsify the pruned search's (guarded by a regression
					// test that the pruned early exit misses nothing).
					continue
				}
				return Result{}, err
			}
			res.Evaluated++
			if m.Cycles < res.Best.Cycles {
				res.Best = m
			}
		}
		res.Swept = res.Evaluated
		return res, nil
	case VariantRectFullChannel:
		base, err := Im2col(l, a)
		if err != nil {
			return Result{}, err
		}
		res := Result{Best: base, Im2col: base}
		for h := l.KH; h <= l.PaddedH(); h++ {
			if err := checkpoint(ctx); err != nil {
				return Result{}, err
			}
			for w := l.KW; w <= l.PaddedW(); w++ {
				if w == l.KW && h == l.KH {
					continue
				}
				m, err := SDK(l, a, Window{W: w, H: h})
				if err != nil {
					return Result{}, err
				}
				res.Evaluated++
				if m.AR > base.AR || m.AC > base.AC {
					continue
				}
				if m.Cycles < res.Best.Cycles {
					res.Best = m
				}
			}
		}
		res.Swept = res.Evaluated
		return res, nil
	default:
		return Result{}, fmt.Errorf("core: unknown variant %d", int(v))
	}
}
