package core

import (
	"testing"
	"testing/quick"
)

// TestAlexNetConv1Strided pins the cost model on the classic strided layer:
// AlexNet conv1, 11x11 stride 4 over a 227x227 IFM (55x55 outputs).
func TestAlexNetConv1Strided(t *testing.T) {
	l := Layer{Name: "alex-conv1", IW: 227, IH: 227, KW: 11, KH: 11,
		IC: 3, OC: 96, StrideW: 4, StrideH: 4}
	if l.OutW() != 55 || l.Windows() != 3025 {
		t.Fatalf("geometry: out=%d windows=%d", l.OutW(), l.Windows())
	}
	im, err := Im2col(l, array512)
	if err != nil {
		t.Fatal(err)
	}
	// 363 kernel rows and 96 columns fit: one window per cycle.
	if im.AR != 1 || im.AC != 1 || im.Cycles != 3025 {
		t.Fatalf("im2col = %v, want 3025 cycles", im)
	}
	res, err := SearchVWSDK(l, array512)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Cycles > im.Cycles {
		t.Fatalf("search worse than im2col: %d > %d", res.Best.Cycles, im.Cycles)
	}
	// A 15-wide window holds two stride-4 kernel placements per axis.
	m, err := VW(l, array512, Window{W: 15, H: 15})
	if err != nil {
		t.Fatal(err)
	}
	if m.NwW != 2 || m.NwH != 2 {
		t.Fatalf("Nw = %dx%d, want 2x2", m.NwW, m.NwH)
	}
	// 15·15 = 225 rows/channel: ICt = floor(512/225) = 2, AR = 2.
	if m.ICt != 2 || m.AR != 2 {
		t.Fatalf("ICt,AR = %d,%d, want 2,2", m.ICt, m.AR)
	}
	if m.NPW != ceilDiv(55, 2)*ceilDiv(55, 2) {
		t.Fatalf("NPW = %d", m.NPW)
	}
}

// TestOneByOneKernel: 1x1 convolutions degenerate gracefully — every window
// is a single element and parallel windows are pure input blocks.
func TestOneByOneKernel(t *testing.T) {
	l := Layer{IW: 8, IH: 8, KW: 1, KH: 1, IC: 32, OC: 16}
	a := Array{Rows: 64, Cols: 64}
	im, err := Im2col(l, a)
	if err != nil {
		t.Fatal(err)
	}
	if im.Cycles != 64 { // 64 windows, 32 rows fit, 16 cols fit
		t.Fatalf("im2col cycles = %d, want 64", im.Cycles)
	}
	res, err := SearchVWSDK(l, a)
	if err != nil {
		t.Fatal(err)
	}
	// A wxh window of 1x1 kernels yields w·h windows; e.g. 2x1 halves the
	// positions with ICt = 32, Nw = 2, OCt = 32 -> 32 cycles, or better.
	if res.Best.Cycles >= im.Cycles {
		t.Fatalf("1x1 search found no improvement: %d", res.Best.Cycles)
	}
	again, err := VW(l, a, res.Best.PW)
	if err != nil {
		t.Fatal(err)
	}
	if again.Cycles != res.Best.Cycles {
		t.Fatal("best 1x1 mapping not reproducible")
	}
}

// TestWindowEqualsIFM: the parallel window may grow to the whole IFM, in
// which case there is exactly one position.
func TestWindowEqualsIFM(t *testing.T) {
	l := Layer{IW: 6, IH: 5, KW: 3, KH: 3, IC: 2, OC: 4}
	m, err := VW(l, Array{Rows: 128, Cols: 128}, Window{W: 6, H: 5})
	if err != nil {
		t.Fatal(err)
	}
	if m.NPW != 1 {
		t.Fatalf("NPW = %d, want 1", m.NPW)
	}
	if m.Nw() != 4*3 {
		t.Fatalf("Nw = %d, want 12", m.Nw())
	}
}

// TestColumnStarvedArray: arrays with very few columns force AC tiling and
// reject windows with more duplicates than columns.
func TestColumnStarvedArray(t *testing.T) {
	l := Layer{IW: 10, IH: 10, KW: 3, KH: 3, IC: 2, OC: 9}
	a := Array{Rows: 64, Cols: 3}
	im, err := Im2col(l, a)
	if err != nil {
		t.Fatal(err)
	}
	if im.AC != 3 || im.OCt != 3 {
		t.Fatalf("im2col AC,OCt = %d,%d, want 3,3", im.AC, im.OCt)
	}
	// Any window with Nw > 3 is infeasible; Nw <= 3 must still work.
	if _, err := VW(l, a, Window{W: 5, H: 5}); err == nil {
		t.Error("Nw=9 window accepted on 3-column array")
	}
	m, err := VW(l, a, Window{W: 5, H: 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.OCt != 1 || m.AC != 9 {
		t.Fatalf("OCt,AC = %d,%d, want 1,9", m.OCt, m.AC)
	}
	res, err := SearchVWSDK(l, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Cycles > im.Cycles {
		t.Fatal("search worse than im2col on starved array")
	}
}

// TestRowStarvedArray: arrays with fewer rows than one kernel-channel force
// row-granular AR for im2col while VW falls back to im2col.
func TestRowStarvedArray(t *testing.T) {
	l := Layer{IW: 8, IH: 8, KW: 3, KH: 3, IC: 4, OC: 4}
	a := Array{Rows: 8, Cols: 16} // 8 rows < 9 per channel-window
	im, err := Im2col(l, a)
	if err != nil {
		t.Fatal(err)
	}
	if im.AR != ceilDiv(36, 8) {
		t.Fatalf("AR = %d, want %d", im.AR, ceilDiv(36, 8))
	}
	res, err := SearchVWSDK(l, a)
	if err != nil {
		t.Fatal(err)
	}
	// No window fits even one channel (area >= 9 > 8 rows): im2col wins.
	if res.Best.Scheme != SchemeIm2col {
		t.Fatalf("scheme = %v, want im2col fallback", res.Best.Scheme)
	}
}

// TestStridedSearchProperty: Algorithm 1 remains an upper-bounded
// improvement under arbitrary strides.
func TestStridedSearchProperty(t *testing.T) {
	f := func(iw, k, ic, oc, s uint8) bool {
		l := Layer{
			IW: int(iw%24) + 12, IH: int(iw%24) + 12,
			KW: int(k%3) + 2, KH: int(k%3) + 2,
			IC: int(ic%16) + 1, OC: int(oc%16) + 1,
			StrideW: int(s%3) + 1, StrideH: int(s%3) + 1,
		}
		a := Array{Rows: 128, Cols: 128}
		res, err := SearchVWSDK(l, a)
		if err != nil {
			return false
		}
		if res.Best.Cycles > res.Im2col.Cycles {
			return false
		}
		if res.Best.Scheme == SchemeVWSDK {
			m, err := VW(l, a, res.Best.PW)
			if err != nil || m.Cycles != res.Best.Cycles {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPaddedLayerCostUsesPaddedIFM: padding enlarges the window search
// space and the output grid consistently.
func TestPaddedLayerCostUsesPaddedIFM(t *testing.T) {
	l := Layer{IW: 14, IH: 14, KW: 3, KH: 3, IC: 8, OC: 8, PadW: 1, PadH: 1}
	if l.OutW() != 14 {
		t.Fatalf("same-conv OutW = %d, want 14", l.OutW())
	}
	a := Array{Rows: 128, Cols: 64}
	m, err := VW(l, a, Window{W: 16, H: 3}) // window as wide as the padded IFM
	if err != nil {
		t.Fatal(err)
	}
	if m.NwW != 14 || m.NPW != ceilDiv(14, 14)*ceilDiv(14, 1) {
		t.Fatalf("NwW=%d NPW=%d", m.NwW, m.NPW)
	}
	if _, err := VW(l, a, Window{W: 17, H: 3}); err == nil {
		t.Error("window beyond padded IFM accepted")
	}
}
