package core

import (
	"context"
	"fmt"
	"sync"
)

// NetworkResult is the outcome of optimizing every layer of a network.
type NetworkResult struct {
	// Results holds one search result per layer, in input order.
	Results []Result

	// TotalCycles is the sum of the chosen mappings' cycles.
	TotalCycles int64

	// TotalIm2col is the sum of the im2col baselines' cycles.
	TotalIm2col int64
}

// Speedup returns the whole-network speedup over im2col.
func (n NetworkResult) Speedup() float64 {
	if n.TotalCycles == 0 {
		return 0
	}
	return float64(n.TotalIm2col) / float64(n.TotalCycles)
}

// LayerSearch is one per-layer mapping search under a caller context — the
// pluggable unit SearchNetworkWith aggregates. Both the serial algorithms
// (SearchVWSDKContext and friends) and the engine's memoized methods have
// this shape.
type LayerSearch func(ctx context.Context, l Layer, a Array) (Result, error)

// SearchNetwork runs SearchVWSDK on every layer concurrently (layer
// searches are independent) and aggregates the totals. Results are returned
// in layer order regardless of completion order; the first error wins.
// SearchNetworkContext is the same aggregation under a caller context.
func SearchNetwork(layers []Layer, a Array) (NetworkResult, error) {
	return SearchNetworkContext(context.Background(), layers, a)
}

// SearchNetworkContext optimizes every layer under ctx: each per-layer
// search runs its own cancellation checkpoints, so cancelling ctx stops the
// whole network search within one candidate row per in-flight layer.
func SearchNetworkContext(ctx context.Context, layers []Layer, a Array) (NetworkResult, error) {
	return SearchNetworkWith(ctx, layers, a, SearchVWSDKContext)
}

// SearchNetworkWith is SearchNetworkContext with a caller-chosen per-layer
// search running one goroutine per layer; internal/engine aggregates its
// pooled searches through the same loop so the two paths cannot diverge.
func SearchNetworkWith(ctx context.Context, layers []Layer, a Array, search LayerSearch) (NetworkResult, error) {
	return searchNetwork(ctx, layers, a, search, true)
}

// SearchNetworkSeq is SearchNetworkWith without the per-layer goroutines,
// for callers that already serialize work (e.g. a single-worker engine,
// where goroutine-per-layer only adds scheduler churn). A cancelled ctx
// additionally short-circuits between layers, so later layers are never
// started at all.
func SearchNetworkSeq(ctx context.Context, layers []Layer, a Array, search LayerSearch) (NetworkResult, error) {
	return searchNetwork(ctx, layers, a, search, false)
}

func searchNetwork(ctx context.Context, layers []Layer, a Array, search LayerSearch, parallel bool) (NetworkResult, error) {
	if len(layers) == 0 {
		return NetworkResult{}, fmt.Errorf("core: SearchNetwork with no layers")
	}
	results := make([]Result, len(layers))
	errs := make([]error, len(layers))
	if parallel {
		var wg sync.WaitGroup
		for i, l := range layers {
			wg.Add(1)
			go func(i int, l Layer) {
				defer wg.Done()
				results[i], errs[i] = search(ctx, l, a)
			}(i, l)
		}
		wg.Wait()
	} else {
		for i, l := range layers {
			if err := ctx.Err(); err != nil {
				errs[i] = err
				continue
			}
			results[i], errs[i] = search(ctx, l, a)
		}
	}
	var out NetworkResult
	for i := range layers {
		if errs[i] != nil {
			return NetworkResult{}, fmt.Errorf("core: layer %q: %w", layers[i].Name, errs[i])
		}
		out.Results = append(out.Results, results[i])
		out.TotalCycles += results[i].Best.Cycles
		out.TotalIm2col += results[i].Im2col.Cycles
	}
	return out, nil
}
