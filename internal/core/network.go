package core

import (
	"fmt"
	"sync"
)

// NetworkResult is the outcome of optimizing every layer of a network.
type NetworkResult struct {
	// Results holds one search result per layer, in input order.
	Results []Result

	// TotalCycles is the sum of the chosen mappings' cycles.
	TotalCycles int64

	// TotalIm2col is the sum of the im2col baselines' cycles.
	TotalIm2col int64
}

// Speedup returns the whole-network speedup over im2col.
func (n NetworkResult) Speedup() float64 {
	if n.TotalCycles == 0 {
		return 0
	}
	return float64(n.TotalIm2col) / float64(n.TotalCycles)
}

// SearchNetwork runs SearchVWSDK on every layer concurrently (layer
// searches are independent) and aggregates the totals. Results are returned
// in layer order regardless of completion order; the first error wins.
func SearchNetwork(layers []Layer, a Array) (NetworkResult, error) {
	if len(layers) == 0 {
		return NetworkResult{}, fmt.Errorf("core: SearchNetwork with no layers")
	}
	results := make([]Result, len(layers))
	errs := make([]error, len(layers))
	var wg sync.WaitGroup
	for i, l := range layers {
		wg.Add(1)
		go func(i int, l Layer) {
			defer wg.Done()
			results[i], errs[i] = SearchVWSDK(l, a)
		}(i, l)
	}
	wg.Wait()
	var out NetworkResult
	for i := range layers {
		if errs[i] != nil {
			return NetworkResult{}, fmt.Errorf("core: layer %q: %w", layers[i].Name, errs[i])
		}
		out.Results = append(out.Results, results[i])
		out.TotalCycles += results[i].Best.Cycles
		out.TotalIm2col += results[i].Im2col.Cycles
	}
	return out, nil
}
