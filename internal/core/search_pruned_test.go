package core

import (
	"context"
	"reflect"
	"testing"
)

// prunedTestArrays are the acceptance arrays the pruned search is pinned
// against the brute force on.
var prunedTestArrays = []Array{
	{Rows: 256, Cols: 256},
	{Rows: 512, Cols: 512},
	{Rows: 1024, Cols: 1024},
}

// zooShapes returns every distinct layer shape of the paper's Table I zoo
// (VGG-13 and ResNet-18) plus stride/padding/rectangular exercisers.
func zooShapes() []Layer {
	shapes := append(vgg13Shapes(), resnet18Shapes()...)
	shapes = append(shapes,
		Layer{Name: "alex1", IW: 227, IH: 227, KW: 11, KH: 11, IC: 3, OC: 96, StrideW: 4, StrideH: 4},
		Layer{Name: "alex2", IW: 27, IH: 27, KW: 5, KH: 5, IC: 96, OC: 256, PadW: 2, PadH: 2},
		Layer{Name: "rect-ifm", IW: 40, IH: 12, KW: 3, KH: 3, IC: 16, OC: 32},
		Layer{Name: "rect-kernel", IW: 32, IH: 32, KW: 5, KH: 3, IC: 8, OC: 24},
		Layer{Name: "strided-pad", IW: 30, IH: 30, KW: 3, KH: 3, IC: 12, OC: 20, StrideW: 2, StrideH: 2, PadW: 1, PadH: 1},
		Layer{Name: "uneven-stride", IW: 25, IH: 25, KW: 3, KH: 3, IC: 6, OC: 10, StrideW: 2, StrideH: 3},
		// Grouped and depthwise shapes: MobileNet-V2 depthwise layers (the
		// G == IC, ICg == 1 edge case, with and without stride), a
		// ResNeXt-style cardinality-32 block, and grouped exercisers
		// combining groups with rectangles, strides and 1×1 kernels.
		Layer{Name: "mbv2-dw32", IW: 112, IH: 112, KW: 3, KH: 3, IC: 32, OC: 32, PadW: 1, PadH: 1, Groups: 32},
		Layer{Name: "mbv2-dw96-s2", IW: 112, IH: 112, KW: 3, KH: 3, IC: 96, OC: 96, StrideW: 2, StrideH: 2, PadW: 1, PadH: 1, Groups: 96},
		Layer{Name: "mbv2-dw384", IW: 14, IH: 14, KW: 3, KH: 3, IC: 384, OC: 384, PadW: 1, PadH: 1, Groups: 384},
		Layer{Name: "resnext-g32", IW: 56, IH: 56, KW: 3, KH: 3, IC: 128, OC: 128, PadW: 1, PadH: 1, Groups: 32},
		Layer{Name: "grouped-rect", IW: 40, IH: 12, KW: 3, KH: 3, IC: 16, OC: 32, Groups: 4},
		Layer{Name: "grouped-strided", IW: 30, IH: 30, KW: 3, KH: 3, IC: 12, OC: 24, StrideW: 2, StrideH: 2, PadW: 1, PadH: 1, Groups: 3},
		Layer{Name: "dw-odd", IW: 9, IH: 9, KW: 3, KH: 3, IC: 7, OC: 7, Groups: 7},
		Layer{Name: "grouped-pw", IW: 14, IH: 14, KW: 1, KH: 1, IC: 64, OC: 96, Groups: 2},
	)
	return shapes
}

// TestPrunedMatchesExhaustiveZoo is the differential test the breakpoint
// pruning rests on: on the full Table-I zoo (plus stride/padding/rectangular
// exercisers), for every acceptance array and every variant, the pruned
// search must return exactly the exhaustive sweep's Best and Im2col —
// including the width-inner/height-outer first-strictly-better tie-break —
// and its analytic Swept must equal the candidates the brute force costed.
func TestPrunedMatchesExhaustiveZoo(t *testing.T) {
	variants := []Variant{VariantFull, VariantSquareTiled, VariantRectFullChannel}
	for _, a := range prunedTestArrays {
		for _, l := range zooShapes() {
			for _, v := range variants {
				pruned, err := SearchVariant(l, a, v)
				if err != nil {
					t.Fatalf("%s/%s/%v pruned: %v", l.Name, a, v, err)
				}
				exh, err := SearchVariantExhaustive(l, a, v)
				if err != nil {
					t.Fatalf("%s/%s/%v exhaustive: %v", l.Name, a, v, err)
				}
				if !reflect.DeepEqual(pruned.Best, exh.Best) {
					t.Errorf("%s/%s/%v: Best differs\npruned     %+v\nexhaustive %+v",
						l.Name, a, v, pruned.Best, exh.Best)
				}
				if !reflect.DeepEqual(pruned.Im2col, exh.Im2col) {
					t.Errorf("%s/%s/%v: Im2col differs", l.Name, a, v)
				}
				if pruned.Swept != exh.Evaluated || exh.Swept != exh.Evaluated {
					t.Errorf("%s/%s/%v: pruned Swept = %d, exhaustive costed %d (Swept %d)",
						l.Name, a, v, pruned.Swept, exh.Evaluated, exh.Swept)
				}
				if pruned.Evaluated > exh.Evaluated {
					t.Errorf("%s/%s/%v: pruned costed %d classes > %d exhaustive candidates",
						l.Name, a, v, pruned.Evaluated, exh.Evaluated)
				}
			}
		}
	}
}

// TestPrunedSearchReduction pins the headline perf claim: on VGG-13's first
// layer the pruned search costs at least 10x fewer candidates than the
// exhaustive sweep enumerates, and stays well under the feasible count too.
func TestPrunedSearchReduction(t *testing.T) {
	conv1 := Layer{Name: "conv1", IW: 224, IH: 224, KW: 3, KH: 3, IC: 3, OC: 64}
	res, err := SearchVWSDK(conv1, array512)
	if err != nil {
		t.Fatal(err)
	}
	enumerated := ExhaustiveCandidates(conv1, VariantFull)
	if enumerated != int64(222*222-1) {
		t.Fatalf("ExhaustiveCandidates = %d, want %d", enumerated, 222*222-1)
	}
	if int64(res.Evaluated)*10 > enumerated {
		t.Errorf("Evaluated = %d cost classes, want >= 10x below the %d enumerated candidates",
			res.Evaluated, enumerated)
	}
	if res.Evaluated >= res.Swept {
		t.Errorf("Evaluated = %d not below the %d feasible candidates", res.Evaluated, res.Swept)
	}
	t.Logf("conv1 on %s: %d cost classes costed, %d feasible, %d enumerated (%.1fx reduction)",
		array512, res.Evaluated, res.Swept, enumerated,
		float64(enumerated)/float64(res.Evaluated))
}

// TestExhaustiveCandidatesSquareTiled pins the square-tiled candidate count:
// the number of in-bounds windows beyond the kernel along the shorter axis.
func TestExhaustiveCandidatesSquareTiled(t *testing.T) {
	l := Layer{IW: 23, IH: 23, KW: 3, KH: 3, IC: 8, OC: 8, StrideW: 2, StrideH: 2}
	want := int64(0)
	for d := 1; ; d++ {
		if 3+2*d > 23 {
			break
		}
		want++
	}
	if got := ExhaustiveCandidates(l, VariantSquareTiled); got != want {
		t.Errorf("ExhaustiveCandidates(square+tiled) = %d, want %d", got, want)
	}
}

// TestExhaustiveSearcher pins that the Exhaustive reference Searcher agrees
// with Serial (the pruned default) on a whole-network search.
func TestExhaustiveSearcher(t *testing.T) {
	ctx := context.Background()
	layers := resnet18Shapes()
	want, err := Serial{}.SearchNetwork(ctx, layers, array512)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Exhaustive{}.SearchNetwork(ctx, layers, array512)
	if err != nil {
		t.Fatal(err)
	}
	if want.TotalCycles != got.TotalCycles || want.TotalIm2col != got.TotalIm2col {
		t.Errorf("totals differ: serial %d/%d, exhaustive %d/%d",
			want.TotalCycles, want.TotalIm2col, got.TotalCycles, got.TotalIm2col)
	}
	for i := range want.Results {
		if !reflect.DeepEqual(want.Results[i].Best, got.Results[i].Best) {
			t.Errorf("layer %d: Best differs", i)
		}
	}
	for _, pair := range [][2]func(context.Context, Layer, Array) (Result, error){
		{Serial{}.SearchSDK, Exhaustive{}.SearchSDK},
		{Serial{}.SearchSMD, Exhaustive{}.SearchSMD},
	} {
		w, err1 := pair[0](ctx, layers[0], array512)
		g, err2 := pair[1](ctx, layers[0], array512)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if !reflect.DeepEqual(w, g) {
			t.Error("baseline searches diverge between Serial and Exhaustive")
		}
	}
}

// TestSearchSDKBoundsGuard proves dropping the old max(pw.W,pw.H) > maxSide
// guard changes nothing wherever it was redundant: for square IFMs (any
// kernel) and for square kernels with equal strides (where the candidate
// window stays square), the guard was implied by the two per-axis bounds
// checks. The test reimplements the old guarded loop inline and compares
// full results across rectangular-kernel and rectangular-IFM layers.
//
// (On rectangular IFMs with rectangular kernels the old guard was not
// redundant — it truncated the sweep before the window reached the padded
// IFM; the last case documents that removing it can only widen the candidate
// set, never change feasible winners on the paper's square-IFM zoo.)
func TestSearchSDKBoundsGuard(t *testing.T) {
	oldGuarded := func(l Layer, a Array) (Result, error) {
		l = l.Normalized()
		base, err := Im2col(l, a)
		if err != nil {
			return Result{}, err
		}
		res := Result{Best: base, Im2col: base}
		maxSide := min(l.PaddedW(), l.PaddedH())
		for d := 1; ; d++ {
			pw := Window{W: l.KW + d*l.StrideW, H: l.KH + d*l.StrideH}
			if pw.W > l.PaddedW() || pw.H > l.PaddedH() || max(pw.W, pw.H) > maxSide {
				break
			}
			m, err := SDK(l, a, pw)
			if err != nil {
				return Result{}, err
			}
			res.Evaluated++
			if m.AR > base.AR || m.AC > base.AC {
				continue
			}
			if m.Cycles < res.Best.Cycles {
				res.Best = m
			}
		}
		res.Swept = res.Evaluated
		if res.Best.Scheme == SchemeIm2col {
			res.Best.Scheme = SchemeSDK
		}
		return res, nil
	}

	cases := []Layer{
		// Rectangular kernels on square IFMs: guard provably redundant.
		{Name: "rk-53", IW: 32, IH: 32, KW: 5, KH: 3, IC: 8, OC: 24},
		{Name: "rk-35", IW: 32, IH: 32, KW: 3, KH: 5, IC: 8, OC: 24},
		{Name: "rk-17", IW: 24, IH: 24, KW: 1, KH: 7, IC: 4, OC: 16},
		{Name: "rk-pad", IW: 20, IH: 20, KW: 7, KH: 3, IC: 6, OC: 12, PadW: 2, PadH: 2},
		// Square kernels on rectangular IFMs with equal strides: the window
		// stays square, guard again redundant.
		{Name: "ri-wide", IW: 48, IH: 12, KW: 3, KH: 3, IC: 16, OC: 32},
		{Name: "ri-tall", IW: 12, IH: 48, KW: 3, KH: 3, IC: 16, OC: 32},
		{Name: "ri-stride", IW: 40, IH: 16, KW: 5, KH: 5, IC: 4, OC: 8, StrideW: 2, StrideH: 2},
	}
	for _, l := range cases {
		for _, a := range []Array{{64, 64}, {256, 256}, {512, 512}} {
			want, err := oldGuarded(l, a)
			if err != nil {
				t.Fatalf("%s/%s: %v", l.Name, a, err)
			}
			got, err := SearchSDK(l, a)
			if err != nil {
				t.Fatalf("%s/%s: %v", l.Name, a, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("%s/%s: behavior changed\nold guarded %+v\nnew         %+v",
					l.Name, a, want, got)
			}
		}
	}

	// Rectangular kernel on a rectangular IFM: the old guard truncated the
	// sweep (a tall window is "wider" than the short IFM axis); without it
	// the search may only consider more candidates and find a mapping at
	// least as good.
	l := Layer{Name: "rk-ri", IW: 10, IH: 40, KW: 3, KH: 5, IC: 2, OC: 4}
	a := Array{Rows: 512, Cols: 512}
	want, err := oldGuarded(l, a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SearchSDK(l, a)
	if err != nil {
		t.Fatal(err)
	}
	if got.Evaluated < want.Evaluated {
		t.Errorf("unguarded sweep costed %d < guarded %d candidates", got.Evaluated, want.Evaluated)
	}
	if got.Best.Cycles > want.Best.Cycles {
		t.Errorf("unguarded sweep worse: %d > %d cycles", got.Best.Cycles, want.Best.Cycles)
	}
}
