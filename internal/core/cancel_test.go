package core

import (
	"context"
	"errors"
	"testing"
)

// TestSearchContextCancelled pins the cooperative cancellation contract: a
// search entered with an already-cancelled context returns ctx.Err() (not a
// result, not a different error) for every search family and both the pruned
// and exhaustive implementations.
func TestSearchContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	l := Layer{Name: "c", IW: 14, IH: 14, KW: 3, KH: 3, IC: 64, OC: 64}
	a := Array{Rows: 256, Cols: 256}
	searches := map[string]func() (Result, error){
		"vwsdk":     func() (Result, error) { return SearchVWSDKContext(ctx, l, a) },
		"sdk":       func() (Result, error) { return SearchSDKContext(ctx, l, a) },
		"smd":       func() (Result, error) { return SearchSMDContext(ctx, l, a) },
		"full":      func() (Result, error) { return SearchVariantContext(ctx, l, a, VariantFull) },
		"square":    func() (Result, error) { return SearchVariantContext(ctx, l, a, VariantSquareTiled) },
		"rect":      func() (Result, error) { return SearchVariantContext(ctx, l, a, VariantRectFullChannel) },
		"exh-vwsdk": func() (Result, error) { return Exhaustive{}.SearchVWSDK(ctx, l, a) },
		"exh-rect":  func() (Result, error) { return Exhaustive{}.SearchVariant(ctx, l, a, VariantRectFullChannel) },
	}
	for name, search := range searches {
		res, err := search()
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
		if res != (Result{}) {
			t.Errorf("%s: cancelled search returned a result: %+v", name, res)
		}
	}
}

// TestSearchNetworkCancelled pins that a cancelled context surfaces from the
// network aggregation as a layer-wrapped context error, for both the
// parallel and sequential paths, and that the sequential path never starts
// layers after observing the cancel.
func TestSearchNetworkCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	layers := resnet18Shapes()
	a := Array{Rows: 512, Cols: 512}

	if _, err := SearchNetworkContext(ctx, layers, a); !errors.Is(err, context.Canceled) {
		t.Errorf("parallel: err = %v, want context.Canceled", err)
	}

	started := 0
	_, err := SearchNetworkSeq(ctx, layers, a, func(ctx context.Context, l Layer, a Array) (Result, error) {
		started++
		return SearchVWSDKContext(ctx, l, a)
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("seq: err = %v, want context.Canceled", err)
	}
	if started != 0 {
		t.Errorf("seq started %d layer searches after cancel, want 0", started)
	}
}

// TestSearchContextBackgroundMatchesPlain pins that threading a live context
// changes nothing: the context form returns bit-identical results to the
// context-free wrapper on a zoo sample.
func TestSearchContextBackgroundMatchesPlain(t *testing.T) {
	ctx := context.Background()
	a := Array{Rows: 512, Cols: 512}
	for _, l := range resnet18Shapes() {
		plain, err1 := SearchVWSDK(l, a)
		withCtx, err2 := SearchVWSDKContext(ctx, l, a)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v / %v", l.Name, err1, err2)
		}
		if plain != withCtx {
			t.Errorf("%s: context form differs from plain form", l.Name)
		}
	}
}
