package core

import (
	"fmt"
	"strings"
)

// Explain renders a step-by-step derivation of the mapping's cycle count in
// terms of the paper's equations — the trace a user needs to audit why the
// optimizer chose (or rejected) a window. The output is stable text suitable
// for CLI display and golden tests.
func (m Mapping) Explain() string {
	l := m.Layer.Normalized()
	var b strings.Builder
	fmt.Fprintf(&b, "%s mapping of %s onto a %s array\n", m.Scheme, l, m.Array)
	if g := l.NumGroups(); g > 1 {
		fmt.Fprintf(&b, "  grouped conv: %d groups of ICg=%d -> OCg=%d channels, mapped per group\n",
			g, l.ICg(), l.OCg())
	}
	switch m.Scheme {
	case SchemeIm2col:
		fmt.Fprintf(&b, "  window = kernel %s: one output position per cycle\n", m.PW)
		fmt.Fprintf(&b, "  windows          = OutW x OutH = %d x %d = %d\n",
			l.OutW(), l.OutH(), l.Windows())
		fmt.Fprintf(&b, "  AR (eq.1, rows)  = ceil(K*K*IC / Rows) = ceil(%d/%d) = %d\n",
			l.KernelRows(), m.Array.Rows, m.AR)
		fmt.Fprintf(&b, "  AC (eq.1, cols)  = ceil(OC / Cols) = ceil(%d/%d) = %d\n",
			l.OCg(), m.Array.Cols, m.AC)
	case SchemeSMD:
		fmt.Fprintf(&b, "  %d block-diagonal kernel copies (%d rows x %d cols)\n",
			m.Dup, m.Dup*l.KernelRows(), m.Dup*l.OCg())
		fmt.Fprintf(&b, "  window groups    = ceil(windows / dup) = ceil(%d/%d) = %d\n",
			l.Windows(), m.Dup, m.NPW)
		fmt.Fprintf(&b, "  AR x AC          = %d x %d\n", m.AR, m.AC)
	case SchemeSDK:
		fmt.Fprintf(&b, "  square parallel window %s holding entire channels\n", m.PW)
		fmt.Fprintf(&b, "  Nw               = %dx%d = %d windows share the input patch\n",
			m.NwW, m.NwH, m.Nw())
		fmt.Fprintf(&b, "  N_PW (eq.3)      = ceil(%d/%d) x ceil(%d/%d) = %d\n",
			l.OutW(), m.NwW, l.OutH(), m.NwH, m.NPW)
		fmt.Fprintf(&b, "  AR (eq.1, rows)  = ceil(PW area * IC / Rows) = ceil(%d/%d) = %d\n",
			m.PW.Area()*l.ICg(), m.Array.Rows, m.AR)
		fmt.Fprintf(&b, "  AC (eq.1, cols)  = ceil(Nw * OC / Cols) = ceil(%d/%d) = %d\n",
			m.Nw()*l.OCg(), m.Array.Cols, m.AC)
	case SchemeVWSDK:
		fmt.Fprintf(&b, "  variable parallel window %s with channel tiling\n", m.PW)
		fmt.Fprintf(&b, "  Nw               = %dx%d = %d windows share the input patch\n",
			m.NwW, m.NwH, m.Nw())
		fmt.Fprintf(&b, "  ICt (eq.4)       = floor(Rows / PW area) = floor(%d/%d) = %d (capped at IC=%d)\n",
			m.Array.Rows, m.PW.Area(), m.ICt, l.ICg())
		fmt.Fprintf(&b, "  AR  (eq.5)       = ceil(IC / ICt) = ceil(%d/%d) = %d\n",
			l.ICg(), m.ICt, m.AR)
		fmt.Fprintf(&b, "  OCt (eq.6)       = floor(Cols / Nw) = floor(%d/%d) = %d (capped at OC=%d)\n",
			m.Array.Cols, m.Nw(), m.OCt, l.OCg())
		fmt.Fprintf(&b, "  AC  (eq.7)       = ceil(OC / OCt) = ceil(%d/%d) = %d\n",
			l.OCg(), m.OCt, m.AC)
		fmt.Fprintf(&b, "  N_PW (eq.3)      = ceil(%d/%d) x ceil(%d/%d) = %d\n",
			l.OutW(), m.NwW, l.OutH(), m.NwH, m.NPW)
	}
	if g := l.NumGroups(); g > 1 {
		fmt.Fprintf(&b, "  cycles (eq.8)    = N_PW x AR x AC x G = %d x %d x %d x %d = %d\n",
			m.NPW, m.AR, m.AC, g, m.Cycles)
	} else {
		fmt.Fprintf(&b, "  cycles (eq.8)    = N_PW x AR x AC = %d x %d x %d = %d\n",
			m.NPW, m.AR, m.AC, m.Cycles)
	}
	fmt.Fprintf(&b, "  utilization      = %.1f%% avg, %.1f%% peak (eq.9)\n",
		m.Utilization(), m.PeakUtilization())
	return b.String()
}

// ExplainSearch renders the search outcome: the im2col baseline, the chosen
// mapping's derivation, and the speedup.
func ExplainSearch(r Result) string {
	var b strings.Builder
	b.WriteString("baseline:\n")
	b.WriteString(indent(r.Im2col.Explain()))
	b.WriteString("chosen:\n")
	b.WriteString(indent(r.Best.Explain()))
	fmt.Fprintf(&b, "speedup vs im2col: %.2fx (%d cost classes costed, %d feasible windows swept exhaustively)\n",
		r.SpeedupVsIm2col(), r.Evaluated, r.Swept)
	return b.String()
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = "  " + l
	}
	return strings.Join(lines, "\n") + "\n"
}
