package core

// TileShape describes what one computing cycle occupies on the array: the
// bounding-box footprint (rows driven by DACs, columns read by ADCs) and the
// number of cells actually holding weight values. For shifted/duplicated
// kernel layouts the footprint is larger than the weight-cell count because a
// column only stores kernel weights at the K×K positions its window covers.
type TileShape struct {
	// Rows and Cols are the occupied bounding box of the cycle.
	Rows, Cols int

	// UsedCells is the number of cells storing weights, the paper's U_n in
	// eq. 9.
	UsedCells int64
}

// icTile returns the number of input channels mapped in array-row tile i
// (0 ≤ i < AR) for channel-granular schemes. Tiling is per convolution
// group (ICg channels); divisibility makes every group's grid identical.
func (m Mapping) icTile(i int) int {
	if i < m.AR-1 {
		return m.ICt
	}
	return m.Layer.ICg() - (m.AR-1)*m.ICt
}

// ocTile returns the number of output channels computed in array-column tile
// j (0 ≤ j < AC) for channel-granular column layouts (per group, like icTile).
func (m Mapping) ocTile(j int) int {
	if j < m.AC-1 {
		return m.OCt
	}
	return m.Layer.OCg() - (m.AC-1)*m.OCt
}

// rowTile returns the number of raw array rows occupied by row tile i when
// rows are split row-granularly (im2col, SDK): full tiles take the whole
// array and the last takes the remainder.
func (m Mapping) rowTile(totalRows, i int) int {
	if i < m.AR-1 {
		return m.Array.Rows
	}
	return totalRows - (m.AR-1)*m.Array.Rows
}

// colTile returns the number of raw array columns occupied by column tile j
// when columns are split column-granularly (SDK).
func (m Mapping) colTile(totalCols, j int) int {
	if j < m.AC-1 {
		return m.Array.Cols
	}
	return totalCols - (m.AC-1)*m.Array.Cols
}

// Tile returns the shape of the cycle at array-row tile i and array-column
// tile j (0 ≤ i < AR, 0 ≤ j < AC). Every parallel-window position reuses the
// same weights, so the shape depends only on (i, j); for SMD the last window
// group may drive fewer columns, which Utilization accounts for separately.
func (m Mapping) Tile(i, j int) TileShape {
	l := m.Layer
	switch m.Scheme {
	case SchemeIm2col:
		rows := m.rowTile(l.KernelRows(), i)
		cols := m.ocTile(j)
		return TileShape{Rows: rows, Cols: cols, UsedCells: int64(rows) * int64(cols)}
	case SchemeSMD:
		if m.Dup <= 1 {
			rows := m.rowTile(l.KernelRows(), i)
			cols := m.ocTile(j)
			return TileShape{Rows: rows, Cols: cols, UsedCells: int64(rows) * int64(cols)}
		}
		rows := m.Dup * l.KernelRows()
		cols := m.Dup * l.OCg()
		used := int64(m.Dup) * int64(l.KernelRows()) * int64(l.OCg())
		return TileShape{Rows: rows, Cols: cols, UsedCells: used}
	case SchemeSDK:
		return m.sdkTile(i, j)
	default: // SchemeVWSDK
		ic := m.icTile(i)
		oc := m.ocTile(j)
		rows := m.PW.Area() * ic
		cols := m.Nw() * oc
		used := int64(l.KW*l.KH*ic) * int64(cols)
		return TileShape{Rows: rows, Cols: cols, UsedCells: used}
	}
}

// sdkTile computes the exact shape of an SDK cycle, where rows split
// row-granularly across the PW·PW·IC unrolled window and columns split
// column-granularly across the Nw·OC duplicated kernels. Weight cells are
// counted by enumerating, per window copy, the kernel positions that fall in
// the tile's row range.
func (m Mapping) sdkTile(i, j int) TileShape {
	l := m.Layer
	area := m.PW.Area()
	totalRows := area * l.ICg()
	totalCols := m.Nw() * l.OCg()

	rowLo := i * m.Array.Rows
	rowHi := min(rowLo+m.Array.Rows, totalRows)
	colLo := j * m.Array.Cols
	colHi := min(colLo+m.Array.Cols, totalCols)

	var used int64
	for wy := 0; wy < m.NwH; wy++ {
		for wx := 0; wx < m.NwW; wx++ {
			w := wy*m.NwW + wx
			// Columns of this window copy overlapping the column tile.
			cLo := max(colLo, w*l.OCg())
			cHi := min(colHi, (w+1)*l.OCg())
			if cLo >= cHi {
				continue
			}
			nnz := m.sdkWindowRowsIn(wx, wy, rowLo, rowHi)
			used += int64(cHi-cLo) * int64(nnz)
		}
	}
	return TileShape{Rows: rowHi - rowLo, Cols: colHi - colLo, UsedCells: used}
}

// sdkWindowRowsIn counts the weight-holding rows of one shifted kernel copy
// (window offset wx,wy inside the parallel window) that fall in the
// row-granular range [lo, hi). Rows are laid out channel-major: channel c
// occupies rows [c·area, (c+1)·area) in parallel-window raster order.
func (m Mapping) sdkWindowRowsIn(wx, wy, lo, hi int) int {
	l := m.Layer
	area := m.PW.Area()
	dx := wx * l.StrideW
	dy := wy * l.StrideH
	count := 0
	for c := 0; c < l.ICg(); c++ {
		base := c * area
		if base >= hi {
			break
		}
		if base+area <= lo {
			continue
		}
		for ky := 0; ky < l.KH; ky++ {
			rowBase := base + (dy+ky)*m.PW.W + dx
			for kx := 0; kx < l.KW; kx++ {
				r := rowBase + kx
				if r >= lo && r < hi {
					count++
				}
			}
		}
	}
	return count
}

// Utilization returns the paper's eq. 9: the average over all computing
// cycles of used weight cells over total array cells, in percent. Cycles at
// different parallel-window positions reuse the same tiles, so the average
// runs over the AR×AC tile grid (and over window groups for SMD, whose last
// group may be partial). For grouped layers the grid is one group's — the
// divisibility constraint (IC%G == OC%G == 0) makes every group's AR×AC
// grid identical, so the per-group average equals the all-group average.
func (m Mapping) Utilization() float64 {
	if m.Scheme == SchemeSMD && m.Dup > 1 {
		l := m.Layer
		full := m.NPW - 1
		rem := l.Windows() - full*m.Dup
		perWin := int64(l.KernelRows()) * int64(l.OCg())
		sum := float64(full)*cellFrac(int64(m.Dup)*perWin, m.Array) +
			cellFrac(int64(rem)*perWin, m.Array)
		return 100 * sum / float64(m.NPW)
	}
	var sum float64
	for i := 0; i < m.AR; i++ {
		for j := 0; j < m.AC; j++ {
			sum += cellFrac(m.Tile(i, j).UsedCells, m.Array)
		}
	}
	return 100 * sum / float64(m.AR*m.AC)
}

// PeakUtilization returns the utilization of the fullest cycle in percent;
// the paper's "up to 73.8%" for VGG-13 layer 5 is this value.
func (m Mapping) PeakUtilization() float64 {
	var best int64
	for i := 0; i < m.AR; i++ {
		for j := 0; j < m.AC; j++ {
			if u := m.Tile(i, j).UsedCells; u > best {
				best = u
			}
		}
	}
	return 100 * cellFrac(best, m.Array)
}

// cellFrac returns used/total cells as a fraction.
func cellFrac(used int64, a Array) float64 {
	return float64(used) / float64(a.Cells())
}
