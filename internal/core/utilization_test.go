package core

import (
	"math"
	"testing"
	"testing/quick"
)

// TestVGG13Layer5PeakUtilization pins the paper's headline utilization
// number: VW-SDK reaches 73.8% on VGG-13 layer 5 with a 512x512 array
// (9·42·2·256 / 512² = 73.83%).
func TestVGG13Layer5PeakUtilization(t *testing.T) {
	l := Layer{Name: "conv5", IW: 56, IH: 56, KW: 3, KH: 3, IC: 128, OC: 256}
	res, err := SearchVWSDK(l, array512)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Best.PeakUtilization()
	if math.Abs(got-73.828125) > 1e-9 {
		t.Errorf("peak utilization = %v, want 73.828125", got)
	}
	// The average is lower because the last AR tile holds only
	// 128 - 3·42 = 2 channels.
	avg := res.Best.Utilization()
	want := 100 * (3*float64(9*42*512) + float64(9*2*512)) / (4 * 512 * 512)
	if math.Abs(avg-want) > 1e-9 {
		t.Errorf("avg utilization = %v, want %v", avg, want)
	}
}

// TestIm2colUtilization checks the dense row-granular accounting: VGG-13
// layer 5 im2col occupies (512+512+128)x256 cells over 3 row tiles.
func TestIm2colUtilization(t *testing.T) {
	l := Layer{IW: 56, IH: 56, KW: 3, KH: 3, IC: 128, OC: 256}
	m, err := Im2col(l, array512)
	if err != nil {
		t.Fatal(err)
	}
	if m.AR != 3 || m.AC != 1 {
		t.Fatalf("AR,AC = %d,%d, want 3,1", m.AR, m.AC)
	}
	want := 100 * float64(1152*256) / float64(3*512*512)
	if got := m.Utilization(); math.Abs(got-want) > 1e-9 {
		t.Errorf("utilization = %v, want %v (=37.5)", got, want)
	}
	tile := m.Tile(2, 0)
	if tile.Rows != 128 || tile.Cols != 256 || tile.UsedCells != 128*256 {
		t.Errorf("last tile = %+v, want 128x256 dense", tile)
	}
}

// TestSDKUtilizationBruteForce cross-checks the analytic SDK used-cell count
// against a brute-force construction of the full unrolled weight matrix.
func TestSDKUtilizationBruteForce(t *testing.T) {
	layers := []struct {
		name string
		l    Layer
		pw   Window
		a    Array
	}{
		{"fits", Layer{IW: 12, IH: 12, KW: 3, KH: 3, IC: 4, OC: 6}, Window{5, 4}, Array{128, 128}},
		{"row split", Layer{IW: 12, IH: 12, KW: 3, KH: 3, IC: 9, OC: 6}, Window{4, 4}, Array{64, 128}},
		{"col split", Layer{IW: 12, IH: 12, KW: 3, KH: 3, IC: 3, OC: 40}, Window{5, 5}, Array{128, 96}},
		{"both split", Layer{IW: 16, IH: 16, KW: 3, KH: 3, IC: 11, OC: 33}, Window{6, 5}, Array{100, 80}},
	}
	for _, tt := range layers {
		t.Run(tt.name, func(t *testing.T) {
			m, err := SDK(tt.l, tt.a, tt.pw)
			if err != nil {
				t.Fatal(err)
			}
			l := m.Layer
			area := m.PW.Area()
			totalRows := area * l.IC
			totalCols := m.Nw() * l.OC
			// Build the dense 0/1 occupancy of the full virtual matrix.
			occ := make([][]bool, totalRows)
			for r := range occ {
				occ[r] = make([]bool, totalCols)
			}
			for wy := 0; wy < m.NwH; wy++ {
				for wx := 0; wx < m.NwW; wx++ {
					w := wy*m.NwW + wx
					for c := 0; c < l.IC; c++ {
						for ky := 0; ky < l.KH; ky++ {
							for kx := 0; kx < l.KW; kx++ {
								row := c*area + (wy*l.StrideH+ky)*m.PW.W + wx*l.StrideW + kx
								for oc := 0; oc < l.OC; oc++ {
									occ[row][w*l.OC+oc] = true
								}
							}
						}
					}
				}
			}
			for i := 0; i < m.AR; i++ {
				for j := 0; j < m.AC; j++ {
					var want int64
					for r := i * tt.a.Rows; r < min((i+1)*tt.a.Rows, totalRows); r++ {
						for cc := j * tt.a.Cols; cc < min((j+1)*tt.a.Cols, totalCols); cc++ {
							if occ[r][cc] {
								want++
							}
						}
					}
					got := m.Tile(i, j).UsedCells
					if got != want {
						t.Errorf("tile(%d,%d) used = %d, want %d", i, j, got, want)
					}
				}
			}
		})
	}
}

// TestSDKFullCoverage checks that across all tiles the SDK layout stores
// exactly Nw · OC kernel copies: sum of used cells == Nw·OC·K·K·IC.
func TestSDKFullCoverage(t *testing.T) {
	f := func(iw, ic, oc, pw, ph uint8) bool {
		l := Layer{
			IW: int(iw%12) + 6, IH: int(iw%12) + 6,
			KW: 3, KH: 3, IC: int(ic%12) + 1, OC: int(oc%24) + 1,
		}
		w := Window{W: 3 + int(pw)%4, H: 3 + int(ph)%4}
		if w.W > l.IW || w.H > l.IH {
			return true
		}
		a := Array{Rows: 96, Cols: 64}
		m, err := SDK(l, a, w)
		if err != nil {
			return true
		}
		var sum int64
		for i := 0; i < m.AR; i++ {
			for j := 0; j < m.AC; j++ {
				sum += m.Tile(i, j).UsedCells
			}
		}
		want := int64(m.Nw()) * int64(l.OC) * int64(l.KernelRows())
		return sum == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestVWSDKFullCoverage: VW-SDK stores Nw·OC kernel copies overall too, with
// channel-granular tiles.
func TestVWSDKFullCoverage(t *testing.T) {
	f := func(iw, ic, oc, pw, ph uint8) bool {
		l := Layer{
			IW: int(iw%12) + 6, IH: int(iw%12) + 6,
			KW: 3, KH: 3, IC: int(ic%40) + 1, OC: int(oc%40) + 1,
		}
		w := Window{W: 3 + int(pw)%4, H: 3 + int(ph)%4}
		if w.W > l.IW || w.H > l.IH {
			return true
		}
		m, err := VW(l, Array{128, 128}, w)
		if err != nil {
			return true
		}
		var sum int64
		for i := 0; i < m.AR; i++ {
			for j := 0; j < m.AC; j++ {
				tile := m.Tile(i, j)
				// Footprint bounds the array.
				if tile.Rows > 128 || tile.Cols > 128 {
					return false
				}
				sum += tile.UsedCells
			}
		}
		// Each (AR tile, AC tile) pair stores K·K·ict·Nw·oct cells;
		// summing over the grid yields K·K·IC·Nw·OC.
		want := int64(m.Nw()) * int64(l.OC) * int64(l.KernelRows())
		return sum == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: utilization is in (0, 100] for every scheme.
func TestUtilizationBounds(t *testing.T) {
	f := func(iw, ic, oc uint8) bool {
		l := Layer{
			IW: int(iw%16) + 5, IH: int(iw%16) + 5,
			KW: 3, KH: 3, IC: int(ic%32) + 1, OC: int(oc%32) + 1,
		}
		a := Array{Rows: 128, Cols: 128}
		ms := make([]Mapping, 0, 4)
		if m, err := Im2col(l, a); err == nil {
			ms = append(ms, m)
		}
		if r, err := SearchSMD(l, a); err == nil {
			ms = append(ms, r.Best)
		}
		if r, err := SearchSDK(l, a); err == nil {
			ms = append(ms, r.Best)
		}
		if r, err := SearchVWSDK(l, a); err == nil {
			ms = append(ms, r.Best)
		}
		for _, m := range ms {
			u := m.Utilization()
			p := m.PeakUtilization()
			if u <= 0 || u > 100 || p <= 0 || p > 100 || p < u-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSMDUtilization(t *testing.T) {
	// 3x3x4x8 on 128x128 with dup 3: per full cycle 3·36·8 = 864 used of
	// 16384 cells; windows = 64 = 3·21+1, so the last of 22 groups drives
	// a single copy.
	l := Layer{IW: 10, IH: 10, KW: 3, KH: 3, IC: 4, OC: 8}
	m, err := SMD(l, Array{128, 128}, 3)
	if err != nil {
		t.Fatal(err)
	}
	perCopy := float64(36*8) / float64(128*128)
	want := 100 * (21*3*perCopy + 1*perCopy) / 22
	if got := m.Utilization(); math.Abs(got-want) > 1e-9 {
		t.Errorf("SMD utilization = %v, want %v", got, want)
	}
	tile := m.Tile(0, 0)
	if tile.Rows != 108 || tile.Cols != 24 || tile.UsedCells != 864 {
		t.Errorf("SMD tile = %+v, want 108x24 used 864", tile)
	}
}

// TestUtilizationPaperOrdering reproduces the qualitative claim of Fig. 9(a):
// at 512x512 the three mappings have equal utilization on VGG-13 layers 1–3
// (identical windows up to SDK/VW equivalence), and VW-SDK is strictly
// better on layers 4–6.
func TestUtilizationPaperOrdering(t *testing.T) {
	for i, l := range vgg13Shapes()[:6] {
		im, err := Im2col(l, array512)
		if err != nil {
			t.Fatal(err)
		}
		sdk, err := SearchSDK(l, array512)
		if err != nil {
			t.Fatal(err)
		}
		vw, err := SearchVWSDK(l, array512)
		if err != nil {
			t.Fatal(err)
		}
		uIm, uSDK, uVW := im.Utilization(), sdk.Best.Utilization(), vw.Best.Utilization()
		if i >= 3 { // layers 4..6
			if uVW <= uSDK || uVW <= uIm {
				t.Errorf("layer %d: VW util %.1f not above SDK %.1f / im2col %.1f",
					i+1, uVW, uSDK, uIm)
			}
		}
	}
}
