package core

import (
	"errors"
	"fmt"
)

// Layer describes a single convolutional layer in the geometry the paper
// uses: an IW×IH input feature map (IFM) with IC channels convolved with OC
// kernels of size KW×KH×IC. Stride and padding default to 1 and 0 when zero;
// the paper itself models every layer as a stride-1 "valid" convolution
// (eq. 3 has no stride or padding term), which Normalized preserves.
type Layer struct {
	// Name identifies the layer in reports, e.g. "conv3_1".
	Name string

	// IW and IH are the input feature map width and height before padding.
	IW, IH int

	// KW and KH are the kernel width and height.
	KW, KH int

	// IC and OC are the input and output channel counts.
	IC, OC int

	// StrideW and StrideH are the convolution strides; zero means 1.
	StrideW, StrideH int

	// PadW and PadH are the symmetric zero paddings; negative is invalid.
	PadW, PadH int

	// Groups is the grouped-convolution group count: the input and output
	// channels are split into Groups independent blocks, kernel g seeing
	// only input block g (depthwise convolution is Groups == IC). Zero or
	// one means a dense convolution; IC and OC must both be divisible by
	// Groups. The zero value is left as-is (not normalized to 1) so dense
	// layers serialize without the field.
	Groups int `json:"Groups,omitempty"`
}

// Normalized returns a copy of l with zero strides replaced by 1.
func (l Layer) Normalized() Layer {
	if l.StrideW == 0 {
		l.StrideW = 1
	}
	if l.StrideH == 0 {
		l.StrideH = 1
	}
	return l
}

// Validate reports whether the layer geometry is well formed: positive
// dimensions, kernel no larger than the padded IFM, and non-negative padding.
func (l Layer) Validate() error {
	l = l.Normalized()
	switch {
	case l.IW <= 0 || l.IH <= 0:
		return fmt.Errorf("core: layer %q: non-positive IFM %dx%d", l.Name, l.IW, l.IH)
	case l.KW <= 0 || l.KH <= 0:
		return fmt.Errorf("core: layer %q: non-positive kernel %dx%d", l.Name, l.KW, l.KH)
	case l.IC <= 0 || l.OC <= 0:
		return fmt.Errorf("core: layer %q: non-positive channels IC=%d OC=%d", l.Name, l.IC, l.OC)
	case l.StrideW <= 0 || l.StrideH <= 0:
		return fmt.Errorf("core: layer %q: non-positive stride %dx%d", l.Name, l.StrideW, l.StrideH)
	case l.PadW < 0 || l.PadH < 0:
		return fmt.Errorf("core: layer %q: negative padding %dx%d", l.Name, l.PadW, l.PadH)
	case l.KW > l.PaddedW() || l.KH > l.PaddedH():
		return fmt.Errorf("core: layer %q: kernel %dx%d exceeds padded IFM %dx%d",
			l.Name, l.KW, l.KH, l.PaddedW(), l.PaddedH())
	case l.Groups < 0:
		return fmt.Errorf("core: layer %q: negative groups %d", l.Name, l.Groups)
	case l.Groups > 1 && l.IC%l.Groups != 0:
		return fmt.Errorf("core: layer %q: input channels %d not divisible by groups %d",
			l.Name, l.IC, l.Groups)
	case l.Groups > 1 && l.OC%l.Groups != 0:
		return fmt.Errorf("core: layer %q: output channels %d not divisible by groups %d",
			l.Name, l.OC, l.Groups)
	}
	return nil
}

// NumGroups returns the effective group count: Groups, with zero (the dense
// default) and one both meaning a single dense group.
func (l Layer) NumGroups() int {
	if l.Groups < 2 {
		return 1
	}
	return l.Groups
}

// ICg returns the input channels per group, IC / NumGroups (eq. 8's grouped
// per-group cap; for depthwise layers ICg == 1).
func (l Layer) ICg() int { return l.IC / l.NumGroups() }

// OCg returns the output channels per group, OC / NumGroups.
func (l Layer) OCg() int { return l.OC / l.NumGroups() }

// PaddedW returns the IFM width after padding.
func (l Layer) PaddedW() int { return l.IW + 2*l.PadW }

// PaddedH returns the IFM height after padding.
func (l Layer) PaddedH() int { return l.IH + 2*l.PadH }

// OutW returns the output feature map width.
func (l Layer) OutW() int {
	l = l.Normalized()
	return (l.PaddedW()-l.KW)/l.StrideW + 1
}

// OutH returns the output feature map height.
func (l Layer) OutH() int {
	l = l.Normalized()
	return (l.PaddedH()-l.KH)/l.StrideH + 1
}

// Windows returns the number of kernel-sized windows in the IFM, which equals
// the number of output positions per channel (OutW × OutH).
func (l Layer) Windows() int { return l.OutW() * l.OutH() }

// KernelRows returns the number of array rows one fully unrolled kernel
// occupies: KW × KH × ICg. A grouped kernel sees only its group's ICg input
// channels; for a dense layer ICg == IC and this is the classic KW·KH·IC.
func (l Layer) KernelRows() int { return l.KW * l.KH * l.ICg() }

// Kernel returns the kernel extent as a Window.
func (l Layer) Kernel() Window { return Window{W: l.KW, H: l.KH} }

// MACs returns the number of multiply-accumulate operations of the layer.
func (l Layer) MACs() int64 {
	return int64(l.Windows()) * int64(l.KernelRows()) * int64(l.OC)
}

// String returns a compact description such as
// "conv1 3x3x64x128 @112x112 s1 p0"; grouped layers append "g<Groups>".
func (l Layer) String() string {
	n := l.Normalized()
	s := fmt.Sprintf("%s %dx%dx%dx%d @%dx%d s%d p%d",
		l.Name, n.KW, n.KH, n.IC, n.OC, n.IW, n.IH, n.StrideW, n.PadW)
	if n.NumGroups() > 1 {
		s += fmt.Sprintf(" g%d", n.NumGroups())
	}
	return s
}

// Array describes a PIM crossbar array as Rows×Cols memory cells. Rows is the
// paper's 2^X (input/DAC ports) and Cols the paper's 2^Y (output/ADC ports).
type Array struct {
	Rows, Cols int
}

// Validate reports whether the array has positive dimensions.
func (a Array) Validate() error {
	if a.Rows <= 0 || a.Cols <= 0 {
		return fmt.Errorf("core: invalid array %dx%d", a.Rows, a.Cols)
	}
	return nil
}

// Cells returns the total number of memory cells in the array.
func (a Array) Cells() int64 { return int64(a.Rows) * int64(a.Cols) }

// String returns "RowsxCols", e.g. "512x512".
func (a Array) String() string { return fmt.Sprintf("%dx%d", a.Rows, a.Cols) }

// Window is a parallel-window shape in IFM coordinates. For im2col the
// window equals the kernel; for SDK it is square; VW-SDK allows any
// rectangle between the kernel and the IFM.
type Window struct {
	W, H int
}

// Area returns W×H, the number of IFM positions (per channel) the window
// spans, i.e. the array rows consumed per mapped input channel.
func (w Window) Area() int { return w.W * w.H }

// String returns "WxH", e.g. "4x3".
func (w Window) String() string { return fmt.Sprintf("%dx%d", w.W, w.H) }

// ErrInfeasible is returned (wrapped) by cost constructors when a candidate
// window cannot be mapped to the array at all, e.g. when not even a single
// input channel of the window fits the array rows.
var ErrInfeasible = errors.New("core: infeasible mapping")

// windowsInside returns how many kernel placements fit inside a parallel
// window of the given extent along one axis: floor((pw-k)/stride) + 1.
func windowsInside(pw, k, stride int) int {
	if pw < k {
		return 0
	}
	return (pw-k)/stride + 1
}

// ceilDiv returns ceil(a/b) for positive b.
func ceilDiv(a, b int) int {
	return (a + b - 1) / b
}

// ceilDiv64 returns ceil(a/b) for positive b on 64-bit values.
func ceilDiv64(a, b int64) int64 {
	return (a + b - 1) / b
}
