package core

import "fmt"

// Scheme identifies a convolutional weight-mapping scheme.
type Scheme int

// The four mapping schemes modelled by the paper.
const (
	// SchemeIm2col unrolls each kernel into one column and processes one
	// window per cycle (Fig. 2a).
	SchemeIm2col Scheme = iota
	// SchemeSMD duplicates the whole kernel matrix block-diagonally so
	// several independent windows are processed per cycle (Fig. 2b).
	SchemeSMD
	// SchemeSDK shifts and duplicates kernels over a square parallel
	// window holding the entire channels (Fig. 2c).
	SchemeSDK
	// SchemeVWSDK is the paper's contribution: rectangular parallel
	// windows with channel tiling (Fig. 2d).
	SchemeVWSDK
)

// String returns the scheme name used throughout the paper.
func (s Scheme) String() string {
	switch s {
	case SchemeIm2col:
		return "im2col"
	case SchemeSMD:
		return "SMD"
	case SchemeSDK:
		return "SDK"
	case SchemeVWSDK:
		return "VW-SDK"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Mapping is the result of costing one mapping decision: a scheme plus its
// parallel window / duplication / channel-tiling parameters, together with
// the derived cycle counts of eqs. 2–8.
//
// A Mapping is immutable once constructed; use the constructors Im2col, SMD,
// SDK and VW (or the Search functions) to obtain one.
type Mapping struct {
	// Layer and Array are the normalized inputs the mapping was costed for.
	Layer Layer
	Array Array

	// Scheme identifies how weights are laid out.
	Scheme Scheme

	// PW is the parallel window. For im2col and SMD it equals the kernel.
	PW Window

	// NwW and NwH are the number of kernel placements inside PW along each
	// axis; Nw = NwW × NwH is the paper's N_WP (windows per parallel window).
	NwW, NwH int

	// Dup is the SMD duplication factor (independent kernel-matrix copies);
	// 1 for every other scheme.
	Dup int

	// ICt is the number of input channels mapped per array-row tile
	// (eq. 4). For row-granular schemes (im2col, SDK) it is the full IC:
	// rows are split without channel alignment and RowGranular is true.
	ICt int

	// OCt is the number of output channels computed per array-column tile
	// (eq. 6). For column-granular schemes (SDK) it is the full OC and
	// ColGranular is true.
	OCt int

	// RowGranular records that AR was computed as ceil(totalRows/Rows)
	// (splitting mid-channel), as im2col and the SDK baseline do, rather
	// than channel-granularly via ICt (eq. 5).
	RowGranular bool

	// ColGranular records that AC was computed as ceil(totalCols/Cols)
	// (splitting a parallel window's outputs across column cycles), as the
	// SDK baseline does, rather than via OCt (eq. 7).
	ColGranular bool

	// NPW is the number of parallel-window positions over the IFM (eq. 3);
	// for SMD it is the number of window *groups*, ceil(windows/Dup).
	NPW int

	// AR and AC are the array-row and array-column cycle multipliers
	// (eqs. 5 and 7). For grouped layers they are per convolution group:
	// ICt/OCt are capped at ICg/OCg because a group's kernels see only that
	// group's input channels and a group cannot share array columns with
	// another group.
	AR, AC int

	// Cycles is NPW × AR × AC × Groups (eq. 2/8; the per-group grid runs
	// once per convolution group).
	Cycles int64
}

// Nw returns the number of windows sharing one parallel window (N_WP).
func (m Mapping) Nw() int { return m.NwW * m.NwH }

// Tiles returns the total number of array tiles the mapping occupies over
// all convolution groups: AR × AC per group, times the group count.
func (m Mapping) Tiles() int { return m.AR * m.AC * m.Layer.NumGroups() }

// finish derives NPW, Cycles and validates tile counts. It assumes PW, NwW,
// NwH, ICt, OCt, AR and AC are already set.
func (m Mapping) finish() Mapping {
	l := m.Layer
	nppwW := ceilDiv(l.OutW(), m.NwW)
	nppwH := ceilDiv(l.OutH(), m.NwH)
	m.NPW = nppwW * nppwH
	if m.Scheme == SchemeSMD {
		m.NPW = ceilDiv(l.Windows(), m.Dup)
	}
	m.Cycles = int64(m.NPW) * int64(m.AR) * int64(m.AC) * int64(l.NumGroups())
	return m
}

// Im2col returns the cost of the im2col mapping (Fig. 2a): one kernel per
// column, one window per cycle, with row-granular AR = ceil(K·K·IC/Rows) and
// AC = ceil(OC/Cols) tiling when the array is too small (eq. 1 with N_WP=1).
func Im2col(l Layer, a Array) (Mapping, error) {
	l = l.Normalized()
	if err := l.Validate(); err != nil {
		return Mapping{}, err
	}
	if err := a.Validate(); err != nil {
		return Mapping{}, err
	}
	m := Mapping{
		Layer:       l,
		Array:       a,
		Scheme:      SchemeIm2col,
		PW:          l.Kernel(),
		NwW:         1,
		NwH:         1,
		Dup:         1,
		ICt:         l.ICg(),
		OCt:         min(l.OCg(), a.Cols),
		RowGranular: true,
		AR:          ceilDiv(l.KernelRows(), a.Rows),
		AC:          ceilDiv(l.OCg(), a.Cols),
	}
	return m.finish(), nil
}

// SMD returns the cost of sub-matrix duplication (Fig. 2b) with the given
// duplication factor dup ≥ 1: dup block-diagonal copies of the full kernel
// matrix compute dup independent windows per cycle. For dup > 1 the whole
// block-diagonal matrix must fit the array; SMD returns a wrapped
// ErrInfeasible otherwise. dup == 1 degenerates to im2col tiling.
func SMD(l Layer, a Array, dup int) (Mapping, error) {
	l = l.Normalized()
	if err := l.Validate(); err != nil {
		return Mapping{}, err
	}
	if err := a.Validate(); err != nil {
		return Mapping{}, err
	}
	if dup < 1 {
		return Mapping{}, fmt.Errorf("core: SMD duplication %d: %w", dup, ErrInfeasible)
	}
	m, err := Im2col(l, a)
	if err != nil {
		return Mapping{}, err
	}
	m.Scheme = SchemeSMD
	m.Dup = dup
	if dup > 1 {
		// The duplicated block-diagonal matrix is per group: each copy holds
		// one group's KW·KH·ICg × OCg kernel matrix.
		if dup*l.KernelRows() > a.Rows || dup*l.OCg() > a.Cols {
			return Mapping{}, fmt.Errorf("core: SMD duplication %d exceeds array %s for %s: %w",
				dup, a, l.Name, ErrInfeasible)
		}
		m.AR, m.AC = 1, 1
		m.OCt = l.OCg()
	}
	return m.finish(), nil
}

// SDK returns the cost of the baseline shifted-and-duplicated-kernel mapping
// (Fig. 2c, [Zhang TCAD'20]) for a given square parallel window pw holding
// the entire input channels. Per the paper's eq. 1, AR is row-granular
// (ceil(PW·PW·IC/Rows)) and AC is column-granular (ceil(Nw·OC/Cols)).
//
// SDK does not apply the baseline algorithm's feasibility rule; SearchSDK
// does. pw must be at least the kernel and at most the padded IFM.
func SDK(l Layer, a Array, pw Window) (Mapping, error) {
	l = l.Normalized()
	if err := checkWindow(l, a, pw); err != nil {
		return Mapping{}, err
	}
	nwW := windowsInside(pw.W, l.KW, l.StrideW)
	nwH := windowsInside(pw.H, l.KH, l.StrideH)
	m := Mapping{
		Layer:       l,
		Array:       a,
		Scheme:      SchemeSDK,
		PW:          pw,
		NwW:         nwW,
		NwH:         nwH,
		Dup:         1,
		ICt:         l.ICg(),
		OCt:         l.OCg(),
		RowGranular: true,
		ColGranular: true,
		AR:          ceilDiv(pw.Area()*l.ICg(), a.Rows),
		AC:          ceilDiv(nwW*nwH*l.OCg(), a.Cols),
	}
	return m.finish(), nil
}

// VW returns the cost of the paper's variable-window SDK mapping for a given
// (possibly rectangular) parallel window pw, applying channel tiling:
//
//	ICt = floor(Rows/(PWw·PWh))   (eq. 4), AR = ceil(ICg/ICt)  (eq. 5)
//	OCt = floor(Cols/Nw)          (eq. 6), AC = ceil(OCg/OCt)  (eq. 7)
//
// ICt and OCt are capped at the per-group channel counts ICg and OCg (for a
// dense layer those are IC and OC); a grouped layer runs the per-group grid
// once per group, so Cycles gains a ×Groups factor. VW returns a wrapped
// ErrInfeasible
// when not even one channel of the window fits the rows (ICt = 0) or one
// parallel window's outputs exceed the columns (OCt = 0).
//
// Note that for pw equal to the kernel, VW costs channel-granular row tiling,
// which can exceed im2col's row-granular count; Algorithm 1 (SearchVWSDK)
// therefore seeds its minimum with Im2col, per the paper.
func VW(l Layer, a Array, pw Window) (Mapping, error) {
	l = l.Normalized()
	if err := checkWindow(l, a, pw); err != nil {
		return Mapping{}, err
	}
	m, err := SweepVW(l, a, pw)
	if err != nil {
		// Re-wrap the bare sentinel with the diagnostic detail direct
		// callers expect.
		nwW := windowsInside(pw.W, l.KW, l.StrideW)
		nwH := windowsInside(pw.H, l.KH, l.StrideH)
		if a.Rows/pw.Area() < 1 {
			return Mapping{}, fmt.Errorf("core: window %s needs %d rows/channel, array %s: %w",
				pw, pw.Area(), a, ErrInfeasible)
		}
		return Mapping{}, fmt.Errorf("core: window %s has %d windows, array %s columns: %w",
			pw, nwW*nwH, a, ErrInfeasible)
	}
	return m, nil
}

// SweepVW costs one variable-window candidate like VW but is tuned for
// exhaustive sweeps: it assumes l is already normalized and validated and
// pw lies within [kernel, padded IFM], and it reports infeasibility as the
// bare ErrInfeasible sentinel. Algorithm 1 costs every window of the padded
// IFM — tens of thousands of candidates on early VGG layers, most
// infeasible on small arrays — and formatting the discarded error strings
// dominated the search profile (>80% of CPU samples), so the sweeps must
// not allocate per rejected candidate.
func SweepVW(l Layer, a Array, pw Window) (Mapping, error) {
	nwW := windowsInside(pw.W, l.KW, l.StrideW)
	nwH := windowsInside(pw.H, l.KH, l.StrideH)
	ict := a.Rows / pw.Area()
	oct := a.Cols / (nwW * nwH)
	if ict < 1 || oct < 1 {
		return Mapping{}, ErrInfeasible
	}
	ict = min(ict, l.ICg())
	oct = min(oct, l.OCg())
	m := Mapping{
		Layer:  l,
		Array:  a,
		Scheme: SchemeVWSDK,
		PW:     pw,
		NwW:    nwW,
		NwH:    nwH,
		Dup:    1,
		ICt:    ict,
		OCt:    oct,
		AR:     ceilDiv(l.ICg(), ict),
		AC:     ceilDiv(l.OCg(), oct),
	}
	return m.finish(), nil
}

// checkWindow validates layer, array and that the parallel window covers the
// kernel, fits the padded IFM, and aligns with the stride grid.
func checkWindow(l Layer, a Array, pw Window) error {
	if err := l.Validate(); err != nil {
		return err
	}
	if err := a.Validate(); err != nil {
		return err
	}
	if pw.W < l.KW || pw.H < l.KH {
		return fmt.Errorf("core: parallel window %s smaller than kernel %s", pw, l.Kernel())
	}
	if pw.W > l.PaddedW() || pw.H > l.PaddedH() {
		return fmt.Errorf("core: parallel window %s exceeds padded IFM %dx%d",
			pw, l.PaddedW(), l.PaddedH())
	}
	return nil
}

// Speedup returns the ratio of the baseline's cycles to m's cycles; >1 means
// m is faster. It returns 0 when m has zero cycles (degenerate).
func (m Mapping) Speedup(baseline Mapping) float64 {
	if m.Cycles == 0 {
		return 0
	}
	return float64(baseline.Cycles) / float64(m.Cycles)
}

// TileString renders the mapping in the paper's Table I notation:
// "PWwxPWh x ICt x OCt", e.g. "4x3x42x256".
func (m Mapping) TileString() string {
	return fmt.Sprintf("%dx%dx%dx%d", m.PW.W, m.PW.H, m.ICt, m.OCt)
}

// String summarizes the mapping for logs and reports.
func (m Mapping) String() string {
	return fmt.Sprintf("%s pw=%s ict=%d oct=%d npw=%d ar=%d ac=%d cycles=%d",
		m.Scheme, m.PW, m.ICt, m.OCt, m.NPW, m.AR, m.AC, m.Cycles)
}
