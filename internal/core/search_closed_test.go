package core

import (
	"context"
	"reflect"
	"testing"
)

// TestClosedFormRouting pins which layer shapes SearchVWSDK resolves with the
// closed-form argmin search and which fall back to the pruned enumerator, so
// a silent always-fallback regression (every layer quietly taking the slow
// path) is caught, as is an over-eager closed form swallowing shapes its
// derivation does not cover.
func TestClosedFormRouting(t *testing.T) {
	tests := []struct {
		name   string
		layer  Layer
		closed bool
	}{
		{"dense unit stride", Layer{IW: 32, IH: 32, KW: 3, KH: 3, IC: 64, OC: 64}, true},
		{"dense padded", Layer{IW: 224, IH: 224, KW: 3, KH: 3, IC: 3, OC: 64, PadW: 1, PadH: 1}, true},
		{"dense rect kernel", Layer{IW: 40, IH: 12, KW: 5, KH: 3, IC: 16, OC: 32}, true},
		{"dense pointwise", Layer{IW: 14, IH: 14, KW: 1, KH: 1, IC: 96, OC: 576}, true},
		{"explicit groups=1", Layer{IW: 32, IH: 32, KW: 3, KH: 3, IC: 64, OC: 64, Groups: 1}, true},
		{"strided", Layer{IW: 224, IH: 224, KW: 7, KH: 7, IC: 3, OC: 64, StrideW: 2, StrideH: 2, PadW: 3, PadH: 3}, false},
		{"strided one axis", Layer{IW: 40, IH: 12, KW: 5, KH: 3, IC: 16, OC: 32, StrideW: 1, StrideH: 2}, false},
		{"grouped", Layer{IW: 56, IH: 56, KW: 3, KH: 3, IC: 128, OC: 128, Groups: 32, PadW: 1, PadH: 1}, false},
		{"depthwise", Layer{IW: 112, IH: 112, KW: 3, KH: 3, IC: 32, OC: 32, Groups: 32, PadW: 1, PadH: 1}, false},
		{"depthwise strided", Layer{IW: 56, IH: 56, KW: 3, KH: 3, IC: 144, OC: 144, Groups: 144, StrideW: 2, StrideH: 2, PadW: 1, PadH: 1}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ClosedFormEligible(tt.layer); got != tt.closed {
				t.Errorf("ClosedFormEligible(%v) = %v, want %v", tt.layer, got, tt.closed)
			}
			_, st, err := SearchVWSDKInstrumented(context.Background(), tt.layer, Array{Rows: 512, Cols: 512})
			if err != nil {
				t.Fatalf("SearchVWSDKInstrumented: %v", err)
			}
			want := PathPruned
			if tt.closed {
				want = PathClosedForm
			}
			if st.Path != want {
				t.Errorf("search path = %q, want %q", st.Path, want)
			}
		})
	}
}

// TestClosedFormMatchesPruned runs every eligible zoo shape through the
// closed-form search, the pruned enumerator and the brute force, and requires
// the whole Result — Best (with tie-breaks), Im2col, Evaluated, Swept — to be
// bit-identical across all three, while the closed form pays at most one
// cost-model call against the enumerator's one-per-class.
func TestClosedFormMatchesPruned(t *testing.T) {
	for _, a := range prunedTestArrays {
		for _, l := range zooShapes() {
			l := l.Normalized()
			if !ClosedFormEligible(l) {
				continue
			}
			var cst, pst SearchStats
			closed, err := searchVWSDKClosed(context.Background(), l, a, &cst)
			if err != nil {
				t.Fatalf("%v %s: closed-form: %v", l, a, err)
			}
			pruned, err := searchVWSDKPruned(context.Background(), l, a, &pst)
			if err != nil {
				t.Fatalf("%v %s: pruned: %v", l, a, err)
			}
			if !reflect.DeepEqual(closed, pruned) {
				t.Fatalf("%v %s: closed-form Result differs from pruned\nclosed %+v\npruned %+v",
					l, a, closed, pruned)
			}
			exh, err := searchVWSDKExhaustive(context.Background(), l, a)
			if err != nil {
				t.Fatalf("%v %s: exhaustive: %v", l, a, err)
			}
			if !reflect.DeepEqual(closed.Best, exh.Best) {
				t.Fatalf("%v %s: closed-form Best differs from exhaustive\nclosed     %+v\nexhaustive %+v",
					l, a, closed.Best, exh.Best)
			}
			if cst.CostModelCalls > 1 {
				t.Errorf("%v %s: closed-form paid %d cost-model calls, want ≤ 1", l, a, cst.CostModelCalls)
			}
			if pst.CostModelCalls != pruned.Evaluated {
				t.Errorf("%v %s: pruned cost-model calls = %d, want Evaluated = %d",
					l, a, pst.CostModelCalls, pruned.Evaluated)
			}
			// The acceptance criterion: strictly fewer cost-model evaluations
			// on dense layers whenever the enumerator would cost >1 class.
			if pruned.Evaluated > 1 && cst.CostModelCalls >= pst.CostModelCalls {
				t.Errorf("%v %s: closed-form cost-model calls %d not < pruned %d",
					l, a, cst.CostModelCalls, pst.CostModelCalls)
			}
		}
	}
}

// TestClosedFormCancellation pins that the closed-form walk honors its
// per-row cancellation checkpoints like every other search loop.
func TestClosedFormCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	l := Layer{IW: 224, IH: 224, KW: 3, KH: 3, IC: 64, OC: 64, PadW: 1, PadH: 1}
	if _, err := SearchVWSDKContext(ctx, l, Array{Rows: 1024, Cols: 1024}); err == nil {
		t.Fatal("closed-form search ignored a cancelled context")
	}
}
