package experiments

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", what, got, want, tol)
	}
}

func TestTableIGolden(t *testing.T) {
	r, err := TableI(Array512)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, r.Summary["vgg13/im2col-cycles"], 243736, 0, "vgg13 im2col")
	approx(t, r.Summary["vgg13/sdk-cycles"], 114697, 0, "vgg13 sdk (paper Table I)")
	approx(t, r.Summary["vgg13/vw-cycles"], 77102, 0, "vgg13 vw (paper Table I)")
	approx(t, r.Summary["resnet18/im2col-cycles"], 20041, 0, "resnet18 im2col")
	approx(t, r.Summary["resnet18/sdk-cycles"], 7240, 0, "resnet18 sdk (paper Table I)")
	approx(t, r.Summary["resnet18/vw-cycles"], 4294, 0, "resnet18 vw (paper Table I)")
	s := r.Table.String()
	for _, cell := range []string{"10x8x3x64", "4x3x42x256", "8x8x3x64", "4x4x32x128"} {
		if !strings.Contains(s, cell) {
			t.Errorf("Table I missing cell %q", cell)
		}
	}
	if !strings.Contains(r.String(), "[table1]") {
		t.Error("Result.String missing ID header")
	}
}

func TestFig4Golden(t *testing.T) {
	r, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	// On a 512x512 array im2col can hold floor(512/9)=56 input channels:
	// only conv2 (IC=64? no) — in fact no VGG-13 conv2..conv8 layer has
	// IC<=56 except none; check the recorded counts match the paper's
	// message (conventional mappings cannot map entire channels).
	if got := r.Summary["512x512/im2col/mappable"]; got != 0 {
		t.Errorf("512x512 im2col mappable = %v, want 0", got)
	}
	if got := r.Summary["128x128/SDK 4x4/mappable"]; got != 0 {
		t.Errorf("128x128 SDK mappable = %v, want 0", got)
	}
	if !strings.Contains(r.Table.String(), "im2col") {
		t.Error("Fig4 table malformed")
	}
}

func TestFig5aGolden(t *testing.T) {
	r, err := Fig5a()
	if err != nil {
		t.Fatal(err)
	}
	// Paper Fig. 5(a): im2col 4 cycles, 4x3 window 2 cycles, 4x4 window 4.
	approx(t, r.Summary["im2col/cycles"], 4, 0, "im2col cycles")
	approx(t, r.Summary["4x3/cycles"], 2, 0, "4x3 cycles")
	approx(t, r.Summary["4x4/cycles"], 4, 0, "4x4 cycles")
}

func TestFig5bGolden(t *testing.T) {
	r, err := Fig5b()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: the 4x3 rectangular window achieves ~2x speedup over the 4x4
	// square window (at IFM 14 in the running example).
	approx(t, r.Summary["ifm14/4x3-over-4x4"], 2.0, 1e-9, "4x3 over 4x4 at IFM 14")
	approx(t, r.Summary["ifm14/4x3-speedup"], 2.0, 1e-9, "4x3 speedup at IFM 14")
	if len(r.Charts) == 0 || !strings.Contains(r.Charts[0], "4x3") {
		t.Error("Fig5b chart missing")
	}
}

func TestFig7Golden(t *testing.T) {
	ra, err := Fig7a()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, ra.Summary["area9/512rows"], 56, 0, "ICt at area 9")
	approx(t, ra.Summary["area76/512rows"], 6, 0, "ICt at area 76")
	rb, err := Fig7b()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, rb.Summary["nw1/512cols"], 512, 0, "OCt at Nw 1")
	approx(t, rb.Summary["nw15/512cols"], 34, 0, "OCt at Nw 15")
}

func TestFig8aGolden(t *testing.T) {
	r, err := Fig8a(Array512)
	if err != nil {
		t.Fatal(err)
	}
	// Paper abstract: 3.16x / 1.49x on VGG-13, 4.67x / 1.69x on ResNet-18.
	approx(t, r.Summary["vgg13/vw-total-speedup"], 3.1612, 0.001, "vgg13 vw speedup")
	approx(t, r.Summary["resnet18/vw-total-speedup"], 4.6672, 0.001, "resnet18 vw speedup")
	approx(t, r.Summary["vgg13/sdk-total-speedup"], 2.125, 0.001, "vgg13 sdk speedup")
	approx(t, r.Summary["resnet18/sdk-total-speedup"], 2.768, 0.001, "resnet18 sdk speedup")
	if len(r.Charts) != 2 {
		t.Errorf("Fig8a charts = %d, want 2", len(r.Charts))
	}
}

func TestFig8bShape(t *testing.T) {
	r, err := Fig8b()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: speedups grow with array size; VW-SDK ≥ SDK ≥ 1 everywhere.
	for _, net := range []string{"vgg13", "resnet18"} {
		prev := 0.0
		for _, a := range PaperArrays {
			vw := r.Summary[net+"/"+a.String()+"/vw-speedup"]
			sdk := r.Summary[net+"/"+a.String()+"/sdk-speedup"]
			if vw < sdk-1e-9 || sdk < 1-1e-9 {
				t.Errorf("%s %s: vw %.2f < sdk %.2f or sdk < 1", net, a, vw, sdk)
			}
			if vw+1e-9 < prev {
				t.Errorf("%s: vw speedup not monotone at %s (%.3f after %.3f)",
					net, a, vw, prev)
			}
			prev = vw
		}
		at512 := r.Summary[net+"/512x512/vw-speedup"]
		at128 := r.Summary[net+"/128x128/vw-speedup"]
		if at512 <= at128 {
			t.Errorf("%s: speedup should grow with array size (%.2f vs %.2f)",
				net, at512, at128)
		}
	}
}

func TestFig9aGolden(t *testing.T) {
	r, err := Fig9a(Array512)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: VW-SDK reaches up to 73.8% utilization at layer 5.
	approx(t, r.Summary["layer5/vw-peak-util"], 73.828125, 1e-6, "layer5 vw peak util")
	// Layers 4-6: VW-SDK strictly above im2col.
	for _, l := range []string{"layer4", "layer5", "layer6"} {
		if r.Summary[l+"/vw-util"] <= r.Summary[l+"/im2col-util"] {
			t.Errorf("%s: vw util %.1f not above im2col %.1f",
				l, r.Summary[l+"/vw-util"], r.Summary[l+"/im2col-util"])
		}
	}
}

func TestFig9bShape(t *testing.T) {
	r, err := Fig9b()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Table.Rows) != 8 {
		t.Fatalf("Fig9b rows = %d, want 8", len(r.Table.Rows))
	}
	// The paper's claim is that VW-SDK gains *higher utilization than the
	// conventional algorithms* as arrays grow. On a 128x128 array conv5
	// packs im2col perfectly (1152 = 9·128 rows, 256 = 2·128 cols), so all
	// mappings sit at 100% and the gap is zero; at 512x512 the VW-SDK
	// advantage must be strictly positive.
	gapSmall := r.Summary["conv5/128x128/vw-util"] - r.Summary["conv5/128x128/im2col-util"]
	gapLarge := r.Summary["conv5/512x512/vw-util"] - r.Summary["conv5/512x512/im2col-util"]
	if gapLarge <= gapSmall {
		t.Errorf("conv5 vw-vs-im2col utilization gap should grow with array: %.1f vs %.1f",
			gapSmall, gapLarge)
	}
	if r.Summary["conv5/128x128/vw-util"] != 100 {
		t.Errorf("conv5 at 128x128 should be perfectly packed, got %.1f",
			r.Summary["conv5/128x128/vw-util"])
	}
}

func TestAblation(t *testing.T) {
	r, err := Ablation(Array512)
	if err != nil {
		t.Fatal(err)
	}
	for _, net := range []string{"vgg13", "resnet18"} {
		vw := r.Summary[net+"/vw-cycles"]
		sq := r.Summary[net+"/square-tiled-cycles"]
		rect := r.Summary[net+"/rect-full-cycles"]
		if vw > sq || vw > rect {
			t.Errorf("%s: full search (%v) worse than ablations (%v, %v)", net, vw, sq, rect)
		}
		// Both ideas contribute on these networks: each restriction costs
		// cycles relative to the full search.
		if sq == vw && rect == vw {
			t.Errorf("%s: ablations indistinguishable from full search", net)
		}
	}
}

func TestEnergy(t *testing.T) {
	r, err := Energy(Array512)
	if err != nil {
		t.Fatal(err)
	}
	for _, net := range []string{"vgg13", "resnet18"} {
		im := r.Summary[net+"/im2col/energy-uj"]
		vw := r.Summary[net+"/VW-SDK/energy-uj"]
		if vw >= im {
			t.Errorf("%s: VW energy %v not below im2col %v (full-array model)", net, vw, im)
		}
		if f := r.Summary[net+"/VW-SDK/conversion-frac"]; f < 0.98 {
			t.Errorf("%s: conversion fraction %v below the paper's 98%%", net, f)
		}
	}
}

func TestVerifyFunctional(t *testing.T) {
	if testing.Short() {
		t.Skip("full crossbar simulation")
	}
	r, err := VerifyFunctional(0xbeef)
	if err != nil {
		t.Fatal(err)
	}
	if r.Summary["passed"] != r.Summary["cases"] {
		t.Fatalf("verification failed: %+v\n%s", r.Summary, r.Table.String())
	}
}

func TestAllRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full suite including functional verification")
	}
	rs, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 16 {
		t.Fatalf("All returned %d results, want 16", len(rs))
	}
	ids := map[string]bool{}
	for _, r := range rs {
		if r.Table == nil {
			t.Errorf("%s: nil table", r.ID)
		}
		if ids[r.ID] {
			t.Errorf("duplicate id %s", r.ID)
		}
		ids[r.ID] = true
		if len(r.String()) == 0 {
			t.Errorf("%s: empty rendering", r.ID)
		}
	}
}

func TestBitslice(t *testing.T) {
	r, err := Bitslice(Array512)
	if err != nil {
		t.Fatal(err)
	}
	// Ideal precision reproduces the paper's 4294-cycle total.
	approx(t, r.Summary["p0/cycles"], 4294, 0, "ideal precision cycles")
	// Slowdown is monotone in precision demand.
	prev := 0.0
	for i := 0; i < 4; i++ {
		s := r.Summary[fmt.Sprintf("p%d/slowdown", i)]
		if s < prev {
			t.Errorf("slowdown not monotone at p%d: %v after %v", i, s, prev)
		}
		prev = s
	}
	// 8-bit weights in 1-bit cells with 1-bit DACs cost dearly.
	if r.Summary["p3/slowdown"] < 8 {
		t.Errorf("w8/c1 a8/d1 slowdown = %v, want >= 8 (8 passes alone)",
			r.Summary["p3/slowdown"])
	}
}

func TestChip(t *testing.T) {
	r, err := Chip(Array512)
	if err != nil {
		t.Fatal(err)
	}
	for _, net := range []string{"vgg13", "resnet18"} {
		if got := r.Summary[net+"/arrays1/vw-scaling"]; got != 1 {
			t.Errorf("%s: 1-array scaling = %v, want 1", net, got)
		}
		prev := 0.0
		for _, c := range []int{1, 2, 4, 8, 16, 32, 64} {
			s := r.Summary[fmt.Sprintf("%s/arrays%d/vw-scaling", net, c)]
			if s < prev-1e-9 {
				t.Errorf("%s: scaling not monotone at %d arrays", net, c)
			}
			prev = s
		}
		if prev < 4 {
			t.Errorf("%s: 64-array scaling = %v, want >= 4", net, prev)
		}
	}
}

func TestReuse(t *testing.T) {
	r, err := Reuse(Array512)
	if err != nil {
		t.Fatal(err)
	}
	// ResNet-18 conv2: im2col re-reads each element ~9x (3x3 overlap, AR=2
	// doubles it); VW-SDK's 4x4 window cuts loads per element well below.
	im := r.Summary["conv2/im2col/loads"]
	vw := r.Summary["conv2/VW-SDK/loads"]
	if vw >= im {
		t.Errorf("conv2: VW loads/element %.2f not below im2col %.2f", vw, im)
	}
	for _, l := range []string{"conv1", "conv2", "conv3", "conv4"} {
		im := r.Summary[l+"/im2col/loads"]
		vw := r.Summary[l+"/VW-SDK/loads"]
		if im <= 0 || vw <= 0 {
			t.Errorf("%s: missing reuse data", l)
		}
		if vw > im {
			t.Errorf("%s: VW %.2f worse than im2col %.2f", l, vw, im)
		}
	}
}
