// Package experiments regenerates every table and figure of the paper's
// evaluation (and the extensions listed in DESIGN.md §4): each generator
// returns a Result holding an aligned text table, optional ASCII charts and
// a Summary of the headline numbers that tests pin against the paper.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/textplot"
)

// Array512 is the paper's default evaluation array.
var Array512 = core.Array{Rows: 512, Cols: 512}

// defaultCompiler is the compile pipeline shared by every generator that is
// not handed an explicit Compiler. It runs on one concurrent engine:
// experiments repeat (layer, array) pairs heavily (Table I, Fig. 8 and
// Fig. 9 all sweep the same networks), so one cache serves them all. Engine
// results are bit-identical to the serial searches, which the package's
// golden tests pin against the paper.
var defaultCompiler = sync.OnceValue(func() *compile.Compiler { return compile.New(engine.New()) })

// DefaultCompiler returns the shared engine-backed compiler the
// parameterless generators run on.
func DefaultCompiler() *compile.Compiler { return defaultCompiler() }

// PaperArrays are the array sizes of the paper's Fig. 8(b), in its order.
var PaperArrays = []core.Array{
	{Rows: 128, Cols: 128},
	{Rows: 128, Cols: 256},
	{Rows: 256, Cols: 256},
	{Rows: 512, Cols: 256},
	{Rows: 512, Cols: 512},
}

// Result is one regenerated experiment.
type Result struct {
	// ID is the experiment identifier from DESIGN.md §4, e.g. "table1".
	ID string

	// Paper names the artifact reproduced, e.g. "Table I".
	Paper string

	// Table is the tabular data.
	Table *textplot.Table

	// Charts are rendered ASCII figures accompanying the table.
	Charts []string

	// Summary holds the headline numbers by name (e.g.
	// "vgg13/vw-vs-im2col") for golden tests and EXPERIMENTS.md.
	Summary map[string]float64
}

// String renders the experiment: table, charts, then summary lines in
// deterministic order.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] %s\n\n", r.ID, r.Paper)
	b.WriteString(r.Table.String())
	for _, c := range r.Charts {
		b.WriteString("\n" + c)
	}
	if len(r.Summary) > 0 {
		b.WriteString("\nsummary:\n")
		for _, k := range sortedKeys(r.Summary) {
			fmt.Fprintf(&b, "  %-40s %.4g\n", k, r.Summary[k])
		}
	}
	return b.String()
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// trio holds the three mappings the paper compares on every layer.
type trio struct {
	im, sdk, vw core.Mapping
}

// mapLayer compiles one layer under the SDK and VW-SDK schemes (the im2col
// baseline rides along in every search result).
func mapLayer(c *compile.Compiler, l core.Layer, a core.Array) (trio, error) {
	sdk, err := c.CompileLayer(context.Background(), l, a, compile.Options{Scheme: compile.SDK})
	if err != nil {
		return trio{}, err
	}
	vw, err := c.CompileLayer(context.Background(), l, a, compile.Options{})
	if err != nil {
		return trio{}, err
	}
	return trio{im: vw.Search.Im2col, sdk: sdk.Search.Best, vw: vw.Search.Best}, nil
}

// mapNetwork compiles a whole network under the SDK and VW-SDK schemes and
// pairs the per-layer mappings up in layer order.
func mapNetwork(c *compile.Compiler, n model.Network, a core.Array) ([]trio, error) {
	sdk, err := c.Compile(context.Background(), compile.NewRequest(n, a, compile.Options{Scheme: compile.SDK}))
	if err != nil {
		return nil, err
	}
	vw, err := c.Compile(context.Background(), compile.NewRequest(n, a, compile.Options{}))
	if err != nil {
		return nil, err
	}
	out := make([]trio, len(n.Layers))
	for i := range n.Layers {
		out[i] = trio{
			im:  vw.Layers[i].Search.Im2col,
			sdk: sdk.Layers[i].Search.Best,
			vw:  vw.Layers[i].Search.Best,
		}
	}
	return out, nil
}

func totals(ts []trio) (im, sdk, vw int64) {
	for _, t := range ts {
		im += t.im.Cycles
		sdk += t.sdk.Cycles
		vw += t.vw.Cycles
	}
	return
}

// TableI reproduces the paper's Table I: per-layer window/tile choices of
// the SDK baseline and VW-SDK, and total cycles per network, on array a
// (the paper uses 512×512). It runs on the shared compiler; TableIWith
// picks the pipeline.
func TableI(a core.Array) (*Result, error) { return TableIWith(DefaultCompiler(), a) }

// TableIWith is TableI on an explicit compile pipeline.
func TableIWith(c *compile.Compiler, a core.Array) (*Result, error) {
	r := &Result{
		ID:    "table1",
		Paper: "Table I: information of CNNs and results",
		Table: &textplot.Table{
			Title: fmt.Sprintf("Table I (array %s)", a),
			Header: []string{"net", "#", "image", "kernel",
				"SDK (PWxICxOC)", "SDK cycles", "VW-SDK (PWxICtxOCt)", "VW cycles"},
			Notes: []string{
				"paper prints VGG-13 layer 2 as 4x4x64x64; eq. 4 yields ICt=32 (4·4·64 rows > 512), asserted here",
				"PW=K rows mean the search degenerated to im2col, as the paper reports after layer 3",
			},
		},
		Summary: map[string]float64{},
	}
	for _, n := range []model.Network{model.VGG13(), model.ResNet18()} {
		ts, err := mapNetwork(c, n, a)
		if err != nil {
			return nil, err
		}
		for i, t := range ts {
			l := n.Layers[i]
			r.Table.AddRow(n.Name, i+1,
				fmt.Sprintf("%dx%d", l.IW, l.IH),
				fmt.Sprintf("%dx%dx%dx%d", l.KW, l.KH, l.IC, l.OC),
				fmt.Sprintf("%sx%dx%d", t.sdk.PW, t.sdk.ICt, t.sdk.OCt),
				t.sdk.Cycles,
				t.vw.TileString(),
				t.vw.Cycles)
		}
		im, sdk, vw := totals(ts)
		r.Table.AddRow(n.Name, "total", "", "", "", sdk, "", vw)
		key := strings.ToLower(strings.ReplaceAll(n.Name, "-", ""))
		r.Summary[key+"/im2col-cycles"] = float64(im)
		r.Summary[key+"/sdk-cycles"] = float64(sdk)
		r.Summary[key+"/vw-cycles"] = float64(vw)
	}
	return r, nil
}

// Fig4 reproduces Fig. 4: the input/output channel counts each mapping can
// serve in one cycle on contemporary array sizes, against the actual demands
// of VGG-13 conv2–conv8 (3×3 kernels). Im2col computes floor(Rows/9)
// input channels and Cols output channels at once; SDK with its 4×4 window
// computes floor(Rows/16) and floor(Cols/4).
func Fig4() (*Result, error) {
	arrays := []core.Array{
		{Rows: 128, Cols: 128},
		{Rows: 256, Cols: 256},
		{Rows: 512, Cols: 512},
		{Rows: 512, Cols: 256},
	}
	demands := model.VGG13().Layers[1:8] // conv2..conv8
	r := &Result{
		ID:    "fig4",
		Paper: "Fig. 4: computable channel size per mapping vs. VGG-13 demands",
		Table: &textplot.Table{
			Title:  "Computable channels per cycle (3x3 kernels)",
			Header: []string{"array", "method", "IC max", "OC max", "VGG-13 conv layers fully mappable"},
		},
		Summary: map[string]float64{},
	}
	for _, a := range arrays {
		type method struct {
			name   string
			ic, oc int
		}
		methods := []method{
			{"im2col", a.Rows / 9, a.Cols},
			{"SDK 4x4", a.Rows / 16, a.Cols / 4},
		}
		for _, m := range methods {
			fit := 0
			var names []string
			for _, d := range demands {
				if d.IC <= m.ic && d.OC <= m.oc {
					fit++
					names = append(names, d.Name)
				}
			}
			r.Table.AddRow(a, m.name, m.ic, m.oc, strings.Join(names, " "))
			r.Summary[fmt.Sprintf("%s/%s/mappable", a, m.name)] = float64(fit)
		}
	}
	r.Table.Notes = append(r.Table.Notes,
		"the paper's point: no contemporary array maps the later VGG-13 layers in one cycle, so tiling is mandatory")
	return r, nil
}

// fig5Layer is the running example of the paper's Fig. 5: 3×3 kernel,
// IC 42, OC 96 on a 512×256 array.
func fig5Layer(ifm int) core.Layer {
	return core.Layer{Name: fmt.Sprintf("example-%d", ifm),
		IW: ifm, IH: ifm, KW: 3, KH: 3, IC: 42, OC: 96}
}

var fig5Array = core.Array{Rows: 512, Cols: 256}

// Fig5a reproduces the worked example of Fig. 5(a): on a 4×4 IFM, im2col
// needs 4 cycles, the 4×3 rectangular window 2 cycles, and the 4×4 square
// window 4 cycles (its 672 rows and 384 columns overflow the 512×256 array,
// doubling AR and AC).
func Fig5a() (*Result, error) {
	l := fig5Layer(4)
	r := &Result{
		ID:    "fig5a",
		Paper: "Fig. 5(a): cycle calculation example (512x256 array, 3x3 kernel, IC 42, OC 96, 4x4 IFM)",
		Table: &textplot.Table{
			Title:  "Computing-cycle breakdown",
			Header: []string{"mapping", "rows needed", "cols needed", "N_PW", "AR", "AC", "cycles"},
		},
		Summary: map[string]float64{},
	}
	im, err := core.Im2col(l, fig5Array)
	if err != nil {
		return nil, err
	}
	r.Table.AddRow("im2col 3x3", l.KernelRows(), l.OC, im.NPW, im.AR, im.AC, im.Cycles)
	r.Summary["im2col/cycles"] = float64(im.Cycles)
	for _, pw := range []core.Window{{W: 4, H: 3}, {W: 4, H: 4}} {
		m, err := core.VW(l, fig5Array, pw)
		if err != nil {
			return nil, err
		}
		rows := pw.Area() * l.IC
		cols := m.Nw() * l.OC
		r.Table.AddRow("window "+pw.String(), rows, cols, m.NPW, m.AR, m.AC, m.Cycles)
		r.Summary[pw.String()+"/cycles"] = float64(m.Cycles)
	}
	return r, nil
}

// Fig5b reproduces Fig. 5(b): speedup over im2col of the fixed 4×4 square
// window versus the 6×3 and 4×3 rectangular windows as the IFM grows over
// the sizes VGGNet uses.
func Fig5b() (*Result, error) {
	sizes := []int{7, 8, 14, 16, 28, 32, 56, 64, 112, 128, 224, 256}
	windows := []core.Window{{W: 4, H: 4}, {W: 6, H: 3}, {W: 4, H: 3}}
	r := &Result{
		ID:    "fig5b",
		Paper: "Fig. 5(b): square vs rectangular window speedup over IFM sizes",
		Table: &textplot.Table{
			Title:  "Speedup over im2col (512x256 array, 3x3 kernel, IC 42, OC 96)",
			Header: []string{"IFM", "4x4 square", "6x3 rect", "4x3 rect"},
		},
		Summary: map[string]float64{},
	}
	series := make([]textplot.Series, len(windows))
	for i, w := range windows {
		series[i] = textplot.Series{Name: w.String()}
	}
	var labels []string
	for _, s := range sizes {
		l := fig5Layer(s)
		im, err := core.Im2col(l, fig5Array)
		if err != nil {
			return nil, err
		}
		row := []any{s}
		for i, w := range windows {
			m, err := core.VW(l, fig5Array, w)
			if err != nil {
				return nil, err
			}
			sp := m.Speedup(im)
			row = append(row, fmt.Sprintf("%.2f", sp))
			series[i].Values = append(series[i].Values, sp)
		}
		r.Table.AddRow(row...)
		labels = append(labels, fmt.Sprint(s))
	}
	r.Charts = append(r.Charts,
		textplot.Line("speedup vs IFM size", labels, series, 12))
	// Paper highlight: at IFM 14 the 4×3 window is ~2× the 4×4 window.
	i14 := 2 // index of size 14
	r.Summary["ifm14/4x3-over-4x4"] = series[2].Values[i14] / series[0].Values[i14]
	r.Summary["ifm14/4x3-speedup"] = series[2].Values[i14]
	r.Summary["ifm14/4x4-speedup"] = series[0].Values[i14]
	return r, nil
}

// Fig7a reproduces Fig. 7(a): tiled input channels (eq. 4) versus
// parallel-window area for 128/256/512-row arrays.
func Fig7a() (*Result, error) {
	rows := []int{128, 256, 512}
	r := &Result{
		ID:    "fig7a",
		Paper: "Fig. 7(a): tiled ICs vs parallel window size",
		Table: &textplot.Table{
			Title:  "ICt = floor(rows / window area)   (eq. 4)",
			Header: []string{"window area", "128 rows", "256 rows", "512 rows"},
		},
		Summary: map[string]float64{},
	}
	series := make([]textplot.Series, len(rows))
	var labels []string
	for i, rw := range rows {
		series[i] = textplot.Series{Name: fmt.Sprintf("%d rows", rw)}
	}
	for area := 9; area <= 76; area++ {
		row := []any{area}
		for i, rw := range rows {
			ict := rw / area
			row = append(row, ict)
			series[i].Values = append(series[i].Values, float64(ict))
		}
		r.Table.AddRow(row...)
		labels = append(labels, fmt.Sprint(area))
	}
	// Chart only every 6th point to keep the x-axis readable.
	var cl []string
	cs := make([]textplot.Series, len(series))
	for i := range cs {
		cs[i] = textplot.Series{Name: series[i].Name}
	}
	for j := 0; j < len(labels); j += 6 {
		cl = append(cl, labels[j])
		for i := range series {
			cs[i].Values = append(cs[i].Values, series[i].Values[j])
		}
	}
	r.Charts = append(r.Charts, textplot.Line("tiled ICs vs window area", cl, cs, 10))
	r.Summary["area9/512rows"] = 512 / 9
	r.Summary["area76/512rows"] = 512 / 76
	return r, nil
}

// Fig7b reproduces Fig. 7(b): tiled output channels (eq. 6) versus the
// number of windows in the parallel window for 128/256/512-column arrays.
func Fig7b() (*Result, error) {
	cols := []int{128, 256, 512}
	r := &Result{
		ID:    "fig7b",
		Paper: "Fig. 7(b): tiled OCs vs windows per parallel window",
		Table: &textplot.Table{
			Title:  "OCt = floor(cols / Nw)   (eq. 6)",
			Header: []string{"windows (Nw)", "128 cols", "256 cols", "512 cols"},
		},
		Summary: map[string]float64{},
	}
	series := make([]textplot.Series, len(cols))
	for i, c := range cols {
		series[i] = textplot.Series{Name: fmt.Sprintf("%d cols", c)}
	}
	var labels []string
	for nw := 1; nw <= 15; nw += 2 {
		row := []any{nw}
		for i, c := range cols {
			oct := c / nw
			row = append(row, oct)
			series[i].Values = append(series[i].Values, float64(oct))
		}
		r.Table.AddRow(row...)
		labels = append(labels, fmt.Sprint(nw))
	}
	r.Charts = append(r.Charts, textplot.Line("tiled OCs vs Nw", labels, series, 10))
	r.Summary["nw1/512cols"] = 512
	r.Summary["nw15/512cols"] = float64(512 / 15)
	return r, nil
}
