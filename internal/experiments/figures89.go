package experiments

import (
	"fmt"

	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/textplot"
)

// Fig8a reproduces Fig. 8(a): per-layer speedup over im2col of the SDK
// baseline and VW-SDK on VGG-13 and ResNet-18 with array a (paper: 512×512).
// It runs on the shared compiler; Fig8aWith picks the pipeline.
func Fig8a(a core.Array) (*Result, error) { return Fig8aWith(DefaultCompiler(), a) }

// Fig8aWith is Fig8a on an explicit compile pipeline.
func Fig8aWith(c *compile.Compiler, a core.Array) (*Result, error) {
	r := &Result{
		ID:    "fig8a",
		Paper: "Fig. 8(a): per-layer speedup normalized to im2col",
		Table: &textplot.Table{
			Title:  fmt.Sprintf("Per-layer speedup vs im2col (array %s)", a),
			Header: []string{"net", "layer", "im2col cycles", "SDK speedup", "VW-SDK speedup"},
		},
		Summary: map[string]float64{},
	}
	for _, n := range []model.Network{model.VGG13(), model.ResNet18()} {
		ts, err := mapNetwork(c, n, a)
		if err != nil {
			return nil, err
		}
		cats := make([]string, 0, len(ts)+1)
		sdkS := textplot.Series{Name: "SDK"}
		vwS := textplot.Series{Name: "VW-SDK"}
		for i, t := range ts {
			sdk := t.sdk.Speedup(t.im)
			vw := t.vw.Speedup(t.im)
			r.Table.AddRow(n.Name, n.Layers[i].Name, t.im.Cycles,
				fmt.Sprintf("%.2f", sdk), fmt.Sprintf("%.2f", vw))
			cats = append(cats, n.Layers[i].Name)
			sdkS.Values = append(sdkS.Values, sdk)
			vwS.Values = append(vwS.Values, vw)
		}
		im, sdk, vw := totals(ts)
		totSDK := float64(im) / float64(sdk)
		totVW := float64(im) / float64(vw)
		r.Table.AddRow(n.Name, "total", im,
			fmt.Sprintf("%.2f", totSDK), fmt.Sprintf("%.2f", totVW))
		cats = append(cats, "total")
		sdkS.Values = append(sdkS.Values, totSDK)
		vwS.Values = append(vwS.Values, totVW)
		r.Charts = append(r.Charts, textplot.GroupedBars(
			fmt.Sprintf("%s speedup vs im2col", n.Name), cats,
			[]textplot.Series{sdkS, vwS}, 40))
		key := netKey(n)
		r.Summary[key+"/sdk-total-speedup"] = totSDK
		r.Summary[key+"/vw-total-speedup"] = totVW
	}
	return r, nil
}

// Fig8b reproduces Fig. 8(b): whole-network speedup over im2col for the
// paper's five array sizes. It runs on the shared compiler; Fig8bWith
// picks the pipeline.
func Fig8b() (*Result, error) { return Fig8bWith(DefaultCompiler()) }

// Fig8bWith is Fig8b on an explicit compile pipeline.
func Fig8bWith(c *compile.Compiler) (*Result, error) {
	r := &Result{
		ID:    "fig8b",
		Paper: "Fig. 8(b): total speedup across PIM array sizes",
		Table: &textplot.Table{
			Title:  "Whole-network speedup vs im2col",
			Header: []string{"net", "array", "im2col cycles", "SDK speedup", "VW-SDK speedup"},
		},
		Summary: map[string]float64{},
	}
	for _, n := range []model.Network{model.VGG13(), model.ResNet18()} {
		cats := make([]string, 0, len(PaperArrays))
		sdkS := textplot.Series{Name: "SDK"}
		vwS := textplot.Series{Name: "VW-SDK"}
		for _, a := range PaperArrays {
			ts, err := mapNetwork(c, n, a)
			if err != nil {
				return nil, err
			}
			im, sdk, vw := totals(ts)
			sdkSp := float64(im) / float64(sdk)
			vwSp := float64(im) / float64(vw)
			r.Table.AddRow(n.Name, a, im,
				fmt.Sprintf("%.2f", sdkSp), fmt.Sprintf("%.2f", vwSp))
			cats = append(cats, a.String())
			sdkS.Values = append(sdkS.Values, sdkSp)
			vwS.Values = append(vwS.Values, vwSp)
			r.Summary[fmt.Sprintf("%s/%s/vw-speedup", netKey(n), a)] = vwSp
			r.Summary[fmt.Sprintf("%s/%s/sdk-speedup", netKey(n), a)] = sdkSp
		}
		r.Charts = append(r.Charts, textplot.GroupedBars(
			fmt.Sprintf("%s speedup by array size", n.Name), cats,
			[]textplot.Series{sdkS, vwS}, 40))
	}
	return r, nil
}

// Fig9a reproduces Fig. 9(a): average array utilization (eq. 9) of im2col,
// SDK and VW-SDK on VGG-13 layers 1–6 with array a (paper: 512×512). It
// runs on the shared compiler; Fig9aWith picks the pipeline.
func Fig9a(a core.Array) (*Result, error) { return Fig9aWith(DefaultCompiler(), a) }

// Fig9aWith is Fig9a on an explicit compile pipeline.
func Fig9aWith(c *compile.Compiler, a core.Array) (*Result, error) {
	r := &Result{
		ID:    "fig9a",
		Paper: "Fig. 9(a): utilization in VGG-13 conv layers 1-6",
		Table: &textplot.Table{
			Title:  fmt.Sprintf("Utilization %% (array %s)", a),
			Header: []string{"layer", "im2col", "SDK", "VW-SDK", "VW-SDK peak"},
			Notes: []string{
				"utilization counts weight-holding cells per eq. 9, averaged over AR x AC tiles",
				"the paper's 'up to 73.8% at layer 5' is the peak (full-tile) value",
			},
		},
		Summary: map[string]float64{},
	}
	n := model.VGG13()
	layers := n.Layers[:6]
	cats := make([]string, 0, len(layers))
	imS := textplot.Series{Name: "im2col"}
	sdkS := textplot.Series{Name: "SDK"}
	vwS := textplot.Series{Name: "VW-SDK"}
	for i, cl := range layers {
		t, err := mapLayer(c, cl.Layer, a)
		if err != nil {
			return nil, err
		}
		uIm, uSDK, uVW := t.im.Utilization(), t.sdk.Utilization(), t.vw.Utilization()
		r.Table.AddRow(cl.Name,
			fmt.Sprintf("%.1f", uIm), fmt.Sprintf("%.1f", uSDK),
			fmt.Sprintf("%.1f", uVW), fmt.Sprintf("%.1f", t.vw.PeakUtilization()))
		cats = append(cats, cl.Name)
		imS.Values = append(imS.Values, uIm)
		sdkS.Values = append(sdkS.Values, uSDK)
		vwS.Values = append(vwS.Values, uVW)
		r.Summary[fmt.Sprintf("layer%d/vw-util", i+1)] = uVW
		r.Summary[fmt.Sprintf("layer%d/im2col-util", i+1)] = uIm
	}
	t5, err := mapLayer(c, layers[4].Layer, a)
	if err != nil {
		return nil, err
	}
	r.Summary["layer5/vw-peak-util"] = t5.vw.PeakUtilization()
	r.Charts = append(r.Charts, textplot.GroupedBars(
		"VGG-13 utilization (%)", cats,
		[]textplot.Series{imS, sdkS, vwS}, 40))
	return r, nil
}

// Fig9b reproduces Fig. 9(b): utilization of VGG-13 layers 4 and 5 across
// array sizes. It runs on the shared compiler; Fig9bWith picks the pipeline.
func Fig9b() (*Result, error) { return Fig9bWith(DefaultCompiler()) }

// Fig9bWith is Fig9b on an explicit compile pipeline.
func Fig9bWith(c *compile.Compiler) (*Result, error) {
	arrays := []core.Array{
		{Rows: 128, Cols: 128},
		{Rows: 256, Cols: 256},
		{Rows: 512, Cols: 256},
		{Rows: 512, Cols: 512},
	}
	r := &Result{
		ID:    "fig9b",
		Paper: "Fig. 9(b): utilization of VGG-13 layers 4-5 across array sizes",
		Table: &textplot.Table{
			Title:  "Utilization %",
			Header: []string{"layer", "array", "im2col", "SDK", "VW-SDK"},
		},
		Summary: map[string]float64{},
	}
	n := model.VGG13()
	for _, li := range []int{3, 4} { // conv4, conv5
		cl := n.Layers[li]
		cats := make([]string, 0, len(arrays))
		imS := textplot.Series{Name: "im2col"}
		sdkS := textplot.Series{Name: "SDK"}
		vwS := textplot.Series{Name: "VW-SDK"}
		for _, a := range arrays {
			t, err := mapLayer(c, cl.Layer, a)
			if err != nil {
				return nil, err
			}
			uIm, uSDK, uVW := t.im.Utilization(), t.sdk.Utilization(), t.vw.Utilization()
			r.Table.AddRow(cl.Name, a,
				fmt.Sprintf("%.1f", uIm), fmt.Sprintf("%.1f", uSDK), fmt.Sprintf("%.1f", uVW))
			cats = append(cats, a.String())
			imS.Values = append(imS.Values, uIm)
			sdkS.Values = append(sdkS.Values, uSDK)
			vwS.Values = append(vwS.Values, uVW)
			r.Summary[fmt.Sprintf("%s/%s/vw-util", cl.Name, a)] = uVW
			r.Summary[fmt.Sprintf("%s/%s/im2col-util", cl.Name, a)] = uIm
		}
		r.Charts = append(r.Charts, textplot.GroupedBars(
			fmt.Sprintf("%s utilization (%%)", cl.Name), cats,
			[]textplot.Series{imS, sdkS, vwS}, 40))
	}
	return r, nil
}

func netKey(n model.Network) string {
	switch n.Name {
	case "VGG-13":
		return "vgg13"
	case "ResNet-18":
		return "resnet18"
	default:
		return n.Name
	}
}
