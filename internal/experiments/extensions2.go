package experiments

import (
	"fmt"

	"repro/internal/bitslice"
	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/textplot"
)

// Bitslice (extension E14) quantifies the cost of finite cell/DAC precision:
// weight slices shrink the per-window column budget (eq. 6) and bit-serial
// input passes multiply the cycles. The optimal window is re-searched at
// every precision, so the table also shows where the best window shape
// changes under slicing.
func Bitslice(a core.Array) (*Result, error) {
	precisions := []struct {
		name string
		p    bitslice.Precision
	}{
		{"ideal (1 slice, 1 pass)", bitslice.Full()},
		{"w4/c2 a4/d2", bitslice.Precision{WeightBits: 4, CellBits: 2, InputBits: 4, DACBits: 2}},
		{"w8/c2 a8/d2", bitslice.Precision{WeightBits: 8, CellBits: 2, InputBits: 8, DACBits: 2}},
		{"w8/c1 a8/d1", bitslice.Precision{WeightBits: 8, CellBits: 1, InputBits: 8, DACBits: 1}},
	}
	r := &Result{
		ID:    "bitslice",
		Paper: "Extension: VW-SDK under finite cell/DAC precision (bit slicing)",
		Table: &textplot.Table{
			Title: fmt.Sprintf("ResNet-18 total cycles under bit slicing (array %s)", a),
			Header: []string{"precision", "slices", "passes",
				"total cycles", "slowdown vs ideal", "conv1 window"},
			Notes: []string{
				"slices multiply the column demand (eq. 6); passes multiply cycles directly",
				"the optimal window is re-searched per precision",
			},
		},
		Summary: map[string]float64{},
	}
	layers := model.ResNet18().CoreLayers()
	var ideal int64
	for i, pc := range precisions {
		var total int64
		var conv1 string
		for li, l := range layers {
			res, err := bitslice.Search(l, a, pc.p)
			if err != nil {
				return nil, err
			}
			total += res.Best.Cycles
			if li == 0 {
				conv1 = res.Best.PW.String()
			}
		}
		if i == 0 {
			ideal = total
		}
		slow := float64(total) / float64(ideal)
		r.Table.AddRow(pc.name, pc.p.WeightSlices(), pc.p.InputPasses(),
			total, fmt.Sprintf("%.1fx", slow), conv1)
		r.Summary[fmt.Sprintf("p%d/cycles", i)] = float64(total)
		r.Summary[fmt.Sprintf("p%d/slowdown", i)] = slow
	}
	return r, nil
}

// Chip (extension E15) scales each network across multi-array chips,
// comparing VW-SDK and im2col makespans. It runs on the shared engine;
// ChipWith picks the searcher.
func Chip(a core.Array) (*Result, error) { return ChipWith(DefaultSearcher(), a) }

// ChipWith is Chip on an explicit searcher.
func ChipWith(s core.Searcher, a core.Array) (*Result, error) {
	counts := []int{1, 2, 4, 8, 16, 32, 64}
	r := &Result{
		ID:    "chip",
		Paper: "Extension: multi-array chip scheduling (makespan in computing cycles)",
		Table: &textplot.Table{
			Title:  fmt.Sprintf("Layer-sequential network makespan (arrays of %s)", a),
			Header: []string{"net", "arrays", "im2col makespan", "VW-SDK makespan", "VW speedup", "VW scaling"},
			Notes: []string{
				"scaling = single-array VW makespan / this VW makespan",
				"scaling saturates once every tile is replicated across spare arrays per layer",
			},
		},
		Summary: map[string]float64{},
	}
	for _, n := range []model.Network{model.VGG13(), model.ResNet18()} {
		ts, err := mapNetwork(s, n, a)
		if err != nil {
			return nil, err
		}
		imMaps := make([]core.Mapping, len(ts))
		vwMaps := make([]core.Mapping, len(ts))
		for i, t := range ts {
			imMaps[i] = t.im
			vwMaps[i] = t.vw
		}
		imScale, err := chip.Scale(imMaps, counts)
		if err != nil {
			return nil, err
		}
		vwScale, err := chip.Scale(vwMaps, counts)
		if err != nil {
			return nil, err
		}
		cats := make([]string, 0, len(counts))
		scaling := textplot.Series{Name: "VW-SDK scaling"}
		for i, c := range counts {
			r.Table.AddRow(n.Name, c, imScale.Makespan[i], vwScale.Makespan[i],
				fmt.Sprintf("%.2f", float64(imScale.Makespan[i])/float64(vwScale.Makespan[i])),
				fmt.Sprintf("%.2f", vwScale.Speedup[i]))
			cats = append(cats, fmt.Sprint(c))
			scaling.Values = append(scaling.Values, vwScale.Speedup[i])
			key := fmt.Sprintf("%s/arrays%d", netKey(n), c)
			r.Summary[key+"/vw-makespan"] = float64(vwScale.Makespan[i])
			r.Summary[key+"/vw-scaling"] = vwScale.Speedup[i]
		}
		r.Charts = append(r.Charts, textplot.GroupedBars(
			fmt.Sprintf("%s VW-SDK scaling over chip size", n.Name),
			cats, []textplot.Series{scaling}, 40))
	}
	return r, nil
}

// Reuse (extension E17) quantifies the input-reuse motivation of the
// paper's Fig. 1: average DAC loads per distinct IFM element for each
// mapping scheme on ResNet-18. It runs on the shared engine; ReuseWith
// picks the searcher.
func Reuse(a core.Array) (*Result, error) { return ReuseWith(DefaultSearcher(), a) }

// ReuseWith is Reuse on an explicit searcher.
func ReuseWith(s core.Searcher, a core.Array) (*Result, error) {
	r := &Result{
		ID:    "reuse",
		Paper: "Extension: input-feature-map reuse (Fig. 1 motivation, quantified)",
		Table: &textplot.Table{
			Title:  fmt.Sprintf("DAC loads per distinct IFM element (array %s)", a),
			Header: []string{"layer", "im2col", "SDK", "VW-SDK"},
			Notes: []string{
				"1.0 = each needed input element crosses a DAC exactly once",
				"parallel windows share one input patch across their duplicated kernels",
			},
		},
		Summary: map[string]float64{},
	}
	for _, cl := range model.ResNet18().CoreLayers() {
		t, err := mapLayer(s, cl, a)
		if err != nil {
			return nil, err
		}
		row := []any{cl.Name}
		for _, m := range []core.Mapping{t.im, t.sdk, t.vw} {
			p, err := mapping.NewPlan(m)
			if err != nil {
				return nil, err
			}
			lpe := p.InputReuse().LoadsPerElement
			row = append(row, fmt.Sprintf("%.2f", lpe))
			r.Summary[fmt.Sprintf("%s/%v/loads", cl.Name, m.Scheme)] = lpe
		}
		r.Table.AddRow(row...)
	}
	return r, nil
}
