package experiments

import (
	"context"
	"fmt"

	"repro/internal/bitslice"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/textplot"
)

// Bitslice (extension E14) quantifies the cost of finite cell/DAC precision:
// weight slices shrink the per-window column budget (eq. 6) and bit-serial
// input passes multiply the cycles. The optimal window is re-searched at
// every precision, so the table also shows where the best window shape
// changes under slicing.
func Bitslice(a core.Array) (*Result, error) {
	precisions := []struct {
		name string
		p    bitslice.Precision
	}{
		{"ideal (1 slice, 1 pass)", bitslice.Full()},
		{"w4/c2 a4/d2", bitslice.Precision{WeightBits: 4, CellBits: 2, InputBits: 4, DACBits: 2}},
		{"w8/c2 a8/d2", bitslice.Precision{WeightBits: 8, CellBits: 2, InputBits: 8, DACBits: 2}},
		{"w8/c1 a8/d1", bitslice.Precision{WeightBits: 8, CellBits: 1, InputBits: 8, DACBits: 1}},
	}
	r := &Result{
		ID:    "bitslice",
		Paper: "Extension: VW-SDK under finite cell/DAC precision (bit slicing)",
		Table: &textplot.Table{
			Title: fmt.Sprintf("ResNet-18 total cycles under bit slicing (array %s)", a),
			Header: []string{"precision", "slices", "passes",
				"total cycles", "slowdown vs ideal", "conv1 window"},
			Notes: []string{
				"slices multiply the column demand (eq. 6); passes multiply cycles directly",
				"the optimal window is re-searched per precision",
			},
		},
		Summary: map[string]float64{},
	}
	layers := model.ResNet18().CoreLayers()
	var ideal int64
	for i, pc := range precisions {
		var total int64
		var conv1 string
		for li, l := range layers {
			res, err := bitslice.Search(l, a, pc.p)
			if err != nil {
				return nil, err
			}
			total += res.Best.Cycles
			if li == 0 {
				conv1 = res.Best.PW.String()
			}
		}
		if i == 0 {
			ideal = total
		}
		slow := float64(total) / float64(ideal)
		r.Table.AddRow(pc.name, pc.p.WeightSlices(), pc.p.InputPasses(),
			total, fmt.Sprintf("%.1fx", slow), conv1)
		r.Summary[fmt.Sprintf("p%d/cycles", i)] = float64(total)
		r.Summary[fmt.Sprintf("p%d/slowdown", i)] = slow
	}
	return r, nil
}

// Chip (extension E15) scales each network across multi-array chips,
// comparing VW-SDK and im2col makespans. It runs on the shared compiler;
// ChipWith picks the pipeline.
func Chip(a core.Array) (*Result, error) { return ChipWith(DefaultCompiler(), a) }

// ChipWith is Chip on an explicit compile pipeline.
func ChipWith(c *compile.Compiler, a core.Array) (*Result, error) {
	counts := []int{1, 2, 4, 8, 16, 32, 64}
	r := &Result{
		ID:    "chip",
		Paper: "Extension: multi-array chip scheduling (makespan in computing cycles)",
		Table: &textplot.Table{
			Title:  fmt.Sprintf("Layer-sequential network makespan (arrays of %s)", a),
			Header: []string{"net", "arrays", "im2col makespan", "VW-SDK makespan", "VW speedup", "VW scaling"},
			Notes: []string{
				"scaling = single-array VW makespan / this VW makespan",
				"scaling saturates once every tile is replicated across spare arrays per layer",
			},
		},
		Summary: map[string]float64{},
	}
	for _, n := range []model.Network{model.VGG13(), model.ResNet18()} {
		// One compile per (scheme, chip size); the per-layer searches behind
		// every chip size are served once from the compiler's cache.
		imSpans := make([]int64, len(counts))
		vwSpans := make([]int64, len(counts))
		for i, count := range counts {
			imPlan, err := c.Compile(context.Background(), compile.NewRequest(n, a, compile.Options{Scheme: compile.Im2col, Arrays: count}))
			if err != nil {
				return nil, err
			}
			vwPlan, err := c.Compile(context.Background(), compile.NewRequest(n, a, compile.Options{Arrays: count}))
			if err != nil {
				return nil, err
			}
			imSpans[i] = imPlan.Totals.Makespan
			vwSpans[i] = vwPlan.Totals.Makespan
		}
		cats := make([]string, 0, len(counts))
		scaling := textplot.Series{Name: "VW-SDK scaling"}
		for i, count := range counts {
			vwScaling := float64(vwSpans[0]) / float64(vwSpans[i])
			r.Table.AddRow(n.Name, count, imSpans[i], vwSpans[i],
				fmt.Sprintf("%.2f", float64(imSpans[i])/float64(vwSpans[i])),
				fmt.Sprintf("%.2f", vwScaling))
			cats = append(cats, fmt.Sprint(count))
			scaling.Values = append(scaling.Values, vwScaling)
			key := fmt.Sprintf("%s/arrays%d", netKey(n), count)
			r.Summary[key+"/vw-makespan"] = float64(vwSpans[i])
			r.Summary[key+"/vw-scaling"] = vwScaling
		}
		r.Charts = append(r.Charts, textplot.GroupedBars(
			fmt.Sprintf("%s VW-SDK scaling over chip size", n.Name),
			cats, []textplot.Series{scaling}, 40))
	}
	return r, nil
}

// Reuse (extension E17) quantifies the input-reuse motivation of the
// paper's Fig. 1: average DAC loads per distinct IFM element for each
// mapping scheme on ResNet-18. It runs on the shared compiler; ReuseWith
// picks the pipeline.
func Reuse(a core.Array) (*Result, error) { return ReuseWith(DefaultCompiler(), a) }

// ReuseWith is Reuse on an explicit compile pipeline.
func ReuseWith(c *compile.Compiler, a core.Array) (*Result, error) {
	r := &Result{
		ID:    "reuse",
		Paper: "Extension: input-feature-map reuse (Fig. 1 motivation, quantified)",
		Table: &textplot.Table{
			Title:  fmt.Sprintf("DAC loads per distinct IFM element (array %s)", a),
			Header: []string{"layer", "im2col", "SDK", "VW-SDK"},
			Notes: []string{
				"1.0 = each needed input element crosses a DAC exactly once",
				"parallel windows share one input patch across their duplicated kernels",
			},
		},
		Summary: map[string]float64{},
	}
	// Compile ResNet-18 once per scheme with physical plans: the reuse
	// numbers come straight from each layer's weight-placement plan.
	n := model.ResNet18()
	plans := make([]*compile.NetworkPlan, 0, 3)
	for _, s := range []compile.Scheme{compile.Im2col, compile.SDK, compile.VWSDK} {
		p, err := c.Compile(context.Background(), compile.NewRequest(n, a, compile.Options{Scheme: s, Plans: true}))
		if err != nil {
			return nil, err
		}
		plans = append(plans, p)
	}
	for i, cl := range n.Layers {
		row := []any{cl.Name}
		for _, p := range plans {
			lp := p.Layers[i]
			lpe := lp.Plan.InputReuse().LoadsPerElement
			row = append(row, fmt.Sprintf("%.2f", lpe))
			r.Summary[fmt.Sprintf("%s/%v/loads", cl.Name, lp.Search.Best.Scheme)] = lpe
		}
		r.Table.AddRow(row...)
	}
	return r, nil
}
