package experiments

import (
	"context"
	"fmt"

	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/textplot"
)

// Ablation (extension E11) attributes VW-SDK's gain between its two ideas —
// rectangular windows and channel tiling — by compiling each network under
// the restricted variants of the search, with the SMD baseline for context.
// It runs on the shared compiler; AblationWith picks the pipeline.
func Ablation(a core.Array) (*Result, error) { return AblationWith(DefaultCompiler(), a) }

// AblationWith is Ablation on an explicit compile pipeline.
func AblationWith(c *compile.Compiler, a core.Array) (*Result, error) {
	r := &Result{
		ID:    "ablation",
		Paper: "Extension: ablation of VW-SDK's two ideas (DESIGN.md §5)",
		Table: &textplot.Table{
			Title:  fmt.Sprintf("Total cycles and speedup vs im2col (array %s)", a),
			Header: []string{"net", "mapping", "total cycles", "speedup"},
			Notes: []string{
				"square+tiled: channel tiling only (square windows)",
				"rect+full-channels: rectangular windows with the SDK baseline's whole-channel rule",
			},
		},
		Summary: map[string]float64{},
	}
	// Each ablation is one compile of the whole network; the pipeline's
	// totals replace the old hand-summed per-layer loops.
	ablations := []struct {
		name string
		opts compile.Options
	}{
		{"SMD", compile.Options{Scheme: compile.SMD}},
		{"SDK (square, full channels)", compile.Options{Scheme: compile.SDK}},
		{"square + tiled channels", compile.Options{Variant: core.VariantSquareTiled}},
		{"rect + full channels", compile.Options{Variant: core.VariantRectFullChannel}},
		{"VW-SDK (full)", compile.Options{}},
	}
	for _, n := range []model.Network{model.VGG13(), model.ResNet18()} {
		cycles := make([]int64, len(ablations))
		var im int64
		for i, ab := range ablations {
			p, err := c.Compile(context.Background(), compile.NewRequest(n, a, ab.opts))
			if err != nil {
				return nil, err
			}
			cycles[i] = p.Totals.Cycles
			im = p.Totals.Im2colCycles
		}
		r.Table.AddRow(n.Name, "im2col", im, "1.00")
		for i, ab := range ablations {
			sp := float64(im) / float64(cycles[i])
			r.Table.AddRow(n.Name, ab.name, cycles[i], fmt.Sprintf("%.2f", sp))
		}
		key := netKey(n)
		r.Summary[key+"/smd-cycles"] = float64(cycles[0])
		r.Summary[key+"/square-tiled-cycles"] = float64(cycles[2])
		r.Summary[key+"/rect-full-cycles"] = float64(cycles[3])
		r.Summary[key+"/vw-cycles"] = float64(cycles[4])
	}
	return r, nil
}

// Energy (extension E12) estimates per-inference latency and energy for
// im2col, SDK and VW-SDK under the default (full-array peripherals) model
// and reports the conversion-dominated split the paper cites. It runs on
// the shared compiler; EnergyWith picks the pipeline.
func Energy(a core.Array) (*Result, error) { return EnergyWith(DefaultCompiler(), a) }

// EnergyWith is Energy on an explicit compile pipeline.
func EnergyWith(c *compile.Compiler, a core.Array) (*Result, error) {
	r := &Result{
		ID:    "energy",
		Paper: "Extension: latency/energy estimate (conversion-dominated, Section II-B)",
		Table: &textplot.Table{
			Title: fmt.Sprintf("Per-inference latency and energy (array %s, synthetic constants)", a),
			Header: []string{"net", "mapping", "cycles", "latency",
				"energy (uJ)", "conversion %", "gated energy (uJ)"},
			Notes: []string{
				"full-array peripherals (paper's implicit model): energy tracks cycles",
				"gated peripherals: only the programmed footprint converts; VW-SDK's wider cycles close the gap",
			},
		},
		Summary: map[string]float64{},
	}
	schemes := []struct {
		name   string
		scheme compile.Scheme
	}{
		{"im2col", compile.Im2col},
		{"SDK", compile.SDK},
		{"VW-SDK", compile.VWSDK},
	}
	for _, n := range []model.Network{model.VGG13(), model.ResNet18()} {
		for _, s := range schemes {
			// Two compiles per scheme — default and gated peripherals; the
			// searches behind them are shared through the compiler's cache.
			p, err := c.Compile(context.Background(), compile.NewRequest(n, a, compile.Options{Scheme: s.scheme}))
			if err != nil {
				return nil, err
			}
			gp, err := c.Compile(context.Background(), compile.NewRequest(n, a, compile.Options{Scheme: s.scheme, GatePeripherals: true}))
			if err != nil {
				return nil, err
			}
			rep, gRep := p.Totals.Energy, gp.Totals.Energy
			r.Table.AddRow(n.Name, s.name, rep.Cycles, rep.Latency,
				fmt.Sprintf("%.2f", rep.EnergyTotal*1e6),
				fmt.Sprintf("%.1f", 100*rep.ConversionFraction()),
				fmt.Sprintf("%.2f", gRep.EnergyTotal*1e6))
			key := fmt.Sprintf("%s/%s", netKey(n), s.name)
			r.Summary[key+"/energy-uj"] = rep.EnergyTotal * 1e6
			r.Summary[key+"/conversion-frac"] = rep.ConversionFraction()
		}
	}
	return r, nil
}

// VerifyFunctional (extension E13) executes sampled layers on the simulated
// crossbar under all four schemes and confirms bit-exact equivalence with
// the reference convolution, plus exact cycle agreement with the analytic
// model.
func VerifyFunctional(seed uint64) (*Result, error) {
	cases := []struct {
		name string
		l    core.Layer
		a    core.Array
	}{
		{"small mixed", core.Layer{Name: "small", IW: 9, IH: 8, KW: 3, KH: 3, IC: 5, OC: 7},
			core.Array{Rows: 64, Cols: 48}},
		{"rect kernel", core.Layer{Name: "rk", IW: 10, IH: 9, KW: 3, KH: 2, IC: 4, OC: 5},
			core.Array{Rows: 64, Cols: 48}},
		{"channel heavy", core.Layer{Name: "ch", IW: 8, IH: 8, KW: 3, KH: 3, IC: 40, OC: 24},
			core.Array{Rows: 96, Cols: 64}},
		{"resnet conv5 512x512", core.Layer{Name: "conv5", IW: 7, IH: 7, KW: 3, KH: 3, IC: 512, OC: 512},
			core.Array{Rows: 512, Cols: 512}},
	}
	r := &Result{
		ID:    "verify",
		Paper: "Extension: functional verification of every scheme on the crossbar simulator",
		Table: &textplot.Table{
			Title:  "Crossbar OFM vs reference convolution (exact integer comparison)",
			Header: []string{"case", "layer", "array", "schemes", "result"},
		},
		Summary: map[string]float64{},
	}
	pass := 0
	for _, c := range cases {
		res := "PASS"
		if err := mapping.VerifyAllSchemes(c.l, c.a, seed); err != nil {
			res = "FAIL: " + err.Error()
		} else {
			pass++
		}
		r.Table.AddRow(c.name, c.l.String(), c.a, "im2col+SMD+SDK+VW", res)
	}
	r.Summary["cases"] = float64(len(cases))
	r.Summary["passed"] = float64(pass)
	if pass != len(cases) {
		return r, fmt.Errorf("experiments: functional verification failed (%d/%d passed)",
			pass, len(cases))
	}
	return r, nil
}

// generators lists every experiment with the paper's default parameters, in
// DESIGN.md §4 order. Generators that search do so through the given
// compile pipeline; the purely arithmetic ones (Fig. 4, 5, 7) and the
// simulator- and precision-bound ones ignore it.
func generators(c *compile.Compiler) []generator {
	return []generator{
		{"table1", func() (*Result, error) { return TableIWith(c, Array512) }},
		{"fig4", Fig4},
		{"fig5a", Fig5a},
		{"fig5b", Fig5b},
		{"fig7a", Fig7a},
		{"fig7b", Fig7b},
		{"fig8a", func() (*Result, error) { return Fig8aWith(c, Array512) }},
		{"fig8b", func() (*Result, error) { return Fig8bWith(c) }},
		{"fig9a", func() (*Result, error) { return Fig9aWith(c, Array512) }},
		{"fig9b", func() (*Result, error) { return Fig9bWith(c) }},
		{"ablation", func() (*Result, error) { return AblationWith(c, Array512) }},
		{"energy", func() (*Result, error) { return EnergyWith(c, Array512) }},
		{"verify", func() (*Result, error) { return VerifyFunctional(0xbeef) }},
		{"bitslice", func() (*Result, error) { return Bitslice(Array512) }},
		{"chip", func() (*Result, error) { return ChipWith(c, Array512) }},
		{"reuse", func() (*Result, error) { return ReuseWith(c, Array512) }},
	}
}

// generator is one named experiment entry.
type generator struct {
	name string
	f    func() (*Result, error)
}

// IDs returns every experiment identifier, in run order.
func IDs() []string {
	gens := generators(nil) // names only; the generator closures never run
	ids := make([]string, len(gens))
	for i, g := range gens {
		ids[i] = g.name
	}
	return ids
}

// All regenerates every experiment on the shared compiler.
func All() ([]*Result, error) { return Run(DefaultCompiler()) }

// Run regenerates the experiments with the given ids (all of them when none
// are listed) through compile pipeline c, in DESIGN.md §4 order. Unknown
// ids error before anything runs.
func Run(c *compile.Compiler, ids ...string) ([]*Result, error) {
	gens := generators(c)
	if len(ids) > 0 {
		byName := make(map[string]generator, len(gens))
		for _, g := range gens {
			byName[g.name] = g
		}
		picked := make([]generator, 0, len(ids))
		for _, id := range ids {
			g, ok := byName[id]
			if !ok {
				return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
			}
			picked = append(picked, g)
		}
		gens = picked
	}
	out := make([]*Result, 0, len(gens))
	for _, g := range gens {
		res, err := g.f()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", g.name, err)
		}
		out = append(out, res)
	}
	return out, nil
}
