// Package bench is the standardized search-performance harness behind
// cmd/vwsdkbench: it times the breakpoint-pruned VW-SDK search against the
// brute-force sweep on a fixed workload set — the paper's Table-I zoo
// (VGG-13 and ResNet-18) on 256/512/1024 arrays, plus large-IFM stress
// layers the exhaustive sweep handles poorly — and reports the results as a
// machine-readable JSON document (BENCH_search.json) so the repository's
// perf trajectory is comparable across PRs and CI runs.
//
// The harness is deliberately self-contained (no testing.B): cmd/vwsdkbench
// must run as a plain binary in CI, support -benchtime 1x for smoke runs,
// and emit stable JSON. Timings are wall-clock per search; allocation counts
// are process-wide malloc deltas per operation (exact for the single-
// threaded search loops, approximate for the concurrent cold-compile
// pipeline).
package bench

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/obs"
)

// Schema identifies the BENCH_search.json document layout; bump on
// incompatible changes so cross-PR tooling can detect them.
const Schema = "vwsdk-bench/v1"

// Workload is one (layer, array) search timing target.
type Workload struct {
	// Name is the stable workload identifier, e.g. "VGG-13/conv1@512x512".
	Name string

	// Network names the zoo network the layer came from ("stress" for the
	// synthetic large-IFM layers).
	Network string

	Layer core.Layer
	Array core.Array

	// Stress marks synthetic large-IFM layers whose exhaustive sweep is too
	// slow to time routinely; only the pruned search is timed and the
	// exhaustive candidate count is computed analytically.
	Stress bool
}

// Standard returns the standardized workload set: every distinct Table-I
// layer shape of VGG-13 and ResNet-18 on square 256/512/1024 arrays, a
// representative slice of MobileNet-V2 (grouped/depthwise rows, which also
// report the dense-equivalent candidate counts), then the large-IFM stress
// layers (512×512 and beyond — IFMs on which the exhaustive sweep enumerates
// 10⁵–10⁶ candidates and was previously the cold-compile bottleneck).
func Standard() []Workload {
	arrays := []core.Array{{Rows: 256, Cols: 256}, {Rows: 512, Cols: 512}, {Rows: 1024, Cols: 1024}}
	var out []Workload
	for _, n := range []model.Network{model.VGG13(), model.ResNet18()} {
		for _, a := range arrays {
			for _, cl := range n.Layers {
				out = append(out, Workload{
					Name:    fmt.Sprintf("%s/%s@%s", n.Name, cl.Name, a),
					Network: n.Name,
					Layer:   cl.Layer,
					Array:   a,
				})
			}
		}
	}
	// MobileNet-V2 rows: the stem plus one depthwise layer per IFM scale
	// (strided and unstrided) and the widest expand, kept to a slice so the
	// exhaustive comparison stays timeable — the remaining shapes repeat
	// these geometries at other channel widths.
	mobile := map[string]bool{
		"conv1": true, "dw1": true, "dw2_1": true, "pj2_1": true,
		"dw144": true, "dw384": true, "ex64_384": true, "dw960": true,
	}
	for _, a := range arrays {
		for _, cl := range model.MobileNetV2().Layers {
			if !mobile[cl.Name] {
				continue
			}
			out = append(out, Workload{
				Name:    fmt.Sprintf("MobileNet-V2/%s@%s", cl.Name, a),
				Network: "MobileNet-V2",
				Layer:   cl.Layer,
				Array:   a,
			})
		}
	}
	stress := []core.Layer{
		{Name: "hd-512", IW: 512, IH: 512, KW: 3, KH: 3, IC: 64, OC: 64},
		{Name: "hd-768", IW: 768, IH: 768, KW: 3, KH: 3, IC: 32, OC: 64},
		{Name: "hd-1024", IW: 1024, IH: 1024, KW: 3, KH: 3, IC: 16, OC: 32},
	}
	for _, l := range stress {
		for _, a := range []core.Array{{Rows: 512, Cols: 512}, {Rows: 1024, Cols: 1024}} {
			out = append(out, Workload{
				Name:    fmt.Sprintf("stress/%s@%s", l.Name, a),
				Network: "stress",
				Layer:   l,
				Array:   a,
				Stress:  true,
			})
		}
	}
	return out
}

// LayerResult is one workload's measurements in the report.
type LayerResult struct {
	Workload string `json:"workload"`
	Network  string `json:"network"`
	Layer    string `json:"layer"`
	Shape    string `json:"shape"`
	Array    string `json:"array"`
	Stress   bool   `json:"stress,omitempty"`

	// NsPerOp/AllocsPerOp/Iters time the breakpoint-pruned search.
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	Iters       int64 `json:"iters"`

	// CandidatesCosted is Result.Evaluated (cost classes costed by the
	// pruned search); CandidatesFeasible is Result.Swept (feasible windows
	// the exhaustive sweep costs); CandidatesExhaustive is the full
	// candidate enumeration the exhaustive sweep hands to the cost model.
	CandidatesCosted     int     `json:"candidates_costed"`
	CandidatesFeasible   int     `json:"candidates_feasible"`
	CandidatesExhaustive int64   `json:"candidates_exhaustive"`
	Reduction            float64 `json:"reduction"`

	// SearchPath names the search implementation the router chose
	// ("closed-form" for dense unit-stride layers, "pruned" otherwise);
	// CostModelEvals counts the cost-model calls it actually paid — one per
	// class for the pruned enumerator, at most one (the argmin
	// materialization) for the closed form.
	SearchPath     string `json:"search_path"`
	CostModelEvals int    `json:"cost_model_evals"`

	// DenseEquivalentCosted/DenseEquivalentFeasible (grouped layers only)
	// are the pruned search's candidate statistics for the same geometry
	// with grouping dropped. Window feasibility is group-independent, so
	// the feasible counts must match; the cost-class count may differ
	// because the per-group channel caps move the class breakpoints.
	DenseEquivalentCosted   int `json:"dense_equivalent_costed,omitempty"`
	DenseEquivalentFeasible int `json:"dense_equivalent_feasible,omitempty"`

	// ExhaustiveNsPerOp times the brute-force sweep (omitted for stress
	// workloads); SpeedupVsExhaustive is the wall-clock ratio.
	ExhaustiveNsPerOp   int64   `json:"exhaustive_ns_per_op,omitempty"`
	SpeedupVsExhaustive float64 `json:"speedup_vs_exhaustive,omitempty"`

	// Cycles and Tile anchor the measurement to the mapping the search
	// chose, so a perf regression hunt can spot result drift immediately.
	Cycles int64  `json:"cycles"`
	Tile   string `json:"tile"`
}

// ColdCompileResult times the whole compile pipeline with a cold engine —
// the /v1/compile cold path — under pruned and exhaustive search.
type ColdCompileResult struct {
	Network             string  `json:"network"`
	Array               string  `json:"array"`
	NsPerOp             int64   `json:"ns_per_op"`
	AllocsPerOp         int64   `json:"allocs_per_op"`
	ExhaustiveNsPerOp   int64   `json:"exhaustive_ns_per_op"`
	SpeedupVsExhaustive float64 `json:"speedup_vs_exhaustive"`
}

// Report is the BENCH_search.json document.
type Report struct {
	Schema    string `json:"schema"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	Benchtime string `json:"benchtime"`

	Workloads   []LayerResult       `json:"workloads"`
	ColdCompile []ColdCompileResult `json:"cold_compile"`

	// MaxTable1Reduction is the best candidates_exhaustive/candidates_costed
	// ratio over the non-stress (Table-I) workloads; CI fails when it
	// regresses toward parity.
	MaxTable1Reduction float64 `json:"max_table1_reduction"`
}

// Options configures a harness run.
type Options struct {
	// Benchtime is the minimum measuring time per timed loop; Once runs
	// every loop exactly one iteration instead (the CI smoke mode,
	// -benchtime 1x).
	Benchtime time.Duration
	Once      bool

	// Filter, when non-empty, keeps only workloads whose name contains it.
	Filter string

	// Progress, when non-nil, receives one line per workload.
	Progress io.Writer
}

// Run executes the standardized workloads and builds the report. The
// context gates the grid at workload granularity: it is checked between
// workloads (and between the timing loops inside one) and threaded into
// each workload's initial correctness search, so a -timeout deadline (or
// Ctrl-C plumbed in by the caller) aborts the harness within one timing
// loop. The timed iterations themselves deliberately run context-free — a
// deadline firing mid-loop would corrupt the measurement it interrupts.
func Run(ctx context.Context, opts Options) (*Report, error) {
	if opts.Benchtime <= 0 {
		opts.Benchtime = 10 * time.Millisecond
	}
	rep := &Report{
		Schema:    Schema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Benchtime: opts.Benchtime.String(),
	}
	if opts.Once {
		rep.Benchtime = "1x"
	}
	for _, w := range Standard() {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("bench: aborted: %w", err)
		}
		if opts.Filter != "" && !strings.Contains(w.Name, opts.Filter) {
			continue
		}
		// One span per workload (with the timed loops inside measure as
		// children), so a -trace of the whole run shows where the wall
		// clock went.
		wctx, sp := obs.Start(ctx, w.Name)
		r, err := measure(wctx, w, opts)
		if err != nil {
			sp.End()
			return nil, fmt.Errorf("bench: %s: %w", w.Name, err)
		}
		sp.SetStr("path", r.SearchPath).SetInt("costed", int64(r.CandidatesCosted))
		sp.End()
		rep.Workloads = append(rep.Workloads, r)
		if !w.Stress && r.Reduction > rep.MaxTable1Reduction {
			rep.MaxTable1Reduction = r.Reduction
		}
		if opts.Progress != nil {
			fmt.Fprintf(opts.Progress, "%-32s %12d ns/op %8d costed of %8d (%6.1fx)\n",
				w.Name, r.NsPerOp, r.CandidatesCosted, r.CandidatesExhaustive, r.Reduction)
		}
	}
	if opts.Filter == "" || strings.Contains("cold-compile", opts.Filter) {
		cc, err := coldCompile(ctx, opts)
		if err != nil {
			return nil, err
		}
		rep.ColdCompile = append(rep.ColdCompile, cc)
		if opts.Progress != nil {
			fmt.Fprintf(opts.Progress, "%-32s %12d ns/op vs %d exhaustive (%.1fx)\n",
				"cold-compile/"+cc.Network+"@"+cc.Array, cc.NsPerOp, cc.ExhaustiveNsPerOp,
				cc.SpeedupVsExhaustive)
		}
	}
	return rep, nil
}

// measure times one workload and gathers its candidate statistics.
func measure(ctx context.Context, w Workload, opts Options) (LayerResult, error) {
	l := w.Layer.Normalized()
	res, stats, err := core.SearchVWSDKInstrumented(ctx, l, w.Array)
	if err != nil {
		return LayerResult{}, err
	}
	out := LayerResult{
		Workload: w.Name,
		Network:  w.Network,
		Layer:    l.Name,
		Shape:    l.String(),
		Array:    w.Array.String(),
		Stress:   w.Stress,

		CandidatesCosted:     res.Evaluated,
		CandidatesFeasible:   res.Swept,
		CandidatesExhaustive: core.ExhaustiveCandidates(l, core.VariantFull),

		SearchPath:     stats.Path,
		CostModelEvals: stats.CostModelCalls,

		Cycles: res.Best.Cycles,
		Tile:   res.Best.TileString(),
	}
	if res.Evaluated > 0 {
		out.Reduction = round1(float64(out.CandidatesExhaustive) / float64(res.Evaluated))
	}
	if l.NumGroups() > 1 {
		dense := l
		dense.Groups = 0
		dres, err := core.SearchVWSDKContext(ctx, dense, w.Array)
		if err != nil {
			return LayerResult{}, fmt.Errorf("dense equivalent: %w", err)
		}
		out.DenseEquivalentCosted = dres.Evaluated
		out.DenseEquivalentFeasible = dres.Swept
	}
	_, psp := obs.Start(ctx, "timed/pruned")
	out.NsPerOp, out.AllocsPerOp, out.Iters = timeIt(opts, func() {
		if _, err := core.SearchVWSDK(l, w.Array); err != nil {
			panic(err) // unreachable: the measured search succeeded above
		}
	})
	psp.SetInt("iters", out.Iters).End()
	if !w.Stress {
		if err := ctx.Err(); err != nil {
			return LayerResult{}, err
		}
		_, esp := obs.Start(ctx, "timed/exhaustive")
		exhNs, _, exhIters := timeIt(opts, func() {
			if _, err := core.SearchVWSDKExhaustive(l, w.Array); err != nil {
				panic(err)
			}
		})
		esp.SetInt("iters", exhIters).End()
		out.ExhaustiveNsPerOp = exhNs
		if out.NsPerOp > 0 {
			out.SpeedupVsExhaustive = round1(float64(exhNs) / float64(out.NsPerOp))
		}
	}
	return out, nil
}

// coldCompile times the full compile pipeline for VGG-13 on the paper's
// 512×512 array with a fresh engine per iteration — the server's cold
// /v1/compile path — under the pruned and exhaustive searches.
func coldCompile(ctx context.Context, opts Options) (ColdCompileResult, error) {
	net := model.VGG13()
	a := core.Array{Rows: 512, Cols: 512}
	req := compile.NewRequest(net, a, compile.Options{})
	// The timed iterations deliberately run under context.Background(): a
	// deadline firing inside a timing loop would corrupt the measurement
	// anyway, so the caller's ctx gates between loops instead.
	run := func(engOpts ...engine.Option) func() {
		return func() {
			comp := compile.New(engine.New(engOpts...))
			if _, err := comp.Compile(context.Background(), req); err != nil {
				panic(err) // unreachable: VGG-13 on 512x512 always compiles
			}
		}
	}
	// Fail fast (with an error, not a panic) if the pipeline is broken or
	// the deadline already passed.
	if _, err := compile.New(engine.New()).Compile(ctx, req); err != nil {
		return ColdCompileResult{}, fmt.Errorf("bench: cold compile: %w", err)
	}
	ctx, sp := obs.Start(ctx, "cold-compile")
	defer sp.End()
	out := ColdCompileResult{Network: net.Name, Array: a.String()}
	_, psp := obs.Start(ctx, "timed/pruned")
	out.NsPerOp, out.AllocsPerOp, _ = timeIt(opts, run())
	psp.End()
	if err := ctx.Err(); err != nil {
		return ColdCompileResult{}, err
	}
	_, esp := obs.Start(ctx, "timed/exhaustive")
	out.ExhaustiveNsPerOp, _, _ = timeIt(opts, run(engine.WithExhaustiveSearch()))
	esp.End()
	if out.NsPerOp > 0 {
		out.SpeedupVsExhaustive = round1(float64(out.ExhaustiveNsPerOp) / float64(out.NsPerOp))
	}
	return out, nil
}

// timeIt runs f once to warm up, then measures it: exactly one iteration in
// Once mode, otherwise iterations until Benchtime has elapsed. Allocation
// counts are process-wide malloc deltas divided by iterations.
func timeIt(opts Options, f func()) (nsPerOp, allocsPerOp, iters int64) {
	f() // warm-up, outside the measurement
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	var n int64
	for {
		f()
		n++
		if opts.Once || time.Since(start) >= opts.Benchtime {
			break
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return elapsed.Nanoseconds() / n, int64(after.Mallocs-before.Mallocs) / n, n
}

// round1 rounds to one decimal so the JSON stays readable.
func round1(x float64) float64 { return float64(int64(x*10+0.5)) / 10 }
