package bench

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/optimize"
)

// OptimizeSchema identifies the BENCH_optimize.json document layout; bump on
// incompatible changes so cross-PR tooling can detect them.
const OptimizeSchema = "vwsdk-optimize-bench/v1"

// OptimizeReport is the BENCH_optimize.json document: one standardized
// Pareto-frontier co-design search (internal/optimize) over a fixed design
// space, reporting the frontier shape, the engine-memoization counters that
// prove shared (layer, array) cells are searched exactly once, and wall-clock
// figures for the cold (empty engine) and warm (every search cached) runs.
//
// Everything except the wall-clock numbers is deterministic: the space is
// fixed, the optimizer enumerates and evaluates sequentially, and the
// distinct-search count is a pure function of the space's layer shapes and
// array candidates. The CI gate (-check-against) therefore pins the frontier
// shape exactly and treats any growth in DistinctSearches as a memoization
// regression; latency is machine-dependent and not gated.
type OptimizeReport struct {
	Schema    string `json:"schema"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	Benchtime string `json:"benchtime"`

	// Space names the benchmarked design space; DesignPoints is its size.
	Space        string `json:"space"`
	DesignPoints int    `json:"design_points"`

	// Frontier shape of the cold run (identical on every run).
	PointsEvaluated int `json:"points_evaluated"`
	FrontierSize    int `json:"frontier_size"`
	Dominated       int `json:"dominated"`

	// SearchesServed is every per-layer search the design points requested;
	// DistinctSearches is how many actually ran the algorithm (engine cache
	// misses on a cold engine) — exactly one per distinct (layer, array)
	// cell; MemoizedReuses is the rest (cache hits plus in-flight dedupes).
	SearchesServed   uint64 `json:"searches_served"`
	DistinctSearches uint64 `json:"distinct_searches"`
	MemoizedReuses   uint64 `json:"memoized_reuses"`

	// ColdNs is the wall clock of the first full search on an empty engine;
	// WarmNsPerRun times repeat runs where every layer search is a cache hit
	// (the dominance bookkeeping plus plan assembly), WarmIters is how many
	// the timing loop ran.
	ColdNs       int64 `json:"cold_ns"`
	WarmNsPerRun int64 `json:"warm_ns_per_run"`
	WarmIters    int64 `json:"warm_iters"`
}

// optimizeSpace is the fixed benchmark workload: the 4-layer TinyNet used by
// the optimize golden tests, searched with two layer groups over four array
// geometries and two chip counts, with peripheral gating on both settings —
// 16 assignments × 2 chips × 2 gating = 64 design points sharing
// 4 layers × 4 arrays = 16 distinct search cells.
func optimizeSpace() optimize.DesignSpace {
	net := model.Network{Name: "TinyNet", Layers: []model.ConvLayer{
		{Layer: core.Layer{Name: "conv1", IW: 32, IH: 32, KW: 3, KH: 3, IC: 3, OC: 16, PadW: 1, PadH: 1}, Count: 1},
		{Layer: core.Layer{Name: "conv2", IW: 16, IH: 16, KW: 3, KH: 3, IC: 16, OC: 32, PadW: 1, PadH: 1}, Count: 2},
		{Layer: core.Layer{Name: "conv3", IW: 8, IH: 8, KW: 3, KH: 3, IC: 32, OC: 64}, Count: 1},
		{Layer: core.Layer{Name: "conv4", IW: 6, IH: 6, KW: 5, KH: 5, IC: 64, OC: 64, StrideW: 2, StrideH: 2, PadW: 2, PadH: 2}, Count: 1},
	}}
	s := optimize.DesignSpace{
		Name:    "tinynet-codesign-bench",
		Network: net,
		Arrays: []core.Array{
			{Rows: 64, Cols: 64}, {Rows: 128, Cols: 128},
			{Rows: 256, Cols: 256}, {Rows: 512, Cols: 512},
		},
		Chips:  []int{1, 4},
		Gating: []bool{false, true},
		Groups: 2,
	}
	s.Normalize()
	return s
}

// RunOptimize executes the optimize benchmark and builds the report. The
// cold run is timed once on a fresh engine and supplies both the frontier
// shape and the memoization counters; the warm loop then re-runs the same
// search on the now-fully-cached engine under the usual benchtime rules.
func RunOptimize(ctx context.Context, opts Options) (*OptimizeReport, error) {
	if opts.Benchtime <= 0 {
		opts.Benchtime = 10 * time.Millisecond
	}
	rep := &OptimizeReport{
		Schema:    OptimizeSchema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Benchtime: opts.Benchtime.String(),
	}
	if opts.Once {
		rep.Benchtime = "1x"
	}
	space := optimizeSpace()
	rep.Space = space.Name
	points, err := space.Points()
	if err != nil {
		return nil, fmt.Errorf("bench: optimize space: %w", err)
	}
	rep.DesignPoints = points

	eng := engine.New()
	o := optimize.New(compile.New(eng))

	octx, sp := obs.Start(ctx, "optimize-cold")
	start := time.Now()
	f, err := o.Run(octx, space, nil)
	rep.ColdNs = time.Since(start).Nanoseconds()
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("bench: optimize cold run: %w", err)
	}
	rep.PointsEvaluated = f.Evaluated
	rep.FrontierSize = len(f.Points)
	rep.Dominated = f.Dominated
	st := eng.Stats()
	rep.SearchesServed = st.Searches
	rep.DistinctSearches = st.CacheMisses
	rep.MemoizedReuses = st.CacheHits + st.FlightDedupes
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("bench: aborted: %w", err)
	}

	// Warm loop: every layer search hits the engine cache, so this times the
	// enumeration, dominance bookkeeping and plan assembly alone. The timed
	// iterations deliberately run context-free (a deadline firing mid-loop
	// would corrupt the measurement); the caller's ctx gates around it.
	_, wsp := obs.Start(ctx, "optimize-warm")
	rep.WarmNsPerRun, _, rep.WarmIters = timeIt(opts, func() {
		if _, err := o.Run(context.Background(), space, nil); err != nil {
			panic(err) // unreachable: the cold run of the same space succeeded
		}
	})
	wsp.SetInt("iters", rep.WarmIters).End()
	return rep, nil
}
