package bench

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"time"

	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/server"
)

// ServeSchema identifies the BENCH_serve.json document layout; bump on
// incompatible changes so cross-PR tooling can detect them.
const ServeSchema = "vwsdk-serve-bench/v1"

// ServeEndpointResult is one serve workload's measurements: latency
// percentiles over individual in-process requests plus process-wide
// allocation deltas per request.
type ServeEndpointResult struct {
	// Name is the stable endpoint workload identifier: "compile-cold",
	// "compile-warm" or "sweep-stream".
	Name string `json:"name"`

	// Requests is how many requests the percentiles were computed over.
	Requests int `json:"requests"`

	P50Ns int64 `json:"p50_ns"`
	P99Ns int64 `json:"p99_ns"`

	// AllocsPerRequest and BytesPerRequest are process-wide malloc/heap
	// deltas over the request loop divided by request count. They include
	// HTTP request construction and (for cold compiles) the search itself;
	// the plan-path-only figure is WarmPlanPathAllocs in the report.
	AllocsPerRequest int64 `json:"allocs_per_request"`
	BytesPerRequest  int64 `json:"bytes_per_request"`

	// ResponseBytes is the response body size of the last request (identical
	// across requests for the compile endpoints).
	ResponseBytes int64 `json:"response_bytes"`

	// Cells is the per-request sweep cell count (sweep-stream only).
	Cells int `json:"cells,omitempty"`
}

// ServeReport is the BENCH_serve.json document, the serving companion to
// the search report: cold/warm /v1/compile and streaming /v1/sweep measured
// end to end through Server.ServeHTTP in-process (no sockets, so the numbers
// isolate the server's own work).
type ServeReport struct {
	Schema    string `json:"schema"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	Benchtime string `json:"benchtime"`

	Endpoints []ServeEndpointResult `json:"endpoints"`

	// WarmPlanPathAllocs is the allocation count of the warm-hit plan path
	// alone (Server.CachedPlan: canonical key build, byte-keyed cache
	// lookup, cached-bytes write), measured like testing.AllocsPerRun. The
	// tentpole invariant — pinned here, in TestWarmCompileZeroPlanPathAllocs
	// and by the CI gate — is that it is exactly 0.
	WarmPlanPathAllocs float64 `json:"warm_plan_path_allocs"`
}

// Request counts per endpoint: enough samples for a meaningful p99 in a full
// run, trimmed in Once mode (the CI smoke) where only shape and the
// zero-alloc invariant matter.
const (
	coldRequests  = 30
	warmRequests  = 2000
	sweepRequests = 12

	coldRequestsOnce  = 10
	warmRequestsOnce  = 200
	sweepRequestsOnce = 3
)

var (
	serveCompileBody = []byte(`{"network": "VGG-13", "array": "512x512"}`)
	serveSweepBody   = []byte(`{"networks": ["VGG-13", "ResNet-18"], "arrays": ["256x256", "512x512"]}`)
)

// RunServe executes the serve benchmark and builds the report. Requests are
// driven through Server.ServeHTTP directly — no listener — against a discard
// response writer, so the measurements capture the handler path (decode,
// resolve, key, cache, compile, serialize, write) without socket noise.
func RunServe(ctx context.Context, opts Options) (*ServeReport, error) {
	rep := &ServeReport{
		Schema:    ServeSchema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Benchtime: "default",
	}
	if opts.Once {
		rep.Benchtime = "1x"
	}
	n := func(full, once int) int {
		if opts.Once {
			return once
		}
		return full
	}

	// Cold compile: plan cache disabled and a zero-capacity engine cache, so
	// every request pays the full pipeline — the worst-case request.
	cold := server.New(server.Config{
		Engine:        engine.New(engine.WithCacheSize(0)),
		PlanCacheSize: -1,
	})
	r, err := sampleEndpoint(ctx, "compile-cold", cold, "/v1/compile", serveCompileBody, n(coldRequests, coldRequestsOnce), opts)
	if err != nil {
		return nil, err
	}
	rep.Endpoints = append(rep.Endpoints, r)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("bench: aborted: %w", err)
	}

	// Warm compile: default server, primed once; every measured request is a
	// plan-cache hit — the common case under production traffic.
	warm := server.New(server.Config{})
	if err := prime(warm, "/v1/compile", serveCompileBody); err != nil {
		return nil, err
	}
	r, err = sampleEndpoint(ctx, "compile-warm", warm, "/v1/compile", serveCompileBody, n(warmRequests, warmRequestsOnce), opts)
	if err != nil {
		return nil, err
	}
	rep.Endpoints = append(rep.Endpoints, r)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("bench: aborted: %w", err)
	}

	// Streaming sweep over a warm cache: measures the NDJSON streaming
	// machinery (fan-out, summary encode, per-line flush), not the searches.
	if err := prime(warm, "/v1/sweep", serveSweepBody); err != nil {
		return nil, err
	}
	r, err = sampleEndpoint(ctx, "sweep-stream", warm, "/v1/sweep", serveSweepBody, n(sweepRequests, sweepRequestsOnce), opts)
	if err != nil {
		return nil, err
	}
	r.Cells = 4 // 2 networks × 2 arrays
	rep.Endpoints = append(rep.Endpoints, r)

	// The plan-path-only allocation figure, over the exported fast-path unit.
	req := compile.NewRequest(model.VGG13(), core.Array{Rows: 512, Cols: 512}, compile.Options{})
	_, sp := obs.Start(ctx, "warm-plan-path")
	rep.WarmPlanPathAllocs, err = planPathAllocs(warm, req)
	sp.End()
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// prime issues one request so subsequent measurements hit warm caches.
func prime(h http.Handler, path string, body []byte) error {
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body)))
	if rw.Code != http.StatusOK {
		return fmt.Errorf("bench: prime %s: status %d: %s", path, rw.Code, rw.Body.String())
	}
	return nil
}

// sampleEndpoint issues n requests against h, timing each ServeHTTP call
// individually for the percentiles and wrapping the whole loop in one
// memstats delta for the per-request allocation figures. Each endpoint's
// request loop is one span on a -trace, so a serve run's trace shows the
// three endpoints side by side.
func sampleEndpoint(ctx context.Context, name string, h http.Handler, path string, body []byte, n int, opts Options) (ServeEndpointResult, error) {
	_, sp := obs.Start(ctx, name)
	defer sp.End()
	sp.SetInt("requests", int64(n))
	durs := make([]time.Duration, n)
	rw := &discardResponseWriter{header: make(http.Header, 4)}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := range n {
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
		rw.reset()
		start := time.Now()
		h.ServeHTTP(rw, req)
		durs[i] = time.Since(start)
		if rw.status != http.StatusOK {
			return ServeEndpointResult{}, fmt.Errorf("bench: %s request %d: status %d", name, i, rw.status)
		}
	}
	runtime.ReadMemStats(&after)
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	return ServeEndpointResult{
		Name:             name,
		Requests:         n,
		P50Ns:            durs[n/2].Nanoseconds(),
		P99Ns:            durs[min(n-1, n*99/100)].Nanoseconds(),
		AllocsPerRequest: int64(after.Mallocs-before.Mallocs) / int64(n),
		BytesPerRequest:  int64(after.TotalAlloc-before.TotalAlloc) / int64(n),
		ResponseBytes:    rw.bytes,
	}, nil
}

// planPathAllocs measures the warm-hit plan path in isolation, mirroring
// testing.AllocsPerRun (GOMAXPROCS pinned to 1, warm-up run excluded).
func planPathAllocs(s *server.Server, req compile.Request) (float64, error) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	const runs = 500
	ok, err := s.CachedPlan(io.Discard, req)
	if err != nil || !ok {
		return 0, fmt.Errorf("bench: warm plan path: hit=%v err=%v", ok, err)
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for range runs {
		if ok, err := s.CachedPlan(io.Discard, req); err != nil || !ok {
			return 0, fmt.Errorf("bench: warm plan path: hit=%v err=%v", ok, err)
		}
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / runs, nil
}

// discardResponseWriter is the no-op http.ResponseWriter the serve loops
// write into: it byte-counts and flushes nowhere, so response delivery costs
// no benchmark-side allocations.
type discardResponseWriter struct {
	header http.Header
	status int
	bytes  int64
}

func (w *discardResponseWriter) Header() http.Header { return w.header }

func (w *discardResponseWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
}

func (w *discardResponseWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	w.bytes += int64(len(p))
	return len(p), nil
}

func (w *discardResponseWriter) Flush() {}

func (w *discardResponseWriter) reset() {
	clear(w.header)
	w.status = 0
	w.bytes = 0
}
