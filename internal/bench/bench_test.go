package bench

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// TestStandardWorkloads pins the workload set's shape: unique names, full
// Table-I zoo coverage on all three acceptance arrays, and stress layers
// with ≥512×512 IFMs marked as such.
func TestStandardWorkloads(t *testing.T) {
	ws := Standard()
	seen := map[string]bool{}
	perArray := map[string]int{}
	stress := 0
	for _, w := range ws {
		if seen[w.Name] {
			t.Errorf("duplicate workload %q", w.Name)
		}
		seen[w.Name] = true
		if err := w.Layer.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
		if w.Stress {
			stress++
			if w.Layer.IW < 512 {
				t.Errorf("%s: stress layer IFM %d < 512", w.Name, w.Layer.IW)
			}
		} else {
			perArray[w.Array.String()]++
		}
	}
	// 10 VGG-13 + 5 ResNet-18 + 8 MobileNet-V2 distinct shapes per array.
	for _, a := range []string{"256x256", "512x512", "1024x1024"} {
		if perArray[a] != 23 {
			t.Errorf("%s: %d zoo workloads, want 23", a, perArray[a])
		}
	}
	if stress == 0 {
		t.Error("no stress workloads")
	}
	grouped := 0
	for _, w := range Standard() {
		if w.Layer.NumGroups() > 1 {
			grouped++
		}
	}
	if grouped < 9 {
		t.Errorf("%d grouped workloads, want the depthwise MobileNet-V2 rows on all arrays", grouped)
	}
}

// TestRunGroupedReportsDenseEquivalent pins the grouped bench rows' extra
// columns: the dense-equivalent feasible count must equal the grouped one
// (window feasibility is group-independent), and dense rows omit the fields.
func TestRunGroupedReportsDenseEquivalent(t *testing.T) {
	rep, err := Run(context.Background(), Options{Once: true, Filter: "MobileNet-V2/dw384@512x512"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Workloads) != 1 {
		t.Fatalf("got %d workloads", len(rep.Workloads))
	}
	r := rep.Workloads[0]
	if r.DenseEquivalentCosted <= 0 {
		t.Fatalf("grouped row missing dense-equivalent stats: %+v", r)
	}
	if r.DenseEquivalentFeasible != r.CandidatesFeasible {
		t.Errorf("dense-equivalent feasible %d != grouped feasible %d (feasibility must be group-independent)",
			r.DenseEquivalentFeasible, r.CandidatesFeasible)
	}

	dense, err := Run(context.Background(), Options{Once: true, Filter: "VGG-13/conv9@512x512"})
	if err != nil {
		t.Fatal(err)
	}
	if d := dense.Workloads[0]; d.DenseEquivalentCosted != 0 || d.DenseEquivalentFeasible != 0 {
		t.Errorf("dense row carries dense-equivalent stats: %+v", d)
	}
}

// TestRunOnce runs the harness in smoke mode on a filtered slice and checks
// the report's candidate accounting against the core search directly.
func TestRunOnce(t *testing.T) {
	rep, err := Run(context.Background(), Options{Once: true, Filter: "VGG-13/conv9@512x512"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != Schema || len(rep.Workloads) != 1 {
		t.Fatalf("report = %+v, want 1 workload under schema %q", rep, Schema)
	}
	r := rep.Workloads[0]
	l := core.Layer{Name: "conv9", IW: 14, IH: 14, KW: 3, KH: 3, IC: 512, OC: 512}
	res, err := core.SearchVWSDK(l, core.Array{Rows: 512, Cols: 512})
	if err != nil {
		t.Fatal(err)
	}
	if r.CandidatesCosted != res.Evaluated || r.CandidatesFeasible != res.Swept {
		t.Errorf("candidates = %d/%d, want %d/%d", r.CandidatesCosted, r.CandidatesFeasible,
			res.Evaluated, res.Swept)
	}
	if want := core.ExhaustiveCandidates(l, core.VariantFull); r.CandidatesExhaustive != want {
		t.Errorf("exhaustive candidates = %d, want %d", r.CandidatesExhaustive, want)
	}
	if r.Cycles != res.Best.Cycles || r.Tile != res.Best.TileString() {
		t.Errorf("anchor = %d/%s, want %d/%s", r.Cycles, r.Tile, res.Best.Cycles, res.Best.TileString())
	}
	if r.NsPerOp <= 0 || r.Iters != 1 {
		t.Errorf("timing = %d ns/op over %d iters, want positive ns over exactly 1 iter", r.NsPerOp, r.Iters)
	}
	if r.ExhaustiveNsPerOp <= 0 {
		t.Errorf("exhaustive timing missing for a Table-I workload: %+v", r)
	}
	// Filtered runs skip the cold-compile pipeline benchmark.
	if len(rep.ColdCompile) != 0 {
		t.Errorf("filtered run still ran cold-compile: %+v", rep.ColdCompile)
	}
}

// TestRunStressSkipsExhaustiveTiming pins that stress workloads report the
// analytic exhaustive candidate count but never time the brute-force sweep.
func TestRunStressSkipsExhaustiveTiming(t *testing.T) {
	rep, err := Run(context.Background(), Options{Once: true, Filter: "stress/hd-512@512x512"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Workloads) != 1 {
		t.Fatalf("got %d workloads", len(rep.Workloads))
	}
	r := rep.Workloads[0]
	if !r.Stress || r.ExhaustiveNsPerOp != 0 {
		t.Errorf("stress workload timed the exhaustive sweep: %+v", r)
	}
	if r.CandidatesExhaustive < 100000 {
		t.Errorf("stress exhaustive candidates = %d, want the intractable range", r.CandidatesExhaustive)
	}
	if r.Reduction < 10 {
		t.Errorf("stress reduction = %.1fx, want >= 10x", r.Reduction)
	}
	// Stress workloads must not drive the Table-I regression gate.
	if rep.MaxTable1Reduction != 0 {
		t.Errorf("stress workload leaked into MaxTable1Reduction = %v", rep.MaxTable1Reduction)
	}
}

// TestTimeItBenchtime checks the non-smoke loop iterates until the benchtime
// elapses.
func TestTimeItBenchtime(t *testing.T) {
	ns, _, iters := timeIt(Options{Benchtime: 5 * time.Millisecond}, func() {
		time.Sleep(100 * time.Microsecond)
	})
	if iters < 2 {
		t.Errorf("iters = %d, want several within the benchtime", iters)
	}
	if ns <= 0 {
		t.Errorf("ns/op = %d", ns)
	}
}

// TestWorkloadNamesAreFilterable spot-checks the name scheme the -filter
// flag and CI recipes rely on.
func TestWorkloadNamesAreFilterable(t *testing.T) {
	var names []string
	for _, w := range Standard() {
		names = append(names, w.Name)
	}
	all := strings.Join(names, "\n")
	for _, want := range []string{"VGG-13/conv1@256x256", "ResNet-18/conv5@1024x1024", "stress/hd-1024@512x512"} {
		if !strings.Contains(all, want) {
			t.Errorf("workload %q missing from:\n%s", want, all)
		}
	}
}
