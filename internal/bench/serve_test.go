package bench

import (
	"context"
	"testing"
)

// TestRunServeOnce runs the serve benchmark in its CI smoke configuration and
// checks the report shape plus the invariants the regression gate relies on.
func TestRunServeOnce(t *testing.T) {
	rep, err := RunServe(context.Background(), Options{Once: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != ServeSchema {
		t.Errorf("schema = %q, want %q", rep.Schema, ServeSchema)
	}
	if rep.Benchtime != "1x" {
		t.Errorf("benchtime = %q, want 1x", rep.Benchtime)
	}
	want := []string{"compile-cold", "compile-warm", "sweep-stream"}
	if len(rep.Endpoints) != len(want) {
		t.Fatalf("got %d endpoints, want %d", len(rep.Endpoints), len(want))
	}
	for i, ep := range rep.Endpoints {
		if ep.Name != want[i] {
			t.Errorf("endpoint %d = %q, want %q", i, ep.Name, want[i])
		}
		if ep.Requests <= 0 || ep.P50Ns <= 0 || ep.P99Ns < ep.P50Ns {
			t.Errorf("%s: implausible samples: %+v", ep.Name, ep)
		}
		if ep.ResponseBytes <= 0 {
			t.Errorf("%s: empty responses", ep.Name)
		}
	}
	// The compile endpoints serve the identical cached document, so their
	// response sizes must agree.
	if c, w := rep.Endpoints[0].ResponseBytes, rep.Endpoints[1].ResponseBytes; c != w {
		t.Errorf("cold response %d bytes, warm %d bytes; want identical", c, w)
	}
	if rep.WarmPlanPathAllocs != 0 && !RaceEnabled {
		t.Errorf("warm plan path allocs = %v, want 0", rep.WarmPlanPathAllocs)
	}
}
