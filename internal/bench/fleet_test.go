package bench

import (
	"context"
	"testing"
)

// TestRunFleet runs the fleet benchmark and checks the invariants the
// regression gate and the README's fleet claim rest on: the fleet beats the
// single-node LRU baseline, each key compiles once fleet-wide, and proxied
// requests are cheaper than local compilations.
func TestRunFleet(t *testing.T) {
	rep, err := RunFleet(context.Background(), Options{Once: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != FleetSchema {
		t.Errorf("schema = %q, want %q", rep.Schema, FleetSchema)
	}
	if rep.Nodes != fleetNodes || rep.Keys != fleetKeys || rep.Requests != fleetRequests {
		t.Errorf("workload shape %+v drifted from constants", rep)
	}
	if rep.FleetHitRate <= rep.BaselineHitRate {
		t.Errorf("fleet hit rate %.3f not above single-node baseline %.3f — the peer tier buys nothing",
			rep.FleetHitRate, rep.BaselineHitRate)
	}
	// The two-tier cache must compile each key the deterministic zipf
	// sequence touches exactly once anywhere in the fleet, while the
	// thrashing baseline recompiles evicted keys.
	touched := make(map[int]bool)
	for _, k := range fleetSequence() {
		touched[k] = true
	}
	if rep.FleetCompiles != int64(len(touched)) {
		t.Errorf("fleet compiles = %d, want %d (one per touched key)", rep.FleetCompiles, len(touched))
	}
	if rep.BaselineCompiles <= int64(len(touched)) {
		t.Errorf("baseline compiles = %d, want > %d (LRU of %d must thrash over %d keys)",
			rep.BaselineCompiles, len(touched), rep.PlanCacheSize, rep.Keys)
	}
	if rep.ProxiedRequests == 0 {
		t.Error("no proxied requests — round-robin over a 3-node ring must proxy")
	}
	if rep.HitRequests+rep.ProxiedRequests+rep.ComputeRequests != rep.Requests {
		t.Errorf("classes %d+%d+%d don't sum to %d requests",
			rep.HitRequests, rep.ProxiedRequests, rep.ComputeRequests, rep.Requests)
	}
	if rep.ProxiedP50Ns <= 0 || rep.ComputeP50Ns <= 0 || rep.HitP50Ns <= 0 {
		t.Errorf("empty latency classes: %+v", rep)
	}
	if rep.ProxiedP99Ns < rep.ProxiedP50Ns || rep.ComputeP99Ns < rep.ComputeP50Ns {
		t.Errorf("p99 below p50: %+v", rep)
	}
	// A warm local hit must be far cheaper than either remote tier — if it
	// is not, the proxy or store path leaked onto the warm fast path.
	if rep.HitP50Ns >= rep.ProxiedP50Ns {
		t.Errorf("warm hit p50 %dns not below proxied p50 %dns", rep.HitP50Ns, rep.ProxiedP50Ns)
	}
}

// TestFleetSequenceDeterministic pins that the workload schedule is seeded:
// the committed BENCH_fleet.json rates are only comparable across runs and
// machines because every run replays the identical sequence.
func TestFleetSequenceDeterministic(t *testing.T) {
	a, b := fleetSequence(), fleetSequence()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sequence diverges at %d: %d vs %d", i, a[i], b[i])
		}
	}
	seen := make(map[int]bool)
	for _, k := range a {
		if k < 0 || k >= fleetKeys {
			t.Fatalf("key %d out of range", k)
		}
		seen[k] = true
	}
	// The zipf tail need not touch literally every key, but a sequence
	// covering only a handful would make the benchmark trivial.
	if len(seen) < fleetKeys*3/4 {
		t.Errorf("sequence touches only %d of %d keys — not a meaningful workload", len(seen), fleetKeys)
	}
}
