package bench

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/peer"
	"repro/internal/server"
	"repro/internal/store"
)

// FleetSchema identifies the BENCH_fleet.json document layout; bump on
// incompatible changes so cross-PR tooling can detect them.
const FleetSchema = "vwsdk-fleet-bench/v1"

// Fleet workload shape. The plan-cache capacity is deliberately far below
// the key population: a single node must thrash its LRU, while the fleet's
// aggregate capacity (every node owning and caching its shard) plus the
// persistent store absorbs the same traffic. The zipf exponent models real
// compile-service traffic — a few hot networks and a long tail.
const (
	fleetNodes     = 3
	fleetKeys      = 24
	fleetRequests  = 600
	fleetPlanCache = 8
	fleetZipfS     = 1.2
	fleetZipfSeed  = 7
)

// FleetReport is the BENCH_fleet.json document: a zipfian compile mix
// driven round-robin over an in-process consistent-hash fleet, versus the
// same mix over one node with the same LRU — the number that justifies the
// peer tier is FleetHitRate strictly above BaselineHitRate.
type FleetReport struct {
	Schema    string `json:"schema"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	Benchtime string `json:"benchtime"`

	// Workload shape, recorded so the committed snapshot documents what the
	// rates were measured over.
	Nodes         int     `json:"nodes"`
	Keys          int     `json:"keys"`
	Requests      int     `json:"requests"`
	PlanCacheSize int     `json:"plan_cache_size"`
	ZipfS         float64 `json:"zipf_s"`

	// FleetHitRate is the fraction of fleet requests served without a local
	// compilation (LRU hit, store hit, or proxied to the owner);
	// BaselineHitRate is the plain LRU hit rate of one node with the same
	// capacity over the same request sequence.
	FleetHitRate    float64 `json:"fleet_hit_rate"`
	BaselineHitRate float64 `json:"baseline_hit_rate"`

	// FleetCompiles counts compilations actually run anywhere in the fleet.
	// The two-tier cache's whole point is that it equals the number of
	// distinct keys the sequence touches: each key is compiled once, on its
	// owner, and served from caches everywhere else, while the thrashing
	// baseline recompiles every eviction.
	FleetCompiles    int64 `json:"fleet_compiles"`
	BaselineCompiles int64 `json:"baseline_compiles"`

	// Per-class request latencies inside the fleet run. Proxied requests
	// (X-Cache: peer) pay one hop to the owner plus response validation;
	// compute requests (X-Cache: miss) pay a full local search. For this
	// workload's sub-millisecond compiles the two are the same order of
	// magnitude — the fleet's win is the compile count and hit rate above,
	// not per-request latency — but proxied latency is still snapshotted and
	// gated so a protocol regression (extra hops, redundant validation)
	// shows up in CI.
	ProxiedRequests int   `json:"proxied_requests"`
	ProxiedP50Ns    int64 `json:"proxied_p50_ns"`
	ProxiedP99Ns    int64 `json:"proxied_p99_ns"`
	ComputeRequests int   `json:"compute_requests"`
	ComputeP50Ns    int64 `json:"compute_p50_ns"`
	ComputeP99Ns    int64 `json:"compute_p99_ns"`
	HitRequests     int   `json:"hit_requests"`
	HitP50Ns        int64 `json:"hit_p50_ns"`
}

// The key population: every zoo network on every array size — 24 distinct
// compile keys whose cold compiles cost 0.1–2ms each, so a ~0.1ms proxy hop
// to a warm owner is a real win while the whole benchmark stays fast.
var (
	fleetNetworks = []string{"VGG-13", "ResNet-18", "VGG-16", "AlexNet", "MobileNet-V2", "ResNeXt-50"}
	fleetArrays   = []string{"128x128", "256x256", "384x384", "512x512"}
)

// fleetBodies builds the wire bodies of the key population.
func fleetBodies() [][]byte {
	bodies := make([][]byte, 0, fleetKeys)
	for _, n := range fleetNetworks {
		for _, a := range fleetArrays {
			bodies = append(bodies, fmt.Appendf(nil, `{"network": %q, "array": %q}`, n, a))
		}
	}
	if len(bodies) != fleetKeys {
		panic("fleetKeys out of sync with the network/array grid")
	}
	return bodies
}

// fleetSequence is the shared request schedule: for each request, which key
// (zipf-distributed, deterministic seed) — the node it lands on is the
// request index modulo the fleet size (round-robin load balancing).
func fleetSequence() []int {
	r := rand.New(rand.NewSource(fleetZipfSeed))
	z := rand.NewZipf(r, fleetZipfS, 1, fleetKeys-1)
	seq := make([]int, fleetRequests)
	for i := range seq {
		seq[i] = int(z.Uint64())
	}
	return seq
}

// RunFleet executes the fleet benchmark and builds the report. The fleet is
// in-process: N servers joined by a peer.MemTransport loopback fabric (no
// sockets), each with a persistent store under a throwaway directory, so the
// run exercises the full two-tier path — LRU, store, proxy — deterministically.
func RunFleet(ctx context.Context, opts Options) (*FleetReport, error) {
	rep := &FleetReport{
		Schema:        FleetSchema,
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		Benchtime:     "default",
		Nodes:         fleetNodes,
		Keys:          fleetKeys,
		Requests:      fleetRequests,
		PlanCacheSize: fleetPlanCache,
		ZipfS:         fleetZipfS,
	}
	if opts.Once {
		// The workload is identical in CI smoke mode — it is already a
		// fixed-iteration run, and the rates must match the committed
		// snapshot — only the label differs.
		rep.Benchtime = "1x"
	}
	bodies := fleetBodies()
	seq := fleetSequence()

	// Baseline: one node, same LRU capacity, no peers, no store.
	_, sp := obs.Start(ctx, "fleet-baseline")
	base := server.New(server.Config{PlanCacheSize: fleetPlanCache})
	for _, k := range seq {
		rw := httptest.NewRecorder()
		base.ServeHTTP(rw, httptest.NewRequest(http.MethodPost, "/v1/compile", bytes.NewReader(bodies[k])))
		if rw.Code != http.StatusOK {
			sp.End()
			return nil, fmt.Errorf("bench: baseline request: status %d: %s", rw.Code, rw.Body.String())
		}
		if rw.Header().Get("X-Cache") == "hit" {
			rep.HitRequests++ // reused below; reset before the fleet run
		}
	}
	rep.BaselineHitRate = float64(rep.HitRequests) / float64(len(seq))
	rep.BaselineCompiles = int64(base.Stats().PlanCache.Misses)
	rep.HitRequests = 0
	sp.End()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("bench: aborted: %w", err)
	}

	// Fleet: same sequence, round-robin over the nodes.
	storeRoot, err := os.MkdirTemp("", "vwsdk-fleet-bench-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(storeRoot)
	addrs := make([]string, fleetNodes)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("node-%d:80", i)
	}
	mt := peer.MemTransport{}
	servers := make([]*server.Server, fleetNodes)
	stores := make([]*store.Store, fleetNodes)
	for i := range servers {
		ring, err := peer.NewRing(addrs[i], addrs)
		if err != nil {
			return nil, err
		}
		st, err := store.Open(fmt.Sprintf("%s/node-%d", storeRoot, i))
		if err != nil {
			return nil, err
		}
		stores[i] = st
		servers[i] = server.New(server.Config{
			PlanCacheSize: fleetPlanCache,
			Store:         st,
			Peers:         peer.NewClient(ring, mt, 0),
		})
		mt[addrs[i]] = servers[i]
	}
	defer func() {
		for _, st := range stores {
			st.Flush()
		}
	}()

	_, sp = obs.Start(ctx, "fleet-run")
	defer sp.End()
	var proxied, compute, hits []time.Duration
	for i, k := range seq {
		rw := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v1/compile", bytes.NewReader(bodies[k]))
		start := time.Now()
		servers[i%fleetNodes].ServeHTTP(rw, req)
		d := time.Since(start)
		if rw.Code != http.StatusOK {
			return nil, fmt.Errorf("bench: fleet request %d: status %d: %s", i, rw.Code, rw.Body.String())
		}
		switch rw.Header().Get("X-Cache") {
		case "peer":
			proxied = append(proxied, d)
		case "miss":
			compute = append(compute, d)
		default: // "hit" or "store": served from a local tier
			hits = append(hits, d)
		}
		// Settle write-behinds between requests (outside the timed window):
		// a real fleet has think-time for the async store writes to land; the
		// sequential driver does not, and without this the store tier's
		// contribution would depend on goroutine scheduling luck.
		for _, st := range stores {
			st.Flush()
		}
	}
	// Plan-cache misses count every singleflight leader, including ones
	// filled from the store or a peer; compilations actually run are the
	// misses minus those fills.
	for _, s := range servers {
		st := s.Stats()
		rep.FleetCompiles += int64(st.PlanCache.Misses)
		if st.Store != nil {
			rep.FleetCompiles -= int64(st.Store.Hits)
		}
		if st.Peer != nil {
			rep.FleetCompiles -= int64(st.Peer.Proxied)
		}
	}
	rep.ProxiedRequests = len(proxied)
	rep.ComputeRequests = len(compute)
	rep.HitRequests = len(hits)
	rep.FleetHitRate = float64(len(seq)-len(compute)) / float64(len(seq))
	rep.ProxiedP50Ns, rep.ProxiedP99Ns = pctls(proxied)
	rep.ComputeP50Ns, rep.ComputeP99Ns = pctls(compute)
	rep.HitP50Ns, _ = pctls(hits)
	return rep, nil
}

// pctls returns the p50 and p99 of durs (0, 0 when empty).
func pctls(durs []time.Duration) (p50, p99 int64) {
	if len(durs) == 0 {
		return 0, 0
	}
	sorted := make([]time.Duration, len(durs))
	copy(sorted, durs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	n := len(sorted)
	return sorted[n/2].Nanoseconds(), sorted[min(n-1, n*99/100)].Nanoseconds()
}
