package bench

import (
	"context"
	"testing"
)

// TestRunOptimizeOnce runs the optimize benchmark in its CI smoke
// configuration and pins the deterministic figures the -check-against gate
// relies on: the frontier shape and the memoization counters (exactly one
// algorithm run per distinct (layer, array) cell).
func TestRunOptimizeOnce(t *testing.T) {
	rep, err := RunOptimize(context.Background(), Options{Once: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != OptimizeSchema {
		t.Errorf("schema = %q, want %q", rep.Schema, OptimizeSchema)
	}
	if rep.Benchtime != "1x" {
		t.Errorf("benchtime = %q, want 1x", rep.Benchtime)
	}
	// 4 arrays ^ 2 groups × 2 chip counts × 2 gating settings.
	if rep.DesignPoints != 64 || rep.PointsEvaluated != 64 {
		t.Errorf("design points = %d evaluated = %d, want 64/64", rep.DesignPoints, rep.PointsEvaluated)
	}
	if rep.FrontierSize < 1 || rep.Dominated < 1 ||
		rep.FrontierSize+rep.Dominated > rep.PointsEvaluated {
		t.Errorf("implausible frontier shape: %+v", rep)
	}
	// The memoization invariant: 4 distinct layer shapes × 4 arrays = 16
	// algorithm runs serve every search all 64 design points request.
	if rep.DistinctSearches != 16 {
		t.Errorf("distinct searches = %d, want 16", rep.DistinctSearches)
	}
	if rep.SearchesServed != rep.DistinctSearches+rep.MemoizedReuses {
		t.Errorf("search counters inconsistent: served %d != distinct %d + reused %d",
			rep.SearchesServed, rep.DistinctSearches, rep.MemoizedReuses)
	}
	if rep.ColdNs <= 0 || rep.WarmNsPerRun <= 0 || rep.WarmIters != 1 {
		t.Errorf("implausible timings: %+v", rep)
	}
}
