//go:build race

package bench

// RaceEnabled reports whether the binary was built with the race detector.
// Its instrumentation allocates on its own, so the allocation invariants the
// serve benchmark pins (warm plan path == 0) only hold in regular builds;
// tests consult this to relax exact-zero assertions under -race.
const RaceEnabled = true
