// Package store is the persistent tier of vwsdkd's plan cache: a
// content-addressed on-disk store of serialized compile.NetworkPlans keyed
// by compile.Key. The plan LRU (internal/server) is write-behind into a
// Store, so a restarted daemon — or a fresh replica pointed at shared
// storage — comes up warm: the same request is answered from disk with the
// byte-identical plan, without re-running the search.
//
// Consistency is by construction: compile.Key is a pure content address (a
// compilation is a deterministic function of its key), so a stored entry can
// never be stale — only corrupt. Every load is therefore re-validated
// exactly like the golden round-trip (compile.FromJSON re-checks the plan's
// totals against its layers) plus a re-key check (the decoded plan's own
// request must hash back to the key it was stored under); an entry failing
// either check is quarantined on the spot — renamed aside with a .corrupt
// suffix so it is recomputed, never served, and never retried.
//
// Layout: one file per plan at <dir>/<aa>/<sha256(key) hex>.json, where
// <aa> is the first hash byte (256-way fan-out keeps directories small at
// fleet scale). Writes are atomic temp+rename in the entry's own directory,
// so readers — including concurrent vwsdkd replicas sharing the directory —
// never observe a torn entry; a crash mid-write leaves only a .tmp file that
// the next Open sweeps away.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/compile"
)

// Store is an on-disk plan store rooted at a directory. Build one with
// Open; a *Store is safe for concurrent use, including by multiple
// processes sharing the directory.
type Store struct {
	dir string

	hits    atomic.Uint64
	misses  atomic.Uint64
	writes  atomic.Uint64
	corrupt atomic.Uint64

	// wg tracks in-flight write-behind goroutines; Flush waits on it.
	wg sync.WaitGroup
	// writeSem bounds concurrent write-behind goroutines so a warm-up burst
	// cannot exhaust file descriptors.
	writeSem chan struct{}
}

// Open opens (creating if needed) the plan store rooted at dir and sweeps
// away temp files abandoned by a crashed writer.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, writeSem: make(chan struct{}, 8)}
	s.sweepTemp()
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path maps a key to its entry file. The first hash byte is the fan-out
// directory, mirrored as the leading two hex characters of the file name.
func (s *Store) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	hexed := hex.EncodeToString(sum[:])
	return filepath.Join(s.dir, hexed[:2], hexed+".json")
}

// GetPlan implements compile.PlanStore: it loads, validates and returns the
// entry for key. A missing entry is a miss; an entry that fails validation
// — unreadable, truncated, totals-inconsistent, or stored under a key its
// own request does not hash to — is quarantined and reported as a miss, so
// the caller recomputes and overwrites it.
func (s *Store) GetPlan(key string) ([]byte, *compile.NetworkPlan, bool) {
	path := s.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			s.misses.Add(1)
		} else {
			// Unreadable for another reason (permissions, I/O error):
			// quarantine so the serve path never blocks on a sick file again.
			s.quarantine(path)
		}
		return nil, nil, false
	}
	plan, err := compile.FromJSON(data)
	if err != nil {
		// Truncated, syntactically broken, or totals-inconsistent bytes.
		s.quarantine(path)
		return nil, nil, false
	}
	// Re-key: the decoded plan's own request must be the content this
	// address names. This catches entries copied or renamed to the wrong
	// path — the only "staleness" a content-addressed store can exhibit.
	if got, err := compile.Key(plan.Request); err != nil || got != key {
		s.quarantine(path)
		return nil, nil, false
	}
	s.hits.Add(1)
	return data, plan, true
}

// PutPlan implements compile.PlanStore: it persists data for key with an
// atomic temp+rename, asynchronously (write-behind — the serve path never
// waits on disk). data must be immutable; an entry already on disk is left
// alone (same key means same content, so rewriting buys nothing). Call
// Flush to wait for pending writes (tests, warm mode, shutdown).
func (s *Store) PutPlan(key string, data []byte) {
	path := s.path(key)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.writeSem <- struct{}{}
		defer func() { <-s.writeSem }()
		if _, err := os.Stat(path); err == nil {
			return
		}
		if s.writeEntry(path, data) == nil {
			s.writes.Add(1)
		}
	}()
}

// writeEntry writes data to path atomically: a .tmp file in the entry's own
// fan-out directory (same filesystem, so the rename is atomic), then rename
// into place.
func (s *Store) writeEntry(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// quarantine moves a failed entry aside (path → path.corrupt, replacing any
// previous quarantine of the same entry) and counts it. The entry's address
// is now vacant, so the next compute overwrites it with good bytes; the
// quarantined file sticks around for a postmortem.
func (s *Store) quarantine(path string) {
	s.corrupt.Add(1)
	if err := os.Rename(path, path+".corrupt"); err != nil && !os.IsNotExist(err) {
		// Rename failed (e.g. read-only dir): removal is the fallback that
		// still guarantees the bad entry is never loaded again.
		os.Remove(path)
	}
}

// Flush blocks until every write issued before the call has completed.
func (s *Store) Flush() { s.wg.Wait() }

// StoreStats implements compile.PlanStore.
func (s *Store) StoreStats() compile.StoreStats {
	return compile.StoreStats{
		Hits:    s.hits.Load(),
		Misses:  s.misses.Load(),
		Writes:  s.writes.Load(),
		Corrupt: s.corrupt.Load(),
	}
}

// Len walks the store and counts valid-looking entries (by name, not by
// validating contents) — a startup/debug figure, not a serve-path call.
func (s *Store) Len() int {
	n := 0
	filepath.WalkDir(s.dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if strings.HasSuffix(path, ".json") {
			n++
		}
		return nil
	})
	return n
}

// sweepTemp removes temp files a crashed writer left behind; quarantined
// .corrupt files are kept (they are diagnostic artifacts, not garbage).
func (s *Store) sweepTemp() {
	filepath.WalkDir(s.dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if strings.Contains(filepath.Base(path), ".tmp") {
			os.Remove(path)
		}
		return nil
	})
}
