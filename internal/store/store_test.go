package store

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/model"
)

// testPlan compiles a small network and returns its key and serialized
// bytes — the exact artifacts the serving layer hands a Store.
func testPlan(t *testing.T, name string, oc int) (string, []byte) {
	t.Helper()
	n := model.Single(core.Layer{Name: name, IW: 8, IH: 8, KW: 3, KH: 3, IC: 4, OC: oc})
	n.Name = name
	req := compile.NewRequest(n, core.Array{Rows: 64, Cols: 64}, compile.Options{})
	key, err := compile.Key(req)
	if err != nil {
		t.Fatal(err)
	}
	p, err := compile.New(nil).Compile(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return key, buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, data := testPlan(t, "rt", 4)

	if _, _, ok := s.GetPlan(key); ok {
		t.Fatal("unexpected hit on empty store")
	}
	s.PutPlan(key, data)
	s.Flush()
	got, plan, ok := s.GetPlan(key)
	if !ok {
		t.Fatal("miss after put")
	}
	if !bytes.Equal(got, data) {
		t.Error("loaded bytes differ from stored bytes")
	}
	if plan == nil || plan.Network.Name != "rt" {
		t.Errorf("loaded plan = %+v", plan)
	}
	st := s.StoreStats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 || st.Corrupt != 0 {
		t.Errorf("stats = %+v, want 1 hit, 1 miss, 1 write, 0 corrupt", st)
	}
}

func TestReopenStaysWarm(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key, data := testPlan(t, "reopen", 4)
	s.PutPlan(key, data)
	s.Flush()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n := s2.Len(); n != 1 {
		t.Errorf("Len = %d, want 1", n)
	}
	got, _, ok := s2.GetPlan(key)
	if !ok || !bytes.Equal(got, data) {
		t.Fatalf("reopened store: hit=%v, bytes equal=%v", ok, bytes.Equal(got, data))
	}
}

func TestPutDeduplicates(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, data := testPlan(t, "dedup", 4)
	s.PutPlan(key, data)
	s.Flush()
	s.PutPlan(key, data)
	s.Flush()
	if w := s.StoreStats().Writes; w != 1 {
		t.Errorf("writes = %d, want 1 (second put of an existing entry skipped)", w)
	}
}

// corruptEntry rewrites the single stored entry's file through fn.
func corruptEntry(t *testing.T, s *Store, key string, fn func([]byte) []byte) string {
	t.Helper()
	path := s.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, fn(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCorruptEntryQuarantined(t *testing.T) {
	cases := []struct {
		name string
		fn   func([]byte) []byte
	}{
		{"truncated", func(d []byte) []byte { return d[:len(d)/2] }},
		{"garbage", func(d []byte) []byte { return []byte("{not json") }},
		// Valid JSON whose totals no longer match its layers — the
		// golden-round-trip validation must reject it.
		{"totals-tampered", func(d []byte) []byte {
			return bytes.Replace(d, []byte(`"Totals":{"Cycles":`), []byte(`"Totals":{"Cycles":9`), 1)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			key, data := testPlan(t, "corrupt", 4)
			s.PutPlan(key, data)
			s.Flush()
			path := corruptEntry(t, s, key, tc.fn)

			if _, _, ok := s.GetPlan(key); ok {
				t.Fatal("corrupt entry served")
			}
			if st := s.StoreStats(); st.Corrupt != 1 {
				t.Errorf("corrupt = %d, want 1", st.Corrupt)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Error("corrupt entry still at its address")
			}
			if _, err := os.Stat(path + ".corrupt"); err != nil {
				t.Errorf("quarantine file missing: %v", err)
			}
			// The address is vacant again: a recompute overwrites it and the
			// key serves normally.
			s.PutPlan(key, data)
			s.Flush()
			if _, _, ok := s.GetPlan(key); !ok {
				t.Error("recomputed entry not served")
			}
		})
	}
}

func TestWrongKeyEntryQuarantined(t *testing.T) {
	// A structurally valid plan stored under another key's address — the
	// only "staleness" a content-addressed store can exhibit (a file copied
	// or renamed to the wrong path). The re-key check must catch it.
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keyA, dataA := testPlan(t, "a", 4)
	keyB, _ := testPlan(t, "b", 8)
	if keyA == keyB {
		t.Fatal("test requires distinct keys")
	}
	s.PutPlan(keyB, dataA) // plan A's bytes at key B's address
	s.Flush()
	if _, _, ok := s.GetPlan(keyB); ok {
		t.Fatal("mis-addressed entry served")
	}
	if st := s.StoreStats(); st.Corrupt != 1 {
		t.Errorf("corrupt = %d, want 1", st.Corrupt)
	}
}

func TestOpenSweepsTempFiles(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "ab")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(sub, "abcd.json.tmp123")
	keep := filepath.Join(sub, "entry.json.corrupt")
	for _, p := range []string{tmp, keep} {
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Error("abandoned temp file not swept")
	}
	if _, err := os.Stat(keep); err != nil {
		t.Error("quarantined file swept; it should be kept for postmortems")
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("Open(\"\") succeeded")
	}
}

func TestFanoutLayout(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, data := testPlan(t, "layout", 4)
	s.PutPlan(key, data)
	s.Flush()
	path := s.path(key)
	rel, err := filepath.Rel(s.Dir(), path)
	if err != nil {
		t.Fatal(err)
	}
	parts := strings.Split(rel, string(filepath.Separator))
	if len(parts) != 2 || len(parts[0]) != 2 || !strings.HasPrefix(parts[1], parts[0]) || !strings.HasSuffix(parts[1], ".json") {
		t.Errorf("entry path %q does not follow <aa>/<hash>.json with matching fan-out prefix", rel)
	}
}
