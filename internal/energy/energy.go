// Package energy estimates latency and energy for a mapped convolutional
// layer from its computing-cycle schedule.
//
// The paper motivates cycle minimization by the cost of the analog/digital
// conversions every cycle requires: per its Section II-B (citing Xia et al.,
// DAC'16), conversions account for more than 98% of PIM energy. This model
// makes that relationship explicit: each computing cycle converts DAC
// samples on the rows and ADC samples on the columns, plus a much smaller
// per-cell MAC energy inside the array.
//
// Two peripheral models are provided:
//
//   - Full-array (default, GatePeripherals = false): the DAC and ADC banks
//     of the whole array convert every cycle, as the paper's "more cycles ⇒
//     more conversions ⇒ more energy" argument implicitly assumes. Energy is
//     then proportional to computing cycles.
//   - Gated (GatePeripherals = true): only the programmed tile's rows and
//     columns convert. Under this refinement a mapping that trades fewer
//     cycles for a wider per-cycle footprint (exactly what VW-SDK does) can
//     spend *more* conversions than im2col even while being faster — an
//     observation recorded in EXPERIMENTS.md.
//
// Weight programming is a one-time cost (PIM arrays are weight-stationary
// across inferences) and is therefore reported separately, never added to
// the per-inference EnergyTotal.
//
// The default constants are synthetic, chosen at ISAAC-era magnitudes so
// that conversions dominate (>98%) exactly as the paper assumes; absolute
// joules are not a reproduced claim (DESIGN.md §3).
package energy

import (
	"fmt"
	"time"

	"repro/internal/core"
)

// Model holds the technology constants of the estimate.
type Model struct {
	// TCycle is the duration of one computing cycle (input DAC, array
	// settle, column ADC).
	TCycle time.Duration

	// EnergyDAC is the energy per row digital-to-analog conversion, in
	// joules.
	EnergyDAC float64

	// EnergyADC is the energy per column analog-to-digital conversion, in
	// joules.
	EnergyADC float64

	// EnergyCellMAC is the in-array energy per weight-holding cell per
	// cycle, in joules.
	EnergyCellMAC float64

	// EnergyCellWrite is the programming energy per cell write, in joules
	// (one-time cost, reported separately).
	EnergyCellWrite float64

	// GatePeripherals selects the gated peripheral model: conversions are
	// counted on the programmed tile footprint instead of the whole array.
	GatePeripherals bool
}

// Default returns the synthetic reference model: 100 ns cycles, 2 pJ per ADC
// conversion, 0.1 pJ per DAC conversion, 0.1 fJ per cell MAC, 10 pJ per cell
// write, full-array peripherals.
func Default() Model {
	return Model{
		TCycle:          100 * time.Nanosecond,
		EnergyDAC:       0.1e-12,
		EnergyADC:       2e-12,
		EnergyCellMAC:   0.1e-15,
		EnergyCellWrite: 10e-12,
	}
}

// Validate reports whether all constants are positive.
func (m Model) Validate() error {
	if m.TCycle <= 0 || m.EnergyDAC <= 0 || m.EnergyADC <= 0 ||
		m.EnergyCellMAC <= 0 || m.EnergyCellWrite <= 0 {
		return fmt.Errorf("energy: non-positive model constant: %+v", m)
	}
	return nil
}

// Report is the latency/energy estimate for one mapping (or a sum of
// mappings; see Add).
type Report struct {
	// Cycles is the total computing cycles.
	Cycles int64

	// DACConversions and ADCConversions are the total conversion counts.
	DACConversions int64
	ADCConversions int64

	// CellMACCycles is the total weight-cell engagements (used cells
	// summed over cycles).
	CellMACCycles int64

	// CellWrites counts programmed cells (each AR×AC tile written once;
	// one-time cost).
	CellWrites int64

	// Latency is Cycles × TCycle.
	Latency time.Duration

	// EnergyDAC, EnergyADC and EnergyCompute are the per-inference energy
	// components in joules; EnergyTotal is their sum. EnergyProgram is the
	// one-time programming energy, excluded from EnergyTotal.
	EnergyDAC     float64
	EnergyADC     float64
	EnergyCompute float64
	EnergyProgram float64
	EnergyTotal   float64
}

// ConversionFraction returns the share of per-inference energy spent on
// DAC+ADC conversions — the quantity the paper cites as >98%.
func (r Report) ConversionFraction() float64 {
	if r.EnergyTotal == 0 {
		return 0
	}
	return (r.EnergyDAC + r.EnergyADC) / r.EnergyTotal
}

// Add accumulates other into r (component-wise; latency adds serially).
func (r *Report) Add(other Report) {
	r.Cycles += other.Cycles
	r.DACConversions += other.DACConversions
	r.ADCConversions += other.ADCConversions
	r.CellMACCycles += other.CellMACCycles
	r.CellWrites += other.CellWrites
	r.Latency += other.Latency
	r.EnergyDAC += other.EnergyDAC
	r.EnergyADC += other.EnergyADC
	r.EnergyCompute += other.EnergyCompute
	r.EnergyProgram += other.EnergyProgram
	r.EnergyTotal += other.EnergyTotal
}

// Estimate computes the report for one costed mapping. Each of the AR×AC
// tiles runs NPW cycles; conversions follow the peripheral model, used
// (weight-holding) cells consume MAC energy, and each tile is programmed
// once.
func (m Model) Estimate(mp core.Mapping) (Report, error) {
	if err := m.Validate(); err != nil {
		return Report{}, err
	}
	if mp.Cycles <= 0 || mp.AR <= 0 || mp.AC <= 0 {
		return Report{}, fmt.Errorf("energy: mapping not costed: %v", mp)
	}
	var r Report
	npw := int64(mp.NPW)
	for i := 0; i < mp.AR; i++ {
		for j := 0; j < mp.AC; j++ {
			tile := mp.Tile(i, j)
			rows, cols := mp.Array.Rows, mp.Array.Cols
			if m.GatePeripherals {
				rows, cols = tile.Rows, tile.Cols
			}
			r.DACConversions += npw * int64(rows)
			r.ADCConversions += npw * int64(cols)
			r.CellMACCycles += npw * tile.UsedCells
			r.CellWrites += int64(tile.Rows) * int64(tile.Cols)
		}
	}
	// The loop above covers one convolution group's AR×AC grid; the
	// divisibility constraint makes every group's grid identical, so the
	// remaining groups scale the counts.
	if g := int64(mp.Layer.NumGroups()); g > 1 {
		r.DACConversions *= g
		r.ADCConversions *= g
		r.CellMACCycles *= g
		r.CellWrites *= g
	}
	r.Cycles = mp.Cycles
	r.Latency = time.Duration(r.Cycles) * m.TCycle
	r.EnergyDAC = float64(r.DACConversions) * m.EnergyDAC
	r.EnergyADC = float64(r.ADCConversions) * m.EnergyADC
	r.EnergyCompute = float64(r.CellMACCycles) * m.EnergyCellMAC
	r.EnergyProgram = float64(r.CellWrites) * m.EnergyCellWrite
	r.EnergyTotal = r.EnergyDAC + r.EnergyADC + r.EnergyCompute
	return r, nil
}

// EstimateLayers sums the estimate over a set of mappings (e.g. one per
// network layer).
func (m Model) EstimateLayers(mappings []core.Mapping) (Report, error) {
	var total Report
	for _, mp := range mappings {
		r, err := m.Estimate(mp)
		if err != nil {
			return Report{}, err
		}
		total.Add(r)
	}
	return total, nil
}
