package energy

import (
	"math"
	"testing"
	"time"

	"repro/internal/core"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Default()
	bad.EnergyADC = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero ADC energy accepted")
	}
	bad = Default()
	bad.TCycle = -time.Nanosecond
	if err := bad.Validate(); err == nil {
		t.Fatal("negative cycle time accepted")
	}
}

func TestEstimateSmallLayerByHand(t *testing.T) {
	// 3x3x2x4 kernel on a 32x16 array, im2col: 18 rows, 4 cols, AR=AC=1,
	// windows = 36 cycles.
	l := core.Layer{IW: 8, IH: 8, KW: 3, KH: 3, IC: 2, OC: 4}
	a := core.Array{Rows: 32, Cols: 16}
	mp, err := core.Im2col(l, a)
	if err != nil {
		t.Fatal(err)
	}
	mdl := Default()
	r, err := mdl.Estimate(mp)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles != 36 {
		t.Fatalf("cycles = %d, want 36", r.Cycles)
	}
	// Full-array peripherals: whole 32x16 banks convert every cycle.
	if r.DACConversions != 36*32 {
		t.Errorf("DAC = %d, want %d", r.DACConversions, 36*32)
	}
	if r.ADCConversions != 36*16 {
		t.Errorf("ADC = %d, want %d", r.ADCConversions, 36*16)
	}
	if r.CellMACCycles != 36*18*4 {
		t.Errorf("cell MACs = %d, want %d", r.CellMACCycles, 36*18*4)
	}
	if r.CellWrites != 18*4 {
		t.Errorf("cell writes = %d, want %d", r.CellWrites, 18*4)
	}
	if r.Latency != 3600*time.Nanosecond {
		t.Errorf("latency = %v, want 3.6us", r.Latency)
	}
	wantDAC := float64(36*32) * mdl.EnergyDAC
	if math.Abs(r.EnergyDAC-wantDAC) > 1e-18 {
		t.Errorf("EnergyDAC = %v, want %v", r.EnergyDAC, wantDAC)
	}
	// Programming is one-time and excluded from the per-inference total.
	sum := r.EnergyDAC + r.EnergyADC + r.EnergyCompute
	if math.Abs(r.EnergyTotal-sum) > 1e-18 {
		t.Errorf("EnergyTotal = %v, want %v", r.EnergyTotal, sum)
	}
	if r.EnergyProgram <= 0 {
		t.Error("EnergyProgram not reported")
	}

	// Gated peripherals convert only the 18x4 footprint.
	gated := mdl
	gated.GatePeripherals = true
	g, err := gated.Estimate(mp)
	if err != nil {
		t.Fatal(err)
	}
	if g.DACConversions != 36*18 || g.ADCConversions != 36*4 {
		t.Errorf("gated conversions = %d/%d, want %d/%d",
			g.DACConversions, g.ADCConversions, 36*18, 36*4)
	}
}

// TestGatedModelCanInvertOrdering documents the refinement recorded in
// EXPERIMENTS.md: with gated peripherals VW-SDK's wider per-cycle footprint
// can cost more conversions than im2col even though it is faster.
func TestGatedModelCanInvertOrdering(t *testing.T) {
	l := core.Layer{IW: 14, IH: 14, KW: 3, KH: 3, IC: 256, OC: 256}
	a := core.Array{Rows: 512, Cols: 512}
	im, err := core.Im2col(l, a)
	if err != nil {
		t.Fatal(err)
	}
	vw, err := core.SearchVWSDK(l, a)
	if err != nil {
		t.Fatal(err)
	}
	gated := Default()
	gated.GatePeripherals = true
	rIm, err := gated.Estimate(im)
	if err != nil {
		t.Fatal(err)
	}
	rVW, err := gated.Estimate(vw.Best)
	if err != nil {
		t.Fatal(err)
	}
	if rVW.Latency >= rIm.Latency {
		t.Errorf("VW latency %v not below im2col %v", rVW.Latency, rIm.Latency)
	}
	if rVW.ADCConversions <= rIm.ADCConversions {
		t.Skipf("gated ADC ordering changed: vw=%d im=%d",
			rVW.ADCConversions, rIm.ADCConversions)
	}
}

func TestConversionsDominate(t *testing.T) {
	// The paper's premise: conversions are >98% of energy for realistic
	// layers under the default constants.
	l := core.Layer{IW: 56, IH: 56, KW: 3, KH: 3, IC: 128, OC: 256}
	a := core.Array{Rows: 512, Cols: 512}
	res, err := core.SearchVWSDK(l, a)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Default().Estimate(res.Best)
	if err != nil {
		t.Fatal(err)
	}
	if f := r.ConversionFraction(); f < 0.98 {
		t.Errorf("conversion fraction = %v, want > 0.98 (paper, Section II-B)", f)
	}
}

func TestFewerCyclesLessEnergy(t *testing.T) {
	// VW-SDK's fewer cycles must translate into lower total energy than
	// im2col on the paper's layers.
	l := core.Layer{IW: 14, IH: 14, KW: 3, KH: 3, IC: 256, OC: 256}
	a := core.Array{Rows: 512, Cols: 512}
	im, err := core.Im2col(l, a)
	if err != nil {
		t.Fatal(err)
	}
	vw, err := core.SearchVWSDK(l, a)
	if err != nil {
		t.Fatal(err)
	}
	mdl := Default()
	rIm, err := mdl.Estimate(im)
	if err != nil {
		t.Fatal(err)
	}
	rVW, err := mdl.Estimate(vw.Best)
	if err != nil {
		t.Fatal(err)
	}
	if rVW.EnergyTotal >= rIm.EnergyTotal {
		t.Errorf("VW energy %v not below im2col %v", rVW.EnergyTotal, rIm.EnergyTotal)
	}
	if rVW.Latency >= rIm.Latency {
		t.Errorf("VW latency %v not below im2col %v", rVW.Latency, rIm.Latency)
	}
}

func TestEstimateLayers(t *testing.T) {
	a := core.Array{Rows: 128, Cols: 128}
	l1 := core.Layer{IW: 8, IH: 8, KW: 3, KH: 3, IC: 2, OC: 4}
	l2 := core.Layer{IW: 10, IH: 10, KW: 3, KH: 3, IC: 4, OC: 8}
	m1, err := core.Im2col(l1, a)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := core.Im2col(l2, a)
	if err != nil {
		t.Fatal(err)
	}
	mdl := Default()
	r1, _ := mdl.Estimate(m1)
	r2, _ := mdl.Estimate(m2)
	sum, err := mdl.EstimateLayers([]core.Mapping{m1, m2})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Cycles != r1.Cycles+r2.Cycles {
		t.Errorf("cycles = %d, want %d", sum.Cycles, r1.Cycles+r2.Cycles)
	}
	if math.Abs(sum.EnergyTotal-(r1.EnergyTotal+r2.EnergyTotal)) > 1e-18 {
		t.Errorf("energy sum mismatch")
	}
	if sum.Latency != r1.Latency+r2.Latency {
		t.Errorf("latency sum mismatch")
	}
}

func TestEstimateErrors(t *testing.T) {
	mdl := Default()
	if _, err := mdl.Estimate(core.Mapping{}); err == nil {
		t.Error("uncosted mapping accepted")
	}
	bad := Model{}
	l := core.Layer{IW: 8, IH: 8, KW: 3, KH: 3, IC: 2, OC: 4}
	m, err := core.Im2col(l, core.Array{Rows: 32, Cols: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bad.Estimate(m); err == nil {
		t.Error("invalid model accepted")
	}
	if _, err := mdl.EstimateLayers([]core.Mapping{m, {}}); err == nil {
		t.Error("EstimateLayers accepted uncosted mapping")
	}
}

func TestConversionFractionZero(t *testing.T) {
	if (Report{}).ConversionFraction() != 0 {
		t.Fatal("empty report should have zero conversion fraction")
	}
}

// TestEstimateGrouped: a grouped layer's per-group AR×AC grid is identical
// across groups (the divisibility constraint guarantees it), so every counter
// is exactly G times its dense per-group slice — matching the G× cycle count.
func TestEstimateGrouped(t *testing.T) {
	l := core.Layer{IW: 14, IH: 14, KW: 3, KH: 3, IC: 96, OC: 96,
		PadW: 1, PadH: 1, Groups: 96}
	slice := l
	slice.IC, slice.OC, slice.Groups = l.ICg(), l.OCg(), 0
	a := core.Array{Rows: 128, Cols: 64}
	mdl := Default()
	for _, gate := range []bool{false, true} {
		mdl.GatePeripherals = gate
		gm, err := core.Im2col(l, a)
		if err != nil {
			t.Fatal(err)
		}
		sm, err := core.Im2col(slice, a)
		if err != nil {
			t.Fatal(err)
		}
		gr, err := mdl.Estimate(gm)
		if err != nil {
			t.Fatal(err)
		}
		sr, err := mdl.Estimate(sm)
		if err != nil {
			t.Fatal(err)
		}
		g := int64(l.NumGroups())
		if gr.Cycles != g*sr.Cycles {
			t.Errorf("gate=%v: cycles %d, want %d", gate, gr.Cycles, g*sr.Cycles)
		}
		if gr.DACConversions != g*sr.DACConversions || gr.ADCConversions != g*sr.ADCConversions {
			t.Errorf("gate=%v: conversions %d/%d, want %d/%d", gate,
				gr.DACConversions, gr.ADCConversions, g*sr.DACConversions, g*sr.ADCConversions)
		}
		if gr.CellMACCycles != g*sr.CellMACCycles {
			t.Errorf("gate=%v: cell MACs %d, want %d", gate, gr.CellMACCycles, g*sr.CellMACCycles)
		}
		if gr.CellWrites != g*sr.CellWrites {
			t.Errorf("gate=%v: cell writes %d, want %d", gate, gr.CellWrites, g*sr.CellWrites)
		}
	}
}
