// Package peer is vwsdkd's fleet tier: a thin HTTP peer protocol in which N
// statically configured instances own consistent-hash ranges of the
// compile.Key space and proxy cache misses to the owner, so a fleet behaves
// like one big plan cache — every key is compiled once, anywhere, and served
// everywhere.
//
// The protocol is deliberately minimal: there is no membership gossip, no
// replication and no invalidation, because none is needed. compile.Key is a
// pure content address (see internal/store), so owners never disagree about
// a key's value; the ring only decides who performs — and persists — the one
// compilation. A proxied request is an ordinary POST /v1/compile carrying
// the HopHeader, which the receiving node treats as a do-not-re-proxy marker
// (one hop maximum, so a stale or disagreeing ring can never form a proxy
// cycle). A node that cannot reach an owner degrades gracefully: it compiles
// locally and answers as if it had no peers.
//
// Ring agreement is by configuration: every node is started with the same
// -peers list (order-insensitive — points are hashed per address) and finds
// itself in it by address, with loopback and unspecified-host forms
// normalized so ":8080", "localhost:8080" and "127.0.0.1:8080" identify the
// same instance.
package peer

import (
	"bytes"
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"time"
)

// HopHeader marks a request as already proxied once. A node receiving it
// must answer locally — serve its cache, or compile — and never re-proxy,
// bounding every request to one hop even if rings disagree across a config
// rollout. The value is the sending node's own ring address, for logs.
const HopHeader = "X-Vwsdk-Peer-Hop"

// virtualPoints is how many ring points each node contributes. 128 keeps
// the expected per-node share within a few percent of uniform for small
// fleets while the ring stays a few KiB.
const virtualPoints = 128

// Ring maps compile keys onto the statically configured fleet by
// consistent hashing. Build one with NewRing; a Ring is immutable and safe
// for concurrent use.
type Ring struct {
	self   string // normalized self address; "" when self is not in the ring
	points []point
	nodes  []string
}

// point is one virtual node: a position on the 64-bit hash circle and the
// address that owns it.
type point struct {
	hash uint64
	addr string
}

// NewRing builds the ring over the given peer addresses ("host:port"),
// identifying this node by self. The returned ring hashes addresses exactly
// as configured — every fleet member must be started with the same list for
// the nodes to agree on ownership — while self-identification is normalized
// (loopback forms and an empty listen host all match). self may be absent
// from peers (a warm-only or observer node): then every key is remote.
func NewRing(self string, peers []string) (*Ring, error) {
	r := &Ring{}
	seen := make(map[string]bool, len(peers))
	for _, p := range peers {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if seen[p] {
			return nil, fmt.Errorf("peer: duplicate peer %q", p)
		}
		seen[p] = true
		r.nodes = append(r.nodes, p)
		for i := 0; i < virtualPoints; i++ {
			r.points = append(r.points, point{hash: pointHash(p, i), addr: p})
		}
		if sameNode(p, self) {
			if r.self != "" && r.self != p {
				return nil, fmt.Errorf("peer: both %q and %q match self %q", r.self, p, self)
			}
			r.self = p
		}
	}
	if len(r.nodes) == 0 {
		return nil, fmt.Errorf("peer: no peers configured")
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].addr < r.points[j].addr
	})
	sort.Strings(r.nodes)
	return r, nil
}

// Nodes returns the ring members, sorted.
func (r *Ring) Nodes() []string { return r.nodes }

// Self returns this node's address as it appears in the ring, or "" when
// the configured self matched no peer.
func (r *Ring) Self() string { return r.self }

// Owner returns the address owning key and whether that owner is this node
// itself (in which case the caller must compute locally, not proxy).
func (r *Ring) Owner(key string) (addr string, self bool) {
	h := keyHash(key)
	// First point clockwise from h; wrap to the start past the last point.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	addr = r.points[i].addr
	return addr, addr == r.self
}

// pointHash places virtual node i of addr on the circle.
func pointHash(addr string, i int) uint64 {
	h := fnv.New64a()
	io.WriteString(h, addr)
	fmt.Fprintf(h, "#%d", i)
	return h.Sum64()
}

// keyHash places a compile key on the circle.
func keyHash(key string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, key)
	return h.Sum64()
}

// sameNode reports whether a configured peer address and this node's own
// address name the same instance: ports must match and the hosts must be
// equal, or both loopback/unspecified ("", "localhost", 127.0.0.0/8, ::1,
// ::). This is the "self-exclusion on loopback" rule — a node listening on
// ":8080" recognizes itself in a peers list naming "127.0.0.1:8080".
func sameNode(peer, self string) bool {
	if self == "" {
		return false
	}
	if peer == self {
		return true
	}
	ph, pp, err := net.SplitHostPort(peer)
	if err != nil {
		return false
	}
	sh, sp, err := net.SplitHostPort(self)
	if err != nil {
		return false
	}
	if pp != sp {
		return false
	}
	return ph == sh || (isLocalHost(ph) && isLocalHost(sh))
}

// isLocalHost reports whether host is a name or address of the local
// machine's loopback/unspecified interface.
func isLocalHost(host string) bool {
	if host == "" || host == "localhost" {
		return true
	}
	ip := net.ParseIP(host)
	return ip != nil && (ip.IsLoopback() || ip.IsUnspecified())
}

// Client proxies compile requests to their owners. Build one with
// NewClient; a Client is safe for concurrent use.
type Client struct {
	ring *Ring
	hc   *http.Client
	path string
}

// DefaultTimeout bounds one proxy hop when no timeout is configured. It is
// deliberately short relative to a cold search: a slow peer is treated as
// down and the node degrades to local compute rather than queueing behind
// the network.
const DefaultTimeout = 10 * time.Second

// NewClient returns a proxy client over ring. rt overrides the HTTP
// transport (nil selects http.DefaultTransport; in-process fleets inject a
// loopback transport); timeout bounds one hop (0 selects DefaultTimeout).
func NewClient(ring *Ring, rt http.RoundTripper, timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	return &Client{
		ring: ring,
		hc:   &http.Client{Transport: rt, Timeout: timeout},
		path: "/v1/compile",
	}
}

// Ring returns the client's ring.
func (c *Client) Ring() *Ring { return c.ring }

// maxResponseBytes bounds a peer response read; serialized zoo plans are
// tens of KiB, so 16 MiB is comfortably beyond any legitimate plan.
const maxResponseBytes = 16 << 20

// Fetch posts body (a /v1/compile wire request) to owner and returns the
// serialized plan bytes. Any transport error, non-200 status or oversized
// response is an error; the caller falls back to local compute.
func (c *Client) Fetch(ctx context.Context, owner string, body []byte) ([]byte, error) {
	url := "http://" + owner + c.path
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("peer: build request for %s: %w", owner, err)
	}
	req.Header.Set("Content-Type", "application/json")
	// The value identifies the sender for logs; hop detection is by header
	// presence, but a non-empty value keeps Get-based checks working too.
	from := c.ring.Self()
	if from == "" {
		from = "-"
	}
	req.Header.Set(HopHeader, from)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("peer: %s: %w", owner, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes+1))
	if err != nil {
		return nil, fmt.Errorf("peer: read %s response: %w", owner, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("peer: %s answered %d: %s", owner, resp.StatusCode, firstLine(data))
	}
	if len(data) > maxResponseBytes {
		return nil, fmt.Errorf("peer: %s response exceeds %d bytes", owner, maxResponseBytes)
	}
	return data, nil
}

// MemTransport is an in-process http.RoundTripper that dispatches by host
// to a registered http.Handler — the loopback fabric for in-process fleets
// (the fleet benchmark and tests wire N Servers together without sockets).
// Hosts absent from the map fail like an unreachable peer.
type MemTransport map[string]http.Handler

// RoundTrip implements http.RoundTripper.
func (t MemTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	h, ok := t[req.URL.Host]
	if !ok {
		return nil, fmt.Errorf("peer: no route to %s", req.URL.Host)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Result(), nil
}

// firstLine trims an error body for the wrapped error message.
func firstLine(data []byte) string {
	s := strings.TrimSpace(string(data))
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	if len(s) > 200 {
		s = s[:200]
	}
	return s
}
