package peer

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

func mustRing(t *testing.T, self string, peers []string) *Ring {
	t.Helper()
	r, err := NewRing(self, peers)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

var threeNodes = []string{"10.0.0.1:8080", "10.0.0.2:8080", "10.0.0.3:8080"}

func TestOwnerDeterministicAndOrderInsensitive(t *testing.T) {
	a := mustRing(t, "10.0.0.1:8080", threeNodes)
	b := mustRing(t, "10.0.0.2:8080", []string{threeNodes[2], threeNodes[0], threeNodes[1]})
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("vwsdk-key/v2|net-%d|...", i)
		oa, _ := a.Owner(key)
		ob, _ := b.Owner(key)
		if oa != ob {
			t.Fatalf("rings disagree on %q: %s vs %s (ring agreement must be order-insensitive)", key, oa, ob)
		}
	}
}

func TestOwnerDistribution(t *testing.T) {
	r := mustRing(t, threeNodes[0], threeNodes)
	counts := make(map[string]int)
	const n = 3000
	for i := 0; i < n; i++ {
		owner, _ := r.Owner(fmt.Sprintf("key-%d", i))
		counts[owner]++
	}
	if len(counts) != 3 {
		t.Fatalf("only %d of 3 nodes own keys: %v", len(counts), counts)
	}
	for addr, c := range counts {
		// Fair-share is 1000; virtual nodes should keep every node within a
		// loose factor of it.
		if c < n/3/3 || c > n {
			t.Errorf("node %s owns %d of %d keys — ring badly unbalanced", addr, c, n)
		}
	}
}

func TestOwnerSelf(t *testing.T) {
	r := mustRing(t, threeNodes[1], threeNodes)
	sawSelf := false
	for i := 0; i < 100; i++ {
		owner, self := r.Owner(fmt.Sprintf("key-%d", i))
		if self != (owner == threeNodes[1]) {
			t.Fatalf("self flag inconsistent for owner %s", owner)
		}
		sawSelf = sawSelf || self
	}
	if !sawSelf {
		t.Error("self owns no keys out of 100 — ring badly unbalanced")
	}
}

func TestSelfExclusionOnLoopback(t *testing.T) {
	cases := []struct {
		self  string
		peers []string
		want  string
	}{
		// Exact match.
		{"10.0.0.1:8080", threeNodes, "10.0.0.1:8080"},
		// A node listening on the unspecified host finds its loopback form.
		{":8081", []string{"127.0.0.1:8081", "127.0.0.1:8082"}, "127.0.0.1:8081"},
		{"[::]:8081", []string{"127.0.0.1:8081", "127.0.0.1:8082"}, "127.0.0.1:8081"},
		{"0.0.0.0:8081", []string{"localhost:8081", "localhost:8082"}, "localhost:8081"},
		{"127.0.0.1:9090", []string{"localhost:9090", "localhost:9091"}, "localhost:9090"},
		// Port differs: not self.
		{"127.0.0.1:8083", []string{"127.0.0.1:8081", "127.0.0.1:8082"}, ""},
		// Distinct real hosts never collapse.
		{"10.0.0.9:8080", threeNodes, ""},
	}
	for _, tc := range cases {
		r := mustRing(t, tc.self, tc.peers)
		if r.Self() != tc.want {
			t.Errorf("NewRing(self=%q, peers=%v).Self() = %q, want %q", tc.self, tc.peers, r.Self(), tc.want)
		}
	}
}

func TestNewRingRejects(t *testing.T) {
	if _, err := NewRing("x:1", nil); err == nil {
		t.Error("empty peer list accepted")
	}
	if _, err := NewRing("x:1", []string{"a:1", "a:1"}); err == nil {
		t.Error("duplicate peer accepted")
	}
}

func TestFetchSetsHopHeaderAndReturnsBody(t *testing.T) {
	var gotHop string
	owner := "10.0.0.2:8080"
	mt := MemTransport{owner: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotHop = r.Header.Get(HopHeader)
		if r.URL.Path != "/v1/compile" {
			t.Errorf("peer hop path = %q", r.URL.Path)
		}
		w.Write([]byte(`{"plan":true}`))
	})}
	c := NewClient(mustRing(t, threeNodes[0], threeNodes), mt, 0)
	data, err := c.Fetch(context.Background(), owner, []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"plan":true}` {
		t.Errorf("body = %q", data)
	}
	if gotHop != threeNodes[0] {
		t.Errorf("hop header = %q, want sender %q", gotHop, threeNodes[0])
	}
}

func TestFetchErrors(t *testing.T) {
	mt := MemTransport{
		"bad:1": http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, `{"error":{"status":503}}`, http.StatusServiceUnavailable)
		}),
	}
	c := NewClient(mustRing(t, "self:1", []string{"self:1", "bad:1", "gone:1"}), mt, time.Second)
	if _, err := c.Fetch(context.Background(), "bad:1", nil); err == nil || !strings.Contains(err.Error(), "503") {
		t.Errorf("non-200 fetch error = %v", err)
	}
	// A host the transport cannot reach fails like a down peer.
	if _, err := c.Fetch(context.Background(), "gone:1", nil); err == nil {
		t.Error("fetch to unreachable peer succeeded")
	}
}
