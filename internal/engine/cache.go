package engine

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// searchKind discriminates the cached search families. Variant searches are
// keyed by the variant itself; VariantFull shares the VW-SDK entry because
// SearchVariant(VariantFull) is defined as SearchVWSDK.
type searchKind uint8

const (
	kindVWSDK searchKind = iota
	kindSDK
	kindSMD
	kindVariant
)

// cacheKey identifies one memoizable search: the normalized layer shape
// (name cleared — ResNet/VGG repeat shapes under different names), the
// array, and which search ran. VariantFull never appears as a kindVariant
// key: Engine.SearchVariant routes it to SearchVWSDK, whose kindVWSDK entry
// it shares by definition. core.Layer and core.Array are comparable
// structs, so the key is directly usable as a map key.
type cacheKey struct {
	layer   core.Layer
	array   core.Array
	kind    searchKind
	variant core.Variant
}

// newCacheKey normalizes l and strips its name so equal shapes collide.
func newCacheKey(l core.Layer, a core.Array, kind searchKind, v core.Variant) cacheKey {
	l = l.Normalized()
	l.Name = ""
	return cacheKey{layer: l, array: a, kind: kind, variant: v}
}

// resultCache is a mutex-protected LRU of search results. Stored results
// have their layer names cleared; Engine re-stamps the caller's name on hit.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *cacheEntry
	items map[cacheKey]*list.Element

	evictions atomic.Uint64 // results dropped to respect cap
}

type cacheEntry struct {
	key cacheKey
	res core.Result
}

func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		return nil
	}
	return &resultCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[cacheKey]*list.Element, capacity),
	}
}

func (c *resultCache) get(k cacheKey) (core.Result, bool) {
	if c == nil {
		return core.Result{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return core.Result{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

func (c *resultCache) put(k cacheKey, res core.Result) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.items[k] = c.order.PushFront(&cacheEntry{key: k, res: res})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions.Add(1)
	}
}

// evicted reports how many results have been dropped to respect the
// capacity.
func (c *resultCache) evicted() uint64 {
	if c == nil {
		return 0
	}
	return c.evictions.Load()
}

// len reports the number of cached results (for tests and stats).
func (c *resultCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
