// Package engine is the concurrent, memoizing front end to the core mapping
// searches: it fans per-layer searches and batch-sweep cells across a
// bounded worker pool and dedupes repeated (layer shape, array, search)
// combinations through an LRU result cache — ResNet and VGG repeat layer
// shapes heavily, and experiment sweeps re-cost the same pairs from scratch
// otherwise.
//
// Each individual search runs the core package's breakpoint-pruned
// enumerator (core.SearchVWSDK and friends), which generates candidate cost
// classes on the fly instead of materializing and chunking the O(PaddedW ×
// PaddedH) candidate slice the engine used to fan out; a search now costs a
// few hundred candidates at most, so the worker pool's parallelism is spent
// where it pays — across layers and sweep cells — and per-search allocations
// shrink to the result itself. WithExhaustiveSearch switches an engine to
// the brute-force core sweeps for differential testing and benchmarking.
//
// Every method is context-first: cancellation propagates into the worker
// pool (a search waiting for a slot gives the slot up), into in-flight
// dedupe waits, and into the search loops themselves via the core package's
// per-row checkpoints — so a cancelled caller actually stops burning CPU.
// Cancelled searches are never cached.
//
// Results are bit-identical to the serial algorithms in internal/core:
// every cached result is replayed with only the caller's layer name
// re-stamped, and differential tests assert equality on every predefined
// network.
//
// An Engine is safe for concurrent use; all methods may be called from any
// goroutine.
package engine

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/obs"
)

// Engine schedules mapping searches over a worker pool and memoizes their
// results. The zero value is not usable; call New.
type Engine struct {
	workers    int
	cacheCap   int
	exhaustive bool
	sem        chan struct{} // bounds concurrently running searches
	cache      *resultCache

	mu     sync.Mutex
	flight map[cacheKey]*call // in-flight searches, for duplicate suppression

	// sweepCellHook, when non-nil, observes every sweep cell index just
	// before its dispatch check. Tests use it to cancel a context at a
	// deterministic point mid-sweep; it is never set in production.
	sweepCellHook func(i int)

	searches atomic.Uint64
	hits     atomic.Uint64
	misses   atomic.Uint64
	dedupes  atomic.Uint64
	costed   atomic.Uint64
	pruned   atomic.Uint64
	running  atomic.Int64 // searches currently holding a worker-pool slot
}

// call is one in-flight search; waiters block on done and read res/err.
type call struct {
	done chan struct{}
	res  core.Result
	err  error
}

// Option configures an Engine.
type Option func(*Engine)

// WithWorkers bounds the number of concurrently running searches;
// n < 1 restores the default (GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(e *Engine) { e.workers = n }
}

// WithCacheSize sets the LRU result-cache capacity in entries; 0 disables
// caching, n < 0 restores the default (4096).
func WithCacheSize(n int) Option {
	return func(e *Engine) { e.cacheCap = n }
}

// WithExhaustiveSearch routes the engine's VW-SDK and variant searches
// through the brute-force core sweeps (core.SearchVWSDKExhaustive /
// core.SearchVariantExhaustive) instead of the breakpoint-pruned default.
// Results are bit-identical either way; the option exists so differential
// tests and cmd/vwsdkbench can compare the two paths under the same caching
// and concurrency.
func WithExhaustiveSearch() Option {
	return func(e *Engine) { e.exhaustive = true }
}

// defaultCacheSize holds every distinct (shape, array, search) of a large
// multi-network, multi-array sweep with room to spare; one entry is a few
// hundred bytes.
const defaultCacheSize = 4096

// New returns an Engine with the given options applied.
func New(opts ...Option) *Engine {
	e := &Engine{workers: 0, cacheCap: -1}
	for _, o := range opts {
		o(e)
	}
	if e.workers < 1 {
		e.workers = runtime.GOMAXPROCS(0)
	}
	if e.cacheCap < 0 {
		e.cacheCap = defaultCacheSize
	}
	e.sem = make(chan struct{}, e.workers)
	e.cache = newResultCache(e.cacheCap)
	e.flight = make(map[cacheKey]*call)
	return e
}

// Workers reports the configured worker-pool size.
func (e *Engine) Workers() int { return e.workers }

// Stats are cumulative Engine counters.
type Stats struct {
	// Searches is the number of top-level search calls served.
	Searches uint64

	// CacheHits counts searches answered from the LRU cache or joined onto
	// an identical in-flight search.
	CacheHits uint64

	// CacheMisses counts searches that ran the underlying algorithm
	// (including searches that were then cancelled mid-run).
	CacheMisses uint64

	// FlightDedupes counts searches that joined an identical in-flight
	// search instead of starting their own computation (counted at join
	// time; successful joins are also CacheHits).
	FlightDedupes uint64

	// Evictions counts results dropped from the LRU cache to respect its
	// capacity.
	Evictions uint64

	// CachedResults is the current number of cached results.
	CachedResults int

	// CandidatesCosted sums Result.Evaluated over every search the engine
	// actually computed (cache hits and in-flight joins cost nothing): the
	// number of candidates evaluated — per cost class for the VW-SDK
	// searches (whether the class was costed by the model or resolved in
	// closed form; see core.SearchStats for that split), per window for the
	// baselines.
	CandidatesCosted uint64

	// CandidatesPruned counts the candidate windows the exhaustive sweeps
	// would have costed for those same searches but the breakpoint-pruned
	// enumerators skipped (core.ExhaustiveCandidates − Evaluated). Always 0
	// on a WithExhaustiveSearch engine and for the SDK/SMD baselines, which
	// have no pruned/exhaustive split.
	CandidatesPruned uint64

	// InFlightSearches is the number of searches currently holding a
	// worker-pool slot — a gauge, not cumulative.
	InFlightSearches int64
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Searches:         e.searches.Load(),
		CacheHits:        e.hits.Load(),
		CacheMisses:      e.misses.Load(),
		FlightDedupes:    e.dedupes.Load(),
		Evictions:        e.cache.evicted(),
		CachedResults:    e.cache.len(),
		CandidatesCosted: e.costed.Load(),
		CandidatesPruned: e.pruned.Load(),
		InFlightSearches: e.running.Load(),
	}
}

// SearchVWSDK runs Algorithm 1 (the optimal parallel-window search) under
// the cache and worker pool; bit-identical to core.SearchVWSDK.
func (e *Engine) SearchVWSDK(ctx context.Context, l core.Layer, a core.Array) (core.Result, error) {
	return e.SearchVariant(ctx, l, a, core.VariantFull)
}

// SearchSDK runs the square-window SDK baseline search; bit-identical to
// core.SearchSDK.
func (e *Engine) SearchSDK(ctx context.Context, l core.Layer, a core.Array) (core.Result, error) {
	return e.memoized(ctx, newCacheKey(l, a, kindSDK, 0), l.Name, func(ctx context.Context) (core.Result, error) {
		return e.withSlot(ctx, func() (core.Result, error) { return core.SearchSDKContext(ctx, l, a) })
	})
}

// SearchSMD runs the sub-matrix-duplication baseline search (a single costed
// mapping) under the cache; bit-identical to core.SearchSMD.
func (e *Engine) SearchSMD(ctx context.Context, l core.Layer, a core.Array) (core.Result, error) {
	return e.memoized(ctx, newCacheKey(l, a, kindSMD, 0), l.Name, func(ctx context.Context) (core.Result, error) {
		return e.withSlot(ctx, func() (core.Result, error) { return core.SearchSMDContext(ctx, l, a) })
	})
}

// SearchVariant runs an ablated VW-SDK search; bit-identical to
// core.SearchVariant. VariantFull shares cache entries with SearchVWSDK.
func (e *Engine) SearchVariant(ctx context.Context, l core.Layer, a core.Array, v core.Variant) (core.Result, error) {
	k := newCacheKey(l, a, kindVariant, v)
	if v == core.VariantFull {
		k = newCacheKey(l, a, kindVWSDK, 0)
	}
	return e.memoized(ctx, k, l.Name, func(ctx context.Context) (core.Result, error) {
		return e.withSlot(ctx, func() (core.Result, error) {
			if e.exhaustive {
				return core.Exhaustive{}.SearchVariant(ctx, l, a, v)
			}
			return core.SearchVariantContext(ctx, l, a, v)
		})
	})
}

// SearchNetwork optimizes every layer through the engine concurrently and
// aggregates the totals, mirroring core.SearchNetwork (results in layer
// order, first error wins) with cached and pooled layer searches.
func (e *Engine) SearchNetwork(ctx context.Context, layers []core.Layer, a core.Array) (core.NetworkResult, error) {
	return e.SearchNetworkVariant(ctx, layers, a, core.VariantFull)
}

// SearchNetworkVariant is SearchNetwork under an ablation variant. The
// per-layer goroutines it fans out are cheap orchestrators — the actual
// costing inside each search is bounded by the worker pool.
func (e *Engine) SearchNetworkVariant(ctx context.Context, layers []core.Layer, a core.Array, v core.Variant) (core.NetworkResult, error) {
	search := func(ctx context.Context, l core.Layer, a core.Array) (core.Result, error) {
		return e.SearchVariant(ctx, l, a, v)
	}
	if e.workers == 1 {
		// Everything serializes through the one pool slot anyway; skipping
		// the per-layer goroutines avoids measurable scheduler churn.
		return core.SearchNetworkSeq(ctx, layers, a, search)
	}
	return core.SearchNetworkWith(ctx, layers, a, search)
}

// memoized serves one search through the cache and in-flight duplicate
// suppression. compute runs the underlying algorithm with the caller's
// original layer (so computed results and errors are exactly the serial
// ones); the cached copy is stored name-cleared and re-stamped per caller.
// A waiter abandons an in-flight join when its own context is cancelled, and
// a cancelled computation is reported to the leader without being cached.
func (e *Engine) memoized(ctx context.Context, k cacheKey, name string, compute func(context.Context) (core.Result, error)) (core.Result, error) {
	ctx, sp := obs.Start(ctx, "engine.search")
	defer sp.End()
	sp.SetStr("layer", name)
	e.searches.Add(1)
	if res, ok := e.cache.get(k); ok {
		e.hits.Add(1)
		sp.SetStr("outcome", "hit")
		return renamed(res, name), nil
	}
	e.mu.Lock()
	if c, ok := e.flight[k]; ok {
		e.mu.Unlock()
		e.dedupes.Add(1)
		sp.SetStr("outcome", "coalesced")
		select {
		case <-c.done:
		case <-ctx.Done():
			// The waiter's own caller is gone; the leader keeps running for
			// everyone else.
			return core.Result{}, ctx.Err()
		}
		if c.err != nil {
			// The leader's error message names the leader's layer (or the
			// leader was cancelled, which must not fail this caller);
			// recompute so this caller gets exactly the serial outcome for
			// its own inputs. The duplicated work is negligible — search
			// errors fail fast in input validation.
			e.misses.Add(1)
			res, err := compute(ctx)
			if err == nil {
				sp.SetStr("path", e.searchPath(k)).SetInt("candidates", int64(res.Evaluated))
			}
			return res, err
		}
		e.hits.Add(1)
		return renamed(c.res, name), nil
	}
	// Re-check the cache under the lock: a search that finished between the
	// lock-free lookup above and Lock() has already left the flight map, and
	// recomputing it here would duplicate the full sweep.
	if res, ok := e.cache.get(k); ok {
		e.mu.Unlock()
		e.hits.Add(1)
		sp.SetStr("outcome", "hit")
		return renamed(res, name), nil
	}
	c := &call{done: make(chan struct{})}
	e.flight[k] = c
	e.mu.Unlock()

	e.misses.Add(1)
	sp.SetStr("outcome", "miss")
	res, err := compute(ctx)
	if err == nil {
		e.countCandidates(k, res)
		sp.SetStr("path", e.searchPath(k)).SetInt("candidates", int64(res.Evaluated))
		c.res = anonymized(res)
		e.cache.put(k, c.res)
	}
	c.err = err
	e.mu.Lock()
	delete(e.flight, k)
	e.mu.Unlock()
	close(c.done)
	return res, err
}

// searchPath names the search implementation a computed result came from, for
// span attribution: closed-form/pruned for the VW-SDK family (the same split
// core.SearchStats reports), exhaustive on a WithExhaustiveSearch engine,
// baseline for SDK/SMD.
func (e *Engine) searchPath(k cacheKey) string {
	if e.exhaustive {
		return "exhaustive"
	}
	switch k.kind {
	case kindVWSDK:
		if core.ClosedFormEligible(k.layer) {
			return core.PathClosedForm
		}
		return core.PathPruned
	case kindVariant:
		// Ablated variants always run their own pruned enumerators; the
		// closed form is proven only for the full search (VariantFull keys
		// are kindVWSDK).
		return core.PathPruned
	default:
		return "baseline"
	}
}

// countCandidates maintains the CandidatesCosted/CandidatesPruned counters
// for one computed (never cached) search result.
func (e *Engine) countCandidates(k cacheKey, res core.Result) {
	e.costed.Add(uint64(res.Evaluated))
	if e.exhaustive {
		return
	}
	switch k.kind {
	case kindVWSDK, kindVariant:
		v := core.VariantFull
		if k.kind == kindVariant {
			v = k.variant
		}
		if ex := core.ExhaustiveCandidates(k.layer, v); ex > int64(res.Evaluated) {
			e.pruned.Add(uint64(ex - int64(res.Evaluated)))
		}
	}
}

// withSlot runs f while holding one worker-pool slot, so every leaf search
// is bounded by WithWorkers; a caller cancelled while waiting for a slot
// gives up instead of queueing dead work. Callers must not already hold a
// slot (holding one while acquiring another would deadlock a single-worker
// pool); the orchestration layers (memoized, SearchNetworkVariant, Sweep)
// never do.
func (e *Engine) withSlot(ctx context.Context, f func() (core.Result, error)) (core.Result, error) {
	select {
	case e.sem <- struct{}{}:
	case <-ctx.Done():
		return core.Result{}, ctx.Err()
	}
	e.running.Add(1)
	defer func() {
		e.running.Add(-1)
		<-e.sem
	}()
	return f()
}

// anonymized clears the layer name from a result so shape-equal layers share
// one cache entry.
func anonymized(res core.Result) core.Result { return renamed(res, "") }

// renamed stamps name onto the result's mappings.
func renamed(res core.Result, name string) core.Result {
	res.Best.Layer.Name = name
	res.Im2col.Layer.Name = name
	return res
}
