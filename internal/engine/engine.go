// Package engine is the concurrent, memoizing front end to the core mapping
// searches: it fans candidate-window evaluation and per-layer searches
// across a bounded worker pool and dedupes repeated (layer shape, array,
// search) combinations through an LRU result cache — ResNet and VGG repeat
// layer shapes heavily, and experiment sweeps re-cost the same pairs from
// scratch otherwise.
//
// Results are bit-identical to the serial algorithms in internal/core: the
// parallel Algorithm 1 sweep costs candidates concurrently but reduces them
// in the paper's scan order (width inner, height outer) with the same
// first-strictly-better tie-breaking, and every cached result is replayed
// with only the caller's layer name re-stamped. Differential tests assert
// equality on every predefined network.
//
// An Engine is safe for concurrent use; all methods may be called from any
// goroutine.
package engine

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// Engine schedules mapping searches over a worker pool and memoizes their
// results. The zero value is not usable; call New.
type Engine struct {
	workers  int
	cacheCap int
	sem      chan struct{} // bounds concurrently running candidate chunks
	cache    *resultCache

	mu     sync.Mutex
	flight map[cacheKey]*call // in-flight searches, for duplicate suppression

	searches atomic.Uint64
	hits     atomic.Uint64
	misses   atomic.Uint64
	dedupes  atomic.Uint64
}

// call is one in-flight search; waiters block on done and read res/err.
type call struct {
	done chan struct{}
	res  core.Result
	err  error
}

// Option configures an Engine.
type Option func(*Engine)

// WithWorkers bounds the number of concurrently evaluated candidate chunks;
// n < 1 restores the default (GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(e *Engine) { e.workers = n }
}

// WithCacheSize sets the LRU result-cache capacity in entries; 0 disables
// caching, n < 0 restores the default (4096).
func WithCacheSize(n int) Option {
	return func(e *Engine) { e.cacheCap = n }
}

// defaultCacheSize holds every distinct (shape, array, search) of a large
// multi-network, multi-array sweep with room to spare; one entry is a few
// hundred bytes.
const defaultCacheSize = 4096

// serialThreshold is the candidate count below which a sweep stays on the
// calling goroutine: spawning workers costs more than costing the windows.
const serialThreshold = 512

// New returns an Engine with the given options applied.
func New(opts ...Option) *Engine {
	e := &Engine{workers: 0, cacheCap: -1}
	for _, o := range opts {
		o(e)
	}
	if e.workers < 1 {
		e.workers = runtime.GOMAXPROCS(0)
	}
	if e.cacheCap < 0 {
		e.cacheCap = defaultCacheSize
	}
	e.sem = make(chan struct{}, e.workers)
	e.cache = newResultCache(e.cacheCap)
	e.flight = make(map[cacheKey]*call)
	return e
}

// Workers reports the configured worker-pool size.
func (e *Engine) Workers() int { return e.workers }

// Stats are cumulative Engine counters.
type Stats struct {
	// Searches is the number of top-level search calls served.
	Searches uint64

	// CacheHits counts searches answered from the LRU cache or joined onto
	// an identical in-flight search.
	CacheHits uint64

	// CacheMisses counts searches that ran the underlying algorithm.
	CacheMisses uint64

	// FlightDedupes counts searches that joined an identical in-flight
	// search instead of starting their own computation (counted at join
	// time; successful joins are also CacheHits).
	FlightDedupes uint64

	// Evictions counts results dropped from the LRU cache to respect its
	// capacity.
	Evictions uint64

	// CachedResults is the current number of cached results.
	CachedResults int
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Searches:      e.searches.Load(),
		CacheHits:     e.hits.Load(),
		CacheMisses:   e.misses.Load(),
		FlightDedupes: e.dedupes.Load(),
		Evictions:     e.cache.evicted(),
		CachedResults: e.cache.len(),
	}
}

// SearchVWSDK runs Algorithm 1 (the optimal parallel-window search) with
// candidate windows costed across the worker pool; bit-identical to
// core.SearchVWSDK.
func (e *Engine) SearchVWSDK(l core.Layer, a core.Array) (core.Result, error) {
	return e.memoized(newCacheKey(l, a, kindVWSDK, 0), l.Name, func() (core.Result, error) {
		return e.sweepVWSDK(l, a)
	})
}

// SearchSDK runs the square-window SDK baseline search; bit-identical to
// core.SearchSDK. The candidate set is tiny (one window per duplication
// step), so it runs serially under the cache.
func (e *Engine) SearchSDK(l core.Layer, a core.Array) (core.Result, error) {
	return e.memoized(newCacheKey(l, a, kindSDK, 0), l.Name, func() (core.Result, error) {
		return e.withSlot(func() (core.Result, error) { return core.SearchSDK(l, a) })
	})
}

// SearchSMD runs the sub-matrix-duplication baseline search (a single costed
// mapping) under the cache; bit-identical to core.SearchSMD.
func (e *Engine) SearchSMD(l core.Layer, a core.Array) (core.Result, error) {
	return e.memoized(newCacheKey(l, a, kindSMD, 0), l.Name, func() (core.Result, error) {
		return e.withSlot(func() (core.Result, error) { return core.SearchSMD(l, a) })
	})
}

// SearchVariant runs an ablated VW-SDK search; bit-identical to
// core.SearchVariant. VariantFull shares cache entries with SearchVWSDK, and
// VariantRectFullChannel — the only other exhaustive 2-D sweep — is costed
// across the worker pool.
func (e *Engine) SearchVariant(l core.Layer, a core.Array, v core.Variant) (core.Result, error) {
	switch v {
	case core.VariantFull:
		return e.SearchVWSDK(l, a)
	case core.VariantRectFullChannel:
		return e.memoized(newCacheKey(l, a, kindVariant, v), l.Name, func() (core.Result, error) {
			return e.sweepRectFullChannel(l, a)
		})
	default:
		return e.memoized(newCacheKey(l, a, kindVariant, v), l.Name, func() (core.Result, error) {
			return e.withSlot(func() (core.Result, error) { return core.SearchVariant(l, a, v) })
		})
	}
}

// SearchNetwork optimizes every layer through the engine concurrently and
// aggregates the totals, mirroring core.SearchNetwork (results in layer
// order, first error wins) with cached and pooled layer searches.
func (e *Engine) SearchNetwork(layers []core.Layer, a core.Array) (core.NetworkResult, error) {
	return e.SearchNetworkVariant(layers, a, core.VariantFull)
}

// SearchNetworkVariant is SearchNetwork under an ablation variant. The
// per-layer goroutines it fans out are cheap orchestrators — the actual
// costing inside each search is bounded by the worker pool.
func (e *Engine) SearchNetworkVariant(layers []core.Layer, a core.Array, v core.Variant) (core.NetworkResult, error) {
	search := func(l core.Layer, a core.Array) (core.Result, error) {
		return e.SearchVariant(l, a, v)
	}
	if e.workers == 1 {
		// Everything serializes through the one pool slot anyway; skipping
		// the per-layer goroutines avoids measurable scheduler churn.
		return core.SearchNetworkSeq(layers, a, search)
	}
	return core.SearchNetworkWith(layers, a, search)
}

// memoized serves one search through the cache and in-flight duplicate
// suppression. compute runs the underlying algorithm with the caller's
// original layer (so computed results and errors are exactly the serial
// ones); the cached copy is stored name-cleared and re-stamped per caller.
func (e *Engine) memoized(k cacheKey, name string, compute func() (core.Result, error)) (core.Result, error) {
	e.searches.Add(1)
	if res, ok := e.cache.get(k); ok {
		e.hits.Add(1)
		return renamed(res, name), nil
	}
	e.mu.Lock()
	if c, ok := e.flight[k]; ok {
		e.mu.Unlock()
		e.dedupes.Add(1)
		<-c.done
		if c.err != nil {
			// The leader's error message names the leader's layer; recompute
			// so this caller gets exactly the serial error for its own. The
			// duplicated work is negligible — search errors fail fast in
			// input validation.
			e.misses.Add(1)
			_, err := compute()
			return core.Result{}, err
		}
		e.hits.Add(1)
		return renamed(c.res, name), nil
	}
	// Re-check the cache under the lock: a search that finished between the
	// lock-free lookup above and Lock() has already left the flight map, and
	// recomputing it here would duplicate the full sweep.
	if res, ok := e.cache.get(k); ok {
		e.mu.Unlock()
		e.hits.Add(1)
		return renamed(res, name), nil
	}
	c := &call{done: make(chan struct{})}
	e.flight[k] = c
	e.mu.Unlock()

	e.misses.Add(1)
	res, err := compute()
	if err == nil {
		c.res = anonymized(res)
		e.cache.put(k, c.res)
	}
	c.err = err
	e.mu.Lock()
	delete(e.flight, k)
	e.mu.Unlock()
	close(c.done)
	return res, err
}

// withSlot runs f while holding one worker-pool slot, so every leaf
// computation — serial baseline searches, sub-threshold sweeps, the
// single-worker bypass — is bounded by WithWorkers just like the chunked
// sweeps. Callers must not already hold a slot (holding one while acquiring
// another would deadlock a single-worker pool); the orchestration layers
// (memoized, SearchNetworkVariant, Sweep) never do.
func (e *Engine) withSlot(f func() (core.Result, error)) (core.Result, error) {
	e.sem <- struct{}{}
	defer func() { <-e.sem }()
	return f()
}

// anonymized clears the layer name from a result so shape-equal layers share
// one cache entry.
func anonymized(res core.Result) core.Result { return renamed(res, "") }

// renamed stamps name onto the result's mappings.
func renamed(res core.Result, name string) core.Result {
	res.Best.Layer.Name = name
	res.Im2col.Layer.Name = name
	return res
}

// enumerate lists Algorithm 1's candidate windows in the paper's scan order:
// width in the inner loop, height in the outer loop, skipping the
// kernel-sized window the im2col seed covers. Slice order is what the
// reduction in sweep relies on to replay serial tie-breaking.
func enumerate(l core.Layer) []core.Window {
	cands := make([]core.Window, 0, (l.PaddedH()-l.KH+1)*(l.PaddedW()-l.KW+1)-1)
	for h := l.KH; h <= l.PaddedH(); h++ {
		for w := l.KW; w <= l.PaddedW(); w++ {
			if w == l.KW && h == l.KH {
				continue
			}
			cands = append(cands, core.Window{W: w, H: h})
		}
	}
	return cands
}

// chunkResult is the deterministic summary of one contiguous candidate
// range: the range's minimum-cycle mapping at the earliest scan position
// (first-strictly-better within the chunk), how many candidates were costed,
// and the first hard (non-infeasible) error.
type chunkResult struct {
	best      core.Mapping
	bestSet   bool
	evaluated int
	err       error
}

// sweep costs all candidates with cost, fanned across the worker pool in
// contiguous chunks, and reduces them in scan order seeded by base. skip, if
// non-nil, filters costed mappings (the rect+full-channels feasibility
// rule); skipped candidates still count as evaluated, matching the serial
// loops. Any hard error aborts with that error; because chunks are merged in
// scan order, the reported error is the earliest one a serial sweep would
// have hit only when it occurs in the first erroring chunk — the serial
// algorithms cannot actually return hard errors for enumerated in-bounds
// candidates once Im2col validated the layer, so this path is defensive.
func (e *Engine) sweep(
	base core.Result,
	cands []core.Window,
	cost func(core.Window) (core.Mapping, error),
	skip func(core.Mapping) bool,
) (core.Result, error) {
	res := base
	if len(cands) < serialThreshold {
		return e.withSlot(func() (core.Result, error) {
			for _, pw := range cands {
				m, err := cost(pw)
				if err != nil {
					if errors.Is(err, core.ErrInfeasible) {
						continue
					}
					return core.Result{}, err
				}
				res.Evaluated++
				if skip != nil && skip(m) {
					continue
				}
				if m.Cycles < res.Best.Cycles {
					res.Best = m
				}
			}
			return res, nil
		})
	}

	chunks := e.workers
	if chunks > len(cands) {
		chunks = len(cands)
	}
	parts := make([]chunkResult, chunks)
	var wg sync.WaitGroup
	for ci := 0; ci < chunks; ci++ {
		lo := ci * len(cands) / chunks
		hi := (ci + 1) * len(cands) / chunks
		wg.Add(1)
		go func(ci, lo, hi int) {
			defer wg.Done()
			e.sem <- struct{}{}
			defer func() { <-e.sem }()
			part := &parts[ci]
			for _, pw := range cands[lo:hi] {
				m, err := cost(pw)
				if err != nil {
					if errors.Is(err, core.ErrInfeasible) {
						continue
					}
					part.err = err
					return
				}
				part.evaluated++
				if skip != nil && skip(m) {
					continue
				}
				// Strict < replays the serial first-strictly-better rule
				// within the chunk's contiguous scan range.
				if !part.bestSet || m.Cycles < part.best.Cycles {
					part.best = m
					part.bestSet = true
				}
			}
		}(ci, lo, hi)
	}
	wg.Wait()
	for _, part := range parts {
		if part.err != nil {
			return core.Result{}, part.err
		}
		res.Evaluated += part.evaluated
		if part.bestSet && part.best.Cycles < res.Best.Cycles {
			res.Best = part.best
		}
	}
	return res, nil
}

// sweepVWSDK is the parallel Algorithm 1: im2col seeds the minimum, every
// feasible variable window is costed with eq. 8, and the scan-order
// reduction keeps the first strictly better candidate.
func (e *Engine) sweepVWSDK(l core.Layer, a core.Array) (core.Result, error) {
	if e.workers == 1 {
		// A single-worker pool cannot overlap candidate chunks; the serial
		// algorithm is the same computation without the fan-out overhead.
		return e.withSlot(func() (core.Result, error) { return core.SearchVWSDK(l, a) })
	}
	l = l.Normalized()
	base, err := core.Im2col(l, a)
	if err != nil {
		return core.Result{}, err
	}
	return e.sweep(
		core.Result{Best: base, Im2col: base},
		enumerate(l),
		func(pw core.Window) (core.Mapping, error) { return core.SweepVW(l, a, pw) },
		nil,
	)
}

// sweepRectFullChannel is the parallel VariantRectFullChannel ablation:
// rectangular windows costed with the SDK baseline's whole-channel rule,
// filtering candidates whose row or column cycles exceed im2col's.
func (e *Engine) sweepRectFullChannel(l core.Layer, a core.Array) (core.Result, error) {
	if e.workers == 1 {
		return e.withSlot(func() (core.Result, error) {
			return core.SearchVariant(l, a, core.VariantRectFullChannel)
		})
	}
	l = l.Normalized()
	base, err := core.Im2col(l, a)
	if err != nil {
		return core.Result{}, err
	}
	return e.sweep(
		core.Result{Best: base, Im2col: base},
		enumerate(l),
		func(pw core.Window) (core.Mapping, error) { return core.SDK(l, a, pw) },
		func(m core.Mapping) bool { return m.AR > base.AR || m.AC > base.AC },
	)
}
