package engine

import (
	"sync"

	"repro/internal/core"
	"repro/internal/model"
)

// Cell identifies one (network, array, variant) combination of a batch
// sweep.
type Cell struct {
	Network model.Network
	Array   core.Array
	Variant core.Variant
}

// CellResult is the outcome of one sweep cell. Err is per-cell so a sweep
// that mixes feasible and infeasible combinations still reports every
// feasible one.
type CellResult struct {
	Cell   Cell
	Result core.NetworkResult
	Err    error
}

// Speedup returns the cell's whole-network speedup over im2col (0 on error).
func (c CellResult) Speedup() float64 {
	if c.Err != nil {
		return 0
	}
	return c.Result.Speedup()
}

// Sweep optimizes every network on every array under every variant, fanning
// all cells (and their per-layer searches) across the worker pool. An empty
// variants slice means the full VW-SDK search only. Results are returned in
// deterministic input order — networks outermost, variants innermost — and
// repeated layer shapes across cells are served from the engine's cache, so
// e.g. ResNet-18's four conv2..conv5 repeats and shapes shared between VGG
// variants are costed once per array.
func (e *Engine) Sweep(networks []model.Network, arrays []core.Array, variants []core.Variant) []CellResult {
	if len(variants) == 0 {
		variants = []core.Variant{core.VariantFull}
	}
	out := make([]CellResult, 0, len(networks)*len(arrays)*len(variants))
	for _, n := range networks {
		for _, a := range arrays {
			for _, v := range variants {
				out = append(out, CellResult{Cell: Cell{Network: n, Array: a, Variant: v}})
			}
		}
	}
	if e.workers == 1 {
		// A single-worker pool serializes every cell anyway; running them
		// inline avoids parking a goroutine per cell on the one slot, which
		// costs measurable scheduler churn on a single core.
		for i := range out {
			c := &out[i]
			c.Result, c.Err = e.SearchNetworkVariant(
				c.Cell.Network.CoreLayers(), c.Cell.Array, c.Cell.Variant)
		}
		return out
	}
	var wg sync.WaitGroup
	for i := range out {
		wg.Add(1)
		go func(c *CellResult) {
			defer wg.Done()
			c.Result, c.Err = e.SearchNetworkVariant(
				c.Cell.Network.CoreLayers(), c.Cell.Array, c.Cell.Variant)
		}(&out[i])
	}
	wg.Wait()
	return out
}
