package engine

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/model"
)

// Cell identifies one (network, array, variant) combination of a batch
// sweep.
type Cell struct {
	Network model.Network
	Array   core.Array
	Variant core.Variant
}

// CellResult is the outcome of one sweep cell. Err is per-cell so a sweep
// that mixes feasible and infeasible combinations still reports every
// feasible one; after a cancellation, cells that were never dispatched carry
// the context's error.
type CellResult struct {
	Cell   Cell
	Result core.NetworkResult
	Err    error
}

// Speedup returns the cell's whole-network speedup over im2col (0 on error).
func (c CellResult) Speedup() float64 {
	if c.Err != nil {
		return 0
	}
	return c.Result.Speedup()
}

// Sweep optimizes every network on every array under every variant, fanning
// cells (and their per-layer searches) across the worker pool. An empty
// variants slice means the full VW-SDK search only. Results are returned in
// deterministic input order — networks outermost, variants innermost — and
// repeated layer shapes across cells are served from the engine's cache, so
// e.g. ResNet-18's four conv2..conv5 repeats and shapes shared between VGG
// variants are costed once per array.
//
// Cells are dispatched from a shared cursor by at most one runner per pool
// worker; once ctx is cancelled no further cell is dispatched — undispatched
// cells come back with Err set to ctx.Err() — and cells already running stop
// at their searches' next cancellation checkpoint. Sweep itself always
// returns the full, input-ordered slice.
func (e *Engine) Sweep(ctx context.Context, networks []model.Network, arrays []core.Array, variants []core.Variant) []CellResult {
	if len(variants) == 0 {
		variants = []core.Variant{core.VariantFull}
	}
	out := make([]CellResult, 0, len(networks)*len(arrays)*len(variants))
	for _, n := range networks {
		for _, a := range arrays {
			for _, v := range variants {
				out = append(out, CellResult{Cell: Cell{Network: n, Array: a, Variant: v}})
			}
		}
	}
	runCell := func(i int) {
		if e.sweepCellHook != nil {
			e.sweepCellHook(i)
		}
		c := &out[i]
		// The dispatch checkpoint: a cancelled sweep stops scheduling new
		// cells here instead of funnelling thousands of doomed searches
		// through the pool.
		if err := ctx.Err(); err != nil {
			c.Err = err
			return
		}
		c.Result, c.Err = e.SearchNetworkVariant(ctx, c.Cell.Network.CoreLayers(), c.Cell.Array, c.Cell.Variant)
	}
	if e.workers == 1 {
		// A single-worker pool serializes every cell anyway; running them
		// inline avoids parking a goroutine per cell on the one slot, which
		// costs measurable scheduler churn on a single core.
		for i := range out {
			runCell(i)
		}
		return out
	}
	runners := min(len(out), e.workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for range runners {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(out) {
					return
				}
				runCell(i)
			}
		}()
	}
	wg.Wait()
	return out
}
