package engine

import (
	"context"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
)

// bg is the context every non-cancellation test runs under.
var bg = context.Background()

// testArrays spans the paper's evaluation sizes plus small arrays that force
// infeasible candidates into the sweeps.
var testArrays = []core.Array{
	{Rows: 64, Cols: 64},
	{Rows: 128, Cols: 128},
	{Rows: 128, Cols: 256},
	{Rows: 256, Cols: 256},
	{Rows: 512, Cols: 256},
	{Rows: 512, Cols: 512},
	{Rows: 1024, Cols: 1024},
}

// TestEngineMatchesSerialEverywhere is the differential test the engine's
// correctness rests on: on every layer of every predefined network, for
// every array size and every search family, the engine's result must be
// bit-identical (reflect.DeepEqual on the full Result struct) to the serial
// core algorithms'.
func TestEngineMatchesSerialEverywhere(t *testing.T) {
	e := New()
	type search struct {
		name   string
		serial func(core.Layer, core.Array) (core.Result, error)
		engine func(core.Layer, core.Array) (core.Result, error)
	}
	searches := []search{
		{"vwsdk", core.SearchVWSDK,
			func(l core.Layer, a core.Array) (core.Result, error) { return e.SearchVWSDK(bg, l, a) }},
		{"sdk", core.SearchSDK,
			func(l core.Layer, a core.Array) (core.Result, error) { return e.SearchSDK(bg, l, a) }},
		{"smd", core.SearchSMD,
			func(l core.Layer, a core.Array) (core.Result, error) { return e.SearchSMD(bg, l, a) }},
	}
	for _, v := range []core.Variant{core.VariantFull, core.VariantSquareTiled, core.VariantRectFullChannel} {
		v := v
		searches = append(searches, search{
			name: "variant/" + v.String(),
			serial: func(l core.Layer, a core.Array) (core.Result, error) {
				return core.SearchVariant(l, a, v)
			},
			engine: func(l core.Layer, a core.Array) (core.Result, error) {
				return e.SearchVariant(bg, l, a, v)
			},
		})
	}
	for _, n := range model.All() {
		for _, a := range testArrays {
			for _, l := range n.CoreLayers() {
				for _, s := range searches {
					want, wantErr := s.serial(l, a)
					got, gotErr := s.engine(l, a)
					if (wantErr == nil) != (gotErr == nil) {
						t.Fatalf("%s/%s/%v/%s: serial err=%v, engine err=%v",
							n.Name, l.Name, a, s.name, wantErr, gotErr)
					}
					if wantErr != nil {
						continue
					}
					if !reflect.DeepEqual(want, got) {
						t.Errorf("%s/%s/%v/%s:\nserial %+v\nengine %+v",
							n.Name, l.Name, a, s.name, want, got)
					}
				}
			}
		}
	}
	st := e.Stats()
	if st.CacheHits == 0 {
		t.Error("repeated shapes across networks produced no cache hits")
	}
}

// TestEngineCachedHitIsIdentical asserts a second lookup — served from the
// cache, possibly under a different layer name — still equals the serial
// result exactly.
func TestEngineCachedHitIsIdentical(t *testing.T) {
	e := New()
	l := core.Layer{Name: "conv4", IW: 14, IH: 14, KW: 3, KH: 3, IC: 256, OC: 256}
	a := core.Array{Rows: 512, Cols: 512}
	if _, err := e.SearchVWSDK(bg, l, a); err != nil {
		t.Fatal(err)
	}
	renamedLayer := l
	renamedLayer.Name = "resnet-conv4"
	want, err := core.SearchVWSDK(renamedLayer, a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.SearchVWSDK(bg, renamedLayer, a)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("cached result differs:\nserial %+v\nengine %+v", want, got)
	}
	if st := e.Stats(); st.CacheHits == 0 {
		t.Errorf("stats = %+v, want a cache hit for the renamed shape", st)
	}
}

// TestEngineVariantFullSharesVWSDKCache pins that SearchVariant(VariantFull)
// and SearchVWSDK hit one cache entry, like their serial definitions.
func TestEngineVariantFullSharesVWSDKCache(t *testing.T) {
	e := New()
	l := core.Layer{Name: "c", IW: 14, IH: 14, KW: 3, KH: 3, IC: 64, OC: 64}
	a := core.Array{Rows: 256, Cols: 256}
	if _, err := e.SearchVWSDK(bg, l, a); err != nil {
		t.Fatal(err)
	}
	if _, err := e.SearchVariant(bg, l, a, core.VariantFull); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.CacheMisses != 1 || st.CacheHits != 1 {
		t.Errorf("stats = %+v, want 1 miss then 1 hit", st)
	}
}

// TestEngineSearchNetwork compares the engine's network aggregation with the
// serial one on every predefined network.
func TestEngineSearchNetwork(t *testing.T) {
	e := New()
	a := core.Array{Rows: 512, Cols: 512}
	for _, n := range model.All() {
		want, err := core.SearchNetwork(n.CoreLayers(), a)
		if err != nil {
			t.Fatalf("%s: %v", n.Name, err)
		}
		got, err := e.SearchNetwork(bg, n.CoreLayers(), a)
		if err != nil {
			t.Fatalf("%s: %v", n.Name, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: network result differs\nserial %+v\nengine %+v", n.Name, want, got)
		}
	}
	if _, err := e.SearchNetwork(bg, nil, a); err == nil {
		t.Error("SearchNetwork accepted an empty layer list")
	}
}

// TestEngineErrorsMatchSerial checks the failure paths stay serial-shaped:
// invalid layers and arrays error without panicking or caching.
func TestEngineErrorsMatchSerial(t *testing.T) {
	e := New()
	bad := core.Layer{IW: 0, IH: 8, KW: 3, KH: 3, IC: 1, OC: 1}
	a := core.Array{Rows: 512, Cols: 512}
	if _, err := e.SearchVWSDK(bg, bad, a); err == nil {
		t.Error("engine accepted invalid layer")
	}
	ok := core.Layer{IW: 8, IH: 8, KW: 3, KH: 3, IC: 1, OC: 1}
	if _, err := e.SearchVWSDK(bg, ok, core.Array{}); err == nil {
		t.Error("engine accepted invalid array")
	}
	if st := e.Stats(); st.CachedResults != 0 {
		t.Errorf("errored searches were cached: %+v", st)
	}
	if st := e.Stats(); st.Searches != st.CacheHits+st.CacheMisses {
		t.Errorf("stats don't balance: %+v", st)
	}
}

// TestEngineConcurrentIdenticalSearches hammers one shape from many
// goroutines; duplicate suppression must collapse them onto one computation
// and every caller must still see the serial result (run under -race).
func TestEngineConcurrentIdenticalSearches(t *testing.T) {
	e := New(WithWorkers(4))
	l := core.Layer{Name: "conv5", IW: 56, IH: 56, KW: 3, KH: 3, IC: 128, OC: 256}
	a := core.Array{Rows: 512, Cols: 512}
	want, err := core.SearchVWSDK(l, a)
	if err != nil {
		t.Fatal(err)
	}
	const callers = 32
	var wg sync.WaitGroup
	results := make([]core.Result, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = e.SearchVWSDK(bg, l, a)
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !reflect.DeepEqual(want, results[i]) {
			t.Fatalf("caller %d: result differs from serial", i)
		}
	}
	st := e.Stats()
	if st.CacheMisses != 1 {
		t.Errorf("stats = %+v, want exactly 1 computation for %d identical searches",
			st, callers)
	}
	// The 31 non-leaders were served either by joining the leader's
	// in-flight search or from the cache after it landed; dedupes are the
	// in-flight subset of the hits.
	if st.CacheHits != callers-1 {
		t.Errorf("stats = %+v, want %d cache hits", st, callers-1)
	}
	if st.FlightDedupes > st.CacheHits {
		t.Errorf("stats = %+v: in-flight dedupes exceed cache hits", st)
	}
	if st.Searches != st.CacheHits+st.CacheMisses {
		t.Errorf("stats don't balance: %+v", st)
	}
}

// TestEngineFlightDedupeCounter pins FlightDedupes deterministically: with
// the result cache disabled, a waiter that joins an in-flight search is the
// only way a hit can happen. The leader holds the engine's single worker
// slot until the waiter is known to have arrived, so the join is forced.
func TestEngineFlightDedupeCounter(t *testing.T) {
	e := New(WithWorkers(1), WithCacheSize(0))
	l := core.Layer{Name: "conv4", IW: 14, IH: 14, KW: 3, KH: 3, IC: 256, OC: 256}
	a := core.Array{Rows: 512, Cols: 512}

	// Occupy the single worker slot so the leader's search blocks in
	// withSlot after registering itself in the flight map.
	e.sem <- struct{}{}
	leaderErr := make(chan error, 1)
	go func() {
		_, err := e.SearchVWSDK(bg, l, a)
		leaderErr <- err
	}()
	// Wait until the leader is registered in flight.
	for {
		e.mu.Lock()
		n := len(e.flight)
		e.mu.Unlock()
		if n == 1 {
			break
		}
		runtime.Gosched()
	}
	waiterErr := make(chan error, 1)
	go func() {
		_, err := e.SearchVWSDK(bg, l, a)
		waiterErr <- err
	}()
	// Wait until the waiter has observed the in-flight entry (its dedupe is
	// counted before it blocks on the leader), then release the slot.
	for e.Stats().FlightDedupes == 0 {
		if e.Stats().CacheMisses > 1 {
			t.Fatal("waiter recomputed instead of joining the in-flight search")
		}
		runtime.Gosched()
	}
	<-e.sem
	if err := <-leaderErr; err != nil {
		t.Fatal(err)
	}
	if err := <-waiterErr; err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Searches != 2 || st.CacheMisses != 1 || st.CacheHits != 1 || st.FlightDedupes != 1 {
		t.Errorf("stats = %+v, want 2 searches = 1 miss + 1 in-flight dedupe", st)
	}
}

// TestEngineOptions exercises the worker and cache-size knobs, including the
// degenerate single-worker and cache-disabled configurations.
func TestEngineOptions(t *testing.T) {
	l := core.Layer{Name: "c", IW: 28, IH: 28, KW: 3, KH: 3, IC: 64, OC: 64}
	a := core.Array{Rows: 256, Cols: 256}
	want, err := core.SearchVWSDK(l, a)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []*Engine{
		New(WithWorkers(1)),
		New(WithWorkers(1), WithCacheSize(0)),
		New(WithWorkers(64), WithCacheSize(1)),
	} {
		got, err := e.SearchVWSDK(bg, l, a)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("workers=%d: result differs from serial", e.Workers())
		}
	}
	nocache := New(WithCacheSize(0))
	for i := 0; i < 2; i++ {
		if _, err := nocache.SearchVWSDK(bg, l, a); err != nil {
			t.Fatal(err)
		}
	}
	if st := nocache.Stats(); st.CacheHits != 0 || st.CachedResults != 0 {
		t.Errorf("cache disabled but stats = %+v", st)
	}
	if w := New(WithWorkers(-3)).Workers(); w < 1 {
		t.Errorf("default workers = %d, want >= 1", w)
	}
}

// TestCacheLRUEviction pins the LRU policy: capacity-1 cache keeps only the
// most recent result.
func TestCacheLRUEviction(t *testing.T) {
	e := New(WithCacheSize(1))
	a := core.Array{Rows: 256, Cols: 256}
	l1 := core.Layer{Name: "a", IW: 14, IH: 14, KW: 3, KH: 3, IC: 16, OC: 16}
	l2 := core.Layer{Name: "b", IW: 16, IH: 16, KW: 3, KH: 3, IC: 16, OC: 16}
	for _, l := range []core.Layer{l1, l2, l1} {
		if _, err := e.SearchVWSDK(bg, l, a); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.CacheMisses != 3 || st.CacheHits != 0 {
		t.Errorf("stats = %+v, want 3 misses (l1 evicted by l2)", st)
	}
	if st.CachedResults != 1 {
		t.Errorf("cached results = %d, want 1", st.CachedResults)
	}
	// Each insertion beyond the capacity-1 cache evicts the previous
	// result: l2 evicts l1, then l1's recompute evicts l2.
	if st.Evictions != 2 {
		t.Errorf("evictions = %d, want 2", st.Evictions)
	}
	if st := New(WithCacheSize(0)).Stats(); st.Evictions != 0 {
		t.Errorf("disabled cache evictions = %d, want 0", st.Evictions)
	}
}

// TestEngineCandidateCounters pins CandidatesCosted/CandidatesPruned
// deterministically: one computed search adds exactly the serial result's
// cost-class count and the exhaustive-minus-costed difference; cache hits add
// nothing; baseline searches (no pruned/exhaustive split) prune nothing; and
// a WithExhaustiveSearch engine reports zero pruning by definition.
func TestEngineCandidateCounters(t *testing.T) {
	l := core.Layer{Name: "conv4", IW: 14, IH: 14, KW: 3, KH: 3, IC: 256, OC: 256}
	a := core.Array{Rows: 512, Cols: 512}
	serial, err := core.SearchVWSDK(l, a)
	if err != nil {
		t.Fatal(err)
	}
	enumerated := core.ExhaustiveCandidates(l, core.VariantFull)

	e := New()
	if _, err := e.SearchVWSDK(bg, l, a); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.CandidatesCosted != uint64(serial.Evaluated) {
		t.Errorf("CandidatesCosted = %d, want %d (serial cost classes)",
			st.CandidatesCosted, serial.Evaluated)
	}
	if want := uint64(enumerated) - uint64(serial.Evaluated); st.CandidatesPruned != want {
		t.Errorf("CandidatesPruned = %d, want %d (%d enumerated − %d costed)",
			st.CandidatesPruned, want, enumerated, serial.Evaluated)
	}
	// A cache hit costs nothing.
	if _, err := e.SearchVWSDK(bg, l, a); err != nil {
		t.Fatal(err)
	}
	if st2 := e.Stats(); st2.CandidatesCosted != st.CandidatesCosted || st2.CandidatesPruned != st.CandidatesPruned {
		t.Errorf("cache hit moved candidate counters: %+v -> %+v", st, st2)
	}
	// Baseline searches count their costed candidates but prune nothing.
	sdk, err := e.SearchSDK(bg, l, a)
	if err != nil {
		t.Fatal(err)
	}
	if st3 := e.Stats(); st3.CandidatesCosted != st.CandidatesCosted+uint64(sdk.Evaluated) ||
		st3.CandidatesPruned != st.CandidatesPruned {
		t.Errorf("SDK search counters off: %+v (sdk costed %d)", st3, sdk.Evaluated)
	}

	exh := New(WithExhaustiveSearch())
	if _, err := exh.SearchVWSDK(bg, l, a); err != nil {
		t.Fatal(err)
	}
	if st := exh.Stats(); st.CandidatesPruned != 0 || st.CandidatesCosted != uint64(serial.Swept) {
		t.Errorf("exhaustive engine stats = %+v, want %d costed, 0 pruned", st, serial.Swept)
	}
}

// TestEngineExhaustiveSearchOption pins that a WithExhaustiveSearch engine
// returns the brute-force results (same Best, legacy Evaluated == Swept) on
// a sample of zoo shapes and variants.
func TestEngineExhaustiveSearchOption(t *testing.T) {
	e := New(WithExhaustiveSearch())
	a := core.Array{Rows: 512, Cols: 512}
	for _, l := range model.ResNet18().CoreLayers() {
		for _, v := range []core.Variant{core.VariantFull, core.VariantSquareTiled, core.VariantRectFullChannel} {
			want, err := core.SearchVariantExhaustive(l, a, v)
			if err != nil {
				t.Fatal(err)
			}
			got, err := e.SearchVariant(bg, l, a, v)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("%s/%v: exhaustive engine differs from core exhaustive", l.Name, v)
			}
			if got.Evaluated != got.Swept {
				t.Errorf("%s/%v: exhaustive Evaluated %d != Swept %d", l.Name, v, got.Evaluated, got.Swept)
			}
		}
	}
}

// TestSweep compares every cell of a batch sweep against serial
// per-layer searches.
func TestSweep(t *testing.T) {
	e := New()
	networks := []model.Network{model.VGG13(), model.ResNet18()}
	arrays := []core.Array{{Rows: 256, Cols: 256}, {Rows: 512, Cols: 512}}
	variants := []core.Variant{core.VariantFull, core.VariantSquareTiled}
	cells := e.Sweep(bg, networks, arrays, variants)
	if len(cells) != len(networks)*len(arrays)*len(variants) {
		t.Fatalf("got %d cells", len(cells))
	}
	i := 0
	for _, n := range networks {
		for _, a := range arrays {
			for _, v := range variants {
				c := cells[i]
				i++
				if c.Cell.Network.Name != n.Name || c.Cell.Array != a || c.Cell.Variant != v {
					t.Fatalf("cell %d out of order: %+v", i-1, c.Cell)
				}
				if c.Err != nil {
					t.Fatalf("%s/%v/%v: %v", n.Name, a, v, c.Err)
				}
				var wantTotal int64
				for _, l := range n.CoreLayers() {
					r, err := core.SearchVariant(l, a, v)
					if err != nil {
						t.Fatal(err)
					}
					wantTotal += r.Best.Cycles
				}
				if c.Result.TotalCycles != wantTotal {
					t.Errorf("%s/%v/%v: total = %d, want %d",
						n.Name, a, v, c.Result.TotalCycles, wantTotal)
				}
				if c.Speedup() <= 0 {
					t.Errorf("%s/%v/%v: speedup = %v", n.Name, a, v, c.Speedup())
				}
			}
		}
	}
	// Empty variants default to the full search.
	def := e.Sweep(bg, networks[:1], arrays[:1], nil)
	if len(def) != 1 || def[0].Cell.Variant != core.VariantFull {
		t.Fatalf("default sweep = %+v", def)
	}
}
