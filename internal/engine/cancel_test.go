package engine

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
)

// TestEngineSearchCancelled pins that a cancelled context stops an engine
// search before any work is scheduled: the search errors with
// context.Canceled, nothing is cached, and no candidates are costed.
func TestEngineSearchCancelled(t *testing.T) {
	e := New()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	l := core.Layer{Name: "c", IW: 14, IH: 14, KW: 3, KH: 3, IC: 64, OC: 64}
	a := core.Array{Rows: 256, Cols: 256}
	if _, err := e.SearchVWSDK(ctx, l, a); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	st := e.Stats()
	if st.CachedResults != 0 || st.CandidatesCosted != 0 {
		t.Errorf("cancelled search left work behind: %+v", st)
	}
	// The same engine still serves the search under a live context, and the
	// result is the serial one.
	res, err := e.SearchVWSDK(context.Background(), l, a)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.SearchVWSDK(l, a)
	if err != nil {
		t.Fatal(err)
	}
	if res != want {
		t.Error("post-cancel search differs from serial")
	}
}

// TestEngineCancelledSearchNotCached pins that a cancellation surfacing from
// inside a running search (here: forced via the pre-cancelled slot path on a
// fully occupied pool) never poisons the cache for later callers.
func TestEngineCancelledSearchNotCached(t *testing.T) {
	e := New(WithWorkers(1))
	e.sem <- struct{}{} // the pool is busy; acquiring a slot must block
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	l := core.Layer{Name: "c", IW: 8, IH: 8, KW: 3, KH: 3, IC: 4, OC: 4}
	a := core.Array{Rows: 64, Cols: 64}
	if _, err := e.SearchVWSDK(ctx, l, a); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled (slot wait abandoned)", err)
	}
	<-e.sem
	if st := e.Stats(); st.CachedResults != 0 {
		t.Errorf("cancelled search was cached: %+v", st)
	}
	if _, err := e.SearchVWSDK(context.Background(), l, a); err != nil {
		t.Fatalf("engine unusable after cancelled search: %v", err)
	}
}

// TestSweepCancelledBeforeStart pins the trivial dispatch checkpoint: a
// sweep entered with a cancelled context schedules nothing — every cell
// carries the context error and the engine's search counter stays at zero.
func TestSweepCancelledBeforeStart(t *testing.T) {
	e := New()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cells := e.Sweep(ctx, []model.Network{model.VGG13(), model.ResNet18()},
		[]core.Array{{Rows: 256, Cols: 256}}, nil)
	if len(cells) != 2 {
		t.Fatalf("got %d cells", len(cells))
	}
	for i, c := range cells {
		if !errors.Is(c.Err, context.Canceled) {
			t.Errorf("cell %d: err = %v, want context.Canceled", i, c.Err)
		}
	}
	if st := e.Stats(); st.Searches != 0 {
		t.Errorf("cancelled sweep scheduled %d searches, want 0", st.Searches)
	}
}

// TestSweepStopsSchedulingAfterCancel is the deterministic mid-sweep cancel:
// on a single-worker engine (cells run inline, in input order) the test hook
// cancels the context just before cell 2 is dispatched. Cells 0 and 1 must
// have completed normally, cells 2+ must carry context.Canceled, and the
// engine must not have scheduled any search for them.
func TestSweepStopsSchedulingAfterCancel(t *testing.T) {
	e := New(WithWorkers(1))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	e.sweepCellHook = func(i int) {
		if i == 2 {
			cancel()
		}
	}
	networks := []model.Network{model.ResNet18()}
	arrays := []core.Array{
		{Rows: 128, Cols: 128}, {Rows: 256, Cols: 256},
		{Rows: 512, Cols: 512}, {Rows: 1024, Cols: 1024},
	}
	searchesBefore := e.Stats().Searches
	cells := e.Sweep(ctx, networks, arrays, nil)
	searchesAt2 := e.Stats().Searches

	for i, c := range cells[:2] {
		if c.Err != nil {
			t.Errorf("completed cell %d: %v", i, c.Err)
		}
		want, err := core.SearchNetwork(networks[0].CoreLayers(), arrays[i])
		if err != nil {
			t.Fatal(err)
		}
		if c.Result.TotalCycles != want.TotalCycles {
			t.Errorf("cell %d: cycles %d, want %d", i, c.Result.TotalCycles, want.TotalCycles)
		}
	}
	for i, c := range cells[2:] {
		if !errors.Is(c.Err, context.Canceled) {
			t.Errorf("cell %d: err = %v, want context.Canceled", i+2, c.Err)
		}
		if c.Result.Results != nil {
			t.Errorf("cancelled cell %d carries results", i+2)
		}
	}
	// No further searches were scheduled after the cancel: the counter did
	// not move past the two completed cells' layer searches.
	layers := len(networks[0].Layers)
	if got, want := searchesAt2-searchesBefore, uint64(2*layers); got != want {
		t.Errorf("searches after cancel = %d, want %d (2 cells × %d layers)", got, want, layers)
	}
}

// TestSweepCancelParallelDispatch covers the multi-worker dispatcher under
// -race: a context cancelled by the hook partway through a larger sweep must
// leave every cell either fully computed or carrying a context error, never
// scheduling new cells after the cancel settles.
func TestSweepCancelParallelDispatch(t *testing.T) {
	e := New(WithWorkers(4))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	e.sweepCellHook = func(i int) {
		if i == 4 {
			cancel()
		}
	}
	networks := []model.Network{model.VGG13(), model.ResNet18()}
	arrays := []core.Array{{Rows: 128, Cols: 128}, {Rows: 256, Cols: 256}, {Rows: 512, Cols: 512}}
	variants := []core.Variant{core.VariantFull, core.VariantSquareTiled}
	cells := e.Sweep(ctx, networks, arrays, variants)
	if len(cells) != 12 {
		t.Fatalf("got %d cells", len(cells))
	}
	var done, cancelled int
	for i, c := range cells {
		switch {
		case c.Err == nil:
			done++
			if c.Result.TotalCycles <= 0 {
				t.Errorf("cell %d: completed with cycles %d", i, c.Result.TotalCycles)
			}
		case errors.Is(c.Err, context.Canceled):
			cancelled++
		default:
			t.Errorf("cell %d: unexpected error %v", i, c.Err)
		}
	}
	if cancelled == 0 {
		t.Error("no cell observed the cancellation")
	}
	t.Logf("12 cells: %d done, %d cancelled", done, cancelled)
}
