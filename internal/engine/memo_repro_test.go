package engine

import (
	"context"
	"testing"

	"repro/internal/core"
)

// A waiter joins a leader's in-flight search; the leader is cancelled. The
// waiter (whose own context is live) recomputes — it must receive the real
// recomputed result, not core.Result{} with a nil error.
func TestWaiterRecomputeAfterCancelledLeader(t *testing.T) {
	e := New(WithWorkers(2))
	k := cacheKey{}
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderEntered := make(chan struct{})
	leaderGo := make(chan struct{})

	leaderDone := make(chan error, 1)
	go func() {
		_, err := e.memoized(leaderCtx, k, "l", func(ctx context.Context) (core.Result, error) {
			close(leaderEntered)
			<-leaderGo
			return core.Result{}, ctx.Err()
		})
		leaderDone <- err
	}()
	<-leaderEntered

	want := core.Result{Best: core.Mapping{Cycles: 42}}
	waiterDone := make(chan struct{})
	var gotRes core.Result
	var gotErr error
	go func() {
		defer close(waiterDone)
		gotRes, gotErr = e.memoized(context.Background(), k, "l", func(ctx context.Context) (core.Result, error) {
			return want, nil
		})
	}()

	cancelLeader()
	close(leaderGo)
	<-leaderDone
	<-waiterDone

	if gotErr != nil {
		t.Fatalf("waiter err = %v, want nil", gotErr)
	}
	if gotRes.Best.Cycles != 42 {
		t.Fatalf("waiter got %+v, want the recomputed result (Cycles=42) — empty result with nil error", gotRes)
	}
}
