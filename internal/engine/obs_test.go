package engine

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

// TestSearchSpans pins the engine's per-search span contract: every memoized
// search records one "engine.search" span whose outcome attribute
// distinguishes cache hits from computed misses, with the chosen search path
// and candidate count attached to the compute.
func TestSearchSpans(t *testing.T) {
	e := New(WithWorkers(1))
	l := core.Layer{Name: "probe", IW: 14, IH: 14, KW: 3, KH: 3, IC: 16, OC: 16}.Normalized()
	a := core.Array{Rows: 128, Cols: 128}

	tr := obs.New("test")
	ctx := obs.NewContext(context.Background(), tr)
	if _, err := e.SearchVWSDK(ctx, l, a); err != nil {
		t.Fatal(err)
	}
	if _, err := e.SearchVWSDK(ctx, l, a); err != nil {
		t.Fatal(err)
	}

	nodes := tr.Tree()
	var spans []*obs.Node
	for _, n := range nodes {
		if n.Name == "engine.search" {
			spans = append(spans, n)
		}
	}
	if len(spans) != 2 {
		t.Fatalf("recorded %d engine.search spans, want 2: %+v", len(spans), nodes)
	}
	miss, hit := spans[0], spans[1]
	if miss.Attrs["outcome"] != "miss" || miss.Attrs["layer"] != "probe" {
		t.Errorf("first search attrs = %v, want outcome=miss", miss.Attrs)
	}
	// Dense unit-stride layers route to the closed-form argmin.
	if miss.Attrs["path"] != core.PathClosedForm {
		t.Errorf("path = %v, want %q", miss.Attrs["path"], core.PathClosedForm)
	}
	if n, ok := miss.Attrs["candidates"].(int64); !ok || n <= 0 {
		t.Errorf("candidates = %v, want > 0", miss.Attrs["candidates"])
	}
	if hit.Attrs["outcome"] != "hit" {
		t.Errorf("second search attrs = %v, want outcome=hit", hit.Attrs)
	}
}

// TestSearchSpansExhaustive checks the exhaustive engine reports its path.
func TestSearchSpansExhaustive(t *testing.T) {
	e := New(WithWorkers(1), WithExhaustiveSearch())
	l := core.Layer{Name: "probe", IW: 9, IH: 9, KW: 3, KH: 3, IC: 4, OC: 4}.Normalized()

	tr := obs.New("test")
	ctx := obs.NewContext(context.Background(), tr)
	if _, err := e.SearchVWSDK(ctx, l, core.Array{Rows: 64, Cols: 64}); err != nil {
		t.Fatal(err)
	}
	sp := obs.Find(tr.Tree(), "engine.search")
	if sp == nil {
		t.Fatal("no engine.search span")
	}
	if sp.Attrs["path"] != "exhaustive" {
		t.Errorf("path = %v, want exhaustive", sp.Attrs["path"])
	}
}
