package mapping

import (
	"repro/internal/core"
	"repro/internal/tensor"
)

// rowCoordIm2col maps an im2col virtual row to (channel, kernel-y, kernel-x)
// in the canonical channel-major order shared with package conv.
func rowCoordIm2col(l core.Layer, r int) (c, ky, kx int) {
	kk := l.KH * l.KW
	rem := r % kk
	return r / kk, rem / l.KW, rem % l.KW
}

// rowCoordWindow maps a parallel-window virtual row to (channel, y, x)
// inside the window: channel-major, then raster order over the PW extent.
func (p *Plan) rowCoordWindow(r int) (c, y, x int) {
	area := p.M.PW.Area()
	rem := r % area
	return r / area, rem / p.M.PW.W, rem % p.M.PW.W
}

// colSpec decodes a virtual column index into its window copy and output
// channel for the window schemes. SDK lays columns out window-major
// (w·OC + oc); VW-SDK channel-major (oc·Nw + w) so OCt tiles are contiguous.
func (p *Plan) colSpec(col int) (winX, winY, oc int) {
	var w int
	switch p.M.Scheme {
	case core.SchemeSDK:
		w, oc = col/p.M.Layer.OC, col%p.M.Layer.OC
	default: // VW-SDK
		oc, w = col/p.M.Nw(), col%p.M.Nw()
	}
	return w % p.M.NwW, w / p.M.NwW, oc
}

// WeightTile materializes the weight matrix for one tile: the cell values a
// crossbar is programmed with. Cells at layout positions no kernel covers
// are zero.
func (p *Plan) WeightTile(w *tensor.Tensor4, t Tile) *tensor.Matrix {
	l := p.M.Layer
	m := tensor.NewMatrix(t.Rows(), t.Cols())
	switch p.M.Scheme {
	case core.SchemeIm2col, core.SchemeSMD:
		if p.M.Dup > 1 {
			kr := l.KernelRows()
			for rr := 0; rr < m.Rows; rr++ {
				r := t.RowLo + rr
				d := r / kr
				c, ky, kx := rowCoordIm2col(l, r%kr)
				// Only the matching duplicate's column block is non-zero.
				for oc := 0; oc < l.OC; oc++ {
					m.Set(rr, d*l.OC+oc, w.At(oc, c, ky, kx))
				}
			}
			return m
		}
		// Grouped layers: a tile lies inside one group's row/column block,
		// and the compact weight tensor is indexed with the group-local
		// input channel r % KernelRows; dense layers have r < KernelRows.
		kr := l.KernelRows()
		for rr := 0; rr < m.Rows; rr++ {
			ci, ky, kx := rowCoordIm2col(l, (t.RowLo+rr)%kr)
			for cc := 0; cc < m.Cols; cc++ {
				m.Set(rr, cc, w.At(t.ColLo+cc, ci, ky, kx))
			}
		}
		return m
	default: // SDK, VW-SDK
		icg := l.ICg()
		for rr := 0; rr < m.Rows; rr++ {
			c, y, x := p.rowCoordWindow(t.RowLo + rr)
			for cc := 0; cc < m.Cols; cc++ {
				winX, winY, oc := p.colSpec(t.ColLo + cc)
				kx := x - winX*l.StrideW
				ky := y - winY*l.StrideH
				if kx >= 0 && kx < l.KW && ky >= 0 && ky < l.KH {
					// c is the global input channel; the compact grouped
					// weight tensor wants the group-local index (a tile never
					// crosses groups, so oc's group is c's group).
					m.Set(rr, cc, w.At(oc, c%icg, ky, kx))
				}
			}
		}
		return m
	}
}

// InputVector gathers the row voltages for one computing cycle: tile t of
// the virtual layout at parallel-window (or window-group) position pos.
// padded is the zero-padded IFM.
func (p *Plan) InputVector(padded *tensor.Tensor3, t Tile, pos Position) []float64 {
	l := p.M.Layer
	in := make([]float64, t.Rows())
	outW := l.OutW()
	switch p.M.Scheme {
	case core.SchemeIm2col, core.SchemeSMD:
		kr := l.KernelRows()
		for rr := range in {
			r := t.RowLo + rr
			// For SMD duplication (dense only) r/kr selects the duplicate's
			// window; otherwise it decodes the convolution group, whose rows
			// all feed the position's single window.
			d, g := 0, 0
			if p.M.Dup > 1 {
				d = r / kr
			} else {
				g = r / kr
			}
			if d >= len(pos.Windows) {
				continue // partial last SMD group: unused copy rows idle
			}
			win := pos.Windows[d]
			oy, ox := win/outW, win%outW
			ci, ky, kx := rowCoordIm2col(l, r%kr)
			in[rr] = padded.At(g*l.ICg()+ci, oy*l.StrideH+ky, ox*l.StrideW+kx)
		}
	default: // SDK, VW-SDK
		for rr := range in {
			c, y, x := p.rowCoordWindow(t.RowLo + rr)
			iy, ix := pos.PY+y, pos.PX+x
			// With stride > 1 a clamped window may extend past the padded
			// IFM; those rows carry no kernel weights (structurally zero
			// cells), so a zero input is exact.
			if iy < padded.H && ix < padded.W {
				in[rr] = padded.At(c, iy, ix)
			}
		}
	}
	return in
}

// Scatter accumulates one cycle's column readouts res into the OFM. Columns
// whose window offset was already produced by an earlier overlapping
// position (below pos.Fresh*Lo) are skipped; every output element therefore
// receives exactly one contribution per array-row tile, and AR partial sums
// accumulate to the full convolution.
func (p *Plan) Scatter(out *tensor.Tensor3, t Tile, pos Position, res []float64) {
	l := p.M.Layer
	outW := l.OutW()
	switch p.M.Scheme {
	case core.SchemeIm2col, core.SchemeSMD:
		for cc, v := range res {
			col := t.ColLo + cc
			d, oc := 0, col
			if p.M.Dup > 1 {
				d, oc = col/l.OC, col%l.OC
			}
			if d >= len(pos.Windows) {
				continue
			}
			win := pos.Windows[d]
			oy, ox := win/outW, win%outW
			out.Set(oc, oy, ox, out.At(oc, oy, ox)+v)
		}
	default: // SDK, VW-SDK
		for cc, v := range res {
			winX, winY, oc := p.colSpec(t.ColLo + cc)
			if winX < pos.FreshXLo || winY < pos.FreshYLo {
				continue
			}
			oy := pos.OYStart + winY
			ox := pos.OXStart + winX
			out.Set(oc, oy, ox, out.At(oc, oy, ox)+v)
		}
	}
}

// PatternCells counts the weight-holding cells of tile t independent of
// weight values (an all-ones kernel), i.e. the layout's U_n term in the
// paper's eq. 9. It cross-checks core.Mapping.Tile.
func (p *Plan) PatternCells(t Tile) int64 {
	l := p.M.Layer
	ones := tensor.NewTensor4(l.OC, l.ICg(), l.KH, l.KW)
	for i := range ones.Data {
		ones.Data[i] = 1
	}
	return p.WeightTile(ones, t).NonZero()
}
