package mapping

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/pimarray"
	"repro/internal/tensor"
)

func mustVW(t *testing.T, l core.Layer, a core.Array, pw core.Window) core.Mapping {
	t.Helper()
	m, err := core.VW(l, a, pw)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestVerifyTableILayers executes the paper's actual mapping decisions on a
// simulated 512x512 crossbar and checks both functional equivalence with the
// reference convolution and the exact analytic cycle counts. The two largest
// ResNet-18 shapes are used; they exercise AR tiling, channel remainders and
// rectangular windows.
func TestVerifyTableILayers(t *testing.T) {
	if testing.Short() {
		t.Skip("large functional simulation")
	}
	a := core.Array{Rows: 512, Cols: 512}
	layers := []core.Layer{
		{Name: "resnet-conv4", IW: 14, IH: 14, KW: 3, KH: 3, IC: 256, OC: 256},
		{Name: "resnet-conv5", IW: 7, IH: 7, KW: 3, KH: 3, IC: 512, OC: 512},
	}
	for _, l := range layers {
		t.Run(l.Name, func(t *testing.T) {
			if err := VerifyAllSchemes(l, a, 0xfeed); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestVerifyRectangularWindow pins the paper's flagship 4x3 window with
// channel tiling (ResNet-18 conv4: ICt=42, 7 AR tiles with a 4-channel
// remainder) functionally.
func TestVerifyRectangularWindow(t *testing.T) {
	l := core.Layer{Name: "conv4", IW: 14, IH: 14, KW: 3, KH: 3, IC: 256, OC: 256}
	a := core.Array{Rows: 512, Cols: 512}
	m := mustVW(t, l, a, core.Window{W: 4, H: 3})
	if m.Cycles != 504 {
		t.Fatalf("cycles = %d, want 504", m.Cycles)
	}
	if err := Verify(m, 1); err != nil {
		t.Fatal(err)
	}
}

// TestVerifySchemesSmall covers all four schemes on layers small enough to
// run in every test mode, including stride and padding variants for im2col
// and SMD (the window schemes are stride-1 in the paper; strided windows are
// covered by TestVerifyStridedWindow).
func TestVerifySchemesSmall(t *testing.T) {
	a := core.Array{Rows: 64, Cols: 48}
	layers := []core.Layer{
		{Name: "base", IW: 9, IH: 8, KW: 3, KH: 3, IC: 5, OC: 7},
		{Name: "rect kernel", IW: 10, IH: 9, KW: 3, KH: 2, IC: 4, OC: 5},
		{Name: "1x1 kernel", IW: 6, IH: 6, KW: 1, KH: 1, IC: 9, OC: 11},
		{Name: "wide", IW: 16, IH: 5, KW: 3, KH: 3, IC: 3, OC: 4},
	}
	for _, l := range layers {
		t.Run(l.Name, func(t *testing.T) {
			if err := VerifyAllSchemes(l, a, 42); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestVerifyPaddedIm2col checks the padded/strided path of the group
// schemes.
func TestVerifyPaddedIm2col(t *testing.T) {
	l := core.Layer{IW: 9, IH: 9, KW: 3, KH: 3, IC: 3, OC: 4,
		StrideW: 2, StrideH: 2, PadW: 1, PadH: 1}
	a := core.Array{Rows: 32, Cols: 16}
	im, err := core.Im2col(l, a)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(im, 7); err != nil {
		t.Fatal(err)
	}
	smd, err := core.SearchSMD(l, a)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(smd.Best, 7); err != nil {
		t.Fatal(err)
	}
}

// TestVerifyStridedWindow checks a stride-2 parallel window, which the
// paper's model does not cover but the implementation generalizes to
// (DESIGN.md extension): clamped windows may extend past the padded IFM and
// must still compute exactly.
func TestVerifyStridedWindow(t *testing.T) {
	l := core.Layer{IW: 11, IH: 9, KW: 3, KH: 3, IC: 2, OC: 3,
		StrideW: 2, StrideH: 2}
	a := core.Array{Rows: 64, Cols: 32}
	m, err := core.VW(l, a, core.Window{W: 7, H: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(m, 3); err != nil {
		t.Fatal(err)
	}
	sdk, err := core.SDK(l, a, core.Window{W: 7, H: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(sdk, 3); err != nil {
		t.Fatal(err)
	}
}

// TestFunctionalEquivalenceProperty is the repository's central property
// test: for random small layers and arrays, every scheme's crossbar
// execution equals the reference convolution exactly and takes exactly the
// analytic number of cycles.
func TestFunctionalEquivalenceProperty(t *testing.T) {
	f := func(seed uint64, iw, ih, k, ic, oc, rows, cols uint8) bool {
		l := core.Layer{
			IW: int(iw%8) + 5, IH: int(ih%8) + 5,
			KW: int(k%3) + 1, KH: int(k)/3%3 + 1,
			IC: int(ic%6) + 1, OC: int(oc%6) + 1,
		}
		a := core.Array{Rows: int(rows%3)*24 + 24, Cols: int(cols%3)*16 + 16}
		return VerifyAllSchemes(l, a, seed) == nil
	}
	n := 60
	if testing.Short() {
		n = 10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: n}); err != nil {
		t.Fatal(err)
	}
}

// TestPatternCellsMatchAnalytic cross-checks the physically constructed
// weight tiles against core's analytic used-cell accounting (eq. 9 inputs)
// for every tile of every scheme.
func TestPatternCellsMatchAnalytic(t *testing.T) {
	check := func(t *testing.T, m core.Mapping) {
		t.Helper()
		p, err := NewPlan(m)
		if err != nil {
			t.Fatal(err)
		}
		for _, tile := range p.Tiles {
			got := p.PatternCells(tile)
			want := m.Tile(tile.I, tile.J).UsedCells
			if got != want {
				t.Errorf("%v tile (%d,%d): constructed %d cells, analytic %d",
					m, tile.I, tile.J, got, want)
			}
		}
	}
	a := core.Array{Rows: 64, Cols: 48}
	layers := []core.Layer{
		{Name: "a", IW: 9, IH: 8, KW: 3, KH: 3, IC: 5, OC: 7},
		{Name: "b", IW: 12, IH: 12, KW: 3, KH: 3, IC: 9, OC: 20},
		{Name: "c", IW: 10, IH: 10, KW: 2, KH: 3, IC: 4, OC: 50},
	}
	for _, l := range layers {
		t.Run(l.Name, func(t *testing.T) {
			im, err := core.Im2col(l, a)
			if err != nil {
				t.Fatal(err)
			}
			check(t, im)
			windows := []core.Window{
				{W: 3, H: 3}, {W: 4, H: 3}, {W: 5, H: 4}, {W: 6, H: 6},
			}
			for _, pw := range windows {
				if pw.W < l.KW || pw.H < l.KH {
					continue
				}
				if sdk, err := core.SDK(l, a, pw); err == nil {
					check(t, sdk)
				}
				if vw, err := core.VW(l, a, pw); err == nil {
					check(t, vw)
				}
			}
			if smd, err := core.SearchSMD(l, a); err == nil {
				check(t, smd.Best)
			}
		})
	}
}

// TestPatternCellsProperty extends the cross-check to random layers.
func TestPatternCellsProperty(t *testing.T) {
	f := func(iw, k, ic, oc, pw, ph uint8) bool {
		l := core.Layer{
			IW: int(iw%8) + 6, IH: int(iw%8) + 6,
			KW: int(k%2) + 2, KH: int(k%2) + 2,
			IC: int(ic%8) + 1, OC: int(oc%12) + 1,
		}
		a := core.Array{Rows: 48, Cols: 32}
		w := core.Window{W: l.KW + int(pw)%3, H: l.KH + int(ph)%3}
		if w.W > l.IW || w.H > l.IH {
			return true
		}
		for _, build := range []func() (core.Mapping, error){
			func() (core.Mapping, error) { return core.SDK(l, a, w) },
			func() (core.Mapping, error) { return core.VW(l, a, w) },
		} {
			m, err := build()
			if err != nil {
				continue
			}
			p, err := NewPlan(m)
			if err != nil {
				return false
			}
			for _, tile := range p.Tiles {
				if p.PatternCells(tile) != m.Tile(tile.I, tile.J).UsedCells {
					return false
				}
			}
		}
		return true
	}
	n := 80
	if testing.Short() {
		n = 15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: n}); err != nil {
		t.Fatal(err)
	}
}

// TestExecuteCycleAccounting checks the crossbar statistics of a run match
// the analytic model: cycles, and utilization of the executed schedule
// equalling core's eq. 9 value.
func TestExecuteCycleAccounting(t *testing.T) {
	l := core.Layer{IW: 12, IH: 12, KW: 3, KH: 3, IC: 9, OC: 20}
	a := core.Array{Rows: 64, Cols: 48}
	res, err := core.SearchVWSDK(l, a)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Best
	p, err := NewPlan(m)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := pimarray.New(a.Rows, a.Cols)
	if err != nil {
		t.Fatal(err)
	}
	ifm := tensor.RandTensor3(5, l.IC, l.IH, l.IW)
	w := tensor.RandTensor4(6, l.OC, l.IC, l.KH, l.KW)
	if _, err := p.Execute(arr, ifm, w); err != nil {
		t.Fatal(err)
	}
	st := arr.Stats()
	if st.Cycles != m.Cycles {
		t.Errorf("cycles = %d, want %d", st.Cycles, m.Cycles)
	}
	if st.ProgramOps != int64(len(p.Tiles)) {
		t.Errorf("programs = %d, want %d", st.ProgramOps, len(p.Tiles))
	}
	// Executed utilization can differ from eq. 9 only because real weights
	// may contain zeros; with the all-nonzero fill it matches within the
	// probability of a zero draw — instead compare against a pattern-based
	// expectation computed from the plan itself.
	var usedPerTile int64
	for _, tile := range p.Tiles {
		usedPerTile += p.PatternCells(tile)
	}
	wantUsed := usedPerTile * int64(len(p.Positions))
	// Zeros in the random weights make the executed count ≤ pattern count.
	if st.UsedCellCycles > wantUsed {
		t.Errorf("used cell cycles = %d, want ≤ %d", st.UsedCellCycles, wantUsed)
	}
}

// TestRunWithQuantizationExact: integer weights within range survive 8-bit
// quantization, so the quantized run still matches the reference exactly.
func TestRunWithQuantizationExact(t *testing.T) {
	l := core.Layer{IW: 8, IH: 8, KW: 3, KH: 3, IC: 3, OC: 4}
	a := core.Array{Rows: 32, Cols: 16}
	m, err := core.VW(l, a, core.Window{W: 4, H: 4})
	if err != nil {
		t.Fatal(err)
	}
	ifm := tensor.RandTensor3(9, l.IC, l.IH, l.IW)
	w := tensor.RandTensor4(10, l.OC, l.IC, l.KH, l.KW)
	want, _, err := Run(m, ifm, w)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Run(m, ifm, w, pimarray.WithQuantization(8, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("8-bit quantization of integer weights changed the result")
	}
}

// TestRunWithNoiseApproximate: with read noise the result is close but not
// exact.
func TestRunWithNoiseApproximate(t *testing.T) {
	l := core.Layer{IW: 8, IH: 8, KW: 3, KH: 3, IC: 3, OC: 4}
	a := core.Array{Rows: 32, Cols: 16}
	m, err := core.VW(l, a, core.Window{W: 4, H: 4})
	if err != nil {
		t.Fatal(err)
	}
	ifm := tensor.RandTensor3(11, l.IC, l.IH, l.IW)
	w := tensor.RandTensor4(12, l.OC, l.IC, l.KH, l.KW)
	exact, _, err := Run(m, ifm, w)
	if err != nil {
		t.Fatal(err)
	}
	noisy, _, err := Run(m, ifm, w, pimarray.WithReadNoise(0.01, 13))
	if err != nil {
		t.Fatal(err)
	}
	if noisy.Equal(exact) {
		t.Fatal("noise had no effect")
	}
	// Each output gets AR noisy contributions of sigma 0.01 each.
	if !noisy.AlmostEqual(exact, 0.3) {
		t.Fatalf("noisy result too far off: max diff %g", noisy.MaxAbsDiff(exact))
	}
}

func TestNewPlanValidation(t *testing.T) {
	l := core.Layer{IW: 8, IH: 8, KW: 3, KH: 3, IC: 2, OC: 2}
	a := core.Array{Rows: 32, Cols: 16}
	good, err := core.VW(l, a, core.Window{W: 4, H: 4})
	if err != nil {
		t.Fatal(err)
	}

	bad := good
	bad.Cycles = 999
	if _, err := NewPlan(bad); err == nil {
		t.Error("inconsistent cycle count accepted")
	}

	// A mapping whose ICt cannot fit the array rows must be rejected.
	big := core.Layer{IW: 8, IH: 8, KW: 3, KH: 3, IC: 8, OC: 2}
	vw, err := core.VW(big, a, core.Window{W: 4, H: 4})
	if err != nil {
		t.Fatal(err)
	}
	if vw.ICt != 2 || vw.AR != 4 {
		t.Fatalf("unexpected baseline mapping %v", vw)
	}
	bad = vw
	bad.ICt = 4 // 4·16 = 64 rows > 32
	if _, err := NewPlan(bad); err == nil {
		t.Error("oversized ICt accepted")
	}

	bad = good
	bad.Layer.IW = 0
	if _, err := NewPlan(bad); err == nil {
		t.Error("invalid layer accepted")
	}

	bad = good
	bad.Array = core.Array{}
	if _, err := NewPlan(bad); err == nil {
		t.Error("invalid array accepted")
	}

	bad = good
	bad.Scheme = core.Scheme(77)
	if _, err := NewPlan(bad); err == nil {
		t.Error("unknown scheme accepted")
	}

	im, err := core.Im2col(l, a)
	if err != nil {
		t.Fatal(err)
	}
	bad = im
	bad.Dup = 0
	if _, err := NewPlan(bad); err == nil {
		t.Error("Dup=0 accepted")
	}
}

func TestExecuteShapeValidation(t *testing.T) {
	l := core.Layer{IW: 8, IH: 8, KW: 3, KH: 3, IC: 2, OC: 2}
	a := core.Array{Rows: 32, Cols: 16}
	m, err := core.Im2col(l, a)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlan(m)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := pimarray.New(32, 16)
	if err != nil {
		t.Fatal(err)
	}
	ifm := tensor.RandTensor3(1, 2, 8, 8)
	w := tensor.RandTensor4(2, 2, 2, 3, 3)
	if _, err := p.Execute(arr, tensor.NewTensor3(1, 8, 8), w); err == nil {
		t.Error("wrong IFM accepted")
	}
	if _, err := p.Execute(arr, ifm, tensor.NewTensor4(1, 2, 3, 3)); err == nil {
		t.Error("wrong weights accepted")
	}
	small, err := pimarray.New(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute(small, ifm, w); err == nil {
		t.Error("undersized array accepted")
	}
	if _, err := p.Execute(arr, ifm, w); err != nil {
		t.Errorf("valid execute failed: %v", err)
	}
}

// TestSMDPartialGroup checks the last SMD group (fewer windows than Dup)
// computes correctly — idle copy rows feed zeros and idle columns are
// dropped by the scatter.
func TestSMDPartialGroup(t *testing.T) {
	// windows = 6*6 = 36; dup 5 -> 8 groups, last with a single window.
	l := core.Layer{IW: 8, IH: 8, KW: 3, KH: 3, IC: 2, OC: 3}
	a := core.Array{Rows: 128, Cols: 32}
	m, err := core.SMD(l, a, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m.NPW != 8 {
		t.Fatalf("NPW = %d, want 8", m.NPW)
	}
	if err := Verify(m, 21); err != nil {
		t.Fatal(err)
	}
}

// TestClampedWindowOverlap forces clamped (overlapping) final positions in
// both axes and checks outputs are not double-accumulated.
func TestClampedWindowOverlap(t *testing.T) {
	// OutW = 9 with NwW = 2: positions at ox 0,2,4,6,7 (clamped) — overlap
	// at ox 7 must scatter only its fresh column.
	l := core.Layer{IW: 11, IH: 11, KW: 3, KH: 3, IC: 2, OC: 2}
	a := core.Array{Rows: 32, Cols: 16}
	m, err := core.VW(l, a, core.Window{W: 4, H: 4})
	if err != nil {
		t.Fatal(err)
	}
	if l.OutW()%m.NwW == 0 {
		t.Fatal("test layer does not exercise clamping")
	}
	if err := Verify(m, 33); err != nil {
		t.Fatal(err)
	}
}

func TestTileAccessors(t *testing.T) {
	tile := Tile{RowLo: 3, RowHi: 10, ColLo: 4, ColHi: 8}
	if tile.Rows() != 7 || tile.Cols() != 4 {
		t.Fatalf("Tile accessors wrong: %dx%d", tile.Rows(), tile.Cols())
	}
}

// TestFaultDetection: verification against the reference convolution
// catches stuck-at-zero cell faults (failure-injection test).
func TestFaultDetection(t *testing.T) {
	l := core.Layer{IW: 10, IH: 10, KW: 3, KH: 3, IC: 8, OC: 8}
	a := core.Array{Rows: 96, Cols: 64}
	res, err := core.SearchVWSDK(l, a)
	if err != nil {
		t.Fatal(err)
	}
	ifm := tensor.RandTensor3(100, l.IC, l.IH, l.IW)
	w := tensor.RandTensor4(101, l.OC, l.IC, l.KH, l.KW)
	want, _, err := Run(res.Best, ifm, w)
	if err != nil {
		t.Fatal(err)
	}
	// A heavily faulty array must produce a detectably different OFM.
	got, _, err := Run(res.Best, ifm, w, pimarray.WithStuckCells(0.2, 7))
	if err != nil {
		t.Fatal(err)
	}
	if got.Equal(want) {
		t.Fatal("20% stuck cells went undetected")
	}
	// A fault-free array stays exact.
	clean, _, err := Run(res.Best, ifm, w, pimarray.WithStuckCells(0, 7))
	if err != nil {
		t.Fatal(err)
	}
	if !clean.Equal(want) {
		t.Fatal("zero-fraction fault option changed the result")
	}
}
