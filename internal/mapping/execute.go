package mapping

import (
	"fmt"

	"repro/internal/conv"
	"repro/internal/core"
	"repro/internal/pimarray"
	"repro/internal/tensor"
)

// Execute runs the plan on a crossbar: every tile is programmed once and
// every position computed against it, performing exactly M.Cycles computing
// cycles. The returned OFM accumulates all array-row partial sums.
//
// The array must be at least as large as the plan's Array spec (tiles are
// sized against it). The IFM and weights must match the plan's layer.
func (p *Plan) Execute(arr *pimarray.Array, ifm *tensor.Tensor3, w *tensor.Tensor4) (*tensor.Tensor3, error) {
	l := p.M.Layer
	if err := conv.CheckShapes(l, ifm, w); err != nil {
		return nil, err
	}
	if arr.Rows() < p.M.Array.Rows || arr.Cols() < p.M.Array.Cols {
		return nil, fmt.Errorf("mapping: array %dx%d smaller than plan's %v",
			arr.Rows(), arr.Cols(), p.M.Array)
	}
	padded := ifm.Pad(l.PadH, l.PadW)
	out := tensor.NewTensor3(l.OC, l.OutH(), l.OutW())
	for _, t := range p.Tiles {
		if err := arr.Program(p.WeightTile(w, t)); err != nil {
			return nil, err
		}
		for _, pos := range p.Positions {
			res, err := arr.Compute(p.InputVector(padded, t, pos))
			if err != nil {
				return nil, err
			}
			p.Scatter(out, t, pos, res)
		}
	}
	return out, nil
}

// Run is the one-call convenience: it builds the plan for m, allocates a
// crossbar of m.Array's size (with any non-ideality options), executes, and
// returns the OFM together with the crossbar statistics.
func Run(m core.Mapping, ifm *tensor.Tensor3, w *tensor.Tensor4, opts ...pimarray.Option) (*tensor.Tensor3, pimarray.Stats, error) {
	p, err := NewPlan(m)
	if err != nil {
		return nil, pimarray.Stats{}, err
	}
	arr, err := pimarray.New(m.Array.Rows, m.Array.Cols, opts...)
	if err != nil {
		return nil, pimarray.Stats{}, err
	}
	out, err := p.Execute(arr, ifm, w)
	if err != nil {
		return nil, pimarray.Stats{}, err
	}
	return out, arr.Stats(), nil
}

// Verify executes mapping m on deterministic random integer inputs and
// compares the crossbar OFM bit-for-bit against the reference convolution.
// It returns nil when they match exactly, and a descriptive error otherwise.
// Grouped layers verify against the grouped reference on compact OC×ICg
// weights.
func Verify(m core.Mapping, seed uint64) error {
	l := m.Layer.Normalized()
	ifm := tensor.RandTensor3(seed, l.IC, l.IH, l.IW)
	w := tensor.RandTensor4(seed^0x9e3779b97f4a7c15, l.OC, l.ICg(), l.KH, l.KW)
	want, err := conv.Reference(l, ifm, w)
	if err != nil {
		return err
	}
	got, stats, err := Run(m, ifm, w)
	if err != nil {
		return err
	}
	if stats.Cycles != m.Cycles {
		return fmt.Errorf("mapping: %v executed %d cycles, analytic model says %d",
			m, stats.Cycles, m.Cycles)
	}
	if !got.Equal(want) {
		return fmt.Errorf("mapping: %v OFM mismatch (max |diff| = %g)",
			m, got.MaxAbsDiff(want))
	}
	return nil
}

// VerifyAllSchemes verifies layer l on array a under im2col, searched SMD,
// searched SDK and searched VW-SDK mappings. It returns the first failure.
// Grouped layers verify the schemes with grouped physical layouts (im2col
// and VW-SDK); SMD duplication and SDK have dense-only layouts and are
// skipped.
func VerifyAllSchemes(l core.Layer, a core.Array, seed uint64) error {
	im, err := core.Im2col(l, a)
	if err != nil {
		return err
	}
	if err := Verify(im, seed); err != nil {
		return fmt.Errorf("im2col: %w", err)
	}
	if l.Normalized().NumGroups() == 1 {
		smd, err := core.SearchSMD(l, a)
		if err != nil {
			return err
		}
		if err := Verify(smd.Best, seed); err != nil {
			return fmt.Errorf("SMD: %w", err)
		}
		sdk, err := core.SearchSDK(l, a)
		if err != nil {
			return err
		}
		if err := Verify(sdk.Best, seed); err != nil {
			return fmt.Errorf("SDK: %w", err)
		}
	}
	vw, err := core.SearchVWSDK(l, a)
	if err != nil {
		return err
	}
	if err := Verify(vw.Best, seed); err != nil {
		return fmt.Errorf("VW-SDK: %w", err)
	}
	return nil
}
