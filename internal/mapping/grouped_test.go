package mapping

import (
	"testing"

	"repro/internal/conv"
	"repro/internal/core"
	"repro/internal/tensor"
)

// TestVerifyGroupedSchemes executes grouped layers end-to-end on the
// simulated crossbar under im2col and searched VW-SDK layouts (SMD
// duplication and SDK are dense-only and skipped by VerifyAllSchemes),
// checking both the exact analytic cycle count and bit-exact equality with
// the grouped reference convolution. Depthwise (G == IC, ICg == 1) is the
// hardest edge case: every virtual-row block holds a single channel's
// kernel.
func TestVerifyGroupedSchemes(t *testing.T) {
	a := core.Array{Rows: 64, Cols: 48}
	layers := []core.Layer{
		{Name: "g2", IW: 9, IH: 8, KW: 3, KH: 3, IC: 6, OC: 8, Groups: 2},
		{Name: "g4 rect", IW: 10, IH: 9, KW: 3, KH: 2, IC: 8, OC: 12, Groups: 4},
		{Name: "depthwise", IW: 9, IH: 9, KW: 3, KH: 3, IC: 7, OC: 7, Groups: 7},
		{Name: "depthwise padded", IW: 8, IH: 8, KW: 3, KH: 3, IC: 5, OC: 5, PadW: 1, PadH: 1, Groups: 5},
		{Name: "grouped pointwise", IW: 6, IH: 6, KW: 1, KH: 1, IC: 10, OC: 6, Groups: 2},
	}
	for _, l := range layers {
		t.Run(l.Name, func(t *testing.T) {
			if err := VerifyAllSchemes(l, a, 0x6799); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestGroupedExecuteMatchesExpandedDense is the differential identity at the
// physical layer: executing the grouped plan on compact OC×ICg weights must
// equal the *dense* reference convolution over the G-block-diagonal expanded
// kernel. This ties the grouped crossbar layout to ordinary dense semantics
// rather than to the grouped reference implementation.
func TestGroupedExecuteMatchesExpandedDense(t *testing.T) {
	a := core.Array{Rows: 96, Cols: 40}
	layers := []core.Layer{
		{Name: "g3 strided", IW: 11, IH: 11, KW: 3, KH: 3, IC: 9, OC: 6, StrideW: 2, StrideH: 2, PadW: 1, PadH: 1, Groups: 3},
		{Name: "depthwise", IW: 10, IH: 8, KW: 3, KH: 3, IC: 6, OC: 6, PadW: 1, PadH: 1, Groups: 6},
	}
	for _, l := range layers {
		t.Run(l.Name, func(t *testing.T) {
			ifm := tensor.RandTensor3(21, l.IC, l.IH, l.IW)
			w := tensor.RandTensor4(22, l.OC, l.ICg(), l.KH, l.KW)
			expanded, err := conv.ExpandGrouped(l.Normalized(), w)
			if err != nil {
				t.Fatal(err)
			}
			want, err := conv.Reference(conv.DenseEquivalent(l), ifm, expanded)
			if err != nil {
				t.Fatal(err)
			}
			for _, build := range []struct {
				name string
				get  func() (core.Mapping, error)
			}{
				{"im2col", func() (core.Mapping, error) { return core.Im2col(l, a) }},
				{"vw-sdk", func() (core.Mapping, error) {
					r, err := core.SearchVWSDK(l, a)
					return r.Best, err
				}},
			} {
				m, err := build.get()
				if err != nil {
					t.Fatal(err)
				}
				got, stats, err := Run(m, ifm, w)
				if err != nil {
					t.Fatalf("%s: %v", build.name, err)
				}
				if stats.Cycles != m.Cycles {
					t.Fatalf("%s: executed %d cycles, analytic %d", build.name, stats.Cycles, m.Cycles)
				}
				if !got.Equal(want) {
					t.Fatalf("%s: OFM differs from expanded dense reference (max |diff| = %g)",
						build.name, got.MaxAbsDiff(want))
				}
			}
		})
	}
}

// TestGroupedPlanRejections: the physical layouts that cannot express
// grouping — SMD window duplication and SDK shifted-duplicate kernels — are
// rejected at plan construction with a clear error, not silently mis-mapped.
func TestGroupedPlanRejections(t *testing.T) {
	l := core.Layer{IW: 9, IH: 9, KW: 3, KH: 3, IC: 4, OC: 4, Groups: 2}
	a := core.Array{Rows: 128, Cols: 128}
	smd, err := core.SMD(l, a, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPlan(smd); err == nil {
		t.Error("NewPlan accepted grouped SMD duplication")
	}
	sdk, err := core.SDK(l, a, core.Window{W: 4, H: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPlan(sdk); err == nil {
		t.Error("NewPlan accepted grouped SDK")
	}
}
