package mapping

import (
	"math"
	"testing"

	"repro/internal/core"
)

// TestInputReuseIm2colHandDerived: a 3x3 stride-1 valid conv over a 6x6
// single-channel IFM has 16 windows of 9 reads = 144 driven loads over 36
// distinct elements -> 4 loads per element.
func TestInputReuseIm2colHandDerived(t *testing.T) {
	l := core.Layer{IW: 6, IH: 6, KW: 3, KH: 3, IC: 1, OC: 1}
	a := core.Array{Rows: 32, Cols: 16}
	m, err := core.Im2col(l, a)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlan(m)
	if err != nil {
		t.Fatal(err)
	}
	r := p.InputReuse()
	if r.Driven != 144 {
		t.Errorf("driven = %d, want 144", r.Driven)
	}
	if r.Distinct != 36 {
		t.Errorf("distinct = %d, want 36", r.Distinct)
	}
	if math.Abs(r.LoadsPerElement-4) > 1e-12 {
		t.Errorf("loads/element = %v, want 4", r.LoadsPerElement)
	}
}

// TestInputReuseParallelWindowBeatsIm2col: the whole point of SDK/VW-SDK —
// sharing a parallel window across duplicated kernels reduces input loads.
func TestInputReuseParallelWindowBeatsIm2col(t *testing.T) {
	l := core.Layer{IW: 14, IH: 14, KW: 3, KH: 3, IC: 8, OC: 8}
	a := core.Array{Rows: 128, Cols: 64}
	im, err := core.Im2col(l, a)
	if err != nil {
		t.Fatal(err)
	}
	vw, err := core.VW(l, a, core.Window{W: 4, H: 4})
	if err != nil {
		t.Fatal(err)
	}
	pIm, err := NewPlan(im)
	if err != nil {
		t.Fatal(err)
	}
	pVW, err := NewPlan(vw)
	if err != nil {
		t.Fatal(err)
	}
	rIm := pIm.InputReuse()
	rVW := pVW.InputReuse()
	if rIm.Distinct != rVW.Distinct {
		t.Errorf("distinct reads differ: %d vs %d", rIm.Distinct, rVW.Distinct)
	}
	if rVW.LoadsPerElement >= rIm.LoadsPerElement {
		t.Errorf("VW loads/element %.2f not below im2col %.2f",
			rVW.LoadsPerElement, rIm.LoadsPerElement)
	}
}

// TestInputReuseWholeWindowOnePass: a parallel window covering the whole IFM
// with all channels resident reads every element exactly once.
func TestInputReuseWholeWindowOnePass(t *testing.T) {
	l := core.Layer{IW: 6, IH: 6, KW: 3, KH: 3, IC: 1, OC: 1}
	a := core.Array{Rows: 64, Cols: 64}
	m, err := core.VW(l, a, core.Window{W: 6, H: 6})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlan(m)
	if err != nil {
		t.Fatal(err)
	}
	r := p.InputReuse()
	if r.Driven != 36 || r.Distinct != 36 || r.LoadsPerElement != 1 {
		t.Errorf("reuse = %+v, want perfect single pass", r)
	}
}

// TestInputReuseDistinctCoversIFM: every element needed by the convolution
// is read at least once (distinct reads == padded IFM size for stride-1
// valid convs, where every element participates).
func TestInputReuseDistinctCoversIFM(t *testing.T) {
	l := core.Layer{IW: 9, IH: 7, KW: 3, KH: 3, IC: 3, OC: 4}
	a := core.Array{Rows: 64, Cols: 48}
	for _, mk := range []func() (core.Mapping, error){
		func() (core.Mapping, error) { return core.Im2col(l, a) },
		func() (core.Mapping, error) { return core.VW(l, a, core.Window{W: 4, H: 3}) },
		func() (core.Mapping, error) { return core.SDK(l, a, core.Window{W: 4, H: 4}) },
		func() (core.Mapping, error) {
			r, err := core.SearchSMD(l, a)
			return r.Best, err
		},
	} {
		m, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewPlan(m)
		if err != nil {
			t.Fatal(err)
		}
		r := p.InputReuse()
		want := int64(l.IC * l.IH * l.IW)
		if r.Distinct != want {
			t.Errorf("%v: distinct = %d, want %d", m.Scheme, r.Distinct, want)
		}
	}
}
