package mapping

import "repro/internal/core"

// ReuseStats quantifies input-feature-map reuse — the motivation of the
// paper's Fig. 1: im2col re-reads overlapping window elements every cycle,
// while a parallel window reads each covered element once and shares it
// across its Nw duplicated kernels.
type ReuseStats struct {
	// Driven is the total number of row values driven across all
	// computing cycles (DAC loads, including structurally-zero rows).
	Driven int64

	// Distinct is the number of distinct (channel, y, x) IFM elements the
	// schedule reads at least once.
	Distinct int64

	// LoadsPerElement is Driven/Distinct: the average number of times each
	// needed input element crosses a DAC. 1.0 would be perfect reuse.
	LoadsPerElement float64
}

// InputReuse computes the schedule's input-load statistics analytically
// (no crossbar execution), by walking the same gather geometry Execute uses.
func (p *Plan) InputReuse() ReuseStats {
	l := p.M.Layer
	padW := l.PaddedW()
	seen := make(map[int]struct{})
	var driven int64
	for _, t := range p.Tiles {
		for _, pos := range p.Positions {
			driven += int64(t.Rows())
			for rr := 0; rr < t.Rows(); rr++ {
				c, y, x, ok := p.inputCoord(t, pos, rr)
				if !ok {
					continue
				}
				seen[(c*l.PaddedH()+y)*padW+x] = struct{}{}
			}
		}
	}
	out := ReuseStats{Driven: driven, Distinct: int64(len(seen))}
	if out.Distinct > 0 {
		out.LoadsPerElement = float64(out.Driven) / float64(out.Distinct)
	}
	return out
}

// inputCoord maps virtual row rr of tile t at position pos to its padded
// IFM coordinate, mirroring InputVector's gather. ok is false for rows that
// carry no input (idle SMD copies, or strided windows overhanging the IFM).
func (p *Plan) inputCoord(t Tile, pos Position, rr int) (c, y, x int, ok bool) {
	l := p.M.Layer
	r := t.RowLo + rr
	switch p.M.Scheme {
	case core.SchemeIm2col, core.SchemeSMD:
		kr := l.KernelRows()
		d, rk := r/kr, r%kr
		if d >= len(pos.Windows) {
			return 0, 0, 0, false
		}
		win := pos.Windows[d]
		oy, ox := win/l.OutW(), win%l.OutW()
		c, ky, kx := rowCoordIm2col(l, rk)
		return c, oy*l.StrideH + ky, ox*l.StrideW + kx, true
	default:
		c, wy, wx := p.rowCoordWindow(r)
		iy, ix := pos.PY+wy, pos.PX+wx
		if iy >= l.PaddedH() || ix >= l.PaddedW() {
			return 0, 0, 0, false
		}
		return c, iy, ix, true
	}
}
