// Package mapping turns an analytic mapping decision (core.Mapping) into a
// physical execution plan: concrete weight tiles programmed into a crossbar,
// input gather vectors per computing cycle, and output scatter rules that
// reassemble the output feature map.
//
// The package is the bridge between the paper's cycle arithmetic and an
// actual PIM array: executing a Plan on a simulated crossbar performs
// exactly Mapping.Cycles computing cycles and produces bit-identical results
// to the reference convolution, which is the repository's core integration
// test (DESIGN.md §6).
//
// Layouts implemented (one per scheme):
//
//   - im2col: rows are the unrolled kernel (channel-major), one column per
//     output channel; each cycle processes one window.
//   - SMD: Dup block-diagonal copies of the im2col matrix; each cycle
//     processes a group of Dup independent windows.
//   - SDK: rows are the parallel window unrolled channel-major (window
//     raster order within a channel); columns hold Nw shifted kernel copies,
//     window-major (all OC of window 0, then window 1, ...). Row tiles split
//     row-granularly and column tiles column-granularly, as the baseline's
//     eq. 1 assumes.
//   - VW-SDK: same row layout but tiles cut at channel boundaries (ICt per
//     tile, eq. 4); columns are channel-major (all Nw windows of an output
//     channel together) so column tiles cut at OCt boundaries (eq. 6).
package mapping

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/obs"
)

// Position is one parallel-window placement: a single computing cycle's
// input region (per row tile) and the output elements it is responsible for.
type Position struct {
	// PX, PY is the parallel-window origin in padded IFM coordinates.
	PX, PY int

	// OXStart, OYStart are the output coordinates of the window at offset
	// (0,0) inside the parallel window.
	OXStart, OYStart int

	// FreshXLo, FreshYLo are the first window offsets (per axis) not
	// already covered by a previous, overlapping clamped position; offsets
	// below them are recomputed by the hardware but must not be scattered
	// twice.
	FreshXLo, FreshYLo int

	// Windows lists the output positions (oy·OutW+ox indices) processed by
	// this cycle for the im2col and SMD schemes; nil for window schemes.
	Windows []int
}

// Tile is one array-row × array-column tile: the virtual row/column ranges
// of the scheme's full logical matrix that are programmed together.
type Tile struct {
	// I, J are the AR and AC tile indices.
	I, J int

	// RowLo, RowHi and ColLo, ColHi are half-open ranges in the scheme's
	// virtual row/column spaces.
	RowLo, RowHi int
	ColLo, ColHi int
}

// Rows returns the physical rows the tile occupies.
func (t Tile) Rows() int { return t.RowHi - t.RowLo }

// Cols returns the physical columns the tile occupies.
func (t Tile) Cols() int { return t.ColHi - t.ColLo }

// Plan is an executable weight-mapping schedule. Build one with NewPlan.
type Plan struct {
	// M is the analytic mapping the plan realizes.
	M core.Mapping

	// Tiles are the AR×AC weight tiles in (i, j) row-major order.
	Tiles []Tile

	// Positions are the per-tile computing cycles.
	Positions []Position
}

// NewPlanContext is NewPlan bracketed in an obs span ("mapping.plan", with
// the tile count attached) when ctx carries a trace; the compile pipeline's
// planning stage calls this form so physical planning shows up in compile
// provenance. The plan itself is identical to NewPlan's.
func NewPlanContext(ctx context.Context, m core.Mapping) (*Plan, error) {
	_, sp := obs.Start(ctx, "mapping.plan")
	defer sp.End()
	p, err := NewPlan(m)
	if err == nil {
		sp.SetInt("tiles", int64(len(p.Tiles)))
	}
	return p, err
}

// NewPlan builds the execution plan for a costed mapping. The mapping must
// come from one of core's constructors or searches; NewPlan re-derives and
// cross-checks the geometry and fails on inconsistent hand-built values.
func NewPlan(m core.Mapping) (*Plan, error) {
	l := m.Layer.Normalized()
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if err := m.Array.Validate(); err != nil {
		return nil, err
	}
	p := &Plan{M: m}
	p.M.Layer = l
	switch m.Scheme {
	case core.SchemeIm2col, core.SchemeSMD:
		if m.Dup < 1 {
			return nil, fmt.Errorf("mapping: %v with Dup=%d", m.Scheme, m.Dup)
		}
		if m.Dup > 1 && l.NumGroups() > 1 {
			return nil, fmt.Errorf("mapping: SMD duplication has no grouped layout (layer %v has %d groups)",
				l, l.NumGroups())
		}
		p.buildIm2colTiles()
		p.buildGroupPositions()
	case core.SchemeSDK:
		if l.NumGroups() > 1 {
			return nil, fmt.Errorf("mapping: SDK's row-granular layout has no grouped form (layer %v has %d groups)",
				l, l.NumGroups())
		}
		p.buildSDKTiles()
		p.buildWindowPositions()
	case core.SchemeVWSDK:
		p.buildVWTiles()
		p.buildWindowPositions()
	default:
		return nil, fmt.Errorf("mapping: unknown scheme %v", m.Scheme)
	}
	for _, t := range p.Tiles {
		if t.Rows() > m.Array.Rows || t.Cols() > m.Array.Cols {
			return nil, fmt.Errorf("mapping: tile (%d,%d) is %dx%d, exceeds array %v",
				t.I, t.J, t.Rows(), t.Cols(), m.Array)
		}
		if t.Rows() <= 0 || t.Cols() <= 0 {
			return nil, fmt.Errorf("mapping: tile (%d,%d) is empty (inconsistent mapping %+v)",
				t.I, t.J, m)
		}
	}
	if got := int64(len(p.Tiles)) * int64(len(p.Positions)); got != m.Cycles {
		return nil, fmt.Errorf("mapping: plan executes %d cycles, mapping says %d (inconsistent mapping)",
			got, m.Cycles)
	}
	return p, nil
}

// buildIm2colTiles creates the AR×AC grid for im2col and SMD layouts — per
// convolution group, over global virtual spaces: group g's kernel rows
// occupy [g·KernelRows, (g+1)·KernelRows) and its output channels
// [g·OCg, (g+1)·OCg), so every tile lies inside one group's block. For SMD
// with Dup > 1 (dense only) the whole block-diagonal matrix forms a single
// tile.
func (p *Plan) buildIm2colTiles() {
	m, l := p.M, p.M.Layer
	if m.Scheme == core.SchemeSMD && m.Dup > 1 {
		p.Tiles = []Tile{{
			RowLo: 0, RowHi: m.Dup * l.KernelRows(),
			ColLo: 0, ColHi: m.Dup * l.OC,
		}}
		return
	}
	kr, ocg := l.KernelRows(), l.OCg()
	for g := 0; g < l.NumGroups(); g++ {
		for i := 0; i < m.AR; i++ {
			rowLo := g*kr + i*m.Array.Rows
			rowHi := min(rowLo+m.Array.Rows, (g+1)*kr)
			for j := 0; j < m.AC; j++ {
				colLo := g*ocg + j*m.OCt
				colHi := min(colLo+m.OCt, (g+1)*ocg)
				p.Tiles = append(p.Tiles, Tile{I: i, J: j,
					RowLo: rowLo, RowHi: rowHi, ColLo: colLo, ColHi: colHi})
			}
		}
	}
}

// buildSDKTiles creates row-granular × column-granular tiles over the
// parallel-window layout (virtual rows PW²·IC, virtual columns Nw·OC).
func (p *Plan) buildSDKTiles() {
	m, l := p.M, p.M.Layer
	totalRows := m.PW.Area() * l.IC
	totalCols := m.Nw() * l.OC
	for i := 0; i < m.AR; i++ {
		rowLo := i * m.Array.Rows
		rowHi := min(rowLo+m.Array.Rows, totalRows)
		for j := 0; j < m.AC; j++ {
			colLo := j * m.Array.Cols
			colHi := min(colLo+m.Array.Cols, totalCols)
			p.Tiles = append(p.Tiles, Tile{I: i, J: j,
				RowLo: rowLo, RowHi: rowHi, ColLo: colLo, ColHi: colHi})
		}
	}
}

// buildVWTiles creates channel-granular tiles: row tiles cut at ICt channel
// boundaries (eq. 4/5) and column tiles at OCt output-channel boundaries
// (eq. 6/7) over the channel-major column layout. Grouped layers repeat the
// per-group AR×AC grid once per group in the global channel spaces (group g
// owns input channels [g·ICg, (g+1)·ICg) and output channels
// [g·OCg, (g+1)·OCg)), so a tile never crosses a group boundary — the
// physical form of "a group cannot share array columns with another group".
func (p *Plan) buildVWTiles() {
	m, l := p.M, p.M.Layer
	area := m.PW.Area()
	nw := m.Nw()
	icg, ocg := l.ICg(), l.OCg()
	for g := 0; g < l.NumGroups(); g++ {
		for i := 0; i < m.AR; i++ {
			cLo := g*icg + i*m.ICt
			cHi := min(cLo+m.ICt, (g+1)*icg)
			for j := 0; j < m.AC; j++ {
				oLo := g*ocg + j*m.OCt
				oHi := min(oLo+m.OCt, (g+1)*ocg)
				p.Tiles = append(p.Tiles, Tile{I: i, J: j,
					RowLo: cLo * area, RowHi: cHi * area,
					ColLo: oLo * nw, ColHi: oHi * nw})
			}
		}
	}
}

// buildGroupPositions enumerates window groups for im2col (groups of one)
// and SMD (groups of Dup windows).
func (p *Plan) buildGroupPositions() {
	l := p.M.Layer
	windows := l.Windows()
	group := p.M.Dup
	for lo := 0; lo < windows; lo += group {
		hi := min(lo+group, windows)
		idx := make([]int, 0, hi-lo)
		for w := lo; w < hi; w++ {
			idx = append(idx, w)
		}
		p.Positions = append(p.Positions, Position{Windows: idx})
	}
}

// buildWindowPositions enumerates parallel-window origins for the SDK and
// VW-SDK schemes. Origins advance by Nw outputs per axis; the final position
// per axis is clamped so the window stays inside the padded IFM, and its
// Fresh*Lo fields mark which window offsets were not already produced by the
// previous position (the hardware recomputes them; the scatter skips them).
func (p *Plan) buildWindowPositions() {
	m, l := p.M, p.M.Layer
	outW, outH := l.OutW(), l.OutH()
	nX := ceilDiv(outW, m.NwW)
	nY := ceilDiv(outH, m.NwH)
	oxStart := func(g int) int { return min(g*m.NwW, outW-m.NwW) }
	oyStart := func(g int) int { return min(g*m.NwH, outH-m.NwH) }
	for gy := 0; gy < nY; gy++ {
		oy := oyStart(gy)
		freshY := 0
		if gy > 0 {
			freshY = oyStart(gy-1) + m.NwH - oy
		}
		for gx := 0; gx < nX; gx++ {
			ox := oxStart(gx)
			freshX := 0
			if gx > 0 {
				freshX = oxStart(gx-1) + m.NwW - ox
			}
			p.Positions = append(p.Positions, Position{
				PX: ox * l.StrideW, PY: oy * l.StrideH,
				OXStart: ox, OYStart: oy,
				FreshXLo: freshX, FreshYLo: freshY,
			})
		}
	}
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
