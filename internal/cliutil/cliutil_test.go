package cliutil

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestParseSize(t *testing.T) {
	tests := []struct {
		in     string
		w, h   int
		wantOK bool
	}{
		{"512x256", 512, 256, true},
		{"512", 512, 512, true},
		{" 14x14 ", 14, 14, true},
		{"8X4", 8, 4, true},
		{"", 0, 0, false},
		{"axb", 0, 0, false},
		{"1x2x3", 0, 0, false},
		{"12x", 0, 0, false},
	}
	for _, tt := range tests {
		w, h, err := ParseSize(tt.in)
		if tt.wantOK != (err == nil) {
			t.Errorf("ParseSize(%q) err = %v, wantOK %v", tt.in, err, tt.wantOK)
			continue
		}
		if err == nil && (w != tt.w || h != tt.h) {
			t.Errorf("ParseSize(%q) = %d,%d, want %d,%d", tt.in, w, h, tt.w, tt.h)
		}
	}
}

func TestParseArray(t *testing.T) {
	a, err := ParseArray("512x256")
	if err != nil || a != (core.Array{Rows: 512, Cols: 256}) {
		t.Fatalf("ParseArray = %v, %v", a, err)
	}
	if _, err := ParseArray("0x4"); err == nil {
		t.Error("zero rows accepted")
	}
	if _, err := ParseArray("bogus"); err == nil {
		t.Error("bogus accepted")
	}
}

func TestLayerFlags(t *testing.T) {
	f := LayerFlags{IFM: "14x14", Kernel: "3x3", IC: 256, OC: 256}
	l, err := f.Layer("conv4")
	if err != nil {
		t.Fatal(err)
	}
	if l.StrideW != 1 || l.IW != 14 || l.KW != 3 || l.IC != 256 {
		t.Errorf("layer = %v", l)
	}
	f.Stride = 2
	f.Pad = 1
	l, err = f.Layer("strided")
	if err != nil {
		t.Fatal(err)
	}
	if l.StrideH != 2 || l.PadW != 1 {
		t.Errorf("layer = %v", l)
	}
	bad := LayerFlags{IFM: "x", Kernel: "3x3", IC: 1, OC: 1}
	if _, err := bad.Layer("b"); err == nil {
		t.Error("bad IFM accepted")
	}
	bad = LayerFlags{IFM: "8x8", Kernel: "q", IC: 1, OC: 1}
	if _, err := bad.Layer("b"); err == nil {
		t.Error("bad kernel accepted")
	}
	bad = LayerFlags{IFM: "8x8", Kernel: "3x3", IC: 0, OC: 1}
	if _, err := bad.Layer("b"); err == nil {
		t.Error("zero IC accepted")
	}
}

// TestVersion checks the -version string is non-empty and stable across
// calls; under go test there is no tagged module version, so it must fall
// back to a "devel" form rather than the empty string.
func TestVersion(t *testing.T) {
	v := Version()
	if v == "" {
		t.Fatal("empty version")
	}
	if !strings.HasPrefix(v, "devel") && strings.TrimSpace(v) == "" {
		t.Errorf("unexpected version %q", v)
	}
	if again := Version(); again != v {
		t.Errorf("version not stable: %q then %q", v, again)
	}
}

// TestProfileFlags covers the shared -cpuprofile/-memprofile plumbing: flag
// registration, profile files written on stop, the no-profiling no-op, and
// the unwritable-path error.
func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	var p ProfileFlags
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	p.Register(fs)
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	stop, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1e5; i++ {
		_ = i * i // give the CPU profiler something to sample
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{cpu, mem} {
		st, err := os.Stat(f)
		if err != nil {
			t.Fatalf("profile missing: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", f)
		}
	}

	// No flags: Start and stop are no-ops.
	var none ProfileFlags
	stop, err = none.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}

	bad := ProfileFlags{CPU: filepath.Join(dir, "no", "such", "dir", "cpu")}
	if _, err := bad.Start(); err == nil {
		t.Error("unwritable -cpuprofile path accepted")
	}
	badMem := ProfileFlags{Mem: filepath.Join(dir, "no", "such", "dir", "mem")}
	stop, err = badMem.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err == nil {
		t.Error("unwritable -memprofile path accepted")
	}
}
