// Package cliutil holds the small flag-parsing helpers shared by the
// command-line tools in cmd/.
package cliutil

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/obs"
)

// ProfileFlags holds the shared -cpuprofile/-memprofile flag values of the
// cmd/ tools. Register the flags with Register, then bracket the work:
//
//	stop, err := prof.Start()
//	if err != nil { return err }
//	defer stop() // or collect stop()'s error on the happy path
//
// Start begins CPU profiling when -cpuprofile was given; the returned stop
// finishes the CPU profile and writes the heap profile when -memprofile was
// given. Both profiles are pprof-format files for `go tool pprof`.
type ProfileFlags struct {
	CPU string
	Mem string

	cpuFile *os.File
}

// Register declares the -cpuprofile and -memprofile flags on fs.
func (p *ProfileFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&p.CPU, "cpuprofile", "", "write a CPU profile to `file`")
	fs.StringVar(&p.Mem, "memprofile", "", "write a heap profile to `file` on exit")
}

// Start begins CPU profiling if requested and returns the function that
// stops it and writes the heap profile; stop is never nil and is safe to
// call when no profiling was requested.
func (p *ProfileFlags) Start() (stop func() error, err error) {
	if p.CPU != "" {
		p.cpuFile, err = os.Create(p.CPU)
		if err != nil {
			return nil, fmt.Errorf("cliutil: -cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(p.cpuFile); err != nil {
			p.cpuFile.Close()
			return nil, fmt.Errorf("cliutil: -cpuprofile: %w", err)
		}
	}
	return p.stop, nil
}

func (p *ProfileFlags) stop() error {
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil {
			return fmt.Errorf("cliutil: -cpuprofile: %w", err)
		}
		p.cpuFile = nil
	}
	if p.Mem != "" {
		f, err := os.Create(p.Mem)
		if err != nil {
			return fmt.Errorf("cliutil: -memprofile: %w", err)
		}
		defer f.Close()
		runtime.GC() // materialize the final live set
		if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
			return fmt.Errorf("cliutil: -memprofile: %w", err)
		}
	}
	return nil
}

// TraceFlags holds the shared -trace flag of the cmd/ tools: a Chrome
// trace-event JSON output path. Register the flag, derive the run's context
// through Context (a no-op returning ctx unchanged when -trace was not
// given), run the work, then Write the recorded trace:
//
//	ctx := tf.Context(context.Background(), "vwsdk")
//	... run ...
//	if err := tf.Write(); err != nil { return err }
//
// The produced file opens directly in chrome://tracing and Perfetto's legacy
// importer.
type TraceFlags struct {
	Out string

	tr *obs.Trace
}

// Register declares the -trace flag on fs.
func (t *TraceFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&t.Out, "trace", "", "write a Chrome trace-event JSON trace to `file`")
}

// Context attaches a fresh trace named name to ctx when -trace was given;
// otherwise it returns ctx unchanged and the whole span path stays on the
// disabled no-op fast path.
func (t *TraceFlags) Context(ctx context.Context, name string) context.Context {
	if t.Out == "" {
		return ctx
	}
	t.tr = obs.New(name)
	return obs.NewContext(ctx, t.tr)
}

// Trace returns the active trace, or nil when -trace was not given (or
// Context has not run yet).
func (t *TraceFlags) Trace() *obs.Trace { return t.tr }

// Write writes the recorded trace to the -trace file; call it after the
// traced work has finished. It is a no-op when tracing is disabled.
func (t *TraceFlags) Write() error {
	if t.tr == nil {
		return nil
	}
	f, err := os.Create(t.Out)
	if err != nil {
		return fmt.Errorf("cliutil: -trace: %w", err)
	}
	if err := t.tr.WriteChrome(f); err != nil {
		f.Close()
		return fmt.Errorf("cliutil: -trace: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("cliutil: -trace: %w", err)
	}
	return nil
}

// Version returns the version string the cmd/ tools print for -version: the
// module version when the binary was built from a tagged module, otherwise
// the VCS revision ("devel+<rev>[+dirty]") when the build embedded one, and
// "devel" as the last resort (e.g. under go test).
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	if rev == "" {
		return "devel"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	return "devel+" + rev + dirty
}

// Revision returns the bare VCS revision the build embedded ("+dirty" when
// the working tree was modified), or "unknown" when the build carried none
// (e.g. under go test). Fleet dashboards use it to detect version skew
// across vwsdkd instances, independent of the tagged module version.
func Revision() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	if rev == "" {
		return "unknown"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	return rev + dirty
}

// ParseSize parses "WxH" (e.g. "512x256") or a single integer "512"
// (meaning a square) into width and height.
func ParseSize(s string) (w, h int, err error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, 0, fmt.Errorf("cliutil: empty size")
	}
	parts := strings.Split(strings.ToLower(s), "x")
	switch len(parts) {
	case 1:
		w, err = strconv.Atoi(parts[0])
		if err != nil {
			return 0, 0, fmt.Errorf("cliutil: bad size %q: %w", s, err)
		}
		return w, w, nil
	case 2:
		w, err = strconv.Atoi(parts[0])
		if err != nil {
			return 0, 0, fmt.Errorf("cliutil: bad size %q: %w", s, err)
		}
		h, err = strconv.Atoi(parts[1])
		if err != nil {
			return 0, 0, fmt.Errorf("cliutil: bad size %q: %w", s, err)
		}
		return w, h, nil
	default:
		return 0, 0, fmt.Errorf("cliutil: bad size %q (want WxH)", s)
	}
}

// ParseArray parses "RowsxCols" (or a square "512") into a core.Array.
func ParseArray(s string) (core.Array, error) {
	r, c, err := ParseSize(s)
	if err != nil {
		return core.Array{}, err
	}
	a := core.Array{Rows: r, Cols: c}
	if err := a.Validate(); err != nil {
		return core.Array{}, err
	}
	return a, nil
}

// LayerFlags collects the per-layer flag values the tools share.
type LayerFlags struct {
	IFM    string
	Kernel string
	IC, OC int
	Stride int
	Pad    int
	Groups int
}

// Layer converts the flag values into a validated core.Layer.
func (f LayerFlags) Layer(name string) (core.Layer, error) {
	iw, ih, err := ParseSize(f.IFM)
	if err != nil {
		return core.Layer{}, fmt.Errorf("-ifm: %w", err)
	}
	kw, kh, err := ParseSize(f.Kernel)
	if err != nil {
		return core.Layer{}, fmt.Errorf("-kernel: %w", err)
	}
	l := core.Layer{
		Name: name,
		IW:   iw, IH: ih, KW: kw, KH: kh,
		IC: f.IC, OC: f.OC,
		StrideW: f.Stride, StrideH: f.Stride,
		PadW: f.Pad, PadH: f.Pad,
		Groups: f.Groups,
	}
	l = l.Normalized()
	if err := l.Validate(); err != nil {
		return core.Layer{}, err
	}
	return l, nil
}
