// Package bitslice extends the mapping cost model and the functional
// simulator to finite-precision PIM arithmetic (extension E14, DESIGN.md).
//
// Real PIM cells store only a few bits, and DACs drive only a few bits per
// pulse. A W-bit weight is therefore *sliced* across ceil(W/cellBits)
// columns, and an A-bit input is applied *bit-serially* over
// ceil(A/dacBits) passes; column outputs are recombined digitally with
// shifts and adds. Both mechanisms multiply the paper's cycle arithmetic:
//
//   - weight slices multiply the column demand, shrinking OCt (eq. 6);
//   - input passes multiply the computing cycles directly.
//
// Numbers are two's-complement: the most significant slice (or input digit)
// carries a signed coefficient, every other slice an unsigned power-of-two
// coefficient. Digit decomposition and recombination are exact over the
// representable range, so the bit-sliced crossbar execution (Run) remains
// bit-for-bit comparable with the reference convolution.
package bitslice

import (
	"fmt"

	"repro/internal/conv"
	"repro/internal/core"
	"repro/internal/mapping"
	"repro/internal/pimarray"
	"repro/internal/tensor"
)

// Precision describes the finite-precision configuration of an array.
type Precision struct {
	// WeightBits is the two's-complement width of weights; weights must
	// lie in [-2^(WeightBits-1), 2^(WeightBits-1)).
	WeightBits int

	// CellBits is the number of bits one memory cell stores.
	CellBits int

	// InputBits is the two's-complement width of inputs.
	InputBits int

	// DACBits is the number of bits one DAC pulse drives.
	DACBits int
}

// Validate reports whether the precision configuration is meaningful.
func (p Precision) Validate() error {
	switch {
	case p.WeightBits < 1 || p.WeightBits > 32:
		return fmt.Errorf("bitslice: weight bits %d out of [1,32]", p.WeightBits)
	case p.CellBits < 1 || p.CellBits > p.WeightBits:
		return fmt.Errorf("bitslice: cell bits %d out of [1,%d]", p.CellBits, p.WeightBits)
	case p.InputBits < 1 || p.InputBits > 32:
		return fmt.Errorf("bitslice: input bits %d out of [1,32]", p.InputBits)
	case p.DACBits < 1 || p.DACBits > p.InputBits:
		return fmt.Errorf("bitslice: DAC bits %d out of [1,%d]", p.DACBits, p.InputBits)
	}
	return nil
}

// WeightSlices returns the number of columns one logical weight occupies.
func (p Precision) WeightSlices() int { return ceilDiv(p.WeightBits, p.CellBits) }

// InputPasses returns the number of bit-serial pulses per input.
func (p Precision) InputPasses() int { return ceilDiv(p.InputBits, p.DACBits) }

// Full returns a degenerate precision with one slice and one pass (ideal
// full-precision cells), under which costs equal the paper's.
func Full() Precision {
	return Precision{WeightBits: 1, CellBits: 1, InputBits: 1, DACBits: 1}
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// digits decomposes the two's-complement integer v (within width bits) into
// ceil(width/digitBits) digits of digitBits each, least significant first.
// The top digit is the signed remainder; all others are unsigned.
func digits(v int64, width, digitBits int) []int64 {
	n := ceilDiv(width, digitBits)
	out := make([]int64, n)
	u := v
	for j := 0; j < n-1; j++ {
		mask := int64(1)<<uint(digitBits) - 1
		out[j] = u & mask
		u >>= uint(digitBits)
	}
	out[n-1] = u // signed top digit (arithmetic shift kept the sign)
	return out
}

// coefficient returns the recombination weight of digit j.
func coefficient(j, digitBits int) int64 {
	return int64(1) << uint(j*digitBits)
}

// recombine is the inverse of digits; exported logic kept internal but
// exercised directly by tests.
func recombine(ds []int64, digitBits int) int64 {
	var v int64
	for j, d := range ds {
		v += d * coefficient(j, digitBits)
	}
	return v
}

// Cost reproduces the paper's cycle arithmetic under precision p for a
// VW-SDK window on layer l: weight slices scale the column demand in eq. 6
// and input passes scale the final count.
//
//	OCt = floor(Cols / (Nw × slices)),  cycles = N_PW × AR × AC × passes
//
// It returns the adjusted mapping (OCt/AC/Cycles updated) — the spatial
// (column-expanded) realization of bit slicing.
func Cost(l core.Layer, a core.Array, pw core.Window, p Precision) (core.Mapping, error) {
	if err := p.Validate(); err != nil {
		return core.Mapping{}, err
	}
	slices := p.WeightSlices()
	// Cost the window against a virtually narrowed array: each logical
	// column costs `slices` physical columns.
	narrowed := core.Array{Rows: a.Rows, Cols: a.Cols / slices}
	if narrowed.Cols < 1 {
		return core.Mapping{}, fmt.Errorf("bitslice: %d slices exceed %d array columns: %w",
			slices, a.Cols, core.ErrInfeasible)
	}
	m, err := core.VW(l, narrowed, pw)
	if err != nil {
		return core.Mapping{}, err
	}
	m.Array = a
	m.Cycles *= int64(p.InputPasses())
	return m, nil
}

// Search runs Algorithm 1 under precision p: the optimal window can change
// when slices eat into the column budget. With Full() precision it returns
// exactly core.SearchVWSDK's choice.
func Search(l core.Layer, a core.Array, p Precision) (core.Result, error) {
	if err := p.Validate(); err != nil {
		return core.Result{}, err
	}
	l = l.Normalized()
	slices := p.WeightSlices()
	passes := int64(p.InputPasses())
	narrowed := core.Array{Rows: a.Rows, Cols: a.Cols / slices}
	if narrowed.Cols < 1 {
		return core.Result{}, fmt.Errorf("bitslice: %d slices exceed %d array columns: %w",
			slices, a.Cols, core.ErrInfeasible)
	}
	res, err := core.SearchVWSDK(l, narrowed)
	if err != nil {
		return core.Result{}, err
	}
	res.Best.Array = a
	res.Best.Cycles *= passes
	res.Im2col.Array = a
	res.Im2col.Cycles *= passes
	return res, nil
}

// Run executes mapping m on a simulated crossbar with bit-sliced arithmetic
// and returns the recombined output feature map. Weights and inputs must be
// integers within the precision's two's-complement ranges (Quantize clamps
// a tensor into range).
//
// Run realizes slicing by time multiplexing: each weight slice is
// programmed and swept in turn, and each input pass drives one digit of the
// inputs, so the observed cycle count is base cycles × slices × passes —
// the temporal dual of Cost's column expansion (both are real designs; see
// package comment).
func Run(m core.Mapping, p Precision, ifm *tensor.Tensor3, w *tensor.Tensor4) (*tensor.Tensor3, pimarray.Stats, error) {
	if err := p.Validate(); err != nil {
		return nil, pimarray.Stats{}, err
	}
	l := m.Layer.Normalized()
	if err := conv.CheckShapes(l, ifm, w); err != nil {
		return nil, pimarray.Stats{}, err
	}
	if err := checkRange(ifm.Data, p.InputBits, "input"); err != nil {
		return nil, pimarray.Stats{}, err
	}
	if err := checkRange(w.Data, p.WeightBits, "weight"); err != nil {
		return nil, pimarray.Stats{}, err
	}
	plan, err := mapping.NewPlan(m)
	if err != nil {
		return nil, pimarray.Stats{}, err
	}
	arr, err := pimarray.New(m.Array.Rows, m.Array.Cols)
	if err != nil {
		return nil, pimarray.Stats{}, err
	}
	slices := p.WeightSlices()
	passes := p.InputPasses()
	padded := ifm.Pad(l.PadH, l.PadW)
	out := tensor.NewTensor3(l.OC, l.OutH(), l.OutW())

	for _, t := range plan.Tiles {
		ideal := plan.WeightTile(w, t)
		for s := 0; s < slices; s++ {
			slice := weightSliceMatrix(ideal, s, p)
			if err := arr.Program(slice); err != nil {
				return nil, pimarray.Stats{}, err
			}
			wCoef := float64(coefficient(s, p.CellBits))
			for _, pos := range plan.Positions {
				in := plan.InputVector(padded, t, pos)
				acc := make([]float64, slice.Cols)
				for k := 0; k < passes; k++ {
					pulse := inputDigitVector(in, k, p)
					res, err := arr.Compute(pulse)
					if err != nil {
						return nil, pimarray.Stats{}, err
					}
					aCoef := float64(coefficient(k, p.DACBits))
					for c, v := range res {
						acc[c] += aCoef * v
					}
				}
				for c := range acc {
					acc[c] *= wCoef
				}
				plan.Scatter(out, t, pos, acc)
			}
		}
	}
	return out, arr.Stats(), nil
}

// weightSliceMatrix extracts digit s of every cell of the ideal tile.
func weightSliceMatrix(ideal *tensor.Matrix, s int, p Precision) *tensor.Matrix {
	out := tensor.NewMatrix(ideal.Rows, ideal.Cols)
	for i, v := range ideal.Data {
		ds := digits(int64(v), p.WeightBits, p.CellBits)
		if s < len(ds) {
			out.Data[i] = float64(ds[s])
		}
	}
	return out
}

// inputDigitVector extracts digit k of every input element.
func inputDigitVector(in []float64, k int, p Precision) []float64 {
	out := make([]float64, len(in))
	for i, v := range in {
		ds := digits(int64(v), p.InputBits, p.DACBits)
		if k < len(ds) {
			out[i] = float64(ds[k])
		}
	}
	return out
}

// checkRange verifies every value is an integer within the signed width.
func checkRange(data []float64, bits int, what string) error {
	lo := -(int64(1) << uint(bits-1))
	hi := int64(1)<<uint(bits-1) - 1
	for i, v := range data {
		iv := int64(v)
		if float64(iv) != v || iv < lo || iv > hi {
			return fmt.Errorf("bitslice: %s[%d] = %v outside %d-bit range [%d,%d]",
				what, i, v, bits, lo, hi)
		}
	}
	return nil
}

// Quantize clamps and rounds every element of data into the signed range of
// the given width, in place.
func Quantize(data []float64, bits int) {
	lo := float64(-(int64(1) << uint(bits-1)))
	hi := float64(int64(1)<<uint(bits-1) - 1)
	for i, v := range data {
		q := float64(int64(v + 0.5*sign(v)))
		if q < lo {
			q = lo
		}
		if q > hi {
			q = hi
		}
		data[i] = q
	}
}

func sign(v float64) float64 {
	if v < 0 {
		return -1
	}
	return 1
}
