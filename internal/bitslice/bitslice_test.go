package bitslice

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/conv"
	"repro/internal/core"
	"repro/internal/tensor"
)

func TestPrecisionValidate(t *testing.T) {
	good := Precision{WeightBits: 8, CellBits: 2, InputBits: 8, DACBits: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Precision{
		{WeightBits: 0, CellBits: 1, InputBits: 8, DACBits: 1},
		{WeightBits: 8, CellBits: 0, InputBits: 8, DACBits: 1},
		{WeightBits: 8, CellBits: 9, InputBits: 8, DACBits: 1},
		{WeightBits: 8, CellBits: 2, InputBits: 0, DACBits: 1},
		{WeightBits: 8, CellBits: 2, InputBits: 8, DACBits: 9},
		{WeightBits: 33, CellBits: 2, InputBits: 8, DACBits: 1},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%+v accepted", p)
		}
	}
}

func TestSliceAndPassCounts(t *testing.T) {
	p := Precision{WeightBits: 8, CellBits: 2, InputBits: 6, DACBits: 4}
	if p.WeightSlices() != 4 {
		t.Errorf("slices = %d, want 4", p.WeightSlices())
	}
	if p.InputPasses() != 2 {
		t.Errorf("passes = %d, want 2", p.InputPasses())
	}
	if Full().WeightSlices() != 1 || Full().InputPasses() != 1 {
		t.Error("Full precision should be 1 slice, 1 pass")
	}
}

// TestDigitsRoundTrip: digits/recombine invert each other over the full
// representable range for several widths.
func TestDigitsRoundTrip(t *testing.T) {
	for _, cfg := range []struct{ width, db int }{
		{4, 1}, {4, 2}, {4, 3}, {8, 2}, {8, 3}, {8, 8}, {6, 4},
	} {
		lo := -(int64(1) << uint(cfg.width-1))
		hi := int64(1)<<uint(cfg.width-1) - 1
		for v := lo; v <= hi; v++ {
			ds := digits(v, cfg.width, cfg.db)
			if got := recombine(ds, cfg.db); got != v {
				t.Fatalf("width %d digitBits %d: recombine(digits(%d)) = %d",
					cfg.width, cfg.db, v, got)
			}
			// Non-top digits are unsigned digitBits values.
			for j := 0; j < len(ds)-1; j++ {
				if ds[j] < 0 || ds[j] >= int64(1)<<uint(cfg.db) {
					t.Fatalf("digit %d of %d out of range: %d", j, v, ds[j])
				}
			}
		}
	}
}

// TestRunExactVsReference: the bit-sliced crossbar execution equals the
// reference convolution exactly for in-range integer tensors.
func TestRunExactVsReference(t *testing.T) {
	l := core.Layer{IW: 9, IH: 8, KW: 3, KH: 3, IC: 4, OC: 6}
	a := core.Array{Rows: 64, Cols: 48}
	m, err := core.VW(l, a, core.Window{W: 4, H: 4})
	if err != nil {
		t.Fatal(err)
	}
	// RandTensor fills are in [-4,4]: 4-bit range.
	p := Precision{WeightBits: 4, CellBits: 2, InputBits: 4, DACBits: 1}
	ifm := tensor.RandTensor3(3, l.IC, l.IH, l.IW)
	w := tensor.RandTensor4(4, l.OC, l.IC, l.KH, l.KW)
	want, err := conv.Reference(l, ifm, w)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := Run(m, p, ifm, w)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("bit-sliced output differs (max |diff| %g)", got.MaxAbsDiff(want))
	}
	// Time-multiplexed realization: base cycles × slices × passes.
	wantCycles := m.Cycles * int64(p.WeightSlices()) * int64(p.InputPasses())
	if stats.Cycles != wantCycles {
		t.Fatalf("cycles = %d, want %d", stats.Cycles, wantCycles)
	}
}

// TestRunExactProperty extends the exactness check across schemes,
// precisions and layer shapes.
func TestRunExactProperty(t *testing.T) {
	f := func(seed uint64, iw, ic, oc, cb, db uint8) bool {
		l := core.Layer{
			IW: int(iw%6) + 5, IH: int(iw%6) + 5,
			KW: 3, KH: 3, IC: int(ic%4) + 1, OC: int(oc%4) + 1,
		}
		a := core.Array{Rows: 48, Cols: 32}
		p := Precision{
			WeightBits: 4, CellBits: int(cb%4) + 1,
			InputBits: 4, DACBits: int(db%4) + 1,
		}
		m, err := core.VW(l, a, core.Window{W: 4, H: 3})
		if err != nil {
			return true
		}
		ifm := tensor.RandTensor3(seed, l.IC, l.IH, l.IW)
		w := tensor.RandTensor4(seed^7, l.OC, l.IC, l.KH, l.KW)
		want, err := conv.Reference(l, ifm, w)
		if err != nil {
			return false
		}
		got, _, err := Run(m, p, ifm, w)
		if err != nil {
			return false
		}
		return got.Equal(want)
	}
	n := 40
	if testing.Short() {
		n = 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: n}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRangeChecks(t *testing.T) {
	l := core.Layer{IW: 6, IH: 6, KW: 3, KH: 3, IC: 1, OC: 1}
	a := core.Array{Rows: 32, Cols: 16}
	m, err := core.VW(l, a, core.Window{W: 4, H: 4})
	if err != nil {
		t.Fatal(err)
	}
	p := Precision{WeightBits: 2, CellBits: 1, InputBits: 2, DACBits: 1}
	// [-4,4] fills exceed a 2-bit range: must be rejected.
	ifm := tensor.RandTensor3(1, 1, 6, 6)
	w := tensor.RandTensor4(2, 1, 1, 3, 3)
	if _, _, err := Run(m, p, ifm, w); err == nil {
		t.Fatal("out-of-range values accepted")
	}
	Quantize(ifm.Data, 2)
	Quantize(w.Data, 2)
	if _, _, err := Run(m, p, ifm, w); err != nil {
		t.Fatalf("quantized run failed: %v", err)
	}
}

func TestQuantize(t *testing.T) {
	data := []float64{-9, -2.6, -0.4, 0, 0.4, 2.6, 9}
	Quantize(data, 3) // range [-4, 3]
	want := []float64{-4, -3, 0, 0, 0, 3, 3}
	for i := range data {
		if data[i] != want[i] {
			t.Errorf("Quantize[%d] = %v, want %v", i, data[i], want[i])
		}
	}
}

func TestCostScalesColumnsAndCycles(t *testing.T) {
	l := core.Layer{IW: 14, IH: 14, KW: 3, KH: 3, IC: 256, OC: 256}
	a := core.Array{Rows: 512, Cols: 512}
	pw := core.Window{W: 4, H: 3}
	base, err := core.VW(l, a, pw)
	if err != nil {
		t.Fatal(err)
	}
	// 8-bit weights in 2-bit cells: 4 slices; 8-bit inputs, 1-bit DAC: 8
	// passes. OCt shrinks from 256 to floor(512/(2*4)) = 64 -> AC = 4.
	p := Precision{WeightBits: 8, CellBits: 2, InputBits: 8, DACBits: 1}
	m, err := Cost(l, a, pw, p)
	if err != nil {
		t.Fatal(err)
	}
	if m.OCt != 64 || m.AC != 4 {
		t.Errorf("OCt,AC = %d,%d, want 64,4", m.OCt, m.AC)
	}
	wantCycles := int64(base.NPW) * int64(base.AR) * 4 * 8
	if m.Cycles != wantCycles {
		t.Errorf("cycles = %d, want %d", m.Cycles, wantCycles)
	}
	// Full precision reproduces the base cost exactly.
	f, err := Cost(l, a, pw, Full())
	if err != nil {
		t.Fatal(err)
	}
	if f.Cycles != base.Cycles || f.OCt != base.OCt {
		t.Errorf("Full() cost differs from base: %v vs %v", f, base)
	}
	// Too many slices for the array must be infeasible.
	if _, err := Cost(l, core.Array{Rows: 512, Cols: 4},
		pw, Precision{WeightBits: 8, CellBits: 1, InputBits: 1, DACBits: 1}); !errors.Is(err, core.ErrInfeasible) {
		t.Errorf("want ErrInfeasible, got %v", err)
	}
}

func TestSearchUnderPrecision(t *testing.T) {
	l := core.Layer{IW: 14, IH: 14, KW: 3, KH: 3, IC: 256, OC: 256}
	a := core.Array{Rows: 512, Cols: 512}
	full, err := Search(l, a, Full())
	if err != nil {
		t.Fatal(err)
	}
	base, err := core.SearchVWSDK(l, a)
	if err != nil {
		t.Fatal(err)
	}
	if full.Best.Cycles != base.Best.Cycles || full.Best.PW != base.Best.PW {
		t.Errorf("Full() search differs from base: %v vs %v", full.Best, base.Best)
	}
	p := Precision{WeightBits: 8, CellBits: 2, InputBits: 8, DACBits: 2}
	sliced, err := Search(l, a, p)
	if err != nil {
		t.Fatal(err)
	}
	if sliced.Best.Cycles <= base.Best.Cycles {
		t.Errorf("sliced cycles %d should exceed base %d", sliced.Best.Cycles, base.Best.Cycles)
	}
	// The window choice may change under slicing, but never below the
	// sliced im2col bound.
	if sliced.Best.Cycles > sliced.Im2col.Cycles {
		t.Errorf("search result %d worse than its im2col %d",
			sliced.Best.Cycles, sliced.Im2col.Cycles)
	}
	if _, err := Search(l, a, Precision{}); err == nil {
		t.Error("invalid precision accepted")
	}
}

// TestMorePrecisionNeverFaster: cycles are monotone non-decreasing in both
// slice count and pass count.
func TestMorePrecisionNeverFaster(t *testing.T) {
	l := core.Layer{IW: 28, IH: 28, KW: 3, KH: 3, IC: 128, OC: 128}
	a := core.Array{Rows: 512, Cols: 512}
	prev := int64(0)
	for _, p := range []Precision{
		{WeightBits: 2, CellBits: 2, InputBits: 2, DACBits: 2},
		{WeightBits: 4, CellBits: 2, InputBits: 4, DACBits: 2},
		{WeightBits: 8, CellBits: 2, InputBits: 8, DACBits: 2},
		{WeightBits: 8, CellBits: 1, InputBits: 8, DACBits: 1},
	} {
		r, err := Search(l, a, p)
		if err != nil {
			t.Fatal(err)
		}
		if r.Best.Cycles < prev {
			t.Errorf("%+v: cycles %d dropped below %d", p, r.Best.Cycles, prev)
		}
		prev = r.Best.Cycles
	}
}
