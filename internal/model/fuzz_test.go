package model

import (
	"bytes"
	"os"
	"testing"
)

// FuzzFromJSON proves the spec parser is total: arbitrary bytes never panic,
// and every accepted spec round-trips — ToJSON re-serializes it into a
// canonical form that FromJSON accepts again and that is a fixed point of
// another ToJSON pass. Seeds include the repository's example spec plus the
// syntax corners the parser discriminates on.
func FuzzFromJSON(f *testing.F) {
	for _, example := range []string{
		"../../examples/networks/tinynet.json",
		"../../examples/networks/mobile.json", // grouped + depthwise layers
	} {
		if data, err := os.ReadFile(example); err == nil {
			f.Add(data)
		}
	}
	f.Add([]byte(`{"name": "n", "layers": [{"name": "c", "iw": 8, "ih": 8, "kw": 3, "kh": 3, "ic": 1, "oc": 1}]}`))
	f.Add([]byte(`{"name": "n", "layers": [{"name": "dw", "iw": 8, "ih": 8, "kw": 3, "kh": 3, "ic": 4, "oc": 4, "groups": 4}]}`))
	f.Add([]byte(`{"name": "n", "layers": [{"name": "g", "iw": 8, "ih": 8, "kw": 3, "kh": 3, "ic": 6, "oc": 4, "groups": 2}]}`))
	f.Add([]byte(`{"name": "n", "layers": [{"iw": 8, "ih": 8, "kw": 3, "kh": 3, "ic": 1, "oc": 1, "stride_w": 2, "pad_h": 1, "count": 3}]}`))
	f.Add([]byte(`{"name": "n", "layers": []}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		n, err := FromJSON(data)
		if err != nil {
			return
		}
		out, err := ToJSON(n)
		if err != nil {
			t.Fatalf("accepted spec failed to re-serialize: %v\ninput: %q", err, data)
		}
		back, err := FromJSON(out)
		if err != nil {
			t.Fatalf("canonical form rejected: %v\ncanonical: %s", err, out)
		}
		out2, err := ToJSON(back)
		if err != nil {
			t.Fatalf("canonical form failed to re-serialize: %v", err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("ToJSON not a fixed point:\nfirst:  %s\nsecond: %s", out, out2)
		}
	})
}
