// Package model is the CNN model zoo: the layer dimension tables the paper
// evaluates on (VGG-13 and ResNet-18, Table I), plus a few extra networks
// and a parametric generator used by examples and property tests.
//
// The paper models every convolution as a stride-1 "valid" convolution over
// the listed IFM size and counts each distinct layer shape once (DESIGN.md
// §2); the constructors here reproduce those exact tables. Networks carry
// an optional Count per layer so callers can also weight shapes by how often
// they repeat in the real architecture.
package model

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/tensor"
)

// ConvLayer is a network layer entry: the geometry plus how many times the
// shape occurs in the full architecture.
type ConvLayer struct {
	core.Layer

	// Count is the number of occurrences of this shape in the real
	// network; the paper's evaluation uses 1 per distinct shape.
	Count int
}

// Network is a named list of convolutional layers.
type Network struct {
	Name   string
	Layers []ConvLayer
}

// Validate checks every layer.
func (n Network) Validate() error {
	if len(n.Layers) == 0 {
		return fmt.Errorf("model: network %q has no layers", n.Name)
	}
	for _, l := range n.Layers {
		if err := l.Validate(); err != nil {
			return fmt.Errorf("model: network %q: %w", n.Name, err)
		}
		if l.Count < 1 {
			return fmt.Errorf("model: network %q layer %q: count %d", n.Name, l.Name, l.Count)
		}
	}
	return nil
}

// CoreLayers returns the bare core.Layer slice (one entry per distinct
// shape, ignoring Count), the form the paper's totals use.
func (n Network) CoreLayers() []core.Layer {
	out := make([]core.Layer, len(n.Layers))
	for i, l := range n.Layers {
		out[i] = l.Layer
	}
	return out
}

// TotalMACs returns the multiply-accumulate count over distinct shapes.
func (n Network) TotalMACs() int64 {
	var total int64
	for _, l := range n.Layers {
		total += l.MACs()
	}
	return total
}

func conv(name string, ifm, k, ic, oc int) ConvLayer {
	return ConvLayer{
		Layer: core.Layer{Name: name, IW: ifm, IH: ifm, KW: k, KH: k, IC: ic, OC: oc},
		Count: 1,
	}
}

func convN(name string, ifm, k, ic, oc, count int) ConvLayer {
	l := conv(name, ifm, k, ic, oc)
	l.Count = count
	return l
}

// pw is a pointwise (1×1, stride-1, no-padding) convolution, the expand and
// project layers of inverted-residual blocks.
func pw(name string, ifm, ic, oc, count int) ConvLayer {
	l := conv(name, ifm, 1, ic, oc)
	l.Count = count
	return l
}

// dw is a depthwise 3×3 "same" convolution: Groups == IC == OC == c, so each
// kernel sees exactly one channel (ICg == 1).
func dw(name string, ifm, c, stride, count int) ConvLayer {
	return ConvLayer{
		Layer: core.Layer{Name: name, IW: ifm, IH: ifm, KW: 3, KH: 3,
			IC: c, OC: c, StrideW: stride, StrideH: stride,
			PadW: 1, PadH: 1, Groups: c},
		Count: count,
	}
}

// grp is a grouped 3×3 "same" convolution with g groups (the ResNeXt
// cardinality dimension).
func grp(name string, ifm, c, g, stride, count int) ConvLayer {
	return ConvLayer{
		Layer: core.Layer{Name: name, IW: ifm, IH: ifm, KW: 3, KH: 3,
			IC: c, OC: c, StrideW: stride, StrideH: stride,
			PadW: 1, PadH: 1, Groups: g},
		Count: count,
	}
}

// VGG13 returns the ten conv layers of VGG-13 exactly as the paper's
// Table I lists them.
func VGG13() Network {
	return Network{
		Name: "VGG-13",
		Layers: []ConvLayer{
			conv("conv1", 224, 3, 3, 64),
			conv("conv2", 224, 3, 64, 64),
			conv("conv3", 112, 3, 64, 128),
			conv("conv4", 112, 3, 128, 128),
			conv("conv5", 56, 3, 128, 256),
			conv("conv6", 56, 3, 256, 256),
			conv("conv7", 28, 3, 256, 512),
			conv("conv8", 28, 3, 512, 512),
			conv("conv9", 14, 3, 512, 512),
			conv("conv10", 14, 3, 512, 512),
		},
	}
}

// ResNet18 returns the five distinct conv shapes of ResNet-18 exactly as the
// paper's Table I lists them (one entry per shape). Count records how often
// each 3x3 shape appears in the real architecture's residual blocks.
func ResNet18() Network {
	return Network{
		Name: "ResNet-18",
		Layers: []ConvLayer{
			conv("conv1", 112, 7, 3, 64),
			convN("conv2", 56, 3, 64, 64, 4),
			convN("conv3", 28, 3, 128, 128, 4),
			convN("conv4", 14, 3, 256, 256, 4),
			convN("conv5", 7, 3, 512, 512, 4),
		},
	}
}

// VGG16 returns the thirteen conv layers of VGG-16 in the same convention
// (extra network beyond the paper's evaluation, for the examples).
func VGG16() Network {
	return Network{
		Name: "VGG-16",
		Layers: []ConvLayer{
			conv("conv1_1", 224, 3, 3, 64),
			conv("conv1_2", 224, 3, 64, 64),
			conv("conv2_1", 112, 3, 64, 128),
			conv("conv2_2", 112, 3, 128, 128),
			conv("conv3_1", 56, 3, 128, 256),
			convN("conv3_2", 56, 3, 256, 256, 2),
			conv("conv4_1", 28, 3, 256, 512),
			convN("conv4_2", 28, 3, 512, 512, 2),
			convN("conv5", 14, 3, 512, 512, 3),
		},
	}
}

// AlexNet returns the five conv layers of AlexNet (extra network; conv1 is
// the classic 11x11 stride-4 layer, exercising the cost model's stride
// generalization).
func AlexNet() Network {
	return Network{
		Name: "AlexNet",
		Layers: []ConvLayer{
			{Layer: core.Layer{Name: "conv1", IW: 227, IH: 227, KW: 11, KH: 11,
				IC: 3, OC: 96, StrideW: 4, StrideH: 4}, Count: 1},
			{Layer: core.Layer{Name: "conv2", IW: 27, IH: 27, KW: 5, KH: 5,
				IC: 96, OC: 256, PadW: 2, PadH: 2}, Count: 1},
			conv("conv3", 13, 3, 256, 384),
			conv("conv4", 13, 3, 384, 384),
			conv("conv5", 13, 3, 384, 256),
		},
	}
}

// MobileNetV2 returns the convolutional layers of MobileNet-V2 (Sandler et
// al., CVPR'18) at the 224×224 input resolution: the stem, the seven
// inverted-residual stages (t, c, n, s) = (1,16,1,1), (6,24,2,2), (6,32,3,2),
// (6,64,4,2), (6,96,3,1), (6,160,3,2), (6,320,1,1), and the final 1×1 —
// one entry per distinct shape with Count recording repetitions, in the same
// convention as the Table I networks. Every block is a 1×1 expand, a
// depthwise 3×3 (Groups == channels, stride on the stage's first block) and
// a 1×1 project, so the network exercises the grouped cost model end to end.
func MobileNetV2() Network {
	return Network{
		Name: "MobileNet-V2",
		Layers: []ConvLayer{
			{Layer: core.Layer{Name: "conv1", IW: 224, IH: 224, KW: 3, KH: 3,
				IC: 3, OC: 32, StrideW: 2, StrideH: 2, PadW: 1, PadH: 1}, Count: 1},
			// Stage 1 (t=1): no expand, depthwise straight on the stem output.
			dw("dw1", 112, 32, 1, 1),
			pw("pj1", 112, 32, 16, 1),
			// Stage 2 (t=6, c=24, n=2, s=2).
			pw("ex2_1", 112, 16, 96, 1),
			dw("dw2_1", 112, 96, 2, 1),
			pw("pj2_1", 56, 96, 24, 1),
			pw("ex24_144", 56, 24, 144, 2), // stage-2 block 2 + stage-3 block 1
			dw("dw144", 56, 144, 1, 1),
			pw("pj144_24", 56, 144, 24, 1),
			// Stage 3 (t=6, c=32, n=3, s=2).
			dw("dw144_s2", 56, 144, 2, 1),
			pw("pj144_32", 28, 144, 32, 1),
			pw("ex32_192", 28, 32, 192, 3), // stage-3 blocks 2-3 + stage-4 block 1
			dw("dw192", 28, 192, 1, 2),
			pw("pj192_32", 28, 192, 32, 2),
			// Stage 4 (t=6, c=64, n=4, s=2).
			dw("dw192_s2", 28, 192, 2, 1),
			pw("pj192_64", 14, 192, 64, 1),
			pw("ex64_384", 14, 64, 384, 4), // stage-4 blocks 2-4 + stage-5 block 1
			dw("dw384", 14, 384, 1, 4),
			pw("pj384_64", 14, 384, 64, 3),
			// Stage 5 (t=6, c=96, n=3, s=1).
			pw("pj384_96", 14, 384, 96, 1),
			pw("ex96_576", 14, 96, 576, 3), // stage-5 blocks 2-3 + stage-6 block 1
			dw("dw576", 14, 576, 1, 2),
			pw("pj576_96", 14, 576, 96, 2),
			// Stage 6 (t=6, c=160, n=3, s=2).
			dw("dw576_s2", 14, 576, 2, 1),
			pw("pj576_160", 7, 576, 160, 1),
			pw("ex160_960", 7, 160, 960, 3), // stage-6 blocks 2-3 + stage 7
			dw("dw960", 7, 960, 1, 3),
			pw("pj960_160", 7, 960, 160, 2),
			// Stage 7 (t=6, c=320) and the final 1×1.
			pw("pj960_320", 7, 960, 320, 1),
			pw("conv_last", 7, 320, 1280, 1),
		},
	}
}

// ResNeXt50 returns the convolutional layers of ResNeXt-50 (32×4d) (Xie et
// al., CVPR'17): the 7×7 stem and four bottleneck stages of [3, 4, 6, 3]
// blocks, each block a 1×1 reduce, a grouped 3×3 with cardinality 32 (stride
// on the first block of stages 2-4), and a 1×1 expand — one entry per
// distinct shape, Count per repetition.
func ResNeXt50() Network {
	return Network{
		Name: "ResNeXt-50",
		Layers: []ConvLayer{
			{Layer: core.Layer{Name: "conv1", IW: 224, IH: 224, KW: 7, KH: 7,
				IC: 3, OC: 64, StrideW: 2, StrideH: 2, PadW: 3, PadH: 3}, Count: 1},
			// Stage 1: width 128, output 256, 3 blocks at 56×56.
			pw("s1_rd1", 56, 64, 128, 1),
			pw("s1_rd", 56, 256, 128, 2),
			grp("s1_g", 56, 128, 32, 1, 3),
			pw("s1_ex", 56, 128, 256, 3),
			// Stage 2: width 256, output 512, 4 blocks at 28×28 (stride in
			// the first block's grouped conv).
			pw("s2_rd1", 56, 256, 256, 1),
			grp("s2_g_s2", 56, 256, 32, 2, 1),
			pw("s2_rd", 28, 512, 256, 3),
			grp("s2_g", 28, 256, 32, 1, 3),
			pw("s2_ex", 28, 256, 512, 4),
			// Stage 3: width 512, output 1024, 6 blocks at 14×14.
			pw("s3_rd1", 28, 512, 512, 1),
			grp("s3_g_s2", 28, 512, 32, 2, 1),
			pw("s3_rd", 14, 1024, 512, 5),
			grp("s3_g", 14, 512, 32, 1, 5),
			pw("s3_ex", 14, 512, 1024, 6),
			// Stage 4: width 1024, output 2048, 3 blocks at 7×7.
			pw("s4_rd1", 14, 1024, 1024, 1),
			grp("s4_g_s2", 14, 1024, 32, 2, 1),
			pw("s4_rd", 7, 2048, 1024, 2),
			grp("s4_g", 7, 1024, 32, 1, 2),
			pw("s4_ex", 7, 1024, 2048, 3),
		},
	}
}

// All returns every predefined network.
func All() []Network {
	return []Network{VGG13(), ResNet18(), VGG16(), AlexNet(), MobileNetV2(), ResNeXt50()}
}

// ByName returns the predefined network with the given name
// (case-sensitive, e.g. "VGG-13"), or an error listing the options.
func ByName(name string) (Network, error) {
	for _, n := range All() {
		if n.Name == name {
			return n, nil
		}
	}
	names := make([]string, 0, 6)
	for _, n := range All() {
		names = append(names, n.Name)
	}
	return Network{}, fmt.Errorf("model: unknown network %q (have %v)", name, names)
}

// Random returns a deterministic pseudo-random network of n small layers for
// property tests and fuzz-style examples. Roughly a quarter of the layers
// are grouped (channel counts drawn as multiples of the group count) and
// some of those depthwise (Groups == IC, ICg == 1), so downstream property
// tests exercise the grouped paths without hand-written cases.
func Random(seed uint64, n int) Network {
	if n < 1 {
		n = 1
	}
	rng := tensor.NewRNG(seed)
	net := Network{Name: fmt.Sprintf("random-%d", seed)}
	for i := 0; i < n; i++ {
		k := 1 + rng.IntN(3)
		ifm := k + 4 + rng.IntN(24)
		l := core.Layer{
			Name: fmt.Sprintf("conv%d", i+1),
			IW:   ifm, IH: ifm, KW: k, KH: k,
			IC: 1 + rng.IntN(64), OC: 1 + rng.IntN(64),
		}
		switch rng.IntN(8) {
		case 0: // depthwise: one channel per group
			c := 1 + rng.IntN(64)
			l.IC, l.OC, l.Groups = c, c, c
		case 1: // grouped: channels are multiples of the group count
			g := 2 + rng.IntN(7)
			l.IC = g * (1 + rng.IntN(8))
			l.OC = g * (1 + rng.IntN(8))
			l.Groups = g
		}
		net.Layers = append(net.Layers, ConvLayer{Layer: l, Count: 1})
	}
	return net
}
