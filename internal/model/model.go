// Package model is the CNN model zoo: the layer dimension tables the paper
// evaluates on (VGG-13 and ResNet-18, Table I), plus a few extra networks
// and a parametric generator used by examples and property tests.
//
// The paper models every convolution as a stride-1 "valid" convolution over
// the listed IFM size and counts each distinct layer shape once (DESIGN.md
// §2); the constructors here reproduce those exact tables. Networks carry
// an optional Count per layer so callers can also weight shapes by how often
// they repeat in the real architecture.
package model

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/tensor"
)

// ConvLayer is a network layer entry: the geometry plus how many times the
// shape occurs in the full architecture.
type ConvLayer struct {
	core.Layer

	// Count is the number of occurrences of this shape in the real
	// network; the paper's evaluation uses 1 per distinct shape.
	Count int
}

// Network is a named list of convolutional layers.
type Network struct {
	Name   string
	Layers []ConvLayer
}

// Validate checks every layer.
func (n Network) Validate() error {
	if len(n.Layers) == 0 {
		return fmt.Errorf("model: network %q has no layers", n.Name)
	}
	for _, l := range n.Layers {
		if err := l.Validate(); err != nil {
			return fmt.Errorf("model: network %q: %w", n.Name, err)
		}
		if l.Count < 1 {
			return fmt.Errorf("model: network %q layer %q: count %d", n.Name, l.Name, l.Count)
		}
	}
	return nil
}

// CoreLayers returns the bare core.Layer slice (one entry per distinct
// shape, ignoring Count), the form the paper's totals use.
func (n Network) CoreLayers() []core.Layer {
	out := make([]core.Layer, len(n.Layers))
	for i, l := range n.Layers {
		out[i] = l.Layer
	}
	return out
}

// TotalMACs returns the multiply-accumulate count over distinct shapes.
func (n Network) TotalMACs() int64 {
	var total int64
	for _, l := range n.Layers {
		total += l.MACs()
	}
	return total
}

func conv(name string, ifm, k, ic, oc int) ConvLayer {
	return ConvLayer{
		Layer: core.Layer{Name: name, IW: ifm, IH: ifm, KW: k, KH: k, IC: ic, OC: oc},
		Count: 1,
	}
}

func convN(name string, ifm, k, ic, oc, count int) ConvLayer {
	l := conv(name, ifm, k, ic, oc)
	l.Count = count
	return l
}

// VGG13 returns the ten conv layers of VGG-13 exactly as the paper's
// Table I lists them.
func VGG13() Network {
	return Network{
		Name: "VGG-13",
		Layers: []ConvLayer{
			conv("conv1", 224, 3, 3, 64),
			conv("conv2", 224, 3, 64, 64),
			conv("conv3", 112, 3, 64, 128),
			conv("conv4", 112, 3, 128, 128),
			conv("conv5", 56, 3, 128, 256),
			conv("conv6", 56, 3, 256, 256),
			conv("conv7", 28, 3, 256, 512),
			conv("conv8", 28, 3, 512, 512),
			conv("conv9", 14, 3, 512, 512),
			conv("conv10", 14, 3, 512, 512),
		},
	}
}

// ResNet18 returns the five distinct conv shapes of ResNet-18 exactly as the
// paper's Table I lists them (one entry per shape). Count records how often
// each 3x3 shape appears in the real architecture's residual blocks.
func ResNet18() Network {
	return Network{
		Name: "ResNet-18",
		Layers: []ConvLayer{
			conv("conv1", 112, 7, 3, 64),
			convN("conv2", 56, 3, 64, 64, 4),
			convN("conv3", 28, 3, 128, 128, 4),
			convN("conv4", 14, 3, 256, 256, 4),
			convN("conv5", 7, 3, 512, 512, 4),
		},
	}
}

// VGG16 returns the thirteen conv layers of VGG-16 in the same convention
// (extra network beyond the paper's evaluation, for the examples).
func VGG16() Network {
	return Network{
		Name: "VGG-16",
		Layers: []ConvLayer{
			conv("conv1_1", 224, 3, 3, 64),
			conv("conv1_2", 224, 3, 64, 64),
			conv("conv2_1", 112, 3, 64, 128),
			conv("conv2_2", 112, 3, 128, 128),
			conv("conv3_1", 56, 3, 128, 256),
			convN("conv3_2", 56, 3, 256, 256, 2),
			conv("conv4_1", 28, 3, 256, 512),
			convN("conv4_2", 28, 3, 512, 512, 2),
			convN("conv5", 14, 3, 512, 512, 3),
		},
	}
}

// AlexNet returns the five conv layers of AlexNet (extra network; conv1 is
// the classic 11x11 stride-4 layer, exercising the cost model's stride
// generalization).
func AlexNet() Network {
	return Network{
		Name: "AlexNet",
		Layers: []ConvLayer{
			{Layer: core.Layer{Name: "conv1", IW: 227, IH: 227, KW: 11, KH: 11,
				IC: 3, OC: 96, StrideW: 4, StrideH: 4}, Count: 1},
			{Layer: core.Layer{Name: "conv2", IW: 27, IH: 27, KW: 5, KH: 5,
				IC: 96, OC: 256, PadW: 2, PadH: 2}, Count: 1},
			conv("conv3", 13, 3, 256, 384),
			conv("conv4", 13, 3, 384, 384),
			conv("conv5", 13, 3, 384, 256),
		},
	}
}

// All returns every predefined network.
func All() []Network {
	return []Network{VGG13(), ResNet18(), VGG16(), AlexNet()}
}

// ByName returns the predefined network with the given name
// (case-sensitive, e.g. "VGG-13"), or an error listing the options.
func ByName(name string) (Network, error) {
	for _, n := range All() {
		if n.Name == name {
			return n, nil
		}
	}
	names := make([]string, 0, 4)
	for _, n := range All() {
		names = append(names, n.Name)
	}
	return Network{}, fmt.Errorf("model: unknown network %q (have %v)", name, names)
}

// Random returns a deterministic pseudo-random network of n small layers for
// property tests and fuzz-style examples.
func Random(seed uint64, n int) Network {
	if n < 1 {
		n = 1
	}
	rng := tensor.NewRNG(seed)
	net := Network{Name: fmt.Sprintf("random-%d", seed)}
	for i := 0; i < n; i++ {
		k := 1 + rng.IntN(3)
		ifm := k + 4 + rng.IntN(24)
		net.Layers = append(net.Layers, ConvLayer{
			Layer: core.Layer{
				Name: fmt.Sprintf("conv%d", i+1),
				IW:   ifm, IH: ifm, KW: k, KH: k,
				IC: 1 + rng.IntN(64), OC: 1 + rng.IntN(64),
			},
			Count: 1,
		})
	}
	return net
}
