package model

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestAllNetworksValidate(t *testing.T) {
	for _, n := range All() {
		if err := n.Validate(); err != nil {
			t.Errorf("%s: %v", n.Name, err)
		}
	}
}

func TestVGG13MatchesTableI(t *testing.T) {
	n := VGG13()
	if len(n.Layers) != 10 {
		t.Fatalf("VGG-13 has %d layers, want 10", len(n.Layers))
	}
	first := n.Layers[0]
	if first.IW != 224 || first.KW != 3 || first.IC != 3 || first.OC != 64 {
		t.Errorf("conv1 = %v", first.Layer)
	}
	last := n.Layers[9]
	if last.IW != 14 || last.IC != 512 || last.OC != 512 {
		t.Errorf("conv10 = %v", last.Layer)
	}
}

func TestResNet18MatchesTableI(t *testing.T) {
	n := ResNet18()
	if len(n.Layers) != 5 {
		t.Fatalf("ResNet-18 has %d distinct shapes, want 5", len(n.Layers))
	}
	if n.Layers[0].KW != 7 || n.Layers[0].IW != 112 {
		t.Errorf("conv1 = %v", n.Layers[0].Layer)
	}
	if n.Layers[4].IW != 7 || n.Layers[4].IC != 512 {
		t.Errorf("conv5 = %v", n.Layers[4].Layer)
	}
	for _, l := range n.Layers[1:] {
		if l.Count != 4 {
			t.Errorf("%s count = %d, want 4", l.Name, l.Count)
		}
	}
}

func TestCoreLayers(t *testing.T) {
	n := ResNet18()
	ls := n.CoreLayers()
	if len(ls) != len(n.Layers) {
		t.Fatal("CoreLayers length mismatch")
	}
	for i := range ls {
		if ls[i] != n.Layers[i].Layer {
			t.Fatalf("layer %d differs", i)
		}
	}
}

func TestByName(t *testing.T) {
	n, err := ByName("VGG-13")
	if err != nil || n.Name != "VGG-13" {
		t.Fatalf("ByName(VGG-13) = %v, %v", n.Name, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	} else if !strings.Contains(err.Error(), "VGG-13") {
		t.Errorf("error should list options: %v", err)
	}
}

func TestAlexNetStride(t *testing.T) {
	n := AlexNet()
	c1 := n.Layers[0].Layer.Normalized()
	if c1.StrideW != 4 {
		t.Fatalf("conv1 stride = %d, want 4", c1.StrideW)
	}
	if got := c1.OutW(); got != 55 {
		t.Fatalf("conv1 OutW = %d, want 55", got)
	}
	c2 := n.Layers[1].Layer
	if got := c2.OutW(); got != 27 {
		t.Fatalf("conv2 OutW = %d, want 27 (padded same conv)", got)
	}
}

func TestTotalMACs(t *testing.T) {
	// ResNet-18 distinct shapes: conv1 contributes 106²·147·64 MACs.
	n := Network{Name: "one", Layers: []ConvLayer{
		{Layer: core.Layer{Name: "c", IW: 112, IH: 112, KW: 7, KH: 7, IC: 3, OC: 64}, Count: 1},
	}}
	want := int64(106*106) * 147 * 64
	if got := n.TotalMACs(); got != want {
		t.Fatalf("TotalMACs = %d, want %d", got, want)
	}
}

func TestValidateRejects(t *testing.T) {
	if err := (Network{Name: "empty"}).Validate(); err == nil {
		t.Error("empty network accepted")
	}
	bad := Network{Name: "bad", Layers: []ConvLayer{
		{Layer: core.Layer{Name: "c", IW: 0, IH: 1, KW: 1, KH: 1, IC: 1, OC: 1}, Count: 1},
	}}
	if err := bad.Validate(); err == nil {
		t.Error("invalid layer accepted")
	}
	zeroCount := Network{Name: "zc", Layers: []ConvLayer{
		{Layer: core.Layer{Name: "c", IW: 4, IH: 4, KW: 3, KH: 3, IC: 1, OC: 1}, Count: 0},
	}}
	if err := zeroCount.Validate(); err == nil {
		t.Error("zero count accepted")
	}
}

func TestRandomNetworkDeterministic(t *testing.T) {
	a := Random(5, 6)
	b := Random(5, 6)
	if len(a.Layers) != 6 {
		t.Fatalf("layers = %d, want 6", len(a.Layers))
	}
	for i := range a.Layers {
		if a.Layers[i] != b.Layers[i] {
			t.Fatal("Random not deterministic")
		}
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("random network invalid: %v", err)
	}
	if got := Random(1, 0); len(got.Layers) != 1 {
		t.Fatal("Random(n<1) should produce one layer")
	}
}

// TestPaperTotalsViaModel re-derives the Table I totals through the model
// zoo, tying the zoo's dimension tables to the golden numbers.
func TestPaperTotalsViaModel(t *testing.T) {
	a := core.Array{Rows: 512, Cols: 512}
	totals := func(n Network) (im, sdk, vw int64) {
		for _, l := range n.CoreLayers() {
			m, err := core.Im2col(l, a)
			if err != nil {
				t.Fatal(err)
			}
			im += m.Cycles
			rs, err := core.SearchSDK(l, a)
			if err != nil {
				t.Fatal(err)
			}
			sdk += rs.Best.Cycles
			rv, err := core.SearchVWSDK(l, a)
			if err != nil {
				t.Fatal(err)
			}
			vw += rv.Best.Cycles
		}
		return
	}
	im, sdk, vw := totals(VGG13())
	if im != 243736 || sdk != 114697 || vw != 77102 {
		t.Errorf("VGG-13 totals = %d/%d/%d, want 243736/114697/77102", im, sdk, vw)
	}
	im, sdk, vw = totals(ResNet18())
	if im != 20041 || sdk != 7240 || vw != 4294 {
		t.Errorf("ResNet-18 totals = %d/%d/%d, want 20041/7240/4294", im, sdk, vw)
	}
}

// TestGroupedZooNetworks pins the structure of the grouped zoo entries:
// MobileNet-V2's inverted residuals alternate pointwise and depthwise
// (G == IC) layers, and ResNeXt-50's bottlenecks use cardinality-32 3x3
// convolutions. Both resolve by name.
func TestGroupedZooNetworks(t *testing.T) {
	mb, err := ByName("MobileNet-V2")
	if err != nil {
		t.Fatal(err)
	}
	depthwise, pointwise := 0, 0
	for _, cl := range mb.Layers {
		l := cl.Layer
		if l.NumGroups() > 1 {
			if l.Groups != l.IC || l.IC != l.OC || l.KW != 3 || l.KH != 3 {
				t.Errorf("MobileNet-V2 %s: grouped layer is not depthwise 3x3: %v", l.Name, l)
			}
			depthwise += cl.Count
		} else if l.KW == 1 && l.KH == 1 {
			pointwise += cl.Count
		}
	}
	if depthwise < 10 || pointwise < 10 {
		t.Errorf("MobileNet-V2: %d depthwise / %d pointwise layers, want >=10 of each",
			depthwise, pointwise)
	}

	rx, err := ByName("ResNeXt-50")
	if err != nil {
		t.Fatal(err)
	}
	grouped := 0
	for _, cl := range rx.Layers {
		l := cl.Layer
		if l.NumGroups() > 1 {
			if l.Groups != 32 || l.KW != 3 || l.KH != 3 {
				t.Errorf("ResNeXt-50 %s: grouped layer is not cardinality-32 3x3: %v", l.Name, l)
			}
			grouped += cl.Count
		}
	}
	if grouped != 16 {
		t.Errorf("ResNeXt-50: %d grouped 3x3 layers, want 16 (block counts 3+4+6+3)", grouped)
	}
}

// TestRandomGeneratesGroupedLayers: the random generator emits depthwise and
// grouped layers often enough that downstream fuzzing exercises them.
func TestRandomGeneratesGroupedLayers(t *testing.T) {
	depthwise, grouped := 0, 0
	for seed := uint64(0); seed < 40; seed++ {
		n := Random(seed, 8)
		if err := n.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, cl := range n.Layers {
			l := cl.Layer
			switch {
			case l.NumGroups() > 1 && l.Groups == l.IC:
				depthwise++
			case l.NumGroups() > 1:
				grouped++
			}
		}
	}
	if depthwise == 0 || grouped == 0 {
		t.Fatalf("40 random networks produced %d depthwise and %d grouped layers; generator lost group coverage", depthwise, grouped)
	}
}
