package model

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/core"
)

// The JSON network spec format lets arbitrary user CNNs — not just the
// predefined zoo — be compiled. A spec is an object with a "name" and a
// "layers" array; each layer gives the IFM size, kernel, channel counts and
// optionally stride, padding and an occurrence count:
//
//	{
//	  "name": "TinyNet",
//	  "layers": [
//	    {"name": "conv1", "iw": 32, "ih": 32, "kw": 3, "kh": 3,
//	     "ic": 3, "oc": 16, "stride": 1, "pad": 1},
//	    {"name": "conv2", "iw": 16, "ih": 16, "kw": 3, "kh": 3,
//	     "ic": 16, "oc": 32, "count": 2}
//	  ]
//	}
//
// "stride" and "pad" set both axes at once; "stride_w"/"stride_h" and
// "pad_w"/"pad_h" set them individually and win over the shorthand. Omitted
// stride defaults to 1, omitted padding to 0, omitted count to 1. "groups"
// declares a grouped convolution (depthwise when it equals "ic"); it
// defaults to 1 (dense) and "ic"/"oc" must both be divisible by it. Unknown
// fields are rejected so typos fail loudly.

// jsonNetwork is the on-disk network spec.
type jsonNetwork struct {
	Name   string      `json:"name"`
	Layers []jsonLayer `json:"layers"`
}

// jsonLayer is one layer entry of the spec. The per-axis fields are
// pointers so an explicit 0 (e.g. "pad_h": 0 overriding "pad": 1) is
// distinguishable from an omitted field.
type jsonLayer struct {
	Name    string `json:"name"`
	IW      int    `json:"iw"`
	IH      int    `json:"ih"`
	KW      int    `json:"kw"`
	KH      int    `json:"kh"`
	IC      int    `json:"ic"`
	OC      int    `json:"oc"`
	Stride  int    `json:"stride,omitempty"`
	StrideW *int   `json:"stride_w,omitempty"`
	StrideH *int   `json:"stride_h,omitempty"`
	Pad     int    `json:"pad,omitempty"`
	PadW    *int   `json:"pad_w,omitempty"`
	PadH    *int   `json:"pad_h,omitempty"`
	Groups  int    `json:"groups,omitempty"`
	Count   int    `json:"count,omitempty"`
}

// axis returns the per-axis override when present, the shorthand otherwise.
func axis(override *int, shorthand int) int {
	if override != nil {
		return *override
	}
	return shorthand
}

// FromJSON parses a network spec (see the format above) and validates it.
// Beyond the per-layer geometry checks, the spec itself must be well formed:
// at least one layer, no duplicate (non-empty) layer names, and no negative
// occurrence counts.
func FromJSON(data []byte) (Network, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var spec jsonNetwork
	if err := dec.Decode(&spec); err != nil {
		return Network{}, fmt.Errorf("model: parse network spec: %w", err)
	}
	if len(spec.Layers) == 0 {
		return Network{}, fmt.Errorf("model: network spec %q has no layers", spec.Name)
	}
	seen := make(map[string]bool, len(spec.Layers))
	n := Network{Name: spec.Name}
	for _, jl := range spec.Layers {
		if jl.Name != "" && seen[jl.Name] {
			return Network{}, fmt.Errorf("model: network spec %q: duplicate layer name %q", spec.Name, jl.Name)
		}
		seen[jl.Name] = true
		if jl.Count < 0 {
			return Network{}, fmt.Errorf("model: network spec %q: layer %q: negative count %d", spec.Name, jl.Name, jl.Count)
		}
		sw := axis(jl.StrideW, jl.Stride)
		sh := axis(jl.StrideH, jl.Stride)
		pw := axis(jl.PadW, jl.Pad)
		ph := axis(jl.PadH, jl.Pad)
		count := jl.Count
		if count == 0 {
			count = 1
		}
		n.Layers = append(n.Layers, ConvLayer{
			Layer: core.Layer{
				Name: jl.Name,
				IW:   jl.IW, IH: jl.IH,
				KW: jl.KW, KH: jl.KH,
				IC: jl.IC, OC: jl.OC,
				StrideW: sw, StrideH: sh,
				PadW: pw, PadH: ph,
				Groups: jl.Groups,
			},
			Count: count,
		})
	}
	if err := n.Validate(); err != nil {
		return Network{}, err
	}
	return n, nil
}

// FromJSONFile reads and parses a network spec file.
func FromJSONFile(path string) (Network, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Network{}, fmt.Errorf("model: read network spec: %w", err)
	}
	n, err := FromJSON(data)
	if err != nil {
		return Network{}, fmt.Errorf("model: %s: %w", path, err)
	}
	return n, nil
}

// ToJSON serializes a network as a spec FromJSON accepts, writing the
// symmetric "stride"/"pad" shorthands when both axes agree.
func ToJSON(n Network) ([]byte, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	spec := jsonNetwork{Name: n.Name}
	for _, cl := range n.Layers {
		l := cl.Layer.Normalized()
		jl := jsonLayer{
			Name: l.Name,
			IW:   l.IW, IH: l.IH,
			KW: l.KW, KH: l.KH,
			IC: l.IC, OC: l.OC,
		}
		if l.StrideW == l.StrideH {
			if l.StrideW != 1 {
				jl.Stride = l.StrideW
			}
		} else {
			sw, sh := l.StrideW, l.StrideH
			jl.StrideW, jl.StrideH = &sw, &sh
		}
		if l.PadW == l.PadH {
			jl.Pad = l.PadW
		} else {
			pw, ph := l.PadW, l.PadH
			jl.PadW, jl.PadH = &pw, &ph
		}
		// Dense layers omit "groups" entirely (whether stored as 0 or 1), so
		// specs — and everything keyed on them, like compile.Key — are
		// byte-identical to the pre-groups format.
		if l.NumGroups() > 1 {
			jl.Groups = l.NumGroups()
		}
		if cl.Count != 1 {
			jl.Count = cl.Count
		}
		spec.Layers = append(spec.Layers, jl)
	}
	data, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("model: marshal network spec: %w", err)
	}
	return append(data, '\n'), nil
}

// ResolveSpec resolves a network reference as it appears in an API request:
// a JSON string names a predefined zoo network ("VGG-13"), a JSON object is
// an inline spec in the FromJSON format. Anything else is an error.
func ResolveSpec(raw []byte) (Network, error) {
	trimmed := bytes.TrimSpace(raw)
	if len(trimmed) == 0 {
		return Network{}, fmt.Errorf("model: empty network reference")
	}
	switch trimmed[0] {
	case '"':
		var name string
		if err := json.Unmarshal(trimmed, &name); err != nil {
			return Network{}, fmt.Errorf("model: parse network name: %w", err)
		}
		return ByName(name)
	case '{':
		return FromJSON(trimmed)
	default:
		return Network{}, fmt.Errorf("model: network reference must be a zoo name string or an inline spec object")
	}
}

// Single wraps one layer as a one-layer network (count 1), the form the
// compile pipeline consumes.
func Single(l core.Layer) Network {
	name := l.Name
	if name == "" {
		name = "layer"
	}
	return Network{Name: name, Layers: []ConvLayer{{Layer: l, Count: 1}}}
}
