package model

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestFromJSONSpec(t *testing.T) {
	spec := `{
	  "name": "TinyNet",
	  "layers": [
	    {"name": "conv1", "iw": 32, "ih": 32, "kw": 3, "kh": 3,
	     "ic": 3, "oc": 16, "stride": 1, "pad": 1},
	    {"name": "conv2", "iw": 16, "ih": 16, "kw": 3, "kh": 3,
	     "ic": 16, "oc": 32, "count": 2},
	    {"name": "conv3", "iw": 8, "ih": 8, "kw": 5, "kh": 3,
	     "ic": 32, "oc": 64, "stride_w": 2, "stride_h": 1, "pad_w": 2}
	  ]
	}`
	n, err := FromJSON([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "TinyNet" || len(n.Layers) != 3 {
		t.Fatalf("parsed %q with %d layers", n.Name, len(n.Layers))
	}
	c1 := n.Layers[0]
	if c1.Layer.PadW != 1 || c1.Layer.PadH != 1 || c1.Layer.StrideW != 1 || c1.Count != 1 {
		t.Errorf("conv1 shorthand not applied: %+v", c1)
	}
	if n.Layers[1].Count != 2 {
		t.Errorf("conv2 count = %d, want 2", n.Layers[1].Count)
	}
	c3 := n.Layers[2].Layer
	if c3.StrideW != 2 || c3.StrideH != 1 || c3.PadW != 2 || c3.PadH != 0 || c3.KW != 5 {
		t.Errorf("conv3 per-axis fields not applied: %+v", c3)
	}
}

// TestFromJSONExplicitZeroOverridesShorthand pins that a per-axis 0 beats
// the symmetric shorthand (an omitted field falls back to it).
func TestFromJSONExplicitZeroOverridesShorthand(t *testing.T) {
	spec := `{"name": "x", "layers": [
	  {"name": "c", "iw": 16, "ih": 16, "kw": 3, "kh": 3, "ic": 1, "oc": 1,
	   "pad": 1, "pad_h": 0, "stride": 2, "stride_h": 1}
	]}`
	n, err := FromJSON([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	l := n.Layers[0].Layer
	if l.PadW != 1 || l.PadH != 0 {
		t.Errorf("pad = %dx%d, want 1x0 (explicit pad_h: 0 must win)", l.PadW, l.PadH)
	}
	if l.StrideW != 2 || l.StrideH != 1 {
		t.Errorf("stride = %dx%d, want 2x1", l.StrideW, l.StrideH)
	}
}

func TestFromJSONErrors(t *testing.T) {
	// Each rejected spec must fail with an error naming the actual problem,
	// so API clients see "duplicate layer name" rather than a generic
	// validation failure.
	cases := []struct {
		name    string
		spec    string
		wantErr string
	}{
		{"malformed", `{"name": "x", "layers": [`, "parse network spec"},
		{"unknown field", `{"name": "x", "layers": [{"name": "c", "iw": 8, "ih": 8, "kw": 3, "kh": 3, "ic": 1, "oc": 1, "bogus": 1}]}`, "bogus"},
		{"layers omitted", `{"name": "x"}`, "no layers"},
		{"layers empty", `{"name": "x", "layers": []}`, "no layers"},
		{"invalid layer", `{"name": "x", "layers": [{"name": "c", "iw": 8, "ih": 8, "kw": 9, "kh": 9, "ic": 1, "oc": 1}]}`, "kernel"},
		{"negative count", `{"name": "x", "layers": [{"name": "c", "iw": 8, "ih": 8, "kw": 3, "kh": 3, "ic": 1, "oc": 1, "count": -1}]}`, "negative count -1"},
		{"duplicate name", `{"name": "x", "layers": [
			{"name": "c", "iw": 8, "ih": 8, "kw": 3, "kh": 3, "ic": 1, "oc": 1},
			{"name": "c", "iw": 16, "ih": 16, "kw": 3, "kh": 3, "ic": 1, "oc": 1}]}`, `duplicate layer name "c"`},
		{"negative groups", `{"name": "x", "layers": [{"name": "c", "iw": 8, "ih": 8, "kw": 3, "kh": 3, "ic": 4, "oc": 4, "groups": -2}]}`, "negative groups -2"},
		{"ic not divisible", `{"name": "x", "layers": [{"name": "c", "iw": 8, "ih": 8, "kw": 3, "kh": 3, "ic": 5, "oc": 6, "groups": 3}]}`, "input channels 5 not divisible by groups 3"},
		{"oc not divisible", `{"name": "x", "layers": [{"name": "c", "iw": 8, "ih": 8, "kw": 3, "kh": 3, "ic": 6, "oc": 4, "groups": 3}]}`, "output channels 4 not divisible by groups 3"},
	}
	for _, tc := range cases {
		_, err := FromJSON([]byte(tc.spec))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}

	// Two anonymous layers are not a duplicate: only non-empty names must be
	// unique.
	anon := `{"name": "x", "layers": [
	  {"iw": 8, "ih": 8, "kw": 3, "kh": 3, "ic": 1, "oc": 1},
	  {"iw": 16, "ih": 16, "kw": 3, "kh": 3, "ic": 1, "oc": 1}]}`
	if _, err := FromJSON([]byte(anon)); err != nil {
		t.Errorf("anonymous layers rejected: %v", err)
	}
}

// TestFromJSONGroups: "groups" parses into the layer, depthwise specs work,
// and ToJSON writes the field back for grouped layers while omitting it for
// dense ones (keeping pre-groups specs byte-stable).
func TestFromJSONGroups(t *testing.T) {
	spec := `{"name": "g", "layers": [
	  {"name": "dw", "iw": 16, "ih": 16, "kw": 3, "kh": 3, "ic": 8, "oc": 8, "pad": 1, "groups": 8},
	  {"name": "dense", "iw": 16, "ih": 16, "kw": 1, "kh": 1, "ic": 8, "oc": 4}
	]}`
	n, err := FromJSON([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	if g := n.Layers[0].Layer.NumGroups(); g != 8 {
		t.Fatalf("dw groups = %d, want 8", g)
	}
	if g := n.Layers[1].Layer.NumGroups(); g != 1 {
		t.Fatalf("dense groups = %d, want 1", g)
	}
	out, err := ToJSON(n)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `"groups": 8`) {
		t.Errorf("grouped layer lost its groups field:\n%s", out)
	}
	if strings.Count(string(out), "groups") != 1 {
		t.Errorf("dense layer gained a groups field:\n%s", out)
	}
}

// TestResolveSpec covers the API request network reference: a JSON string is
// a zoo lookup, an object is an inline spec, anything else errors.
func TestResolveSpec(t *testing.T) {
	n, err := ResolveSpec([]byte(`"VGG-13"`))
	if err != nil || n.Name != "VGG-13" {
		t.Fatalf("zoo name: %v %q", err, n.Name)
	}
	n, err = ResolveSpec([]byte(` {"name": "t", "layers": [{"name": "c", "iw": 8, "ih": 8, "kw": 3, "kh": 3, "ic": 1, "oc": 1}]}`))
	if err != nil || n.Name != "t" {
		t.Fatalf("inline spec: %v %q", err, n.Name)
	}
	for name, raw := range map[string]string{
		"empty":        ``,
		"blank":        `   `,
		"number":       `42`,
		"array":        `["VGG-13"]`,
		"unknown zoo":  `"LeNet-5"`,
		"bad name str": `"unterminated`,
		"invalid spec": `{"name": "t", "layers": []}`,
	} {
		if _, err := ResolveSpec([]byte(raw)); err == nil {
			t.Errorf("%s: accepted %q", name, raw)
		}
	}
}

// TestToJSONRoundTripsZoo checks every predefined network survives
// ToJSON → FromJSON with identical (normalized) geometry.
func TestToJSONRoundTripsZoo(t *testing.T) {
	for _, n := range All() {
		data, err := ToJSON(n)
		if err != nil {
			t.Fatalf("%s: %v", n.Name, err)
		}
		back, err := FromJSON(data)
		if err != nil {
			t.Fatalf("%s: %v\n%s", n.Name, err, data)
		}
		if back.Name != n.Name || len(back.Layers) != len(n.Layers) {
			t.Fatalf("%s: round trip lost structure", n.Name)
		}
		for i := range n.Layers {
			want := n.Layers[i].Layer.Normalized()
			got := back.Layers[i].Layer.Normalized()
			if !reflect.DeepEqual(want, got) {
				t.Errorf("%s/%s: %+v != %+v", n.Name, want.Name, got, want)
			}
			if back.Layers[i].Count != n.Layers[i].Count {
				t.Errorf("%s/%s: count %d != %d", n.Name, want.Name,
					back.Layers[i].Count, n.Layers[i].Count)
			}
		}
	}
}

func TestFromJSONFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "net.json")
	data, err := ToJSON(VGG13())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := FromJSONFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "VGG-13" || len(n.Layers) != 10 {
		t.Errorf("loaded %q with %d layers", n.Name, len(n.Layers))
	}
	if _, err := FromJSONFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := FromJSONFile(bad); err == nil || !strings.Contains(err.Error(), "bad.json") {
		t.Errorf("parse error should name the file, got %v", err)
	}
}

func TestSingle(t *testing.T) {
	l := core.Layer{Name: "conv", IW: 8, IH: 8, KW: 3, KH: 3, IC: 2, OC: 2}
	n := Single(l)
	if n.Name != "conv" || len(n.Layers) != 1 || n.Layers[0].Count != 1 {
		t.Fatalf("Single = %+v", n)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if Single(core.Layer{IW: 8, IH: 8, KW: 3, KH: 3, IC: 1, OC: 1}).Name != "layer" {
		t.Error("unnamed layer should default the network name")
	}
}
