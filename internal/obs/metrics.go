package obs

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// This file is the metrics half of the package: a hand-rolled Prometheus
// registry writing text exposition format version 0.0.4 — no dependencies,
// just counters, gauges and fixed-bucket histograms backed by atomics. The
// server exposes one Registry on GET /metrics; metric names and label sets
// registered there are a stable contract (DESIGN.md §9).

// Label is one name="value" pair on a metric series.
type Label struct {
	Name, Value string
}

// Labels is an ordered label set; order is preserved in the exposition.
type Labels []Label

// render flattens the label set into the inner exposition form
// (`a="x",b="y"`), escaping values per the text format.
func (ls Labels) render() string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// collector writes one series' sample lines.
type collector interface {
	collect(b *bytes.Buffer, name, labels string)
}

// Counter is a monotonically increasing counter. The zero value is unusable;
// obtain one from Registry.Counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) collect(b *bytes.Buffer, name, labels string) {
	writeSample(b, name, "", labels, float64(c.v.Load()))
}

// counterFunc samples a cumulative counter from a callback at scrape time —
// how the registry mirrors counters owned elsewhere (engine stats, cache
// stats) without double counting.
type counterFunc func() uint64

func (f counterFunc) collect(b *bytes.Buffer, name, labels string) {
	writeSample(b, name, "", labels, float64(f()))
}

// gaugeFunc samples a gauge from a callback at scrape time.
type gaugeFunc func() float64

func (f gaugeFunc) collect(b *bytes.Buffer, name, labels string) {
	writeSample(b, name, "", labels, f())
}

// Histogram is a fixed-bucket histogram. Observations and scrapes are
// lock-free; bucket counts are exposed cumulatively, as the text format
// requires. The zero value is unusable; obtain one from Registry.Histogram.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1; the last is the +Inf bucket
	sumBits atomic.Uint64   // float64 bits, CAS-accumulated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(seconds float64) { h.Observe(seconds) }

func (h *Histogram) collect(b *bytes.Buffer, name, labels string) {
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		le := `le="` + formatFloat(bound) + `"`
		writeSample(b, name+"_bucket", le, labels, float64(cum))
	}
	cum += h.counts[len(h.bounds)].Load()
	writeSample(b, name+"_bucket", `le="+Inf"`, labels, float64(cum))
	writeSample(b, name+"_sum", "", labels, math.Float64frombits(h.sumBits.Load()))
	writeSample(b, name+"_count", "", labels, float64(cum))
}

// writeSample writes one exposition line: name{extra,labels} value.
func writeSample(b *bytes.Buffer, name, extra, labels string, v float64) {
	b.WriteString(name)
	if extra != "" || labels != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		if extra != "" {
			if labels != "" {
				b.WriteByte(',')
			}
			b.WriteString(extra)
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// DurationBuckets are the default latency histogram bounds in seconds:
// 100µs to 10s, roughly 2.5× apart — wide enough for a sub-millisecond warm
// hit and a multi-second cold sweep to land in distinct buckets.
var DurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 10,
}

// family is one metric name: its metadata plus every labeled series.
type family struct {
	name, help, typ string
	series          []famSeries
}

type famSeries struct {
	labels string
	col    collector
}

// Registry holds metric families and writes them in Prometheus text
// exposition format. Build one with NewRegistry; registration methods are
// typically called once at construction, scrapes any time after.
type Registry struct {
	mu     sync.Mutex
	order  []*family
	byName map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// register appends one series to the (possibly new) family, enforcing that a
// name keeps one type and help across registrations. Registration conflicts
// are programmer errors and panic.
func (r *Registry) register(name, help, typ string, labels Labels, col collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		r.byName[name] = f
		r.order = append(r.order, f)
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %s registered as both %s and %s", name, f.typ, typ))
	}
	f.series = append(f.series, famSeries{labels: labels.render(), col: col})
}

// Counter registers and returns a counter series. By convention counter
// names end in _total.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", labels, c)
	return c
}

// CounterFunc registers a counter series sampled from fn at scrape time; fn
// must be monotone and safe for concurrent use.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.register(name, help, "counter", labels, counterFunc(fn))
}

// GaugeFunc registers a gauge series sampled from fn at scrape time; fn must
// be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, "gauge", labels, gaugeFunc(fn))
}

// Histogram registers and returns a histogram series with the given bucket
// upper bounds (ascending, +Inf implied).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	h := &Histogram{
		bounds: append([]float64(nil), buckets...),
		counts: make([]atomic.Uint64, len(buckets)+1),
	}
	r.register(name, help, "histogram", labels, h)
	return h
}

// ContentType is the Content-Type of the exposition WriteTo produces.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteTo writes the full exposition: families in registration order, each
// with its # HELP and # TYPE line followed by every series' samples.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	fams := make([]*family, len(r.order))
	copy(fams, r.order)
	r.mu.Unlock()
	var b bytes.Buffer
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			s.col.collect(&b, f.name, s.labels)
		}
	}
	n, err := w.Write(b.Bytes())
	return int64(n), err
}
