package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/obs/obstest"
)

func TestSpanTreeNesting(t *testing.T) {
	tr := New("test")
	ctx := NewContext(context.Background(), tr)

	ctx1, root := Start(ctx, "request")
	ctx2, child := Start(ctx1, "handler")
	_, grand := Start(ctx2, "search")
	grand.SetInt("candidates", 42).SetStr("path", "closed-form")
	grand.End()
	child.End()
	_, sib := Start(ctx1, "write")
	sib.End()
	root.End()

	roots := tr.Tree()
	if len(roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(roots))
	}
	req := roots[0]
	if req.Name != "request" || len(req.Children) != 2 {
		t.Fatalf("root = %q with %d children, want request with 2", req.Name, len(req.Children))
	}
	if req.Children[0].Name != "handler" || req.Children[1].Name != "write" {
		t.Fatalf("children = %q, %q", req.Children[0].Name, req.Children[1].Name)
	}
	s := Find(roots, "search")
	if s == nil {
		t.Fatal("Find(search) = nil")
	}
	if s.Attrs["candidates"] != int64(42) || s.Attrs["path"] != "closed-form" {
		t.Fatalf("attrs = %v", s.Attrs)
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
}

func TestNilSpanNoOps(t *testing.T) {
	ctx, s := Start(context.Background(), "x")
	if s != nil {
		t.Fatal("Start without trace returned non-nil span")
	}
	if ctx != context.Background() {
		t.Fatal("Start without trace derived a new context")
	}
	// All methods must be safe on nil.
	s.End()
	s.SetInt("a", 1)
	s.SetStr("b", "c")
	if s.Duration() != 0 || s.Name() != "" {
		t.Fatal("nil span reported non-zero state")
	}
	if FromContext(ctx) != nil {
		t.Fatal("FromContext on bare context != nil")
	}
}

func TestStartDisabledZeroAllocs(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		_, s := Start(ctx, "hot")
		s.SetInt("n", 1)
		s.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled Start allocated %.1f/op, want 0", allocs)
	}
}

func TestSpanLimit(t *testing.T) {
	tr := New("tiny")
	tr.SetMaxSpans(2)
	ctx := NewContext(context.Background(), tr)
	_, a := Start(ctx, "a")
	_, b := Start(ctx, "b")
	_, c := Start(ctx, "c")
	if a == nil || b == nil {
		t.Fatal("spans under the limit were dropped")
	}
	if c != nil {
		t.Fatal("span over the limit was recorded")
	}
	if tr.Dropped() != 1 || tr.Len() != 2 {
		t.Fatalf("dropped=%d len=%d, want 1, 2", tr.Dropped(), tr.Len())
	}
}

func TestNewContextClearsParentSpan(t *testing.T) {
	outer := New("outer")
	ctx := NewContext(context.Background(), outer)
	ctx, req := Start(ctx, "request")
	defer req.End()

	// Attaching a fresh trace must not parent its spans under "request".
	inner := New("inner")
	ictx := NewContext(ctx, inner)
	_, s := Start(ictx, "compile")
	s.End()

	if outer.Len() != 1 {
		t.Fatalf("outer trace got %d spans, want 1", outer.Len())
	}
	roots := inner.Tree()
	if len(roots) != 1 || roots[0].Name != "compile" || len(roots[0].Children) != 0 {
		t.Fatalf("inner tree = %+v, want single top-level compile", roots)
	}
}

func TestConcurrentStart(t *testing.T) {
	tr := New("fanout")
	ctx := NewContext(context.Background(), tr)
	ctx, root := Start(ctx, "compile")
	done := make(chan struct{})
	const n = 16
	for i := 0; i < n; i++ {
		go func(i int) {
			defer func() { done <- struct{}{} }()
			lctx, layer := Start(ctx, "layer")
			layer.SetInt("index", int64(i))
			_, sub := Start(lctx, "search")
			sub.End()
			layer.End()
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
	root.End()
	roots := tr.Tree()
	if len(roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(roots))
	}
	if got := len(roots[0].Children); got != n {
		t.Fatalf("layer spans = %d, want %d", got, n)
	}
	for _, layer := range roots[0].Children {
		if len(layer.Children) != 1 || layer.Children[0].Name != "search" {
			t.Fatalf("layer children = %+v", layer.Children)
		}
	}
}

func TestPhasesAndServerTiming(t *testing.T) {
	tr := New("req")
	ctx := NewContext(context.Background(), tr)
	_, a := Start(ctx, "decode")
	a.End()
	_, b := Start(ctx, "hand ler") // space must be sanitized in the header
	b.End()
	phases := tr.Phases()
	if len(phases) != 2 || phases[0].Name != "decode" {
		t.Fatalf("phases = %+v", phases)
	}
	h := ServerTiming(phases, 5*time.Millisecond)
	if !strings.Contains(h, "decode;dur=") || !strings.Contains(h, "hand-ler;dur=") {
		t.Fatalf("header = %q", h)
	}
	if !strings.HasSuffix(h, "total;dur=5.00") {
		t.Fatalf("header = %q, want total;dur=5.00 suffix", h)
	}
}

func TestDurationByName(t *testing.T) {
	tr := New("t")
	ctx := NewContext(context.Background(), tr)
	for i := 0; i < 3; i++ {
		_, s := Start(ctx, "search")
		s.End()
	}
	_, s := Start(ctx, "energy")
	s.End()
	by := tr.DurationByName()
	if len(by) != 2 {
		t.Fatalf("names = %v", by)
	}
	if _, ok := by["search"]; !ok {
		t.Fatal("missing search")
	}
}

func TestWriteChrome(t *testing.T) {
	tr := New("vwsdk")
	ctx := NewContext(context.Background(), tr)
	ctx1, a := Start(ctx, "workload")
	a.SetStr("layer", "conv1")
	_, c := Start(ctx1, "search")
	c.End()
	a.End()
	_, b := Start(ctx, "workload") // second top-level span: its own lane
	b.End()

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Tid  int            `json:"tid"`
			Ts   int64          `json:"ts"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("events = %d, want 4 (1 meta + 3 spans)", len(doc.TraceEvents))
	}
	meta := doc.TraceEvents[0]
	if meta.Ph != "M" || meta.Args["name"] != "vwsdk" {
		t.Fatalf("meta event = %+v", meta)
	}
	ev := doc.TraceEvents[1:]
	if ev[0].Tid != ev[1].Tid {
		t.Fatalf("child span left its parent's lane: %d vs %d", ev[0].Tid, ev[1].Tid)
	}
	if ev[2].Tid == ev[0].Tid {
		t.Fatal("independent top-level spans share a lane")
	}
	if ev[0].Args["layer"] != "conv1" {
		t.Fatalf("args = %v", ev[0].Args)
	}
}

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("vwsdk_http_requests_total", "Total HTTP requests.")
	c.Add(3)
	r.GaugeFunc("vwsdk_goroutines", "Goroutines.", func() float64 { return 7 })
	r.CounterFunc("vwsdk_engine_searches_total", "Engine searches.", func() uint64 { return 11 })
	h := r.Histogram("vwsdk_compile_phase_seconds", "Per-phase compile time.",
		[]float64{0.001, 0.01, 0.1}, Label{"phase", "search"})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(99) // lands in +Inf

	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE vwsdk_http_requests_total counter",
		"vwsdk_http_requests_total 3\n",
		"# TYPE vwsdk_goroutines gauge",
		"vwsdk_goroutines 7\n",
		"vwsdk_engine_searches_total 11\n",
		"# TYPE vwsdk_compile_phase_seconds histogram",
		`vwsdk_compile_phase_seconds_bucket{phase="search",le="0.001"} 1`,
		`vwsdk_compile_phase_seconds_bucket{phase="search",le="+Inf"} 3`,
		`vwsdk_compile_phase_seconds_count{phase="search"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	obstest.CheckExposition(t, out)
}

func TestLabelEscaping(t *testing.T) {
	got := Labels{{"v", `a"b\c` + "\nd"}}.render()
	want := `v="a\"b\\c\nd"`
	if got != want {
		t.Fatalf("render = %s, want %s", got, want)
	}
}
