// Package obs is the repository's observability layer: a lightweight,
// stdlib-only span recorder (tracing) and a hand-rolled Prometheus metrics
// registry (metrics.go), shared by the engine, the compile pipeline, the
// HTTP server and the command-line tools.
//
// # Spans
//
// A Trace is one recording — typically one request, one compilation, or one
// CLI run. Code under measurement brackets its work in spans:
//
//	ctx, span := obs.Start(ctx, "search")
//	span.SetStr("layer", l.Name)
//	defer span.End()
//
// Spans nest through the context: Start parents the new span under the
// context's current span and returns a derived context carrying the new one,
// so a call tree becomes a span tree without any explicit plumbing. Traces
// are attached with NewContext and recovered with FromContext.
//
// # The disabled fast path
//
// Tracing is strictly opt-in per context. When no Trace rides the context —
// the normal case for every production request that did not ask for one —
// Start returns the context unchanged and a nil *Span, and every Span method
// no-ops on a nil receiver. The disabled path performs no allocation and no
// locking (pinned by TestStartDisabledZeroAllocs), which is what keeps the
// warm /v1/compile plan path at 0 allocs/request.
//
// # Lifecycle and concurrency
//
// Starting spans is safe from any number of goroutines (the compile pipeline
// fans per-layer spans out concurrently). A Span's End and attribute setters
// must be called by the goroutine that started it, and the read-side APIs —
// Tree, Phases, DurationByName, WriteChrome — expect the recorded spans to
// have ended: call them after the traced work has joined (which every caller
// in this repository does — handlers read the trace after the request
// finishes, the CLIs after the run).
//
// Consumers: Tree renders the nested span tree the server attaches to
// ?trace=1 responses, Phases/ServerTiming feed the Server-Timing header,
// DurationByName feeds the per-phase compile-time histograms, and
// WriteChrome (chrome.go) emits Chrome trace-event JSON for
// chrome://tracing and Perfetto.
package obs

import (
	"context"
	"sync"
	"time"
)

// DefaultMaxSpans bounds a Trace's recorded spans. Spans started past the
// limit are dropped (Start returns a nil no-op span) and counted, so a
// pathological sweep degrades to a truncated trace instead of unbounded
// memory growth.
const DefaultMaxSpans = 1 << 18

// Trace is one span recording. Build one with New; attach it to a context
// with NewContext.
type Trace struct {
	name  string
	start time.Time

	mu      sync.Mutex
	spans   []*Span
	dropped int
	limit   int
}

// New returns an empty Trace named name, started now.
func New(name string) *Trace {
	return &Trace{name: name, start: time.Now(), limit: DefaultMaxSpans}
}

// Name returns the trace's name.
func (t *Trace) Name() string { return t.name }

// Start returns when the trace was created.
func (t *Trace) Start() time.Time { return t.start }

// Dropped reports how many spans were discarded over the span limit.
func (t *Trace) Dropped() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// SetMaxSpans overrides the span limit (DefaultMaxSpans); n < 1 makes the
// trace drop every subsequent span. Call it before handing the trace out.
func (t *Trace) SetMaxSpans(n int) { t.limit = n }

// Len reports how many spans the trace holds.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Span is one timed region of a Trace. The zero value is not used; spans
// come from Start, and a nil *Span (tracing disabled, or the trace full) is
// a valid no-op receiver for every method.
type Span struct {
	t      *Trace
	id     int
	parent int // index into t.spans; -1 = top level
	name   string
	start  time.Time
	dur    time.Duration
	ended  bool
	attrs  []attr
}

// attr is one span attribute; Str is used unless isNum is set.
type attr struct {
	key   string
	str   string
	num   int64
	isNum bool
}

// newSpan records a span under the trace's lock, enforcing the span limit.
func (t *Trace) newSpan(name string, parent int) *Span {
	s := &Span{t: t, parent: parent, name: name, start: time.Now()}
	t.mu.Lock()
	if len(t.spans) >= t.limit {
		t.dropped++
		t.mu.Unlock()
		return nil
	}
	s.id = len(t.spans)
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// ctxKey keys the context values; the trace and the current span are stored
// separately so NewContext can clear the span without knowing it.
type ctxKey int

const (
	traceKey ctxKey = iota
	spanKey
)

// NewContext returns a context carrying t as its trace. Any current span is
// cleared, so spans started under the returned context are top-level in t —
// attaching a fresh trace never parents its spans under a different trace's
// span tree.
func NewContext(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(context.WithValue(ctx, traceKey, t), spanKey, (*Span)(nil))
}

// FromContext returns the context's trace, or nil when the context carries
// none (tracing disabled).
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey).(*Trace)
	return t
}

// Start begins a span named name under the context's current span and
// returns a derived context carrying it. When the context has no trace —
// tracing disabled — Start returns ctx unchanged and a nil span without
// allocating; all Span methods no-op on nil, so call sites need no guard.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	t := FromContext(ctx)
	if t == nil {
		return ctx, nil
	}
	parent := -1
	if ps, ok := ctx.Value(spanKey).(*Span); ok && ps != nil && ps.t == t {
		parent = ps.id
	}
	s := t.newSpan(name, parent)
	if s == nil {
		return ctx, nil // over the span limit: degrade to no-op
	}
	return context.WithValue(ctx, spanKey, s), s
}

// End finishes the span, fixing its duration; the first End wins and later
// calls no-op, so defer span.End() composes with early explicit ends.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
}

// Duration returns the span's duration (the live duration if not yet ended,
// 0 on a nil span).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	if !s.ended {
		return time.Since(s.start)
	}
	return s.dur
}

// SetInt attaches an integer attribute and returns the span for chaining.
func (s *Span) SetInt(key string, v int64) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, attr{key: key, num: v, isNum: true})
	return s
}

// SetStr attaches a string attribute and returns the span for chaining.
func (s *Span) SetStr(key, v string) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, attr{key: key, str: v})
	return s
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}
