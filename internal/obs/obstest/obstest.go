// Package obstest holds test helpers for validating obs output; it lives
// outside the _test.go files so the server's scrape tests can share the
// exposition checker.
package obstest

import (
	"strconv"
	"strings"
	"testing"
)

// CheckExposition validates text-exposition invariants on a scrape body:
// every sample belongs to a declared # TYPE family, values parse as floats,
// and histogram bucket counts are monotone with the le="+Inf" bucket equal to
// the series' _count.
func CheckExposition(t testing.TB, body string) {
	t.Helper()
	types := map[string]string{}
	lastBucket := map[string]float64{} // family+labels (minus le) -> last cumulative count
	infCount := map[string]float64{}
	countVal := map[string]float64{}
	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		series, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			name = series[:i]
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if b, ok := strings.CutSuffix(name, suf); ok && types[b] == "histogram" {
				base = b
			}
		}
		if _, ok := types[base]; !ok {
			t.Fatalf("sample %q has no # TYPE declaration", line)
		}
		if strings.HasSuffix(name, "_bucket") && types[base] == "histogram" {
			key, le := splitLE(t, series)
			if val < lastBucket[key] {
				t.Fatalf("non-monotone buckets at %q: %v < %v", line, val, lastBucket[key])
			}
			lastBucket[key] = val
			if le == "+Inf" {
				infCount[key] = val
			}
		}
		if strings.HasSuffix(name, "_count") && types[base] == "histogram" {
			countVal[series] = val
		}
	}
	for key, inf := range infCount {
		if cnt, ok := countVal[key]; ok && cnt != inf {
			t.Fatalf("histogram %q: le=+Inf bucket %v != _count %v", key, inf, cnt)
		}
	}
}

// splitLE strips the le label out of a _bucket series, returning the matching
// _count series name (family_count plus the remaining labels) and the le
// value — buckets and their _count line share a key that way.
func splitLE(t testing.TB, series string) (key, le string) {
	t.Helper()
	i := strings.IndexByte(series, '{')
	if i < 0 {
		t.Fatalf("bucket series without labels: %q", series)
	}
	name := strings.TrimSuffix(series[:i], "_bucket") + "_count"
	inner := strings.TrimSuffix(series[i+1:], "}")
	var rest []string
	for _, pair := range strings.Split(inner, ",") {
		if v, ok := strings.CutPrefix(pair, `le="`); ok {
			le = strings.TrimSuffix(v, `"`)
			continue
		}
		rest = append(rest, pair)
	}
	if le == "" {
		t.Fatalf("bucket series without le: %q", series)
	}
	if len(rest) == 0 {
		return name, le
	}
	return name + "{" + strings.Join(rest, ",") + "}", le
}
