package obs

import (
	"fmt"
	"strings"
	"time"
)

// Node is one span of the rendered span tree: the JSON form the server
// attaches to ?trace=1 responses and stores as a cached plan's compile
// provenance. Times are microseconds; StartUs is the offset from the trace's
// start so trees are comparable across requests.
type Node struct {
	Name     string         `json:"name"`
	StartUs  int64          `json:"start_us"`
	DurUs    int64          `json:"dur_us"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []*Node        `json:"children,omitempty"`
}

// Sum returns the total duration of the node's direct children.
func (n *Node) Sum() time.Duration {
	var total int64
	for _, c := range n.Children {
		total += c.DurUs
	}
	return time.Duration(total) * time.Microsecond
}

// Find returns the first node named name in a depth-first walk of the
// forest, or nil.
func Find(nodes []*Node, name string) *Node {
	for _, n := range nodes {
		if n.Name == name {
			return n
		}
		if c := Find(n.Children, name); c != nil {
			return c
		}
	}
	return nil
}

// Tree renders the recorded spans as a forest of nested nodes in start
// order. Call it after the traced work has ended (see the package comment's
// lifecycle rules).
func (t *Trace) Tree() []*Node {
	t.mu.Lock()
	spans := t.spans
	t.mu.Unlock()
	nodes := make([]*Node, len(spans))
	var roots []*Node
	for i, s := range spans {
		n := &Node{
			Name:    s.name,
			StartUs: s.start.Sub(t.start).Microseconds(),
			DurUs:   s.Duration().Microseconds(),
		}
		if len(s.attrs) > 0 {
			n.Attrs = make(map[string]any, len(s.attrs))
			for _, a := range s.attrs {
				if a.isNum {
					n.Attrs[a.key] = a.num
				} else {
					n.Attrs[a.key] = a.str
				}
			}
		}
		nodes[i] = n
		if s.parent >= 0 {
			p := nodes[s.parent]
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	return roots
}

// Phase is one top-level span's (name, duration) — the unit Server-Timing
// headers and phase rollups are built from.
type Phase struct {
	Name string
	Dur  time.Duration
}

// Phases returns the trace's top-level spans in start order as phases.
func (t *Trace) Phases() []Phase {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Phase
	for _, s := range t.spans {
		if s.parent < 0 {
			out = append(out, Phase{Name: s.name, Dur: s.Duration()})
		}
	}
	return out
}

// DurationByName sums span durations by span name across the whole trace.
// Concurrent spans (the compile pipeline's per-layer fan-out) sum their
// individual durations, so a phase total can legitimately exceed the trace's
// wall time — it is per-phase work accounting, not elapsed time.
func (t *Trace) DurationByName() map[string]time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]time.Duration)
	for _, s := range t.spans {
		out[s.name] += s.Duration()
	}
	return out
}

// ServerTiming renders phases plus a trailing total as a Server-Timing
// header value (RFC: durations in milliseconds): "decode;dur=0.21,
// handler;dur=3.90, total;dur=4.15". Phase names are sanitized to header
// token characters.
func ServerTiming(phases []Phase, total time.Duration) string {
	var b strings.Builder
	for _, p := range phases {
		fmt.Fprintf(&b, "%s;dur=%.2f, ", token(p.Name), ms(p.Dur))
	}
	fmt.Fprintf(&b, "total;dur=%.2f", ms(total))
	return b.String()
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// token keeps a phase name inside the Server-Timing token grammar, mapping
// anything else to '-'.
func token(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		default:
			return '-'
		}
	}, s)
}
