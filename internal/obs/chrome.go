package obs

import (
	"encoding/json"
	"io"
)

// chromeEvent is one Chrome trace-event ("X" complete events plus one "M"
// process-name metadata event). The format is the trace-event JSON that
// chrome://tracing and Perfetto's legacy importer open directly:
// https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   int64          `json:"ts"`            // µs since trace start
	Dur  int64          `json:"dur,omitempty"` // µs
	Args map[string]any `json:"args,omitempty"`
}

// chromeDoc is the file layout: the object form, so viewers that expect
// metadata keep working.
type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome writes the trace in Chrome trace-event JSON format. Spans
// become "X" (complete) events; each top-level span and its descendants
// share one tid lane, so concurrent top-level work (per-layer searches, the
// bench harness's workloads) renders as parallel tracks while nesting within
// a lane stays correct — within one top-level span, child spans run on the
// goroutine that started it and nest by containment.
func (t *Trace) WriteChrome(w io.Writer) error {
	t.mu.Lock()
	spans := t.spans
	t.mu.Unlock()
	doc := chromeDoc{
		TraceEvents:     make([]chromeEvent, 0, len(spans)+1),
		DisplayTimeUnit: "ms",
	}
	doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]any{"name": t.name},
	})
	// lane[i] is the tid of span i: top-level spans open their own lane,
	// children inherit. Spans are recorded in start order, so a parent always
	// precedes its children.
	lane := make([]int, len(spans))
	for i, s := range spans {
		if s.parent < 0 {
			lane[i] = s.id + 1
		} else {
			lane[i] = lane[s.parent]
		}
		ev := chromeEvent{
			Name: s.name,
			Ph:   "X",
			Pid:  1,
			Tid:  lane[i],
			Ts:   s.start.Sub(t.start).Microseconds(),
			Dur:  s.Duration().Microseconds(),
		}
		if len(s.attrs) > 0 {
			ev.Args = make(map[string]any, len(s.attrs))
			for _, a := range s.attrs {
				if a.isNum {
					ev.Args[a.key] = a.num
				} else {
					ev.Args[a.key] = a.str
				}
			}
		}
		doc.TraceEvents = append(doc.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
