package tensor

// RNG is a small deterministic pseudo-random generator (SplitMix64) used to
// fill tensors reproducibly across platforms. The zero value is a valid
// generator seeded with 0.
type RNG struct {
	state uint64
}

// NewRNG returns a generator with the given seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Next returns the next 64-bit value of the SplitMix64 sequence.
func (r *RNG) Next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// IntN returns a value in [0, n) for n > 0.
func (r *RNG) IntN(n int) int {
	if n <= 0 {
		panic("tensor: IntN with non-positive n")
	}
	return int(r.Next() % uint64(n))
}

// SmallInt returns an integer in [lo, hi] as a float64; the interval must be
// non-empty. Small integer values keep simulated sums exactly representable.
func (r *RNG) SmallInt(lo, hi int) float64 {
	if hi < lo {
		panic("tensor: SmallInt with empty range")
	}
	return float64(lo + r.IntN(hi-lo+1))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Next()>>11) / (1 << 53)
}

// FillSmallInts fills dst with integers in [lo, hi].
func (r *RNG) FillSmallInts(dst []float64, lo, hi int) {
	for i := range dst {
		dst[i] = r.SmallInt(lo, hi)
	}
}

// RandTensor3 returns a c×h×w tensor of small integers in [-4, 4], seeded
// deterministically.
func RandTensor3(seed uint64, c, h, w int) *Tensor3 {
	t := NewTensor3(c, h, w)
	NewRNG(seed).FillSmallInts(t.Data, -4, 4)
	return t
}

// RandTensor4 returns an o×c×h×w weight tensor of small integers in [-4, 4],
// seeded deterministically.
func RandTensor4(seed uint64, o, c, h, w int) *Tensor4 {
	t := NewTensor4(o, c, h, w)
	NewRNG(seed).FillSmallInts(t.Data, -4, 4)
	return t
}
