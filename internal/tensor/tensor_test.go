package tensor

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTensor3Indexing(t *testing.T) {
	x := NewTensor3(2, 3, 4)
	x.Set(1, 2, 3, 7)
	x.Set(0, 0, 0, -1)
	if x.At(1, 2, 3) != 7 || x.At(0, 0, 0) != -1 {
		t.Fatal("Set/At mismatch")
	}
	if x.Len() != 24 {
		t.Fatalf("Len = %d, want 24", x.Len())
	}
	// Row-major order: element (1,2,3) is the last.
	if x.Data[23] != 7 {
		t.Fatal("layout not C-major row-major")
	}
}

func TestTensor3PanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTensor3(0,1,1) did not panic")
		}
	}()
	NewTensor3(0, 1, 1)
}

func TestTensor3CloneIndependent(t *testing.T) {
	x := RandTensor3(1, 2, 3, 3)
	y := x.Clone()
	if !x.Equal(y) {
		t.Fatal("clone not equal")
	}
	y.Set(0, 0, 0, 99)
	if x.At(0, 0, 0) == 99 {
		t.Fatal("clone shares storage")
	}
}

func TestTensor3Pad(t *testing.T) {
	x := NewTensor3(1, 2, 2)
	x.Set(0, 0, 0, 1)
	x.Set(0, 0, 1, 2)
	x.Set(0, 1, 0, 3)
	x.Set(0, 1, 1, 4)
	p := x.Pad(1, 2)
	if p.H != 4 || p.W != 6 {
		t.Fatalf("padded dims %dx%d, want 4x6", p.H, p.W)
	}
	if p.At(0, 1, 2) != 1 || p.At(0, 2, 3) != 4 {
		t.Fatal("padded content misplaced")
	}
	if p.At(0, 0, 0) != 0 || p.At(0, 3, 5) != 0 {
		t.Fatal("padding not zero")
	}
	// Zero padding clones.
	q := x.Pad(0, 0)
	if !q.Equal(x) {
		t.Fatal("Pad(0,0) != clone")
	}
	q.Set(0, 0, 0, 42)
	if x.At(0, 0, 0) == 42 {
		t.Fatal("Pad(0,0) shares storage")
	}
}

func TestTensor3PadNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative pad did not panic")
		}
	}()
	NewTensor3(1, 1, 1).Pad(-1, 0)
}

func TestTensor3Compare(t *testing.T) {
	a := RandTensor3(7, 2, 4, 4)
	b := a.Clone()
	if !a.AlmostEqual(b, 0) {
		t.Fatal("identical tensors not almost equal")
	}
	b.Data[5] += 0.5
	if a.Equal(b) {
		t.Fatal("different tensors equal")
	}
	if a.AlmostEqual(b, 0.4) {
		t.Fatal("AlmostEqual tolerance not applied")
	}
	if !a.AlmostEqual(b, 0.6) {
		t.Fatal("AlmostEqual rejected within tolerance")
	}
	if d := a.MaxAbsDiff(b); math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("MaxAbsDiff = %v, want 0.5", d)
	}
	c := NewTensor3(1, 1, 1)
	if a.Equal(c) || a.AlmostEqual(c, 1e9) {
		t.Fatal("shape mismatch compared equal")
	}
	if !math.IsInf(a.MaxAbsDiff(c), 1) {
		t.Fatal("MaxAbsDiff on shape mismatch not +Inf")
	}
}

func TestTensor4Indexing(t *testing.T) {
	w := NewTensor4(2, 3, 2, 2)
	w.Set(1, 2, 1, 1, 5)
	if w.At(1, 2, 1, 1) != 5 {
		t.Fatal("Set/At mismatch")
	}
	if w.Data[23] != 5 {
		t.Fatal("layout not O-major")
	}
	if w.Len() != 24 {
		t.Fatal("Len wrong")
	}
	v := w.Clone()
	if !w.Equal(v) {
		t.Fatal("clone not equal")
	}
	v.Set(0, 0, 0, 0, 9)
	if w.Equal(v) {
		t.Fatal("Equal missed difference")
	}
	if w.Equal(NewTensor4(1, 1, 1, 1)) {
		t.Fatal("shape mismatch equal")
	}
}

func TestMatrixMulVec(t *testing.T) {
	// 3x2 matrix times length-3 vector (crossbar: vector drives rows).
	m := NewMatrix(3, 2)
	// columns: [1,2,3] and [4,5,6]
	m.Set(0, 0, 1)
	m.Set(1, 0, 2)
	m.Set(2, 0, 3)
	m.Set(0, 1, 4)
	m.Set(1, 1, 5)
	m.Set(2, 1, 6)
	out := m.MulVec([]float64{1, 0, -1})
	if out[0] != 1*1+0*2-1*3 || out[1] != 1*4+0*5-1*6 {
		t.Fatalf("MulVec = %v", out)
	}
}

func TestMatrixMulVecPanicsOnLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MulVec length mismatch did not panic")
		}
	}()
	NewMatrix(2, 2).MulVec([]float64{1})
}

func TestMatrixNonZeroAndString(t *testing.T) {
	m := NewMatrix(2, 2)
	if m.NonZero() != 0 {
		t.Fatal("zero matrix has nonzeros")
	}
	m.Set(0, 1, 3)
	m.Set(1, 1, -2)
	if m.NonZero() != 2 {
		t.Fatal("NonZero wrong")
	}
	s := m.String()
	if !strings.Contains(s, "Matrix(2x2)") || !strings.Contains(s, "3") {
		t.Fatalf("String = %q", s)
	}
	big := NewMatrix(100, 100)
	if strings.Count(big.String(), "\n") != 0 {
		t.Fatal("large matrix should not be dumped")
	}
	n := m.Clone()
	if !m.Equal(n) || m.Equal(NewMatrix(1, 1)) {
		t.Fatal("Matrix Equal/Clone wrong")
	}
	n.Set(0, 0, 1)
	if m.Equal(n) {
		t.Fatal("Equal missed difference")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("RNG not deterministic")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Next() != c.Next() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if v := r.IntN(5); v < 0 || v >= 5 {
			t.Fatalf("IntN out of range: %d", v)
		}
		if v := r.SmallInt(-3, 3); v < -3 || v > 3 || v != math.Trunc(v) {
			t.Fatalf("SmallInt out of range: %v", v)
		}
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGPanics(t *testing.T) {
	r := NewRNG(1)
	for _, f := range []func(){
		func() { r.IntN(0) },
		func() { r.SmallInt(2, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestRandTensors(t *testing.T) {
	x := RandTensor3(3, 2, 4, 4)
	y := RandTensor3(3, 2, 4, 4)
	if !x.Equal(y) {
		t.Fatal("same seed produced different tensors")
	}
	w := RandTensor4(5, 2, 2, 3, 3)
	v := RandTensor4(5, 2, 2, 3, 3)
	if !w.Equal(v) {
		t.Fatal("same seed produced different weights")
	}
	for _, d := range x.Data {
		if d < -4 || d > 4 || d != math.Trunc(d) {
			t.Fatalf("fill value %v outside small-int range", d)
		}
	}
}

// Property: Pad preserves the interior exactly and MulVec is linear.
func TestPadPreservesInterior(t *testing.T) {
	f := func(seed uint64, c, h, w, ph, pw uint8) bool {
		x := RandTensor3(seed, int(c%3)+1, int(h%6)+1, int(w%6)+1)
		p := x.Pad(int(ph%3), int(pw%3))
		for cc := 0; cc < x.C; cc++ {
			for y := 0; y < x.H; y++ {
				for xx := 0; xx < x.W; xx++ {
					if p.At(cc, y+int(ph%3), xx+int(pw%3)) != x.At(cc, y, xx) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMulVecLinearity(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		m := NewMatrix(6, 4)
		r.FillSmallInts(m.Data, -3, 3)
		a := make([]float64, 6)
		b := make([]float64, 6)
		r.FillSmallInts(a, -3, 3)
		r.FillSmallInts(b, -3, 3)
		sum := make([]float64, 6)
		for i := range sum {
			sum[i] = a[i] + b[i]
		}
		oa, ob, os := m.MulVec(a), m.MulVec(b), m.MulVec(sum)
		for i := range os {
			if os[i] != oa[i]+ob[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
