// Package tensor provides the dense tensor and matrix substrate used by the
// convolution reference model and the PIM crossbar simulator.
//
// Feature maps are CHW Tensor3 values and convolution weights are OIHW
// Tensor4 values, matching the layouts the paper's figures assume. Values
// are float64; the deterministic integer fills used for functional
// verification keep every intermediate exactly representable, so simulator
// outputs can be compared with == rather than a tolerance.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor3 is a dense rank-3 tensor in C×H×W layout (one feature map).
// The zero value is empty; use NewTensor3.
type Tensor3 struct {
	C, H, W int
	// Data is the backing slice in C-major, then H, then W order.
	Data []float64
}

// NewTensor3 allocates a zeroed C×H×W tensor. It panics on non-positive
// dimensions, which always indicate a programming error in this codebase.
func NewTensor3(c, h, w int) *Tensor3 {
	if c <= 0 || h <= 0 || w <= 0 {
		panic(fmt.Sprintf("tensor: invalid Tensor3 dims %dx%dx%d", c, h, w))
	}
	return &Tensor3{C: c, H: h, W: w, Data: make([]float64, c*h*w)}
}

// At returns the element at channel c, row y, column x.
func (t *Tensor3) At(c, y, x int) float64 {
	return t.Data[(c*t.H+y)*t.W+x]
}

// Set assigns the element at channel c, row y, column x.
func (t *Tensor3) Set(c, y, x int, v float64) {
	t.Data[(c*t.H+y)*t.W+x] = v
}

// Len returns the number of elements.
func (t *Tensor3) Len() int { return len(t.Data) }

// Clone returns a deep copy.
func (t *Tensor3) Clone() *Tensor3 {
	out := NewTensor3(t.C, t.H, t.W)
	copy(out.Data, t.Data)
	return out
}

// Pad returns a copy of t zero-padded by padH rows on top/bottom and padW
// columns on left/right of every channel. Zero paddings return a clone.
func (t *Tensor3) Pad(padH, padW int) *Tensor3 {
	if padH < 0 || padW < 0 {
		panic(fmt.Sprintf("tensor: negative padding %d,%d", padH, padW))
	}
	if padH == 0 && padW == 0 {
		return t.Clone()
	}
	out := NewTensor3(t.C, t.H+2*padH, t.W+2*padW)
	for c := 0; c < t.C; c++ {
		for y := 0; y < t.H; y++ {
			srcBase := (c*t.H + y) * t.W
			dstBase := (c*out.H+y+padH)*out.W + padW
			copy(out.Data[dstBase:dstBase+t.W], t.Data[srcBase:srcBase+t.W])
		}
	}
	return out
}

// Equal reports exact element-wise equality of shape and contents.
func (t *Tensor3) Equal(o *Tensor3) bool {
	if t.C != o.C || t.H != o.H || t.W != o.W {
		return false
	}
	for i, v := range t.Data {
		if v != o.Data[i] {
			return false
		}
	}
	return true
}

// AlmostEqual reports element-wise equality within absolute tolerance tol.
func (t *Tensor3) AlmostEqual(o *Tensor3, tol float64) bool {
	if t.C != o.C || t.H != o.H || t.W != o.W {
		return false
	}
	for i, v := range t.Data {
		if math.Abs(v-o.Data[i]) > tol {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute element difference, or +Inf when
// shapes differ.
func (t *Tensor3) MaxAbsDiff(o *Tensor3) float64 {
	if t.C != o.C || t.H != o.H || t.W != o.W {
		return math.Inf(1)
	}
	var worst float64
	for i, v := range t.Data {
		if d := math.Abs(v - o.Data[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// String renders a compact shape description.
func (t *Tensor3) String() string {
	return fmt.Sprintf("Tensor3(%dx%dx%d)", t.C, t.H, t.W)
}

// Tensor4 is a dense rank-4 tensor in O×C×H×W layout (convolution weights:
// O output channels, each a C×H×W kernel).
type Tensor4 struct {
	O, C, H, W int
	// Data is the backing slice in O-major order.
	Data []float64
}

// NewTensor4 allocates a zeroed O×C×H×W tensor, panicking on non-positive
// dimensions.
func NewTensor4(o, c, h, w int) *Tensor4 {
	if o <= 0 || c <= 0 || h <= 0 || w <= 0 {
		panic(fmt.Sprintf("tensor: invalid Tensor4 dims %dx%dx%dx%d", o, c, h, w))
	}
	return &Tensor4{O: o, C: c, H: h, W: w, Data: make([]float64, o*c*h*w)}
}

// At returns the element for output channel o, input channel c, position y,x.
func (t *Tensor4) At(o, c, y, x int) float64 {
	return t.Data[((o*t.C+c)*t.H+y)*t.W+x]
}

// Set assigns the element for output channel o, input channel c, position y,x.
func (t *Tensor4) Set(o, c, y, x int, v float64) {
	t.Data[((o*t.C+c)*t.H+y)*t.W+x] = v
}

// Len returns the number of elements.
func (t *Tensor4) Len() int { return len(t.Data) }

// Clone returns a deep copy.
func (t *Tensor4) Clone() *Tensor4 {
	out := NewTensor4(t.O, t.C, t.H, t.W)
	copy(out.Data, t.Data)
	return out
}

// Equal reports exact element-wise equality of shape and contents.
func (t *Tensor4) Equal(o *Tensor4) bool {
	if t.O != o.O || t.C != o.C || t.H != o.H || t.W != o.W {
		return false
	}
	for i, v := range t.Data {
		if v != o.Data[i] {
			return false
		}
	}
	return true
}

// String renders a compact shape description.
func (t *Tensor4) String() string {
	return fmt.Sprintf("Tensor4(%dx%dx%dx%d)", t.O, t.C, t.H, t.W)
}

// Matrix is a dense row-major matrix used for im2col lowering and for
// crossbar cell contents.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zeroed Rows×Cols matrix, panicking on non-positive
// dimensions.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("tensor: invalid Matrix dims %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns the element at row r, column c.
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns the element at row r, column c.
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MulVec computes mᵀ·in — the crossbar operation: in drives the rows and the
// result accumulates down each column — returning a vector of length Cols.
// It panics when len(in) != Rows.
func (m *Matrix) MulVec(in []float64) []float64 {
	if len(in) != m.Rows {
		panic(fmt.Sprintf("tensor: MulVec input %d, matrix rows %d", len(in), m.Rows))
	}
	out := make([]float64, m.Cols)
	for r, v := range in {
		if v == 0 {
			continue
		}
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		for c, w := range row {
			out[c] += v * w
		}
	}
	return out
}

// NonZero returns the number of non-zero cells.
func (m *Matrix) NonZero() int64 {
	var n int64
	for _, v := range m.Data {
		if v != 0 {
			n++
		}
	}
	return n
}

// Equal reports exact equality of shape and contents.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i, v := range m.Data {
		if v != o.Data[i] {
			return false
		}
	}
	return true
}

// String renders the full matrix; intended for small test matrices.
func (m *Matrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Matrix(%dx%d)", m.Rows, m.Cols)
	if m.Rows*m.Cols <= 256 {
		for r := 0; r < m.Rows; r++ {
			b.WriteString("\n ")
			for c := 0; c < m.Cols; c++ {
				fmt.Fprintf(&b, " %g", m.At(r, c))
			}
		}
	}
	return b.String()
}
