// Package optimize searches the hardware design space itself: instead of
// "what does this network cost on this chip?" (compile) it answers "which
// chip should you build for this network?". A DesignSpace enumerates
// candidate hardware configurations — array geometries assigned per layer
// group, chips per bank, gated or full-array peripherals — and the Optimizer
// compiles every design point through the existing compile.Compiler, scores
// it on (total cycles, total energy, total cell area) and keeps only the
// non-dominated Pareto frontier, pruning dominated points incrementally as
// the enumeration proceeds.
//
// Design points deliberately share the compile pipeline's engine: two points
// that assign the same array to a group containing the same layer shape hit
// the engine's memoized result, so each distinct (layer, array) cell is
// searched exactly once no matter how many design points contain it. The
// enumeration is sequential and its order deterministic, which fixes the
// frontier's tie handling: when two points score identically, the
// first-enumerated one is admitted and the later one is rejected as
// dominated.
package optimize

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/model"
)

// MaxPoints bounds the number of design points one space may enumerate,
// mirroring the sweep surface's cell bound: len(Arrays)^Groups × len(Chips)
// × len(Gating) must not exceed it.
const MaxPoints = 4096

// DesignSpace describes the hardware configurations to search for one
// network. Build one with FromJSON (the wire format below) or construct it
// directly and call Normalize before use.
//
// The JSON form mirrors the network-spec format:
//
//	{
//	  "name": "tinynet-codesign",
//	  "network": "VGG-13",            // zoo name, or an inline network spec
//	  "arrays": ["64x64", "128x128"], // "RxC" strings or {"rows":..,"cols":..}
//	  "chips": [1, 4],                // crossbars per layer-group bank
//	  "gating": [false, true],        // peripheral gating on/off
//	  "layer_groups": 2               // heterogeneous array assignment granularity
//	}
//
// "arrays" and "network" are required. "chips" defaults to [1], "gating" to
// [false], "layer_groups" to 1 (one array for the whole network). Unknown
// fields are rejected.
type DesignSpace struct {
	// Name labels the space in reports.
	Name string

	// Network is the CNN the hardware is being designed for.
	Network model.Network

	// Arrays are the candidate crossbar geometries. Each layer group is
	// assigned one of them independently (heterogeneous hardware), so the
	// assignment space is Arrays^Groups.
	Arrays []core.Array

	// Chips are the candidate crossbar counts per layer-group bank.
	Chips []int

	// Gating are the candidate peripheral models: false = full-array
	// conversions, true = gated on the programmed tile footprint.
	Gating []bool

	// Groups is the number of contiguous layer groups the network is split
	// into; each group gets its own array geometry and bank. 0 is
	// normalized to 1.
	Groups int
}

// spaceJSON is the wire form of a DesignSpace.
type spaceJSON struct {
	Name    string            `json:"name,omitempty"`
	Network json.RawMessage   `json:"network"`
	Arrays  []json.RawMessage `json:"arrays"`
	Chips   []int             `json:"chips,omitempty"`
	Gating  []bool            `json:"gating,omitempty"`
	Groups  int               `json:"layer_groups,omitempty"`
}

// arrayJSON is the object form of one "arrays" element.
type arrayJSON struct {
	Rows int `json:"rows"`
	Cols int `json:"cols"`
}

// parseArrayRef parses one "arrays" element: an "RxC" string or a
// {"rows","cols"} object.
func parseArrayRef(raw json.RawMessage) (core.Array, error) {
	trimmed := bytes.TrimSpace(raw)
	if len(trimmed) == 0 {
		return core.Array{}, fmt.Errorf("optimize: empty array reference")
	}
	switch trimmed[0] {
	case '"':
		var s string
		if err := json.Unmarshal(trimmed, &s); err != nil {
			return core.Array{}, fmt.Errorf("optimize: parse array: %w", err)
		}
		var a core.Array
		if n, err := fmt.Sscanf(s, "%dx%d", &a.Rows, &a.Cols); err != nil || n != 2 {
			return core.Array{}, fmt.Errorf("optimize: array %q is not RxC", s)
		}
		return a, nil
	case '{':
		dec := json.NewDecoder(bytes.NewReader(trimmed))
		dec.DisallowUnknownFields()
		var a arrayJSON
		if err := dec.Decode(&a); err != nil {
			return core.Array{}, fmt.Errorf("optimize: parse array: %w", err)
		}
		return core.Array{Rows: a.Rows, Cols: a.Cols}, nil
	default:
		return core.Array{}, fmt.Errorf("optimize: array reference must be an \"RxC\" string or a {rows, cols} object")
	}
}

// FromJSON parses and validates a design-space spec. The returned space is
// normalized: arrays deduplicated and sorted by (rows, cols), chips and
// gating deduplicated and sorted, defaults applied — so equal spaces have
// equal parsed forms and ToJSON(FromJSON(x)) is a fixed point.
func FromJSON(data []byte) (DesignSpace, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var spec spaceJSON
	if err := dec.Decode(&spec); err != nil {
		return DesignSpace{}, fmt.Errorf("optimize: parse design space: %w", err)
	}
	if len(spec.Network) == 0 {
		return DesignSpace{}, fmt.Errorf("optimize: design space %q has no network", spec.Name)
	}
	net, err := model.ResolveSpec(spec.Network)
	if err != nil {
		return DesignSpace{}, fmt.Errorf("optimize: design space %q: %w", spec.Name, err)
	}
	s := DesignSpace{
		Name:    spec.Name,
		Network: net,
		Chips:   spec.Chips,
		Gating:  spec.Gating,
		Groups:  spec.Groups,
	}
	for _, raw := range spec.Arrays {
		a, err := parseArrayRef(raw)
		if err != nil {
			return DesignSpace{}, err
		}
		s.Arrays = append(s.Arrays, a)
	}
	s.Normalize()
	if err := s.Validate(); err != nil {
		return DesignSpace{}, err
	}
	return s, nil
}

// FromJSONFile reads and parses a design-space spec file.
func FromJSONFile(path string) (DesignSpace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return DesignSpace{}, fmt.Errorf("optimize: read design space: %w", err)
	}
	s, err := FromJSON(data)
	if err != nil {
		return DesignSpace{}, fmt.Errorf("optimize: %s: %w", path, err)
	}
	return s, nil
}

// Normalize canonicalizes the space in place: axes are deduplicated and
// sorted (arrays by rows then cols, chips ascending, false before true) and
// absent axes get their defaults (chips [1], gating [false], one group).
// Normalization is idempotent, which makes ToJSON∘FromJSON a fixed point.
func (s *DesignSpace) Normalize() {
	sort.Slice(s.Arrays, func(i, j int) bool {
		if s.Arrays[i].Rows != s.Arrays[j].Rows {
			return s.Arrays[i].Rows < s.Arrays[j].Rows
		}
		return s.Arrays[i].Cols < s.Arrays[j].Cols
	})
	s.Arrays = dedupe(s.Arrays)
	if len(s.Chips) == 0 {
		s.Chips = []int{1}
	}
	sort.Ints(s.Chips)
	s.Chips = dedupe(s.Chips)
	if len(s.Gating) == 0 {
		s.Gating = []bool{false}
	}
	sort.Slice(s.Gating, func(i, j int) bool { return !s.Gating[i] && s.Gating[j] })
	s.Gating = dedupe(s.Gating)
	if s.Groups == 0 {
		s.Groups = 1
	}
}

// dedupe removes adjacent duplicates from a sorted slice.
func dedupe[T comparable](in []T) []T {
	out := in[:0]
	for i, v := range in {
		if i == 0 || v != in[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// Validate checks a normalized space: valid network, at least one valid
// array, positive chip counts, group count within the layer count, and a
// total point count within MaxPoints.
func (s DesignSpace) Validate() error {
	if err := s.Network.Validate(); err != nil {
		return err
	}
	if len(s.Arrays) == 0 {
		return fmt.Errorf("optimize: design space %q has no candidate arrays", s.Name)
	}
	for _, a := range s.Arrays {
		if err := a.Validate(); err != nil {
			return err
		}
	}
	for _, c := range s.Chips {
		if c < 1 {
			return fmt.Errorf("optimize: design space %q: non-positive chip count %d", s.Name, c)
		}
	}
	if s.Groups < 1 || s.Groups > len(s.Network.Layers) {
		return fmt.Errorf("optimize: design space %q: %d layer groups for %d layers",
			s.Name, s.Groups, len(s.Network.Layers))
	}
	n, err := s.Points()
	if err != nil {
		return err
	}
	if n > MaxPoints {
		return fmt.Errorf("optimize: design space %q enumerates %d points, limit %d", s.Name, n, MaxPoints)
	}
	return nil
}

// Points returns the number of design points the space enumerates:
// len(Arrays)^Groups × len(Chips) × len(Gating). It errors instead of
// overflowing when the assignment space explodes.
func (s DesignSpace) Points() (int, error) {
	n := 1
	for g := 0; g < s.groups(); g++ {
		n *= len(s.Arrays)
		if n > MaxPoints {
			return 0, fmt.Errorf("optimize: design space %q: %d^%d array assignments exceed limit %d",
				s.Name, len(s.Arrays), s.groups(), MaxPoints)
		}
	}
	n *= max(len(s.Chips), 1) * max(len(s.Gating), 1)
	return n, nil
}

func (s DesignSpace) groups() int {
	if s.Groups < 1 {
		return 1
	}
	return s.Groups
}

// LayerGroups splits the network's layers into Groups contiguous,
// near-equal-size slices: group i is layers[⌊iL/G⌋ : ⌊(i+1)L/G⌋].
func (s DesignSpace) LayerGroups() [][]model.ConvLayer {
	l, g := len(s.Network.Layers), s.groups()
	out := make([][]model.ConvLayer, g)
	for i := 0; i < g; i++ {
		out[i] = s.Network.Layers[i*l/g : (i+1)*l/g]
	}
	return out
}

// ToJSON serializes the space as a spec FromJSON accepts. The network is
// always inlined (never a zoo reference) and the axes are written in
// normalized form, so parsing the output yields the same space and
// re-serializing it yields the same bytes.
func (s DesignSpace) ToJSON() ([]byte, error) {
	s.Normalize()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	net, err := model.ToJSON(s.Network)
	if err != nil {
		return nil, err
	}
	spec := spaceJSON{
		Name:    s.Name,
		Network: json.RawMessage(bytes.TrimSpace(net)),
		Chips:   s.Chips,
		Gating:  s.Gating,
		Groups:  s.Groups,
	}
	for _, a := range s.Arrays {
		ref, err := json.Marshal(a.String())
		if err != nil {
			return nil, err
		}
		spec.Arrays = append(spec.Arrays, ref)
	}
	data, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("optimize: marshal design space: %w", err)
	}
	return append(data, '\n'), nil
}
