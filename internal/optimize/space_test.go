package optimize

import (
	"bytes"
	"os"
	"testing"

	"repro/internal/core"
)

const exampleSpec = "../../examples/designspaces/tinynet.json"

func TestFromJSONExample(t *testing.T) {
	s, err := FromJSONFile(exampleSpec)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "tinynet-codesign" || s.Network.Name != "TinyNet" {
		t.Fatalf("unexpected names: %q / %q", s.Name, s.Network.Name)
	}
	wantArrays := []core.Array{{Rows: 64, Cols: 64}, {Rows: 128, Cols: 128}, {Rows: 256, Cols: 256}, {Rows: 512, Cols: 512}}
	if len(s.Arrays) != len(wantArrays) {
		t.Fatalf("got %d arrays, want %d", len(s.Arrays), len(wantArrays))
	}
	for i, a := range wantArrays {
		if s.Arrays[i] != a {
			t.Errorf("array %d = %v, want %v", i, s.Arrays[i], a)
		}
	}
	if n, err := s.Points(); err != nil || n != 16 {
		t.Fatalf("Points() = %d, %v; want 16", n, err)
	}
}

func TestFromJSONZooAndDefaults(t *testing.T) {
	s, err := FromJSON([]byte(`{"network": "VGG-13", "arrays": [{"rows": 512, "cols": 512}, "256x256", "256x256"]}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Network.Name != "VGG-13" {
		t.Fatalf("network = %q, want VGG-13", s.Network.Name)
	}
	// Defaults applied, arrays deduplicated and sorted.
	if len(s.Arrays) != 2 || s.Arrays[0] != (core.Array{Rows: 256, Cols: 256}) {
		t.Fatalf("arrays = %v", s.Arrays)
	}
	if len(s.Chips) != 1 || s.Chips[0] != 1 || len(s.Gating) != 1 || s.Gating[0] || s.Groups != 1 {
		t.Fatalf("defaults not applied: %+v", s)
	}
}

func TestFromJSONErrors(t *testing.T) {
	cases := map[string]string{
		"no network":      `{"arrays": ["64x64"]}`,
		"no arrays":       `{"network": "VGG-13"}`,
		"empty arrays":    `{"network": "VGG-13", "arrays": []}`,
		"bad array":       `{"network": "VGG-13", "arrays": ["64by64"]}`,
		"zero array":      `{"network": "VGG-13", "arrays": ["0x64"]}`,
		"bad chips":       `{"network": "VGG-13", "arrays": ["64x64"], "chips": [0]}`,
		"too many groups": `{"network": "VGG-13", "arrays": ["64x64"], "layer_groups": 99}`,
		"unknown field":   `{"network": "VGG-13", "arrays": ["64x64"], "bogus": 1}`,
		"unknown zoo":     `{"network": "NoSuchNet", "arrays": ["64x64"]}`,
		"point explosion": `{"network": "VGG-13", "arrays": ["1x1","2x2","3x3","4x4","5x5","6x6","7x7","8x8"], "layer_groups": 5}`,
	}
	for name, spec := range cases {
		if _, err := FromJSON([]byte(spec)); err == nil {
			t.Errorf("%s: accepted %s", name, spec)
		}
	}
}

func TestToJSONFixedPoint(t *testing.T) {
	data, err := os.ReadFile(exampleSpec)
	if err != nil {
		t.Fatal(err)
	}
	s, err := FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	out1, err := s.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := FromJSON(out1)
	if err != nil {
		t.Fatalf("reparse serialized space: %v", err)
	}
	out2, err := s2.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out1, out2) {
		t.Fatalf("ToJSON not a fixed point:\n%s\nvs\n%s", out1, out2)
	}
}

func TestLayerGroups(t *testing.T) {
	s, err := FromJSONFile(exampleSpec)
	if err != nil {
		t.Fatal(err)
	}
	for groups := 1; groups <= len(s.Network.Layers); groups++ {
		s.Groups = groups
		parts := s.LayerGroups()
		if len(parts) != groups {
			t.Fatalf("groups=%d: got %d parts", groups, len(parts))
		}
		var total int
		for _, p := range parts {
			if len(p) == 0 {
				t.Fatalf("groups=%d: empty group", groups)
			}
			total += len(p)
		}
		if total != len(s.Network.Layers) {
			t.Fatalf("groups=%d: %d layers covered of %d", groups, total, len(s.Network.Layers))
		}
		// Contiguity: concatenating the parts reproduces the layer order.
		i := 0
		for _, p := range parts {
			for _, cl := range p {
				if cl.Name != s.Network.Layers[i].Name {
					t.Fatalf("groups=%d: layer %d is %q, want %q", groups, i, cl.Name, s.Network.Layers[i].Name)
				}
				i++
			}
		}
	}
}

func FuzzDesignSpaceFromJSON(f *testing.F) {
	data, err := os.ReadFile(exampleSpec)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(data))
	f.Add(`{"network": "VGG-13", "arrays": ["512x512"]}`)
	f.Add(`{"network": "VGG-13", "arrays": ["64x64", "512x512"], "chips": [1, 2, 4], "gating": [true], "layer_groups": 2}`)
	f.Add(`{"arrays": []}`)
	f.Add(`{"network": {"name": "x"}, "arrays": ["64x64"]}`)
	f.Add(`not json`)
	f.Fuzz(func(t *testing.T, in string) {
		s, err := FromJSON([]byte(in))
		if err != nil {
			return
		}
		// Accepted specs round-trip to a fixed point.
		out1, err := s.ToJSON()
		if err != nil {
			t.Fatalf("accepted spec fails ToJSON: %v\ninput: %s", err, in)
		}
		s2, err := FromJSON(out1)
		if err != nil {
			t.Fatalf("serialized space rejected: %v\n%s", err, out1)
		}
		out2, err := s2.ToJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out1, out2) {
			t.Fatalf("not a fixed point:\n%s\nvs\n%s", out1, out2)
		}
		if n, err := s.Points(); err != nil || n < 1 || n > MaxPoints {
			t.Fatalf("accepted space has bad point count %d, %v", n, err)
		}
	})
}

func TestParseArrayRef(t *testing.T) {
	for _, bad := range []string{`""`, `"x"`, `"64"`, `"64x"`, `"ax b"`, `[1,2]`, `true`, `{"rows": 64, "cols": 64, "x": 1}`} {
		if _, err := parseArrayRef([]byte(bad)); err == nil {
			t.Errorf("parseArrayRef(%s) accepted", bad)
		}
	}
	a, err := parseArrayRef([]byte(`"128x64"`))
	if err != nil || a != (core.Array{Rows: 128, Cols: 64}) {
		t.Fatalf("parseArrayRef string: %v, %v", a, err)
	}
	a, err = parseArrayRef([]byte(`{"rows": 32, "cols": 16}`))
	if err != nil || a != (core.Array{Rows: 32, Cols: 16}) {
		t.Fatalf("parseArrayRef object: %v, %v", a, err)
	}
}
