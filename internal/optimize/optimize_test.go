package optimize

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/engine"
)

var update = flag.Bool("update", false, "rewrite golden files")

func exampleSpace(t *testing.T) DesignSpace {
	t.Helper()
	s, err := FromJSONFile(exampleSpec)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDesignsEnumeration(t *testing.T) {
	s := exampleSpace(t)
	designs := Designs(s)
	want, err := s.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(designs) != want {
		t.Fatalf("got %d designs, want %d", len(designs), want)
	}
	for i, d := range designs {
		if d.ID != i+1 {
			t.Fatalf("design %d has ID %d", i, d.ID)
		}
		if len(d.Arrays) != 1 {
			t.Fatalf("design %d assigns %d arrays for 1 group", d.ID, len(d.Arrays))
		}
	}
	// Canonical order: assignment outermost, then chips, then gating.
	first := designs[0]
	if first.Arrays[0] != (core.Array{Rows: 64, Cols: 64}) || first.Chips != 1 || first.Gated {
		t.Fatalf("first design = %+v", first)
	}
	second := designs[1]
	if second.Chips != 1 || !second.Gated {
		t.Fatalf("second design = %+v", second)
	}
}

func TestDesignsHeterogeneous(t *testing.T) {
	s := exampleSpace(t)
	s.Groups = 2
	s.Chips = []int{1}
	s.Gating = []bool{false}
	designs := Designs(s)
	if len(designs) != 16 { // 4 arrays ^ 2 groups
		t.Fatalf("got %d designs, want 16", len(designs))
	}
	// The odometer must produce genuinely heterogeneous assignments.
	var hetero int
	for _, d := range designs {
		if d.Arrays[0] != d.Arrays[1] {
			hetero++
		}
	}
	if hetero != 12 {
		t.Fatalf("got %d heterogeneous assignments, want 12", hetero)
	}
}

// TestFrontierGolden pins the example space's frontier byte-for-byte:
// deterministic ordering, JSON round-trip, and (via Validate inside
// FromJSONFrontier) the absence of dominated points.
func TestFrontierGolden(t *testing.T) {
	f, err := New(nil).Run(context.Background(), exampleSpace(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	got, err := f.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "tinynet_frontier.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("frontier differs from golden (regenerate with -update if intended)\ngot:\n%s\nwant:\n%s", got, want)
	}
	// Round trip: parse (which re-validates invariants) and re-serialize.
	f2, err := FromJSONFrontier(got)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := f2.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, got2) {
		t.Fatal("frontier JSON round trip not byte-identical")
	}
	if len(f.Points) < 1 || f.Dominated < 1 {
		t.Fatalf("degenerate golden frontier: %d points, %d dominated", len(f.Points), f.Dominated)
	}
}

// TestFrontierProperty is the acceptance property: no returned point is
// dominated by ANY evaluated point (not just frontier survivors), and every
// evaluated point is either on the frontier or dominated by a frontier
// point.
func TestFrontierProperty(t *testing.T) {
	s := exampleSpace(t)
	o := New(nil)
	ctx := context.Background()
	f, err := o.Run(ctx, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	var all []FrontierPoint
	for _, d := range Designs(s) {
		p, err := o.Evaluate(ctx, s, d)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, p)
	}
	if len(all) != f.Evaluated {
		t.Fatalf("evaluated %d points, frontier says %d", len(all), f.Evaluated)
	}
	onFrontier := make(map[int]bool, len(f.Points))
	for _, p := range f.Points {
		onFrontier[p.ID] = true
	}
	for _, p := range f.Points {
		for _, q := range all {
			if q.ID != p.ID && q.Metrics.Dominates(p.Metrics) && !p.Metrics.Dominates(q.Metrics) {
				t.Errorf("frontier point %d strictly dominated by evaluated point %d", p.ID, q.ID)
			}
		}
	}
	for _, q := range all {
		if onFrontier[q.ID] {
			continue
		}
		dominated := false
		for _, p := range f.Points {
			if p.Metrics.Dominates(q.Metrics) {
				dominated = true
				break
			}
		}
		if !dominated {
			t.Errorf("non-frontier point %d is not dominated by any frontier point", q.ID)
		}
	}
}

// TestMemoizedReuse proves the tentpole's sharing claim with engine.Stats:
// across all design points, each distinct (layer, array) cell runs the
// underlying search exactly once; every other search is a cache hit or an
// in-flight join.
func TestMemoizedReuse(t *testing.T) {
	s := exampleSpace(t)
	s.Arrays = []core.Array{{Rows: 64, Cols: 64}, {Rows: 128, Cols: 128}}
	s.Normalize()

	eng := engine.New()
	o := New(compile.New(eng))
	f, err := o.Run(context.Background(), s, nil)
	if err != nil {
		t.Fatal(err)
	}
	layers := len(s.Network.Layers)          // 4 distinct layer shapes
	points := f.Evaluated                    // 2 arrays × 2 chips × 2 gating = 8
	distinct := layers * len(s.Arrays)       // 8 distinct (layer, array) cells
	totalSearches := uint64(layers * points) // 32 searches issued
	st := eng.Stats()
	if points != 8 {
		t.Fatalf("evaluated %d points, want 8", points)
	}
	if st.Searches != totalSearches {
		t.Fatalf("engine served %d searches, want %d", st.Searches, totalSearches)
	}
	if st.CacheMisses != uint64(distinct) {
		t.Fatalf("engine ran %d real searches for %d distinct (layer, array) cells", st.CacheMisses, distinct)
	}
	if got := st.CacheHits + st.FlightDedupes; got != totalSearches-uint64(distinct) {
		t.Fatalf("cache hits + flight dedupes = %d, want %d", got, totalSearches-uint64(distinct))
	}
}

// TestGatingDominance pins the energy model's gating guarantee as a frontier
// fact: an ungated point has the same cycles and area as its gated twin but
// strictly more energy, so spaces with gating [false, true] always produce
// dominated points.
func TestGatingDominance(t *testing.T) {
	s := exampleSpace(t)
	o := New(nil)
	ctx := context.Background()
	designs := Designs(s)
	byID := make(map[int]Design, len(designs))
	for _, d := range designs {
		byID[d.ID] = d
	}
	for _, d := range designs {
		if d.Gated {
			continue
		}
		var twin *Design
		for _, e := range designs {
			if e.Gated && e.Chips == d.Chips && e.Arrays[0] == d.Arrays[0] {
				twin = &e
				break
			}
		}
		if twin == nil {
			t.Fatalf("design %d has no gated twin", d.ID)
		}
		pu, err := o.Evaluate(ctx, s, d)
		if err != nil {
			t.Fatal(err)
		}
		pg, err := o.Evaluate(ctx, s, *twin)
		if err != nil {
			t.Fatal(err)
		}
		if pg.Metrics.Cycles != pu.Metrics.Cycles || pg.Metrics.AreaCells != pu.Metrics.AreaCells {
			t.Fatalf("gated twin of %d changes cycles/area: %+v vs %+v", d.ID, pg.Metrics, pu.Metrics)
		}
		if pg.Metrics.EnergyJ >= pu.Metrics.EnergyJ {
			t.Fatalf("gated twin of %d not strictly cheaper: %g >= %g", d.ID, pg.Metrics.EnergyJ, pu.Metrics.EnergyJ)
		}
		if !pg.Metrics.Dominates(pu.Metrics) {
			t.Fatalf("gated twin of %d does not dominate it", d.ID)
		}
	}
}

// TestEvents checks the stream is a faithful replay of the frontier: admits
// minus evicts reproduce the final point set, rejects and evicts carry the
// dominating point, and counts agree.
func TestEvents(t *testing.T) {
	s := exampleSpace(t)
	var events []Event
	f, err := New(nil).Run(context.Background(), s, func(e Event) { events = append(events, e) })
	if err != nil {
		t.Fatal(err)
	}
	live := make(map[int]*FrontierPoint)
	admitted := make(map[int]bool)
	var admits, evicts, rejects int
	for _, e := range events {
		switch e.Kind {
		case "admit":
			if e.Point == nil || e.Point.ID != e.ID || e.By != 0 {
				t.Fatalf("malformed admit %+v", e)
			}
			live[e.ID] = e.Point
			admitted[e.ID] = true
			admits++
		case "evict":
			if !admitted[e.ID] || live[e.ID] == nil {
				t.Fatalf("evict of never-admitted point %d", e.ID)
			}
			if e.By == 0 || e.Point != nil {
				t.Fatalf("malformed evict %+v", e)
			}
			delete(live, e.ID)
			evicts++
		case "reject":
			if e.By == 0 || e.Point == nil || e.Point.ID != e.ID {
				t.Fatalf("malformed reject %+v", e)
			}
			rejects++
		default:
			t.Fatalf("unknown event kind %q", e.Kind)
		}
	}
	if admits != f.Admitted || evicts != f.Evicted || rejects != f.Rejected {
		t.Fatalf("event counts (%d, %d, %d) != frontier (%d, %d, %d)",
			admits, evicts, rejects, f.Admitted, f.Evicted, f.Rejected)
	}
	if len(live) != len(f.Points) {
		t.Fatalf("replay leaves %d live points, frontier has %d", len(live), len(f.Points))
	}
	for _, p := range f.Points {
		got, ok := live[p.ID]
		if !ok {
			t.Fatalf("frontier point %d missing from replay", p.ID)
		}
		if got.Metrics != p.Metrics {
			t.Fatalf("replayed point %d metrics %+v != %+v", p.ID, got.Metrics, p.Metrics)
		}
	}
}

func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := New(nil).Run(ctx, exampleSpace(t), nil); err == nil {
		t.Fatal("cancelled Run returned no error")
	}
}

func TestRunInvalidSpace(t *testing.T) {
	if _, err := New(nil).Run(context.Background(), DesignSpace{}, nil); err == nil {
		t.Fatal("empty space accepted")
	}
}
