package optimize

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/obs"
)

// Design is one enumerated hardware configuration: an array geometry per
// layer group, a chip count per group bank, and the peripheral model.
type Design struct {
	// ID is the 1-based enumeration index; it is the deterministic
	// tiebreaker everywhere (first-enumerated wins).
	ID int

	// Arrays is the per-group array assignment, len == space Groups.
	Arrays []core.Array

	// Chips is the number of crossbars in each group's bank.
	Chips int

	// Gated selects the gated peripheral model.
	Gated bool
}

// Metrics are the three objectives a design point is scored on. Lower is
// better on every component.
type Metrics struct {
	// Cycles is the whole-network chip latency: the sum over layer groups
	// of the group's schedule makespan on its bank.
	Cycles int64 `json:"cycles"`

	// EnergyJ is the per-inference energy in joules (programming excluded),
	// summed over groups.
	EnergyJ float64 `json:"energy_j"`

	// AreaCells is the total cell area: Σ groups Chips × array cells.
	AreaCells int64 `json:"area_cells"`
}

// Dominates reports whether m weakly dominates o: no worse on every
// component. Equal metrics dominate each other, which is what makes the
// first-enumerated of two tied points win admission.
func (m Metrics) Dominates(o Metrics) bool {
	return m.Cycles <= o.Cycles && m.EnergyJ <= o.EnergyJ && m.AreaCells <= o.AreaCells
}

// FrontierPoint is one admitted design point with its scores.
type FrontierPoint struct {
	// ID is the design's enumeration index.
	ID int `json:"id"`

	// Arrays, Chips and Gated identify the hardware configuration.
	Arrays []core.Array `json:"arrays"`
	Chips  int          `json:"chips"`
	Gated  bool         `json:"gated"`

	// Metrics are the point's objective scores.
	Metrics Metrics `json:"metrics"`
}

// Event is one frontier update, emitted as each design point is evaluated.
type Event struct {
	// Kind is "admit" (point joined the frontier), "evict" (a previously
	// admitted point was dominated by a new admit) or "reject" (the
	// evaluated point was dominated on arrival).
	Kind string `json:"event"`

	// ID is the design point the event is about.
	ID int `json:"id"`

	// By is the dominating point's ID for evict/reject events; 0 for admit.
	By int `json:"by,omitempty"`

	// Point carries the evaluated point for admit and reject events so
	// streams are self-contained; nil for evict (the point was already
	// streamed when admitted).
	Point *FrontierPoint `json:"point,omitempty"`
}

// Frontier is the search result: the non-dominated points plus the
// bookkeeping that proves how much of the space was pruned.
type Frontier struct {
	// Name and Groups echo the searched space; Network names the network.
	Name    string `json:"name,omitempty"`
	Network string `json:"network"`
	Groups  int    `json:"layer_groups"`

	// Evaluated counts enumerated design points; Admitted and Evicted
	// count frontier admissions and subsequent evictions; Rejected counts
	// points dominated on arrival. Dominated = Rejected + Evicted.
	Evaluated int `json:"evaluated"`
	Admitted  int `json:"admitted"`
	Rejected  int `json:"rejected"`
	Evicted   int `json:"evicted"`
	Dominated int `json:"dominated"`

	// Points are the surviving non-dominated designs, sorted by (cycles,
	// energy, area, id).
	Points []FrontierPoint `json:"points"`
}

// Validate cross-checks the frontier's invariants: counts consistent,
// points sorted, and no point weakly dominated by another.
func (f *Frontier) Validate() error {
	if f.Dominated != f.Rejected+f.Evicted {
		return fmt.Errorf("optimize: dominated %d != rejected %d + evicted %d", f.Dominated, f.Rejected, f.Evicted)
	}
	if f.Evaluated != f.Admitted+f.Rejected {
		return fmt.Errorf("optimize: evaluated %d != admitted %d + rejected %d", f.Evaluated, f.Admitted, f.Rejected)
	}
	if len(f.Points) != f.Admitted-f.Evicted {
		return fmt.Errorf("optimize: %d points != admitted %d - evicted %d", len(f.Points), f.Admitted, f.Evicted)
	}
	if !sort.SliceIsSorted(f.Points, func(i, j int) bool { return pointLess(f.Points[i], f.Points[j]) }) {
		return fmt.Errorf("optimize: frontier points out of order")
	}
	for i, p := range f.Points {
		for j, q := range f.Points {
			if i != j && q.Metrics.Dominates(p.Metrics) {
				return fmt.Errorf("optimize: frontier point %d dominated by point %d", p.ID, q.ID)
			}
		}
	}
	return nil
}

// pointLess is the frontier's canonical order: cycles, then energy, area
// and enumeration ID.
func pointLess(a, b FrontierPoint) bool {
	if a.Metrics.Cycles != b.Metrics.Cycles {
		return a.Metrics.Cycles < b.Metrics.Cycles
	}
	if a.Metrics.EnergyJ != b.Metrics.EnergyJ {
		return a.Metrics.EnergyJ < b.Metrics.EnergyJ
	}
	if a.Metrics.AreaCells != b.Metrics.AreaCells {
		return a.Metrics.AreaCells < b.Metrics.AreaCells
	}
	return a.ID < b.ID
}

// ToJSON serializes the frontier; FromJSON parses and validates one.
func (f *Frontier) ToJSON() ([]byte, error) {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("optimize: marshal frontier: %w", err)
	}
	return append(data, '\n'), nil
}

// FromJSONFrontier parses a serialized frontier and validates its
// invariants.
func FromJSONFrontier(data []byte) (*Frontier, error) {
	var f Frontier
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("optimize: parse frontier: %w", err)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// Optimizer enumerates a DesignSpace through a compile.Compiler. Build one
// with New; a single Optimizer may be shared and reuses its compiler's
// engine memoization across Run calls, so design points sharing a (layer,
// array) cell — within one run or across runs — search it once.
type Optimizer struct {
	c *compile.Compiler
}

// New returns an Optimizer compiling through c; nil selects a fresh
// compiler on a fresh engine (compile.New(nil)).
func New(c *compile.Compiler) *Optimizer {
	if c == nil {
		c = compile.New(nil)
	}
	return &Optimizer{c: c}
}

// Compiler returns the compiler the optimizer runs on.
func (o *Optimizer) Compiler() *compile.Compiler { return o.c }

// Designs enumerates the space's design points in the canonical order:
// array assignments as an odometer (last group fastest), then the
// compile.Axes cross product of chip counts and gating. IDs start at 1.
func Designs(s DesignSpace) []Design {
	s.Normalize()
	axes := compile.Axes{
		Arrays:          compile.CountAxis(s.Chips),
		GatePeripherals: compile.BoolAxis(s.Gating),
	}
	opts := axes.Candidates()
	groups := s.groups()
	assign := make([]int, groups)
	var out []Design
	for {
		arrays := make([]core.Array, groups)
		for g, ai := range assign {
			arrays[g] = s.Arrays[ai]
		}
		for _, opt := range opts {
			out = append(out, Design{
				ID:     len(out) + 1,
				Arrays: arrays,
				Chips:  opt.Arrays,
				Gated:  opt.GatePeripherals,
			})
		}
		g := groups - 1
		for g >= 0 {
			assign[g]++
			if assign[g] < len(s.Arrays) {
				break
			}
			assign[g] = 0
			g--
		}
		if g < 0 {
			return out
		}
	}
}

// Evaluate scores one design: each layer group is compiled as a sub-network
// on its assigned array with the design's chip count and peripheral model,
// and the group totals are summed.
func (o *Optimizer) Evaluate(ctx context.Context, s DesignSpace, d Design) (FrontierPoint, error) {
	groups := s.LayerGroups()
	if len(d.Arrays) != len(groups) {
		return FrontierPoint{}, fmt.Errorf("optimize: design %d assigns %d arrays to %d groups",
			d.ID, len(d.Arrays), len(groups))
	}
	p := FrontierPoint{ID: d.ID, Arrays: d.Arrays, Chips: d.Chips, Gated: d.Gated}
	opts := compile.Options{Arrays: d.Chips, GatePeripherals: d.Gated}
	for g, layers := range groups {
		sub := model.Network{Name: s.Network.Name, Layers: layers}
		plan, err := o.c.Compile(ctx, compile.NewRequest(sub, d.Arrays[g], opts))
		if err != nil {
			return FrontierPoint{}, fmt.Errorf("optimize: design %d group %d on %v: %w", d.ID, g, d.Arrays[g], err)
		}
		p.Metrics.Cycles += plan.Totals.Makespan
		p.Metrics.EnergyJ += plan.Totals.Energy.EnergyTotal
		p.Metrics.AreaCells += int64(d.Chips) * d.Arrays[g].Cells()
	}
	return p, nil
}

// Run searches the space: every design point is evaluated in enumeration
// order and admitted to the frontier unless an already-admitted point weakly
// dominates it; an admission evicts the frontier points it dominates. emit,
// when non-nil, receives one Event per admission, eviction and rejection as
// they happen — the streaming surface. Cancelling ctx aborts the search
// inside the current compile.
func (o *Optimizer) Run(ctx context.Context, s DesignSpace, emit func(Event)) (*Frontier, error) {
	s.Normalize()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	ctx, sp := obs.Start(ctx, "optimize")
	defer sp.End()
	sp.SetStr("network", s.Network.Name)

	f := &Frontier{Name: s.Name, Network: s.Network.Name, Groups: s.groups()}
	var frontier []FrontierPoint
	for _, d := range Designs(s) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		p, err := o.Evaluate(ctx, s, d)
		if err != nil {
			return nil, err
		}
		f.Evaluated++
		if by, dominated := dominatedBy(frontier, p.Metrics); dominated {
			f.Rejected++
			f.Dominated++
			if emit != nil {
				emit(Event{Kind: "reject", ID: p.ID, By: by, Point: &p})
			}
			continue
		}
		// Admit p, evicting the points it now dominates. Admission already
		// established that no survivor weakly dominates p, so any point p
		// weakly dominates here is strictly worse somewhere.
		kept := frontier[:0]
		for _, q := range frontier {
			if p.Metrics.Dominates(q.Metrics) {
				f.Evicted++
				f.Dominated++
				if emit != nil {
					emit(Event{Kind: "evict", ID: q.ID, By: p.ID})
				}
				continue
			}
			kept = append(kept, q)
		}
		frontier = append(kept, p)
		f.Admitted++
		if emit != nil {
			emit(Event{Kind: "admit", ID: p.ID, Point: &p})
		}
	}
	sort.Slice(frontier, func(i, j int) bool { return pointLess(frontier[i], frontier[j]) })
	f.Points = frontier
	sp.SetInt("evaluated", int64(f.Evaluated)).SetInt("frontier", int64(len(f.Points)))
	return f, nil
}

// dominatedBy returns the ID of the first frontier point (in admission
// order) that weakly dominates m, if any.
func dominatedBy(frontier []FrontierPoint, m Metrics) (int, bool) {
	for _, q := range frontier {
		if q.Metrics.Dominates(m) {
			return q.ID, true
		}
	}
	return 0, false
}
