// Package textplot renders the reproduction's tables and figures as plain
// text: aligned tables with CSV export, horizontal bar charts for the
// paper's bar figures (Figs. 8, 9) and line charts for its curve figures
// (Figs. 5b, 7).
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Table is a titled grid of cells with optional footnotes.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of cells (stringified with %v).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns, an underlined title and
// footnotes.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title + "\n")
		b.WriteString(strings.Repeat("=", len(t.Title)) + "\n")
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		b.WriteString("\n")
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
		total := 0
		for _, w := range widths {
			total += w + 2
		}
		b.WriteString(strings.Repeat("-", max(total-2, 1)) + "\n")
	}
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("note: " + n + "\n")
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header then rows); cells
// containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteString("\n")
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
	}
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// pad right-pads s to width w.
func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Series is one named sequence of y-values for charts.
type Series struct {
	Name   string
	Values []float64
}

// HBars renders one horizontal bar per label, scaled to width characters at
// the maximum value.
func HBars(title string, labels []string, values []float64, width int) string {
	if width < 8 {
		width = 8
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title + "\n")
	}
	labelW := 0
	maxV := 0.0
	for i, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
		if i < len(values) && values[i] > maxV {
			maxV = values[i]
		}
	}
	for i, l := range labels {
		v := 0.0
		if i < len(values) {
			v = values[i]
		}
		n := 0
		if maxV > 0 {
			n = int(math.Round(v / maxV * float64(width)))
		}
		fmt.Fprintf(&b, "%s | %s %.3g\n", pad(l, labelW), strings.Repeat("#", n), v)
	}
	return b.String()
}

// GroupedBars renders one bar per (category, series) pair, grouping bars of
// the same category together — the layout of the paper's Figs. 8 and 9.
func GroupedBars(title string, categories []string, series []Series, width int) string {
	if width < 8 {
		width = 8
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title + "\n")
	}
	catW, nameW, maxV := 0, 0, 0.0
	for _, c := range categories {
		if len(c) > catW {
			catW = len(c)
		}
	}
	for _, s := range series {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
		for _, v := range s.Values {
			if v > maxV {
				maxV = v
			}
		}
	}
	for ci, c := range categories {
		for si, s := range series {
			v := 0.0
			if ci < len(s.Values) {
				v = s.Values[ci]
			}
			n := 0
			if maxV > 0 {
				n = int(math.Round(v / maxV * float64(width)))
			}
			label := pad(c, catW)
			if si > 0 {
				label = strings.Repeat(" ", catW)
			}
			fmt.Fprintf(&b, "%s %s | %s %.3g\n",
				label, pad(s.Name, nameW), strings.Repeat("#", n), v)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// markers distinguish series in Line charts.
var markers = []byte{'*', 'o', '+', 'x', '@', '%'}

// Line renders series as an ASCII scatter/line chart over the given x-axis
// labels (one column group per x position), with a legend.
func Line(title string, xLabels []string, series []Series, height int) string {
	if height < 4 {
		height = 4
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title + "\n")
	}
	maxV, minV := math.Inf(-1), math.Inf(1)
	for _, s := range series {
		for _, v := range s.Values {
			maxV = math.Max(maxV, v)
			minV = math.Min(minV, v)
		}
	}
	if math.IsInf(maxV, -1) {
		return b.String()
	}
	if maxV == minV {
		maxV = minV + 1
	}
	colW := 4
	for _, l := range xLabels {
		if len(l)+1 > colW {
			colW = len(l) + 1
		}
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", colW*len(xLabels)))
	}
	for si, s := range series {
		mk := markers[si%len(markers)]
		for xi, v := range s.Values {
			if xi >= len(xLabels) {
				break
			}
			row := int(math.Round((maxV - v) / (maxV - minV) * float64(height-1)))
			grid[row][xi*colW] = mk
		}
	}
	for r, line := range grid {
		y := maxV - (maxV-minV)*float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%8.3g |%s\n", y, string(line))
	}
	b.WriteString(strings.Repeat(" ", 9) + "+" + strings.Repeat("-", colW*len(xLabels)) + "\n")
	b.WriteString(strings.Repeat(" ", 10))
	for _, l := range xLabels {
		b.WriteString(pad(l, colW))
	}
	b.WriteString("\n")
	for si, s := range series {
		fmt.Fprintf(&b, "  %c = %s\n", markers[si%len(markers)], s.Name)
	}
	return b.String()
}
