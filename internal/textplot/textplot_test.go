package textplot

import (
	"strings"
	"testing"
)

func TestTableString(t *testing.T) {
	tb := &Table{
		Title:  "T",
		Header: []string{"layer", "cycles"},
		Notes:  []string{"hello"},
	}
	tb.AddRow("conv1", 1431)
	tb.AddRow("conv2-long-name", 22)
	s := tb.String()
	if !strings.Contains(s, "T\n=\n") {
		t.Errorf("missing underlined title:\n%s", s)
	}
	if !strings.Contains(s, "conv2-long-name") || !strings.Contains(s, "1431") {
		t.Errorf("missing cells:\n%s", s)
	}
	if !strings.Contains(s, "note: hello") {
		t.Errorf("missing note:\n%s", s)
	}
	lines := strings.Split(s, "\n")
	// Header and data rows align: "cycles" column starts at the same
	// offset in both rows.
	var headerLine, row1 string
	for i, l := range lines {
		if strings.HasPrefix(l, "layer") {
			headerLine = l
			row1 = lines[i+2]
		}
	}
	if strings.Index(headerLine, "cycles") != strings.Index(row1, "1431") {
		t.Errorf("columns misaligned:\n%s", s)
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{Header: []string{"a", "b"}}
	tb.AddRow("x,y", `quote"inside`)
	tb.AddRow(1, 2.5)
	csv := tb.CSV()
	want := "a,b\n\"x,y\",\"quote\"\"inside\"\n1,2.5\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

func TestHBars(t *testing.T) {
	s := HBars("title", []string{"aa", "b"}, []float64{2, 1}, 10)
	if !strings.Contains(s, "title") {
		t.Error("missing title")
	}
	if !strings.Contains(s, "aa | ##########") {
		t.Errorf("max bar not full width:\n%s", s)
	}
	if !strings.Contains(s, "b  | ##### 1") {
		t.Errorf("half bar wrong:\n%s", s)
	}
	// Zero values and missing values render empty bars.
	s = HBars("", []string{"z", "m"}, []float64{0}, 10)
	if !strings.Contains(s, "z |  0") || !strings.Contains(s, "m |  0") {
		t.Errorf("zero bar wrong:\n%s", s)
	}
}

func TestGroupedBars(t *testing.T) {
	s := GroupedBars("g", []string{"l1", "l2"}, []Series{
		{Name: "im2col", Values: []float64{1, 1}},
		{Name: "vw", Values: []float64{4, 2}},
	}, 8)
	if !strings.Contains(s, "l1 im2col") {
		t.Errorf("category+series label missing:\n%s", s)
	}
	if !strings.Contains(s, "vw     | ######## 4") {
		t.Errorf("scaled bar missing:\n%s", s)
	}
	// Series shorter than categories must not panic.
	s = GroupedBars("", []string{"a", "b"}, []Series{{Name: "s", Values: []float64{1}}}, 8)
	if !strings.Contains(s, "b") {
		t.Errorf("missing category:\n%s", s)
	}
}

func TestLine(t *testing.T) {
	s := Line("fig", []string{"7", "14", "28"}, []Series{
		{Name: "sq", Values: []float64{1, 1, 2}},
		{Name: "rect", Values: []float64{1, 2, 3}},
	}, 6)
	if !strings.Contains(s, "fig") || !strings.Contains(s, "* = sq") || !strings.Contains(s, "o = rect") {
		t.Errorf("legend missing:\n%s", s)
	}
	if !strings.Contains(s, "14") {
		t.Errorf("x labels missing:\n%s", s)
	}
	if strings.Count(s, "o") < 3 { // 3 points + legend
		t.Errorf("series points missing:\n%s", s)
	}
}

func TestLineDegenerate(t *testing.T) {
	if s := Line("t", nil, nil, 5); !strings.Contains(s, "t") {
		t.Errorf("empty chart should still carry title: %q", s)
	}
	// Constant series must not divide by zero.
	s := Line("c", []string{"1", "2"}, []Series{{Name: "k", Values: []float64{5, 5}}}, 5)
	if !strings.Contains(s, "k") {
		t.Errorf("constant series missing:\n%s", s)
	}
}

func TestSmallWidthsClamped(t *testing.T) {
	if s := HBars("", []string{"a"}, []float64{1}, 0); !strings.Contains(s, "########") {
		t.Errorf("width clamp failed:\n%s", s)
	}
	if s := GroupedBars("", []string{"a"}, []Series{{Name: "s", Values: []float64{1}}}, 0); !strings.Contains(s, "########") {
		t.Errorf("grouped width clamp failed:\n%s", s)
	}
	if s := Line("", []string{"x"}, []Series{{Name: "s", Values: []float64{1}}}, 0); s == "" {
		t.Error("line height clamp failed")
	}
}
