package conv

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/tensor"
)

// TestReferenceHandComputed checks a tiny convolution against values worked
// out by hand: 1 channel, 3x3 IFM, 2x2 kernel, valid, stride 1.
func TestReferenceHandComputed(t *testing.T) {
	l := core.Layer{IW: 3, IH: 3, KW: 2, KH: 2, IC: 1, OC: 1}
	ifm := tensor.NewTensor3(1, 3, 3)
	// 1 2 3
	// 4 5 6
	// 7 8 9
	for i := 0; i < 9; i++ {
		ifm.Data[i] = float64(i + 1)
	}
	w := tensor.NewTensor4(1, 1, 2, 2)
	// 1 0
	// 0 1   (sum of main diagonal of each window)
	w.Set(0, 0, 0, 0, 1)
	w.Set(0, 0, 1, 1, 1)
	out, err := Reference(l, ifm, w)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{1 + 5, 2 + 6}, {4 + 8, 5 + 9}}
	for y := 0; y < 2; y++ {
		for x := 0; x < 2; x++ {
			if out.At(0, y, x) != want[y][x] {
				t.Errorf("out[%d][%d] = %v, want %v", y, x, out.At(0, y, x), want[y][x])
			}
		}
	}
}

func TestReferenceStrideAndPad(t *testing.T) {
	l := core.Layer{IW: 4, IH: 4, KW: 3, KH: 3, IC: 1, OC: 1,
		StrideW: 2, StrideH: 2, PadW: 1, PadH: 1}
	ifm := tensor.NewTensor3(1, 4, 4)
	for i := range ifm.Data {
		ifm.Data[i] = 1
	}
	w := tensor.NewTensor4(1, 1, 3, 3)
	for i := range w.Data {
		w.Data[i] = 1
	}
	out, err := Reference(l, ifm, w)
	if err != nil {
		t.Fatal(err)
	}
	if out.H != 2 || out.W != 2 {
		t.Fatalf("output %dx%d, want 2x2", out.H, out.W)
	}
	// Top-left window sees a 2x2 live region (padding elsewhere).
	if out.At(0, 0, 0) != 4 {
		t.Errorf("corner = %v, want 4", out.At(0, 0, 0))
	}
	// Center-ish window at (1,1) covers rows/cols 1..3 fully inside: 9.
	if out.At(0, 1, 1) != 9 {
		t.Errorf("center = %v, want 9", out.At(0, 1, 1))
	}
}

func TestCheckShapes(t *testing.T) {
	l := core.Layer{IW: 5, IH: 5, KW: 3, KH: 3, IC: 2, OC: 3}
	good3 := tensor.NewTensor3(2, 5, 5)
	good4 := tensor.NewTensor4(3, 2, 3, 3)
	if err := CheckShapes(l, good3, good4); err != nil {
		t.Fatalf("valid shapes rejected: %v", err)
	}
	if err := CheckShapes(l, tensor.NewTensor3(1, 5, 5), good4); err == nil {
		t.Error("wrong IFM channels accepted")
	}
	if err := CheckShapes(l, good3, tensor.NewTensor4(3, 2, 2, 3)); err == nil {
		t.Error("wrong kernel height accepted")
	}
	bad := l
	bad.IC = 0
	if err := CheckShapes(bad, good3, good4); err == nil {
		t.Error("invalid layer accepted")
	}
	if _, err := Reference(bad, good3, good4); err == nil {
		t.Error("Reference accepted invalid layer")
	}
	if _, err := WeightMatrix(bad, good4); err == nil {
		t.Error("WeightMatrix accepted invalid layer")
	}
	if _, err := Im2colMatrix(bad, good3); err == nil {
		t.Error("Im2colMatrix accepted invalid layer")
	}
	if _, err := WeightMatrix(l, tensor.NewTensor4(1, 2, 3, 3)); err == nil {
		t.Error("WeightMatrix accepted wrong OC")
	}
	if _, err := Im2colMatrix(l, tensor.NewTensor3(2, 4, 5)); err == nil {
		t.Error("Im2colMatrix accepted wrong IFM")
	}
}

func TestRowCoordRoundTrip(t *testing.T) {
	l := core.Layer{IW: 8, IH: 8, KW: 3, KH: 2, IC: 4, OC: 1}
	seen := make(map[[3]int]bool)
	for r := 0; r < l.KernelRows(); r++ {
		c, ky, kx := RowCoord(l, r)
		if c < 0 || c >= l.IC || ky < 0 || ky >= l.KH || kx < 0 || kx >= l.KW {
			t.Fatalf("RowCoord(%d) out of range: %d,%d,%d", r, c, ky, kx)
		}
		key := [3]int{c, ky, kx}
		if seen[key] {
			t.Fatalf("RowCoord(%d) duplicates %v", r, key)
		}
		seen[key] = true
		if got := (c*l.KH+ky)*l.KW + kx; got != r {
			t.Fatalf("RowCoord(%d) does not invert: %d", r, got)
		}
	}
}

// TestLoweredMatchesReference is the central lowering identity: im2col
// matrices reproduce the direct convolution exactly, over random layers
// including stride and padding.
func TestLoweredMatchesReference(t *testing.T) {
	f := func(seed uint64, iw, ih, k, ic, oc, stride, pad uint8) bool {
		l := core.Layer{
			IW: int(iw%10) + 4, IH: int(ih%10) + 4,
			KW: int(k%3) + 1, KH: int(k%3) + 1,
			IC: int(ic%4) + 1, OC: int(oc%4) + 1,
			StrideW: int(stride%2) + 1, StrideH: int(stride%2) + 1,
			PadW: int(pad % 2), PadH: int(pad % 2),
		}
		if l.Validate() != nil {
			return true
		}
		ifm := tensor.RandTensor3(seed, l.IC, l.IH, l.IW)
		w := tensor.RandTensor4(seed^0xabcdef, l.OC, l.IC, l.KH, l.KW)
		ref, err := Reference(l, ifm, w)
		if err != nil {
			return false
		}
		low, err := Lowered(l, ifm, w)
		if err != nil {
			return false
		}
		return ref.Equal(low)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestGroupedMatchesExpandedDense is the grouped-convolution differential
// identity: a grouped convolution on compact OC×ICg weights equals a dense
// convolution whose kernel is the G-block-diagonal expansion of those
// weights (zeros everywhere a connection crosses groups). Random layers
// cover proper grouping and the depthwise G == IC edge case.
func TestGroupedMatchesExpandedDense(t *testing.T) {
	f := func(seed uint64, iw, ih, k, icg, ocg, g, stride, pad uint8) bool {
		groups := int(g%5) + 2
		l := core.Layer{
			IW: int(iw%10) + 4, IH: int(ih%10) + 4,
			KW: int(k%3) + 1, KH: int(k%3) + 1,
			IC: groups * (int(icg%3) + 1), OC: groups * (int(ocg%3) + 1),
			StrideW: int(stride%2) + 1, StrideH: int(stride%2) + 1,
			PadW: int(pad % 2), PadH: int(pad % 2),
			Groups: groups,
		}
		if seed%4 == 0 { // depthwise edge case: one channel per group
			l.IC, l.OC, l.Groups = groups, groups, groups
		}
		if l.Validate() != nil {
			return true
		}
		ifm := tensor.RandTensor3(seed, l.IC, l.IH, l.IW)
		w := tensor.RandTensor4(seed^0xabcdef, l.OC, l.ICg(), l.KH, l.KW)
		grouped, err := Reference(l, ifm, w)
		if err != nil {
			return false
		}
		expanded, err := ExpandGrouped(l, w)
		if err != nil {
			return false
		}
		dense, err := Reference(DenseEquivalent(l), ifm, expanded)
		if err != nil {
			return false
		}
		return grouped.Equal(dense)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestGroupedShapesAndDenseOnlyLowering: grouped layers take compact OC×ICg
// weights (dense-shaped kernels are rejected), and the im2col lowering
// helpers stay dense-only.
func TestGroupedShapesAndDenseOnlyLowering(t *testing.T) {
	l := core.Layer{IW: 6, IH: 6, KW: 3, KH: 3, IC: 8, OC: 8, Groups: 4}
	compact := tensor.NewTensor4(8, 2, 3, 3)
	if err := CheckShapes(l, tensor.NewTensor3(8, 6, 6), compact); err != nil {
		t.Fatalf("compact grouped weights rejected: %v", err)
	}
	if err := CheckShapes(l, tensor.NewTensor3(8, 6, 6), tensor.NewTensor4(8, 8, 3, 3)); err == nil {
		t.Error("dense-shaped weights accepted for grouped layer")
	}
	if _, err := WeightMatrix(l, compact); err == nil {
		t.Error("WeightMatrix accepted grouped layer")
	}
	if _, err := Im2colMatrix(l, tensor.RandTensor3(1, 8, 6, 6)); err == nil {
		t.Error("Im2colMatrix accepted grouped layer")
	}
	// ExpandGrouped produces block-diagonal dense weights: entries outside a
	// kernel's own group are zero.
	for i := range compact.Data {
		compact.Data[i] = 1
	}
	dense, err := ExpandGrouped(l, compact)
	if err != nil {
		t.Fatal(err)
	}
	for oc := 0; oc < 8; oc++ {
		for ci := 0; ci < 8; ci++ {
			want := 0.0
			if ci/2 == oc/2 { // same group (ICg = OCg = 2)
				want = 1
			}
			if got := dense.At(oc, ci, 1, 1); got != want {
				t.Fatalf("expanded[oc=%d][ci=%d] = %v, want %v", oc, ci, got, want)
			}
		}
	}
}

// TestIm2colMatrixShape pins the matrix dimensions against the paper's
// description: K·K·IC rows, one column per window.
func TestIm2colMatrixShape(t *testing.T) {
	l := core.Layer{IW: 6, IH: 5, KW: 3, KH: 3, IC: 2, OC: 4}
	ifm := tensor.RandTensor3(11, 2, 5, 6)
	am, err := Im2colMatrix(l, ifm)
	if err != nil {
		t.Fatal(err)
	}
	if am.Rows != 18 || am.Cols != l.Windows() {
		t.Fatalf("im2col matrix %dx%d, want 18x%d", am.Rows, am.Cols, l.Windows())
	}
	w := tensor.RandTensor4(12, 4, 2, 3, 3)
	wm, err := WeightMatrix(l, w)
	if err != nil {
		t.Fatal(err)
	}
	if wm.Rows != 18 || wm.Cols != 4 {
		t.Fatalf("weight matrix %dx%d, want 18x4", wm.Rows, wm.Cols)
	}
}

// TestConvolutionLinearity: conv(a+b) == conv(a) + conv(b) on the IFM.
func TestConvolutionLinearity(t *testing.T) {
	l := core.Layer{IW: 7, IH: 7, KW: 3, KH: 3, IC: 2, OC: 3}
	w := tensor.RandTensor4(3, 3, 2, 3, 3)
	a := tensor.RandTensor3(1, 2, 7, 7)
	b := tensor.RandTensor3(2, 2, 7, 7)
	sum := a.Clone()
	for i := range sum.Data {
		sum.Data[i] += b.Data[i]
	}
	oa, err := Reference(l, a, w)
	if err != nil {
		t.Fatal(err)
	}
	ob, err := Reference(l, b, w)
	if err != nil {
		t.Fatal(err)
	}
	os, err := Reference(l, sum, w)
	if err != nil {
		t.Fatal(err)
	}
	for i := range os.Data {
		if os.Data[i] != oa.Data[i]+ob.Data[i] {
			t.Fatalf("linearity violated at %d", i)
		}
	}
}

// TestTranslationEquivariance: shifting the IFM by the stride shifts the
// output by one position.
func TestTranslationEquivariance(t *testing.T) {
	l := core.Layer{IW: 8, IH: 8, KW: 3, KH: 3, IC: 1, OC: 1}
	w := tensor.RandTensor4(9, 1, 1, 3, 3)
	ifm := tensor.RandTensor3(10, 1, 8, 8)
	shifted := tensor.NewTensor3(1, 8, 8)
	for y := 0; y < 8; y++ {
		for x := 1; x < 8; x++ {
			shifted.Set(0, y, x, ifm.At(0, y, x-1))
		}
	}
	a, err := Reference(l, ifm, w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Reference(l, shifted, w)
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < a.H; y++ {
		for x := 0; x+1 < a.W; x++ {
			if a.At(0, y, x) != b.At(0, y, x+1) {
				t.Fatalf("equivariance violated at %d,%d", y, x)
			}
		}
	}
}
