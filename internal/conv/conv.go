// Package conv is the convolution substrate: a direct reference convolution
// (the golden model every PIM mapping is verified against) and the im2col
// lowering that turns a convolution into a matrix product, exactly as the
// paper's Fig. 2(a) unrolls kernels into crossbar columns.
package conv

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/tensor"
)

// CheckShapes validates that ifm and w match the layer description l. For a
// grouped layer the weight tensor is the compact grouped form: O = OC full
// output channels, but only C = ICg = IC/Groups input channels per kernel
// (kernel oc sees input block oc/OCg only); for a dense layer ICg == IC.
func CheckShapes(l core.Layer, ifm *tensor.Tensor3, w *tensor.Tensor4) error {
	l = l.Normalized()
	if err := l.Validate(); err != nil {
		return err
	}
	if ifm.C != l.IC || ifm.H != l.IH || ifm.W != l.IW {
		return fmt.Errorf("conv: IFM %v does not match layer %v", ifm, l)
	}
	if w.O != l.OC || w.C != l.ICg() || w.H != l.KH || w.W != l.KW {
		return fmt.Errorf("conv: weights %v do not match layer %v", w, l)
	}
	return nil
}

// Reference computes the layer's convolution directly (no lowering): the
// golden model. The returned OFM has shape OC×OutH×OutW. Grouped layers sum
// each output channel over its group's ICg input channels only.
func Reference(l core.Layer, ifm *tensor.Tensor3, w *tensor.Tensor4) (*tensor.Tensor3, error) {
	l = l.Normalized()
	if err := CheckShapes(l, ifm, w); err != nil {
		return nil, err
	}
	padded := ifm.Pad(l.PadH, l.PadW)
	out := tensor.NewTensor3(l.OC, l.OutH(), l.OutW())
	icg, ocg := l.ICg(), l.OCg()
	for oc := 0; oc < l.OC; oc++ {
		cBase := (oc / ocg) * icg // first input channel of oc's group
		for oy := 0; oy < l.OutH(); oy++ {
			for ox := 0; ox < l.OutW(); ox++ {
				var sum float64
				for ci := 0; ci < icg; ci++ {
					for ky := 0; ky < l.KH; ky++ {
						iy := oy*l.StrideH + ky
						for kx := 0; kx < l.KW; kx++ {
							ix := ox*l.StrideW + kx
							sum += padded.At(cBase+ci, iy, ix) * w.At(oc, ci, ky, kx)
						}
					}
				}
				out.Set(oc, oy, ox, sum)
			}
		}
	}
	return out, nil
}

// ExpandGrouped turns a grouped layer's compact weights (OC×ICg×KH×KW) into
// the block-diagonal dense equivalent (OC×IC×KH×KW): kernel oc keeps its
// values on its group's input channels and is zero elsewhere. Running the
// dense Reference on the expanded weights reproduces the grouped convolution
// exactly, which the differential tests pin.
func ExpandGrouped(l core.Layer, w *tensor.Tensor4) (*tensor.Tensor4, error) {
	l = l.Normalized()
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if w.O != l.OC || w.C != l.ICg() || w.H != l.KH || w.W != l.KW {
		return nil, fmt.Errorf("conv: weights %v do not match layer %v", w, l)
	}
	icg, ocg := l.ICg(), l.OCg()
	dense := tensor.NewTensor4(l.OC, l.IC, l.KH, l.KW)
	for oc := 0; oc < l.OC; oc++ {
		cBase := (oc / ocg) * icg
		for ci := 0; ci < icg; ci++ {
			for ky := 0; ky < l.KH; ky++ {
				for kx := 0; kx < l.KW; kx++ {
					dense.Set(oc, cBase+ci, ky, kx, w.At(oc, ci, ky, kx))
				}
			}
		}
	}
	return dense, nil
}

// DenseEquivalent returns l with grouping removed: the dense layer that,
// given ExpandGrouped weights, computes the same OFM as the grouped layer.
func DenseEquivalent(l core.Layer) core.Layer {
	l.Groups = 0
	return l
}

// WeightMatrix lowers the OIHW weights into the im2col weight matrix: one
// column per output channel, rows ordered channel-major then kernel
// raster-order — the same order RowCoord/Im2colMatrix use, and the order in
// which kernels are unrolled into crossbar columns.
func WeightMatrix(l core.Layer, w *tensor.Tensor4) (*tensor.Matrix, error) {
	l = l.Normalized()
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if l.NumGroups() > 1 {
		// The flat lowering has no block structure; expand the weights with
		// ExpandGrouped and lower the dense equivalent instead.
		return nil, fmt.Errorf("conv: WeightMatrix is dense-only; layer %v has %d groups", l, l.NumGroups())
	}
	if w.O != l.OC || w.C != l.IC || w.H != l.KH || w.W != l.KW {
		return nil, fmt.Errorf("conv: weights %v do not match layer %v", w, l)
	}
	m := tensor.NewMatrix(l.KernelRows(), l.OC)
	for oc := 0; oc < l.OC; oc++ {
		for c := 0; c < l.IC; c++ {
			for ky := 0; ky < l.KH; ky++ {
				for kx := 0; kx < l.KW; kx++ {
					r := (c*l.KH+ky)*l.KW + kx
					m.Set(r, oc, w.At(oc, c, ky, kx))
				}
			}
		}
	}
	return m, nil
}

// Im2colMatrix lowers the (padded) IFM into the im2col activation matrix:
// one column per output position (window), one row per kernel element, in
// the same row order as WeightMatrix. Columns are ordered oy-major.
func Im2colMatrix(l core.Layer, ifm *tensor.Tensor3) (*tensor.Matrix, error) {
	l = l.Normalized()
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if l.NumGroups() > 1 {
		return nil, fmt.Errorf("conv: Im2colMatrix is dense-only; layer %v has %d groups", l, l.NumGroups())
	}
	if ifm.C != l.IC || ifm.H != l.IH || ifm.W != l.IW {
		return nil, fmt.Errorf("conv: IFM %v does not match layer %v", ifm, l)
	}
	padded := ifm.Pad(l.PadH, l.PadW)
	m := tensor.NewMatrix(l.KernelRows(), l.Windows())
	for oy := 0; oy < l.OutH(); oy++ {
		for ox := 0; ox < l.OutW(); ox++ {
			col := oy*l.OutW() + ox
			for c := 0; c < l.IC; c++ {
				for ky := 0; ky < l.KH; ky++ {
					iy := oy*l.StrideH + ky
					for kx := 0; kx < l.KW; kx++ {
						r := (c*l.KH+ky)*l.KW + kx
						m.Set(r, col, padded.At(c, iy, ox*l.StrideW+kx))
					}
				}
			}
		}
	}
	return m, nil
}

// Lowered computes the convolution through the im2col lowering:
// OFM[oc][pos] = WeightMatrixᵀ[oc]·Im2colMatrix[:,pos]. It exists to
// cross-validate the two lowerings against Reference.
func Lowered(l core.Layer, ifm *tensor.Tensor3, w *tensor.Tensor4) (*tensor.Tensor3, error) {
	l = l.Normalized()
	if err := CheckShapes(l, ifm, w); err != nil {
		return nil, err
	}
	wm, err := WeightMatrix(l, w)
	if err != nil {
		return nil, err
	}
	am, err := Im2colMatrix(l, ifm)
	if err != nil {
		return nil, err
	}
	out := tensor.NewTensor3(l.OC, l.OutH(), l.OutW())
	for pos := 0; pos < am.Cols; pos++ {
		in := make([]float64, am.Rows)
		for r := 0; r < am.Rows; r++ {
			in[r] = am.At(r, pos)
		}
		res := wm.MulVec(in)
		oy, ox := pos/l.OutW(), pos%l.OutW()
		for oc, v := range res {
			out.Set(oc, oy, ox, v)
		}
	}
	return out, nil
}

// RowCoord maps an im2col row index r (0 ≤ r < KernelRows) to its (channel,
// kernel-y, kernel-x) coordinates in the canonical channel-major order.
func RowCoord(l core.Layer, r int) (c, ky, kx int) {
	kk := l.KH * l.KW
	c = r / kk
	rem := r % kk
	return c, rem / l.KW, rem % l.KW
}
