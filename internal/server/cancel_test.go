package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
)

// gateSearcher is a core.Searcher whose leaf searches block until they can
// take a token from release (or their context ends). Tests use it to hold a
// compilation at a deterministic point and to make cancellation observable
// without timing assumptions.
type gateSearcher struct {
	release chan struct{}
	inner   core.Serial
}

func newGateSearcher() *gateSearcher {
	return &gateSearcher{release: make(chan struct{})}
}

// allow lets n gated searches proceed.
func (g *gateSearcher) allow(n int) {
	for range n {
		g.release <- struct{}{}
	}
}

func (g *gateSearcher) wait(ctx context.Context) error {
	select {
	case <-g.release:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (g *gateSearcher) SearchVWSDK(ctx context.Context, l core.Layer, a core.Array) (core.Result, error) {
	if err := g.wait(ctx); err != nil {
		return core.Result{}, err
	}
	return g.inner.SearchVWSDK(ctx, l, a)
}

func (g *gateSearcher) SearchSDK(ctx context.Context, l core.Layer, a core.Array) (core.Result, error) {
	if err := g.wait(ctx); err != nil {
		return core.Result{}, err
	}
	return g.inner.SearchSDK(ctx, l, a)
}

func (g *gateSearcher) SearchSMD(ctx context.Context, l core.Layer, a core.Array) (core.Result, error) {
	if err := g.wait(ctx); err != nil {
		return core.Result{}, err
	}
	return g.inner.SearchSMD(ctx, l, a)
}

func (g *gateSearcher) SearchVariant(ctx context.Context, l core.Layer, a core.Array, v core.Variant) (core.Result, error) {
	if err := g.wait(ctx); err != nil {
		return core.Result{}, err
	}
	return g.inner.SearchVariant(ctx, l, a, v)
}

func (g *gateSearcher) SearchNetwork(ctx context.Context, layers []core.Layer, a core.Array) (core.NetworkResult, error) {
	return core.SearchNetworkWith(ctx, layers, a, g.SearchVWSDK)
}

// oneLayerNet returns a one-layer inline network spec with a distinguishing
// IFM width, so each call is its own plan-cache key.
func oneLayerNet(iw int) string {
	return fmt.Sprintf(`{"name": "n%d", "layers": [{"name": "c", "iw": %d, "ih": %d, "kw": 3, "kh": 3, "ic": 4, "oc": 4}]}`, iw, iw, iw)
}

// TestCancelledCompileFreesSlot is the regression test for the PR's
// headline fix: before r.Context() was plumbed through, a client that
// disconnected mid-compile kept its semaphore slot until the search ran to
// completion. Now, with one compilation slot total: request A (a large
// exhaustive search) starts and occupies the slot, request B queues behind
// it, A's client disconnects — and B must complete, which can only happen
// if A's cancellation actually freed the slot. Afterwards the engine's
// candidate counter must be quiescent: cancelled work stops, it does not
// keep costing candidates in the background.
func TestCancelledCompileFreesSlot(t *testing.T) {
	eng := engine.New(engine.WithExhaustiveSearch())
	_, ts := newTestServer(t, Config{Engine: eng, MaxConcurrent: 1})

	// A: a 2048×2048-IFM layer whose exhaustive sweep enumerates ~4.2M
	// candidates (tens of milliseconds) — plenty of time to observe it
	// running and cancel it mid-search.
	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()
	bigBody := fmt.Sprintf(`{"network": %s, "array": "512x512"}`, oneLayerNet(2048))
	reqA, err := http.NewRequestWithContext(ctxA, http.MethodPost, ts.URL+"/v1/compile", strings.NewReader(bigBody))
	if err != nil {
		t.Fatal(err)
	}
	aDone := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(reqA)
		if resp != nil {
			resp.Body.Close()
		}
		aDone <- err
	}()

	// Wait until A's search is actually running (the engine recorded the
	// miss), so the cancel lands mid-search, not before admission.
	deadline := time.Now().Add(10 * time.Second)
	for eng.Stats().CacheMisses == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request A never started its search")
		}
		time.Sleep(time.Millisecond)
	}

	// B: a small compile that must queue behind A's slot.
	bDone := make(chan error, 1)
	go func() {
		resp, data := post(t, ts.URL+"/v1/compile", fmt.Sprintf(`{"network": %s, "array": "64x64"}`, oneLayerNet(8)))
		if resp.StatusCode != http.StatusOK {
			bDone <- fmt.Errorf("B: status %d: %s", resp.StatusCode, data)
			return
		}
		bDone <- nil
	}()

	cancelA() // the client hangs up mid-compile
	if err := <-aDone; err == nil {
		t.Error("A's client call succeeded despite the cancel")
	}
	select {
	case err := <-bDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("B never completed: A's cancelled compile did not free its slot")
	}

	// No further work: once B is done the engine's counters must be still —
	// A's search is not grinding on in the background.
	st1 := eng.Stats()
	time.Sleep(30 * time.Millisecond)
	st2 := eng.Stats()
	if st1.CandidatesCosted != st2.CandidatesCosted || st1.Searches != st2.Searches {
		t.Errorf("engine still working after cancel: %+v -> %+v", st1, st2)
	}
}

// TestCancelledWhileQueuedFreesQueueSlot pins the admission-control half: a
// request whose client is already gone when it reaches the queue gives its
// queue position back immediately.
func TestCancelledWhileQueuedFreesQueueSlot(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, MaxQueue: 1})
	s.sem <- struct{}{} // the slot is busy
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.acquire(ctx); err == nil {
		t.Fatal("cancelled acquire succeeded")
	}
	if got := s.queued.Load(); got != 0 {
		t.Errorf("queued gauge = %d after cancelled wait, want 0", got)
	}
	// The queue position is reusable: a live caller can take it (and the
	// slot, once released).
	s.release()
	if err := s.acquire(context.Background()); err != nil {
		t.Fatalf("queue slot not reusable: %v", err)
	}
	s.release()
}

// TestRequestTimeout504 pins the -timeout satellite: a compilation that
// outlives the configured per-request deadline is abandoned and answered
// with a structured 504. The gated searcher never releases, so the deadline
// is the only way out — no timing assumptions.
func TestRequestTimeout504(t *testing.T) {
	gate := newGateSearcher()
	_, ts := newTestServer(t, Config{Searcher: gate, RequestTimeout: 20 * time.Millisecond})
	resp, body := post(t, ts.URL+"/v1/compile", fmt.Sprintf(`{"network": %s, "array": "64x64"}`, oneLayerNet(8)))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, body)
	}
	var e struct {
		Error struct {
			Status  int    `json:"status"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("504 body not structured JSON: %v (%s)", err, body)
	}
	if e.Error.Status != http.StatusGatewayTimeout || !strings.Contains(e.Error.Message, "deadline") {
		t.Errorf("error payload %+v", e.Error)
	}
}

// TestSweepMidStreamCancelPartialNDJSON is the deterministic mid-sweep
// cancel: a 3-cell sweep through the gated searcher, the client reads two
// complete summary lines, then disconnects. The stream must end with
// exactly those two lines — cancelled cells produce no output — and the
// server side must unwind (the sweep semaphore frees for the next sweep).
func TestSweepMidStreamCancelPartialNDJSON(t *testing.T) {
	gate := newGateSearcher()
	s, ts := newTestServer(t, Config{Searcher: gate, MaxConcurrent: 1})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	body := fmt.Sprintf(`{"networks": [%s], "arrays": ["64x64", "128x128", "256x256"]}`, oneLayerNet(8))
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/sweep", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	scanner := bufio.NewScanner(resp.Body)
	var sums []sweepSummary
	for range 2 {
		gate.allow(1) // let exactly one more cell's search finish
		if !scanner.Scan() {
			t.Fatalf("stream ended after %d lines: %v", len(sums), scanner.Err())
		}
		var sum sweepSummary
		if err := json.Unmarshal(scanner.Bytes(), &sum); err != nil {
			t.Fatalf("line %d not JSON: %v (%s)", len(sums), err, scanner.Bytes())
		}
		if sum.Error != "" {
			t.Fatalf("completed cell carries error: %+v", sum)
		}
		sums = append(sums, sum)
	}
	cancel() // client disconnects; the third cell is still gated

	if scanner.Scan() {
		t.Fatalf("received a line after disconnecting: %s", scanner.Bytes())
	}
	if len(sums) != 2 {
		t.Fatalf("got %d complete cells, want 2", len(sums))
	}

	// The server unwound: the sweep stream slot frees (without the fix the
	// third cell would pin it until its search "finished", which is never
	// for a gated search).
	deadline := time.Now().Add(10 * time.Second)
	for len(s.sweepSem) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("sweep stream slot never freed after client disconnect")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSweepDeadlineTrailerLine pins the deadline behavior of a synchronous
// sweep for a still-connected client: completed cells stream normally and
// the cut-off is marked by one final error line mentioning the deadline.
func TestSweepDeadlineTrailerLine(t *testing.T) {
	gate := newGateSearcher()
	_, ts := newTestServer(t, Config{Searcher: gate, MaxConcurrent: 1, RequestTimeout: 150 * time.Millisecond})
	go gate.allow(1) // exactly one cell may complete; the rest hit the deadline
	body := fmt.Sprintf(`{"networks": [%s], "arrays": ["64x64", "128x128"]}`, oneLayerNet(8))
	resp, data := post(t, ts.URL+"/v1/sweep", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 1 summary + 1 trailer: %s", len(lines), data)
	}
	var first, trailer sweepSummary
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil || first.Error != "" {
		t.Errorf("first line not a clean summary: %v %+v", err, first)
	}
	if err := json.Unmarshal([]byte(lines[1]), &trailer); err != nil {
		t.Fatalf("trailer not JSON: %v", err)
	}
	if !strings.Contains(trailer.Error, "deadline") {
		t.Errorf("trailer error %q does not mention the deadline", trailer.Error)
	}
}

// TestMethodNotAllowedStructured pins the satellite that replaced the mux's
// plain-text 405/404 defaults: every method mismatch and unknown path gets
// the same structured error JSON as the rest of the API, with an Allow
// header on 405s.
func TestMethodNotAllowedStructured(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	checkStructured := func(method, path string, wantStatus int, wantAllow string) {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Errorf("%s %s: status %d, want %d", method, path, resp.StatusCode, wantStatus)
			return
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s %s: content type %q, want application/json", method, path, ct)
		}
		if wantAllow != "" {
			if allow := resp.Header.Get("Allow"); allow != wantAllow {
				t.Errorf("%s %s: Allow %q, want %q", method, path, allow, wantAllow)
			}
		}
		var e struct {
			Error struct {
				Status  int    `json:"status"`
				Message string `json:"message"`
			} `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Errorf("%s %s: body not structured error JSON: %v", method, path, err)
			return
		}
		if e.Error.Status != wantStatus || e.Error.Message == "" {
			t.Errorf("%s %s: error payload %+v", method, path, e.Error)
		}
	}
	checkStructured(http.MethodGet, "/v1/compile", http.StatusMethodNotAllowed, "POST")
	checkStructured(http.MethodDelete, "/v1/sweep", http.StatusMethodNotAllowed, "POST")
	checkStructured(http.MethodPost, "/healthz", http.StatusMethodNotAllowed, "GET")
	checkStructured(http.MethodPut, "/v1/jobs", http.StatusMethodNotAllowed, "GET, POST")
	checkStructured(http.MethodPost, "/v1/jobs/job-1", http.StatusMethodNotAllowed, "DELETE, GET")
	checkStructured(http.MethodGet, "/nope", http.StatusNotFound, "")
	checkStructured(http.MethodGet, "/v1/compile/extra", http.StatusNotFound, "")

	// HEAD is implicitly served by GET handlers (health probes use it), as
	// under the mux's own method patterns.
	resp, err := http.Head(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("HEAD /healthz: status %d, want 200", resp.StatusCode)
	}
	if resp2, err := http.Head(ts.URL + "/v1/compile"); err != nil {
		t.Fatal(err)
	} else {
		resp2.Body.Close()
		if resp2.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("HEAD /v1/compile: status %d, want 405 (no GET handler)", resp2.StatusCode)
		}
	}
}
