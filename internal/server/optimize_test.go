package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/optimize"
)

// testSpace is a small two-layer design space: 2 arrays × 2 chip counts ×
// 2 peripheral models = 8 design points, with gating [false, true]
// guaranteeing dominated points (an ungated point is strictly dominated by
// its gated twin).
const testSpace = `{
  "name": "t-space",
  "network": {"name": "T", "layers": [
    {"name": "c1", "iw": 16, "ih": 16, "kw": 3, "kh": 3, "ic": 3, "oc": 8},
    {"name": "c2", "iw": 8, "ih": 8, "kw": 3, "kh": 3, "ic": 8, "oc": 16}
  ]},
  "arrays": ["64x64", "128x128"],
  "chips": [1, 2],
  "gating": [false, true]
}`

// decodeOptimizeStream splits an NDJSON optimize response into its event
// lines and the final frontier.
func decodeOptimizeStream(t *testing.T, body []byte) ([]optimize.Event, *optimize.Frontier) {
	t.Helper()
	var events []optimize.Event
	var frontier *optimize.Frontier
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var kind struct {
			Event string `json:"event"`
		}
		if err := json.Unmarshal(line, &kind); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		switch kind.Event {
		case "frontier":
			if frontier != nil {
				t.Fatal("two frontier lines in one stream")
			}
			var fin struct {
				Frontier *optimize.Frontier `json:"frontier"`
			}
			if err := json.Unmarshal(line, &fin); err != nil {
				t.Fatal(err)
			}
			frontier = fin.Frontier
		case "admit", "evict", "reject":
			if frontier != nil {
				t.Fatal("event line after the frontier line")
			}
			var e optimize.Event
			if err := json.Unmarshal(line, &e); err != nil {
				t.Fatal(err)
			}
			events = append(events, e)
		default:
			t.Fatalf("unknown stream event %q", kind.Event)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events, frontier
}

// TestOptimizeStreamsNDJSON is the endpoint acceptance test: the stream
// carries one event per frontier decision, ends with the full frontier, the
// frontier matches a direct optimize.Run byte-for-byte, contains only
// non-dominated points, and the run shows up on /stats and /metrics.
func TestOptimizeStreamsNDJSON(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, body := post(t, ts.URL+"/v1/optimize", testSpace)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q", ct)
	}
	events, f := decodeOptimizeStream(t, body)
	if f == nil {
		t.Fatal("stream has no frontier line")
	}
	if err := f.Validate(); err != nil {
		t.Fatalf("streamed frontier invalid: %v", err)
	}
	if f.Evaluated != 8 || len(f.Points) < 1 || f.Dominated < 1 {
		t.Fatalf("unexpected frontier shape: evaluated=%d points=%d dominated=%d",
			f.Evaluated, len(f.Points), f.Dominated)
	}
	if len(events) != f.Admitted+f.Evicted+f.Rejected {
		t.Fatalf("%d event lines for %d frontier decisions",
			len(events), f.Admitted+f.Evicted+f.Rejected)
	}

	// The streamed frontier equals a direct library run on the same spec.
	space, err := optimize.FromJSON([]byte(testSpace))
	if err != nil {
		t.Fatal(err)
	}
	want, err := optimize.New(nil).Run(context.Background(), space, nil)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := f.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := want.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("streamed frontier differs from direct run:\n%s\nvs\n%s", gotJSON, wantJSON)
	}

	// Counters: /stats and /metrics both report the run.
	st := s.Stats()
	if st.Optimize.Runs != 1 || st.Optimize.PointsEvaluated != uint64(f.Evaluated) {
		t.Fatalf("optimize stats %+v", st.Optimize)
	}
	if st.Optimize.Admitted != uint64(f.Admitted) || st.Optimize.Evicted != uint64(f.Evicted) ||
		st.Optimize.Rejected != uint64(f.Rejected) {
		t.Fatalf("optimize stats %+v vs frontier %+v", st.Optimize, f)
	}
	_, metrics := get(t, ts.URL+"/metrics")
	for _, name := range []string{
		"vwsdk_optimize_runs_total 1",
		"vwsdk_optimize_points_evaluated_total 8",
		"vwsdk_optimize_points_dominated_total",
	} {
		if !strings.Contains(string(metrics), name) {
			t.Errorf("metrics exposition missing %q", name)
		}
	}
}

func TestOptimizeErrorPaths(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name   string
		body   string
		status int
	}{
		{"malformed JSON", `{`, http.StatusBadRequest},
		{"empty body", ``, http.StatusBadRequest},
		{"no network", `{"arrays": ["64x64"]}`, http.StatusUnprocessableEntity},
		{"no arrays", `{"network": "VGG-13"}`, http.StatusUnprocessableEntity},
		{"empty arrays axis", `{"network": "VGG-13", "arrays": []}`, http.StatusUnprocessableEntity},
		{"bad array", `{"network": "VGG-13", "arrays": ["sixtyfour"]}`, http.StatusUnprocessableEntity},
		{"bad chips", `{"network": "VGG-13", "arrays": ["64x64"], "chips": [0]}`, http.StatusUnprocessableEntity},
		{"unknown network", `{"network": "NoSuchNet", "arrays": ["64x64"]}`, http.StatusUnprocessableEntity},
		{"groups exceed layers", `{"network": "VGG-13", "arrays": ["64x64"], "layer_groups": 11}`, http.StatusUnprocessableEntity},
		{"point explosion", `{"network": "VGG-13", "arrays": ["1x1","2x2","4x4","8x8","16x16","32x32","64x64","128x128"], "layer_groups": 5}`, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		resp, body := post(t, ts.URL+"/v1/optimize", tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d (want %d): %s", tc.name, resp.StatusCode, tc.status, body)
			continue
		}
		var e struct {
			Error struct {
				Status  int    `json:"status"`
				Message string `json:"message"`
			} `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error.Status != tc.status {
			t.Errorf("%s: unstructured error body %s", tc.name, body)
		}
	}
	resp, _ := http.Get(ts.URL + "/v1/optimize")
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/optimize = %d, want 405", resp.StatusCode)
	}
}

func TestOptimizeCapacity503(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1})
	// Occupy the one sweep/optimize stream slot.
	s.sweepSem <- struct{}{}
	defer func() { <-s.sweepSem }()
	resp, body := post(t, ts.URL+"/v1/optimize", testSpace)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
}

func TestOptimizeJobRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts.URL+"/v1/jobs", `{"optimize": `+testSpace+`}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var created struct {
		Job struct {
			ID         string `json:"id"`
			Kind       string `json:"kind"`
			CellsTotal int    `json:"cells_total"`
		} `json:"job"`
	}
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	if created.Job.Kind != "optimize" || created.Job.CellsTotal != 8 {
		t.Fatalf("created job %+v", created.Job)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("optimize job did not finish")
		}
		status, detail := get(t, ts.URL+"/v1/jobs/"+created.Job.ID)
		if status != http.StatusOK {
			t.Fatalf("job get status %d: %s", status, detail)
		}
		var snap struct {
			Job struct {
				State          string          `json:"state"`
				Error          string          `json:"error"`
				CellsCompleted int             `json:"cells_completed"`
				Frontier       json.RawMessage `json:"frontier"`
			} `json:"job"`
		}
		if err := json.Unmarshal(detail, &snap); err != nil {
			t.Fatal(err)
		}
		switch snap.Job.State {
		case "done":
			if snap.Job.CellsCompleted != 8 {
				t.Fatalf("done job completed %d of 8", snap.Job.CellsCompleted)
			}
			f, err := optimize.FromJSONFrontier(snap.Job.Frontier)
			if err != nil {
				t.Fatalf("job frontier invalid: %v\n%s", err, snap.Job.Frontier)
			}
			if f.Evaluated != 8 || len(f.Points) < 1 || f.Dominated < 1 {
				t.Fatalf("job frontier shape: %+v", f)
			}
			return
		case "failed", "cancelled":
			t.Fatalf("job ended %s: %s", snap.Job.State, snap.Job.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestOptimizeJobValidationEager mirrors the sweep job behavior: a bad space
// is a 422 at submission, not a failed job.
func TestOptimizeJobValidationEager(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts.URL+"/v1/jobs", `{"optimize": {"network": "NoSuchNet", "arrays": ["64x64"]}}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	resp, body = post(t, ts.URL+"/v1/jobs", `{"optimize": `+testSpace+`, "sweep": {"networks": ["VGG-13"], "arrays": ["64x64"]}}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("two-kind job: status %d: %s", resp.StatusCode, body)
	}
}
