package server

import (
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"

	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/model"
)

// sweepRequest is the POST /v1/sweep body: the cross product of networks ×
// arrays × variants, each element in the same form the compile endpoint
// accepts. An empty variants list falls back to options.variant (or the
// scheme's default search) once per (network, array); variants other than
// "full" only make sense with the (default) vw scheme.
type sweepRequest struct {
	Networks []json.RawMessage `json:"networks"`
	Arrays   []json.RawMessage `json:"arrays"`
	Variants []string          `json:"variants"`
	Options  *requestOptions   `json:"options"`
}

// maxSweepCells bounds one sweep request's cross product.
const maxSweepCells = 4096

// sweepCell is one resolved (network, array, variant) combination.
type sweepCell struct {
	network model.Network
	array   core.Array
	variant string
	opts    compile.Options
}

// sweepSummary is one NDJSON line of the sweep stream: the cell identity
// plus its plan totals, or the per-cell error. Errors are per cell so one
// failing combination reports itself in-line instead of tearing down the
// whole stream.
type sweepSummary struct {
	Network        string  `json:"network"`
	Array          string  `json:"array"`
	Scheme         string  `json:"scheme"`
	Variant        string  `json:"variant,omitempty"`
	Cycles         int64   `json:"cycles,omitempty"`
	Im2colCycles   int64   `json:"im2col_cycles,omitempty"`
	Speedup        float64 `json:"speedup,omitempty"`
	UtilizationPct float64 `json:"utilization_pct,omitempty"`
	Makespan       int64   `json:"makespan,omitempty"`
	EnergyTotalJ   float64 `json:"energy_total_j,omitempty"`
	Cached         bool    `json:"cached,omitempty"`
	Error          string  `json:"error,omitempty"`
}

// cells resolves the request's cross product up front, so reference errors
// surface as one structured 422 before the stream commits to a 200.
func (req *sweepRequest) cells() ([]sweepCell, *httpError) {
	if len(req.Networks) == 0 {
		return nil, errorf(http.StatusUnprocessableEntity, `missing "networks"`)
	}
	if len(req.Arrays) == 0 {
		return nil, errorf(http.StatusUnprocessableEntity, `missing "arrays"`)
	}
	base, herr := req.Options.compileOptions()
	if herr != nil {
		return nil, herr
	}
	// An explicit variants list wins; otherwise a single options.variant
	// applies to every cell (it must not be silently clobbered — the same
	// field is honored by /v1/compile), and the default is the full search.
	variants := req.Variants
	if len(variants) == 0 {
		if req.Options != nil && req.Options.Variant != "" {
			variants = []string{req.Options.Variant}
		} else {
			variants = []string{""}
		}
	}
	networks := make([]model.Network, len(req.Networks))
	for i, raw := range req.Networks {
		n, herr := resolveNetworkRef(raw)
		if herr != nil {
			return nil, herr
		}
		networks[i] = n
	}
	arrays := make([]core.Array, len(req.Arrays))
	for i, raw := range req.Arrays {
		a, herr := resolveArrayRef(raw)
		if herr != nil {
			return nil, herr
		}
		arrays[i] = a
	}
	total := len(networks) * len(arrays) * len(variants)
	if total > maxSweepCells {
		return nil, errorf(http.StatusUnprocessableEntity,
			"sweep of %d cells exceeds the %d-cell limit", total, maxSweepCells)
	}
	cells := make([]sweepCell, 0, total)
	for _, n := range networks {
		for _, a := range arrays {
			for _, vName := range variants {
				v, herr := parseVariant(vName)
				if herr != nil {
					return nil, herr
				}
				opts := base
				opts.Variant = v
				cells = append(cells, sweepCell{network: n, array: a, variant: vName, opts: opts})
			}
		}
	}
	return cells, nil
}

// handleSweep streams one NDJSON summary per cell, in completion order.
// Sweeps are admitted through their own semaphore (one unit per stream,
// sized like the compilation pool; beyond it: 503), and each stream fans
// its cells over at most one worker per compilation slot — so M sweeps park
// O(M × MaxConcurrent) goroutines, not M × 4096, and cannot pile up
// unboundedly behind the compile endpoint's slots. Each line is flushed as
// soon as its compilation (or cache hit) finishes.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	if herr := decodeJSONBody(w, r, s.maxBody, &req); herr != nil {
		writeError(w, herr)
		return
	}
	cells, herr := req.cells()
	if herr != nil {
		writeError(w, herr)
		return
	}
	select {
	case s.sweepSem <- struct{}{}:
		defer func() { <-s.sweepSem }()
	default:
		s.rejected.Add(1)
		writeError(w, errorf(http.StatusServiceUnavailable,
			"server at capacity: all %d concurrent sweep streams are taken", cap(s.sweepSem)))
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	results := make(chan sweepSummary)
	go func() {
		workers := min(len(cells), cap(s.sem))
		var next atomic.Int64
		var wg sync.WaitGroup
		for range workers {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(cells) {
						return
					}
					results <- s.runCell(r, cells[i])
				}
			}()
		}
		wg.Wait()
		close(results)
	}()

	enc := json.NewEncoder(w)
	broken := false // client gone: keep draining so cell goroutines can exit
	for sum := range results {
		if broken {
			continue
		}
		if err := enc.Encode(sum); err != nil {
			broken = true
			continue
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// runCell compiles one sweep cell through the plan cache (blocking
// admission — the cells belong to one already-admitted request) and
// summarizes its totals.
func (s *Server) runCell(r *http.Request, c sweepCell) sweepSummary {
	sum := sweepSummary{
		Network: c.network.Name,
		Array:   c.array.String(),
		Scheme:  c.opts.Scheme.String(),
		Variant: c.variant,
	}
	key, err := compile.Key(c.network, c.array, c.opts)
	if err != nil {
		sum.Error = err.Error()
		return sum
	}
	entry, cached, err := s.compilePlan(r, key, c.network, c.array, c.opts, true)
	if err != nil {
		sum.Error = err.Error()
		return sum
	}
	t := entry.plan.Totals
	sum.Cycles = t.Cycles
	sum.Im2colCycles = t.Im2colCycles
	sum.Speedup = t.Speedup
	sum.UtilizationPct = t.Utilization
	sum.Makespan = t.Makespan
	sum.EnergyTotalJ = t.Energy.EnergyTotal
	sum.Cached = cached
	return sum
}
