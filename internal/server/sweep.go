package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"

	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/model"
)

// sweepRequest is the POST /v1/sweep body (and the "sweep" member of a job
// submission): the cross product of networks × arrays × variants, each
// element in the same form the compile endpoint accepts. An empty variants
// list falls back to options.variant (or the scheme's default search) once
// per (network, array); variants other than "full" only make sense with the
// (default) vw scheme.
type sweepRequest struct {
	Networks []json.RawMessage `json:"networks"`
	Arrays   []json.RawMessage `json:"arrays"`
	Variants []string          `json:"variants"`
	Options  *requestOptions   `json:"options"`
}

// maxSweepCells bounds one sweep request's cross product.
const maxSweepCells = 4096

// sweepCell is one resolved (network, array, variant) combination — a
// compile.Request plus the wire-form variant name the summary echoes.
type sweepCell struct {
	req     compile.Request
	variant string
}

// sweepSummary is one NDJSON line of the sweep stream (and one entry of a
// sweep job's results): the cell identity plus its plan totals, or the
// per-cell error. Errors are per cell so one failing combination reports
// itself in-line instead of tearing down the whole stream.
type sweepSummary struct {
	Network        string  `json:"network"`
	Array          string  `json:"array"`
	Scheme         string  `json:"scheme"`
	Variant        string  `json:"variant,omitempty"`
	Cycles         int64   `json:"cycles,omitempty"`
	Im2colCycles   int64   `json:"im2col_cycles,omitempty"`
	Speedup        float64 `json:"speedup,omitempty"`
	UtilizationPct float64 `json:"utilization_pct,omitempty"`
	Makespan       int64   `json:"makespan,omitempty"`
	EnergyTotalJ   float64 `json:"energy_total_j,omitempty"`
	Cached         bool    `json:"cached,omitempty"`
	Error          string  `json:"error,omitempty"`
}

// cells resolves the request's cross product up front, so reference errors
// surface as one structured 422 before the stream commits to a 200 (or a
// job is accepted).
func (req *sweepRequest) cells() ([]sweepCell, *httpError) {
	if len(req.Networks) == 0 {
		return nil, errorf(http.StatusUnprocessableEntity, `missing "networks"`)
	}
	if len(req.Arrays) == 0 {
		return nil, errorf(http.StatusUnprocessableEntity, `missing "arrays"`)
	}
	base, herr := req.Options.compileOptions()
	if herr != nil {
		return nil, herr
	}
	// An explicit variants list wins; otherwise a single options.variant
	// applies to every cell (it must not be silently clobbered — the same
	// field is honored by /v1/compile), and the default is the full search.
	variants := req.Variants
	if len(variants) == 0 {
		if req.Options != nil && req.Options.Variant != "" {
			variants = []string{req.Options.Variant}
		} else {
			variants = []string{""}
		}
	}
	networks := make([]model.Network, len(req.Networks))
	for i, raw := range req.Networks {
		n, herr := resolveNetworkRef(raw)
		if herr != nil {
			return nil, herr
		}
		networks[i] = n
	}
	arrays := make([]core.Array, len(req.Arrays))
	for i, raw := range req.Arrays {
		a, herr := resolveArrayRef(raw)
		if herr != nil {
			return nil, herr
		}
		arrays[i] = a
	}
	total := len(networks) * len(arrays) * len(variants)
	if total > maxSweepCells {
		return nil, errorf(http.StatusUnprocessableEntity,
			"sweep of %d cells exceeds the %d-cell limit", total, maxSweepCells)
	}
	cells := make([]sweepCell, 0, total)
	for _, n := range networks {
		for _, a := range arrays {
			for _, vName := range variants {
				v, herr := parseVariant(vName)
				if herr != nil {
					return nil, herr
				}
				opts := base
				opts.Variant = v
				cells = append(cells, sweepCell{req: compile.NewRequest(n, a, opts), variant: vName})
			}
		}
	}
	return cells, nil
}

// runSweep is the one sweep executor behind both the synchronous NDJSON
// stream and sweep jobs: it fans cells over at most one worker per
// compilation slot, delivers each cell's summary to emit in completion
// order as soon as its compilation (or cache hit) finishes, and stops
// dispatching new cells once ctx ends — cells already past admission stop
// at their searches' next cancellation checkpoint and are not emitted.
// It returns ctx's error when the sweep was cut short, nil when every cell
// was delivered. emit is called from the caller's goroutine only.
func (s *Server) runSweep(ctx context.Context, cells []sweepCell, emit func(sweepSummary)) error {
	results := make(chan sweepSummary)
	go func() {
		workers := min(len(cells), cap(s.sem))
		var next atomic.Int64
		var wg sync.WaitGroup
		for range workers {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					// The dispatch checkpoint: no new cell starts after the
					// sweep's context ends.
					if i >= len(cells) || ctx.Err() != nil {
						return
					}
					sum, err := s.runCell(ctx, cells[i])
					if err != nil {
						// Context end mid-cell: the cell is incomplete, not
						// failed — nothing is emitted for it.
						return
					}
					results <- sum
				}
			}()
		}
		wg.Wait()
		close(results)
	}()
	delivered := 0
	for sum := range results {
		delivered++
		emit(sum)
	}
	if delivered == len(cells) {
		// Every cell was delivered: the sweep is complete even if the
		// context expired in the instant after the last cell finished.
		return nil
	}
	return ctx.Err()
}

// handleSweep streams one NDJSON summary per cell, in completion order.
// Sweeps are admitted through their own semaphore (one unit per stream,
// sized like the compilation pool; beyond it: 503) and then run through
// runSweep — the same machinery sweep jobs use — under the request's
// context, so a dropped connection stops scheduling cells and frees every
// slot. A sweep cut short by the per-request deadline appends one final
// error line so a still-connected client can tell the stream from a
// complete one.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	if herr := decodeJSONBody(w, r, s.maxBody, &req); herr != nil {
		writeError(w, herr)
		return
	}
	cells, herr := req.cells()
	if herr != nil {
		writeError(w, herr)
		return
	}
	select {
	case s.sweepSem <- struct{}{}:
		defer func() { <-s.sweepSem }()
	default:
		s.rejected.Add(1)
		writeError(w, errorf(http.StatusServiceUnavailable,
			"server at capacity: all %d concurrent sweep streams are taken", cap(s.sweepSem)))
		return
	}

	ctx, cancel := s.requestContext(r)
	defer cancel()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		// Commit the headers now: the client sees the 200 as soon as the
		// stream is admitted, not when the first (possibly slow) cell lands.
		flusher.Flush()
	}

	lb := linePool.Get().(*lineBuf)
	defer linePool.Put(lb)
	broken := false // client gone: keep draining so cell goroutines can exit
	err := s.runSweep(ctx, cells, func(sum sweepSummary) {
		if broken {
			return
		}
		if lb.write(w, sum) != nil {
			broken = true
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	})
	if errors.Is(err, context.DeadlineExceeded) && !broken {
		lb.write(w, sweepSummary{Error: fmt.Sprintf("sweep aborted: %v", err)})
	}
}

// lineBuf encodes NDJSON lines through one reusable buffer/encoder pair, so
// a streaming sweep pays a per-stream — not per-line — encoder allocation.
type lineBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

// linePool recycles lineBufs across sweep streams.
var linePool = sync.Pool{New: func() any {
	lb := &lineBuf{}
	lb.enc = json.NewEncoder(&lb.buf)
	return lb
}}

// write encodes v as one NDJSON line into the pooled buffer and writes it
// to w in a single Write call. Sweep summaries and optimize frontier events
// share this path.
func (lb *lineBuf) write(w io.Writer, v any) error {
	lb.buf.Reset()
	if err := lb.enc.Encode(v); err != nil {
		return err
	}
	_, err := w.Write(lb.buf.Bytes())
	return err
}

// runCell compiles one sweep cell through the plan cache (blocking
// admission — the cells belong to one already-admitted request or job) and
// summarizes its totals. A context end is returned as the error — the cell
// is incomplete, not failed; every other failure is folded into the
// summary's Error field so the sweep keeps going.
func (s *Server) runCell(ctx context.Context, c sweepCell) (sweepSummary, error) {
	sum := sweepSummary{
		Network: c.req.Network.Name,
		Array:   c.req.Array.String(),
		Scheme:  c.req.Options.Scheme.String(),
		Variant: c.variant,
	}
	key, err := compile.Key(c.req)
	if err != nil {
		sum.Error = err.Error()
		return sum, nil
	}
	entry, cached, err := s.compilePlan(ctx, key, c.req, true, false)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return sweepSummary{}, err
		}
		sum.Error = err.Error()
		return sum, nil
	}
	t := entry.plan.Totals
	sum.Cycles = t.Cycles
	sum.Im2colCycles = t.Im2colCycles
	sum.Speedup = t.Speedup
	sum.UtilizationPct = t.Utilization
	sum.Makespan = t.Makespan
	sum.EnergyTotalJ = t.Energy.EnergyTotal
	sum.Cached = cached
	return sum, nil
}
