package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := get(t, ts.URL+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var hz struct {
		Status  string `json:"status"`
		Version string `json:"version"`
	}
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || hz.Version == "" {
		t.Errorf("healthz = %+v", hz)
	}
}

func TestNetworksListsZoo(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := get(t, ts.URL+"/v1/networks")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var list struct {
		Networks []struct {
			Name   string `json:"name"`
			Layers int    `json:"layers"`
			MACs   int64  `json:"macs"`
		} `json:"networks"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	byName := map[string]int{}
	for _, n := range list.Networks {
		byName[n.Name] = n.Layers
		if n.MACs <= 0 {
			t.Errorf("%s: MACs %d", n.Name, n.MACs)
		}
	}
	if byName["VGG-13"] != 10 || byName["ResNet-18"] != 5 {
		t.Errorf("zoo listing wrong: %v", byName)
	}
	if byName["MobileNet-V2"] == 0 || byName["ResNeXt-50"] == 0 {
		t.Errorf("grouped networks missing from zoo listing: %v", byName)
	}
}

// TestCompileMatchesDirectAndGolden is the acceptance differential: the
// /v1/compile response for VGG-13 on 512×512 must be byte-identical to the
// compact encoding of compile.Compile called directly, and semantically
// identical (through the canonical indented serialization) to the committed
// golden plan from the pipeline's own test suite.
func TestCompileMatchesDirectAndGolden(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts.URL+"/v1/compile", `{"network": "VGG-13", "array": "512x512"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}

	direct, err := compile.New(core.Serial{}).Compile(context.Background(),
		compile.NewRequest(model.VGG13(), core.Array{Rows: 512, Cols: 512}, compile.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := direct.Encode(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want.Bytes()) {
		t.Error("served plan differs from compile.Compile compact bytes")
	}

	// The served body re-validates and, re-serialized canonically, still
	// matches the committed golden file byte for byte.
	served, err := compile.FromJSON(body)
	if err != nil {
		t.Fatalf("served plan does not re-validate: %v", err)
	}
	replayed, err := served.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile("../compile/testdata/vgg13_512_plan.golden.json")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(replayed, golden) {
		t.Error("served plan differs from the committed golden file")
	}

	// A second identical request is a plan-cache hit with the same bytes.
	resp2, body2 := post(t, ts.URL+"/v1/compile", `{"network": "VGG-13", "array": "512x512"}`)
	if resp2.Header.Get("X-Cache") != "hit" {
		t.Errorf("second request X-Cache = %q, want hit", resp2.Header.Get("X-Cache"))
	}
	if !bytes.Equal(body, body2) {
		t.Error("cached plan bytes differ")
	}
}

// TestCompileInlineSpec posts an inline network spec (the example file) and
// re-validates the response totals through compile.FromJSON.
func TestCompileInlineSpec(t *testing.T) {
	spec, err := os.ReadFile("../../examples/networks/tinynet.json")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{})
	req := fmt.Sprintf(`{"network": %s, "array": {"rows": 256, "cols": 256}, "options": {"arrays": 4}}`, spec)
	resp, body := post(t, ts.URL+"/v1/compile", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	p, err := compile.FromJSON(body)
	if err != nil {
		t.Fatalf("response does not re-validate: %v", err)
	}
	if p.Network.Name != "TinyNet" || p.Options.Arrays != 4 || p.Totals.Cycles <= 0 {
		t.Errorf("plan = %s arrays=%d cycles=%d", p.Network.Name, p.Options.Arrays, p.Totals.Cycles)
	}
	if p.Totals.Speedup < 1 {
		t.Errorf("speedup %v < 1", p.Totals.Speedup)
	}
}

// TestCompileGrouped serves grouped convolutions end-to-end: the MobileNet-V2
// zoo entry and the grouped example spec both compile over /v1/compile, the
// response re-validates, and the depthwise layers keep their group structure
// in the returned plan.
func TestCompileGrouped(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts.URL+"/v1/compile", `{"network": "MobileNet-V2", "array": "512x512"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	p, err := compile.FromJSON(body)
	if err != nil {
		t.Fatalf("response does not re-validate: %v", err)
	}
	grouped := 0
	for _, lp := range p.Layers {
		if lp.Search.Best.Layer.NumGroups() > 1 {
			grouped++
		}
	}
	if grouped == 0 {
		t.Error("served MobileNet-V2 plan has no grouped layers")
	}
	if p.Totals.Speedup < 1 {
		t.Errorf("speedup %v < 1", p.Totals.Speedup)
	}

	spec, err := os.ReadFile("../../examples/networks/mobile.json")
	if err != nil {
		t.Fatal(err)
	}
	req := fmt.Sprintf(`{"network": %s, "array": "256x256"}`, spec)
	resp, body = post(t, ts.URL+"/v1/compile", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("inline grouped spec: status %d: %s", resp.StatusCode, body)
	}
	if p, err = compile.FromJSON(body); err != nil || p.Network.Name != "MobileTiny" {
		t.Fatalf("inline grouped spec response: %v %q", err, p.Network.Name)
	}
}

// TestCompileCoalescing is the acceptance concurrency test: N identical
// concurrent requests perform exactly one underlying search, asserted via
// the engine's own counters, and all clients get the same bytes.
func TestCompileCoalescing(t *testing.T) {
	eng := engine.New()
	s, ts := newTestServer(t, Config{Engine: eng})
	const clients = 16
	req := `{"network": {"name": "one", "layers": [
	  {"name": "c", "iw": 56, "ih": 56, "kw": 3, "kh": 3, "ic": 128, "oc": 128}]},
	  "array": "512x512"}`

	var wg sync.WaitGroup
	start := make(chan struct{})
	bodies := make([][]byte, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, err := http.Post(ts.URL+"/v1/compile", "application/json", strings.NewReader(req))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			bodies[i], errs[i] = io.ReadAll(resp.Body)
		}(i)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("client %d got different bytes", i)
		}
	}

	if st := eng.Stats(); st.Searches != 1 || st.CacheMisses != 1 {
		t.Errorf("engine ran %d searches (%d misses), want exactly 1 for %d identical requests",
			st.Searches, st.CacheMisses, clients)
	}
	pc := s.Stats().PlanCache
	if pc.Misses != 1 {
		t.Errorf("plan cache misses = %d, want 1", pc.Misses)
	}
	if pc.Hits+pc.Misses < clients {
		t.Errorf("hits %d + misses %d < %d clients", pc.Hits, pc.Misses, clients)
	}
}

// TestCompileErrorPaths pins the structured error JSON and its status for
// every rejection class.
func TestCompileErrorPaths(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 512})
	cases := []struct {
		name   string
		body   string
		status int
	}{
		{"malformed JSON", `{"network": `, http.StatusBadRequest},
		{"unknown field", `{"bogus": 1}`, http.StatusBadRequest},
		{"trailing garbage", `{"network": "VGG-13", "array": "64x64"} extra`, http.StatusBadRequest},
		{"missing network", `{"array": "64x64"}`, http.StatusUnprocessableEntity},
		{"unknown zoo name", `{"network": "LeNet-5", "array": "64x64"}`, http.StatusUnprocessableEntity},
		{"network wrong type", `{"network": 42, "array": "64x64"}`, http.StatusUnprocessableEntity},
		{"empty spec", `{"network": {"name": "t", "layers": []}, "array": "64x64"}`, http.StatusUnprocessableEntity},
		{"spec with typo", `{"network": {"name": "t", "layers": [{"nom": "c"}]}, "array": "64x64"}`, http.StatusUnprocessableEntity},
		{"missing array", `{"network": "VGG-13"}`, http.StatusUnprocessableEntity},
		{"zero array", `{"network": "VGG-13", "array": "0x0"}`, http.StatusUnprocessableEntity},
		{"array wrong type", `{"network": "VGG-13", "array": [512, 512]}`, http.StatusUnprocessableEntity},
		{"array unknown field", `{"network": "VGG-13", "array": {"rows": 8, "cols": 8, "banks": 2}}`, http.StatusUnprocessableEntity},
		{"bad scheme", `{"network": "VGG-13", "array": "64x64", "options": {"scheme": "magic"}}`, http.StatusUnprocessableEntity},
		{"bad variant", `{"network": "VGG-13", "array": "64x64", "options": {"variant": "magic"}}`, http.StatusUnprocessableEntity},
		{"negative arrays", `{"network": "VGG-13", "array": "64x64", "options": {"arrays": -2}}`, http.StatusUnprocessableEntity},
		{"negative groups", `{"network": {"name": "t", "layers": [{"name": "c", "iw": 8, "ih": 8, "kw": 3, "kh": 3, "ic": 4, "oc": 4, "groups": -1}]}, "array": "64x64"}`, http.StatusUnprocessableEntity},
		{"ic not divisible by groups", `{"network": {"name": "t", "layers": [{"name": "c", "iw": 8, "ih": 8, "kw": 3, "kh": 3, "ic": 5, "oc": 6, "groups": 3}]}, "array": "64x64"}`, http.StatusUnprocessableEntity},
		{"oc not divisible by groups", `{"network": {"name": "t", "layers": [{"name": "c", "iw": 8, "ih": 8, "kw": 3, "kh": 3, "ic": 6, "oc": 4, "groups": 3}]}, "array": "64x64"}`, http.StatusUnprocessableEntity},
		{"oversized body", `{"network": "` + strings.Repeat("x", 600) + `"}`, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		resp, body := post(t, ts.URL+"/v1/compile", tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.status, body)
			continue
		}
		var e struct {
			Error struct {
				Status  int    `json:"status"`
				Message string `json:"message"`
			} `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil {
			t.Errorf("%s: error body not structured JSON: %v (%s)", tc.name, err, body)
			continue
		}
		if e.Error.Status != tc.status || e.Error.Message == "" {
			t.Errorf("%s: error payload %+v", tc.name, e.Error)
		}
	}

	// The grouped-spec rejection names the actual divisibility problem, so a
	// client can fix the spec without reading server logs.
	resp1, body1 := post(t, ts.URL+"/v1/compile",
		`{"network": {"name": "t", "layers": [{"name": "c", "iw": 8, "ih": 8, "kw": 3, "kh": 3, "ic": 5, "oc": 6, "groups": 3}]}, "array": "64x64"}`)
	if resp1.StatusCode != http.StatusUnprocessableEntity ||
		!strings.Contains(string(body1), "input channels 5 not divisible by groups 3") {
		t.Errorf("grouped divisibility error not surfaced: %d %s", resp1.StatusCode, body1)
	}

	// Wrong methods are rejected by the mux method patterns.
	if status, _ := get(t, ts.URL+"/v1/compile"); status != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/compile status %d", status)
	}
	resp, _ := post(t, ts.URL+"/healthz", "{}")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /healthz status %d", resp.StatusCode)
	}
	if status, _ := get(t, ts.URL+"/nope"); status != http.StatusNotFound {
		t.Errorf("GET /nope status %d", status)
	}
}

// TestSweepStreamsNDJSON drives /v1/sweep over a (2 networks × 2 arrays ×
// 2 variants) cross product, checks one well-formed summary line per cell,
// and that a repeated sweep is served from the plan cache.
func TestSweepStreamsNDJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := `{
	  "networks": ["ResNet-18", {"name": "t", "layers": [
	    {"name": "c", "iw": 14, "ih": 14, "kw": 3, "kh": 3, "ic": 64, "oc": 64}]}],
	  "arrays": ["256x256", {"rows": 512, "cols": 512}],
	  "variants": ["full", "square-tiled"]
	}`
	sweep := func() []sweepSummary {
		resp, body := post(t, ts.URL+"/v1/sweep", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Errorf("content type %q", ct)
		}
		lines := bytes.Split(bytes.TrimSpace(body), []byte("\n"))
		out := make([]sweepSummary, len(lines))
		for i, line := range lines {
			if err := json.Unmarshal(line, &out[i]); err != nil {
				t.Fatalf("line %d not JSON: %v (%s)", i, err, line)
			}
		}
		return out
	}

	sums := sweep()
	if len(sums) != 8 {
		t.Fatalf("got %d lines, want 8", len(sums))
	}
	seen := map[string]bool{}
	for _, sum := range sums {
		if sum.Error != "" {
			t.Errorf("%s/%s/%s: error %q", sum.Network, sum.Array, sum.Variant, sum.Error)
			continue
		}
		if sum.Cycles <= 0 || sum.Im2colCycles < sum.Cycles || sum.Makespan <= 0 || sum.EnergyTotalJ <= 0 {
			t.Errorf("%s/%s/%s: implausible totals %+v", sum.Network, sum.Array, sum.Variant, sum)
		}
		seen[sum.Network+"/"+sum.Array+"/"+sum.Variant] = true
	}
	if len(seen) != 8 {
		t.Errorf("distinct cells = %d, want 8: %v", len(seen), seen)
	}

	// The identical sweep again: every cell is a cached plan.
	for _, sum := range sweep() {
		if !sum.Cached {
			t.Errorf("%s/%s/%s not served from cache on repeat", sum.Network, sum.Array, sum.Variant)
		}
	}

}

// TestSweepOptionsVariantApplies pins that options.variant is honored when
// no variants list is given, instead of being silently clobbered by the
// full-search default.
func TestSweepOptionsVariantApplies(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := `{"networks": [{"name": "t", "layers": [
	  {"name": "c", "iw": 14, "ih": 14, "kw": 3, "kh": 3, "ic": 64, "oc": 64}]}],
	  "arrays": ["256x256"], "options": {"variant": "square-tiled"}}`
	resp, body := post(t, ts.URL+"/v1/sweep", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sum sweepSummary
	if err := json.Unmarshal(bytes.TrimSpace(body), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Error != "" || sum.Variant != "square-tiled" {
		t.Fatalf("summary %+v, want the square-tiled cell", sum)
	}
	// The ablation must actually have run: its cell matches a direct
	// square-tiled compile, not the full search.
	direct, err := compile.New(core.Serial{}).Compile(context.Background(), compile.NewRequest(
		model.Single(core.Layer{Name: "c", IW: 14, IH: 14, KW: 3, KH: 3, IC: 64, OC: 64}),
		core.Array{Rows: 256, Cols: 256},
		compile.Options{Variant: core.VariantSquareTiled}))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Cycles != direct.Totals.Cycles {
		t.Errorf("cycles %d, want the ablation's %d", sum.Cycles, direct.Totals.Cycles)
	}
}

// TestPlanCacheLeaderErrorNotShared pins that a joiner coalesced onto a
// flight whose leader fails (e.g. the leader's client hung up) runs its own
// compute instead of inheriting the leader's private error.
func TestPlanCacheLeaderErrorNotShared(t *testing.T) {
	c := newPlanCache(4)
	leaderIn := make(chan struct{})
	joinerJoined := make(chan struct{})
	leaderErr := fmt.Errorf("leader's client hung up")

	type outcome struct {
		entry *planEntry
		hit   bool
		err   error
	}
	leaderDone := make(chan outcome, 1)
	go func() {
		e, hit, err := c.do(context.Background(), "k", func() (compiled, error) {
			close(leaderIn)
			<-joinerJoined
			return compiled{}, leaderErr
		})
		leaderDone <- outcome{e, hit, err}
	}()

	<-leaderIn
	joinerDone := make(chan outcome, 1)
	go func() {
		e, hit, err := c.do(context.Background(), "k", func() (compiled, error) {
			return compiled{plan: &compile.NetworkPlan{}, data: []byte("joiner bytes")}, nil
		})
		joinerDone <- outcome{e, hit, err}
	}()
	// The joiner is coalesced once the dedupe counter moves; only then may
	// the leader fail.
	for c.stats().Dedupes == 0 {
		time.Sleep(time.Millisecond)
	}
	close(joinerJoined)

	if got := <-leaderDone; got.err != leaderErr {
		t.Fatalf("leader err = %v, want its own error", got.err)
	}
	got := <-joinerDone
	if got.err != nil {
		t.Fatalf("joiner inherited an error: %v", got.err)
	}
	if got.hit || string(got.entry.data) != "joiner bytes" {
		t.Fatalf("joiner outcome %+v, want its own computed entry", got)
	}
	// The joiner's successful retry is cached for later requests.
	if e, hit, err := c.do(context.Background(), "k", func() (compiled, error) {
		t.Fatal("cached key recomputed")
		return compiled{}, nil
	}); err != nil || !hit || string(e.data) != "joiner bytes" {
		t.Fatalf("follow-up not served from cache: hit=%v err=%v", hit, err)
	}
}

// TestSweepCellOutcomes pins the per-cell contract on both failure classes:
// a cancelled context makes the cell incomplete (an error return, nothing to
// emit — the stream carries only completed cells), while an uncompilable
// cell folds its error into the summary line instead of tearing down the
// stream.
func TestSweepCellOutcomes(t *testing.T) {
	s := New(Config{MaxConcurrent: 1})
	s.sem <- struct{}{} // keep every slot busy so the cell must wait
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client is already gone
	cell := sweepCell{req: compile.NewRequest(
		model.Single(core.Layer{Name: "c", IW: 8, IH: 8, KW: 3, KH: 3, IC: 4, OC: 4}),
		core.Array{Rows: 64, Cols: 64}, compile.Options{})}
	if _, err := s.runCell(ctx, cell); err == nil {
		t.Fatal("cancelled cell returned no error")
	}
	s.release()

	// An uncompilable cell (kernel larger than the IFM fails validation
	// inside the search) is a summary-level error, not a stream abort.
	huge := core.Layer{Name: "huge", IW: 8, IH: 8, KW: 16, KH: 16, IC: 1, OC: 1}
	bad := sweepCell{req: compile.NewRequest(
		model.Network{Name: "bad", Layers: []model.ConvLayer{{Layer: huge, Count: 1}}},
		core.Array{Rows: 8, Cols: 8}, compile.Options{})}
	sum, err := s.runCell(context.Background(), bad)
	if err != nil {
		t.Fatalf("per-cell failure escalated to a stream error: %v", err)
	}
	if sum.Error == "" {
		t.Fatal("uncompilable cell reported no error")
	}
	if sum.Network != "bad" || sum.Array != "8x8" {
		t.Errorf("error summary lost the cell identity: %+v", sum)
	}
}

// TestSweepErrorPaths pins that reference errors surface as one structured
// 422 before the stream commits to a 200.
func TestSweepErrorPaths(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, body := range map[string]string{
		"no networks":  `{"arrays": ["64x64"]}`,
		"no arrays":    `{"networks": ["VGG-13"]}`,
		"bad network":  `{"networks": ["LeNet-5"], "arrays": ["64x64"]}`,
		"bad array":    `{"networks": ["VGG-13"], "arrays": ["64xTall"]}`,
		"bad variant":  `{"networks": ["VGG-13"], "arrays": ["64x64"], "variants": ["magic"]}`,
		"bad options":  `{"networks": ["VGG-13"], "arrays": ["64x64"], "options": {"scheme": "magic"}}`,
		"unknown knob": `{"networks": ["VGG-13"], "arrays": ["64x64"], "cells": 3}`,
	} {
		resp, data := post(t, ts.URL+"/v1/sweep", body)
		if resp.StatusCode != http.StatusUnprocessableEntity && resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s)", name, resp.StatusCode, data)
		}
	}
}

// TestStatsEndpoint checks /stats reflects engine counters, plan-cache
// counters (including evictions with a capacity-1 cache) and server
// request counts.
func TestStatsEndpoint(t *testing.T) {
	eng := engine.New(engine.WithCacheSize(1))
	_, ts := newTestServer(t, Config{Engine: eng, PlanCacheSize: 1})
	// Two distinct compiles through a capacity-1 plan cache (and a
	// capacity-1 engine cache with two distinct layer shapes) force
	// evictions at both levels.
	for _, req := range []string{
		`{"network": {"name": "a", "layers": [{"name": "c", "iw": 8, "ih": 8, "kw": 3, "kh": 3, "ic": 4, "oc": 4}]}, "array": "64x64"}`,
		`{"network": {"name": "b", "layers": [{"name": "c", "iw": 10, "ih": 10, "kw": 3, "kh": 3, "ic": 4, "oc": 4}]}, "array": "64x64"}`,
	} {
		if resp, body := post(t, ts.URL+"/v1/compile", req); resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
	}
	status, body := get(t, ts.URL+"/stats")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var st Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Server.Requests < 3 {
		t.Errorf("requests = %d, want >= 3", st.Server.Requests)
	}
	if st.PlanCache.Misses != 2 || st.PlanCache.Entries != 1 || st.PlanCache.Evictions != 1 {
		t.Errorf("plan cache stats %+v, want 2 misses, 1 entry, 1 eviction", st.PlanCache)
	}
	if st.Engine.Searches != 2 || st.Engine.CacheMisses != 2 || st.Engine.Evictions != 1 {
		t.Errorf("engine stats %+v, want 2 searches/misses and 1 eviction", st.Engine)
	}
	if st.Engine.CandidatesCosted == 0 || st.Engine.CandidatesPruned == 0 {
		t.Errorf("engine stats %+v, want non-zero candidates costed and pruned", st.Engine)
	}
	var n uint64
	for _, c := range st.Server.LatencyMs.Counts {
		n += c
	}
	if n < 2 {
		t.Errorf("latency histogram holds %d observations, want >= 2", n)
	}
	if len(st.Server.LatencyMs.Counts) != len(st.Server.LatencyMs.UpperBoundsMs)+1 {
		t.Errorf("histogram shape: %d counts for %d bounds",
			len(st.Server.LatencyMs.Counts), len(st.Server.LatencyMs.UpperBoundsMs))
	}
}

// TestBusyRejects pins the admission control: with one slot (taken) and no
// queue, a compile is rejected with 503 and counted, and succeeds once the
// slot frees.
func TestBusyRejects(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1, MaxQueue: -1})
	s.sem <- struct{}{} // occupy the only slot
	req := `{"network": {"name": "t", "layers": [{"name": "c", "iw": 8, "ih": 8, "kw": 3, "kh": 3, "ic": 4, "oc": 4}]}, "array": "64x64"}`
	resp, body := post(t, ts.URL+"/v1/compile", req)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	if got := s.Stats().Server.Rejected; got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}
	s.release()
	if resp, body := post(t, ts.URL+"/v1/compile", req); resp.StatusCode != http.StatusOK {
		t.Errorf("after release: status %d: %s", resp.StatusCode, body)
	}
}

// TestSweepBusyRejects pins the sweep admission control: with every sweep
// stream taken, a new sweep gets 503 instead of parking goroutines, and is
// admitted again once a stream frees.
func TestSweepBusyRejects(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1})
	req := `{"networks": ["ResNet-18"], "arrays": ["64x64"]}`
	s.sweepSem <- struct{}{} // occupy the only sweep stream
	resp, body := post(t, ts.URL+"/v1/sweep", req)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	if got := s.Stats().Server.Rejected; got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}
	<-s.sweepSem
	if resp, body := post(t, ts.URL+"/v1/sweep", req); resp.StatusCode != http.StatusOK {
		t.Errorf("after release: status %d: %s", resp.StatusCode, body)
	}
}

// TestAccessLog checks the configured logger receives one line per request
// with method, path and status.
func TestAccessLog(t *testing.T) {
	var buf syncWriter
	_, ts := newTestServer(t, Config{Logger: log.New(&buf, "", 0)})
	get(t, ts.URL+"/healthz")
	got := buf.String()
	if !strings.Contains(got, "GET /healthz 200") {
		t.Errorf("access log missing request line:\n%s", got)
	}
}

// syncWriter is a goroutine-safe strings.Builder for log assertions.
type syncWriter struct {
	mu sync.Mutex
	b  strings.Builder
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}
