package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"testing"
	"time"

	"repro/internal/compile"
)

// jobResponse decodes the {"job": {...}} envelope.
func jobResponse(t *testing.T, data []byte) jobSnapshot {
	t.Helper()
	var env struct {
		Job jobSnapshot `json:"job"`
	}
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatalf("job response not JSON: %v (%s)", err, data)
	}
	return env.Job
}

// del issues a DELETE and returns the status and body.
func del(t *testing.T, url string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes()
}

// pollJob GETs the job until pred is satisfied or the deadline passes.
func pollJob(t *testing.T, url string, pred func(jobSnapshot) bool) jobSnapshot {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		status, body := get(t, url)
		if status != http.StatusOK {
			t.Fatalf("poll: status %d: %s", status, body)
		}
		snap := jobResponse(t, body)
		if pred(snap) {
			return snap
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never reached the expected state: %+v", snap)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSweepJobRoundTrip is the acceptance test for the job surface: submit
// a sweep, watch its progress grow monotonically to completion, and check
// the final results cover every cell with the same summaries the
// synchronous stream would produce.
func TestSweepJobRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts.URL+"/v1/jobs", `{"sweep": {
	  "networks": ["ResNet-18", "VGG-13"],
	  "arrays": ["256x256", "512x512"]
	}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d, want 202: %s", resp.StatusCode, body)
	}
	snap := jobResponse(t, body)
	if snap.ID == "" || snap.Kind != "sweep" || snap.CellsTotal != 4 {
		t.Fatalf("creation snapshot %+v", snap)
	}
	if snap.State != stateQueued && snap.State != stateRunning {
		t.Fatalf("fresh job in state %q", snap.State)
	}

	// Progress must be monotone across polls and end at done with every
	// cell completed.
	url := ts.URL + "/v1/jobs/" + snap.ID
	last := -1
	final := pollJob(t, url, func(s jobSnapshot) bool {
		if s.CellsCompleted < last {
			t.Fatalf("progress went backwards: %d -> %d", last, s.CellsCompleted)
		}
		last = s.CellsCompleted
		return s.State == stateDone
	})
	if final.CellsCompleted != 4 || len(final.Results) != 4 {
		t.Fatalf("final snapshot: %d completed, %d results, want 4/4", final.CellsCompleted, len(final.Results))
	}
	seen := map[string]bool{}
	for _, sum := range final.Results {
		if sum.Error != "" {
			t.Errorf("%s/%s: error %q", sum.Network, sum.Array, sum.Error)
		}
		if sum.Cycles <= 0 || sum.Speedup <= 1 {
			t.Errorf("%s/%s: implausible totals %+v", sum.Network, sum.Array, sum)
		}
		seen[sum.Network+"/"+sum.Array] = true
	}
	if len(seen) != 4 {
		t.Errorf("results cover %d distinct cells, want 4: %v", len(seen), seen)
	}

	// The listing includes the job, without the payload.
	status, listBody := get(t, ts.URL+"/v1/jobs")
	if status != http.StatusOK {
		t.Fatalf("list status %d", status)
	}
	var listing struct {
		Jobs []jobSnapshot `json:"jobs"`
	}
	if err := json.Unmarshal(listBody, &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Jobs) != 1 || listing.Jobs[0].ID != snap.ID || listing.Jobs[0].Results != nil {
		t.Errorf("listing = %+v", listing.Jobs)
	}
}

// TestCompileJobMatchesGolden pins that a compile job's plan payload is the
// exact bytes the synchronous endpoint serves (and thus the committed
// golden plan).
func TestCompileJobMatchesGolden(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts.URL+"/v1/jobs", `{"compile": {"network": "VGG-13", "array": "512x512"}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	snap := jobResponse(t, body)
	if snap.Kind != "compile" || snap.CellsTotal != 1 {
		t.Fatalf("creation snapshot %+v", snap)
	}
	final := pollJob(t, ts.URL+"/v1/jobs/"+snap.ID, func(s jobSnapshot) bool { return s.State == stateDone })
	if final.CellsCompleted != 1 {
		t.Errorf("final completed = %d, want 1", final.CellsCompleted)
	}
	golden, err := os.ReadFile("../compile/testdata/vgg13_512_plan.golden.json")
	if err != nil {
		t.Fatal(err)
	}
	// The snapshot envelope re-indents the nested plan, so compare through
	// the canonical serialization: deserialize (which also re-validates the
	// totals) and re-serialize.
	plan, err := compile.FromJSON(final.Plan)
	if err != nil {
		t.Fatalf("job plan does not re-validate: %v", err)
	}
	replayed, err := plan.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(replayed, golden) {
		t.Error("job plan differs from the committed golden file")
	}

	// The plan went through the shared cache: the synchronous endpoint now
	// hits it and serves the same plan (compact wire encoding).
	syncResp, syncBody := post(t, ts.URL+"/v1/compile", `{"network": "VGG-13", "array": "512x512"}`)
	if syncResp.Header.Get("X-Cache") != "hit" {
		t.Errorf("sync compile after job: X-Cache %q, want hit (shared machinery)", syncResp.Header.Get("X-Cache"))
	}
	syncPlan, err := compile.FromJSON(syncBody)
	if err != nil {
		t.Fatalf("sync plan after job does not re-validate: %v", err)
	}
	syncReplayed, err := syncPlan.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(syncReplayed, golden) {
		t.Error("sync bytes after the job differ from the golden file")
	}
}

// TestJobLifecycleCancelAndGC is the create → poll → cancel → 404-after-GC
// lifecycle (run under -race in CI): a gated sweep job completes one cell,
// is cancelled mid-flight, keeps its partial results in the cancelled
// snapshot, and is garbage-collected after the TTL.
func TestJobLifecycleCancelAndGC(t *testing.T) {
	gate := newGateSearcher()
	_, ts := newTestServer(t, Config{Searcher: gate, MaxConcurrent: 1, JobTTL: 50 * time.Millisecond})
	body := fmt.Sprintf(`{"sweep": {"networks": [%s], "arrays": ["64x64", "128x128", "256x256"]}}`, oneLayerNet(8))
	resp, data := post(t, ts.URL+"/v1/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	id := jobResponse(t, data).ID
	url := ts.URL + "/v1/jobs/" + id

	gate.allow(1) // exactly one cell may complete
	pollJob(t, url, func(s jobSnapshot) bool { return s.CellsCompleted == 1 })

	status, delBody := del(t, url)
	if status != http.StatusOK {
		t.Fatalf("DELETE status %d: %s", status, delBody)
	}
	final := pollJob(t, url, func(s jobSnapshot) bool { return s.State == stateCancelled })
	if final.CellsCompleted != 1 || len(final.Results) != 1 {
		t.Errorf("cancelled job lost its partial results: %+v", final)
	}
	if final.Error == "" {
		t.Error("cancelled job carries no error")
	}

	// After the TTL the next access garbage-collects the job: 404 for GET
	// and DELETE alike.
	time.Sleep(80 * time.Millisecond)
	if status, body := get(t, url); status != http.StatusNotFound {
		t.Fatalf("GET after GC: status %d: %s", status, body)
	}
	if status, _ := del(t, url); status != http.StatusNotFound {
		t.Fatalf("DELETE after GC: status %d", status)
	}
}

// TestJobErrorPaths pins the submission-time rejections: structurally bad
// bodies, bad references (the same 422s the synchronous endpoints give) and
// the live-jobs admission bound.
func TestJobErrorPaths(t *testing.T) {
	gate := newGateSearcher()
	_, ts := newTestServer(t, Config{Searcher: gate, MaxJobs: 1})
	for name, tc := range map[string]struct {
		body   string
		status int
	}{
		"malformed":    {`{"compile": `, http.StatusBadRequest},
		"unknown kind": {`{"verify": {}}`, http.StatusBadRequest},
		"empty":        {`{}`, http.StatusUnprocessableEntity},
		"both kinds":   {`{"compile": {"network": "VGG-13", "array": "64x64"}, "sweep": {"networks": ["VGG-13"], "arrays": ["64x64"]}}`, http.StatusUnprocessableEntity},
		"bad network":  {`{"compile": {"network": "LeNet-5", "array": "64x64"}}`, http.StatusUnprocessableEntity},
		"bad sweep":    {`{"sweep": {"networks": ["VGG-13"]}}`, http.StatusUnprocessableEntity},
	} {
		resp, body := post(t, ts.URL+"/v1/jobs", tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", name, resp.StatusCode, tc.status, body)
		}
	}
	if status, _ := get(t, ts.URL+"/v1/jobs/job-999"); status != http.StatusNotFound {
		t.Errorf("unknown job GET status %d, want 404", status)
	}

	// One gated job occupies the single job slot; a second submission is
	// rejected 503 until the first finishes.
	resp, data := post(t, ts.URL+"/v1/jobs", fmt.Sprintf(`{"compile": {"network": %s, "array": "64x64"}}`, oneLayerNet(8)))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	id := jobResponse(t, data).ID
	resp, data = post(t, ts.URL+"/v1/jobs", fmt.Sprintf(`{"compile": {"network": %s, "array": "64x64"}}`, oneLayerNet(10)))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("over-limit submission: status %d, want 503 (%s)", resp.StatusCode, data)
	}
	gate.allow(1)
	pollJob(t, ts.URL+"/v1/jobs/"+id, func(s jobSnapshot) bool { return s.State == stateDone })
	if resp, data := post(t, ts.URL+"/v1/jobs", fmt.Sprintf(`{"compile": {"network": %s, "array": "64x64"}}`, oneLayerNet(12))); resp.StatusCode != http.StatusAccepted {
		t.Errorf("post-completion submission: status %d (%s)", resp.StatusCode, data)
	} else {
		gate.allow(1)
		pollJob(t, ts.URL+"/v1/jobs/"+jobResponse(t, data).ID, func(s jobSnapshot) bool { return s.State == stateDone })
	}
}

// TestJobStats pins the /stats job counters through a full lifecycle.
func TestJobStats(t *testing.T) {
	gate := newGateSearcher()
	s, ts := newTestServer(t, Config{Searcher: gate, JobTTL: -1}) // collect terminal jobs immediately
	resp, data := post(t, ts.URL+"/v1/jobs", fmt.Sprintf(`{"compile": {"network": %s, "array": "64x64"}}`, oneLayerNet(8)))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	id := jobResponse(t, data).ID
	if st := s.Stats().Jobs; st.Created != 1 || st.Live != 1 {
		t.Errorf("stats after create: %+v", st)
	}
	if status, _ := del(t, ts.URL+"/v1/jobs/"+id); status != http.StatusOK {
		t.Fatalf("DELETE status %d", status)
	}
	// The runner observes the cancel; with JobTTL < 0 the next access
	// collects the terminal job.
	deadline := time.Now().Add(10 * time.Second)
	for {
		status, _ := get(t, ts.URL+"/v1/jobs/"+id)
		if status == http.StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cancelled job never collected")
		}
		time.Sleep(2 * time.Millisecond)
	}
	st := s.Stats().Jobs
	if st.Created != 1 || st.Cancelled != 1 || st.Collected != 1 || st.Live != 0 {
		t.Errorf("final job stats: %+v", st)
	}
}
