package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/model"
)

// TestWarmCompileZeroPlanPathAllocs pins the tentpole property of the serve
// path: once a plan is cached, serving it — canonical key build, cache
// lookup, writing the cached serialized bytes — allocates nothing. The
// measured unit is Server.CachedPlan, exactly the fast path handleCompile
// runs before any compiling machinery.
func TestWarmCompileZeroPlanPathAllocs(t *testing.T) {
	s := New(Config{})
	req := compile.NewRequest(model.VGG13(), core.Array{Rows: 512, Cols: 512}, compile.Options{})

	// Prime through the real handler so the cache holds what a request
	// stores.
	hr := httptest.NewRequest(http.MethodPost, "/v1/compile",
		strings.NewReader(`{"network": "VGG-13", "array": "512x512"}`))
	rw := httptest.NewRecorder()
	s.ServeHTTP(rw, hr)
	if rw.Code != http.StatusOK {
		t.Fatalf("prime request status %d: %s", rw.Code, rw.Body.String())
	}

	ok, err := s.CachedPlan(io.Discard, req)
	if err != nil || !ok {
		t.Fatalf("CachedPlan after prime: ok=%v err=%v", ok, err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		ok, err := s.CachedPlan(io.Discard, req)
		if err != nil || !ok {
			t.Fatalf("CachedPlan: ok=%v err=%v", ok, err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm plan path allocates %.1f times per request, want 0", allocs)
	}
}

// TestCachedPlanMiss pins that CachedPlan does not compile: a cold cache
// reports a miss and leaves the engine untouched.
func TestCachedPlanMiss(t *testing.T) {
	s := New(Config{})
	req := compile.NewRequest(model.VGG13(), core.Array{Rows: 512, Cols: 512}, compile.Options{})
	ok, err := s.CachedPlan(io.Discard, req)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("cold CachedPlan reported a hit")
	}
	if got := s.Engine().Stats().Searches; got != 0 {
		t.Errorf("CachedPlan ran %d searches on a miss, want 0", got)
	}

	// Invalid requests are reported as errors, not silent misses.
	if _, err := s.CachedPlan(io.Discard, compile.Request{}); err == nil {
		t.Error("invalid request accepted")
	}
}
