package server

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/obs"
	"repro/internal/optimize"
)

// The POST /v1/optimize surface: the body is a design-space spec in the
// optimize.FromJSON wire format (network, candidate arrays, chip counts,
// gating, layer groups) and the response is an NDJSON stream of frontier
// events — one line per admitted, evicted or rejected design point, as the
// enumeration makes each decision — terminated by one "frontier" line
// carrying the final Pareto frontier. Optimize runs are admitted through the
// sweep-stream semaphore (they are long fan-out requests of the same shape)
// and run through the server's shared compiler, so every design point's
// layer searches land in the same engine memoization the compile and sweep
// endpoints warm.

// optimizeFinal is the stream's terminal line.
type optimizeFinal struct {
	Kind     string             `json:"event"`
	Frontier *optimize.Frontier `json:"frontier"`
}

// optimizeError is the stream's error line, appended when the search is cut
// short after the 200 is already committed.
type optimizeError struct {
	Kind  string `json:"event"`
	Error string `json:"error"`
}

// resolveOptimizeSpace parses the raw body bytes as a design space; failures
// are 422s (the body was valid JSON — 400 was decodeJSONBody's job — but
// describes a space that cannot be searched).
func resolveOptimizeSpace(raw json.RawMessage) (optimize.DesignSpace, *httpError) {
	if len(raw) == 0 {
		return optimize.DesignSpace{}, errorf(http.StatusUnprocessableEntity,
			`missing design space: give {"network", "arrays", ...}`)
	}
	space, err := optimize.FromJSON(raw)
	if err != nil {
		return optimize.DesignSpace{}, errorf(http.StatusUnprocessableEntity, "%v", err)
	}
	return space, nil
}

// countEvent feeds one frontier event into the optimize counters.
func (s *Server) countEvent(e optimize.Event) {
	switch e.Kind {
	case "admit":
		s.optPoints.Add(1)
		s.optAdmitted.Add(1)
	case "reject":
		s.optPoints.Add(1)
		s.optRejected.Add(1)
	case "evict":
		s.optEvicted.Add(1)
	}
}

// handleOptimize streams one optimize search as NDJSON frontier events.
// Admission mirrors handleSweep: one sweep-stream unit per run, beyond the
// pool a structured 503. A search cut short by the per-request deadline (or
// a dropped client) appends one final error line when the connection still
// exists; a complete search always ends with the "frontier" line.
func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	var raw json.RawMessage
	if herr := decodeJSONBody(w, r, s.maxBody, &raw); herr != nil {
		writeError(w, herr)
		return
	}
	space, herr := resolveOptimizeSpace(raw)
	if herr != nil {
		writeError(w, herr)
		return
	}
	select {
	case s.sweepSem <- struct{}{}:
		defer func() { <-s.sweepSem }()
	default:
		s.rejected.Add(1)
		writeError(w, errorf(http.StatusServiceUnavailable,
			"server at capacity: all %d concurrent optimize/sweep streams are taken", cap(s.sweepSem)))
		return
	}
	s.optRuns.Add(1)

	ctx, cancel := s.requestContext(r)
	defer cancel()
	if r.URL.RawQuery != "" && r.URL.Query().Get("trace") == "1" {
		// The optimize span tree lands on the trace the run records; the
		// stream itself stays NDJSON, so tracing only adds span recording.
		ctx = obs.NewContext(ctx, obs.New("optimize"))
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}

	lb := linePool.Get().(*lineBuf)
	defer linePool.Put(lb)
	broken := false
	f, err := s.opt.Run(ctx, space, func(e optimize.Event) {
		s.countEvent(e)
		if broken {
			return
		}
		if lb.write(w, e) != nil {
			broken = true
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	})
	if err != nil {
		// The 200 is committed; a still-connected client learns the stream is
		// incomplete (deadline, cancellation or a failing design point) from
		// one final error line instead of a silent truncation.
		if !broken {
			lb.write(w, optimizeError{Kind: "error", Error: fmt.Sprintf("optimize aborted: %v", err)})
		}
		return
	}
	if !broken {
		lb.write(w, optimizeFinal{Kind: "frontier", Frontier: f})
	}
}
