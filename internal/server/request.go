package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sync"

	"repro/internal/cliutil"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/model"
)

// compileRequest is the POST /v1/compile body:
//
//	{
//	  "network": "VGG-13" | {<inline spec, the model.FromJSON format>},
//	  "array":   "512x512" | {"rows": 512, "cols": 512},
//	  "options": {"scheme": "vw", "variant": "full", "arrays": 1,
//	              "gate_peripherals": false}
//	}
//
// "options" and its fields are optional; the defaults compile the full
// VW-SDK search for a single-array chip. Unknown fields anywhere are
// rejected with 400 so typos fail loudly.
type compileRequest struct {
	Network json.RawMessage `json:"network"`
	Array   json.RawMessage `json:"array"`
	Options *requestOptions `json:"options"`
}

// requestOptions is the wire form of compile.Options. Physical plans
// (compile.Options.Plans) are execution artifacts that do not serialize and
// are deliberately not exposed.
type requestOptions struct {
	Scheme          string `json:"scheme"`
	Variant         string `json:"variant"`
	Arrays          int    `json:"arrays"`
	GatePeripherals bool   `json:"gate_peripherals"`
}

// bodyBufPool recycles request-body read buffers across requests; entries
// retain the capacity past bodies grew them to (bounded by MaxBodyBytes).
var bodyBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

// decodeJSONBody decodes one strict JSON value from the (size-limited)
// request body into dst: unknown fields, trailing garbage and oversized
// bodies are rejected with structured 400/413 errors. The body is read into
// a pooled buffer and decoded from there, so a warm request does not grow a
// fresh decode buffer; json.RawMessage fields copy out of the buffer, which
// is returned to the pool before this function returns.
func decodeJSONBody(w http.ResponseWriter, r *http.Request, maxBody int64, dst any) *httpError {
	body := http.MaxBytesReader(w, r.Body, maxBody)
	bp := bodyBufPool.Get().(*[]byte)
	defer bodyBufPool.Put(bp)
	buf := (*bp)[:0]
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := body.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			break
		}
		if err != nil {
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				return errorf(http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooLarge.Limit)
			}
			return errorf(http.StatusBadRequest, "read request: %v", err)
		}
	}
	*bp = buf // keep the grown capacity for the next request
	dec := json.NewDecoder(bytes.NewReader(buf))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return errorf(http.StatusBadRequest, "parse request: %v", err)
	}
	if dec.More() {
		return errorf(http.StatusBadRequest, "parse request: trailing data after JSON body")
	}
	return nil
}

// resolve turns the wire request into the canonical compile.Request.
// Malformed references come back as 422: the body was syntactically valid
// JSON (that was 400's job in decodeJSONBody) but names something that
// cannot be compiled.
func (req *compileRequest) resolve() (compile.Request, *httpError) {
	n, herr := resolveNetworkRef(req.Network)
	if herr != nil {
		return compile.Request{}, herr
	}
	a, herr := resolveArrayRef(req.Array)
	if herr != nil {
		return compile.Request{}, herr
	}
	opts, herr := req.Options.compileOptions()
	if herr != nil {
		return compile.Request{}, herr
	}
	return compile.NewRequest(n, a, opts), nil
}

// resolveNetworkRef resolves a request's network reference through
// model.ResolveSpec: a zoo name string or an inline spec object.
func resolveNetworkRef(raw json.RawMessage) (model.Network, *httpError) {
	if len(bytes.TrimSpace(raw)) == 0 {
		return model.Network{}, errorf(http.StatusUnprocessableEntity,
			`missing "network": give a zoo name (see /v1/networks) or an inline spec object`)
	}
	n, err := model.ResolveSpec(raw)
	if err != nil {
		return model.Network{}, errorf(http.StatusUnprocessableEntity, "%v", err)
	}
	return n, nil
}

// resolveArrayRef parses an array reference: "RowsxCols" (or a square
// "512") as a string, or {"rows", "cols"} as an object.
func resolveArrayRef(raw json.RawMessage) (core.Array, *httpError) {
	trimmed := bytes.TrimSpace(raw)
	if len(trimmed) == 0 {
		return core.Array{}, errorf(http.StatusUnprocessableEntity,
			`missing "array": give "RowsxCols" or {"rows", "cols"}`)
	}
	switch trimmed[0] {
	case '"':
		var spec string
		if err := json.Unmarshal(trimmed, &spec); err != nil {
			return core.Array{}, errorf(http.StatusUnprocessableEntity, "parse array: %v", err)
		}
		a, err := cliutil.ParseArray(spec)
		if err != nil {
			return core.Array{}, errorf(http.StatusUnprocessableEntity, "%v", err)
		}
		return a, nil
	case '{':
		var obj struct {
			Rows int `json:"rows"`
			Cols int `json:"cols"`
		}
		dec := json.NewDecoder(bytes.NewReader(trimmed))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&obj); err != nil {
			return core.Array{}, errorf(http.StatusUnprocessableEntity, "parse array: %v", err)
		}
		a := core.Array{Rows: obj.Rows, Cols: obj.Cols}
		if err := a.Validate(); err != nil {
			return core.Array{}, errorf(http.StatusUnprocessableEntity, "%v", err)
		}
		return a, nil
	default:
		return core.Array{}, errorf(http.StatusUnprocessableEntity,
			`array must be a "RowsxCols" string or a {"rows", "cols"} object`)
	}
}

// compileOptions maps the wire options onto compile.Options; a nil receiver
// (options omitted) selects the defaults.
func (o *requestOptions) compileOptions() (compile.Options, *httpError) {
	var opts compile.Options
	if o == nil {
		return opts, nil
	}
	switch o.Scheme {
	case "", "vw", "vwsdk", "vw-sdk":
		opts.Scheme = compile.VWSDK
	case "im2col":
		opts.Scheme = compile.Im2col
	case "smd":
		opts.Scheme = compile.SMD
	case "sdk":
		opts.Scheme = compile.SDK
	default:
		return opts, errorf(http.StatusUnprocessableEntity,
			"unknown scheme %q (have vw, im2col, smd, sdk)", o.Scheme)
	}
	v, herr := parseVariant(o.Variant)
	if herr != nil {
		return opts, herr
	}
	opts.Variant = v
	if o.Arrays < 0 {
		return opts, errorf(http.StatusUnprocessableEntity, "negative arrays %d", o.Arrays)
	}
	opts.Arrays = o.Arrays
	opts.GatePeripherals = o.GatePeripherals
	return opts, nil
}

// wireOptions maps resolved compile.Options back onto their wire form — the
// inverse of compileOptions, used to rebuild a /v1/compile body for the peer
// hop. Defaulted options collapse to nil so the proxied body is minimal.
// Options with no wire form (Energy, Plans) must be rejected by the caller
// before this point (see proxyBody).
func wireOptions(opts compile.Options) *requestOptions {
	var o requestOptions
	switch opts.Scheme {
	case compile.VWSDK:
		// The default; leave the field empty.
	case compile.Im2col:
		o.Scheme = "im2col"
	case compile.SMD:
		o.Scheme = "smd"
	case compile.SDK:
		o.Scheme = "sdk"
	}
	switch opts.Variant {
	case core.VariantFull:
	case core.VariantSquareTiled:
		o.Variant = "square-tiled"
	case core.VariantRectFullChannel:
		o.Variant = "rect-full-channel"
	}
	if opts.Arrays > 1 {
		o.Arrays = opts.Arrays
	}
	o.GatePeripherals = opts.GatePeripherals
	if o == (requestOptions{}) {
		return nil
	}
	return &o
}

// parseVariant maps a wire variant name onto the VW-SDK ablation enum.
func parseVariant(name string) (core.Variant, *httpError) {
	switch name {
	case "", "full":
		return core.VariantFull, nil
	case "square", "square-tiled", "square+tiled":
		return core.VariantSquareTiled, nil
	case "rect", "rect-full-channel", "rect+full-channels":
		return core.VariantRectFullChannel, nil
	default:
		return 0, errorf(http.StatusUnprocessableEntity,
			"unknown variant %q (have full, square-tiled, rect-full-channel)", name)
	}
}
