package server

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/compile"
	"repro/internal/obs"
)

// planEntry is one cached compilation: the plan (for sweep summaries), its
// canonical serialized bytes (what /v1/compile writes) and its compile
// provenance — the span tree and phase durations recorded when the plan was
// actually compiled. Entries are shared between requests and must be treated
// as immutable; a cache hit serves the original compilation's provenance,
// which is exactly the point — "where did this plan come from" has one
// answer no matter which request asks.
type planEntry struct {
	key    string
	plan   *compile.NetworkPlan
	data   []byte
	trace  []*obs.Node
	phases []obs.Phase
	source string // which tier filled the entry: "" (compiled), "store" or "peer"
}

// Fill sources for planEntry.source / compiled.source; a locally compiled
// entry keeps the zero value. The strings double as X-Cache header values.
const (
	sourceStore = "store"
	sourcePeer  = "peer"
)

// compiled is one compute result handed back to planCache.do: the plan, its
// serialized bytes, the provenance recorded while compiling, and which
// cache tier produced it.
type compiled struct {
	plan   *compile.NetworkPlan
	data   []byte
	trace  []*obs.Node
	phases []obs.Phase
	source string
}

// planFlight is one in-flight compilation; joiners block on done and read
// entry/err.
type planFlight struct {
	done  chan struct{}
	entry *planEntry
	err   error
}

// planCache is the whole-plan LRU with singleflight coalescing, keyed on
// compile.Key. A non-positive capacity disables the LRU but keeps the
// coalescing: identical concurrent requests still run one compilation.
// Errors are never cached — a failed compilation is reported to the leader
// and every joiner, then forgotten.
type planCache struct {
	mu     sync.Mutex
	cap    int
	order  *list.List // front = most recently used; values are *planEntry
	items  map[string]*list.Element
	flight map[string]*planFlight

	hits      atomic.Uint64
	misses    atomic.Uint64
	dedupes   atomic.Uint64
	evictions atomic.Uint64
}

func newPlanCache(capacity int) *planCache {
	c := &planCache{cap: capacity, flight: make(map[string]*planFlight)}
	if capacity > 0 {
		c.order = list.New()
		c.items = make(map[string]*list.Element, capacity)
	}
	return c
}

// do serves one compilation through the cache: an LRU hit returns
// immediately, a key already in flight joins it, and otherwise compute runs
// exactly once and its result is stored. The bool reports whether the entry
// was served without running compute (LRU hit or coalesced join). A joiner
// whose own ctx ends while it waits on the leader abandons the join with
// ctx.Err(); the leader keeps running for everyone else.
//
// A failed flight is never shared: its error may be private to the leader
// (most likely: the leader's client hung up or timed out mid-compile), so a
// joiner that finds the flight failed runs its own compute and reports its
// own outcome, mirroring engine.memoized. Reachable compile errors are
// caller-specific or caught before the cache, so the duplicated work is
// negligible.
func (c *planCache) do(ctx context.Context, key string, compute func() (compiled, error)) (*planEntry, bool, error) {
	c.mu.Lock()
	if e := c.lockedGet(key); e != nil {
		c.mu.Unlock()
		c.hits.Add(1)
		return e, true, nil
	}
	if f, ok := c.flight[key]; ok {
		c.mu.Unlock()
		c.dedupes.Add(1)
		select {
		case <-f.done:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
		if f.err == nil {
			c.hits.Add(1)
			return f.entry, true, nil
		}
		c.misses.Add(1)
		res, err := compute()
		if err != nil {
			return nil, false, err
		}
		e := newPlanEntry(key, res)
		c.mu.Lock()
		c.lockedPut(e)
		c.mu.Unlock()
		return e, false, nil
	}
	f := &planFlight{done: make(chan struct{})}
	c.flight[key] = f
	c.mu.Unlock()

	c.misses.Add(1)
	res, err := compute()
	if err == nil {
		f.entry = newPlanEntry(key, res)
	}
	f.err = err
	c.mu.Lock()
	if err == nil {
		c.lockedPut(f.entry)
	}
	delete(c.flight, key)
	c.mu.Unlock()
	close(f.done)
	if err != nil {
		return nil, false, err
	}
	return f.entry, false, nil
}

// newPlanEntry freezes one compute result into a shareable cache entry.
func newPlanEntry(key string, res compiled) *planEntry {
	return &planEntry{key: key, plan: res.plan, data: res.data, trace: res.trace, phases: res.phases, source: res.source}
}

// hit returns the cached entry for a key still held as bytes, or nil on a
// miss (which is not counted — the caller falls through to do, which runs
// and counts the full path). The map lookup converts the key in place
// (string(key) in index position does not allocate), so a warm /v1/compile
// hit never materializes the key string: this is the allocation-free fast
// path the compile handler tries before do.
func (c *planCache) hit(key []byte) *planEntry {
	if c.items == nil {
		return nil
	}
	c.mu.Lock()
	el, ok := c.items[string(key)]
	var e *planEntry
	if ok {
		c.order.MoveToFront(el)
		e = el.Value.(*planEntry)
	}
	c.mu.Unlock()
	if e != nil {
		c.hits.Add(1)
	}
	return e
}

// lockedGet returns the cached entry and marks it most recently used; the
// caller holds mu.
func (c *planCache) lockedGet(key string) *planEntry {
	if c.items == nil {
		return nil
	}
	el, ok := c.items[key]
	if !ok {
		return nil
	}
	c.order.MoveToFront(el)
	return el.Value.(*planEntry)
}

// lockedPut inserts an entry, evicting from the LRU tail; the caller holds
// mu.
func (c *planCache) lockedPut(e *planEntry) {
	if c.items == nil {
		return
	}
	if el, ok := c.items[e.key]; ok {
		el.Value = e
		c.order.MoveToFront(el)
		return
	}
	c.items[e.key] = c.order.PushFront(e)
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*planEntry).key)
		c.evictions.Add(1)
	}
}

// PlanCacheStats are the plan cache's cumulative counters.
type PlanCacheStats struct {
	// Hits counts requests served without compiling (LRU hits plus
	// successful coalesced joins); Misses counts compilations actually run.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`

	// Dedupes counts requests that joined an identical in-flight
	// compilation (counted at join time; successful joins are also Hits).
	Dedupes uint64 `json:"dedupes"`

	// Evictions counts plans dropped to respect the LRU capacity.
	Evictions uint64 `json:"evictions"`

	// Entries is the current number of cached plans.
	Entries int `json:"entries"`
}

func (c *planCache) stats() PlanCacheStats {
	c.mu.Lock()
	entries := 0
	if c.order != nil {
		entries = c.order.Len()
	}
	c.mu.Unlock()
	return PlanCacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Dedupes:   c.dedupes.Load(),
		Evictions: c.evictions.Load(),
		Entries:   entries,
	}
}
