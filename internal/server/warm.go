package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"repro/internal/compile"
)

// Manifest is the bulk pre-compile list behind vwsdkd -warm: a JSON document
// whose "requests" entries are ordinary /v1/compile bodies (zoo names or
// inline network specs, optional array/options forms included):
//
//	{
//	  "requests": [
//	    {"network": "VGG-13", "array": "512x512"},
//	    {"network": {"name": "TinyNet", "layers": [...]}, "array": "256x256",
//	     "options": {"variant": "square-tiled"}}
//	  ]
//	}
//
// Warming runs through the same tiered fill path as live traffic, so it is
// resumable by construction: a request whose plan is already in the LRU, the
// persistent store or an owning peer is skipped (counted as a hit), and only
// the genuinely missing plans are searched.
type Manifest struct {
	Requests []json.RawMessage `json:"requests"`
}

// ParseManifest parses a warm manifest, strictly: unknown fields and
// per-entry resolution failures (bad network names, malformed arrays) are
// reported up front with the entry index, before any compilation starts.
func ParseManifest(data []byte) (*Manifest, []compile.Request, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var m Manifest
	if err := dec.Decode(&m); err != nil {
		return nil, nil, fmt.Errorf("warm manifest: %w", err)
	}
	if dec.More() {
		return nil, nil, errors.New("warm manifest: trailing data after JSON document")
	}
	if len(m.Requests) == 0 {
		return nil, nil, errors.New("warm manifest: no requests")
	}
	reqs := make([]compile.Request, 0, len(m.Requests))
	for i, raw := range m.Requests {
		rdec := json.NewDecoder(bytes.NewReader(raw))
		rdec.DisallowUnknownFields()
		var body compileRequest
		if err := rdec.Decode(&body); err != nil {
			return nil, nil, fmt.Errorf("warm manifest: request %d: %w", i, err)
		}
		req, herr := body.resolve()
		if herr != nil {
			return nil, nil, fmt.Errorf("warm manifest: request %d: %s", i, herr.msg)
		}
		reqs = append(reqs, req)
	}
	return &m, reqs, nil
}

// WarmStats summarizes one Warm run.
type WarmStats struct {
	// Total is the number of distinct keys in the manifest (duplicate
	// entries collapse).
	Total int `json:"total"`

	// Compiled counts plans searched here; Hits counts plans already warm
	// (LRU, coalesced, store or peer); Failed counts entries whose
	// compilation errored.
	Compiled int `json:"compiled"`
	Hits     int `json:"hits"`
	Failed   int `json:"failed"`
}

// Warm pre-compiles every manifest request through the tiered fill path,
// running up to concurrency entries at once (<=0 selects the server's
// compile-slot count; actual search parallelism is always bounded by the
// admission semaphore). It returns per-entry failures joined into one error
// after attempting every entry — a bad entry does not abandon the rest —
// and stops early only when ctx ends.
func (s *Server) Warm(ctx context.Context, reqs []compile.Request, concurrency int) (WarmStats, error) {
	type item struct {
		key string
		req compile.Request
	}
	seen := make(map[string]bool, len(reqs))
	items := make([]item, 0, len(reqs))
	for i, req := range reqs {
		key, err := compile.Key(req)
		if err != nil {
			return WarmStats{}, fmt.Errorf("warm: request %d: %w", i, err)
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		items = append(items, item{key: key, req: req})
	}
	if concurrency <= 0 {
		concurrency = cap(s.sem)
	}
	if concurrency > len(items) {
		concurrency = len(items)
	}

	var (
		mu    sync.Mutex
		stats = WarmStats{Total: len(items)}
		errs  []error
		wg    sync.WaitGroup
		work  = make(chan item)
	)
	for range concurrency {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range work {
				entry, cached, err := s.compilePlan(ctx, it.key, it.req, true, false)
				mu.Lock()
				switch {
				case err != nil:
					stats.Failed++
					errs = append(errs, fmt.Errorf("warm: %s: %w", it.req.Network.Name, err))
				case cached || entry.source != "":
					stats.Hits++
				default:
					stats.Compiled++
				}
				mu.Unlock()
			}
		}()
	}
	for _, it := range items {
		if ctx.Err() != nil {
			break
		}
		work <- it
	}
	close(work)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		errs = append(errs, err)
	}
	return stats, errors.Join(errs...)
}
