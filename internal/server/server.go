// Package server is the HTTP compile service behind cmd/vwsdkd: a
// long-lived front end to the compile pipeline that keeps one
// engine.Engine's search cache warm across requests, the way a
// production mapping service would amortize VW-SDK's search over many
// clients asking for the same networks.
//
// The server owns a single shared Compiler and adds, on top of the engine's
// per-layer result cache, a whole-plan LRU cache keyed on the canonical
// compile.Request (compile.Key) with singleflight coalescing: N identical
// concurrent requests run exactly one compilation and share its serialized
// bytes. Compilations are bounded by a semaphore with a configurable wait
// queue, and sweep streams by their own same-sized semaphore; requests
// beyond the limits are rejected with 503 instead of piling up. Request
// bodies are size-limited and every error — including 404s and 405s — is
// structured JSON ({"error": {"status", "message"}}).
//
// Every handler runs under the request's own context (plus the configured
// per-request deadline): a client that disconnects mid-compile cancels the
// underlying search at its next checkpoint and frees its semaphore or queue
// slot; a request past its deadline gets a structured 504. The same
// execution path also powers the asynchronous job API — POST /v1/jobs
// submits a compile or sweep and returns immediately, GET /v1/jobs/{id}
// reports state and per-cell progress, DELETE cancels via the job's context
// (see jobs.go).
//
// Endpoints:
//
//	POST   /v1/compile    {network, array, options} → serialized compile.NetworkPlan
//	POST   /v1/sweep      {networks, arrays, variants, options} → NDJSON plan summaries, streamed per cell
//	POST   /v1/optimize   design-space spec → NDJSON frontier events, then the final Pareto frontier
//	POST   /v1/jobs       {compile: {...}}, {sweep: {...}} or {optimize: {...}} → job snapshot (202)
//	GET    /v1/jobs       job listing (without payloads)
//	GET    /v1/jobs/{id}  job snapshot with progress and results
//	DELETE /v1/jobs/{id}  cancel the job
//	POST   /v1/compile?trace=1  debug form: plan plus request span tree and compile provenance
//	GET    /v1/networks   the predefined model zoo
//	GET    /healthz       liveness, version/revision, uptime, goroutines
//	GET    /stats         process, engine, plan-cache, job and server counters
//	GET    /metrics       Prometheus text exposition (see DESIGN.md §9 for the metric contract)
//
// A *Server is an http.Handler; serve it with http.Server (cmd/vwsdkd adds
// flags, access logging to stderr and graceful shutdown on SIGTERM).
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cliutil"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/optimize"
	"repro/internal/peer"
)

// Config configures a Server. The zero value is usable: a fresh engine,
// default cache and concurrency limits, and no access log.
type Config struct {
	// Engine is the shared search engine; nil builds a default engine.New().
	Engine *engine.Engine

	// Searcher, when non-nil, overrides Engine as the compiler's search
	// backend (the engine then only serves /stats). Tests use it to inject
	// gated searchers with deterministic blocking; production deployments
	// leave it nil.
	Searcher core.Searcher

	// PlanCacheSize is the whole-plan LRU capacity in entries; 0 selects the
	// default (128), negative disables plan caching (identical concurrent
	// requests still coalesce).
	PlanCacheSize int

	// MaxConcurrent bounds concurrently running compilations; 0 selects
	// GOMAXPROCS.
	MaxConcurrent int

	// MaxQueue bounds compilations waiting for a slot; 0 selects the
	// default (64), negative disables queueing (busy server rejects
	// immediately).
	MaxQueue int

	// MaxBodyBytes limits request bodies; 0 selects the default (1 MiB).
	MaxBodyBytes int64

	// RequestTimeout is the per-request deadline applied on top of the
	// client's own context, for synchronous handlers and jobs alike; 0
	// disables it. A request past the deadline is abandoned at the search's
	// next cancellation checkpoint and answered with a structured 504.
	RequestTimeout time.Duration

	// JobTTL is how long a finished (done/failed/cancelled) job remains
	// queryable before it is garbage-collected; 0 selects the default
	// (10 minutes), negative collects terminal jobs on the next access.
	JobTTL time.Duration

	// MaxJobs bounds jobs that are queued or running at once; 0 selects the
	// default (64). Submissions beyond it are rejected with 503.
	MaxJobs int

	// Logger receives one access-log line per request; nil disables logging.
	Logger *log.Logger

	// Store is the persistent plan store (internal/store) consulted on
	// plan-cache misses before any search runs and written behind every
	// locally computed plan, so restarts come up warm; nil disables
	// persistence. The warm-hit fast path is unaffected: the store is only
	// reached inside the miss singleflight.
	Store compile.PlanStore

	// Peers enables consistent-hash proxy-on-miss across a static vwsdkd
	// fleet (internal/peer): a miss on a key another node owns is fetched
	// from that node instead of searched locally, falling back to local
	// compute when the owner is unreachable. nil disables the fleet tier.
	Peers *peer.Client
}

const (
	defaultPlanCacheSize = 128
	defaultMaxQueue      = 64
	defaultMaxBodyBytes  = 1 << 20
	defaultJobTTL        = 10 * time.Minute
	defaultMaxJobs       = 64
)

// Server is the compile service. Build one with New; it is an http.Handler
// safe for concurrent use.
type Server struct {
	eng     *engine.Engine
	comp    *compile.Compiler
	plans   *planCache
	jobs    *jobSet
	logger  *log.Logger
	maxBody int64
	timeout time.Duration
	mux     *http.ServeMux

	sem      chan struct{} // bounds concurrently running compilations
	sweepSem chan struct{} // bounds concurrently running sweep streams
	maxQueue int
	queued   atomic.Int64

	store compile.PlanStore
	peers *peer.Client
	opt   *optimize.Optimizer

	requests    atomic.Uint64
	inFlight    atomic.Int64
	rejected    atomic.Uint64
	peerProxied atomic.Uint64
	peerFailed  atomic.Uint64
	hist        latencyHist

	optRuns     atomic.Uint64 // optimize runs started (streams + jobs)
	optPoints   atomic.Uint64 // design points evaluated (admits + rejects)
	optAdmitted atomic.Uint64
	optEvicted  atomic.Uint64
	optRejected atomic.Uint64

	started   time.Time
	metrics   *obs.Registry
	httpHist  *obs.Histogram            // request-duration histogram for /metrics
	phaseHist map[string]*obs.Histogram // per-phase compile-time histograms, keyed by span name
}

// New returns a Server with the given configuration.
func New(cfg Config) *Server {
	if cfg.Engine == nil {
		cfg.Engine = engine.New()
	}
	var searcher core.Searcher = cfg.Engine
	if cfg.Searcher != nil {
		searcher = cfg.Searcher
	}
	if cfg.PlanCacheSize == 0 {
		cfg.PlanCacheSize = defaultPlanCacheSize
	}
	if cfg.MaxConcurrent < 1 {
		cfg.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = defaultMaxQueue
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = defaultMaxBodyBytes
	}
	if cfg.JobTTL == 0 {
		cfg.JobTTL = defaultJobTTL
	} else if cfg.JobTTL < 0 {
		cfg.JobTTL = 0
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = defaultMaxJobs
	}
	s := &Server{
		eng:      cfg.Engine,
		comp:     compile.New(searcher),
		plans:    newPlanCache(cfg.PlanCacheSize),
		store:    cfg.Store,
		peers:    cfg.Peers,
		jobs:     newJobSet(cfg.JobTTL, cfg.MaxJobs),
		logger:   cfg.Logger,
		maxBody:  cfg.MaxBodyBytes,
		timeout:  cfg.RequestTimeout,
		sem:      make(chan struct{}, cfg.MaxConcurrent),
		sweepSem: make(chan struct{}, cfg.MaxConcurrent),
		maxQueue: cfg.MaxQueue,
		mux:      http.NewServeMux(),
		started:  time.Now(),
	}
	// The optimizer compiles through the server's shared compiler, so design
	// points reuse the same engine memoization every other endpoint warms.
	s.opt = optimize.New(s.comp)
	s.initMetrics()
	// Every path is registered for all methods and dispatched through
	// methods{}, so method mismatches get the structured 405 below instead
	// of the mux's plain-text default; the "/" fallback turns unknown paths
	// into structured 404s.
	s.mux.Handle("/v1/compile", methods{http.MethodPost: s.handleCompile})
	s.mux.Handle("/v1/sweep", methods{http.MethodPost: s.handleSweep})
	s.mux.Handle("/v1/optimize", methods{http.MethodPost: s.handleOptimize})
	s.mux.Handle("/v1/jobs", methods{http.MethodPost: s.handleJobCreate, http.MethodGet: s.handleJobList})
	s.mux.Handle("/v1/jobs/{id}", methods{http.MethodGet: s.handleJobGet, http.MethodDelete: s.handleJobDelete})
	s.mux.Handle("/v1/networks", methods{http.MethodGet: s.handleNetworks})
	s.mux.Handle("/healthz", methods{http.MethodGet: s.handleHealthz})
	s.mux.Handle("/stats", methods{http.MethodGet: s.handleStats})
	s.mux.Handle("/metrics", methods{http.MethodGet: s.handleMetrics})
	s.mux.HandleFunc("/", s.handleNotFound)
	return s
}

// Engine returns the shared search engine (for tests and stats).
func (s *Server) Engine() *engine.Engine { return s.eng }

// methods dispatches one registered path by HTTP method, replacing the
// mux's built-in plain-text 405 with the structured error JSON every other
// rejection uses (and advertising the allowed methods, as RFC 9110
// requires).
type methods map[string]http.HandlerFunc

func (m methods) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h, ok := m[r.Method]; ok {
		h(w, r)
		return
	}
	// HEAD is implicitly served by the GET handler, as the mux's method
	// patterns would have it: net/http discards the body and keeps the
	// headers, so health probes using HEAD keep working.
	if r.Method == http.MethodHead {
		if h, ok := m[http.MethodGet]; ok {
			h(w, r)
			return
		}
	}
	allowed := make([]string, 0, len(m))
	for method := range m {
		allowed = append(allowed, method)
	}
	sort.Strings(allowed)
	w.Header().Set("Allow", strings.Join(allowed, ", "))
	writeError(w, errorf(http.StatusMethodNotAllowed,
		"method %s not allowed on %s (allowed: %s)", r.Method, r.URL.Path, strings.Join(allowed, ", ")))
}

// handleNotFound is the structured fallback for paths no handler claims.
func (s *Server) handleNotFound(w http.ResponseWriter, r *http.Request) {
	writeError(w, errorf(http.StatusNotFound, "no such endpoint %s", r.URL.Path))
}

// ServeHTTP dispatches to the API endpoints, wrapped in request-id
// assignment, request counting, latency measurement and access logging.
// Every response carries X-Request-Id (the client's, when safe to echo,
// otherwise generated); the same id prefixes the access-log line and is
// embedded in structured error bodies, so a log line, a trace and an error
// report can all be joined on it.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.requests.Add(1)
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	rid := requestID(r)
	w.Header().Set("X-Request-Id", rid)
	rw := &responseWriter{ResponseWriter: w}
	s.mux.ServeHTTP(rw, r)
	d := time.Since(start)
	s.hist.observe(d)
	s.httpHist.Observe(d.Seconds())
	if s.logger != nil {
		s.logger.Printf("%s %s %s %d %dB %s", rid, r.Method, r.URL.Path, rw.code(), rw.bytes, d.Round(time.Microsecond))
	}
}

// requestContext derives a synchronous handler's working context: the
// client's own context (cancelled on disconnect) plus the configured
// per-request deadline. Callers must invoke the returned cancel.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.timeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.timeout)
}

// responseWriter records the status code and body size for the access log,
// forwarding Flush so the sweep stream still flushes per line.
type responseWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *responseWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *responseWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *responseWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *responseWriter) code() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

// acquire takes one compilation slot without waiting beyond the configured
// queue: a free slot is taken immediately, otherwise the request queues
// until a slot frees or ctx ends (client gone, or deadline hit), and a full
// queue rejects with errBusy. Matching release() must follow every nil
// return.
func (s *Server) acquire(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	default:
	}
	if s.maxQueue <= 0 || s.queued.Add(1) > int64(s.maxQueue) {
		if s.maxQueue > 0 {
			s.queued.Add(-1)
		}
		s.rejected.Add(1)
		return errBusy
	}
	defer s.queued.Add(-1)
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		// Freeing the queue slot is the whole point: a dead client must not
		// keep occupying admission capacity. The error maps to 503 or 504
		// through toHTTPError.
		return ctx.Err()
	}
}

// acquireBlocking takes a slot with no queue bound — used by sweep cells and
// jobs, which belong to one already-admitted request and must not be
// individually rejected.
func (s *Server) acquireBlocking(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) release() { <-s.sem }

// compilePlan serves one compilation through the plan cache with
// singleflight coalescing, entirely under ctx: waiting for admission,
// joining an in-flight compilation and the search loops themselves all
// abort when ctx ends. block selects the sweep-cell/job admission policy
// (wait indefinitely) over the compile-endpoint one (bounded queue, 503).
// hop marks a request already proxied by a peer, which must be answered
// locally (never re-proxied). The returned entry is shared and must not be
// mutated.
//
// A miss fills through the cache tiers in cost order, all inside the
// singleflight (so N identical concurrent requests — including a fleet-wide
// thundering herd arriving through the peer hop — still do exactly one
// search somewhere):
//
//  1. the persistent store (validated on load; a quarantined entry falls
//     through to recompute),
//  2. the owning peer, when a fleet is configured and another node owns the
//     key (failure degrades to local compute),
//  3. a local compile, written behind to the store.
//
// Every compilation that actually runs records its own provenance trace —
// queue-wait, the compile pipeline's span tree, and plan serialization —
// regardless of whether the requesting client asked for one: the tree and
// phase durations are frozen onto the cache entry (so a later ?trace=1 hit
// still answers where the plan came from) and feed the per-phase
// vwsdk_compile_phase_seconds histograms. The provenance trace deliberately
// replaces any request trace on ctx; the request's own tree references the
// compile through its "handler" phase. Store and peer fills carry no
// provenance — the search they avoid is exactly the part worth tracing.
func (s *Server) compilePlan(ctx context.Context, key string, req compile.Request, block, hop bool) (*planEntry, bool, error) {
	return s.plans.do(ctx, key, func() (compiled, error) {
		if s.store != nil {
			if data, plan, ok := s.store.GetPlan(key); ok {
				return compiled{plan: plan, data: data, source: sourceStore}, nil
			}
		}
		if res, ok := s.fetchFromPeer(ctx, key, req, hop); ok {
			return res, nil
		}
		prov := obs.New(req.Network.Name)
		pctx := obs.NewContext(ctx, prov)
		_, qsp := obs.Start(pctx, "queue-wait")
		var err error
		if block {
			err = s.acquireBlocking(ctx)
		} else {
			err = s.acquire(ctx)
		}
		qsp.End()
		if err != nil {
			return compiled{}, err
		}
		defer s.release()
		p, err := s.comp.Compile(pctx, req)
		if err != nil {
			return compiled{}, err
		}
		// Serialize compactly once; every request served from this entry —
		// including warm hits, which are allocation-free — writes these bytes.
		var buf bytes.Buffer
		_, esp := obs.Start(pctx, "encode")
		err = p.Encode(&buf)
		esp.End()
		if err != nil {
			return compiled{}, err
		}
		s.observeCompile(prov)
		if s.store != nil {
			// Write-behind: PutPlan is asynchronous, so persistence costs the
			// serve path nothing. Locally computed plans are persisted whether
			// or not this node owns the key — a node that computed under peer
			// degradation stays warm across its own restarts too.
			s.store.PutPlan(key, buf.Bytes())
		}
		return compiled{plan: p, data: buf.Bytes(), trace: prov.Tree(), phases: prov.Phases()}, nil
	})
}

// fetchFromPeer tries to fill a miss from the key's owning peer. It returns
// ok=false — degrade to local compute — when no fleet is configured, the
// request already took its one hop, this node owns the key, the request is
// not wire-representable, or the owner is down or answers garbage. Failures
// of an actual attempt are counted; configuration-based skips are not.
func (s *Server) fetchFromPeer(ctx context.Context, key string, req compile.Request, hop bool) (compiled, bool) {
	if s.peers == nil || hop {
		return compiled{}, false
	}
	owner, self := s.peers.Ring().Owner(key)
	if self {
		return compiled{}, false
	}
	body, ok := proxyBody(req)
	if !ok {
		return compiled{}, false
	}
	data, err := s.peers.Fetch(ctx, owner, body)
	if err != nil {
		s.peerFailed.Add(1)
		if s.logger != nil {
			s.logger.Printf("peer: falling back to local compute for %s: %v", req.Network.Name, err)
		}
		return compiled{}, false
	}
	// Validate the peer's bytes exactly like a store load: a corrupt or
	// truncated response must never enter the cache. The owner serialized a
	// validated plan, so a failure here means transport damage or version
	// skew — either way, local compute is the safe answer.
	plan, err := compile.FromJSON(data)
	if err != nil {
		s.peerFailed.Add(1)
		if s.logger != nil {
			s.logger.Printf("peer: rejected invalid plan from %s: %v", owner, err)
		}
		return compiled{}, false
	}
	s.peerProxied.Add(1)
	return compiled{plan: plan, data: data, source: sourcePeer}, true
}

// proxyBody serializes a resolved request back into the /v1/compile wire
// format for the peer hop. Requests whose options have no wire form — a
// custom energy model or physical plans, neither reachable through the HTTP
// surface today — report ok=false and are compiled locally.
func proxyBody(req compile.Request) ([]byte, bool) {
	if req.Options.Energy != nil || req.Options.Plans {
		return nil, false
	}
	spec, err := model.ToJSON(req.Network)
	if err != nil {
		return nil, false
	}
	wire := struct {
		Network json.RawMessage `json:"network"`
		Array   map[string]int  `json:"array"`
		Options *requestOptions `json:"options,omitempty"`
	}{
		Network: json.RawMessage(spec),
		Array:   map[string]int{"rows": req.Array.Rows, "cols": req.Array.Cols},
		Options: wireOptions(req.Options),
	}
	body, err := json.Marshal(wire)
	if err != nil {
		return nil, false
	}
	return body, true
}

// keyBufPool recycles compile.AppendKey scratch buffers across requests, so
// the warm-hit fast path builds its cache key without allocating.
var keyBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 1024)
	return &b
}}

// Shared header value slices: assigning them into the header map directly
// avoids the per-request []string{v} allocation http.Header.Set would pay.
var (
	hdrJSON  = []string{"application/json"}
	hdrHit   = []string{"hit"}
	hdrMiss  = []string{"miss"}
	hdrStore = []string{sourceStore}
	hdrPeer  = []string{sourcePeer}
)

// setPlanHeaders writes the /v1/compile response headers without
// allocating. X-Cache reports how this response was produced: "hit" (LRU
// hit or coalesced join), "store" (filled from the persistent store),
// "peer" (fetched from the owning peer) or "miss" (compiled here).
func setPlanHeaders(h http.Header, cached bool, source string) {
	h["Content-Type"] = hdrJSON
	switch {
	case cached:
		h["X-Cache"] = hdrHit
	case source == sourceStore:
		h["X-Cache"] = hdrStore
	case source == sourcePeer:
		h["X-Cache"] = hdrPeer
	default:
		h["X-Cache"] = hdrMiss
	}
}

// isPeerHop reports whether the request was proxied here by a peer
// (peer.HopHeader present) and must therefore be answered locally — one hop
// maximum, so disagreeing rings can never form a proxy cycle.
func isPeerHop(r *http.Request) bool {
	return len(r.Header[peer.HopHeader]) > 0
}

// cachedEntry builds req's canonical key in a pooled buffer and looks it up
// in the plan cache, allocating nothing on either hit or miss. It returns
// nil when the plan is not cached; the error reports an invalid request.
func (s *Server) cachedEntry(req compile.Request) (*planEntry, error) {
	bp := keyBufPool.Get().(*[]byte)
	buf, err := compile.AppendKey((*bp)[:0], req)
	if err != nil {
		keyBufPool.Put(bp)
		return nil, err
	}
	*bp = buf // keep the grown capacity
	entry := s.plans.hit(buf)
	keyBufPool.Put(bp)
	return entry, nil
}

// CachedPlan writes the cached serialized plan for req to w and reports
// whether one was present, without compiling on a miss. It is the warm-hit
// fast path of the /v1/compile handler, exported as a measurable unit: the
// serve benchmark and the allocation regression tests pin it at zero
// allocations per call.
func (s *Server) CachedPlan(w io.Writer, req compile.Request) (bool, error) {
	entry, err := s.cachedEntry(req)
	if err != nil || entry == nil {
		return false, err
	}
	_, err = w.Write(entry.data)
	return true, err
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	// ?trace=1 selects the debug form that attaches the span tree to the
	// response. The RawQuery guard keeps the common no-query request off
	// url.Values parsing entirely.
	if r.URL.RawQuery != "" && r.URL.Query().Get("trace") == "1" {
		s.handleCompileTraced(w, r)
		return
	}
	start := time.Now()
	var body compileRequest
	if herr := decodeJSONBody(w, r, s.maxBody, &body); herr != nil {
		writeError(w, herr)
		return
	}
	req, herr := body.resolve()
	if herr != nil {
		writeError(w, herr)
		return
	}
	// Warm-hit fast path: key bytes in a pooled buffer, byte-keyed cache
	// lookup, cached serialized bytes, shared header slices — no
	// allocations, no request context, no singleflight machinery.
	if entry, err := s.cachedEntry(req); err != nil {
		writeError(w, errorf(http.StatusUnprocessableEntity, "%v", err))
		return
	} else if entry != nil {
		setPlanHeaders(w.Header(), true, "")
		w.Write(entry.data)
		return
	}
	key, err := compile.Key(req)
	if err != nil {
		// Unreachable (cachedEntry validated req), kept for defense.
		writeError(w, errorf(http.StatusUnprocessableEntity, "%v", err))
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	entry, cached, err := s.compilePlan(ctx, key, req, false, isPeerHop(r))
	if err != nil {
		writeError(w, toHTTPError(err))
		return
	}
	setPlanHeaders(w.Header(), cached, entry.source)
	// Server-Timing carries the compile provenance phases (queue-wait,
	// compile, encode) plus this request's own total. A coalesced join
	// reports the leader's phases, which may exceed the joiner's total —
	// the phases describe the compilation, the total this request. The
	// allocation-free warm-hit path above intentionally skips the header.
	w.Header().Set("Server-Timing", obs.ServerTiming(entry.phases, time.Since(start)))
	w.Write(entry.data)
}

// networkInfo is one /v1/networks entry.
type networkInfo struct {
	Name   string `json:"name"`
	Layers int    `json:"layers"`
	MACs   int64  `json:"macs"`
}

func (s *Server) handleNetworks(w http.ResponseWriter, r *http.Request) {
	infos := make([]networkInfo, 0, 4)
	for _, n := range model.All() {
		infos = append(infos, networkInfo{Name: n.Name, Layers: len(n.Layers), MACs: n.TotalMACs()})
	}
	writeJSON(w, http.StatusOK, map[string]any{"networks": infos})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"version":        cliutil.Version(),
		"revision":       cliutil.Revision(),
		"go_version":     runtime.Version(),
		"uptime_seconds": time.Since(s.started).Seconds(),
		"goroutines":     runtime.NumGoroutine(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// Stats is the /stats payload: process, server, plan-cache, job and engine
// counters, plus the store and peer tiers when configured.
type Stats struct {
	Process   ProcessStats   `json:"process"`
	Server    ServerStats    `json:"server"`
	PlanCache PlanCacheStats `json:"plan_cache"`
	Jobs      JobStats       `json:"jobs"`
	Engine    EngineStats    `json:"engine"`
	Optimize  OptimizeStats  `json:"optimize"`

	// Store reports the persistent plan store's counters; nil when no store
	// is configured.
	Store *compile.StoreStats `json:"store,omitempty"`

	// Peer reports the fleet tier's counters; nil when no peers are
	// configured.
	Peer *PeerStats `json:"peer,omitempty"`
}

// OptimizeStats are the /v1/optimize surface's counters, across synchronous
// streams and optimize jobs alike.
type OptimizeStats struct {
	// Runs counts admitted optimize searches; PointsEvaluated counts design
	// points scored across them. Admitted, Evicted and Rejected are the
	// frontier bookkeeping sums (Dominated = Rejected + Evicted).
	Runs            uint64 `json:"runs"`
	PointsEvaluated uint64 `json:"points_evaluated"`
	Admitted        uint64 `json:"admitted"`
	Evicted         uint64 `json:"evicted"`
	Rejected        uint64 `json:"rejected"`
}

// PeerStats are the fleet tier's counters and configuration.
type PeerStats struct {
	// Proxied counts misses successfully filled from the owning peer;
	// Failed counts proxy attempts that fell back to local compute (peer
	// down, or an invalid response).
	Proxied uint64 `json:"proxied"`
	Failed  uint64 `json:"failed"`

	// Nodes is the ring size; Self is this node's address in the ring (""
	// when it is not a member).
	Nodes int    `json:"nodes"`
	Self  string `json:"self"`
}

// ProcessStats identify and size the serving process, so fleet dashboards
// can detect version skew and runaway goroutine counts.
type ProcessStats struct {
	Version       string  `json:"version"`
	Revision      string  `json:"revision"`
	GoVersion     string  `json:"go_version"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Goroutines    int     `json:"goroutines"`
}

// ServerStats are the HTTP-level counters.
type ServerStats struct {
	// Requests counts every request received; InFlight and Queued are the
	// current gauges; Rejected counts 503s from the full queue.
	Requests uint64 `json:"requests"`
	InFlight int64  `json:"in_flight"`
	Queued   int64  `json:"queued"`
	Rejected uint64 `json:"rejected"`

	// LatencyMs is the request-latency histogram.
	LatencyMs Histogram `json:"latency_ms"`
}

// EngineStats mirrors engine.Stats with stable JSON names.
type EngineStats struct {
	Searches      uint64 `json:"searches"`
	CacheHits     uint64 `json:"cache_hits"`
	CacheMisses   uint64 `json:"cache_misses"`
	FlightDedupes uint64 `json:"flight_dedupes"`
	Evictions     uint64 `json:"evictions"`
	CachedResults int    `json:"cached_results"`

	// CandidatesCosted counts candidate windows handed to the cost model by
	// computed searches; CandidatesPruned counts the windows the exhaustive
	// sweeps would have costed but the breakpoint-pruned enumerators
	// skipped.
	CandidatesCosted uint64 `json:"candidates_costed"`
	CandidatesPruned uint64 `json:"candidates_pruned"`

	// InFlightSearches is the current number of searches holding a
	// worker-pool slot.
	InFlightSearches int64 `json:"in_flight_searches"`
}

// Stats returns a snapshot of every counter the service exposes.
func (s *Server) Stats() Stats {
	es := s.eng.Stats()
	var st *compile.StoreStats
	if s.store != nil {
		ss := s.store.StoreStats()
		st = &ss
	}
	var ps *PeerStats
	if s.peers != nil {
		ps = &PeerStats{
			Proxied: s.peerProxied.Load(),
			Failed:  s.peerFailed.Load(),
			Nodes:   len(s.peers.Ring().Nodes()),
			Self:    s.peers.Ring().Self(),
		}
	}
	return Stats{
		Store: st,
		Peer:  ps,
		Process: ProcessStats{
			Version:       cliutil.Version(),
			Revision:      cliutil.Revision(),
			GoVersion:     runtime.Version(),
			UptimeSeconds: time.Since(s.started).Seconds(),
			Goroutines:    runtime.NumGoroutine(),
		},
		Server: ServerStats{
			Requests:  s.requests.Load(),
			InFlight:  s.inFlight.Load(),
			Queued:    s.queued.Load(),
			Rejected:  s.rejected.Load(),
			LatencyMs: s.hist.snapshot(),
		},
		PlanCache: s.plans.stats(),
		Jobs:      s.jobs.stats(),
		Optimize: OptimizeStats{
			Runs:            s.optRuns.Load(),
			PointsEvaluated: s.optPoints.Load(),
			Admitted:        s.optAdmitted.Load(),
			Evicted:         s.optEvicted.Load(),
			Rejected:        s.optRejected.Load(),
		},
		Engine: EngineStats{
			Searches:         es.Searches,
			CacheHits:        es.CacheHits,
			CacheMisses:      es.CacheMisses,
			FlightDedupes:    es.FlightDedupes,
			Evictions:        es.Evictions,
			CachedResults:    es.CachedResults,
			CandidatesCosted: es.CandidatesCosted,
			CandidatesPruned: es.CandidatesPruned,
			InFlightSearches: es.InFlightSearches,
		},
	}
}

// latencyBoundsMs are the histogram bucket upper bounds in milliseconds;
// requests slower than the last bound land in the overflow bucket.
var latencyBoundsMs = [...]float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500}

// latencyHist is a fixed-bucket latency histogram with atomic counters.
type latencyHist struct {
	counts [len(latencyBoundsMs) + 1]atomic.Uint64
}

func (h *latencyHist) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	for i, bound := range latencyBoundsMs[:] {
		if ms <= bound {
			h.counts[i].Add(1)
			return
		}
	}
	h.counts[len(latencyBoundsMs)].Add(1)
}

// Histogram is the JSON form of the latency histogram. Buckets are
// disjoint, not cumulative: counts[i] is the number of requests with
// latency in (upper_bounds_ms[i-1], upper_bounds_ms[i]], and the final
// count is the overflow bucket beyond the last bound.
type Histogram struct {
	UpperBoundsMs []float64 `json:"upper_bounds_ms"`
	Counts        []uint64  `json:"counts"`
}

func (h *latencyHist) snapshot() Histogram {
	// Both slices are fresh copies: the bounds array is shared process-wide
	// and must not be mutable through the exported Stats API.
	out := Histogram{
		UpperBoundsMs: append([]float64(nil), latencyBoundsMs[:]...),
		Counts:        make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		out.Counts[i] = h.counts[i].Load()
	}
	return out
}

// httpError is an error with an HTTP status, rendered as the structured
// error JSON every non-2xx response carries.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func errorf(status int, format string, args ...any) *httpError {
	return &httpError{status: status, msg: fmt.Sprintf(format, args...)}
}

var errBusy = &httpError{
	status: http.StatusServiceUnavailable,
	msg:    "server at capacity: all compilation slots and queue positions are taken",
}

// toHTTPError passes httpErrors through and maps context ends by cause: a
// deadline (the -timeout flag) is the server's answer and gets a structured
// 504, a cancellation (the client went away — nobody is reading the
// response) gets 503, and everything else (validation failures surfaced by
// the pipeline) is wrapped as 422.
func toHTTPError(err error) *httpError {
	if herr, ok := err.(*httpError); ok {
		return herr
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return errorf(http.StatusGatewayTimeout, "compilation exceeded the request deadline: %v", err)
	}
	if errors.Is(err, context.Canceled) {
		return errorf(http.StatusServiceUnavailable, "compilation cancelled: %v", err)
	}
	return errorf(http.StatusUnprocessableEntity, "%v", err)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, herr *httpError) {
	e := map[string]any{"status": herr.status, "message": herr.msg}
	// ServeHTTP stamped the response's X-Request-Id before dispatch; echoing
	// it in the body lets an error report be joined to the access log.
	if id := w.Header().Get("X-Request-Id"); id != "" {
		e["request_id"] = id
	}
	writeJSON(w, herr.status, map[string]any{"error": e})
}
