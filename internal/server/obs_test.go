package server

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/obstest"
)

// TestMetricsExposition drives traffic through every counted subsystem
// (compile, jobs, an error) and checks the scrape is valid Prometheus text
// exposition carrying the stable metric-name contract from DESIGN.md §9.
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if resp, body := post(t, ts.URL+"/v1/compile", `{"network": "VGG-13", "array": "512x512"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: status %d: %s", resp.StatusCode, body)
	}
	post(t, ts.URL+"/v1/compile", `not json`)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Errorf("Content-Type = %q, want %q", ct, obs.ContentType)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	obstest.CheckExposition(t, body)

	for _, want := range []string{
		"vwsdk_build_info{",
		"vwsdk_uptime_seconds ",
		"vwsdk_http_requests_total ",
		"vwsdk_http_request_duration_seconds_bucket{",
		"vwsdk_plan_cache_misses_total ",
		"vwsdk_engine_searches_total ",
		"vwsdk_jobs_live ",
		`vwsdk_compile_phase_seconds_bucket{phase="search",`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	// The compile above must have moved the request counter and the search
	// phase histogram.
	if !scrapeValueAtLeast(t, body, "vwsdk_http_requests_total", 2) {
		t.Errorf("vwsdk_http_requests_total did not count the requests:\n%s", grepPrefix(body, "vwsdk_http_requests_total"))
	}
	if !scrapeValueAtLeast(t, body, `vwsdk_compile_phase_seconds_count{phase="search"}`, 1) {
		t.Errorf("search phase histogram empty:\n%s", grepPrefix(body, "vwsdk_compile_phase_seconds_count"))
	}
}

// scrapeValueAtLeast reports whether the sample named name (exact, including
// any label set) is present with a value >= min.
func scrapeValueAtLeast(t *testing.T, body, name string, min float64) bool {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		rest, ok := strings.CutPrefix(line, name+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		return v >= min
	}
	return false
}

func grepPrefix(body, prefix string) string {
	var out []string
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, prefix) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// TestMetricsScrapeRace races /metrics and /stats scrapes against live
// compiles and the job lifecycle (create, query, GC with an immediate TTL),
// so `go test -race` patrols the whole sample-at-scrape surface. Every
// scrape must still be a valid exposition.
func TestMetricsScrapeRace(t *testing.T) {
	_, ts := newTestServer(t, Config{JobTTL: time.Millisecond})

	arrays := []string{"128x128", "256x256", "512x512", "1024x1024"}
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(3)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				body := fmt.Sprintf(`{"network": "VGG-13", "array": "%s"}`, arrays[(g+i)%len(arrays)])
				if resp, b := post(t, ts.URL+"/v1/compile", body); resp.StatusCode != http.StatusOK {
					t.Errorf("compile: status %d: %s", resp.StatusCode, b)
					return
				}
			}
		}(g)
		go func() {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				status, body := get(t, ts.URL+"/metrics")
				if status != http.StatusOK {
					t.Errorf("/metrics status %d", status)
					return
				}
				obstest.CheckExposition(t, string(body))
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				if status, body := get(t, ts.URL+"/stats"); status != http.StatusOK {
					t.Errorf("/stats status %d: %s", status, body)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			resp, body := post(t, ts.URL+"/v1/jobs", `{"sweep": {"networks": ["VGG-13"], "arrays": ["128x128"]}}`)
			if resp.StatusCode != http.StatusAccepted {
				t.Errorf("job create: status %d: %s", resp.StatusCode, body)
				return
			}
			var job struct {
				Job struct {
					ID string `json:"id"`
				} `json:"job"`
			}
			if err := json.Unmarshal(body, &job); err != nil {
				t.Error(err)
				return
			}
			get(t, ts.URL+"/v1/jobs/"+job.Job.ID)
			time.Sleep(2 * time.Millisecond) // let the TTL GC race the scrapes
		}
	}()
	wg.Wait()
}

// parseServerTiming decodes a Server-Timing header into name → milliseconds.
func parseServerTiming(t *testing.T, header string) map[string]float64 {
	t.Helper()
	if header == "" {
		t.Fatal("no Server-Timing header")
	}
	out := map[string]float64{}
	for _, part := range strings.Split(header, ",") {
		name, dur, ok := strings.Cut(strings.TrimSpace(part), ";dur=")
		if !ok {
			t.Fatalf("bad Server-Timing entry %q in %q", part, header)
		}
		v, err := strconv.ParseFloat(dur, 64)
		if err != nil {
			t.Fatalf("bad Server-Timing duration %q: %v", part, err)
		}
		out[name] = v
	}
	return out
}

// TestCompileTraceDebug exercises ?trace=1 end to end, cold then warm: the
// response must carry the request span tree and the compile provenance, and
// the request phases must sum to no more than the Server-Timing total (the
// PR's acceptance criterion — phases are sequential inside the request).
func TestCompileTraceDebug(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const body = `{"network": "VGG-13", "array": "512x512"}`

	for round, wantCached := range []bool{false, true} {
		resp, data := post(t, ts.URL+"/v1/compile?trace=1", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("round %d: status %d: %s", round, resp.StatusCode, data)
		}
		var tr struct {
			RequestID    string          `json:"request_id"`
			Cached       bool            `json:"cached"`
			Plan         json.RawMessage `json:"plan"`
			Trace        []*obs.Node     `json:"trace"`
			CompileTrace []*obs.Node     `json:"compile_trace"`
		}
		if err := json.Unmarshal(data, &tr); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if tr.Cached != wantCached {
			t.Errorf("round %d: cached = %v, want %v", round, tr.Cached, wantCached)
		}
		if tr.RequestID == "" || tr.RequestID != resp.Header.Get("X-Request-Id") {
			t.Errorf("round %d: request_id %q vs header %q", round, tr.RequestID, resp.Header.Get("X-Request-Id"))
		}
		if len(tr.Plan) == 0 {
			t.Errorf("round %d: no plan attached", round)
		}

		// The request tree always has decode and lookup; the handler span
		// only exists when the compilation actually ran.
		if obs.Find(tr.Trace, "decode") == nil || obs.Find(tr.Trace, "lookup") == nil {
			t.Errorf("round %d: request tree missing decode/lookup: %+v", round, tr.Trace)
		}
		if got := obs.Find(tr.Trace, "handler") != nil; got == wantCached {
			t.Errorf("round %d: handler span present = %v with cached = %v", round, got, wantCached)
		}

		// Both rounds carry the cold compile's provenance: queue-wait, the
		// compile tree (with per-layer search spans), and plan encoding.
		for _, name := range []string{"queue-wait", "compile", "encode"} {
			if obs.Find(tr.CompileTrace, name) == nil {
				t.Errorf("round %d: compile provenance missing %q", round, name)
			}
		}
		if comp := obs.Find(tr.CompileTrace, "compile"); comp != nil {
			if obs.Find(comp.Children, "layer") == nil {
				t.Errorf("round %d: compile tree has no layer spans", round)
			} else if obs.Find(obs.Find(comp.Children, "layer").Children, "search") == nil {
				t.Errorf("round %d: layer span has no search child", round)
			}
		}

		// Acceptance: the span phases sum to within the request total.
		st := parseServerTiming(t, resp.Header.Get("Server-Timing"))
		total, ok := st["total"]
		if !ok {
			t.Fatalf("round %d: Server-Timing lacks total: %v", round, st)
		}
		var sum float64
		for name, v := range st {
			if name != "total" {
				sum += v
			}
		}
		if sum > total+0.05 { // 0.05ms slack for the two timestamps' rounding
			t.Errorf("round %d: phase sum %.2fms > total %.2fms (%v)", round, sum, total, st)
		}
	}
}

// TestServerTimingColdOnly pins the warm-path contract: a cold /v1/compile
// carries Server-Timing built from the compile provenance, while the warm
// zero-alloc fast path deliberately omits the header.
func TestServerTimingColdOnly(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const body = `{"network": "VGG-13", "array": "256x256"}`

	resp, data := post(t, ts.URL+"/v1/compile", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	st := parseServerTiming(t, resp.Header.Get("Server-Timing"))
	for _, name := range []string{"queue-wait", "compile", "encode", "total"} {
		if _, ok := st[name]; !ok {
			t.Errorf("cold Server-Timing missing %q: %v", name, st)
		}
	}

	resp, data = post(t, ts.URL+"/v1/compile", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm: status %d: %s", resp.StatusCode, data)
	}
	if resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("second compile not a cache hit")
	}
	if h := resp.Header.Get("Server-Timing"); h != "" {
		t.Errorf("warm fast path grew a Server-Timing header %q (check its alloc cost before keeping it)", h)
	}
}

// TestRequestID covers the X-Request-ID satellite: ids are generated when
// absent, echoed when the client's id is safe, replaced when it is not, and
// attached to structured error bodies.
func TestRequestID(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	status, _ := get(t, ts.URL+"/healthz")
	if status != http.StatusOK {
		t.Fatal("healthz failed")
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rid := resp.Header.Get("X-Request-Id"); rid == "" {
		t.Error("no X-Request-Id generated")
	}

	do := func(clientID string) string {
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
		if err != nil {
			t.Fatal(err)
		}
		if clientID != "" {
			req.Header.Set("X-Request-Id", clientID)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.Header.Get("X-Request-Id")
	}
	if got := do("client-id-42"); got != "client-id-42" {
		t.Errorf("valid client id not echoed: %q", got)
	}
	if got := do("has spaces"); got == "has spaces" || got == "" {
		t.Errorf("unsafe client id echoed verbatim: %q", got)
	}
	if long := strings.Repeat("x", 200); do(long) == long {
		t.Error("over-long client id echoed verbatim")
	}

	// Errors carry the id too, so a support ticket can quote one string.
	resp, body := post(t, ts.URL+"/v1/compile", `{"network": "no-such-net", "array": "512x512"}`)
	if resp.StatusCode == http.StatusOK {
		t.Fatal("expected an error response")
	}
	var e struct {
		Error struct {
			RequestID string `json:"request_id"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.Error.RequestID == "" || e.Error.RequestID != resp.Header.Get("X-Request-Id") {
		t.Errorf("error request_id %q vs header %q", e.Error.RequestID, resp.Header.Get("X-Request-Id"))
	}
}

// TestAccessLogRequestID checks the access-log line leads with the request
// id, so one grep correlates a client report with the server's view.
func TestAccessLogRequestID(t *testing.T) {
	var buf syncWriter
	_, ts := newTestServer(t, Config{Logger: log.New(&buf, "", 0)})
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "rid-log-probe")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := buf.String(); !strings.Contains(got, "rid-log-probe GET /healthz 200") {
		t.Errorf("access log line not prefixed with the request id:\n%s", got)
	}
}

// TestStatsProcess checks the /stats process block added for fleet
// dashboards: uptime, goroutines, and build identity.
func TestStatsProcess(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := get(t, ts.URL+"/stats")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var st struct {
		Process struct {
			Version       string  `json:"version"`
			Revision      string  `json:"revision"`
			GoVersion     string  `json:"go_version"`
			UptimeSeconds float64 `json:"uptime_seconds"`
			Goroutines    int     `json:"goroutines"`
		} `json:"process"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	p := st.Process
	if p.Version == "" || p.Revision == "" || p.GoVersion == "" || p.UptimeSeconds < 0 || p.Goroutines <= 0 {
		t.Errorf("process stats incomplete: %+v", p)
	}
}
