package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/engine"
)

const benchRequest = `{"network": "VGG-13", "array": "512x512"}`

func benchPost(b *testing.B, client *http.Client, url string) {
	b.Helper()
	resp, err := client.Post(url+"/v1/compile", "application/json", strings.NewReader(benchRequest))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status %d", resp.StatusCode)
	}
}

// BenchmarkServerCompile measures /v1/compile latency over real HTTP with
// parallel clients. "cold" disables both the plan cache and the engine's
// result cache, so every request pays the full VGG-13 search; "warm" is the
// default configuration primed by one request, so every request is a
// plan-cache byte hit — the amortization a long-lived daemon exists for.
func BenchmarkServerCompile(b *testing.B) {
	run := func(b *testing.B, cfg Config) {
		ts := httptest.NewServer(New(cfg))
		defer ts.Close()
		benchPost(b, ts.Client(), ts.URL) // prime (a no-op when caching is off)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				benchPost(b, ts.Client(), ts.URL)
			}
		})
	}
	b.Run("cold", func(b *testing.B) {
		run(b, Config{
			Engine:        engine.New(engine.WithCacheSize(0)),
			PlanCacheSize: -1,
		})
	})
	b.Run("warm", func(b *testing.B) {
		run(b, Config{})
	})
}

// BenchmarkSweepStream measures a warm 1-network × 3-array sweep stream.
func BenchmarkSweepStream(b *testing.B) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()
	req := `{"networks": ["ResNet-18"], "arrays": ["256x256", "512x512", "512x256"]}`
	for b.Loop() {
		resp, err := ts.Client().Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(req))
		if err != nil {
			b.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			b.Fatal(err)
		}
		if n := strings.Count(strings.TrimSpace(string(data)), "\n") + 1; n != 3 {
			b.Fatal(fmt.Errorf("got %d lines", n))
		}
	}
}
