package server

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/cliutil"
	"repro/internal/compile"
	"repro/internal/obs"
)

// This file is the server's observability surface: X-Request-ID assignment,
// the Prometheus /metrics registry, the per-compile phase histograms, and
// the ?trace=1 debug form of the compile handler. The conventions —
// vwsdk_-prefixed metric names as a stable contract, provenance stored on
// cache entries — are documented in DESIGN.md §9.

// ridPrefix distinguishes this process's generated request ids across
// restarts; ids are "<prefix>-<seq>" in hex.
var ridPrefix = func() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("%08x", uint32(time.Now().UnixNano()))
	}
	return hex.EncodeToString(b[:])
}()

var ridSeq atomic.Uint64

// newRequestID mints a process-unique request id.
func newRequestID() string {
	return ridPrefix + "-" + strconv.FormatUint(ridSeq.Add(1), 16)
}

// requestID returns the client-supplied X-Request-Id when it is safe to echo
// (bounded, visible ASCII — it ends up in response headers, error bodies and
// log lines) and a generated id otherwise.
func requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-Id"); id != "" && validRequestID(id) {
		return id
	}
	return newRequestID()
}

func validRequestID(id string) bool {
	if len(id) > 128 {
		return false
	}
	for i := 0; i < len(id); i++ {
		if id[i] < 0x21 || id[i] > 0x7e {
			return false
		}
	}
	return true
}

// compilePhases are the per-phase compile-time histogram series, matching
// the span names the compile pipeline records (DurationByName keys):
// admission wait, the per-layer pipeline stages, and plan serialization.
var compilePhases = []string{"queue-wait", "search", "schedule", "energy", "plan", "encode"}

// initMetrics builds the /metrics registry. Everything already counted
// elsewhere (request counters, cache stats, engine stats, job stats) is
// exposed through sample-at-scrape callbacks over those same atomics, so no
// counter is maintained twice; the histograms (request duration, compile
// phases) are the registry's own.
func (s *Server) initMetrics() {
	r := obs.NewRegistry()
	s.metrics = r

	r.GaugeFunc("vwsdk_build_info",
		"Build metadata carried in labels; the value is always 1.",
		func() float64 { return 1 },
		obs.Label{Name: "version", Value: cliutil.Version()},
		obs.Label{Name: "revision", Value: cliutil.Revision()},
		obs.Label{Name: "goversion", Value: runtime.Version()})
	r.GaugeFunc("vwsdk_uptime_seconds", "Seconds since the server was constructed.",
		func() float64 { return time.Since(s.started).Seconds() })
	r.GaugeFunc("vwsdk_goroutines", "Current number of goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })

	r.CounterFunc("vwsdk_http_requests_total", "HTTP requests received.",
		func() uint64 { return s.requests.Load() })
	r.GaugeFunc("vwsdk_http_in_flight", "HTTP requests currently being served.",
		func() float64 { return float64(s.inFlight.Load()) })
	r.GaugeFunc("vwsdk_http_queue_depth", "Compilations waiting for an admission slot.",
		func() float64 { return float64(s.queued.Load()) })
	r.CounterFunc("vwsdk_http_rejected_total", "Requests rejected 503 by the full admission queue.",
		func() uint64 { return s.rejected.Load() })
	s.httpHist = r.Histogram("vwsdk_http_request_duration_seconds",
		"End-to-end HTTP request latency.", obs.DurationBuckets)

	r.CounterFunc("vwsdk_plan_cache_hits_total", "Plan-cache hits (LRU hits plus coalesced joins).",
		func() uint64 { return s.plans.hits.Load() })
	r.CounterFunc("vwsdk_plan_cache_misses_total", "Compilations actually run.",
		func() uint64 { return s.plans.misses.Load() })
	r.CounterFunc("vwsdk_plan_cache_dedupes_total", "Requests coalesced onto an in-flight compilation.",
		func() uint64 { return s.plans.dedupes.Load() })
	r.CounterFunc("vwsdk_plan_cache_evictions_total", "Plans evicted from the LRU.",
		func() uint64 { return s.plans.evictions.Load() })
	r.GaugeFunc("vwsdk_plan_cache_entries", "Plans currently cached.",
		func() float64 { return float64(s.plans.stats().Entries) })

	r.CounterFunc("vwsdk_engine_searches_total", "Layer searches served by the engine.",
		func() uint64 { return s.eng.Stats().Searches })
	r.CounterFunc("vwsdk_engine_cache_hits_total", "Searches answered from the result cache or a joined flight.",
		func() uint64 { return s.eng.Stats().CacheHits })
	r.CounterFunc("vwsdk_engine_cache_misses_total", "Searches that ran the underlying algorithm.",
		func() uint64 { return s.eng.Stats().CacheMisses })
	r.CounterFunc("vwsdk_engine_flight_dedupes_total", "Searches coalesced onto an identical in-flight search.",
		func() uint64 { return s.eng.Stats().FlightDedupes })
	r.CounterFunc("vwsdk_engine_evictions_total", "Search results evicted from the LRU.",
		func() uint64 { return s.eng.Stats().Evictions })
	r.CounterFunc("vwsdk_engine_candidates_costed_total", "Candidate windows handed to the cost model.",
		func() uint64 { return s.eng.Stats().CandidatesCosted })
	r.CounterFunc("vwsdk_engine_candidates_pruned_total", "Candidate windows skipped by the pruned enumerators.",
		func() uint64 { return s.eng.Stats().CandidatesPruned })
	r.GaugeFunc("vwsdk_engine_searches_in_flight", "Searches currently holding a worker-pool slot.",
		func() float64 { return float64(s.eng.Stats().InFlightSearches) })

	// The store and peer tiers register only when configured, so a
	// single-node, memory-only daemon's exposition is unchanged.
	if s.store != nil {
		r.CounterFunc("vwsdk_store_hits_total", "Plan-store loads that validated and were served.",
			func() uint64 { return s.store.StoreStats().Hits })
		r.CounterFunc("vwsdk_store_misses_total", "Plan-store lookups of absent keys.",
			func() uint64 { return s.store.StoreStats().Misses })
		r.CounterFunc("vwsdk_store_writes_total", "Plans written behind to the store.",
			func() uint64 { return s.store.StoreStats().Writes })
		r.CounterFunc("vwsdk_store_corrupt_total", "Store entries that failed validation and were quarantined.",
			func() uint64 { return s.store.StoreStats().Corrupt })
	}
	if s.peers != nil {
		r.CounterFunc("vwsdk_peer_proxied_total", "Plan-cache misses filled from the owning peer.",
			func() uint64 { return s.peerProxied.Load() })
		r.CounterFunc("vwsdk_peer_failed_total", "Peer proxy attempts that fell back to local compute.",
			func() uint64 { return s.peerFailed.Load() })
	}

	r.CounterFunc("vwsdk_optimize_runs_total", "Pareto-frontier optimize searches started (streams and jobs).",
		func() uint64 { return s.optRuns.Load() })
	r.CounterFunc("vwsdk_optimize_points_evaluated_total", "Design points scored by optimize searches.",
		func() uint64 { return s.optPoints.Load() })
	r.CounterFunc("vwsdk_optimize_points_admitted_total", "Design points admitted to a Pareto frontier.",
		func() uint64 { return s.optAdmitted.Load() })
	r.CounterFunc("vwsdk_optimize_points_evicted_total", "Admitted points later evicted by a dominating admit.",
		func() uint64 { return s.optEvicted.Load() })
	r.CounterFunc("vwsdk_optimize_points_dominated_total", "Design points pruned as dominated (rejected on arrival plus evicted).",
		func() uint64 { return s.optRejected.Load() + s.optEvicted.Load() })

	r.CounterFunc("vwsdk_jobs_created_total", "Jobs accepted by POST /v1/jobs.",
		func() uint64 { return s.jobs.created.Load() })
	r.CounterFunc("vwsdk_jobs_cancelled_total", "Live jobs cancelled by DELETE.",
		func() uint64 { return s.jobs.cancels.Load() })
	r.CounterFunc("vwsdk_jobs_collected_total", "Finished jobs garbage-collected after their TTL.",
		func() uint64 { return s.jobs.collected.Load() })
	r.GaugeFunc("vwsdk_jobs_live", "Jobs currently queued or running.",
		func() float64 { return float64(s.jobs.stats().Live) })

	s.phaseHist = make(map[string]*obs.Histogram, len(compilePhases))
	for _, ph := range compilePhases {
		s.phaseHist[ph] = r.Histogram("vwsdk_compile_phase_seconds",
			"Compile-pipeline time per phase, summed per compilation (concurrent layers add up).",
			obs.DurationBuckets, obs.Label{Name: "phase", Value: ph})
	}
}

// observeCompile feeds one computed compilation's provenance into the
// per-phase histograms.
func (s *Server) observeCompile(prov *obs.Trace) {
	by := prov.DurationByName()
	for ph, h := range s.phaseHist {
		if d, ok := by[ph]; ok {
			h.Observe(d.Seconds())
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.ContentType)
	s.metrics.WriteTo(w)
}

// handleCompileTraced is the ?trace=1 debug form of handleCompile: the same
// pipeline bracketed in a request trace (decode, lookup, handler phases),
// answered as JSON carrying the plan, the request's span tree, and the
// plan's compile provenance — for a cache hit, the provenance recorded when
// the plan was originally compiled. The Server-Timing header renders the
// request phases, so sum(phases) never exceeds its total.
func (s *Server) handleCompileTraced(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	tr := obs.New("request")
	tctx := obs.NewContext(r.Context(), tr)

	_, sp := obs.Start(tctx, "decode")
	var body compileRequest
	herr := decodeJSONBody(w, r, s.maxBody, &body)
	var req compile.Request
	if herr == nil {
		req, herr = body.resolve()
	}
	sp.End()
	if herr != nil {
		writeError(w, herr)
		return
	}

	_, sp = obs.Start(tctx, "lookup")
	entry, err := s.cachedEntry(req)
	sp.End()
	if err != nil {
		writeError(w, errorf(http.StatusUnprocessableEntity, "%v", err))
		return
	}
	cached := entry != nil
	if entry == nil {
		key, err := compile.Key(req)
		if err != nil {
			writeError(w, errorf(http.StatusUnprocessableEntity, "%v", err))
			return
		}
		ctx, cancel := s.requestContext(r)
		defer cancel()
		_, hsp := obs.Start(tctx, "handler")
		entry, cached, err = s.compilePlan(ctx, key, req, false, isPeerHop(r))
		hsp.End()
		if err != nil {
			writeError(w, toHTTPError(err))
			return
		}
	}

	setPlanHeaders(w.Header(), cached, entry.source)
	w.Header().Set("Server-Timing", obs.ServerTiming(tr.Phases(), time.Since(start)))
	resp := map[string]any{
		"request_id": w.Header().Get("X-Request-Id"),
		"cached":     cached,
		"plan":       json.RawMessage(entry.data),
		"trace":      tr.Tree(),
	}
	if entry.trace != nil {
		resp["compile_trace"] = entry.trace
	}
	writeJSON(w, http.StatusOK, resp)
}
