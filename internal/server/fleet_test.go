package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/compile"
	"repro/internal/peer"
	"repro/internal/store"
)

// The fleet tests cover the two-tier distributed cache: the persistent
// store (restart warm-up, corrupt-entry quarantine) and the peer tier
// (proxy-on-miss, one-hop, degradation, fleet-wide singleflight).

const tinyBody = `{"network": {"name": "tiny", "layers": [
	{"name": "c1", "iw": 8, "ih": 8, "kw": 3, "kh": 3, "ic": 4, "oc": 8}]},
	"array": "64x64"}`

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestRestartComesUpWarmFromStore(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	_, ts := newTestServer(t, Config{Store: st})

	resp, first := post(t, ts.URL+"/v1/compile", tinyBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold compile: %d: %s", resp.StatusCode, first)
	}
	if xc := resp.Header.Get("X-Cache"); xc != "miss" {
		t.Fatalf("cold compile X-Cache = %q, want miss", xc)
	}
	st.Flush() // write-behind must land before the "restart"

	// A fresh server (new engine, new LRU) over the same store directory:
	// the same request must be a store hit — no search anywhere — with plan
	// bytes byte-identical to the pre-restart response.
	st2 := openStore(t, dir)
	s2, ts2 := newTestServer(t, Config{Store: st2})
	resp2, second := post(t, ts2.URL+"/v1/compile", tinyBody)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-restart compile: %d: %s", resp2.StatusCode, second)
	}
	if xc := resp2.Header.Get("X-Cache"); xc != "store" {
		t.Errorf("post-restart X-Cache = %q, want store", xc)
	}
	if !bytes.Equal(first, second) {
		t.Error("post-restart plan bytes differ from pre-restart response")
	}
	if searches := s2.Engine().Stats().Searches; searches != 0 {
		t.Errorf("restarted engine ran %d searches, want 0 (store hit must not search)", searches)
	}
	if hits := st2.StoreStats().Hits; hits != 1 {
		t.Errorf("store hits = %d, want 1", hits)
	}

	// The store hit is now in the LRU: a third request is a plain warm hit.
	resp3, _ := post(t, ts2.URL+"/v1/compile", tinyBody)
	if xc := resp3.Header.Get("X-Cache"); xc != "hit" {
		t.Errorf("third request X-Cache = %q, want hit", xc)
	}
}

func TestCorruptStoreEntryRecomputedNeverServed(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	_, ts := newTestServer(t, Config{Store: st})
	resp, first := post(t, ts.URL+"/v1/compile", tinyBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold compile: %d", resp.StatusCode)
	}
	st.Flush()

	// Truncate every stored entry on disk, then "restart".
	damaged := 0
	filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(path) != ".json" {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)/3], 0o644); err != nil {
			t.Fatal(err)
		}
		damaged++
		return nil
	})
	if damaged != 1 {
		t.Fatalf("damaged %d entries, want 1", damaged)
	}

	st2 := openStore(t, dir)
	s2, ts2 := newTestServer(t, Config{Store: st2})
	resp2, second := post(t, ts2.URL+"/v1/compile", tinyBody)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("compile over corrupt store: %d: %s (must recompute, never 500)", resp2.StatusCode, second)
	}
	if xc := resp2.Header.Get("X-Cache"); xc != "miss" {
		t.Errorf("X-Cache = %q, want miss (recomputed)", xc)
	}
	if !bytes.Equal(first, second) {
		t.Error("recomputed plan differs from the original")
	}
	if s2.Engine().Stats().Searches == 0 {
		t.Error("no search ran — corrupt entry was served")
	}
	stats := st2.StoreStats()
	if stats.Corrupt != 1 {
		t.Errorf("corrupt counter = %d, want 1", stats.Corrupt)
	}
	// The recompute's write-behind repairs the entry: the next restart is
	// warm again.
	st2.Flush()
	st3 := openStore(t, dir)
	if _, _, ok := st3.GetPlan(mustKeyFor(t, tinyBody)); !ok {
		t.Error("store not repaired by recompute")
	}
}

// mustKeyFor resolves a wire body the way the handler does and returns its
// compile key.
func mustKeyFor(t *testing.T, body string) string {
	t.Helper()
	var cr compileRequest
	if err := json.Unmarshal([]byte(body), &cr); err != nil {
		t.Fatal(err)
	}
	req, herr := cr.resolve()
	if herr != nil {
		t.Fatal(herr.msg)
	}
	key, err := compile.Key(req)
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// newFleet builds n in-process servers wired into one consistent-hash
// fleet over a MemTransport (no sockets), with per-node configs derived
// from base.
func newFleet(t *testing.T, n int, base func(i int) Config) []*Server {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("10.99.0.%d:80", i+1)
	}
	mt := peer.MemTransport{}
	servers := make([]*Server, n)
	for i := range servers {
		ring, err := peer.NewRing(addrs[i], addrs)
		if err != nil {
			t.Fatal(err)
		}
		cfg := base(i)
		cfg.Peers = peer.NewClient(ring, mt, 0)
		servers[i] = New(cfg)
		mt[addrs[i]] = servers[i]
	}
	return servers
}

// fleetPost drives one request through a fleet node's handler in-process.
func fleetPost(t *testing.T, s *Server, body string, hdr http.Header) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, "http://fleet.test/v1/compile", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	for k, vs := range hdr {
		req.Header[k] = vs
	}
	resp, err := (peer.MemTransport{"fleet.test": s}).RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// ownerAndClient returns the index of the fleet node owning body's key and
// the index of some other node.
func ownerAndClient(t *testing.T, servers []*Server, body string) (owner, client int) {
	t.Helper()
	key := mustKeyFor(t, body)
	addr, _ := servers[0].peers.Ring().Owner(key)
	owner = -1
	for i, s := range servers {
		if s.peers.Ring().Self() == addr {
			owner = i
		}
	}
	if owner < 0 {
		t.Fatalf("no fleet node owns %q", addr)
	}
	return owner, (owner + 1) % len(servers)
}

func TestPeerProxyOnMiss(t *testing.T) {
	servers := newFleet(t, 3, func(int) Config { return Config{} })
	owner, client := ownerAndClient(t, servers, tinyBody)

	// A request to a non-owner is proxied: the owner runs the one search,
	// the client serves the owner's bytes marked X-Cache: peer.
	resp, body := fleetPost(t, servers[client], tinyBody, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxied compile: %d: %s", resp.StatusCode, body)
	}
	if xc := resp.Header.Get("X-Cache"); xc != "peer" {
		t.Errorf("X-Cache = %q, want peer", xc)
	}
	if got := servers[client].Engine().Stats().Searches; got != 0 {
		t.Errorf("client ran %d searches, want 0 (owner owns the compile)", got)
	}
	if got := servers[owner].Engine().Stats().Searches; got == 0 {
		t.Error("owner ran no searches")
	}
	if got := servers[client].peerProxied.Load(); got != 1 {
		t.Errorf("client peerProxied = %d, want 1", got)
	}

	// Same request to the owner: its LRU has it (filled by the hop).
	resp2, body2 := fleetPost(t, servers[owner], tinyBody, nil)
	if xc := resp2.Header.Get("X-Cache"); xc != "hit" {
		t.Errorf("owner X-Cache = %q, want hit", xc)
	}
	if !bytes.Equal(body, body2) {
		t.Error("proxied and owner-served bytes differ")
	}

	// And the client's own LRU now has it too: no second proxy.
	resp3, _ := fleetPost(t, servers[client], tinyBody, nil)
	if xc := resp3.Header.Get("X-Cache"); xc != "hit" {
		t.Errorf("client second request X-Cache = %q, want hit", xc)
	}
	if got := servers[client].peerProxied.Load(); got != 1 {
		t.Errorf("client peerProxied after warm hit = %d, want still 1", got)
	}
}

func TestPeerHopNeverReproxied(t *testing.T) {
	// A node receiving an already-proxied request must answer locally even
	// when it does not own the key — one hop maximum, no cycles.
	servers := newFleet(t, 3, func(int) Config { return Config{} })
	owner, client := ownerAndClient(t, servers, tinyBody)

	hdr := http.Header{}
	hdr.Set(peer.HopHeader, "test-sender")
	resp, body := fleetPost(t, servers[client], tinyBody, hdr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hopped compile: %d: %s", resp.StatusCode, body)
	}
	if xc := resp.Header.Get("X-Cache"); xc != "miss" {
		t.Errorf("X-Cache = %q, want miss (local compute, not re-proxied)", xc)
	}
	if got := servers[client].Engine().Stats().Searches; got == 0 {
		t.Error("non-owner did not compute a hopped request locally")
	}
	if got := servers[owner].Engine().Stats().Searches; got != 0 {
		t.Errorf("owner ran %d searches for a request hopped elsewhere", got)
	}
}

func TestPeerDownDegradesToLocalCompute(t *testing.T) {
	// Two live nodes plus one address nobody answers; requests whose owner
	// is the dead node must still succeed via local compute.
	addrs := []string{"10.99.1.1:80", "10.99.1.2:80", "10.99.1.3:80"}
	mt := peer.MemTransport{}
	servers := make([]*Server, 2)
	for i := range servers {
		ring, err := peer.NewRing(addrs[i], addrs)
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = New(Config{Peers: peer.NewClient(ring, mt, 0)})
		mt[addrs[i]] = servers[i]
	}
	// Find a request the dead node owns; distinct names give distinct keys.
	deadBody := ""
	for i := 0; i < 64; i++ {
		body := fmt.Sprintf(`{"network": {"name": "tiny-%d", "layers": [
			{"name": "c1", "iw": 8, "ih": 8, "kw": 3, "kh": 3, "ic": 4, "oc": 8}]},
			"array": "64x64"}`, i)
		addr, _ := servers[0].peers.Ring().Owner(mustKeyFor(t, body))
		if addr == addrs[2] {
			deadBody = body
			break
		}
	}
	if deadBody == "" {
		t.Fatal("no probe key owned by the dead node; widen the probe set")
	}
	resp, body := fleetPost(t, servers[0], deadBody, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile with dead owner: %d: %s (must degrade to local compute)", resp.StatusCode, body)
	}
	if xc := resp.Header.Get("X-Cache"); xc != "miss" {
		t.Errorf("X-Cache = %q, want miss (degraded local compute)", xc)
	}
	if got := servers[0].peerFailed.Load(); got != 1 {
		t.Errorf("peerFailed = %d, want 1", got)
	}
	if got := servers[0].Engine().Stats().Searches; got == 0 {
		t.Error("no local search ran under degradation")
	}
}

func TestFleetSingleflightAcrossProxyHop(t *testing.T) {
	// A thundering herd of identical requests on a non-owner must collapse
	// to one proxy hop and one search on the owner: the local singleflight
	// coalesces the herd, and the owner's coalesces whatever leaks through.
	servers := newFleet(t, 3, func(int) Config { return Config{} })
	owner, client := ownerAndClient(t, servers, tinyBody)

	const herd = 16
	var wg sync.WaitGroup
	codes := make([]int, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _ := fleetPost(t, servers[client], tinyBody, nil)
			codes[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Fatalf("herd request %d: status %d", i, c)
		}
	}
	if got := servers[owner].Engine().Stats().Searches; got == 0 {
		t.Error("owner ran no searches")
	}
	// Exactly one compilation fleet-wide: the owner compiled once (its
	// SearchStats counts per-layer searches, so compare plan-cache misses),
	// and the client never computed.
	if got := servers[owner].plans.misses.Load(); got != 1 {
		t.Errorf("owner plan-cache misses = %d, want 1 (herd must coalesce across the hop)", got)
	}
	if got := servers[client].plans.misses.Load(); got != 1 {
		t.Errorf("client plan-cache misses = %d, want 1 (one proxying leader)", got)
	}
	if got := servers[client].Engine().Stats().Searches; got != 0 {
		t.Errorf("client ran %d searches, want 0", got)
	}
	if got := servers[client].peerProxied.Load(); got != 1 {
		t.Errorf("client proxied %d times, want 1", got)
	}
}

func TestWarmManifest(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	s := New(Config{Store: st})
	manifest := []byte(`{"requests": [
		{"network": {"name": "tiny", "layers": [
			{"name": "c1", "iw": 8, "ih": 8, "kw": 3, "kh": 3, "ic": 4, "oc": 8}]},
		 "array": "64x64"},
		{"network": {"name": "tiny", "layers": [
			{"name": "c1", "iw": 8, "ih": 8, "kw": 3, "kh": 3, "ic": 4, "oc": 8}]},
		 "array": "64x64"},
		{"network": {"name": "tiny2", "layers": [
			{"name": "c1", "iw": 8, "ih": 8, "kw": 3, "kh": 3, "ic": 4, "oc": 16}]},
		 "array": "64x64"}
	]}`)
	_, reqs, err := ParseManifest(manifest)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := s.Warm(context.Background(), reqs, 4)
	if err != nil {
		t.Fatal(err)
	}
	// The duplicate entry collapses: 2 distinct keys, both compiled.
	if stats.Total != 2 || stats.Compiled != 2 || stats.Hits != 0 || stats.Failed != 0 {
		t.Errorf("first warm = %+v, want 2 total, 2 compiled", stats)
	}
	st.Flush()

	// Warming again over the same store is a no-op: resumable via the store.
	st2 := openStore(t, dir)
	s2 := New(Config{Store: st2})
	stats2, err := s2.Warm(context.Background(), reqs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Compiled != 0 || stats2.Hits != 2 {
		t.Errorf("resumed warm = %+v, want 0 compiled, 2 hits", stats2)
	}
	if searches := s2.Engine().Stats().Searches; searches != 0 {
		t.Errorf("resumed warm ran %d searches, want 0", searches)
	}
}

func TestParseManifestRejects(t *testing.T) {
	cases := []string{
		`{}`,
		`{"requests": []}`,
		`{"requests": [{"network": "NoSuchNet", "array": "64x64"}]}`,
		`{"requests": [{"network": "VGG-13"}]}`,
		`{"typo": 1}`,
	}
	for _, c := range cases {
		if _, _, err := ParseManifest([]byte(c)); err == nil {
			t.Errorf("ParseManifest(%s) accepted", c)
		}
	}
}
