// The asynchronous job surface: POST /v1/jobs accepts a compile, sweep or
// optimize request and returns a job snapshot immediately; GET /v1/jobs/{id}
// reports state and per-cell progress (monotone — cells only ever accumulate);
// DELETE /v1/jobs/{id} cancels the job's context, which stops cell dispatch
// and aborts in-flight searches at their next checkpoint. Jobs run through
// exactly the same executor as the synchronous endpoints (compilePlan and
// runSweep), so they share the plan cache, the singleflight coalescing and
// the compilation semaphore; a job waiting for capacity simply stays
// "queued". Finished jobs remain queryable for the configured TTL and are
// then garbage-collected on the next jobs-API access.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/compile"
	"repro/internal/optimize"
)

// Job states. A job is live in stateQueued and stateRunning and terminal in
// the other three; terminal states never change again.
const (
	stateQueued    = "queued"
	stateRunning   = "running"
	stateDone      = "done"
	stateFailed    = "failed"
	stateCancelled = "cancelled"
)

// job is one tracked asynchronous request. The immutable identity fields
// are set at creation; everything below mu is owned by it.
type job struct {
	id      string
	kind    string // "compile", "sweep" or "optimize"
	created time.Time
	cancel  context.CancelFunc

	mu        sync.Mutex
	state     string
	errMsg    string
	finished  time.Time // terminal transition, for TTL garbage collection
	total     int       // cells in the request (1 for compile, design points for optimize)
	completed int       // evaluated design points (optimize jobs)
	results   []sweepSummary
	plan      []byte // serialized NetworkPlan (compile jobs)
	planCache bool   // the plan came from the cache
	frontier  []byte // serialized optimize.Frontier (optimize jobs)
}

// jobSnapshot is the wire form of a job. Results and Plan are only
// populated by the detail endpoint (GET /v1/jobs/{id}); the listing and the
// creation response carry identity and progress only.
type jobSnapshot struct {
	ID             string          `json:"id"`
	Kind           string          `json:"kind"`
	State          string          `json:"state"`
	Created        time.Time       `json:"created"`
	CellsTotal     int             `json:"cells_total"`
	CellsCompleted int             `json:"cells_completed"`
	Error          string          `json:"error,omitempty"`
	Results        []sweepSummary  `json:"results,omitempty"`
	Plan           json.RawMessage `json:"plan,omitempty"`
	PlanCached     bool            `json:"plan_cached,omitempty"`
	Frontier       json.RawMessage `json:"frontier,omitempty"`
}

// snapshot captures the job's current state; withPayload additionally
// copies the accumulated results (sweep) or the serialized plan (compile).
// Progress is monotone: completed counts only ever grow, and the results
// slice is append-only, so two successive snapshots never disagree
// backwards.
func (j *job) snapshot(withPayload bool) jobSnapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	snap := jobSnapshot{
		ID:             j.id,
		Kind:           j.kind,
		State:          j.state,
		Created:        j.created,
		CellsTotal:     j.total,
		CellsCompleted: len(j.results),
		Error:          j.errMsg,
	}
	if j.kind == kindCompile && j.plan != nil {
		snap.CellsCompleted = 1
	}
	if j.kind == kindOptimize {
		snap.CellsCompleted = j.completed
	}
	if withPayload {
		snap.Results = append([]sweepSummary(nil), j.results...)
		snap.Plan = j.plan
		snap.PlanCached = j.planCache
		snap.Frontier = j.frontier
	}
	return snap
}

// setRunning moves a queued job to running (a no-op once terminal).
func (j *job) setRunning() {
	j.mu.Lock()
	if j.state == stateQueued {
		j.state = stateRunning
	}
	j.mu.Unlock()
}

// addResult appends one completed cell.
func (j *job) addResult(sum sweepSummary) {
	j.mu.Lock()
	j.results = append(j.results, sum)
	j.mu.Unlock()
}

// setPlan records a compile job's serialized plan.
func (j *job) setPlan(data []byte, cached bool) {
	j.mu.Lock()
	j.plan = data
	j.planCache = cached
	j.mu.Unlock()
}

// addProgress bumps an optimize job's evaluated-point counter (monotone,
// like sweep results).
func (j *job) addProgress() {
	j.mu.Lock()
	j.completed++
	j.mu.Unlock()
}

// setFrontier records an optimize job's serialized frontier.
func (j *job) setFrontier(data []byte) {
	j.mu.Lock()
	j.frontier = data
	j.mu.Unlock()
}

// finish moves the job to its terminal state: done on nil, cancelled on
// context.Canceled (a DELETE), failed otherwise (including a deadline from
// the per-request timeout). It also releases the job's context resources.
func (j *job) finish(err error) {
	j.mu.Lock()
	switch {
	case err == nil:
		j.state = stateDone
	case errors.Is(err, context.Canceled):
		j.state = stateCancelled
		j.errMsg = err.Error()
	default:
		j.state = stateFailed
		j.errMsg = err.Error()
	}
	j.finished = time.Now()
	j.mu.Unlock()
	j.cancel()
}

// terminalSince reports whether the job is terminal and, if so, when it got
// there.
func (j *job) terminalSince() (time.Time, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case stateDone, stateFailed, stateCancelled:
		return j.finished, true
	}
	return time.Time{}, false
}

// live reports whether the job is still queued or running.
func (j *job) live() bool {
	_, terminal := j.terminalSince()
	return !terminal
}

// jobSet owns the job table: registration, lookup, the live-jobs admission
// bound and TTL garbage collection (run on every jobs-API access rather
// than on a timer, so a Server needs no background goroutine and no
// Close method).
type jobSet struct {
	ttl     time.Duration
	maxLive int

	mu   sync.Mutex
	jobs map[string]*job
	seq  atomic.Uint64

	created   atomic.Uint64
	cancels   atomic.Uint64
	collected atomic.Uint64
}

func newJobSet(ttl time.Duration, maxLive int) *jobSet {
	return &jobSet{ttl: ttl, maxLive: maxLive, jobs: make(map[string]*job)}
}

// gcLocked drops terminal jobs older than the TTL; the caller holds mu.
func (js *jobSet) gcLocked(now time.Time) {
	for id, j := range js.jobs {
		if finished, terminal := j.terminalSince(); terminal && now.Sub(finished) >= js.ttl {
			delete(js.jobs, id)
			js.collected.Add(1)
		}
	}
}

// add garbage-collects, enforces the live-jobs bound and registers a new
// job under a fresh id.
func (js *jobSet) add(kind string, total int, cancel context.CancelFunc) (*job, *httpError) {
	js.mu.Lock()
	defer js.mu.Unlock()
	js.gcLocked(time.Now())
	live := 0
	for _, j := range js.jobs {
		if j.live() {
			live++
		}
	}
	if live >= js.maxLive {
		return nil, errorf(http.StatusServiceUnavailable,
			"server at capacity: %d jobs are already queued or running", live)
	}
	j := &job{
		id:      fmt.Sprintf("job-%d", js.seq.Add(1)),
		kind:    kind,
		created: time.Now(),
		cancel:  cancel,
		state:   stateQueued,
		total:   total,
	}
	js.jobs[j.id] = j
	js.created.Add(1)
	return j, nil
}

// get garbage-collects, then looks a job up.
func (js *jobSet) get(id string) (*job, bool) {
	js.mu.Lock()
	defer js.mu.Unlock()
	js.gcLocked(time.Now())
	j, ok := js.jobs[id]
	return j, ok
}

// list garbage-collects, then returns every remaining job.
func (js *jobSet) list() []*job {
	js.mu.Lock()
	defer js.mu.Unlock()
	js.gcLocked(time.Now())
	out := make([]*job, 0, len(js.jobs))
	for _, j := range js.jobs {
		out = append(out, j)
	}
	return out
}

// JobStats are the job table's cumulative counters and current gauge.
type JobStats struct {
	// Created counts every accepted job; Cancelled counts DELETE requests
	// that reached a live job; Collected counts jobs dropped by the TTL
	// garbage collector.
	Created   uint64 `json:"created"`
	Cancelled uint64 `json:"cancelled"`
	Collected uint64 `json:"collected"`

	// Live is the current number of queued or running jobs.
	Live int `json:"live"`
}

func (js *jobSet) stats() JobStats {
	js.mu.Lock()
	live := 0
	for _, j := range js.jobs {
		if j.live() {
			live++
		}
	}
	js.mu.Unlock()
	return JobStats{
		Created:   js.created.Load(),
		Cancelled: js.cancels.Load(),
		Collected: js.collected.Load(),
		Live:      live,
	}
}

// Job kinds.
const (
	kindCompile  = "compile"
	kindSweep    = "sweep"
	kindOptimize = "optimize"
)

// jobRequest is the POST /v1/jobs body: exactly one of the three members,
// each in the same form its synchronous endpoint accepts (the optimize
// member is a raw design-space spec).
type jobRequest struct {
	Compile  *compileRequest  `json:"compile"`
	Sweep    *sweepRequest    `json:"sweep"`
	Optimize *json.RawMessage `json:"optimize"`
}

// jobContext derives a job's execution context: rooted in the process
// (context.Background(), NOT the submitting request — the whole point of a
// job is to outlive it), bounded by the configured per-request deadline,
// and cancellable by DELETE. Jobs are not drained by the daemon's graceful
// shutdown: a SIGTERM ends the process once open connections finish,
// abandoning whatever jobs are still running.
func (s *Server) jobContext() (context.Context, context.CancelFunc) {
	ctx := context.Background()
	if s.timeout > 0 {
		var cancelT context.CancelFunc
		ctx, cancelT = context.WithTimeout(ctx, s.timeout)
		ctx, cancelC := context.WithCancel(ctx)
		return ctx, func() { cancelC(); cancelT() }
	}
	return context.WithCancel(ctx)
}

func (s *Server) handleJobCreate(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	if herr := decodeJSONBody(w, r, s.maxBody, &req); herr != nil {
		writeError(w, herr)
		return
	}
	given := 0
	for _, set := range []bool{req.Compile != nil, req.Sweep != nil, req.Optimize != nil} {
		if set {
			given++
		}
	}
	switch {
	case given > 1:
		writeError(w, errorf(http.StatusUnprocessableEntity,
			`a job is exactly one of "compile", "sweep" or "optimize"`))
		return
	case req.Compile != nil:
		s.createCompileJob(w, req.Compile)
	case req.Sweep != nil:
		s.createSweepJob(w, req.Sweep)
	case req.Optimize != nil:
		s.createOptimizeJob(w, *req.Optimize)
	default:
		writeError(w, errorf(http.StatusUnprocessableEntity,
			`missing job body: give "compile", "sweep" or "optimize"`))
	}
}

// createCompileJob validates eagerly — a 422 at submission, not a failed
// job, for a request the synchronous endpoint would reject — then runs the
// compilation through the shared executor in the background.
func (s *Server) createCompileJob(w http.ResponseWriter, body *compileRequest) {
	creq, herr := body.resolve()
	if herr != nil {
		writeError(w, herr)
		return
	}
	key, err := compile.Key(creq)
	if err != nil {
		writeError(w, errorf(http.StatusUnprocessableEntity, "%v", err))
		return
	}
	ctx, cancel := s.jobContext()
	j, herr := s.jobs.add(kindCompile, 1, cancel)
	if herr != nil {
		cancel()
		writeError(w, herr)
		return
	}
	go func() {
		j.setRunning()
		entry, cached, err := s.compilePlan(ctx, key, creq, true, false)
		if err == nil {
			j.setPlan(entry.data, cached)
		}
		j.finish(err)
	}()
	writeJSON(w, http.StatusAccepted, map[string]any{"job": j.snapshot(false)})
}

func (s *Server) createSweepJob(w http.ResponseWriter, body *sweepRequest) {
	cells, herr := body.cells()
	if herr != nil {
		writeError(w, herr)
		return
	}
	ctx, cancel := s.jobContext()
	j, herr := s.jobs.add(kindSweep, len(cells), cancel)
	if herr != nil {
		cancel()
		writeError(w, herr)
		return
	}
	go func() {
		// A sweep job occupies one sweep-stream unit like a synchronous
		// sweep, but waits for it ("queued") instead of being rejected —
		// admission control for jobs is the live-jobs bound.
		select {
		case s.sweepSem <- struct{}{}:
		case <-ctx.Done():
			j.finish(ctx.Err())
			return
		}
		defer func() { <-s.sweepSem }()
		j.setRunning()
		j.finish(s.runSweep(ctx, cells, j.addResult))
	}()
	writeJSON(w, http.StatusAccepted, map[string]any{"job": j.snapshot(false)})
}

// createOptimizeJob validates the design space eagerly (a 422 at submission
// for a spec the synchronous endpoint would reject) and runs the search in
// the background through the same optimizer, counting progress per evaluated
// design point; the finished job's detail snapshot carries the serialized
// frontier.
func (s *Server) createOptimizeJob(w http.ResponseWriter, raw json.RawMessage) {
	space, herr := resolveOptimizeSpace(raw)
	if herr != nil {
		writeError(w, herr)
		return
	}
	points, err := space.Points()
	if err != nil {
		writeError(w, errorf(http.StatusUnprocessableEntity, "%v", err))
		return
	}
	ctx, cancel := s.jobContext()
	j, herr := s.jobs.add(kindOptimize, points, cancel)
	if herr != nil {
		cancel()
		writeError(w, herr)
		return
	}
	go func() {
		// Like a sweep job: one sweep-stream unit, waited for ("queued")
		// rather than rejected.
		select {
		case s.sweepSem <- struct{}{}:
		case <-ctx.Done():
			j.finish(ctx.Err())
			return
		}
		defer func() { <-s.sweepSem }()
		j.setRunning()
		s.optRuns.Add(1)
		f, err := s.opt.Run(ctx, space, func(e optimize.Event) {
			s.countEvent(e)
			if e.Kind == "admit" || e.Kind == "reject" {
				j.addProgress()
			}
		})
		if err == nil {
			var data []byte
			if data, err = f.ToJSON(); err == nil {
				j.setFrontier(data)
			}
		}
		j.finish(err)
	}()
	writeJSON(w, http.StatusAccepted, map[string]any{"job": j.snapshot(false)})
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, errorf(http.StatusNotFound, "no such job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"job": j.snapshot(true)})
}

func (s *Server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, errorf(http.StatusNotFound, "no such job %q", r.PathValue("id")))
		return
	}
	if j.live() {
		s.jobs.cancels.Add(1)
	}
	// Cancelling is asynchronous: the runner observes the context and moves
	// the job to "cancelled" (idempotent on terminal jobs — their state no
	// longer changes). The response is the snapshot at this instant; clients
	// poll GET until the state is terminal.
	j.cancel()
	writeJSON(w, http.StatusOK, map[string]any{"job": j.snapshot(false)})
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	jobs := s.jobs.list()
	snaps := make([]jobSnapshot, 0, len(jobs))
	for _, j := range jobs {
		snaps = append(snaps, j.snapshot(false))
	}
	// Creation order (ids are "job-N" with N unordered lexicographically
	// past 9, so sort on the timestamp and tie-break on the numeric id).
	sort.Slice(snaps, func(i, k int) bool {
		if !snaps[i].Created.Equal(snaps[k].Created) {
			return snaps[i].Created.Before(snaps[k].Created)
		}
		if len(snaps[i].ID) != len(snaps[k].ID) {
			return len(snaps[i].ID) < len(snaps[k].ID)
		}
		return snaps[i].ID < snaps[k].ID
	})
	writeJSON(w, http.StatusOK, map[string]any{"jobs": snaps})
}
