package pimarray

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func tile(rows, cols int, vals ...float64) *tensor.Matrix {
	m := tensor.NewMatrix(rows, cols)
	copy(m.Data, vals)
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 4); err == nil {
		t.Error("zero rows accepted")
	}
	if _, err := New(4, -1); err == nil {
		t.Error("negative cols accepted")
	}
	a, err := New(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows() != 8 || a.Cols() != 4 {
		t.Fatalf("dims = %dx%d", a.Rows(), a.Cols())
	}
}

func TestProgramCompute(t *testing.T) {
	a, err := New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 2x2 tile: columns [1,3] and [2,4].
	if err := a.Program(tile(2, 2, 1, 2, 3, 4)); err != nil {
		t.Fatal(err)
	}
	out, err := a.Compute([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 4 || out[1] != 6 {
		t.Fatalf("out = %v, want [4 6]", out)
	}
	out, err = a.Compute([]float64{2, -1})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 2*1-3 || out[1] != 2*2-4 {
		t.Fatalf("out = %v", out)
	}
	s := a.Stats()
	if s.Cycles != 2 || s.DACConversions != 4 || s.ADCConversions != 4 {
		t.Fatalf("stats = %+v", s)
	}
	if s.ProgramOps != 1 || s.CellWrites != 4 {
		t.Fatalf("program stats = %+v", s)
	}
}

func TestComputeBeforeProgram(t *testing.T) {
	a, _ := New(2, 2)
	if _, err := a.Compute([]float64{1, 1}); err == nil {
		t.Fatal("Compute before Program succeeded")
	}
}

func TestProgramTooLarge(t *testing.T) {
	a, _ := New(2, 2)
	if err := a.Program(tensor.NewMatrix(3, 1)); err == nil {
		t.Error("oversized rows accepted")
	}
	if err := a.Program(tensor.NewMatrix(1, 3)); err == nil {
		t.Error("oversized cols accepted")
	}
}

func TestComputeInputLength(t *testing.T) {
	a, _ := New(4, 4)
	if err := a.Program(tile(2, 1, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Compute([]float64{1}); err == nil {
		t.Error("short input accepted")
	}
	if _, err := a.Compute([]float64{1, 2, 3}); err == nil {
		t.Error("long input accepted")
	}
}

func TestReprogramClearsOldTile(t *testing.T) {
	a, _ := New(4, 4)
	if err := a.Program(tile(3, 3, 1, 1, 1, 1, 1, 1, 1, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := a.Program(tile(2, 2, 1, 0, 0, 1)); err != nil {
		t.Fatal(err)
	}
	out, err := a.Compute([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Stale cells from the 3x3 tile must not leak into the sums.
	if out[0] != 1 || out[1] != 1 {
		t.Fatalf("out = %v, want [1 1]", out)
	}
	if got := a.Stats().ProgramOps; got != 2 {
		t.Fatalf("ProgramOps = %d, want 2", got)
	}
}

func TestUsedCellTracking(t *testing.T) {
	a, _ := New(4, 4)
	// 3x2 tile with 4 nonzeros.
	if err := a.Program(tile(3, 2, 1, 0, 2, 3, 0, 4)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := a.Compute([]float64{1, 1, 1}); err != nil {
			t.Fatal(err)
		}
	}
	s := a.Stats()
	if s.UsedCellCycles != 20 {
		t.Fatalf("UsedCellCycles = %d, want 20", s.UsedCellCycles)
	}
	want := 100 * float64(20) / float64(5*16)
	if got := a.Utilization(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Utilization = %v, want %v", got, want)
	}
}

func TestUtilizationBeforeAnyCycle(t *testing.T) {
	a, _ := New(2, 2)
	if a.Utilization() != 0 {
		t.Fatal("utilization before cycles should be 0")
	}
}

func TestResetStats(t *testing.T) {
	a, _ := New(2, 2)
	if err := a.Program(tile(1, 1, 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Compute([]float64{1}); err != nil {
		t.Fatal(err)
	}
	a.ResetStats()
	if a.Stats() != (Stats{}) {
		t.Fatalf("stats after reset = %+v", a.Stats())
	}
	// Weights survive the reset.
	out, err := a.Compute([]float64{2})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 10 {
		t.Fatalf("out = %v, want 10", out[0])
	}
}

func TestStatsAdd(t *testing.T) {
	s := Stats{Cycles: 1, DACConversions: 2, ADCConversions: 3, CellWrites: 4, ProgramOps: 5, UsedCellCycles: 6}
	s.Add(Stats{Cycles: 10, DACConversions: 20, ADCConversions: 30, CellWrites: 40, ProgramOps: 50, UsedCellCycles: 60})
	want := Stats{Cycles: 11, DACConversions: 22, ADCConversions: 33, CellWrites: 44, ProgramOps: 55, UsedCellCycles: 66}
	if s != want {
		t.Fatalf("Add = %+v, want %+v", s, want)
	}
}

func TestQuantization(t *testing.T) {
	// 2 bits over [-3,3]: step = 3/2 = 1.5, grid {-3,-1.5,0,1.5,3}.
	a, err := New(2, 2, WithQuantization(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Program(tile(2, 1, 0.6, 10)); err != nil {
		t.Fatal(err)
	}
	out, err := a.Compute([]float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 0 { // 0.6 rounds to 0 with step 1.5
		t.Fatalf("quantized 0.6 -> %v, want 0", out[0])
	}
	out, err = a.Compute([]float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 3 { // 10 clips to +3
		t.Fatalf("quantized 10 -> %v, want 3", out[0])
	}
}

func TestQuantizationIdentityOnGrid(t *testing.T) {
	// 8-bit quantization over [-4,4] keeps small integers exact.
	a, err := New(4, 1, WithQuantization(8, 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Program(tile(4, 1, -4, -1, 2, 4)); err != nil {
		t.Fatal(err)
	}
	out, err := a.Compute([]float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 { // step 4/128 represents small integers exactly
		t.Fatalf("out = %v, want 1", out[0])
	}
}

func TestQuantizationOptionPanics(t *testing.T) {
	for _, f := range []func(){
		func() { WithQuantization(0, 1) },
		func() { WithQuantization(17, 1) },
		func() { WithQuantization(4, 0) },
		func() { WithReadNoise(-1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestReadNoiseDeterministicAndScaled(t *testing.T) {
	mk := func(sigma float64, seed uint64) []float64 {
		a, err := New(4, 2, WithReadNoise(sigma, seed))
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Program(tile(1, 2, 1, 1)); err != nil {
			t.Fatal(err)
		}
		out, err := a.Compute([]float64{1})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a1 := mk(0.1, 42)
	a2 := mk(0.1, 42)
	if a1[0] != a2[0] || a1[1] != a2[1] {
		t.Fatal("noise not deterministic for equal seeds")
	}
	b := mk(0.1, 43)
	if a1[0] == b[0] && a1[1] == b[1] {
		t.Fatal("noise identical across seeds")
	}
	if a1[0] == 1.0 {
		t.Fatal("noise had no effect")
	}
}

func TestReadNoiseStatistics(t *testing.T) {
	a, err := New(1, 1, WithReadNoise(1, 7))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Program(tile(1, 1, 0)); err != nil {
		t.Fatal(err)
	}
	const n = 20000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		out, err := a.Compute([]float64{0})
		if err != nil {
			t.Fatal(err)
		}
		sum += out[0]
		sumSq += out[0] * out[0]
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("noise mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Errorf("noise variance = %v, want ~1", variance)
	}
}

// Property: an ideal array computes exactly the matrix-vector product of the
// programmed tile for random small-integer tiles and inputs.
func TestComputeMatchesMulVec(t *testing.T) {
	f := func(seed uint64, rows, cols uint8) bool {
		r := int(rows%6) + 1
		c := int(cols%6) + 1
		rng := tensor.NewRNG(seed)
		w := tensor.NewMatrix(r, c)
		rng.FillSmallInts(w.Data, -4, 4)
		in := make([]float64, r)
		rng.FillSmallInts(in, -4, 4)
		a, err := New(8, 8)
		if err != nil {
			return false
		}
		if err := a.Program(w); err != nil {
			return false
		}
		got, err := a.Compute(in)
		if err != nil {
			return false
		}
		want := w.MulVec(in)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStuckCellsLoseWrites(t *testing.T) {
	// With every cell stuck, all outputs collapse to zero.
	a, err := New(4, 4, WithStuckCells(1, 11))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Program(tile(2, 2, 1, 2, 3, 4)); err != nil {
		t.Fatal(err)
	}
	out, err := a.Compute([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 0 || out[1] != 0 {
		t.Fatalf("fully stuck array produced %v", out)
	}
	if a.Stats().UsedCellCycles != 0 {
		t.Error("stuck cells counted as used")
	}
}

func TestStuckCellsDeterministic(t *testing.T) {
	run := func(seed uint64) []float64 {
		a, err := New(8, 8, WithStuckCells(0.3, seed))
		if err != nil {
			t.Fatal(err)
		}
		w := tensor.NewMatrix(8, 8)
		for i := range w.Data {
			w.Data[i] = 1
		}
		if err := a.Program(w); err != nil {
			t.Fatal(err)
		}
		in := make([]float64, 8)
		for i := range in {
			in[i] = 1
		}
		out, err := a.Compute(in)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a1, a2 := run(5), run(5)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("stuck set not deterministic")
		}
	}
	var total float64
	for _, v := range a1 {
		total += v
	}
	// 30% of 64 cells stuck: the all-ones MVM loses exactly that many units.
	frac := 0.3
	stuck := int(frac * 64)
	if total != float64(64-stuck) {
		t.Fatalf("stuck loss = %v, want %v", 64-total, stuck)
	}
}

func TestStuckCellsZeroFractionHarmless(t *testing.T) {
	a, err := New(2, 2, WithStuckCells(0, 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Program(tile(1, 1, 5)); err != nil {
		t.Fatal(err)
	}
	out, err := a.Compute([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 5 {
		t.Fatalf("out = %v, want 5", out[0])
	}
}

func TestStuckCellsOptionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("fraction > 1 did not panic")
		}
	}()
	WithStuckCells(1.5, 0)
}
