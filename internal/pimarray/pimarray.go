// Package pimarray simulates a processing-in-memory crossbar array: a grid
// of Rows×Cols memory cells holding weights, with DACs driving inputs onto
// the rows and ADCs reading the accumulated products off the columns.
//
// One Compute call models one of the paper's computing cycles: the cells
// stay programmed while the input vector changes, which is exactly the
// weight-stationary reuse the mapping schemes exploit. The simulator keeps
// per-run statistics — computing cycles, DAC/ADC conversions and programming
// operations — that the energy model consumes; the paper (Section II-B,
// citing [3]) motivates cycle minimization by noting conversions cost more
// than 98% of PIM energy.
//
// By default computation is exact, so mapped convolutions can be verified
// bit-for-bit against the reference model. Optional weight quantization and
// deterministic read noise model analog non-idealities for robustness
// experiments.
package pimarray

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Stats accumulates the observable work a crossbar has performed.
type Stats struct {
	// Cycles is the number of Compute calls (the paper's computing cycles).
	Cycles int64

	// DACConversions counts digital-to-analog row activations: one per
	// driven row per cycle.
	DACConversions int64

	// ADCConversions counts analog-to-digital column reads: one per read
	// column per cycle.
	ADCConversions int64

	// CellWrites counts programmed cells across all Program calls.
	CellWrites int64

	// ProgramOps counts Program calls (tile reconfigurations).
	ProgramOps int64

	// UsedCellCycles sums, over cycles, the number of weight-holding cells
	// engaged per cycle; UsedCellCycles/(Cycles·Rows·Cols) is the paper's
	// eq. 9 utilization of the executed schedule.
	UsedCellCycles int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Cycles += other.Cycles
	s.DACConversions += other.DACConversions
	s.ADCConversions += other.ADCConversions
	s.CellWrites += other.CellWrites
	s.ProgramOps += other.ProgramOps
	s.UsedCellCycles += other.UsedCellCycles
}

// Option configures non-ideal behaviour of a simulated array.
type Option func(*Array)

// WithQuantization programs weights rounded to the mid-tread grid of step
// maxAbs/2^(bits-1) and clipped to [-maxAbs, +maxAbs], modelling limited
// cell precision. The power-of-two step keeps integer weights within range
// exactly representable. bits must be in [1, 16] and maxAbs positive or the
// option panics (configuration bug).
func WithQuantization(bits int, maxAbs float64) Option {
	if bits < 1 || bits > 16 || !(maxAbs > 0) {
		panic(fmt.Sprintf("pimarray: invalid quantization bits=%d maxAbs=%v", bits, maxAbs))
	}
	return func(a *Array) {
		a.quantBits = bits
		a.quantMax = maxAbs
	}
}

// WithReadNoise adds zero-mean Gaussian noise with the given standard
// deviation to every column readout, using a deterministic generator so runs
// are reproducible. sigma must be non-negative.
func WithReadNoise(sigma float64, seed uint64) Option {
	if sigma < 0 {
		panic(fmt.Sprintf("pimarray: negative noise sigma %v", sigma))
	}
	return func(a *Array) {
		a.noiseSigma = sigma
		a.rng = tensor.NewRNG(seed)
	}
}

// WithStuckCells marks the given fraction of cells as stuck-at-zero
// (deterministically chosen by seed): programming writes to a stuck cell
// are silently lost, modelling RRAM endurance faults. fraction must be in
// [0, 1]. Functional verification against the reference convolution detects
// such faults whenever a weight lands on a stuck cell.
func WithStuckCells(fraction float64, seed uint64) Option {
	if fraction < 0 || fraction > 1 {
		panic(fmt.Sprintf("pimarray: stuck-cell fraction %v outside [0,1]", fraction))
	}
	return func(a *Array) {
		a.stuckFraction = fraction
		a.stuckSeed = seed
	}
}

// Array is a simulated crossbar. Create one with New; the zero value is not
// usable.
type Array struct {
	rows, cols int
	cells      *tensor.Matrix

	// Programmed tile extent and its non-zero (weight-holding) cell count.
	progRows, progCols int
	progUsed           int64

	quantBits  int
	quantMax   float64
	noiseSigma float64
	rng        *tensor.RNG

	stuckFraction float64
	stuckSeed     uint64
	stuck         map[int]bool // lazily built cell-index set

	stats Stats
}

// New returns a crossbar with the given physical dimensions.
func New(rows, cols int, opts ...Option) (*Array, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("pimarray: invalid array size %dx%d", rows, cols)
	}
	a := &Array{rows: rows, cols: cols, cells: tensor.NewMatrix(rows, cols)}
	for _, opt := range opts {
		opt(a)
	}
	return a, nil
}

// Rows returns the physical row count (DAC ports).
func (a *Array) Rows() int { return a.rows }

// Cols returns the physical column count (ADC ports).
func (a *Array) Cols() int { return a.cols }

// Stats returns a copy of the accumulated statistics.
func (a *Array) Stats() Stats { return a.stats }

// ResetStats zeroes the statistics, keeping the programmed weights.
func (a *Array) ResetStats() { a.stats = Stats{} }

// Program loads the weight tile w into the top-left corner of the array and
// clears any previous contents. It fails if the tile exceeds the physical
// dimensions. Programming counts one ProgramOp and w.Rows·w.Cols CellWrites
// (analog arrays rewrite the full tile region).
func (a *Array) Program(w *tensor.Matrix) error {
	if w.Rows > a.rows || w.Cols > a.cols {
		return fmt.Errorf("pimarray: tile %dx%d exceeds array %dx%d",
			w.Rows, w.Cols, a.rows, a.cols)
	}
	for i := range a.cells.Data {
		a.cells.Data[i] = 0
	}
	a.progUsed = 0
	a.buildStuckSet()
	for r := 0; r < w.Rows; r++ {
		for c := 0; c < w.Cols; c++ {
			v := a.quantize(w.At(r, c))
			if a.stuck[r*a.cols+c] {
				v = 0 // stuck-at-zero cell loses the write
			}
			a.cells.Set(r, c, v)
			if v != 0 {
				a.progUsed++
			}
		}
	}
	a.progRows, a.progCols = w.Rows, w.Cols
	a.stats.ProgramOps++
	a.stats.CellWrites += int64(w.Rows) * int64(w.Cols)
	return nil
}

// buildStuckSet lazily samples the stuck cell set on first programming.
func (a *Array) buildStuckSet() {
	if a.stuckFraction == 0 || a.stuck != nil {
		return
	}
	a.stuck = make(map[int]bool)
	n := int(a.stuckFraction * float64(a.rows) * float64(a.cols))
	rng := tensor.NewRNG(a.stuckSeed)
	for len(a.stuck) < n {
		a.stuck[rng.IntN(a.rows*a.cols)] = true
	}
}

// quantize rounds v to the configured precision; identity when quantization
// is disabled. Values beyond ±quantMax clip.
func (a *Array) quantize(v float64) float64 {
	if a.quantBits == 0 {
		return v
	}
	step := a.quantMax / float64(int64(1)<<uint(a.quantBits-1))
	q := math.Round(v/step) * step
	return math.Max(-a.quantMax, math.Min(a.quantMax, q))
}

// Compute performs one computing cycle: input drives the programmed rows and
// the programmed columns are read back. len(input) must equal the programmed
// tile's row count. The result has one entry per programmed column.
func (a *Array) Compute(input []float64) ([]float64, error) {
	if a.progRows == 0 {
		return nil, fmt.Errorf("pimarray: Compute before Program")
	}
	if len(input) != a.progRows {
		return nil, fmt.Errorf("pimarray: input length %d, programmed rows %d",
			len(input), a.progRows)
	}
	out := make([]float64, a.progCols)
	for r, v := range input {
		if v == 0 {
			continue
		}
		base := r * a.cols
		row := a.cells.Data[base : base+a.progCols]
		for c, w := range row {
			out[c] += v * w
		}
	}
	if a.noiseSigma > 0 {
		for c := range out {
			out[c] += a.noiseSigma * a.gaussian()
		}
	}
	a.stats.Cycles++
	a.stats.DACConversions += int64(a.progRows)
	a.stats.ADCConversions += int64(a.progCols)
	a.stats.UsedCellCycles += a.progUsed
	return out, nil
}

// gaussian returns a standard normal sample via Box–Muller from the
// deterministic generator.
func (a *Array) gaussian() float64 {
	u1 := a.rng.Float64()
	for u1 == 0 {
		u1 = a.rng.Float64()
	}
	u2 := a.rng.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Utilization returns eq. 9 for the executed schedule: the mean fraction of
// array cells holding weights per computing cycle, in percent. It returns 0
// before any cycle has run.
func (a *Array) Utilization() float64 {
	if a.stats.Cycles == 0 {
		return 0
	}
	total := float64(a.stats.Cycles) * float64(a.rows) * float64(a.cols)
	return 100 * float64(a.stats.UsedCellCycles) / total
}
