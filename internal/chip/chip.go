// Package chip schedules mapped convolutional layers across a multi-array
// PIM chip (extension E15, DESIGN.md).
//
// A real PIM accelerator holds many crossbars. A mapped layer consists of
// AR×AC independent weight tiles, each of which must sweep all N_PW
// parallel-window positions; tiles only exchange data at the accumulation
// stage, so they can run on different arrays concurrently, and a single
// tile's positions can additionally be split across replicas of that tile
// (the input is broadcast). Arrays are weight-stationary within a layer:
// each array is programmed with one tile (or a sequence of tiles when the
// chip has fewer arrays than the layer has tiles).
//
// With identical per-tile work (every tile runs N_PW cycles), the balanced
// schedule computed here is makespan-optimal:
//
//   - arrays ≥ tiles: give every tile floor(arrays/tiles) replicas;
//     makespan = ceil(N_PW / floor(arrays/tiles)).
//   - arrays < tiles: ceil(tiles/arrays) sequential rounds of N_PW cycles,
//     reprogramming between rounds.
package chip

import (
	"fmt"

	"repro/internal/core"
)

// LayerSchedule is the placement of one mapped layer on a chip.
type LayerSchedule struct {
	// Mapping is the scheduled layer mapping.
	Mapping core.Mapping

	// Arrays is the number of crossbars used (≤ the chip size).
	Arrays int

	// Tiles is AR×AC×Groups, the weight tiles of the mapping (a grouped
	// layer lays out an independent AR×AC grid per convolution group).
	Tiles int

	// Replicas is the number of copies of each tile when the chip has
	// arrays to spare (1 otherwise).
	Replicas int

	// Rounds is the number of sequential program-then-sweep rounds an
	// array performs (1 when every tile has its own array).
	Rounds int

	// Makespan is the layer latency in computing cycles.
	Makespan int64

	// Programs counts tile programmings across the chip.
	Programs int

	// BusyFraction is the mean fraction of the used arrays' time spent
	// computing (1.0 = perfectly balanced).
	BusyFraction float64
}

// ScheduleLayer places mapping m on a chip with nArrays crossbars, each at
// least m.Array in size.
func ScheduleLayer(m core.Mapping, nArrays int) (LayerSchedule, error) {
	if nArrays < 1 {
		return LayerSchedule{}, fmt.Errorf("chip: need at least one array, got %d", nArrays)
	}
	if m.AR < 1 || m.AC < 1 || m.NPW < 1 {
		return LayerSchedule{}, fmt.Errorf("chip: mapping not costed: %v", m)
	}
	tiles := m.Tiles()
	npw := int64(m.NPW)
	s := LayerSchedule{Mapping: m, Tiles: tiles}
	if nArrays >= tiles {
		// Replicate tiles over the spare arrays and split positions.
		rep := nArrays / tiles
		s.Replicas = rep
		s.Rounds = 1
		s.Arrays = tiles * rep
		s.Makespan = ceilDiv64(npw, int64(rep))
		s.Programs = s.Arrays
	} else {
		rounds := ceilDiv(tiles, nArrays)
		s.Replicas = 1
		s.Rounds = rounds
		s.Arrays = nArrays
		s.Makespan = int64(rounds) * npw
		s.Programs = tiles
	}
	total := m.Cycles // G·AR·AC·NPW array-cycles of real work
	s.BusyFraction = float64(total) / (float64(s.Makespan) * float64(s.Arrays))
	return s, nil
}

// NetworkSchedule is the layer-sequential execution of a network on a chip.
type NetworkSchedule struct {
	// Layers are the per-layer schedules in order.
	Layers []LayerSchedule

	// Makespan is the total latency in computing cycles (layers run
	// sequentially: each layer's inputs are the previous layer's outputs).
	Makespan int64

	// Programs is the total tile programmings.
	Programs int
}

// ScheduleNetwork schedules each mapping in order on a chip with nArrays
// crossbars.
func ScheduleNetwork(mappings []core.Mapping, nArrays int) (NetworkSchedule, error) {
	var out NetworkSchedule
	for _, m := range mappings {
		s, err := ScheduleLayer(m, nArrays)
		if err != nil {
			return NetworkSchedule{}, err
		}
		out.Layers = append(out.Layers, s)
		out.Makespan += s.Makespan
		out.Programs += s.Programs
	}
	return out, nil
}

// Scaling reports the network makespan for each chip size in arrays,
// normalized as speedup over a single array.
type Scaling struct {
	Arrays   []int
	Makespan []int64
	Speedup  []float64
}

// Scale evaluates ScheduleNetwork over the given chip sizes.
func Scale(mappings []core.Mapping, arrayCounts []int) (Scaling, error) {
	var sc Scaling
	var base int64
	for i, n := range arrayCounts {
		ns, err := ScheduleNetwork(mappings, n)
		if err != nil {
			return Scaling{}, err
		}
		if i == 0 {
			base = ns.Makespan
		}
		sc.Arrays = append(sc.Arrays, n)
		sc.Makespan = append(sc.Makespan, ns.Makespan)
		sc.Speedup = append(sc.Speedup, float64(base)/float64(ns.Makespan))
	}
	return sc, nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func ceilDiv64(a, b int64) int64 { return (a + b - 1) / b }
