package chip

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
)

var a512 = core.Array{Rows: 512, Cols: 512}

func conv4Mapping(t *testing.T) core.Mapping {
	t.Helper()
	l := core.Layer{IW: 14, IH: 14, KW: 3, KH: 3, IC: 256, OC: 256}
	r, err := core.SearchVWSDK(l, a512)
	if err != nil {
		t.Fatal(err)
	}
	// 4x3 window: NPW=72, AR=7, AC=1 -> 7 tiles, 504 cycles.
	return r.Best
}

func TestScheduleLayerSingleArray(t *testing.T) {
	m := conv4Mapping(t)
	s, err := ScheduleLayer(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != m.Cycles {
		t.Errorf("1-array makespan = %d, want %d", s.Makespan, m.Cycles)
	}
	if s.Rounds != 7 || s.Programs != 7 || s.Arrays != 1 {
		t.Errorf("schedule = %+v", s)
	}
	if s.BusyFraction != 1.0 {
		t.Errorf("busy = %v, want 1.0 (single array never idles)", s.BusyFraction)
	}
}

func TestScheduleLayerOneArrayPerTile(t *testing.T) {
	m := conv4Mapping(t) // 7 tiles, NPW 72
	s, err := ScheduleLayer(m, 7)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 72 {
		t.Errorf("makespan = %d, want 72 (one sweep)", s.Makespan)
	}
	if s.Rounds != 1 || s.Replicas != 1 || s.Programs != 7 {
		t.Errorf("schedule = %+v", s)
	}
}

func TestScheduleLayerReplication(t *testing.T) {
	m := conv4Mapping(t) // 7 tiles, NPW 72
	s, err := ScheduleLayer(m, 21)
	if err != nil {
		t.Fatal(err)
	}
	if s.Replicas != 3 || s.Arrays != 21 {
		t.Errorf("schedule = %+v", s)
	}
	if s.Makespan != 24 { // ceil(72/3)
		t.Errorf("makespan = %d, want 24", s.Makespan)
	}
	// Non-divisible array count leaves some arrays unused.
	s, err = ScheduleLayer(m, 20)
	if err != nil {
		t.Fatal(err)
	}
	if s.Replicas != 2 || s.Arrays != 14 {
		t.Errorf("schedule = %+v", s)
	}
	if s.Makespan != 36 {
		t.Errorf("makespan = %d, want 36", s.Makespan)
	}
}

func TestScheduleLayerFewerArraysThanTiles(t *testing.T) {
	m := conv4Mapping(t) // 7 tiles
	s, err := ScheduleLayer(m, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Rounds != 3 { // ceil(7/3)
		t.Errorf("rounds = %d, want 3", s.Rounds)
	}
	if s.Makespan != 3*72 {
		t.Errorf("makespan = %d, want 216", s.Makespan)
	}
	if s.Programs != 7 {
		t.Errorf("programs = %d, want 7", s.Programs)
	}
}

func TestScheduleLayerErrors(t *testing.T) {
	m := conv4Mapping(t)
	if _, err := ScheduleLayer(m, 0); err == nil {
		t.Error("zero arrays accepted")
	}
	if _, err := ScheduleLayer(core.Mapping{}, 4); err == nil {
		t.Error("uncosted mapping accepted")
	}
}

// Property: makespan is monotone non-increasing in the number of arrays,
// bounded below by ceil(total/arrays) and by one position sweep split
// across the per-tile replicas; busy fraction is in (0,1].
func TestScheduleMonotonicity(t *testing.T) {
	f := func(iw, ic, oc uint8, n1, n2 uint8) bool {
		l := core.Layer{
			IW: int(iw%20) + 5, IH: int(iw%20) + 5,
			KW: 3, KH: 3, IC: int(ic%200) + 1, OC: int(oc%200) + 1,
		}
		r, err := core.SearchVWSDK(l, a512)
		if err != nil {
			return false
		}
		a := int(n1%64) + 1
		b := a + int(n2%64)
		sa, err := ScheduleLayer(r.Best, a)
		if err != nil {
			return false
		}
		sb, err := ScheduleLayer(r.Best, b)
		if err != nil {
			return false
		}
		if sb.Makespan > sa.Makespan {
			return false
		}
		lower := ceilDiv64(r.Best.Cycles, int64(a))
		if sa.Makespan < lower {
			return false
		}
		return sa.BusyFraction > 0 && sa.BusyFraction <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleNetwork(t *testing.T) {
	layers := []core.Layer{
		{Name: "a", IW: 14, IH: 14, KW: 3, KH: 3, IC: 256, OC: 256},
		{Name: "b", IW: 7, IH: 7, KW: 3, KH: 3, IC: 512, OC: 512},
	}
	var ms []core.Mapping
	var total int64
	for _, l := range layers {
		r, err := core.SearchVWSDK(l, a512)
		if err != nil {
			t.Fatal(err)
		}
		ms = append(ms, r.Best)
		total += r.Best.Cycles
	}
	ns, err := ScheduleNetwork(ms, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ns.Makespan != total {
		t.Errorf("1-array network makespan = %d, want %d", ns.Makespan, total)
	}
	ns16, err := ScheduleNetwork(ms, 16)
	if err != nil {
		t.Fatal(err)
	}
	if ns16.Makespan >= ns.Makespan {
		t.Errorf("16 arrays no faster: %d vs %d", ns16.Makespan, ns.Makespan)
	}
	if len(ns16.Layers) != 2 || ns16.Programs == 0 {
		t.Errorf("network schedule = %+v", ns16)
	}
	if _, err := ScheduleNetwork(ms, 0); err == nil {
		t.Error("zero arrays accepted")
	}
}

func TestScale(t *testing.T) {
	l := core.Layer{IW: 28, IH: 28, KW: 3, KH: 3, IC: 128, OC: 128}
	r, err := core.SearchVWSDK(l, a512)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Scale([]core.Mapping{r.Best}, []int{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Speedup) != 4 || sc.Speedup[0] != 1.0 {
		t.Fatalf("scaling = %+v", sc)
	}
	for i := 1; i < len(sc.Speedup); i++ {
		if sc.Speedup[i] < sc.Speedup[i-1]-1e-12 {
			t.Errorf("speedup not monotone: %v", sc.Speedup)
		}
	}
	if _, err := Scale([]core.Mapping{{}}, []int{1}); err == nil {
		t.Error("uncosted mapping accepted")
	}
}

// TestScheduleLayerGrouped: a grouped mapping schedules G·AR·AC weight tiles
// — one AR×AC grid per convolution group — and the busy-fraction accounting
// stays consistent (one array per tile sweeps NPW cycles at full utilization).
func TestScheduleLayerGrouped(t *testing.T) {
	l := core.Layer{IW: 14, IH: 14, KW: 3, KH: 3, IC: 32, OC: 32,
		PadW: 1, PadH: 1, Groups: 32}
	r, err := core.SearchVWSDK(l, a512)
	if err != nil {
		t.Fatal(err)
	}
	m := r.Best
	wantTiles := m.AR * m.AC * 32
	if m.Tiles() != wantTiles {
		t.Fatalf("Tiles = %d, want %d", m.Tiles(), wantTiles)
	}
	s, err := ScheduleLayer(m, wantTiles)
	if err != nil {
		t.Fatal(err)
	}
	if s.Tiles != wantTiles || s.Rounds != 1 || s.Programs != wantTiles {
		t.Errorf("schedule = %+v", s)
	}
	if s.Makespan != int64(m.NPW) {
		t.Errorf("makespan = %d, want %d (one sweep per tile)", s.Makespan, m.NPW)
	}
	if s.BusyFraction != 1.0 {
		t.Errorf("busy = %v, want 1.0", s.BusyFraction)
	}
	// A single array serializes the G·AR·AC programs.
	one, err := ScheduleLayer(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if one.Makespan != m.Cycles || one.Rounds != wantTiles {
		t.Errorf("single-array schedule = %+v, want makespan %d rounds %d", one, m.Cycles, wantTiles)
	}
}
