package vwsdk

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestQuickstart exercises the documented quickstart flow end to end.
func TestQuickstart(t *testing.T) {
	layer := Layer{Name: "conv4", IW: 14, IH: 14, KW: 3, KH: 3, IC: 256, OC: 256}
	array := Array{Rows: 512, Cols: 512}
	res, err := SearchVWSDK(layer, array)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Best.TileString(); got != "4x3x42x256" {
		t.Errorf("TileString = %q, want 4x3x42x256 (paper Table I)", got)
	}
	if res.Best.Cycles != 504 {
		t.Errorf("cycles = %d, want 504", res.Best.Cycles)
	}
	if sp := res.SpeedupVsIm2col(); sp < 1.42 || sp > 1.44 {
		t.Errorf("speedup = %v, want ≈1.43", sp)
	}
}

func TestFacadeCostFunctions(t *testing.T) {
	l := Layer{IW: 10, IH: 10, KW: 3, KH: 3, IC: 4, OC: 8}
	a := Array{Rows: 128, Cols: 128}
	if _, err := Im2col(l, a); err != nil {
		t.Error(err)
	}
	if _, err := SMD(l, a, 2); err != nil {
		t.Error(err)
	}
	if _, err := SDK(l, a, Window{W: 4, H: 4}); err != nil {
		t.Error(err)
	}
	if _, err := VW(l, a, Window{W: 4, H: 3}); err != nil {
		t.Error(err)
	}
	if _, err := SearchSDK(l, a); err != nil {
		t.Error(err)
	}
	if _, err := SearchSMD(l, a); err != nil {
		t.Error(err)
	}
	if _, err := SearchVariant(l, a, VariantSquareTiled); err != nil {
		t.Error(err)
	}
	if _, err := VW(l, Array{Rows: 8, Cols: 8}, Window{W: 10, H: 10}); !errors.Is(err, ErrInfeasible) {
		t.Error("ErrInfeasible alias broken")
	}
}

func TestFacadeNetworks(t *testing.T) {
	if len(Networks()) != 6 {
		t.Errorf("Networks() = %d entries, want 6", len(Networks()))
	}
	n, err := NetworkByName("ResNet-18")
	if err != nil || len(n.Layers) != 5 {
		t.Fatalf("NetworkByName: %v, %d layers", err, len(n.Layers))
	}
	if VGG13().Name != "VGG-13" || ResNet18().Name != "ResNet-18" ||
		VGG16().Name != "VGG-16" || AlexNet().Name != "AlexNet" ||
		MobileNetV2().Name != "MobileNet-V2" || ResNeXt50().Name != "ResNeXt-50" {
		t.Error("zoo constructors mislabeled")
	}
	// The grouped zoo entries expose their group structure through the facade.
	grouped := 0
	for _, l := range MobileNetV2().Layers {
		if l.NumGroups() > 1 {
			grouped++
		}
	}
	if grouped == 0 {
		t.Error("facade MobileNet-V2 lost its depthwise layers")
	}
}

func TestFacadeSimulation(t *testing.T) {
	l := Layer{IW: 8, IH: 8, KW: 3, KH: 3, IC: 3, OC: 4}
	a := Array{Rows: 32, Cols: 16}
	m, err := VW(l, a, Window{W: 4, H: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(m, 99); err != nil {
		t.Fatal(err)
	}
	ifm := RandFeatureMap(1, l.IC, l.IH, l.IW)
	w := RandWeights(2, l.OC, l.IC, l.KH, l.KW)
	out, stats, err := RunOnCrossbar(m, ifm, w)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cycles != m.Cycles {
		t.Errorf("stats cycles = %d, want %d", stats.Cycles, m.Cycles)
	}
	if out.C != l.OC || out.H != l.OutH() || out.W != l.OutW() {
		t.Errorf("output shape %v", out)
	}
	if _, _, err := RunOnCrossbar(m, ifm, w, WithQuantization(8, 4), WithReadNoise(0.001, 3)); err != nil {
		t.Fatal(err)
	}
	if err := VerifyAllSchemes(l, a, 5); err != nil {
		t.Fatal(err)
	}
	p, err := NewPlan(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Tiles) == 0 || len(p.Positions) == 0 {
		t.Error("plan empty")
	}
	fm := NewFeatureMap(1, 2, 2)
	if fm.Len() != 4 {
		t.Error("NewFeatureMap wrong")
	}
	if NewWeights(1, 1, 2, 2).Len() != 4 {
		t.Error("NewWeights wrong")
	}
}

func TestFacadeEnergy(t *testing.T) {
	mdl := DefaultEnergyModel()
	l := Layer{IW: 14, IH: 14, KW: 3, KH: 3, IC: 256, OC: 256}
	res, err := SearchVWSDK(l, PaperArray)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := mdl.Estimate(res.Best)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles != 504 || rep.EnergyTotal <= 0 {
		t.Errorf("report = %+v", rep)
	}
}

func TestFacadeExperiments(t *testing.T) {
	r, err := ExperimentTableI(PaperArray)
	if err != nil {
		t.Fatal(err)
	}
	if r.Summary["resnet18/vw-cycles"] != 4294 {
		t.Errorf("Table I resnet vw = %v, want 4294", r.Summary["resnet18/vw-cycles"])
	}
	if !strings.Contains(r.String(), "Table I") {
		t.Error("experiment rendering broken")
	}
	if _, err := ExperimentFig8a(PaperArray); err != nil {
		t.Error(err)
	}
	if _, err := ExperimentFig8b(); err != nil {
		t.Error(err)
	}
	if _, err := ExperimentFig9a(PaperArray); err != nil {
		t.Error(err)
	}
}

func TestSchemeConstantsRoundTrip(t *testing.T) {
	for s, name := range map[Scheme]string{
		SchemeIm2col: "im2col",
		SchemeSMD:    "SMD",
		SchemeSDK:    "SDK",
		SchemeVWSDK:  "VW-SDK",
	} {
		if s.String() != name {
			t.Errorf("scheme %d = %q, want %q", int(s), s.String(), name)
		}
	}
	if VariantFull.String() != "full" {
		t.Error("variant alias broken")
	}
}

func TestFacadeExtensions(t *testing.T) {
	l := Layer{IW: 9, IH: 8, KW: 3, KH: 3, IC: 4, OC: 6}
	a := Array{Rows: 64, Cols: 48}

	// Bit slicing: full precision equals the base search; an 8-bit/1-bit
	// config is strictly slower; the bit-sliced run is exact.
	base, err := SearchVWSDK(l, a)
	if err != nil {
		t.Fatal(err)
	}
	full, err := SearchVWSDKWithPrecision(l, a, FullPrecision())
	if err != nil {
		t.Fatal(err)
	}
	if full.Best.Cycles != base.Best.Cycles {
		t.Errorf("full precision cycles %d != base %d", full.Best.Cycles, base.Best.Cycles)
	}
	p := Precision{WeightBits: 4, CellBits: 2, InputBits: 4, DACBits: 2}
	m, err := VW(l, a, Window{W: 4, H: 4})
	if err != nil {
		t.Fatal(err)
	}
	ifm := RandFeatureMap(1, l.IC, l.IH, l.IW)
	w := RandWeights(2, l.OC, l.IC, l.KH, l.KW)
	want, _, err := RunOnCrossbar(m, ifm, w)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := RunBitSliced(m, p, ifm, w)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Error("bit-sliced run differs from ideal run")
	}
	if _, err := CostWithPrecision(l, a, Window{W: 4, H: 4}, p); err != nil {
		t.Error(err)
	}
	vals := []float64{9, -9}
	QuantizeValues(vals, 3)
	if vals[0] != 3 || vals[1] != -4 {
		t.Errorf("QuantizeValues = %v", vals)
	}

	// Chip scheduling.
	s, err := ScheduleLayer(base.Best, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan <= 0 {
		t.Error("empty layer schedule")
	}
	ns, err := ScheduleNetwork([]Mapping{base.Best, m}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns.Layers) != 2 {
		t.Error("network schedule missing layers")
	}

	// Network-level inference: TinyCNN on crossbar == reference.
	cnn := TinyCNN(5)
	input := RandFeatureMap(6, 3, 16, 16)
	ref, err := cnn.Infer(input, ReferenceConv)
	if err != nil {
		t.Fatal(err)
	}
	xbar := func(l Layer, x *FeatureMap, wt *Weights) (*FeatureMap, error) {
		r, err := SearchVWSDK(l, Array{Rows: 96, Cols: 64})
		if err != nil {
			return nil, err
		}
		out, _, err := RunOnCrossbar(r.Best, x, wt)
		return out, err
	}
	onPIM, err := cnn.Infer(input, xbar)
	if err != nil {
		t.Fatal(err)
	}
	if !onPIM.Equal(ref) {
		t.Error("network inference on crossbar differs from reference")
	}
	if g := GlobalAvgPool(ref); len(g) != 8 {
		t.Errorf("GlobalAvgPool len = %d", len(g))
	}
	if ReLU(ref).Len() != ref.Len() {
		t.Error("ReLU changed shape")
	}
	if MaxPool(ref, 1).Len() != ref.Len() {
		t.Error("MaxPool k=1 changed shape")
	}
	if AvgPool(ref, 3).C != ref.C {
		t.Error("AvgPool changed channels")
	}

	// Fault injection through the facade.
	faulty, _, err := RunOnCrossbar(m, ifm, w, WithStuckCells(0.5, 1))
	if err != nil {
		t.Fatal(err)
	}
	if faulty.Equal(want) {
		t.Error("50% stuck cells had no effect")
	}
}

// TestFacadeExhaustiveSearch checks the brute-force exports agree with the
// pruned defaults and that the pruning bookkeeping is exposed.
func TestFacadeExhaustiveSearch(t *testing.T) {
	l := Layer{Name: "conv4", IW: 14, IH: 14, KW: 3, KH: 3, IC: 256, OC: 256}
	pruned, err := SearchVWSDK(l, PaperArray)
	if err != nil {
		t.Fatal(err)
	}
	exh, err := SearchVWSDKExhaustive(l, PaperArray)
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Best != exh.Best || pruned.Swept != exh.Evaluated {
		t.Errorf("pruned %+v vs exhaustive %+v", pruned.Best, exh.Best)
	}
	if n := ExhaustiveSearchCandidates(l, VariantFull); n != 12*12-1 {
		t.Errorf("ExhaustiveSearchCandidates = %d, want 143", n)
	}
	vp, err := SearchVariant(l, PaperArray, VariantSquareTiled)
	if err != nil {
		t.Fatal(err)
	}
	ve, err := SearchVariantExhaustive(l, PaperArray, VariantSquareTiled)
	if err != nil {
		t.Fatal(err)
	}
	if vp.Best != ve.Best {
		t.Error("variant pruned/exhaustive disagree")
	}
	es, err := ExhaustiveSearcher().SearchVWSDK(context.Background(), l, PaperArray)
	if err != nil {
		t.Fatal(err)
	}
	if es.Best != exh.Best {
		t.Error("ExhaustiveSearcher disagrees with SearchVWSDKExhaustive")
	}
	eng := NewEngine(WithExhaustiveSearch())
	er, err := eng.SearchVWSDK(context.Background(), l, PaperArray)
	if err != nil {
		t.Fatal(err)
	}
	if er.Evaluated != exh.Evaluated {
		t.Errorf("exhaustive engine costed %d, want %d", er.Evaluated, exh.Evaluated)
	}
	if st := eng.Stats(); st.CandidatesPruned != 0 || st.CandidatesCosted == 0 {
		t.Errorf("exhaustive engine stats = %+v", st)
	}
}

func TestFacadeSearchNetwork(t *testing.T) {
	nr, err := SearchNetwork(ResNet18().CoreLayers(), PaperArray)
	if err != nil {
		t.Fatal(err)
	}
	if nr.TotalCycles != 4294 {
		t.Errorf("network total = %d, want 4294", nr.TotalCycles)
	}
	if s := nr.Speedup(); s < 4.66 || s > 4.68 {
		t.Errorf("speedup = %v, want 4.67", s)
	}
}

// TestFacadeEngine exercises the concurrent-engine exports: parallel
// network search equals the serial one, the batch Sweep covers its grid,
// and the stats/worker knobs round-trip.
func TestFacadeEngine(t *testing.T) {
	a := Array{Rows: 512, Cols: 512}
	layers := ResNet18().CoreLayers()
	want, err := SearchNetwork(layers, a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SearchNetworkParallel(layers, a, WithWorkers(2), WithCacheSize(128))
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalCycles != want.TotalCycles || got.TotalIm2col != want.TotalIm2col {
		t.Errorf("parallel totals = %d/%d, serial %d/%d",
			got.TotalCycles, got.TotalIm2col, want.TotalCycles, want.TotalIm2col)
	}

	eng := NewEngine(WithWorkers(2))
	res, err := eng.SearchVWSDK(context.Background(), layers[3], a)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.TileString() != "4x3x42x256" {
		t.Errorf("conv4 tile = %s, want 4x3x42x256", res.Best.TileString())
	}
	cells := eng.Sweep(context.Background(), []Network{ResNet18()}, []Array{{Rows: 256, Cols: 256}, a},
		[]Variant{VariantFull})
	if len(cells) != 2 {
		t.Fatalf("sweep returned %d cells, want 2", len(cells))
	}
	for _, c := range cells {
		if c.Err != nil {
			t.Fatal(c.Err)
		}
		if c.Speedup() < 1 {
			t.Errorf("%v: speedup %.2f < 1", c.Cell.Array, c.Speedup())
		}
	}
	if st := eng.Stats(); st.Searches == 0 || st.CacheHits == 0 {
		t.Errorf("engine stats = %+v, want searches and cache hits", st)
	}
	if SerialSearcher() == nil {
		t.Error("SerialSearcher returned nil")
	}
}

// TestFacadeCompile exercises the whole-network compilation exports: a
// one-call Compile, a shared Compiler, the scheme selector and the JSON
// surfaces for both network specs and compiled plans.
func TestFacadeCompile(t *testing.T) {
	plan, err := Compile(ResNet18(), PaperArray, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Totals.Cycles != 4294 {
		t.Errorf("compiled total = %d, want 4294 (paper Table I)", plan.Totals.Cycles)
	}
	if s := plan.Totals.Speedup; s < 4.66 || s > 4.68 {
		t.Errorf("speedup = %v, want 4.67", s)
	}
	if plan.Totals.Energy.EnergyTotal <= 0 || plan.Totals.Makespan != plan.Totals.Cycles {
		t.Errorf("totals incomplete: %+v", plan.Totals)
	}

	comp := NewCompiler(NewEngine(WithWorkers(2)))
	sdk, err := comp.Compile(context.Background(), NewCompileRequest(ResNet18(), PaperArray, CompileOptions{Scheme: CompileSDK}))
	if err != nil {
		t.Fatal(err)
	}
	if sdk.Totals.Cycles != 7240 {
		t.Errorf("SDK total = %d, want 7240 (paper Table I)", sdk.Totals.Cycles)
	}

	data, err := plan.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := NetworkPlanFromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Totals != plan.Totals {
		t.Errorf("plan JSON round trip changed totals")
	}

	spec, err := NetworkToJSON(ResNet18())
	if err != nil {
		t.Fatal(err)
	}
	n, err := NetworkFromJSON(spec)
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "ResNet-18" || len(n.Layers) != 5 {
		t.Errorf("network spec round trip: %q/%d layers", n.Name, len(n.Layers))
	}

	single := SingleLayerNetwork(Layer{Name: "c", IW: 14, IH: 14, KW: 3, KH: 3, IC: 64, OC: 64})
	lp, err := comp.CompileLayer(context.Background(), single.Layers[0].Layer, PaperArray, CompileOptions{Plans: true})
	if err != nil {
		t.Fatal(err)
	}
	if lp.Plan == nil || lp.Search.Best.Cycles <= 0 {
		t.Errorf("layer compile incomplete: %+v", lp.Search.Best)
	}
}

// TestFacadeServer boots the re-exported HTTP compile service against an
// httptest listener and round-trips one compilation.
func TestFacadeServer(t *testing.T) {
	ts := httptest.NewServer(NewServer(ServerConfig{}))
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/compile", "application/json",
		strings.NewReader(`{"network": "ResNet-18", "array": "512x512"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	plan, err := NetworkPlanFromJSON(body)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Table I: ResNet-18 VW-SDK total is 4294 cycles on 512x512.
	if plan.Totals.Cycles != 4294 {
		t.Errorf("served total cycles = %d, want 4294", plan.Totals.Cycles)
	}

	key, err := CompileKey(ResNet18(), PaperArray, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if key == "" || !strings.Contains(key, "ResNet-18") {
		t.Errorf("compile key %q", key)
	}
}

// TestFacadeContextForms pins the ctx-first facade surface: the Context
// forms return exactly what the context-free wrappers return under a live
// context, and honor cancellation under a dead one.
func TestFacadeContextForms(t *testing.T) {
	ctx := context.Background()
	l := Layer{Name: "conv4", IW: 14, IH: 14, KW: 3, KH: 3, IC: 256, OC: 256}
	plain, err := SearchVWSDK(l, PaperArray)
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := SearchVWSDKContext(ctx, l, PaperArray)
	if err != nil {
		t.Fatal(err)
	}
	if plain != withCtx {
		t.Error("SearchVWSDKContext differs from SearchVWSDK")
	}
	req := NewCompileRequest(ResNet18(), PaperArray, CompileOptions{})
	plan, err := CompileContext(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Totals.Cycles != 4294 {
		t.Errorf("CompileContext total = %d, want 4294", plan.Totals.Cycles)
	}
	k1, err := CompileKey(ResNet18(), PaperArray, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	k2, err := CompileRequestKey(req)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Error("CompileKey and CompileRequestKey disagree on the same request")
	}

	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := CompileContext(cancelled, req); err == nil {
		t.Error("CompileContext ignored a cancelled context")
	}
	if _, err := SearchNetworkContext(cancelled, ResNet18().CoreLayers(), PaperArray); err == nil {
		t.Error("SearchNetworkContext ignored a cancelled context")
	}
	if _, err := SearchNetworkParallelContext(cancelled, ResNet18().CoreLayers(), PaperArray); err == nil {
		t.Error("SearchNetworkParallelContext ignored a cancelled context")
	}
}

// TestFacadeOptimize exercises the co-design exports end to end: a spec
// parsed with DesignSpaceFromJSON, searched with Optimize, yielding a valid
// frontier whose points all beat each other on some objective; plus the
// CompileAxes zero-value contract and the serialization round trip.
func TestFacadeOptimize(t *testing.T) {
	spec := []byte(`{
	  "name": "facade",
	  "network": {"name": "T", "layers": [
	    {"name": "c1", "iw": 16, "ih": 16, "kw": 3, "kh": 3, "ic": 3, "oc": 8},
	    {"name": "c2", "iw": 8, "ih": 8, "kw": 3, "kh": 3, "ic": 8, "oc": 16}
	  ]},
	  "arrays": ["64x64", "128x128"],
	  "chips": [1, 2],
	  "gating": [false, true]
	}`)
	space, err := DesignSpaceFromJSON(spec)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := space.Points(); err != nil || n != 8 {
		t.Fatalf("Points() = %d, %v; want 8", n, err)
	}
	f, err := Optimize(space)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Errorf("frontier invalid: %v", err)
	}
	if f.Evaluated != 8 || len(f.Points) < 1 || f.Dominated < 1 {
		t.Errorf("frontier shape: evaluated=%d points=%d dominated=%d",
			f.Evaluated, len(f.Points), f.Dominated)
	}

	// NewOptimizer on a shared compiler reproduces the same frontier.
	o := NewOptimizer(NewCompiler(nil))
	var events []OptimizeEvent
	f2, err := o.Run(context.Background(), space, func(e OptimizeEvent) { events = append(events, e) })
	if err != nil {
		t.Fatal(err)
	}
	if len(f2.Points) != len(f.Points) || len(events) == 0 {
		t.Errorf("shared-compiler run: %d points (want %d), %d events",
			len(f2.Points), len(f.Points), len(events))
	}

	data, err := DesignSpaceToJSON(space)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DesignSpaceFromJSON(data)
	if err != nil {
		t.Fatalf("round trip: %v\n%s", err, data)
	}
	if len(back.Arrays) != len(space.Arrays) || back.Network.Name != space.Network.Name {
		t.Errorf("round trip changed the space: %+v vs %+v", back, space)
	}

	// The zero CompileAxes enumerates exactly the zero CompileOptions.
	var axes CompileAxes
	cands := axes.Candidates()
	if len(cands) != 1 || cands[0] != (CompileOptions{}) {
		t.Errorf("zero CompileAxes candidates = %+v, want [zero CompileOptions]", cands)
	}
}
