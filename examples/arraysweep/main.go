// Array sweep: show how the optimal parallel window changes with the PIM
// array size (the paper's Fig. 8(b) observation that VW-SDK gains more on
// larger arrays), for a user-defined layer.
//
// Run with: go run ./examples/arraysweep
package main

import (
	"fmt"
	"log"

	vwsdk "repro"
)

func main() {
	// VGG-13 conv5: the layer where rectangular windows shine.
	layer := vwsdk.Layer{
		Name: "vgg13-conv5",
		IW:   56, IH: 56,
		KW: 3, KH: 3,
		IC: 128, OC: 256,
	}
	arrays := []vwsdk.Array{
		{Rows: 64, Cols: 64},
		{Rows: 128, Cols: 128},
		{Rows: 128, Cols: 256},
		{Rows: 256, Cols: 256},
		{Rows: 512, Cols: 256},
		{Rows: 512, Cols: 512},
		{Rows: 1024, Cols: 1024},
		{Rows: 2048, Cols: 2048},
	}

	fmt.Printf("optimal VW-SDK mapping of %v across array sizes\n\n", layer)
	fmt.Printf("%-10s %14s %14s %10s %10s %8s\n",
		"array", "window (tile)", "im2col cycles", "VW cycles", "speedup", "util %")
	for _, a := range arrays {
		im, err := vwsdk.Im2col(layer, a)
		if err != nil {
			log.Fatal(err)
		}
		vw, err := vwsdk.SearchVWSDK(layer, a)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10v %14s %14d %10d %9.2fx %7.1f\n",
			a, vw.Best.TileString(), im.Cycles, vw.Best.Cycles,
			vw.SpeedupVsIm2col(), vw.Best.Utilization())
	}

	fmt.Println("\nlarger arrays admit bigger windows and more tiled channels per")
	fmt.Println("cycle, so the speedup over im2col keeps growing — the paper's")
	fmt.Println("closing argument for VW-SDK on future PIM arrays.")

	// The same sweep for the ablated searches at one size, to show where
	// the gain comes from.
	a := vwsdk.Array{Rows: 512, Cols: 512}
	fmt.Printf("\nablation at %v:\n", a)
	for _, v := range []vwsdk.Variant{
		vwsdk.VariantFull, vwsdk.VariantSquareTiled, vwsdk.VariantRectFullChannel,
	} {
		r, err := vwsdk.SearchVariant(layer, a, v)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-20s %6d cycles (%.2fx vs im2col)\n",
			v, r.Best.Cycles, r.SpeedupVsIm2col())
	}
}
