// Array sweep: show how the optimal parallel window changes with the PIM
// array size (the paper's Fig. 8(b) observation that VW-SDK gains more on
// larger arrays), for a user-defined layer — running every search through
// one concurrent, memoizing engine.
//
// Run with: go run ./examples/arraysweep
package main

import (
	"context"
	"fmt"
	"log"

	vwsdk "repro"
)

func main() {
	ctx := context.Background()
	// VGG-13 conv5: the layer where rectangular windows shine.
	layer := vwsdk.Layer{
		Name: "vgg13-conv5",
		IW:   56, IH: 56,
		KW: 3, KH: 3,
		IC: 128, OC: 256,
	}
	arrays := []vwsdk.Array{
		{Rows: 64, Cols: 64},
		{Rows: 128, Cols: 128},
		{Rows: 128, Cols: 256},
		{Rows: 256, Cols: 256},
		{Rows: 512, Cols: 256},
		{Rows: 512, Cols: 512},
		{Rows: 1024, Cols: 1024},
		{Rows: 2048, Cols: 2048},
	}

	// One engine-backed compiler serves the whole sweep: candidate windows
	// are costed across its worker pool, and every per-array compilation
	// shares the engine's cache.
	eng := vwsdk.NewEngine()
	comp := vwsdk.NewCompiler(eng)

	fmt.Printf("optimal VW-SDK mapping of %v across array sizes\n\n", layer)
	fmt.Printf("%-10s %14s %14s %10s %10s %8s\n",
		"array", "window (tile)", "im2col cycles", "VW cycles", "speedup", "util %")
	for _, a := range arrays {
		lp, err := comp.CompileLayer(ctx, layer, a, vwsdk.CompileOptions{})
		if err != nil {
			log.Fatal(err)
		}
		vw := lp.Search
		fmt.Printf("%-10v %14s %14d %10d %9.2fx %7.1f\n",
			a, vw.Best.TileString(), vw.Im2col.Cycles, vw.Best.Cycles,
			vw.SpeedupVsIm2col(), vw.Best.Utilization())
	}

	fmt.Println("\nlarger arrays admit bigger windows and more tiled channels per")
	fmt.Println("cycle, so the speedup over im2col keeps growing — the paper's")
	fmt.Println("closing argument for VW-SDK on future PIM arrays.")

	// The same layer through the batch Sweep API: one network × the array
	// list × every ablation variant, fanned across the pool in one call.
	net := vwsdk.SingleLayerNetwork(layer)
	variants := []vwsdk.Variant{
		vwsdk.VariantFull, vwsdk.VariantSquareTiled, vwsdk.VariantRectFullChannel,
	}
	fmt.Printf("\nablation sweep (networks x arrays x variants via Engine.Sweep):\n")
	a := vwsdk.Array{Rows: 512, Cols: 512}
	for _, cell := range eng.Sweep(ctx, []vwsdk.Network{net}, []vwsdk.Array{a}, variants) {
		if cell.Err != nil {
			log.Fatal(cell.Err)
		}
		fmt.Printf("  %-20s %6d cycles (%.2fx vs im2col)\n",
			cell.Cell.Variant, cell.Result.TotalCycles, cell.Speedup())
	}

	st := eng.Stats()
	fmt.Printf("\nengine: %d searches, %d cache hits (%d in-flight dedupes), %d computed (workers %d)\n",
		st.Searches, st.CacheHits, st.FlightDedupes, st.CacheMisses, eng.Workers())
}
