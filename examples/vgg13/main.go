// VGG-13 walkthrough: reproduce the VGG-13 half of the paper's Table I and
// Fig. 8(a) — per-layer mapping decisions, computing cycles and speedups on
// a 512x512 PIM array — from two whole-network Compile calls.
//
// Run with: go run ./examples/vgg13
package main

import (
	"context"
	"fmt"
	"log"

	vwsdk "repro"
)

func main() {
	ctx := context.Background()
	net := vwsdk.VGG13()
	array := vwsdk.PaperArray

	// One compiler, two compilations: the SDK baseline and VW-SDK. The
	// im2col reference rides along in every per-layer search result.
	comp := vwsdk.NewCompiler(nil)
	sdk, err := comp.Compile(ctx, vwsdk.NewCompileRequest(net, array, vwsdk.CompileOptions{Scheme: vwsdk.CompileSDK}))
	if err != nil {
		log.Fatal(err)
	}
	vw, err := comp.Compile(ctx, vwsdk.NewCompileRequest(net, array, vwsdk.CompileOptions{}))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s on a %v PIM array (paper Table I / Fig. 8a)\n\n", net.Name, array)
	fmt.Printf("%-8s %-14s %10s %10s %10s   %-14s %8s\n",
		"layer", "kernel", "im2col", "SDK", "VW-SDK", "VW window", "speedup")
	for i, cl := range net.Layers {
		l := cl.Layer
		vwRes := vw.Layers[i].Search
		fmt.Printf("%-8s %dx%dx%dx%-6d %10d %10d %10d   %-14s %7.2fx\n",
			l.Name, l.KW, l.KH, l.IC, l.OC,
			vwRes.Im2col.Cycles, sdk.Layers[i].Search.Best.Cycles, vwRes.Best.Cycles,
			vwRes.Best.TileString(), vwRes.SpeedupVsIm2col())
	}
	fmt.Printf("\n%-8s %-14s %10d %10d %10d\n", "total", "",
		vw.Totals.Im2colCycles, sdk.Totals.Cycles, vw.Totals.Cycles)
	fmt.Printf("\nVW-SDK speedup: %.2fx vs im2col, %.2fx vs SDK",
		vw.Totals.Speedup, float64(sdk.Totals.Cycles)/float64(vw.Totals.Cycles))
	fmt.Printf("   (paper: 3.16x and 1.49x)\n")

	// Utilization story of Fig. 9(a): after layer 3 the SDK baseline can
	// no longer grow windows, while VW-SDK keeps the array busy.
	fmt.Println("\nutilization (eq. 9), layers 1-6:")
	for i, cl := range net.Layers[:6] {
		res := vw.Layers[i].Search
		fmt.Printf("  %-8s im2col %5.1f%%   VW-SDK %5.1f%% (peak %5.1f%%)\n",
			cl.Name, res.Im2col.Utilization(),
			res.Best.Utilization(), res.Best.PeakUtilization())
	}
}
