// VGG-13 walkthrough: reproduce the VGG-13 half of the paper's Table I and
// Fig. 8(a) — per-layer mapping decisions, computing cycles and speedups on
// a 512x512 PIM array, with whole-network totals.
//
// Run with: go run ./examples/vgg13
package main

import (
	"fmt"
	"log"

	vwsdk "repro"
)

func main() {
	net := vwsdk.VGG13()
	array := vwsdk.PaperArray

	fmt.Printf("%s on a %v PIM array (paper Table I / Fig. 8a)\n\n", net.Name, array)
	fmt.Printf("%-8s %-14s %10s %10s %10s   %-14s %8s\n",
		"layer", "kernel", "im2col", "SDK", "VW-SDK", "VW window", "speedup")

	var tIm, tSDK, tVW int64
	for _, cl := range net.Layers {
		l := cl.Layer
		im, err := vwsdk.Im2col(l, array)
		if err != nil {
			log.Fatal(err)
		}
		sdk, err := vwsdk.SearchSDK(l, array)
		if err != nil {
			log.Fatal(err)
		}
		vw, err := vwsdk.SearchVWSDK(l, array)
		if err != nil {
			log.Fatal(err)
		}
		tIm += im.Cycles
		tSDK += sdk.Best.Cycles
		tVW += vw.Best.Cycles
		fmt.Printf("%-8s %dx%dx%dx%-6d %10d %10d %10d   %-14s %7.2fx\n",
			l.Name, l.KW, l.KH, l.IC, l.OC,
			im.Cycles, sdk.Best.Cycles, vw.Best.Cycles,
			vw.Best.TileString(), vw.SpeedupVsIm2col())
	}
	fmt.Printf("\n%-8s %-14s %10d %10d %10d\n", "total", "", tIm, tSDK, tVW)
	fmt.Printf("\nVW-SDK speedup: %.2fx vs im2col, %.2fx vs SDK",
		float64(tIm)/float64(tVW), float64(tSDK)/float64(tVW))
	fmt.Printf("   (paper: 3.16x and 1.49x)\n")

	// Utilization story of Fig. 9(a): after layer 3 the SDK baseline can
	// no longer grow windows, while VW-SDK keeps the array busy.
	fmt.Println("\nutilization (eq. 9), layers 1-6:")
	for _, cl := range net.Layers[:6] {
		im, err := vwsdk.Im2col(cl.Layer, array)
		if err != nil {
			log.Fatal(err)
		}
		vw, err := vwsdk.SearchVWSDK(cl.Layer, array)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s im2col %5.1f%%   VW-SDK %5.1f%% (peak %5.1f%%)\n",
			cl.Name, im.Utilization(),
			vw.Best.Utilization(), vw.Best.PeakUtilization())
	}
}
