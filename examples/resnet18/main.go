// ResNet-18 walkthrough with latency/energy: reproduce the ResNet-18 half
// of Table I and estimate per-inference latency and energy under the
// conversion-dominated model the paper cites (Section II-B).
//
// Run with: go run ./examples/resnet18
package main

import (
	"fmt"
	"log"

	vwsdk "repro"
)

func main() {
	net := vwsdk.ResNet18()
	array := vwsdk.PaperArray
	mdl := vwsdk.DefaultEnergyModel()

	fmt.Printf("%s on a %v PIM array\n\n", net.Name, array)

	var imMaps, vwMaps []vwsdk.Mapping
	var tIm, tVW int64
	for _, cl := range net.Layers {
		l := cl.Layer
		im, err := vwsdk.Im2col(l, array)
		if err != nil {
			log.Fatal(err)
		}
		vw, err := vwsdk.SearchVWSDK(l, array)
		if err != nil {
			log.Fatal(err)
		}
		imMaps = append(imMaps, im)
		vwMaps = append(vwMaps, vw.Best)
		tIm += im.Cycles
		tVW += vw.Best.Cycles
		fmt.Printf("%-7s %dx%dx%3dx%-3d  im2col %6d cycles   VW-SDK %-13s %5d cycles  %5.2fx\n",
			l.Name, l.KW, l.KH, l.IC, l.OC, im.Cycles,
			vw.Best.TileString(), vw.Best.Cycles, vw.SpeedupVsIm2col())
	}
	fmt.Printf("\ntotals: im2col %d, VW-SDK %d cycles -> %.2fx (paper: 4.67x)\n",
		tIm, tVW, float64(tIm)/float64(tVW))

	imRep, err := mdl.EstimateLayers(imMaps)
	if err != nil {
		log.Fatal(err)
	}
	vwRep, err := mdl.EstimateLayers(vwMaps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nper-inference estimate (synthetic constants, full-array peripherals):")
	fmt.Printf("  im2col  latency %8v   energy %7.2f uJ   conversions %.1f%%\n",
		imRep.Latency, imRep.EnergyTotal*1e6, 100*imRep.ConversionFraction())
	fmt.Printf("  VW-SDK  latency %8v   energy %7.2f uJ   conversions %.1f%%\n",
		vwRep.Latency, vwRep.EnergyTotal*1e6, 100*vwRep.ConversionFraction())
	fmt.Printf("  -> %.2fx less energy, %.2fx lower latency\n",
		imRep.EnergyTotal/vwRep.EnergyTotal,
		float64(imRep.Latency)/float64(vwRep.Latency))

	// Weighting each distinct shape by its residual-block occurrences
	// (Count) instead of once-per-shape:
	var wIm, wVW int64
	for i, cl := range net.Layers {
		wIm += int64(cl.Count) * imMaps[i].Cycles
		wVW += int64(cl.Count) * vwMaps[i].Cycles
	}
	fmt.Printf("\nweighted by block occurrences: im2col %d, VW-SDK %d cycles -> %.2fx\n",
		wIm, wVW, float64(wIm)/float64(wVW))
}
