// ResNet-18 walkthrough with latency/energy: reproduce the ResNet-18 half
// of Table I and estimate per-inference latency and energy under the
// conversion-dominated model the paper cites (Section II-B) — the compile
// pipeline computes cycles, schedules and energy in one call per scheme.
//
// Run with: go run ./examples/resnet18
package main

import (
	"context"
	"fmt"
	"log"

	vwsdk "repro"
)

func main() {
	ctx := context.Background()
	net := vwsdk.ResNet18()
	array := vwsdk.PaperArray

	comp := vwsdk.NewCompiler(nil)
	im, err := comp.Compile(ctx, vwsdk.NewCompileRequest(net, array, vwsdk.CompileOptions{Scheme: vwsdk.CompileIm2col}))
	if err != nil {
		log.Fatal(err)
	}
	vw, err := comp.Compile(ctx, vwsdk.NewCompileRequest(net, array, vwsdk.CompileOptions{}))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s on a %v PIM array\n\n", net.Name, array)
	for i, cl := range net.Layers {
		l := cl.Layer
		res := vw.Layers[i].Search
		fmt.Printf("%-7s %dx%dx%3dx%-3d  im2col %6d cycles   VW-SDK %-13s %5d cycles  %5.2fx\n",
			l.Name, l.KW, l.KH, l.IC, l.OC, res.Im2col.Cycles,
			res.Best.TileString(), res.Best.Cycles, res.SpeedupVsIm2col())
	}
	fmt.Printf("\ntotals: im2col %d, VW-SDK %d cycles -> %.2fx (paper: 4.67x)\n",
		vw.Totals.Im2colCycles, vw.Totals.Cycles, vw.Totals.Speedup)

	imRep, vwRep := im.Totals.Energy, vw.Totals.Energy
	fmt.Println("\nper-inference estimate (synthetic constants, full-array peripherals):")
	fmt.Printf("  im2col  latency %8v   energy %7.2f uJ   conversions %.1f%%\n",
		imRep.Latency, imRep.EnergyTotal*1e6, 100*imRep.ConversionFraction())
	fmt.Printf("  VW-SDK  latency %8v   energy %7.2f uJ   conversions %.1f%%\n",
		vwRep.Latency, vwRep.EnergyTotal*1e6, 100*vwRep.ConversionFraction())
	fmt.Printf("  -> %.2fx less energy, %.2fx lower latency\n",
		imRep.EnergyTotal/vwRep.EnergyTotal,
		float64(imRep.Latency)/float64(vwRep.Latency))

	// Weighting each distinct shape by its residual-block occurrences
	// (Count, carried on every LayerPlan) instead of once-per-shape:
	var wIm, wVW int64
	for i, lp := range vw.Layers {
		wIm += int64(lp.Layer.Count) * im.Layers[i].Search.Best.Cycles
		wVW += int64(lp.Layer.Count) * lp.Search.Best.Cycles
	}
	fmt.Printf("\nweighted by block occurrences: im2col %d, VW-SDK %d cycles -> %.2fx\n",
		wIm, wVW, float64(wIm)/float64(wVW))
}
