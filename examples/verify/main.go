// Functional verification demo: execute a layer on the simulated PIM
// crossbar under all four mapping schemes and compare the results
// bit-for-bit against a reference convolution — including what happens when
// analog non-idealities (weight quantization, ADC read noise) are enabled.
//
// Run with: go run ./examples/verify
package main

import (
	"context"
	"fmt"
	"log"

	vwsdk "repro"
)

func main() {
	layer := vwsdk.Layer{
		Name: "demo",
		IW:   12, IH: 12,
		KW: 3, KH: 3,
		IC: 16, OC: 16,
	}
	array := vwsdk.Array{Rows: 128, Cols: 128}
	const seed = 2022 // DATE'22

	fmt.Printf("verifying %v on a simulated %v crossbar\n\n", layer, array)
	if err := vwsdk.VerifyAllSchemes(layer, array, seed); err != nil {
		log.Fatal(err)
	}
	fmt.Println("ideal cells: im2col, SMD, SDK and VW-SDK all bit-exact vs reference ✓")

	// Drill into the VW-SDK plan: compiling with Plans: true builds the
	// physical weight-placement plan alongside the search.
	lp, err := vwsdk.NewCompiler(nil).CompileLayer(context.Background(), layer, array,
		vwsdk.CompileOptions{Plans: true})
	if err != nil {
		log.Fatal(err)
	}
	res, plan := lp.Search, lp.Plan
	fmt.Printf("\nVW-SDK plan: window %s, %d weight tiles x %d window positions = %d cycles\n",
		res.Best.PW, len(plan.Tiles), len(plan.Positions), res.Best.Cycles)
	for _, t := range plan.Tiles {
		fmt.Printf("  tile (%d,%d): %dx%d cells, %d holding weights\n",
			t.I, t.J, t.Rows(), t.Cols(), plan.PatternCells(t))
	}

	// Non-ideal crossbars: quantized cells keep integer weights exact;
	// read noise perturbs the output proportionally to its sigma.
	ifm := vwsdk.RandFeatureMap(seed, layer.IC, layer.IH, layer.IW)
	w := vwsdk.RandWeights(seed+1, layer.OC, layer.IC, layer.KH, layer.KW)
	exact, stats, err := vwsdk.RunOnCrossbar(res.Best, ifm, w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nideal run:   %d cycles, %d DAC / %d ADC conversions\n",
		stats.Cycles, stats.DACConversions, stats.ADCConversions)

	quant, _, err := vwsdk.RunOnCrossbar(res.Best, ifm, w, vwsdk.WithQuantization(8, 4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("8-bit cells: max |diff| = %g (integer weights are exactly representable)\n",
		quant.MaxAbsDiff(exact))

	for _, sigma := range []float64{0.001, 0.01, 0.1} {
		noisy, _, err := vwsdk.RunOnCrossbar(res.Best, ifm, w,
			vwsdk.WithReadNoise(sigma, seed))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("noise σ=%-5v max |diff| = %.4f\n", sigma, noisy.MaxAbsDiff(exact))
	}
}
