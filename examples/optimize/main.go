// Hardware co-design: search a space of PIM array geometries, chip counts
// and peripheral-gating settings for a small CNN and print the Pareto
// frontier under (cycles, energy, area) — the design points no other point
// beats on every objective at once.
//
// The same space can be searched from the CLI (vwsdk -optimize space.json)
// or over HTTP (POST /v1/optimize on vwsdkd); this is the library form.
//
// Run with: go run ./examples/optimize
package main

import (
	"fmt"
	"log"
	"os"

	vwsdk "repro"
)

func main() {
	// The design-space spec is the same JSON the CLI and the HTTP endpoint
	// accept: a network (inline or a zoo name), candidate arrays, chip
	// counts and gating settings. layer_groups: 2 splits the network into
	// two contiguous groups that are assigned arrays independently, so the
	// search can put early wide layers and late narrow layers on different
	// array geometries.
	spec, err := os.ReadFile("examples/designspaces/tinynet.json")
	if err != nil {
		log.Fatal(err)
	}
	space, err := vwsdk.DesignSpaceFromJSON(spec)
	if err != nil {
		log.Fatal(err)
	}
	space.Groups = 2

	f, err := vwsdk.Optimize(space)
	if err != nil {
		log.Fatal(err)
	}

	points, err := space.Points()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("searched %d design points; %d dominated (%d rejected on arrival, %d evicted)\n\n",
		points, f.Dominated, f.Rejected, f.Evicted)
	fmt.Printf("%-4s %-18s %-12s %-6s %8s %12s %12s\n",
		"id", "arrays", "chips/group", "gated", "cycles", "energy (J)", "area (cells)")
	for _, p := range f.Points {
		arrays := ""
		for i, a := range p.Arrays {
			if i > 0 {
				arrays += "+"
			}
			arrays += a.String()
		}
		fmt.Printf("%-4d %-18s %-12d %-6v %8d %12.3e %12d\n",
			p.ID, arrays, p.Chips, p.Gated,
			p.Metrics.Cycles, p.Metrics.EnergyJ, p.Metrics.AreaCells)
	}

	// The frontier is the menu of rational designs: the first point is the
	// fastest (most area), the last the smallest (most cycles); everything
	// in between trades one objective for another.
	fast, small := f.Points[0], f.Points[len(f.Points)-1]
	fmt.Printf("\nfastest design: #%d at %d cycles on %d cells\n",
		fast.ID, fast.Metrics.Cycles, fast.Metrics.AreaCells)
	fmt.Printf("smallest design: #%d at %d cells taking %d cycles\n",
		small.ID, small.Metrics.AreaCells, small.Metrics.Cycles)
}
