// Quickstart: optimize one convolutional layer's weight mapping for a PIM
// crossbar with VW-SDK and compare it against the im2col, SMD and SDK
// baselines.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	vwsdk "repro"
)

func main() {
	// ResNet-18 conv4 from the paper's Table I: 3x3x256x256 on a 14x14
	// feature map, mapped to a 512x512 PIM array.
	layer := vwsdk.Layer{
		Name: "resnet18-conv4",
		IW:   14, IH: 14,
		KW: 3, KH: 3,
		IC: 256, OC: 256,
	}
	array := vwsdk.Array{Rows: 512, Cols: 512}

	im2col, err := vwsdk.Im2col(layer, array)
	if err != nil {
		log.Fatal(err)
	}
	smd, err := vwsdk.SearchSMD(layer, array)
	if err != nil {
		log.Fatal(err)
	}
	sdk, err := vwsdk.SearchSDK(layer, array)
	if err != nil {
		log.Fatal(err)
	}
	vw, err := vwsdk.SearchVWSDK(layer, array)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("layer %v on array %v\n\n", layer, array)
	fmt.Printf("%-8s %10s %10s  %s\n", "scheme", "cycles", "speedup", "decision")
	for _, m := range []vwsdk.Mapping{im2col, smd.Best, sdk.Best, vw.Best} {
		fmt.Printf("%-8s %10d %9.2fx  window %s, tiles ICt=%d OCt=%d (AR=%d AC=%d)\n",
			m.Scheme, m.Cycles, m.Speedup(im2col),
			m.PW, m.ICt, m.OCt, m.AR, m.AC)
	}

	fmt.Printf("\nVW-SDK found %s: a rectangular 4x3 parallel window computing %d outputs\n",
		vw.Best.TileString(), vw.Best.Nw())
	fmt.Printf("per cycle with 42 of 256 channels per row tile — %.2fx faster than im2col\n",
		vw.SpeedupVsIm2col())
	fmt.Printf("and %.1f%% average array utilization (im2col: %.1f%%).\n",
		vw.Best.Utilization(), im2col.Utilization())
}
