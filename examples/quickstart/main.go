// Quickstart: compile one convolutional layer's weight mapping for a PIM
// crossbar with VW-SDK and compare it against the im2col, SMD and SDK
// baselines — each comparison is one Compile call.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	vwsdk "repro"
)

func main() {
	ctx := context.Background()
	// ResNet-18 conv4 from the paper's Table I: 3x3x256x256 on a 14x14
	// feature map, mapped to a 512x512 PIM array.
	layer := vwsdk.Layer{
		Name: "resnet18-conv4",
		IW:   14, IH: 14,
		KW: 3, KH: 3,
		IC: 256, OC: 256,
	}
	net := vwsdk.SingleLayerNetwork(layer)
	array := vwsdk.Array{Rows: 512, Cols: 512}

	// One compiler serves all four scheme compilations from one cache.
	comp := vwsdk.NewCompiler(nil)
	schemes := []vwsdk.CompileScheme{
		vwsdk.CompileIm2col, vwsdk.CompileSMD, vwsdk.CompileSDK, vwsdk.CompileVWSDK,
	}
	plans := make([]*vwsdk.NetworkPlan, len(schemes))
	for i, s := range schemes {
		p, err := comp.Compile(ctx, vwsdk.NewCompileRequest(net, array, vwsdk.CompileOptions{Scheme: s}))
		if err != nil {
			log.Fatal(err)
		}
		plans[i] = p
	}
	im2col := plans[0].Layers[0].Search.Best

	fmt.Printf("layer %v on array %v\n\n", layer, array)
	fmt.Printf("%-8s %10s %10s  %s\n", "scheme", "cycles", "speedup", "decision")
	for _, p := range plans {
		m := p.Layers[0].Search.Best
		fmt.Printf("%-8s %10d %9.2fx  window %s, tiles ICt=%d OCt=%d (AR=%d AC=%d)\n",
			m.Scheme, m.Cycles, m.Speedup(im2col),
			m.PW, m.ICt, m.OCt, m.AR, m.AC)
	}

	vw := plans[len(plans)-1]
	best := vw.Layers[0].Search.Best
	fmt.Printf("\nVW-SDK found %s: a rectangular 4x3 parallel window computing %d outputs\n",
		best.TileString(), best.Nw())
	fmt.Printf("per cycle with 42 of 256 channels per row tile — %.2fx faster than im2col\n",
		vw.Totals.Speedup)
	fmt.Printf("and %.1f%% average array utilization (im2col: %.1f%%).\n",
		vw.Totals.Utilization, im2col.Utilization())
	fmt.Printf("per-inference estimate: %v latency, %.3g uJ (%.1f%% conversions)\n",
		vw.Totals.Energy.Latency, vw.Totals.Energy.EnergyTotal*1e6,
		100*vw.Totals.Energy.ConversionFraction())
}
