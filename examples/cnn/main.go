// End-to-end CNN inference on PIM: run a complete three-stage CNN (conv +
// ReLU + pooling) with every convolution executed on the simulated crossbar
// under VW-SDK mappings, and compare the final feature map bit-for-bit with
// a pure software reference run.
//
// Run with: go run ./examples/cnn
package main

import (
	"context"
	"fmt"
	"log"

	vwsdk "repro"
)

func main() {
	ctx := context.Background()
	cnn := vwsdk.TinyCNN(2022)
	array := vwsdk.Array{Rows: 96, Cols: 64}
	input := vwsdk.RandFeatureMap(7, 3, 16, 16)

	fmt.Printf("network %q on a simulated %v crossbar\n\n", cnn.Name, array)

	// Software golden run.
	want, err := cnn.Infer(input, vwsdk.ReferenceConv)
	if err != nil {
		log.Fatal(err)
	}

	// Crossbar run: each conv is compiled with VW-SDK through one shared
	// pipeline and executed on the simulated array; statistics accumulate
	// across layers.
	comp := vwsdk.NewCompiler(nil)
	var total vwsdk.CrossbarStats
	crossbarExec := func(l vwsdk.Layer, x *vwsdk.FeatureMap, w *vwsdk.Weights) (*vwsdk.FeatureMap, error) {
		lp, err := comp.CompileLayer(ctx, l, array, vwsdk.CompileOptions{})
		if err != nil {
			return nil, err
		}
		out, stats, err := vwsdk.RunOnCrossbar(lp.Search.Best, x, w)
		if err != nil {
			return nil, err
		}
		total.Add(stats)
		fmt.Printf("  %-6s %-22v -> window %-12s %5d cycles, util %5.1f%%\n",
			l.Name, l, lp.Search.Best.TileString(), stats.Cycles, lp.Search.Best.Utilization())
		return out, nil
	}
	got, err := cnn.Infer(input, crossbarExec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ntotal: %d computing cycles, %d DAC + %d ADC conversions, %d tile programmings\n",
		total.Cycles, total.DACConversions, total.ADCConversions, total.ProgramOps)

	if got.Equal(want) {
		fmt.Println("result: crossbar inference == software inference, bit-for-bit ✓")
	} else {
		log.Fatalf("MISMATCH: max |diff| = %g", got.MaxAbsDiff(want))
	}

	// Classification-style readout from the final feature map.
	scores := vwsdk.GlobalAvgPool(got)
	best, bestV := 0, scores[0]
	for i, v := range scores {
		if v > bestV {
			best, bestV = i, v
		}
	}
	fmt.Printf("global-average-pool scores: %.1f -> class %d\n", scores, best)
}
